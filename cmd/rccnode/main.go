// Command rccnode runs one replica of a consensus deployment over TCP: the
// same protocol machines, execution engine, and ledger the tests and
// benchmarks exercise, wired to real sockets.
//
// Example 4-replica RCC deployment on one machine:
//
//	for i in 0 1 2 3; do
//	  rccnode -id $i -n 4 \
//	    -peers 0=:7000,1=:7001,2=:7002,3=:7003 &
//	done
//	rccclient -n 4 -peers 0=:7000,1=:7001,2=:7002,3=:7003 -txns 100
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/crypto/digestcache"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/quorum"
	"repro/internal/runtime"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

func parsePeers(s string) (map[types.ReplicaID]string, error) {
	peers := make(map[types.ReplicaID]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		peers[types.ReplicaID(id)] = kv[1]
	}
	return peers, nil
}

// buildAuth resolves the -auth / -auth-secret flags (with -mac-secret as a
// backward-compatible alias implying mac) into an authenticator.
func buildAuth(schemeArg, secret, macSecret string, party uint32) (crypto.Authenticator, error) {
	if schemeArg == "" && macSecret != "" {
		schemeArg = "mac"
	}
	if secret == "" {
		secret = macSecret
	}
	scheme, err := crypto.ParseScheme(schemeArg)
	if err != nil {
		return nil, err
	}
	if scheme == crypto.SchemeNone {
		return nil, nil
	}
	return crypto.NewAuth(scheme, party, []byte(secret))
}

// runTimeline is the post-mortem scrape mode: each comma-separated entry is
// either an admin address (its /debug/events ring is fetched live) or a path
// to a flight.bin dump (read from disk — the black box of a replica that is
// already gone). The rings merge into one hybrid-clock-aligned causal
// timeline with anomaly highlighting on stdout.
func runTimeline(entries string) error {
	var snaps []flight.Snapshot
	for _, raw := range strings.Split(entries, ",") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			continue
		}
		var (
			snap flight.Snapshot
			err  error
		)
		if _, statErr := os.Stat(entry); statErr == nil {
			snap, err = flight.ReadFile(entry)
		} else {
			snap, err = flight.FetchHTTP(entry)
		}
		if err != nil {
			// A dead replica's endpoint refusing connections is the very
			// scenario this mode exists for: report and merge what we have.
			log.Printf("rccnode: timeline: skipping %s: %v", entry, err)
			continue
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) == 0 {
		return errors.New("no rings could be fetched")
	}
	tl := flight.Merge(snaps)
	flight.WriteTimeline(os.Stdout, tl, flight.DetectAnomalies(tl))
	return nil
}

func main() {
	var (
		id       = flag.Int("id", 0, "replica ID (0..n-1)")
		n        = flag.Int("n", 4, "number of replicas")
		peersArg = flag.String("peers", "", "comma-separated id=host:port peer map (including self)")
		listen   = flag.String("listen", "", "listen address (defaults to the self entry of -peers)")
		protoArg = flag.String("protocol", "rcc", "protocol: rcc, rcc-z, rcc-s, pbft, zyzzyva, sbft, hotstuff, mirbft")
		batch    = flag.Int("batch", 100, "transactions per proposal")
		window   = flag.Int("window", 4, "out-of-order proposal window")
		records  = flag.Int("records", ycsb.DefaultRecords, "YCSB table records")
		authArg  = flag.String("auth", "", "frame authentication scheme: none, mac (pairwise HMAC), ds (ED25519 dev keyring); default none, or mac when -mac-secret is set")
		authKey  = flag.String("auth-secret", "", "shared deployment secret: MAC pair keys or the ds dev-keyring seed derive from it")
		macKey   = flag.String("mac-secret", "", "shared MAC secret (deprecated alias for -auth mac -auth-secret)")
		verifyW  = flag.Int("verify-workers", 0, "inbound verification worker pool size (0 = scheme default: pooled for ds, inline for mac; negative = force inline)")
		digCache = flag.Int("digest-cache", 0, "verified client-request digest cache entries, shared across instances (0 off)")
		statsSec = flag.Int("stats", 10, "stats print interval in seconds (0 off)")
		dataDir  = flag.String("data-dir", "", "durable storage directory: journal decided blocks through a WAL and resume from it on restart")
		syncMode = flag.String("sync", "group", "WAL durability with -data-dir: group (batched fsync), always (fsync per block), none")
		snapEach = flag.Uint64("snapshot-every", 1024, "persist an application checkpoint every N blocks with -data-dir (0 off)")
		walPrune = flag.Bool("wal-prune", false, "with -data-dir and -snapshot-every: reclaim WAL segments below each persisted checkpoint; restart replays from the pinned checkpoint instead of genesis")
		asyncJnl = flag.Bool("async-journal", true, "pipeline WAL fsyncs off the consensus event loop: client acks wait for durability, many blocks share each fsync")
		jnlQueue = flag.Int("journal-queue", 0, "async journal: max blocks executed but not yet durable before execution back-pressures (0 = default 1024)")
		jnlBatch = flag.Int64("journal-batch-bytes", 0, "async journal: max WAL bytes per fsync batch (0 = default 8 MiB)")
		sendQ    = flag.Int("send-queue", 0, "per-peer outbound queue depth: messages buffered per replica link before backpressure (0 = default 4096)")
		clientQ  = flag.Int("client-queue", 0, "per-client reply queue depth: replies buffered per client link before dropping (0 = default 1024)")
		sendB    = flag.Int("send-batch-bytes", 0, "max encoded bytes coalesced into one multi-message frame per write syscall (0 = default 128 KiB)")
		stateSyn = flag.Bool("state-sync", true, "with -data-dir: serve checkpoints to lagging peers and, when this replica is behind (wiped disk, long partition), fetch the f+1-attested snapshot + ledger suffix and rejoin at the cluster head")
		chunkB   = flag.Int("snapshot-chunk-bytes", 0, "state sync: snapshot chunk size served to peers (0 = default 256 KiB)")
		syncSrc  = flag.Int("state-sync-source", -1, "state sync: preferred transfer source replica ID (-1 = automatic; the fetcher still rotates away on failure)")
		execWkrs = flag.Int("exec-workers", 0, "parallel execution workers per batch: conflict-free transactions of a unified round fan out across this many goroutines (0 = GOMAXPROCS, 1 = serial)")
		adminArg = flag.String("admin-addr", "", "admin HTTP listener serving /metrics (Prometheus), /healthz, /readyz, /debug/trace, /debug/events, and /debug/pprof (empty = off)")
		traceN   = flag.Int("trace-sample", 64, "lifecycle tracer: sample 1 in N transactions into the /debug/trace ring (1 = all, negative = off)")
		traceBuf = flag.Int("trace-buf", 4096, "lifecycle tracer: ring buffer capacity in events")
		flightN  = flag.Int("flight-buf", 0, "flight recorder: ring capacity in events (0 = default 4096, negative = off)")
		stallThr = flag.Duration("stall-threshold", 0, "flight recorder: event-loop stall watchdog threshold (0 = default 500ms, negative = off)")
		mirrorIv = flag.Duration("flight-mirror", 0, "flight recorder: crash-safe mirror period for <data-dir>/flight.bin (0 = default 2s, negative = off)")
		timeline = flag.String("timeline", "", "scrape mode: comma-separated admin addresses and/or flight.bin paths; fetch every ring, merge into one causal cluster timeline on stdout, and exit")
	)
	flag.Parse()

	if *timeline != "" {
		if err := runTimeline(*timeline); err != nil {
			log.Fatalf("rccnode: timeline: %v", err)
		}
		return
	}

	peers, err := parsePeers(*peersArg)
	if err != nil {
		log.Fatalf("rccnode: %v", err)
	}
	if *listen == "" {
		*listen = peers[types.ReplicaID(*id)]
	}
	params, err := quorum.NewParams(*n)
	if err != nil {
		log.Fatalf("rccnode: %v", err)
	}

	// The instrument catalog exists only when the admin listener will
	// serve it: a nil *obs.NodeMetrics is the library's no-op sink, so
	// every instrumented path degrades to a nil-check.
	var metrics *obs.NodeMetrics
	if *adminArg != "" {
		metrics = obs.NewNodeMetrics(obs.NewRegistry(), *traceBuf, *traceN)
		if *flightN >= 0 {
			size := *flightN
			if size == 0 {
				size = 4096
			}
			metrics.Flight = flight.New(size)
		}
	}

	opts := core.Options{
		N:         *n,
		Protocol:  core.Protocol(*protoArg),
		BatchSize: *batch,
		Window:    *window,
		Metrics:   metrics,
	}
	machine, err := core.BuildMachine(&opts)
	if err != nil {
		log.Fatalf("rccnode: %v", err)
	}

	var durability wal.SyncPolicy
	switch *syncMode {
	case "group":
		durability = wal.SyncGroup
	case "always":
		durability = wal.SyncAlways
		if *asyncJnl {
			// "always" is an explicit request for one fsync per block;
			// the async committer would silently batch them instead.
			log.Printf("rccnode: -sync always requests a per-block fsync, disabling -async-journal")
			*asyncJnl = false
		}
	case "none":
		durability = wal.SyncNone
	default:
		log.Fatalf("rccnode: unknown -sync mode %q (want group, always, or none)", *syncMode)
	}

	source := types.NoReplica
	if *syncSrc >= 0 {
		source = types.ReplicaID(*syncSrc)
	}
	rep, err := runtime.New(runtime.Config{
		ID:      types.ReplicaID(*id),
		Params:  params,
		Machine: machine,
		App:     ycsb.NewStore(*records),
		Journal: true,
		DataDir: *dataDir,
		Journaling: runtime.JournalOptions{
			Sync:          durability,
			Async:         *asyncJnl,
			QueueDepth:    *jnlQueue,
			MaxBatchBytes: *jnlBatch,
			SnapshotEvery: *snapEach,
			PruneWAL:      *walPrune,
		},
		StateSync: runtime.StateSyncOptions{
			Enabled:    *stateSyn && *dataDir != "",
			ChunkBytes: *chunkB,
			Source:     source,
		},
		Exec: runtime.ExecOptions{Workers: *execWkrs},
		Flight: runtime.FlightOptions{
			StallThreshold: *stallThr,
			MirrorInterval: *mirrorIv,
		},
		ReplyToClients: true,
		Logf:           log.Printf,
		Metrics:        metrics,
	})
	if err != nil {
		log.Fatalf("rccnode: opening durable state: %v", err)
	}
	if *dataDir != "" {
		if h := rep.Ledger().Height(); h > 0 {
			log.Printf("rccnode: resumed from %s at ledger height %d (head %v, %d txns)",
				*dataDir, h, rep.Ledger().HeadHash(), rep.Ledger().TxnCount())
		} else {
			log.Printf("rccnode: fresh durable state in %s", *dataDir)
		}
	}

	auth, err := buildAuth(*authArg, *authKey, *macKey, crypto.PartyID(types.ReplicaID(*id)))
	if err != nil {
		log.Fatalf("rccnode: %v", err)
	}
	tcpCfg := transport.TCPConfig{
		Self:             types.ReplicaID(*id),
		Listen:           *listen,
		Peers:            peers,
		Auth:             auth,
		QueueDepth:       *sendQ,
		ClientQueueDepth: *clientQ,
		MaxBatchBytes:    *sendB,
		VerifyWorkers:    *verifyW,
	}
	if *digCache > 0 {
		tcpCfg.DigestCache = digestcache.New(*digCache)
	}
	if metrics != nil {
		tcpCfg.VerifyObserve = func(d time.Duration) { metrics.ObserveStage(obs.StageVerify, d) }
		tcpCfg.Flight = metrics.Flight
	}
	tcp, err := transport.NewTCP(tcpCfg, rep)
	if err != nil {
		log.Fatalf("rccnode: %v", err)
	}
	rep.Attach(tcp)
	rep.Run()
	log.Printf("rccnode: replica %d/%d (%s) listening on %s", *id, *n, *protoArg, tcp.Addr())

	if *adminArg != "" {
		handler := obs.NewHandler(metrics.Registry(), metrics.Tracer, metrics.Flight, obs.Health{
			// Liveness: the sticky durability error is fatal — a replica
			// that cannot journal must be replaced, not retried.
			Healthy: rep.DurabilityErr,
			// Readiness: alive, journaling, and caught up (state transfer
			// done or disabled).
			Ready: func() error {
				if err := rep.DurabilityErr(); err != nil {
					return err
				}
				if ss := rep.StateSync(); ss != nil && !ss.Synced() {
					return errors.New("state transfer in progress: not yet verified at the cluster head")
				}
				return nil
			},
		})
		ln, err := net.Listen("tcp", *adminArg)
		if err != nil {
			log.Fatalf("rccnode: admin listener: %v", err)
		}
		go func() {
			if err := http.Serve(ln, handler); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("rccnode: admin server: %v", err)
			}
		}()
		log.Printf("rccnode: admin endpoints on http://%s (/metrics /healthz /readyz /debug/trace /debug/events /debug/pprof)", ln.Addr())
	}

	done := make(chan struct{})
	var loops sync.WaitGroup
	if *dataDir != "" {
		// Durability watchdog, independent of -stats: a replica that can
		// no longer journal must stop acknowledging transactions.
		loops.Add(1)
		go func() {
			defer loops.Done()
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := rep.DurabilityErr(); err != nil {
						log.Fatalf("rccnode: durable journal failed, stopping: %v", err)
					}
				case <-done:
					return
				}
			}
		}()
	}
	if *statsSec > 0 {
		var last uint64
		started := time.Now()
		lastAt := started
		logStats := func(final bool) {
			cur := rep.Executed()
			now := time.Now()
			dt := now.Sub(lastAt).Seconds()
			if dt <= 0 {
				dt = 1
			}
			st := tcp.Stats()
			batched := float64(0)
			if st.BatchesSent > 0 {
				batched = float64(st.MsgsSent) / float64(st.BatchesSent)
			}
			rate := float64(cur-last) / dt
			if final {
				// The lifetime summary keeps short runs from exiting silent.
				rate = float64(cur) / now.Sub(started).Seconds()
			}
			log.Printf("rccnode: executed %d txns (%.0f txn/s); sent %d msgs in %d frames (%.1f msgs/frame), dropped peer=%d client=%d, reconnects=%d",
				cur, rate,
				st.MsgsSent, st.BatchesSent, batched, st.PeerDropped, st.ClientDropped, st.Reconnects)
			last = cur
			lastAt = now
		}
		loops.Add(1)
		go func() {
			defer loops.Done()
			tick := time.NewTicker(time.Duration(*statsSec) * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					logStats(false)
				case <-done:
					logStats(true)
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(done)
	loops.Wait()
	rep.Stop()
}
