// Command rccbench regenerates the RCC paper's tables and figures. Each
// experiment prints the same rows/series the paper reports; EXPERIMENTS.md
// records measured-vs-paper values.
//
// Usage:
//
//	rccbench -exp all        # every flow-model experiment
//	rccbench -exp fig8a      # one experiment
//	rccbench -exp fig10      # simnet failure timeline (slower)
//	rccbench -exp chaos      # randomized fault harness over live TCP (slow)
//	rccbench -list           # list experiment IDs
//
// The chaos experiment takes extra flags: -seed, -nodes, -duration, -wan,
// and -artifacts (where a failed run leaves its flight rings and merged
// timeline). It exits non-zero when an invariant is violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (see -list)")
	list := flag.Bool("list", false, "list experiment IDs")
	seed := flag.Int64("seed", 0, "chaos: fault schedule seed (same seed, same schedule)")
	nodes := flag.Int("nodes", 4, "chaos: cluster size (4-7)")
	duration := flag.Duration("duration", 5*time.Minute, "chaos: run length")
	wan := flag.Bool("wan", false, "chaos: apply the five-region WAN latency profile")
	artifacts := flag.String("artifacts", "", "chaos: directory for failure artifacts")
	verbose := flag.Bool("v", false, "chaos: stream fault actions to stderr")
	flag.Parse()

	byID := map[string]func() *bench.Table{
		"fig1left":  func() *bench.Table { return bench.Fig1(20) },
		"fig1right": func() *bench.Table { return bench.Fig1(400) },
		"fig6":      bench.Fig6,
		"fig7left":  bench.Fig7Left,
		"fig7right": bench.Fig7Right,
		"fig8a":     bench.Fig8a,
		"fig8b":     bench.Fig8b,
		"fig8c":     bench.Fig8c,
		"fig8d":     bench.Fig8d,
		"fig8e":     bench.Fig8e,
		"fig8f":     bench.Fig8f,
		"fig8g":     bench.Fig8g,
		"fig8h":     bench.Fig8h,
		"fig9":      bench.Fig9,
	}
	order := []string{
		"fig1left", "fig1right", "fig6", "fig7left", "fig7right",
		"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f", "fig8g", "fig8h",
		"fig9", "fig10", "exec", "statesync", "stages", "timeline", "crypto", "summary", "validate",
		"chaos", // excluded from -exp all: minutes-long live-cluster run
	}

	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}

	runOne := func(id string) {
		switch id {
		case "fig10":
			t, err := bench.Fig10(bench.DefaultFig10())
			if err != nil {
				fmt.Fprintf(os.Stderr, "fig10: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(t.Render())
		case "exec":
			t, err := bench.Exec()
			if err != nil {
				fmt.Fprintf(os.Stderr, "exec: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(t.Render())
		case "statesync":
			t, err := bench.StateSync()
			if err != nil {
				fmt.Fprintf(os.Stderr, "statesync: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(t.Render())
		case "stages":
			t, err := bench.Stages()
			if err != nil {
				fmt.Fprintf(os.Stderr, "stages: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(t.Render())
		case "timeline":
			t, err := bench.Timeline()
			if err != nil {
				fmt.Fprintf(os.Stderr, "timeline: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(t.Render())
		case "crypto":
			t, err := bench.LiveCrypto()
			if err != nil {
				fmt.Fprintf(os.Stderr, "crypto: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(t.Render())
		case "chaos":
			t, rep, err := bench.Chaos(bench.ChaosOptions{
				Seed: *seed, Nodes: *nodes, Duration: *duration,
				WAN: *wan, ArtifactDir: *artifacts, Verbose: *verbose,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(t.Render())
			fmt.Println(rep.Summary())
			if !rep.Passed() {
				os.Exit(1)
			}
		case "summary":
			fmt.Println(bench.Summary().Render())
		case "validate":
			t, err := bench.Validate()
			if err != nil {
				fmt.Fprintf(os.Stderr, "validate: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(t.Render())
		default:
			f, ok := byID[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			fmt.Println(f().Render())
		}
	}

	if *exp == "all" {
		for _, id := range order {
			if id == "chaos" {
				continue
			}
			runOne(id)
		}
		return
	}
	runOne(*exp)
}
