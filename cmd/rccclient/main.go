// Command rccclient drives a TCP deployment of rccnode replicas with a YCSB
// workload and reports throughput and latency.
//
//	rccclient -n 4 -peers 0=:7000,1=:7001,2=:7002,3=:7003 -txns 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/crypto"
	"repro/internal/quorum"
	"repro/internal/runtime"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/ycsb"
)

func parsePeers(s string) (map[types.ReplicaID]string, error) {
	peers := make(map[types.ReplicaID]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		peers[types.ReplicaID(id)] = kv[1]
	}
	return peers, nil
}

// buildAuth resolves the -auth / -auth-secret flags (with -mac-secret as a
// backward-compatible alias implying mac) into an authenticator.
func buildAuth(schemeArg, secret, macSecret string, party uint32) (crypto.Authenticator, error) {
	if schemeArg == "" && macSecret != "" {
		schemeArg = "mac"
	}
	if secret == "" {
		secret = macSecret
	}
	scheme, err := crypto.ParseScheme(schemeArg)
	if err != nil {
		return nil, err
	}
	if scheme == crypto.SchemeNone {
		return nil, nil
	}
	return crypto.NewAuth(scheme, party, []byte(secret))
}

func main() {
	var (
		id       = flag.Uint("id", 1, "client ID (>= 1)")
		n        = flag.Int("n", 4, "number of replicas")
		peersArg = flag.String("peers", "", "comma-separated id=host:port replica map")
		txns     = flag.Int("txns", 100, "transactions to execute")
		window   = flag.Int("window", 8, "client pipeline depth")
		zyz      = flag.Bool("zyzzyva", false, "collect all-n speculative responses (Zyzzyva deployments)")
		authArg  = flag.String("auth", "", "frame authentication scheme: none, mac, ds (must match the nodes); default none, or mac when -mac-secret is set")
		authKey  = flag.String("auth-secret", "", "shared deployment secret (must match the nodes)")
		macKey   = flag.String("mac-secret", "", "shared MAC secret (deprecated alias for -auth mac -auth-secret)")
		timeout  = flag.Duration("timeout", 60*time.Second, "overall deadline")
		sendQ    = flag.Int("send-queue", 0, "per-replica outbound queue depth (0 = default 4096)")
		sendB    = flag.Int("send-batch-bytes", 0, "max encoded bytes coalesced per write syscall (0 = default 128 KiB)")
	)
	flag.Parse()

	peers, err := parsePeers(*peersArg)
	if err != nil {
		log.Fatalf("rccclient: %v", err)
	}
	params, err := quorum.NewParams(*n)
	if err != nil {
		log.Fatalf("rccclient: %v", err)
	}

	mode := client.ModePBFT
	if *zyz {
		mode = client.ModeZyzzyva
	}
	cid := types.ClientID(*id)
	mach := client.New(client.Config{
		Client:       cid,
		Mode:         mode,
		Broadcast:    true,
		RetryTimeout: 2 * time.Second,
	})
	mach.SetWindow(*window)

	wl := ycsb.NewWorkload(ycsb.WorkloadConfig{Seed: int64(*id)})
	for i := 0; i < *txns; i++ {
		mach.Submit(wl.Next(cid))
	}
	done := make(chan struct{}, 1)
	count := 0
	mach.SetCompletionHook(func(client.Completion) {
		count++
		if count == *txns {
			done <- struct{}{}
		}
	})

	proc := runtime.NewClient(cid, params, mach)
	auth, err := buildAuth(*authArg, *authKey, *macKey, crypto.ClientPartyID(cid))
	if err != nil {
		log.Fatalf("rccclient: %v", err)
	}
	tcp, err := transport.NewTCP(transport.TCPConfig{
		IsClient:      true,
		SelfClient:    cid,
		Peers:         peers,
		Auth:          auth,
		QueueDepth:    *sendQ,
		MaxBatchBytes: *sendB,
	}, proc)
	if err != nil {
		log.Fatalf("rccclient: %v", err)
	}
	proc.Attach(tcp)

	start := time.Now()
	proc.Run()
	select {
	case <-done:
	case <-time.After(*timeout):
		log.Fatalf("rccclient: deadline exceeded with %d/%d complete", count, *txns)
	}
	elapsed := time.Since(start)
	proc.Stop()

	comps := mach.Completions()
	lats := make([]time.Duration, 0, len(comps))
	for _, c := range comps {
		lats = append(lats, c.Latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var p50, p99 time.Duration
	if len(lats) > 0 {
		p50 = lats[len(lats)/2]
		p99 = lats[len(lats)*99/100]
	}
	fmt.Printf("completed %d txns in %v: %.0f txn/s, p50 %v, p99 %v, retries %d\n",
		len(comps), elapsed.Round(time.Millisecond),
		float64(len(comps))/elapsed.Seconds(), p50, p99, mach.Retries())
}
