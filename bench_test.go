package repro

// One benchmark per table/figure of the paper's evaluation (§V). Each
// regenerates its experiment series and reports the headline number as a
// custom metric, so `go test -bench=.` doubles as the reproduction run:
//
//	go test -bench=. -benchmem .
//
// The flow-model experiments (Fig. 1, 7, 8, 9, summary) are deterministic
// and fast; Fig. 6 and Fig. 10 execute the real protocol state machines on
// the discrete-event simulator. Ablation benchmarks at the bottom isolate
// the design decisions DESIGN.md calls out.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/bench"
	"repro/internal/crypto"
	"repro/internal/exec"
	"repro/internal/flowsim"
	"repro/internal/ledger"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/rcc"
	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

// reportPeak extracts a table's peak numeric cell in the given column.
func reportPeak(b *testing.B, t *bench.Table, col int, unit string) {
	b.Helper()
	peak := 0.0
	for _, row := range t.Rows {
		var v float64
		if _, err := sscan(row[col], &v); err == nil && v > peak {
			peak = v
		}
	}
	b.ReportMetric(peak, unit)
}

func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func BenchmarkFig1AnalyticalBounds(b *testing.B) {
	var pts []model.Point
	for i := 0; i < b.N; i++ {
		pts = model.Fig1Series(model.DefaultFig1(400), 100)
	}
	b.ReportMetric(pts[len(pts)-1].Tcmax, "Tcmax_txn/s_n=100")
	b.ReportMetric(pts[len(pts)-1].Tmax, "Tmax_txn/s_n=100")
}

func BenchmarkFig6OrderingAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.Fig6(); len(t.Rows) != 4 {
			b.Fatal("fig6 rows")
		}
	}
}

func BenchmarkFig7LeftSingleReplica(b *testing.B) {
	env := flowsim.DefaultEnv()
	for i := 0; i < b.N; i++ {
		_ = flowsim.SingleReplicaFull(env, 100)
	}
	b.ReportMetric(flowsim.SingleReplicaReply(env), "reply_txn/s")
	b.ReportMetric(flowsim.SingleReplicaFull(env, 100), "full_txn/s")
}

func BenchmarkFig7RightCrypto(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig7Right()
	}
	_ = t
}

func benchFig8(b *testing.B, f func() *bench.Table) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = f()
	}
	reportPeak(b, t, 1, "peak_RCCn_ktxn/s")
}

func BenchmarkFig8aScalabilityNoFailures(b *testing.B)  { benchFig8(b, bench.Fig8a) }
func BenchmarkFig8bLatencyNoFailures(b *testing.B)      { benchFig8(b, bench.Fig8b) }
func BenchmarkFig8cScalabilityOneFailure(b *testing.B)  { benchFig8(b, bench.Fig8c) }
func BenchmarkFig8dLatencyOneFailure(b *testing.B)      { benchFig8(b, bench.Fig8d) }
func BenchmarkFig8eBatchingThroughput(b *testing.B)     { benchFig8(b, bench.Fig8e) }
func BenchmarkFig8fBatchingLatency(b *testing.B)        { benchFig8(b, bench.Fig8f) }
func BenchmarkFig8gNoOutOfOrderThroughput(b *testing.B) { benchFig8(b, bench.Fig8g) }
func BenchmarkFig8hNoOutOfOrderLatency(b *testing.B)    { benchFig8(b, bench.Fig8h) }

func BenchmarkFig9Paradigm(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig9()
	}
	reportPeak(b, t, 3, "peak_RCC-S_ktxn/s")
}

func BenchmarkFig10FailureTimeline(b *testing.B) {
	cfg := bench.DefaultFig10()
	cfg.Horizon = 30 * time.Second // trimmed for benchmark iterations
	cfg.CrashP2At = 20 * time.Second
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummaryRatios(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Summary()
	}
	_ = t
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md "Key design decisions")
// ---------------------------------------------------------------------------

// BenchmarkAblationConcurrency sweeps the instance count m at n=32,
// isolating the effect of concurrency (RCC3 vs RCCf+1 vs RCCn).
func BenchmarkAblationConcurrency(b *testing.B) {
	for _, m := range []int{1, 3, 11, 32} {
		b.Run(fmtSprintf("m=%d", m), func(b *testing.B) {
			var r flowsim.Result
			for i := 0; i < b.N; i++ {
				r = flowsim.Evaluate(flowsim.Setup{
					Protocol: flowsim.PBFT, N: 32, Concurrent: m, BatchSize: 100,
					Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC, OutOfOrder: true,
				})
			}
			b.ReportMetric(r.Throughput, "txn/s")
		})
	}
}

// BenchmarkAblationOutOfOrder isolates the out-of-order window (Fig. 8 g,h
// reduced to one on/off pair).
func BenchmarkAblationOutOfOrder(b *testing.B) {
	for _, ooo := range []bool{true, false} {
		b.Run(fmtSprintf("ooo=%v", ooo), func(b *testing.B) {
			var r flowsim.Result
			for i := 0; i < b.N; i++ {
				r = flowsim.Evaluate(flowsim.Setup{
					Protocol: flowsim.PBFT, N: 32, Concurrent: 1, BatchSize: 100,
					Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC, OutOfOrder: ooo,
				})
			}
			b.ReportMetric(r.Throughput, "txn/s")
		})
	}
}

// BenchmarkPermutationOrdering measures §IV's f_S permutation selection for
// the paper's largest deployment (m=91 instances per round).
func BenchmarkPermutationOrdering(b *testing.B) {
	digests := make([]types.Digest, 91)
	for i := range digests {
		digests[i] = types.Hash([]byte{byte(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rcc.ExecutionOrder(digests, true)
	}
}

// BenchmarkSimnetRCCRound measures full protocol rounds (4 replicas, all
// four instances deciding and executing) on the discrete-event simulator.
func BenchmarkSimnetRCCRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := simnet.New(simnet.Config{N: 4, Latency: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		reps := make([]*rcc.Replica, 4)
		for j := 0; j < 4; j++ {
			reps[j] = rcc.New(rcc.Config{BatchSize: 1, Window: 4})
			net.SetMachine(types.ReplicaID(j), reps[j])
		}
		net.Start()
		for c := types.ClientID(1); c <= 4; c++ {
			tx := types.Transaction{Client: c, Seq: 1, Op: []byte{byte(c)}}
			req := types.NewClientRequest(0, tx)
			for r := 0; r < 4; r++ {
				node := net.Node(types.ReplicaID(r))
				net.Schedule(0, func() { node.Machine().OnMessage(sm.FromClient(tx.Client), req) })
			}
		}
		net.Run(time.Second)
		if reps[0].RoundsExecuted() == 0 {
			b.Fatal("no rounds executed")
		}
	}
}

// BenchmarkWALAppend measures the durable journal's hot path under each
// durability policy, for a 1-transaction block record (54 B, the
// interactive BatchSize=1 default — fsync-latency bound) and a
// 100-transaction block record (5400 B, the paper's proposal size — closer
// to write-bandwidth bound). Group commit must amortize the fsync cost
// across concurrent appenders — an order of magnitude on the small-record
// case, visible directly in the records/fsync metric — which is what keeps
// durable mode off the consensus critical path.
func BenchmarkWALAppend(b *testing.B) {
	for _, size := range []struct {
		name string
		txns int
	}{
		{"block=1txn", 1},
		{"block=100txn", 100},
	} {
		payload := make([]byte, types.ProposalWireSize(size.txns))
		for i := range payload {
			payload[i] = byte(i)
		}
		for _, mode := range []struct {
			name string
			sync wal.SyncPolicy
		}{
			{"per-record-sync", wal.SyncAlways},
			{"group-commit", wal.SyncGroup},
		} {
			b.Run(size.name+"/"+mode.name, func(b *testing.B) {
				l, err := wal.Open(b.TempDir(), wal.Options{Sync: mode.sync})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				b.SetBytes(int64(len(payload)))
				// Many appenders per core — the replica runtime's
				// situation, and the case group commit exists for. fsync
				// is a blocking syscall, so appenders overlap it even on
				// one core.
				b.SetParallelism(32)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := l.Append(payload); err != nil {
							b.Error(err) // Fatal is not allowed off the benchmark goroutine
							return
						}
					}
				})
				if appends, syncs := l.Stats(); syncs > 0 {
					b.ReportMetric(float64(appends)/float64(syncs), "records/fsync")
				}
			})
		}
	}
}

// BenchmarkAsyncJournal measures the replica commit path — ONE sequential
// appender, the event loop's situation — through the durable ledger in
// both modes. Sync mode stops and waits out a full fsync per block (group
// commit cannot amortize with a single appender); async mode hands blocks
// to the pipelined committer and only the completion callbacks wait, so
// in-flight blocks share commit points. The async/sync ns/op ratio is the
// speedup the pipeline buys a replica, and records/fsync shows why. Both
// modes make every block durable before the timer stops.
func BenchmarkAsyncJournal(b *testing.B) {
	for _, size := range []struct {
		name string
		txns int
	}{
		{"block=1txn", 1},
		{"block=100txn", 100},
	} {
		mkBatch := func(seq uint64) *types.Batch {
			txns := make([]types.Transaction, size.txns)
			for i := range txns {
				txns[i] = types.Transaction{
					Client: types.ClientID(i%16 + 1), Seq: seq,
					Op: []byte(fmtSprintf("op-%d-%d", seq, i)),
				}
			}
			return &types.Batch{Txns: txns}
		}
		for _, mode := range []struct {
			name  string
			async bool
		}{
			{"sync", false},
			{"async", true},
		} {
			b.Run(size.name+"/"+mode.name, func(b *testing.B) {
				d, err := store.Open(b.TempDir(), store.Options{
					Sync:  wal.SyncGroup,
					Async: mode.async,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				state := types.Hash([]byte("state"))
				var completed atomic.Uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seq := uint64(i + 1)
					batch := mkBatch(seq)
					proof := ledger.Proof{Round: types.Round(seq), Digest: batch.Digest()}
					if mode.async {
						d.AppendAsync(batch, proof, state, func(lsn uint64, err error) {
							if err != nil {
								b.Error(err) // still counts below: the wait must terminate
							}
							completed.Add(1)
						})
					} else {
						if _, err := d.Append(batch, proof, state); err != nil {
							b.Fatal(err)
						}
					}
				}
				if mode.async {
					// The comparison is honest only if async also ends
					// durable: wait for every block's commit point.
					for completed.Load() < uint64(b.N) {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				if appends, syncs := d.WAL().Stats(); syncs > 0 {
					b.ReportMetric(float64(appends)/float64(syncs), "records/fsync")
				}
			})
		}
	}
}

// BenchmarkCodec races the registry-based binary codec (internal/types)
// against the gob encoding the transport used before the messaging-layer
// refactor, on the two message shapes that dominate the wire: a 250B-class
// consensus vote and a 100-transaction proposal. Each op is one marshal +
// one unmarshal. The binary variant appends into a reused buffer — the
// transport's pooled-buffer situation.
func BenchmarkCodec(b *testing.B) {
	for _, m := range []struct {
		name string
		msg  types.Message
	}{
		{"vote", bench.NetVote()},
		{"preprepare100", bench.NetPrePrepare(100)},
	} {
		b.Run(m.name+"/binary", func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]byte, 0, 16<<10)
			var encoded int
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = types.AppendMessage(buf[:0], m.msg)
				if err != nil {
					b.Fatal(err)
				}
				encoded = len(buf)
				if _, err := types.DecodeMessage(buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(encoded), "wire_B")
		})
		b.Run(m.name+"/gob", func(b *testing.B) {
			b.ReportAllocs()
			var encoded int
			for i := 0; i < b.N; i++ {
				buf, err := bench.GobMarshal(&bench.GobFrame{FromReplica: 1, Msg: m.msg})
				if err != nil {
					b.Fatal(err)
				}
				encoded = len(buf)
				if _, err := bench.GobUnmarshal(buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(encoded), "wire_B")
		})
	}
}

// discardEndpoint drops everything a receiver transport delivers.
type discardEndpoint struct{}

func (discardEndpoint) DeliverReplica(types.ReplicaID, types.Message) {}
func (discardEndpoint) DeliverClient(types.ClientID, types.Message)   {}

// BenchmarkBroadcast measures the cost ONE broadcast (send to 3 peers over
// real loopback TCP) charges the calling goroutine — the consensus event
// loop's per-send bill.
//
//	sync:  the pre-refactor path — gob-encode and write inline per peer,
//	       serialized by the connection mutex.
//	async: the refactored path — enqueue onto per-peer outbound queues;
//	       writer goroutines encode with the binary codec, coalesce bursts
//	       into multi-message frames, and write off the caller's back.
//
// Sustained enqueueing is bounded by writer throughput (backpressure), so
// the async number is honest steady-state cost, not just a channel send.
//
// The vote pair is named sync/async so scripts/benchgate enforces its
// speedup floor in CI (votes are every wire message except proposals, and
// the measured gap is >10x — the refactor's headline number). The
// 100-transaction proposal pair is deliberately NOT speedup-paired: at that
// size both paths approach the loopback bandwidth bound and the async side
// additionally pays receiver-side decode, so its (real, smaller) win is
// reported and regression-gated but not held to the speedup floor.
func BenchmarkBroadcast(b *testing.B) {
	const peers = 3
	for _, m := range []struct {
		name        string
		msg         types.Message
		syncN, asyN string
	}{
		{"vote", bench.NetVote(), "sync", "async"},
		{"preprepare100", bench.NetPrePrepare(100), "inline-gob", "enqueue"},
	} {
		b.Run(m.name+"/"+m.syncN, func(b *testing.B) {
			var addrs []string
			var servers []*bench.DiscardServer
			for i := 0; i < peers; i++ {
				s, err := bench.NewDiscardServer()
				if err != nil {
					b.Fatal(err)
				}
				servers = append(servers, s)
				addrs = append(addrs, s.Addr())
			}
			g, err := bench.DialGobBroadcaster(addrs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.Broadcast(0, m.msg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			g.Close()
			for _, s := range servers {
				s.Close()
			}
		})
		b.Run(m.name+"/"+m.asyN, func(b *testing.B) {
			peerMap := make(map[types.ReplicaID]string)
			var recvs []*transport.TCP
			for i := 0; i < peers; i++ {
				id := types.ReplicaID(i + 1)
				r, err := transport.NewTCP(transport.TCPConfig{Self: id, Listen: "127.0.0.1:0"}, discardEndpoint{})
				if err != nil {
					b.Fatal(err)
				}
				recvs = append(recvs, r)
				peerMap[id] = r.Addr()
			}
			t0, err := transport.NewTCP(transport.TCPConfig{
				Self: 0, Listen: "127.0.0.1:0", Peers: peerMap,
			}, discardEndpoint{})
			if err != nil {
				b.Fatal(err)
			}
			// Warm the links: messages enqueued before a link's first dial
			// completes fall into the drop-while-down policy, which would
			// invalidate the measurement below. Exactly ONE message per
			// link, so aggregate MsgsSent reaching `peers` proves every
			// individual link connected and wrote (a failed dial drops its
			// message, the total never arrives, and the bounded wait fails
			// loudly instead of hanging the CI bench job).
			for p := types.ReplicaID(1); p <= peers; p++ {
				if err := t0.Send(p, bench.NetVote()); err != nil {
					b.Fatal(err)
				}
			}
			warmDeadline := time.Now().Add(10 * time.Second)
			for t0.Stats().MsgsSent < peers {
				if time.Now().After(warmDeadline) {
					b.Fatalf("warmup stalled: %+v", t0.Stats())
				}
				time.Sleep(time.Millisecond)
			}
			dropped0 := t0.Stats().PeerDropped
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for p := types.ReplicaID(1); p <= peers; p++ {
					if err := t0.Send(p, m.msg); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			st := t0.Stats()
			if st.BatchesSent > 0 {
				b.ReportMetric(float64(st.MsgsSent)/float64(st.BatchesSent), "msgs/frame")
			}
			if st.PeerDropped > dropped0 {
				b.Errorf("dropped %d messages with healthy peers", st.PeerDropped-dropped0)
			}
			t0.Close()
			for _, r := range recvs {
				r.Close()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Observability (internal/obs)
// ---------------------------------------------------------------------------

// BenchmarkObsInstruments prices the individual hot-path instruments: one
// counter increment, one histogram observation, and one tracer sampling
// check for an unsampled transaction (the common case — 63 of 64 requests
// take only this branch). All must be allocation-free.
func BenchmarkObsInstruments(b *testing.B) {
	met := obs.NewNodeMetrics(obs.NewRegistry(), 4096, 64)
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			met.Requests.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			met.ObserveStage(obs.StageConsensus, time.Duration(i)%time.Second)
		}
	})
	b.Run("trace-unsampled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Client 1 seq 1 hashes outside the 1-in-64 sample; the call is
			// the pure rejection path.
			met.Trace(1, 1, obs.PointArrive)
		}
	})
}

// BenchmarkObsOverhead measures what live instrumentation charges the two
// paths the observability layer touches most: broadcasting a consensus vote
// (the event loop's per-decision bill) and committing a block through the
// async journal. Each path runs with the identical call structure against a
// no-op sink (zero NodeMetrics — every instrument nil) and a live registry;
// scripts/benchgate holds live within 5% of nop in CI.
func BenchmarkObsOverhead(b *testing.B) {
	variants := []struct {
		name string
		met  *obs.NodeMetrics
	}{
		{"nop", &obs.NodeMetrics{}},
		{"live", obs.NewNodeMetrics(obs.NewRegistry(), 4096, 64)},
	}

	for _, v := range variants {
		met := v.met
		b.Run("vote-broadcast/"+v.name, func(b *testing.B) {
			peerMap := make(map[types.ReplicaID]string)
			var recvs []*transport.TCP
			for i := 0; i < 3; i++ {
				id := types.ReplicaID(i + 1)
				r, err := transport.NewTCP(transport.TCPConfig{Self: id, Listen: "127.0.0.1:0"}, discardEndpoint{})
				if err != nil {
					b.Fatal(err)
				}
				recvs = append(recvs, r)
				peerMap[id] = r.Addr()
			}
			t0, err := transport.NewTCP(transport.TCPConfig{
				Self: 0, Listen: "127.0.0.1:0", Peers: peerMap,
			}, discardEndpoint{})
			if err != nil {
				b.Fatal(err)
			}
			defer t0.Close()
			defer func() {
				for _, r := range recvs {
					r.Close()
				}
			}()
			for p := types.ReplicaID(1); p <= 3; p++ {
				if err := t0.Send(p, bench.NetVote()); err != nil {
					b.Fatal(err)
				}
			}
			warmDeadline := time.Now().Add(10 * time.Second)
			for t0.Stats().MsgsSent < 3 {
				if time.Now().After(warmDeadline) {
					b.Fatalf("warmup stalled: %+v", t0.Stats())
				}
				time.Sleep(time.Millisecond)
			}
			vote := bench.NetVote()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The instrumentation a decided round charges the event
				// loop, around the real network work.
				met.Requests.Inc()
				met.Trace(uint64(i%16+1), uint64(i), obs.PointArrive)
				for p := types.ReplicaID(1); p <= 3; p++ {
					if err := t0.Send(p, vote); err != nil {
						b.Fatal(err)
					}
				}
				met.Decided.Inc()
				met.ObserveStage(obs.StageConsensus, time.Duration(i%1000)*time.Microsecond)
				met.Trace(uint64(i%16+1), uint64(i), obs.PointDecide)
			}
		})

		b.Run("async-journal/"+v.name, func(b *testing.B) {
			fsync := met.WALFsync
			d, err := store.Open(b.TempDir(), store.Options{
				Sync:  wal.SyncGroup,
				Async: true,
				AsyncOnCommit: func(_ int, _ int64, took time.Duration) {
					fsync.Observe(took)
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			state := types.Hash([]byte("state"))
			var completed atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq := uint64(i + 1)
				batch := &types.Batch{Txns: []types.Transaction{{
					Client: types.ClientID(i%16 + 1), Seq: seq, Op: []byte("op"),
				}}}
				proof := ledger.Proof{Round: types.Round(seq), Digest: batch.Digest()}
				submitted := time.Now()
				cli, cseq := uint64(i%16+1), seq
				d.AppendAsync(batch, proof, state, func(lsn uint64, err error) {
					if err != nil {
						b.Error(err)
					}
					met.ObserveStage(obs.StageJournal, time.Since(submitted))
					met.Trace(cli, cseq, obs.PointDurable)
					completed.Add(1)
				})
			}
			for completed.Load() < uint64(b.N) {
				runtime.Gosched()
			}
			b.StopTimer()
		})
	}
}

// BenchmarkFlightRecord prices the flight recorder where it bills the event
// loop: the vote-broadcast path, with the two protocol events a decided
// round records (instance decision, wave unification) around the real
// network work. The /nop variant runs the identical call structure through a
// zero NodeMetrics (nil recorder — every Emit is the nil-check); the /live
// variant records into a real 4096-slot ring. scripts/benchgate pairs them
// and holds live within 5% of nop in CI.
func BenchmarkFlightRecord(b *testing.B) {
	variants := []struct {
		name string
		met  *obs.NodeMetrics
	}{
		{"nop", &obs.NodeMetrics{}},
		{"live", obs.NewNodeMetrics(obs.NewRegistry(), 4096, 64)},
	}
	for _, v := range variants {
		met := v.met
		b.Run("vote-broadcast/"+v.name, func(b *testing.B) {
			peerMap := make(map[types.ReplicaID]string)
			var recvs []*transport.TCP
			for i := 0; i < 3; i++ {
				id := types.ReplicaID(i + 1)
				r, err := transport.NewTCP(transport.TCPConfig{Self: id, Listen: "127.0.0.1:0"}, discardEndpoint{})
				if err != nil {
					b.Fatal(err)
				}
				recvs = append(recvs, r)
				peerMap[id] = r.Addr()
			}
			t0, err := transport.NewTCP(transport.TCPConfig{
				Self: 0, Listen: "127.0.0.1:0", Peers: peerMap,
			}, discardEndpoint{})
			if err != nil {
				b.Fatal(err)
			}
			defer t0.Close()
			defer func() {
				for _, r := range recvs {
					r.Close()
				}
			}()
			for p := types.ReplicaID(1); p <= 3; p++ {
				if err := t0.Send(p, bench.NetVote()); err != nil {
					b.Fatal(err)
				}
			}
			warmDeadline := time.Now().Add(10 * time.Second)
			for t0.Stats().MsgsSent < 3 {
				if time.Now().After(warmDeadline) {
					b.Fatalf("warmup stalled: %+v", t0.Stats())
				}
				time.Sleep(time.Millisecond)
			}
			vote := bench.NetVote()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				met.Emit(0, flight.SubRCC, flight.KInstanceDecide, uint32(i%15), uint64(i%8), uint64(i), 0)
				for p := types.ReplicaID(1); p <= 3; p++ {
					if err := t0.Send(p, vote); err != nil {
						b.Fatal(err)
					}
				}
				met.Emit(0, flight.SubRCC, flight.KWaveUnify, 0, 0, uint64(i), 3)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Parallel execution (internal/exec)
// ---------------------------------------------------------------------------

// BenchmarkParallelExec prices the conflict-aware parallel executor against
// the serial baseline (the paper's 217 ktxn/s execution wall, Fig. 7 left)
// across worker counts and conflict rates. The conflict axis mixes a single
// hot record into an otherwise conflict-free write stream: at 0% every
// transaction touches a distinct record (one singleton component each), at
// 100% the whole batch is one component and must serialize.
//
// The conflict-free workers=8 variants are named .../serial and
// .../parallel: scripts/benchgate pairs them within the current run and CI
// fails if parallel is not >=2x serial on its multicore runners (on a
// single-core machine the pair measures pure engine overhead instead).
func BenchmarkParallelExec(b *testing.B) {
	const (
		execRecords = 1 << 16
		execBatch   = 2048
		execField   = 512
		execRounds  = 8
	)

	ycsbBatches := func(conflictPct int) []*types.Batch {
		rng := rand.New(rand.NewSource(int64(conflictPct) + 1))
		batches := make([]*types.Batch, execRounds)
		seq, next := uint64(0), 0
		for r := range batches {
			bt := &types.Batch{Txns: make([]types.Transaction, 0, execBatch)}
			for i := 0; i < execBatch; i++ {
				seq++
				key := uint32(0) // the hot record
				if rng.Intn(100) >= conflictPct {
					next++
					key = uint32(1 + next%(execRecords-1)) // distinct within a batch
				}
				value := make([]byte, execField)
				rng.Read(value)
				bt.Txns = append(bt.Txns, types.Transaction{
					Client: 1, Seq: seq, Op: ycsb.EncodeWrite(key, value),
				})
			}
			batches[r] = bt
		}
		return batches
	}

	bankBatches := func() []*types.Batch {
		const accounts = 8192
		rng := rand.New(rand.NewSource(9))
		batches := make([]*types.Batch, execRounds)
		seq := uint64(0)
		for r := range batches {
			bt := &types.Batch{Txns: make([]types.Transaction, 0, execBatch)}
			for i := 0; i < execBatch; i++ {
				seq++
				t := bank.Transfer{
					From:      fmtSprintf("acct-%05d", rng.Intn(accounts)),
					To:        fmtSprintf("acct-%05d", rng.Intn(accounts)),
					Threshold: 100,
					Amount:    1,
				}
				bt.Txns = append(bt.Txns, types.Transaction{Client: 1, Seq: seq, Op: t.Encode()})
			}
			batches[r] = bt
		}
		return batches
	}
	bankApp := func() exec.Application {
		opening := make(map[string]int64, 8192)
		for i := 0; i < 8192; i++ {
			opening[fmtSprintf("acct-%05d", i)] = 1_000_000
		}
		return bank.New(opening)
	}

	run := func(b *testing.B, app exec.Application, batches []*types.Batch, workers int) {
		e := exec.NewEngineOpts(app, nil, exec.Options{Workers: workers})
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.ExecuteBatch(batches[i%len(batches)], ledger.Proof{Round: types.Round(i + 1)})
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)*execBatch/b.Elapsed().Seconds(), "txn/s")
	}

	for _, conflict := range []int{0, 50, 100} {
		batches := ycsbBatches(conflict)
		variants := []struct {
			name    string
			workers int
		}{
			{"workers=1", 1}, {"workers=8", 8},
		}
		if conflict == 0 {
			// The gated pair, plus the sweep CI plots.
			variants = []struct {
				name    string
				workers int
			}{
				{"serial", 1}, {"workers=2", 2}, {"workers=4", 4}, {"parallel", 8},
			}
		}
		for _, v := range variants {
			b.Run(fmtSprintf("ycsb/conflict=%d/%s", conflict, v.name), func(b *testing.B) {
				run(b, ycsb.NewStore(execRecords), batches, v.workers)
			})
		}
	}
	batches := bankBatches()
	for _, workers := range []int{1, 8} {
		b.Run(fmtSprintf("bank/uniform/workers=%d", workers), func(b *testing.B) {
			run(b, bankApp(), batches, workers)
		})
	}
}

// ---------------------------------------------------------------------------
// Frame authentication (internal/crypto + the transport verify pool)
// ---------------------------------------------------------------------------

// BenchmarkAuth prices one Tag + one Verify — the per-record bill both ends
// of an authenticated link pay — for each scheme, on a vote-sized record
// (53 B, every wire message except proposals) and a 100-transaction proposal
// record.
//
// The vote-sized MAC variants are named /cached and /uncached:
// scripts/benchgate pairs them within the current run and CI fails when the
// precomputed-pair-key + pooled-HMAC path stops being >=5x the
// derive-keys-per-call implementation it replaced (-min-cached-speedup —
// same-run pairing, so the floor holds on any machine without a baseline).
// The proposal-sized MAC pair is deliberately NOT floor-paired (/precomputed
// vs /per-call): at 5400 B the HMAC's SHA passes dominate and key caching
// amortizes to ~1.2x, so its (real, smaller) win is reported and
// regression-gated but not held to the 5x floor.
func BenchmarkAuth(b *testing.B) {
	secret := []byte("bench-auth-secret")
	sizes := []struct {
		name               string
		n                  int
		cachedN, uncachedN string
	}{
		{"53B", 53, "cached", "uncached"},
		{"5400B", 5400, "precomputed", "per-call"},
	}
	run := func(name string, tagger, verifier crypto.Authenticator, payload []byte) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				tag := tagger.Tag(1, payload)
				if !verifier.Verify(0, payload, tag) {
					b.Fatal("verify failed")
				}
			}
		})
	}
	for _, s := range sizes {
		payload := make([]byte, s.n)
		for i := range payload {
			payload[i] = byte(i)
		}
		run("mac/"+s.name+"/"+s.cachedN, crypto.NewMAC(0, secret), crypto.NewMAC(1, secret), payload)
		run("mac/"+s.name+"/"+s.uncachedN, crypto.NewMACUncached(0, secret), crypto.NewMACUncached(1, secret), payload)
		run("ds/"+s.name, crypto.NewDSDev(0, secret), crypto.NewDSDev(1, secret), payload)
	}
}

// BenchmarkVerifyPool prices clearing a burst of 64 signed vote records from
// one sender — the drain the transport's inbound verify pool performs when
// consensus votes pile up on a link — two ways:
//
//	inline: one goroutine, per-record ed25519.Verify — the pre-pool
//	        readLoop's situation.
//	pooled: 8 workers splitting the burst, each clearing its share through
//	        VerifyBatch (shared-key batch verification with bisection
//	        fallback) — transport/verify.go's situation.
//
// scripts/benchgate pairs /pooled with /inline within the current run and CI
// fails when the pool stops being >=2x (-min-pooled-speedup). Like the
// ParallelExec floor this needs the runner's multiple cores; on a
// single-core machine the pair measures pure pool overhead instead.
func BenchmarkVerifyPool(b *testing.B) {
	const (
		votes   = 64
		workers = 8
		chunk   = votes / workers
	)
	secret := []byte("bench-auth-secret")
	signer := crypto.NewDSDev(0, secret)
	verifier := crypto.NewDSDev(1, secret)
	batch := verifier.(crypto.BatchAuthenticator)
	payloads := make([][]byte, votes)
	tags := make([][]byte, votes)
	for i := range payloads {
		p := make([]byte, 53)
		for j := range p {
			p[j] = byte(i + j)
		}
		payloads[i] = p
		tags[i] = signer.Tag(1, p)
	}

	b.Run("votes=64/inline", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range payloads {
				if !verifier.Verify(0, payloads[j], tags[j]) {
					b.Fatal("verify failed")
				}
			}
		}
		b.ReportMetric(float64(b.N)*votes/b.Elapsed().Seconds(), "verify/s")
	})
	b.Run("votes=64/pooled", func(b *testing.B) {
		oks := make([][]bool, workers)
		for w := range oks {
			oks[w] = make([]bool, chunk)
		}
		var wg sync.WaitGroup
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					lo := w * chunk
					batch.VerifyBatch(0, payloads[lo:lo+chunk], tags[lo:lo+chunk], oks[w])
				}(w)
			}
			wg.Wait()
			for w := range oks {
				for _, ok := range oks[w] {
					if !ok {
						b.Fatal("verify failed")
					}
				}
			}
		}
		b.ReportMetric(float64(b.N)*votes/b.Elapsed().Seconds(), "verify/s")
	})
}

// Small wrappers so the benchmark file reads without extra imports above.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }
func fmtSprintf(f string, a ...any) string       { return fmt.Sprintf(f, a...) }
