// Command benchgate turns `go test -bench` output into a machine-readable
// JSON summary and gates CI on performance regressions against a committed
// baseline.
//
// Emit mode — parse bench output files (later files override earlier ones
// for the same benchmark, so a short full-suite smoke pass can be refined
// by a longer run of the gated benchmarks):
//
//	go test -bench=. -benchtime=1x -run='^$' -benchmem ./... | tee bench.txt
//	go run ./scripts/benchgate -emit -out BENCH_ci.json bench.txt
//
// Gate mode — compare against the committed baseline and fail (exit 1) on
// a >25% ns/op regression in any benchmark matching -gate-pattern, and on
// an async/sync speedup below -min-speedup. The speedup check pairs every
// gated benchmark ending in "/async" with its "/sync" sibling — both the
// durability pipeline (BenchmarkAsyncJournal) and the messaging layer
// (BenchmarkBroadcast/vote) ride it:
//
//	go run ./scripts/benchgate -gate -baseline BENCH_baseline.json \
//	    -current BENCH_ci.json -max-regress 0.25 -min-speedup 1.5
//
// A third gate, -max-overhead, pairs every benchmark ending in "/live" with
// its "/nop" sibling within the CURRENT run (no baseline needed) and fails
// when live instrumentation costs more than the allowed fraction — how CI
// holds the observability layer to ≤5% on the instrumented hot paths
// (BenchmarkObsOverhead).
//
// A fourth gate, -min-parallel-speedup, pairs every benchmark ending in
// "/parallel" with its "/serial" sibling within the CURRENT run and fails
// when the parallel variant is not at least that many times faster — how CI
// holds the conflict-aware execution engine to its >=2x floor on the
// conflict-free workload (BenchmarkParallelExec) on multicore runners.
//
// Two more same-run pair gates hold the frame-authentication fast paths:
// -min-cached-speedup pairs "/cached" with "/uncached" (BenchmarkAuth — the
// precomputed-MAC-key + pooled-HMAC path against the derive-per-call
// implementation it replaced, >=5x), and -min-pooled-speedup pairs
// "/pooled" with "/inline" (BenchmarkVerifyPool — the parallel batched
// signature-verification drain against sequential per-record verification,
// >=2x on multicore runners).
//
// Refreshing the baseline: benchmark numbers are machine-bound, so the
// baseline must come from the SAME runner class that gates. The CI bench
// job uploads BENCH_ci.json with `if: always()` — download the artifact
// from any run on that runner class (a run this gate itself failed works,
// which is exactly how a baseline seeded on another machine gets
// corrected), commit it as BENCH_baseline.json, and the gate compares
// like-for-like from then on. Benchmark names are normalized without the
// -GOMAXPROCS suffix so runner core counts do not break matching.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed numbers.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the BENCH_ci.json / BENCH_baseline.json schema.
type Summary struct {
	Format     int               `json:"format"`
	Go         string            `json:"go"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	var (
		emit       = flag.Bool("emit", false, "parse bench output files into -out JSON")
		gate       = flag.Bool("gate", false, "compare -current against -baseline")
		out        = flag.String("out", "BENCH_ci.json", "emit: output path")
		baseline   = flag.String("baseline", "BENCH_baseline.json", "gate: committed baseline path")
		current    = flag.String("current", "BENCH_ci.json", "gate: freshly emitted summary path")
		maxRegress = flag.Float64("max-regress", 0.25, "gate: fail when ns/op exceeds baseline by more than this fraction")
		minSpeedup = flag.Float64("min-speedup", 0, "gate: fail when an async variant is not at least this many times faster than its sync sibling (0 disables)")
		maxOverhd  = flag.Float64("max-overhead", 0, "gate: fail when a /live variant exceeds its /nop sibling by more than this fraction, both from the current run (0 disables)")
		minParSpd  = flag.Float64("min-parallel-speedup", 0, "gate: fail when a /parallel variant is not at least this many times faster than its /serial sibling, both from the current run (0 disables)")
		minCached  = flag.Float64("min-cached-speedup", 0, "gate: fail when a /cached variant is not at least this many times faster than its /uncached sibling, both from the current run (0 disables)")
		minPooled  = flag.Float64("min-pooled-speedup", 0, "gate: fail when a /pooled variant is not at least this many times faster than its /inline sibling, both from the current run (0 disables)")
		pattern    = flag.String("gate-pattern", `^Benchmark(WALAppend|AsyncJournal|Codec|Broadcast|Obs|FlightRecord|ParallelExec|Auth|VerifyPool)`, "gate: regexp selecting the benchmarks that block the build")
	)
	flag.Parse()
	switch {
	case *emit == *gate:
		fatal("exactly one of -emit or -gate is required")
	case *emit:
		runEmit(*out, flag.Args())
	default:
		runGate(*baseline, *current, *pattern, *maxRegress, *minSpeedup, *maxOverhd, *minParSpd, *minCached, *minPooled)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}

func runEmit(out string, files []string) {
	if len(files) == 0 {
		fatal("emit: no bench output files given")
	}
	sum := Summary{Format: 1, Go: runtime.Version(), Benchmarks: map[string]Result{}}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal("emit: %v", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			name, res, ok := parseLine(line)
			if ok {
				sum.Benchmarks[name] = res // later files override
			}
		}
	}
	if len(sum.Benchmarks) == 0 {
		fatal("emit: no benchmark lines found in %v", files)
	}
	buf, err := json.MarshalIndent(&sum, "", "  ")
	if err != nil {
		fatal("emit: %v", err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		fatal("emit: %v", err)
	}
	fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(sum.Benchmarks), out)
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkFoo/case-8  \t 1234 \t 5678 ns/op \t 31.0 records/fsync \t 647 B/op \t 13 allocs/op
func parseLine(line string) (string, Result, bool) {
	fields := strings.Split(line, "\t")
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := procSuffix.ReplaceAllString(strings.TrimSpace(fields[0]), "")
	iters, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	for _, f := range fields[2:] {
		parts := strings.Fields(f)
		if len(parts) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			continue
		}
		switch parts[1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[parts[1]] = v
		}
	}
	if res.NsPerOp == 0 {
		return "", Result{}, false
	}
	return name, res, true
}

func load(path string) Summary {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("gate: %v", err)
	}
	var sum Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		fatal("gate: %s: %v", path, err)
	}
	return sum
}

func runGate(basePath, curPath, pattern string, maxRegress, minSpeedup, maxOverhead, minParallelSpeedup, minCachedSpeedup, minPooledSpeedup float64) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		fatal("gate: bad -gate-pattern: %v", err)
	}
	base, cur := load(basePath), load(curPath)
	var failures []string

	checked := 0
	for name, b := range base.Benchmarks {
		if !re.MatchString(name) {
			continue
		}
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from current run (renamed or deleted? refresh the baseline)", name))
			continue
		}
		checked++
		if c.NsPerOp > b.NsPerOp*(1+maxRegress) {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.0f%% > +%.0f%% allowed)",
				name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*maxRegress))
		}
	}
	if checked == 0 {
		failures = append(failures, fmt.Sprintf("no baseline benchmarks match %q — the gate is checking nothing; refresh the baseline", pattern))
	}

	if minSpeedup > 0 {
		pairs := 0
		for name, c := range cur.Benchmarks {
			if !re.MatchString(name) || !strings.HasSuffix(name, "/async") {
				continue
			}
			syncName := strings.TrimSuffix(name, "/async") + "/sync"
			s, ok := cur.Benchmarks[syncName]
			if !ok {
				continue
			}
			pairs++
			if speedup := s.NsPerOp / c.NsPerOp; speedup < minSpeedup {
				failures = append(failures, fmt.Sprintf("%s: async is only %.2fx sync (%.0f vs %.0f ns/op), want >= %.1fx",
					name, speedup, c.NsPerOp, s.NsPerOp, minSpeedup))
			}
		}
		if pairs == 0 {
			failures = append(failures, "no sync/async benchmark pairs found for the -min-speedup check")
		}
	}

	if maxOverhead > 0 {
		// Instrumentation overhead pairs every "/live" benchmark with its
		// "/nop" sibling — both from the CURRENT run, so the check is
		// machine-independent and needs no baseline entry to exist first.
		pairs := 0
		for name, c := range cur.Benchmarks {
			if !re.MatchString(name) || !strings.HasSuffix(name, "/live") {
				continue
			}
			nopName := strings.TrimSuffix(name, "/live") + "/nop"
			n, ok := cur.Benchmarks[nopName]
			if !ok {
				continue
			}
			pairs++
			if c.NsPerOp > n.NsPerOp*(1+maxOverhead) {
				failures = append(failures, fmt.Sprintf("%s: live instrumentation costs %.0f ns/op vs %.0f no-op (+%.1f%% > +%.0f%% allowed)",
					name, c.NsPerOp, n.NsPerOp, 100*(c.NsPerOp/n.NsPerOp-1), 100*maxOverhead))
			}
		}
		if pairs == 0 {
			failures = append(failures, "no nop/live benchmark pairs found for the -max-overhead check")
		}
	}

	if minParallelSpeedup > 0 {
		// Parallel-execution floor: every "/parallel" benchmark against its
		// "/serial" sibling, both from the CURRENT run, so the check holds
		// on whatever core count the runner has (the benchmark itself only
		// pairs the names on its conflict-free workload).
		pairs := 0
		for name, c := range cur.Benchmarks {
			if !re.MatchString(name) || !strings.HasSuffix(name, "/parallel") {
				continue
			}
			serialName := strings.TrimSuffix(name, "/parallel") + "/serial"
			s, ok := cur.Benchmarks[serialName]
			if !ok {
				continue
			}
			pairs++
			if speedup := s.NsPerOp / c.NsPerOp; speedup < minParallelSpeedup {
				failures = append(failures, fmt.Sprintf("%s: parallel is only %.2fx serial (%.0f vs %.0f ns/op), want >= %.1fx",
					name, speedup, c.NsPerOp, s.NsPerOp, minParallelSpeedup))
			}
		}
		if pairs == 0 {
			failures = append(failures, "no serial/parallel benchmark pairs found for the -min-parallel-speedup check")
		}
	}

	if minCachedSpeedup > 0 {
		// Cached-MAC floor: the precomputed-pair-key + pooled-HMAC Tag+Verify
		// path against the derive-keys-per-call implementation it replaced
		// (BenchmarkAuth .../cached vs .../uncached), paired within the
		// current run so the floor is machine-independent.
		failures = append(failures, pairSpeedup(cur.Benchmarks, re, "cached", "uncached", minCachedSpeedup)...)
	}

	if minPooledSpeedup > 0 {
		// Verify-pool floor: the parallel batched signature-verification
		// drain against sequential per-record verification
		// (BenchmarkVerifyPool .../pooled vs .../inline) — like the parallel
		// execution floor, this needs the runner's multiple cores.
		failures = append(failures, pairSpeedup(cur.Benchmarks, re, "pooled", "inline", minPooledSpeedup)...)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d gated benchmarks within +%.0f%% of baseline\n", checked, 100*maxRegress)
}

// pairSpeedup enforces a same-run speedup floor: every gated benchmark
// ending in "/<fast>" must be at least floor times faster than its
// "/<slow>" sibling from the same summary. Returns the failure messages,
// including one when no pairs exist at all (a silent gate checks nothing).
func pairSpeedup(cur map[string]Result, re *regexp.Regexp, fast, slow string, floor float64) []string {
	var failures []string
	pairs := 0
	for name, c := range cur {
		if !re.MatchString(name) || !strings.HasSuffix(name, "/"+fast) {
			continue
		}
		s, ok := cur[strings.TrimSuffix(name, "/"+fast)+"/"+slow]
		if !ok {
			continue
		}
		pairs++
		if speedup := s.NsPerOp / c.NsPerOp; speedup < floor {
			failures = append(failures, fmt.Sprintf("%s: %s is only %.2fx %s (%.0f vs %.0f ns/op), want >= %.1fx",
				name, fast, speedup, slow, c.NsPerOp, s.NsPerOp, floor))
		}
	}
	if pairs == 0 {
		failures = append(failures, fmt.Sprintf("no %s/%s benchmark pairs found for the speedup floor check", slow, fast))
	}
	return failures
}
