#!/usr/bin/env bash
# Admin-endpoint smoke test: a real 4-node rccnode cluster over TCP with the
# admin HTTP listener on, driven by rccclient, then scraped. Asserts that
# /readyz goes 200 on every replica, that /metrics parses far enough to carry
# the key series, that the per-stage latency histograms actually observed
# the transactions the client executed, and that every replica's flight
# recorder (/debug/events) captured protocol events — the live-cluster
# acceptance check for the observability layer. The cluster runs with -auth ds (signed frames,
# verify worker pool, digest cache), so the verify-stage histogram and the
# verified-frames counter must move too — the CLI-level acceptance check for
# the authentication layer.
set -euo pipefail

cd "$(dirname "$0")/.."

TXNS=${TXNS:-200}
DIR=$(mktemp -d)
BIN="$DIR/bin"
mkdir -p "$BIN"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$BIN/rccnode" ./cmd/rccnode
go build -o "$BIN/rccclient" ./cmd/rccclient

PEERS="0=127.0.0.1:7700,1=127.0.0.1:7701,2=127.0.0.1:7702,3=127.0.0.1:7703"
SECRET="admin-smoke-secret"
for i in 0 1 2 3; do
  # -batch 1: the client keeps only its window in flight, so interactive
  # batch sizing is what keeps the run fast. -auth ds turns on signed
  # frames with the pooled verifier; -digest-cache the cross-instance
  # verified-request cache.
  "$BIN/rccnode" -id "$i" -n 4 -peers "$PEERS" -batch 1 \
    -auth ds -auth-secret "$SECRET" -digest-cache 4096 \
    -data-dir "$DIR/replica-$i" -admin-addr "127.0.0.1:770$((i+4))" \
    -stats 0 >"$DIR/node-$i.log" 2>&1 &
  PIDS+=($!)
done

# Every replica must report ready (durable, journaling, caught up).
for i in 0 1 2 3; do
  addr="127.0.0.1:770$((i+4))"
  for attempt in $(seq 1 50); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
      break
    fi
    if [ "$attempt" -eq 50 ]; then
      echo "FAIL: replica $i never became ready" >&2
      cat "$DIR/node-$i.log" >&2
      exit 1
    fi
    sleep 0.2
  done
done
echo "OK: all replicas ready"

"$BIN/rccclient" -n 4 -peers "$PEERS" -txns "$TXNS" -window 16 \
  -auth ds -auth-secret "$SECRET"

# Scrape replica 0 and assert the key series exist and moved.
METRICS=$(curl -fsS "http://127.0.0.1:7704/metrics")

# series <name-with-labels-prefix>: the sample must be present with a
# strictly positive value.
series() {
  local want="$1"
  local line
  line=$(grep -v '^#' <<<"$METRICS" | grep -F "$want" | head -n 1) || true
  if [ -z "$line" ]; then
    echo "FAIL: /metrics is missing $want" >&2
    exit 1
  fi
  local val="${line##* }"
  if ! awk -v v="$val" 'BEGIN { exit (v > 0 ? 0 : 1) }'; then
    echo "FAIL: $want is $val, want > 0" >&2
    exit 1
  fi
  echo "OK: $line"
}

series 'rcc_requests_total'
series 'rcc_rounds_decided_total'
series 'rcc_rounds_unified_total'
series 'rcc_acks_sent_total'
series 'rcc_stage_latency_seconds_count{stage="verify"}'
series 'rcc_stage_latency_seconds_count{stage="consensus"}'
series 'rcc_stage_latency_seconds_count{stage="unify"}'
series 'rcc_stage_latency_seconds_count{stage="execute"}'
series 'rcc_stage_latency_seconds_count{stage="journal"}'
series 'rcc_stage_latency_seconds_count{stage="ack"}'
series 'wal_fsync_seconds_count'
series 'wal_appends_total'
series 'rcc_txns_executed_total'
series 'rcc_durability_healthy'
series 'transport_msgs_sent_total'
series 'transport_verified_frames_total'

# The consensus stage must have observed at least the rounds the client's
# transactions decided (no-op fills make it strictly more).
DECIDED=$(grep -F 'rcc_stage_latency_seconds_count{stage="consensus"}' <<<"$METRICS" | awk '{print $2}')
if [ "${DECIDED%.*}" -lt 1 ]; then
  echo "FAIL: consensus stage histogram empty after $TXNS txns" >&2
  exit 1
fi

# The lifecycle tracer must have sampled something.
curl -fsS "http://127.0.0.1:7704/debug/trace" | head -n 5

# The flight recorder must be populated on every replica: after this much
# load each text dump has to carry protocol events (a decided round records
# instance_decide + wave_unify under RCC; PBFT rounds record commits and
# checkpoint adoptions) and end with the ?since= cursor for the next poll.
for i in 0 1 2 3; do
  EVENTS=$(curl -fsS "http://127.0.0.1:770$((i+4))/debug/events")
  if ! grep -Eq 'instance_decide|wave_unify|checkpoint_adopt|snapshot_commit' <<<"$EVENTS"; then
    echo "FAIL: replica $i /debug/events carries no protocol events:" >&2
    head -n 10 <<<"$EVENTS" >&2
    exit 1
  fi
  CURSOR=$(tail -n 1 <<<"$EVENTS")
  if ! grep -Eq '^next=[0-9]+$' <<<"$CURSOR"; then
    echo "FAIL: replica $i /debug/events dump does not end with a next= cursor: $CURSOR" >&2
    exit 1
  fi
done
echo "OK: /debug/events populated on all replicas ($(grep -c . <<<"$EVENTS") lines on replica 3)"

# Incremental scrape: re-polling from the returned cursor must be valid and
# ends with a cursor at least as large.
NEXT=${CURSOR#next=}
curl -fsS "http://127.0.0.1:7707/debug/events?since=$NEXT" | tail -n 1

echo "admin smoke: PASS"
