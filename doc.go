// Package repro is a from-scratch Go reproduction of "RCC: Resilient
// Concurrent Consensus for High-Throughput Secure Transaction Processing"
// (Gupta, Hellings, Sadoghi — ICDE 2021).
//
// The public API lives in internal/core (cluster assembly), the paradigm in
// internal/rcc, the baseline protocols in internal/{pbft,zyzzyva,sbft,
// hotstuff,mirbft}, and the experiment harness in internal/bench plus
// cmd/rccbench. See README.md for the package tour, the subsystem
// overviews, and how to run rccnode/rccclient/rccbench.
//
// Durable storage: replicas configured with a data directory
// (runtime.Config.DataDir, core.Options.DataDir, rccnode -data-dir)
// journal every decided block through a segmented, CRC-checked,
// group-commit write-ahead log (internal/wal) and persist execution-state
// checkpoints (internal/store) — RCC's dynamic per-need checkpoints
// (§III-D) double as the durable recovery points. A restarted replica
// replays the log (truncating a torn tail, refusing corruption), restores
// the application from the latest checkpoint, and resumes at its pre-crash
// ledger height with an identical head hash — its own disk suffices. See
// internal/wal's package documentation for the on-disk format and
// examples/recovery for a kill-and-restart walkthrough. Data dirs are
// stamped with a replica identity and format version on first open and
// refuse to serve a different replica or a newer format.
//
// Async pipelined durability: with runtime.Config.Journaling.Async (rccnode
// -async-journal, on by default there) the fsync leaves the consensus
// event loop. Executed blocks are handed to a background committer over a
// bounded in-flight queue (-journal-queue), many blocks share each commit
// point (-journal-batch-bytes caps the batch), and the client replies for
// a block wait for its WAL record to be reported durable — under an
// fsyncing policy an acknowledged transaction survives any crash (with
// -sync none the commit point is flush-only: process-crash-safe, not
// power-loss-safe), while the per-block fsync stall is gone
// (BenchmarkAsyncJournal measures the speedup; records/fsync shows the
// amortization). When the queue fills, execution back-pressures; shutdown
// and checkpoints drain it so snapshots never outrun the journal. See
// internal/wal's package documentation for the pipeline design.
//
// Non-blocking messaging layer: no network I/O or encoding ever runs on
// the consensus event loop. Send and SendClient on every transport
// (internal/transport) are enqueue-only — bounded per-destination queues
// feed dedicated writer goroutines that encode messages through the
// registry-based binary codec in internal/types (explicit MsgType tag,
// per-type Marshal/Unmarshal, pooled buffers; replaces per-message gob),
// coalesce bursts into multi-message frames (wire format v2, one write
// syscall per burst), and redial failed peers with exponential backoff.
// Replica links backpressure on overflow while the peer is healthy and
// drop (counted) while it is down; client links always drop on overflow,
// so one stalled client or peer can never delay anyone else — client
// acks ride these per-client queues straight off the WAL committer.
// Connections open with a wire-version handshake and refuse mismatched
// peers, the network twin of store.ErrDataDirMismatch. rccnode/rccclient
// expose -send-queue, -client-queue, and -send-batch-bytes;
// BenchmarkBroadcast and BenchmarkCodec measure the win (enqueue-only
// vote broadcast is >10x the old inline gob+write path) and CI gates it.
//
// State-transfer subsystem: a replica whose disk no longer reaches the
// cluster — wiped, corrupted, or partitioned past what in-protocol
// checkpoint catch-up (§III-C/§III-D) can bridge — heals itself through
// internal/statesync (rccnode -state-sync, on by default with -data-dir).
// It probes its peers, trusts only a target that f+1 distinct replicas
// attest with byte-identical offers (snapshot digests, ledger head, and
// the consensus machine's serialized frontier, sm.StateSyncable), fetches
// the snapshot in bounded chunks (-snapshot-chunk-bytes) plus the ledger
// suffix in block ranges, and verifies everything against the attested
// digests: reassembled chunks must hash to the attested state digest,
// blocks must chain hash-to-hash from the attested anchor to the attested
// head, proofs must cover their batches. The install is crash-atomic
// (staging + commit marker): a kill -9 at any point leaves either the
// pre-transfer state or the fully installed one, never a mix. Installing
// rebases the WAL to the snapshot height (records below it live on only
// inside the pinned base checkpoint) and hands the machine the attested
// frontier, so the replica votes at the cluster head immediately —
// including decisions it accumulated while the transfer ran. Acked⇒durable
// is preserved across a transfer: a syncing replica defers no acks (it is
// not executing), and after the install its journal again covers exactly
// the chain it acknowledges. rccbench -exp statesync reports transfer
// throughput (MB/s, blocks/s).
//
// Conflict-aware parallel execution: the execution engine (internal/exec)
// no longer applies unified rounds serially. The Application contract
// exposes each transaction's state-key footprint (Keys, with
// types.StateKey identifying the state it reads or writes); the engine
// partitions every batch into connected components of the conflict graph
// (union-find over shared keys), packs components onto a bounded worker
// pool (runtime.Config.Exec.Workers, core.Options.ExecWorkers, rccnode
// -exec-workers; 0 = GOMAXPROCS, 1 = the serial engine), and executes
// conflicting transactions one at a time in batch order on a single
// goroutine. Per-transaction result digests assemble in batch-index order,
// so ResultHash and StateDigest are byte-identical on every replica
// regardless of worker count or scheduling — one replica's parallelism
// knob never shows in its replies. Transactions whose footprint an
// application cannot declare (Keys ok=false) run alone as barriers. Both
// applications (internal/bank with sharded per-account locking,
// internal/ycsb with per-record disjoint writes) declare footprints;
// BenchmarkParallelExec and rccbench -exp exec measure txn/s vs workers
// and conflict rate, and CI gates parallel >= 2x serial on the
// conflict-free workload (scripts/benchgate -min-parallel-speedup).
//
// Compatibility note: runtime.Config's flat durability and state-sync
// knobs were regrouped in the same change — Durability/AsyncJournal/
// JournalQueueDepth/JournalMaxBatchBytes/SnapshotEvery became the
// Journaling (runtime.JournalOptions) group, the StateSync*/SnapshotChunk
// fields became the StateSync (runtime.StateSyncOptions) group, and the
// executor's worker count lives in Exec (runtime.ExecOptions).
// core.Options and the rccnode flags are unchanged.
//
// Frame authentication at line rate: internal/crypto implements the
// paper's Fig. 7-right schemes as production hot paths. NewMAC precomputes
// pairwise HMAC keys and pools HMAC state (Tag+Verify is one pool hit, one
// allocation — CI holds it >= 5x the derive-per-call path via
// scripts/benchgate -min-cached-speedup). NewDSDev derives a deterministic
// ED25519 dev keyring from one shared secret, so rccnode/rccclient key a
// whole cluster with -auth none|mac|ds plus -auth-secret (production keys
// plug into NewDS/KeyRing). With signatures, inbound verification runs on
// a bounded worker pool in internal/transport (-verify-workers) that
// batch-verifies each frame's records through one BatchVerifier (bisection
// isolates forged records) while preserving exact per-link delivery order;
// a sharded cache of verified client-request digests (-digest-cache,
// internal/crypto/digestcache) lets any of RCC's m concurrent instances
// skip re-verifying a retransmitted request another instance already
// checked, and links exceeding consecutive bad tags are demoted
// (reconnect, counted). The verify stage reports into
// rcc_stage_latency_seconds{stage="verify"}; rccbench -exp crypto measures
// the live none/mac/ds cost on a real loopback cluster, and a determinism
// test pins byte-identical ResultHash/StateDigest across verify-worker
// counts. See the README's "Authentication" section.
//
// Observability: internal/obs instruments the full request path —
// per-stage latency histograms (verify, consensus, unify, execute,
// journal, ack),
// consensus/WAL/transport/statesync counters, Go runtime self-metrics,
// and a deterministic 1-in-N transaction lifecycle tracer — behind a
// dependency-free, allocation-free metrics registry whose overhead CI
// gates at ≤5% of the instrumented hot paths. rccnode -admin-addr serves
// /metrics (Prometheus text format), /healthz (flips on the sticky
// durability error), /readyz (journaling and caught up), /debug/trace,
// /debug/events, and /debug/pprof. See internal/obs and the README's
// "Observability" section; rccbench -exp stages prints the same stage
// breakdown against client-observed end-to-end latency.
//
// Flight recorder: internal/obs/flight is the black box behind
// /debug/events — a lock-free bounded ring of fixed-shape protocol events
// (view changes, suspects, checkpoint adoptions, instance decisions, wave
// unifications, voids, recovery kicks, connect/reconnect/demotions,
// fsync stalls, the sticky durability poison, snapshot commits, statesync
// phase transitions and offer rejections with causes, and loop_stalled
// from the event-loop watchdog). Dumps are cursor-based (?since=, text or
// binary), mirror crash-safely to <data-dir>/flight.bin (-flight-mirror,
// plus immediately on durability poison), and merge across replicas into
// one causally ordered cluster timeline with anomaly highlighting:
// rccnode -timeline <admin-addr|flight.bin>[,...]. rccbench -exp timeline
// rehearses the workflow in-process; see the README's "Flight recorder &
// cluster timeline" section for the event catalog, the cursor contract,
// and a worked stuck-wave diagnosis.
//
// The root-level benchmarks (bench_test.go) expose one testing.B target per
// table and figure of the paper's evaluation:
//
//	go test -bench=. -benchmem .
//
// CI runs them (benchtime=1x smoke plus a longer WAL/journal/messaging/
// observability/execution pass), emits BENCH_ci.json, and gates merges on
// >25% ns/op regressions against the committed BENCH_baseline.json via
// scripts/benchgate, which also enforces the observability overhead
// ceiling (-max-overhead), the parallel-execution speedup floor
// (-min-parallel-speedup), and the authentication floors
// (-min-cached-speedup, -min-pooled-speedup).
package repro
