// Package repro is a from-scratch Go reproduction of "RCC: Resilient
// Concurrent Consensus for High-Throughput Secure Transaction Processing"
// (Gupta, Hellings, Sadoghi — ICDE 2021).
//
// The public API lives in internal/core (cluster assembly), the paradigm in
// internal/rcc, the baseline protocols in internal/{pbft,zyzzyva,sbft,
// hotstuff,mirbft}, and the experiment harness in internal/bench plus
// cmd/rccbench. See README.md for the tour, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for measured-vs-paper results.
//
// The root-level benchmarks (bench_test.go) expose one testing.B target per
// table and figure of the paper's evaluation:
//
//	go test -bench=. -benchmem .
package repro
