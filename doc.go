// Package repro is a from-scratch Go reproduction of "RCC: Resilient
// Concurrent Consensus for High-Throughput Secure Transaction Processing"
// (Gupta, Hellings, Sadoghi — ICDE 2021).
//
// The public API lives in internal/core (cluster assembly), the paradigm in
// internal/rcc, the baseline protocols in internal/{pbft,zyzzyva,sbft,
// hotstuff,mirbft}, and the experiment harness in internal/bench plus
// cmd/rccbench. See README.md for the tour, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for measured-vs-paper results.
//
// Durable storage: replicas configured with a data directory
// (runtime.Config.DataDir, core.Options.DataDir, rccnode -data-dir)
// journal every decided block through a segmented, CRC-checked,
// group-commit write-ahead log (internal/wal) and persist execution-state
// checkpoints (internal/store) — RCC's dynamic per-need checkpoints
// (§III-D) double as the durable recovery points. A restarted replica
// replays the log (truncating a torn tail, refusing corruption), restores
// the application from the latest checkpoint, and resumes at its pre-crash
// ledger height with an identical head hash — no state transfer from
// peers. See internal/wal's package documentation for the on-disk format
// and examples/recovery for a kill-and-restart walkthrough. Data dirs are
// stamped with a replica identity and format version on first open and
// refuse to serve a different replica or a newer format.
//
// Async pipelined durability: with runtime.Config.AsyncJournal (rccnode
// -async-journal, on by default there) the fsync leaves the consensus
// event loop. Executed blocks are handed to a background committer over a
// bounded in-flight queue (-journal-queue), many blocks share each commit
// point (-journal-batch-bytes caps the batch), and the client replies for
// a block wait for its WAL record to be reported durable — under an
// fsyncing policy an acknowledged transaction survives any crash (with
// -sync none the commit point is flush-only: process-crash-safe, not
// power-loss-safe), while the per-block fsync stall is gone
// (BenchmarkAsyncJournal measures the speedup; records/fsync shows the
// amortization). When the queue fills, execution back-pressures; shutdown
// and checkpoints drain it so snapshots never outrun the journal. See
// internal/wal's package documentation for the pipeline design.
//
// Non-blocking messaging layer: no network I/O or encoding ever runs on
// the consensus event loop. Send and SendClient on every transport
// (internal/transport) are enqueue-only — bounded per-destination queues
// feed dedicated writer goroutines that encode messages through the
// registry-based binary codec in internal/types (explicit MsgType tag,
// per-type Marshal/Unmarshal, pooled buffers; replaces per-message gob),
// coalesce bursts into multi-message frames (wire format v2, one write
// syscall per burst), and redial failed peers with exponential backoff.
// Replica links backpressure on overflow while the peer is healthy and
// drop (counted) while it is down; client links always drop on overflow,
// so one stalled client or peer can never delay anyone else — client
// acks ride these per-client queues straight off the WAL committer.
// Connections open with a wire-version handshake and refuse mismatched
// peers, the network twin of store.ErrDataDirMismatch. rccnode/rccclient
// expose -send-queue, -client-queue, and -send-batch-bytes;
// BenchmarkBroadcast and BenchmarkCodec measure the win (enqueue-only
// vote broadcast is >10x the old inline gob+write path) and CI gates it.
//
// The root-level benchmarks (bench_test.go) expose one testing.B target per
// table and figure of the paper's evaluation:
//
//	go test -bench=. -benchmem .
//
// CI runs them (benchtime=1x smoke plus a longer WAL/journal/messaging
// pass), emits BENCH_ci.json, and gates merges on >25% ns/op regressions
// against the committed BENCH_baseline.json via scripts/benchgate.
package repro
