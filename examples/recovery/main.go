// Recovery: watch RCC's wait-free per-instance recovery (paper §III-C,
// Fig. 4) in a live cluster — crash one primary, observe the FAILURE →
// stop(i;E) → restart-penalty cycle through the Status API, and see healthy
// instances keep serving clients throughout.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/rcc"
	"repro/internal/types"
	"repro/internal/ycsb"
)

func main() {
	cluster, err := core.NewCluster(core.Options{
		N:               4,
		Protocol:        core.RCC,
		ProgressTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	// Client 4 maps to instance 0 (healthy throughout); client 1 would be
	// served by instance 1, whose primary we are about to kill.
	cl := cluster.NewClient(4)
	if _, err := cl.Execute(ycsb.EncodeWrite(1, []byte("warm-up")), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster healthy; crashing replica 1 (primary of instance 1)...")
	cluster.Crash(1)

	// Keep the healthy instances busy: wait-free design goals D4/D5 say
	// these transactions must keep committing while recovery runs.
	go func() {
		for i := 0; ; i++ {
			if _, err := cl.Execute(ycsb.EncodeWrite(uint32(100+i), []byte("load")), 30*time.Second); err != nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	// Watch instance 1's recovery state machine from replica 0's view.
	// Machine state is read through Inspect (machines are single-threaded
	// by contract).
	rep := cluster.Machine(0).(*rcc.Replica)
	status := func() rcc.Status {
		var st rcc.Status
		cluster.Replica(0).Inspect(func() { st = rep.Status(types.InstanceID(1)) })
		return st
	}
	seen := rcc.Status{}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		st := status()
		if st != seen {
			fmt.Printf("instance 1: suspected=%-5v confirmed=%-5v stops=%d voidBelow=%-4d (penalty 2^%d rounds)\n",
				st.Suspected, st.Confirmed, st.Stops, st.VoidBelow, st.Stops)
			seen = st
		}
		if st.Stops >= 2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	final := status()
	if final.Stops == 0 {
		log.Fatal("no stop was ever accepted — recovery failed")
	}
	fmt.Printf("\nrecovery worked: %d stop(1;E) operations accepted through the\n", final.Stops)
	fmt.Println("coordinating consensus; each doubled the restart penalty (Fig. 4")
	fmt.Println("line 12), and the healthy instances never stopped serving clients.")
}
