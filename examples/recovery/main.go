// Recovery: two faces of replica recovery in one demo.
//
// Act 1 — wait-free recovery (paper §III-C, Fig. 4): crash one primary in a
// live cluster and watch the healthy instances keep serving clients while
// the FAILURE → stop(i;E) cycle runs.
//
// Act 2 — crash-restart from disk (the durable storage subsystem): power
// off the WHOLE cluster, rebuild it on the same data directories, and watch
// every replica resume at its pre-crash ledger height with an identical
// head hash — recovered from its own write-ahead log and checkpoints
// instead of from its peers.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/rcc"
	"repro/internal/types"
	"repro/internal/ycsb"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	dataDir, err := os.MkdirTemp("", "rcc-recovery-*")
	must(err)
	defer os.RemoveAll(dataDir)

	opts := core.Options{
		N:               4,
		Protocol:        core.RCC,
		ProgressTimeout: 200 * time.Millisecond,
		DataDir:         dataDir, // replicas journal to dataDir/replica-i
		SnapshotEvery:   4,
	}
	cluster, err := core.NewCluster(opts)
	must(err)
	cluster.Start()

	// ---- Act 1: one primary crashes; the cluster keeps serving. --------
	cl := cluster.NewClient(4) // served by instance 0, healthy throughout
	_, err = cl.Execute(ycsb.EncodeWrite(1, []byte("warm-up")), 5*time.Second)
	must(err)
	fmt.Println("act 1: cluster healthy; crashing replica 1 (primary of instance 1)...")
	cluster.Crash(1)

	// Wait-free design goals D4/D5: these transactions keep committing
	// while instance 1 recovers.
	for i := 0; i < 8; i++ {
		_, err = cl.Execute(ycsb.EncodeWrite(uint32(100+i), []byte("load")), 30*time.Second)
		must(err)
	}
	rep := cluster.Machine(0).(*rcc.Replica)
	var st rcc.Status
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		cluster.Replica(0).Inspect(func() { st = rep.Status(types.InstanceID(1)) })
		if st.Stops >= 1 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.Stops == 0 {
		log.Fatal("no stop(1;E) was ever accepted — wait-free recovery failed")
	}
	fmt.Printf("act 1: stop(1;E) accepted %d time(s); healthy instances never paused\n\n", st.Stops)

	// ---- Act 2: power off everything; restart from disk. ---------------
	fmt.Printf("act 2: powering off the whole cluster (replica 0 at ledger height %d)\n",
		cluster.Ledger(0).Height())
	cluster.Stop()
	type chainTip struct {
		height uint64
		head   types.Digest
	}
	tip := func(l *ledger.Ledger) chainTip {
		t := chainTip{height: l.Height()}
		if h := l.Head(); h != nil { // a replica crashed early may be empty
			t.head = h.Hash()
		}
		return t
	}
	before := make([]chainTip, opts.N)
	for i := range before {
		before[i] = tip(cluster.Ledger(i))
	}

	restarted, err := core.NewCluster(opts) // same DataDir: resume, don't rebuild
	must(err)
	defer restarted.Stop()
	for i := 0; i < opts.N; i++ {
		l := restarted.Ledger(i)
		fmt.Printf("act 2: replica %d resumed at height %d from %s\n",
			i, l.Height(), core.ReplicaDir(dataDir, i))
		if tip(l) != before[i] {
			log.Fatalf("replica %d did not resume its pre-crash chain", i)
		}
		must(l.Verify())
	}
	fmt.Println("act 2: every replica resumed its exact pre-crash chain — no state")
	fmt.Println("transfer from peers. (Replica 1 is shorter: it was crashed in act 1;")
	fmt.Println("filling its gap from peers is the state-transfer follow-up.)")

	// The restarted cluster is live: it keeps deciding new transactions
	// on top of the restored journal.
	restarted.Start()
	cl2 := restarted.NewClient(8)
	_, err = cl2.Execute(ycsb.EncodeWrite(2, []byte("post-restart")), 10*time.Second)
	must(err)
	fmt.Printf("act 2: post-restart transaction committed; height now %d\n", restarted.Ledger(0).Height())
	fmt.Println("\nrecovery worked twice over: a crashed primary was recovered wait-free")
	fmt.Println("by its peers (§III-C), and a full power cut was recovered from each")
	fmt.Println("replica's own WAL and checkpoints (durable storage subsystem).")
}
