// Quickstart: a four-replica RCC cluster executing YCSB transactions with a
// journalled blockchain ledger, all in one process.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/ycsb"
)

func main() {
	// Assemble n=4 replicas running RCC over PBFT (the paper's RCC-P):
	// every replica is the primary of one concurrent consensus instance.
	cluster, err := core.NewCluster(core.Options{
		N:        4,
		Protocol: core.RCC,
		Journal:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	// Connect a client and execute a handful of YCSB writes. Each Execute
	// blocks until f+1 replicas report the identical outcome.
	cl := cluster.NewClient(0)
	for i := 0; i < 5; i++ {
		comp, err := cl.Execute(ycsb.EncodeWrite(uint32(i), []byte(fmt.Sprintf("value-%d", i))), 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("txn %d committed in %v (result %v)\n", comp.Seq, comp.Latency.Round(time.Millisecond), comp.Result)
	}

	// Wait for the journal to absorb the batches, then audit the chain.
	time.Sleep(200 * time.Millisecond)
	ledger := cluster.Ledger(0)
	if err := ledger.Verify(); err != nil {
		log.Fatalf("ledger verification failed: %v", err)
	}
	fmt.Printf("\nledger: %d blocks, %d transactions, hash chain intact\n", ledger.Height(), ledger.TxnCount())
	if head := ledger.Head(); head != nil {
		fmt.Printf("head block %d: hash %v, decided by instance %d round %d\n",
			head.Height, head.Hash(), head.Proof.Instance, head.Proof.Round)
	}
}
