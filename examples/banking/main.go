// Banking: the ordering-attack example of the paper (Example IV.1, Fig. 6).
//
// Two conditional transfers — T1 = transfer(Alice, Bob, 500, 200) and
// T2 = transfer(Bob, Eve, 400, 300) — produce different final balances
// depending on execution order, which a malicious primary can exploit. The
// example first shows both outcomes directly, then runs a live RCC cluster
// with §IV's deterministic-but-unpredictable permutation ordering, where no
// single primary chooses the order.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/types"
)

var opening = map[string]int64{"Alice": 800, "Bob": 300, "Eve": 100}

func show(title string, b *bank.Bank) {
	fmt.Printf("%-22s Alice=%-4d Bob=%-4d Eve=%-4d\n",
		title, b.Balance("Alice"), b.Balance("Bob"), b.Balance("Eve"))
}

func main() {
	t1 := bank.Transfer{From: "Alice", To: "Bob", Threshold: 500, Amount: 200}
	t2 := bank.Transfer{From: "Bob", To: "Eve", Threshold: 400, Amount: 300}

	// Part 1: the attack surface. A primary that orders T1 before T2
	// enriches Eve; the reverse order leaves Eve with nothing (Fig. 6).
	fmt.Println("== the ordering attack (paper Fig. 6) ==")
	direct := func(order ...bank.Transfer) *bank.Bank {
		b := bank.New(opening)
		for i, tr := range order {
			b.Execute(types.Transaction{Client: 1, Seq: uint64(i + 1), Op: tr.Encode()})
		}
		return b
	}
	show("original", direct())
	show("first T1, then T2", direct(t1, t2))
	show("first T2, then T1", direct(t2, t1))

	// Part 2: RCC's mitigation, live. Two clients submit the transfers to
	// different concurrent instances in the same round; the executed
	// permutation is f_S(digest(S) mod (k!−1)) — fixed only after all
	// proposals of the round are known, so no primary can steer it.
	fmt.Println("\n== live RCC cluster with §IV permutation ordering ==")
	cluster, err := core.NewCluster(core.Options{
		N:                     4,
		Protocol:              core.RCC,
		UnpredictableOrdering: true,
		App:                   func() exec.Application { return bank.New(opening) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	alice := cluster.NewClient(1) // served by instance 1
	bob := cluster.NewClient(2)   // served by instance 2
	done := make(chan error, 2)
	go func() { _, err := alice.Execute(t1.Encode(), 5*time.Second); done <- err }()
	go func() { _, err := bob.Execute(t2.Encode(), 5*time.Second); done <- err }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("both transfers committed; the execution order was chosen by")
	fmt.Println("the round digest, not by any primary — and it is identical on")
	fmt.Println("all replicas because the permutation seed is deterministic.")
}
