// Package statesync is the checkpoint-based state-transfer subsystem: it
// lets a replica that is behind the cluster — wiped, corrupted, or
// partitioned past what in-protocol checkpoint catch-up can bridge — fetch
// the latest application snapshot in bounded chunks plus the ledger suffix
// from snapshot height to head, verify every byte against f+1-attested
// digests, and atomically install the result (internal/store) so it rejoins
// consensus at the cluster head instead of replaying history it no longer
// has.
//
// # Protocol
//
// The fetcher broadcasts a probe (SnapshotRequest with Chunk == NoChunk);
// peers answer with a StateOffer naming their latest snapshot (height, app
// state hash, anchoring block hash), their ledger head, and their consensus
// machine's serialized frontier (sm.StateSyncable). The fetcher trusts a
// target only once Config.Attest (f+1) distinct peers advertise
// byte-identical offers: at least one of them is honest, so every digest in
// the tuple is real. Everything fetched afterwards is verified against
// those digests, never against the serving peer's word:
//
//   - Snapshot chunks are size-checked on arrival (a truncated chunk is
//     refused immediately) and the reassembled state must hash to the
//     attested SnapAppHash — a single flipped bit anywhere fails the whole
//     snapshot and the fetcher retries from another source.
//   - Ledger blocks must chain hash-to-hash from the attested snapshot
//     anchor (or the local head, on the lag-only path) up to the attested
//     head hash, and each block's commit proof must cover its batch. A
//     peer serving a wrong-height range or substituted blocks breaks the
//     chain at the first forged link and is rotated away from.
//
// A replica that lagged but kept its disk fetches only the block range; a
// wiped replica fetches snapshot plus range. Either way the install is
// crash-atomic (store.InstallState): kill -9 mid-transfer leaves the
// pre-transfer state intact and the transfer restarts from scratch.
//
// Attestation is deliberately strict: the machine frontier (view,
// checkpoint chain anchor) is part of the byte-identical tuple, because an
// UNattested frontier would let a single malicious source forge the
// checkpoint chain anchor and poison all future checkpoint adoption. The
// cost is that peers mid-view-change or mid-checkpoint-exchange briefly
// serialize different frontiers and no f+1 group forms; the fetcher treats
// that as a retryable condition (RetryInterval) and converges as soon as
// the peers do.
//
// That byte-identity requirement only converges on a quiescent-enough
// cluster — under sustained load the peers' live heads never agree. The
// checkpoint-boundary attestation path (attest.go) removes the quiescence
// assumption: replicas exchange threshold shares over each snapshot at its
// deterministic delivery boundary, combine f+1 of them into an aggregate
// their offers carry, and a fetcher that verifies the aggregate can trust a
// SINGLE offer. When no byte-identical group forms, the fetcher falls back
// to the best attested checkpoint, installs snapshot plus boundary
// frontier, and bridges checkpoint→head through in-protocol catch-up while
// the cluster keeps deciding.
//
// # Threading
//
// The Manager is driven from the replica's event loop through
// HandleMessage, but does no fetching or serving there: chunk and range
// requests hand off to a dedicated server goroutine (whose transport sends
// back-pressure against the per-peer outbound queues, never against the
// consensus loop), and responses feed the fetcher goroutine that runs the
// sync state machine. Only the final install runs on the event loop — the
// application and machine are single-threaded by contract.
package statesync

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crypto"
	"repro/internal/ledger"
	"repro/internal/obs/flight"
	"repro/internal/store"
	"repro/internal/types"
)

// Config parameterizes a Manager.
type Config struct {
	// Self is the local replica.
	Self types.ReplicaID
	// N is the number of replicas in the deployment.
	N int
	// Attest is how many byte-identical offers make a target trustworthy;
	// use quorum f+1 (at least one honest attester).
	Attest int
	// ChunkBytes is the snapshot chunk size served to peers (default
	// 256 KiB). The fetch side accepts whatever chunk size the attested
	// offer names.
	ChunkBytes int
	// MaxRangeBlocks / MaxRangeBytes bound one BlockRange response
	// (defaults 256 blocks / 1 MiB); fetchers paginate.
	MaxRangeBlocks int
	MaxRangeBytes  int
	// RequestTimeout bounds each request-response round trip (default 2s);
	// on expiry the fetcher rotates to the next attesting source.
	RequestTimeout time.Duration
	// OfferWait is how long a probe gathers offers (default 400ms).
	OfferWait time.Duration
	// RetryInterval separates sync passes while the replica knows it is
	// behind but could not complete a transfer (default 2s).
	RetryInterval time.Duration
	// SteadyProbe re-probes peers even when the replica believes it is
	// caught up, so silent lag is eventually noticed without any trigger
	// (default 10s; negative disables).
	SteadyProbe time.Duration
	// Source, when not NoReplica, is the preferred transfer source; it is
	// used only while it is part of the attesting set, and the fetcher
	// still rotates away from it on failure.
	Source types.ReplicaID
	// AttestScheme, when set, enables checkpoint-boundary attestation
	// (attest.go): the manager exchanges threshold shares over each local
	// snapshot's boundary digest, attaches the formed aggregate to its
	// offers, and accepts a single aggregate-verified offer as a fetch
	// target when no byte-identical f+1 group forms. Nil disables both
	// sides.
	AttestScheme *crypto.ThresholdScheme
	// AttestQuorum is how many shares form an aggregate (default: Attest,
	// i.e. f+1).
	AttestQuorum int
	// Flight, when set, receives sync-phase transitions and refusal causes
	// as structured events (nil disables recording).
	Flight *flight.Recorder
}

func (c *Config) defaults() {
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 256 << 10
	}
	if c.MaxRangeBlocks <= 0 {
		c.MaxRangeBlocks = 256
	}
	if c.MaxRangeBytes <= 0 {
		c.MaxRangeBytes = 1 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.OfferWait <= 0 {
		c.OfferWait = 400 * time.Millisecond
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 2 * time.Second
	}
	if c.SteadyProbe == 0 {
		c.SteadyProbe = 10 * time.Second
	}
	if c.Attest <= 0 {
		c.Attest = 1
	}
	if c.AttestQuorum <= 0 {
		c.AttestQuorum = c.Attest
	}
}

// Host is the set of callbacks the hosting runtime provides. Send,
// Snapshot, and Ledger must be safe for concurrent use (the transport and
// store are); SyncPoint is only called from HandleMessage, i.e. on the
// event loop; Install is only called from functions scheduled via OnLoop.
type Host struct {
	// Send enqueues a message for a peer (non-blocking contract of
	// internal/transport: bounded queue, back-pressure on the caller).
	Send func(to types.ReplicaID, m types.Message)
	// Snapshot returns the latest local checkpoint, nil when none.
	Snapshot func() *store.Snapshot
	// Ledger returns the local chain (thread-safe reads).
	Ledger func() *ledger.Ledger
	// SyncPoint returns the consensus machine's serialized frontier
	// (nil disables serving offers).
	SyncPoint func() []byte
	// Install applies a verified fetch result to store, application, and
	// machine. Runs on the event loop.
	Install func(res *Result) error
	// OnLoop schedules fn on the event loop; returns false when the
	// replica has stopped.
	OnLoop func(fn func()) bool
	// Logf records progress (may be nil).
	Logf func(format string, args ...any)
}

// Result is one verified fetch, ready to install.
type Result struct {
	// Snapshot is the attested checkpoint to install as the new chain
	// base; nil on the lag-only path (the local prefix is intact and only
	// Blocks extend it).
	Snapshot *store.Snapshot
	// Blocks are the verified blocks of heights [from, Target): from is
	// Snapshot.Height when Snapshot is set, the pre-transfer local height
	// otherwise.
	Blocks []*ledger.Block
	// SyncPoint is the attested machine frontier to install after the
	// ledger (empty when the offers carried none).
	SyncPoint []byte
	// Target and TargetHash name the attested head this result reaches.
	Target     uint64
	TargetHash types.Digest
}

// Stats are the manager's observable counters (cumulative).
type Stats struct {
	Probes         uint64 // probe broadcasts sent
	OffersServed   uint64 // StateOffers answered to peers
	OffersRejected uint64 // offers discarded for failing f+1 attestation
	ChunksServed   uint64 // snapshot chunks served
	RangesServed   uint64 // block ranges served
	ChunksFetched  uint64 // chunks accepted from peers
	BlocksFetched  uint64 // blocks accepted from peers
	RangeBytes     uint64 // encoded block bytes accepted from peers
	ChunksRefused  uint64 // chunks refused (size or digest mismatch)
	RangesRefused  uint64 // ranges refused (chain-link or proof mismatch)
	SourceRotates  uint64 // source failures that forced rotation
	Installs       uint64 // successful installs
	BytesFetched   uint64 // snapshot bytes accepted
	InstallFailed  uint64 // installs that errored
	TransferNanos  uint64 // wall time spent in successful transfers
	InstalledSnaps uint64 // installs that included a snapshot (vs range-only)
	// Checkpoint-boundary attestation counters (attest.go).
	AttestationsFormed uint64 // f+1-share aggregates formed over local checkpoints
	AttSharesRejected  uint64 // peer shares refused (bad share or digest mismatch)
	AttOffersRejected  uint64 // offers whose aggregate failed verification
	AttestedTargets    uint64 // fetch targets chosen via the attested-offer path
	// RejectCauses counts refusals by flight.Reject code (index = code), so
	// "why did this transfer stall" is answerable from /metrics without
	// correlating log lines: no_quorum vs truncated_chunk vs digest_mismatch
	// vs chain-shape causes are separate series.
	RejectCauses [int(flight.RejectOvercount) + 1]uint64
}

type inMsg struct {
	from types.ReplicaID
	msg  types.Message
}

type serveReq struct {
	from types.ReplicaID
	msg  types.Message
	// fn, when set, is a prepared task (an offer whose snapshot hash and
	// transport send must run off the event loop); msg is then ignored.
	fn func()
}

// Manager runs the state-transfer subsystem of one replica: it serves its
// durable state to lagging peers and heals the local replica when it is the
// lagging one.
type Manager struct {
	cfg  Config
	host Host

	serveQ chan serveReq
	fetchQ chan inMsg
	kickQ  chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	synced atomic.Bool // last pass found the replica at the attested head

	// lastPhase deduplicates KSyncPhase events; only the fetcher goroutine
	// touches it.
	lastPhase flight.Phase

	mu    sync.Mutex
	stats Stats
	// offerSnap/offerHash memoize the app-state hash per snapshot
	// generation: serveOffer runs on the event loop and must not re-hash a
	// large snapshot for every probe (snapshots are immutable once taken,
	// so pointer identity is the generation key).
	offerSnap *store.Snapshot
	offerHash types.Digest
	// Checkpoint-boundary attestation state (attest.go), all under mu:
	// share accumulators for checkpoints this replica took, early shares
	// for checkpoints it has not reached, and the newest formed aggregate.
	attLocals  map[uint64]*attLocal
	attPending map[uint64]map[uint32]pendingShare
	attDone    *attDone
}

// New creates a Manager; Start launches its goroutines.
func New(cfg Config, host Host) *Manager {
	cfg.defaults()
	return &Manager{
		cfg:        cfg,
		host:       host,
		serveQ:     make(chan serveReq, 64),
		fetchQ:     make(chan inMsg, 128),
		kickQ:      make(chan struct{}, 1),
		done:       make(chan struct{}),
		attLocals:  make(map[uint64]*attLocal),
		attPending: make(map[uint64]map[uint32]pendingShare),
	}
}

// Start launches the server and fetcher goroutines and schedules an initial
// sync pass (a freshly started replica probes before assuming it is
// current).
func (m *Manager) Start() {
	m.wg.Add(2)
	go m.serveLoop()
	go m.fetchLoop()
	m.Kick()
}

// Stop terminates the goroutines. In-flight transfers abort; nothing
// half-installed remains (installs are atomic).
func (m *Manager) Stop() {
	m.once.Do(func() { close(m.done) })
	m.wg.Wait()
}

// Kick requests a sync pass (coalescing: a pass already pending absorbs
// it). Machines call this, through the runtime, when they detect a gap.
func (m *Manager) Kick() {
	select {
	case m.kickQ <- struct{}{}:
	default:
	}
}

// Synced reports whether the last completed pass found this replica at the
// attested cluster head.
func (m *Manager) Synced() bool { return m.synced.Load() }

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Manager) bump(f func(*Stats)) {
	m.mu.Lock()
	f(&m.stats)
	m.mu.Unlock()
}

// emit records one flight event attributed to this replica; a nil recorder
// is a no-op.
func (m *Manager) emit(kind flight.Kind, seq, detail uint64) {
	m.cfg.Flight.Record(uint16(m.cfg.Self), flight.SubStateSync, kind, 0, 0, seq, detail)
}

// setPhase records a sync-phase transition; repeats of the current phase are
// suppressed so steady-state probing does not flood the ring. Only the
// fetcher goroutine calls it.
func (m *Manager) setPhase(ph flight.Phase, seq uint64) {
	if ph == m.lastPhase {
		return
	}
	m.lastPhase = ph
	m.emit(flight.KSyncPhase, seq, uint64(ph))
}

// reject records one refusal under its cause: the cause-labeled counter and
// a flight event carry the same code, so the metric spike and the timeline
// entry name the same failure. seq carries the height (or, for no_quorum,
// the number of unattested offers) for context.
func (m *Manager) reject(cause flight.Reject, seq uint64) {
	m.bump(func(s *Stats) { s.RejectCauses[cause]++ })
	m.emit(flight.KOfferReject, seq, uint64(cause))
}

func (m *Manager) logf(format string, args ...any) {
	if m.host.Logf != nil {
		m.host.Logf(format, args...)
	}
}

// HandleMessage consumes state-transfer messages; the runtime calls it from
// the event loop before machine dispatch and drops the message when it
// returns true. Serving work is handed to the server goroutine (full queue:
// the request is dropped and the peer retries), responses to the fetcher.
func (m *Manager) HandleMessage(from types.ReplicaID, isClient bool, msg types.Message) bool {
	switch msg.(type) {
	case *types.SnapshotRequest, *types.BlockRangeRequest,
		*types.StateOffer, *types.SnapshotChunk, *types.BlockRange,
		*types.CheckpointAttest:
	default:
		return false
	}
	if isClient {
		return true // clients have no business in state transfer; drop
	}
	switch v := msg.(type) {
	case *types.SnapshotRequest:
		if v.IsProbe() {
			m.serveOffer(from)
			return true
		}
		select {
		case m.serveQ <- serveReq{from: from, msg: msg}:
		default:
		}
	case *types.BlockRangeRequest:
		select {
		case m.serveQ <- serveReq{from: from, msg: msg}:
		default:
		}
	case *types.CheckpointAttest:
		// Share verification is HMAC work — keep it off the event loop. A
		// full queue drops the share; the sender's boundary simply counts
		// one attester fewer here.
		select {
		case m.serveQ <- serveReq{fn: func() { m.handleAttestShare(from, v) }}:
		default:
		}
	default: // StateOffer, SnapshotChunk, BlockRange
		select {
		case m.fetchQ <- inMsg{from, msg}:
		default:
		}
	}
	return true
}

// serveOffer answers a probe. The tuple is ASSEMBLED on the event loop —
// the machine frontier (SyncPoint) and the ledger head must be read in the
// same instant for f+1 byte-identical offers from distinct replicas to be
// meaningful — but the snapshot hash (cached per generation, expensive on
// a miss) and the transport send run on the serve goroutine.
func (m *Manager) serveOffer(to types.ReplicaID) {
	if m.host.SyncPoint == nil {
		return
	}
	lg := m.host.Ledger()
	height, headHash := lg.Tip()
	// A height-0 offer is still an answer: it tells the prober this peer is
	// alive and holds nothing — silence would be indistinguishable from a
	// dead peer, and a fresh cluster could never establish that genesis IS
	// the head (so Synced, and /readyz, would hang until first progress).
	sp := m.host.SyncPoint()
	if sp == nil {
		return // machine cannot serialize its frontier
	}
	offer := &types.StateOffer{
		Replica:   m.cfg.Self,
		Height:    height,
		HeadHash:  headHash,
		SyncPoint: sp,
	}
	snap := m.host.Snapshot()
	if snap != nil {
		offer.SnapHeight = snap.Height
		offer.SnapSize = uint64(len(snap.AppState))
		offer.ChunkBytes = uint32(m.cfg.ChunkBytes)
		offer.SnapHeadHash = snap.HeadHash
		offer.SnapStateDigest = snap.StateDigest
		offer.TxnCount = snap.TxnCount
	}
	task := serveReq{fn: func() {
		if snap != nil {
			offer.SnapAppHash = m.snapHash(snap)
			// Attach the boundary attestation only when it covers exactly
			// this snapshot generation — serveChunk can serve no other.
			if bsp, att := m.attestationFor(snap); att != nil {
				offer.AttSyncPoint, offer.Att = bsp, att
			}
		}
		m.bump(func(s *Stats) { s.OffersServed++ })
		m.host.Send(to, offer)
	}}
	select {
	case m.serveQ <- task:
	default: // full queue: the prober retries
	}
}

// snapHash returns (computing at most once per snapshot generation) the
// hash of snap's application state.
func (m *Manager) snapHash(snap *store.Snapshot) types.Digest {
	m.mu.Lock()
	if m.offerSnap == snap {
		h := m.offerHash
		m.mu.Unlock()
		return h
	}
	m.mu.Unlock()
	h := types.Hash(snap.AppState)
	m.mu.Lock()
	m.offerSnap, m.offerHash = snap, h
	m.mu.Unlock()
	return h
}

// serveLoop answers chunk and range requests off the event loop; transport
// back-pressure (a slow fetcher) stalls only this goroutine.
func (m *Manager) serveLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case req := <-m.serveQ:
			switch v := req.msg.(type) {
			case *types.SnapshotRequest:
				m.serveChunk(req.from, v)
			case *types.BlockRangeRequest:
				m.serveRange(req.from, v)
			default:
				if req.fn != nil {
					req.fn()
				}
			}
		}
	}
}

func (m *Manager) serveChunk(to types.ReplicaID, req *types.SnapshotRequest) {
	snap := m.host.Snapshot()
	if snap == nil || snap.Height != req.Height {
		return // we no longer hold that generation; the fetcher re-probes
	}
	cb := uint64(m.cfg.ChunkBytes)
	total := chunkCount(uint64(len(snap.AppState)), cb)
	if uint64(req.Chunk) >= total {
		return
	}
	off := uint64(req.Chunk) * cb
	end := off + cb
	if end > uint64(len(snap.AppState)) {
		end = uint64(len(snap.AppState))
	}
	m.bump(func(s *Stats) { s.ChunksServed++ })
	m.host.Send(to, &types.SnapshotChunk{
		Replica: m.cfg.Self,
		Height:  req.Height,
		Chunk:   req.Chunk,
		Of:      uint32(total),
		Data:    snap.AppState[off:end],
	})
}

func (m *Manager) serveRange(to types.ReplicaID, req *types.BlockRangeRequest) {
	lg := m.host.Ledger()
	if req.From >= req.To || req.From < lg.Base() || req.From >= lg.Height() {
		return // can't serve: below our base or past our head
	}
	to_ := req.To
	if h := lg.Height(); to_ > h {
		to_ = h
	}
	var blocks [][]byte
	bytes := 0
	for h := req.From; h < to_ && len(blocks) < m.cfg.MaxRangeBlocks && bytes < m.cfg.MaxRangeBytes; h++ {
		blk := lg.Get(h)
		if blk == nil {
			break
		}
		enc := ledger.EncodeBlock(blk)
		blocks = append(blocks, enc)
		bytes += len(enc)
	}
	if len(blocks) == 0 {
		return
	}
	m.bump(func(s *Stats) { s.RangesServed++ })
	m.host.Send(to, &types.BlockRange{
		Replica: m.cfg.Self,
		From:    req.From,
		Blocks:  blocks,
	})
}

func chunkCount(size, chunkBytes uint64) uint64 {
	if size == 0 {
		return 1 // a zero-byte state still ships as one (empty) chunk
	}
	return (size + chunkBytes - 1) / chunkBytes
}

// ---------------------------------------------------------------------------
// Fetch side
// ---------------------------------------------------------------------------

// fetchLoop is the sync state machine: wait for a trigger, run passes until
// a pass finds the replica at the attested head.
func (m *Manager) fetchLoop() {
	defer m.wg.Done()
	var steady *time.Ticker
	var steadyC <-chan time.Time
	if m.cfg.SteadyProbe > 0 {
		steady = time.NewTicker(m.cfg.SteadyProbe)
		steadyC = steady.C
		defer steady.Stop()
	}
	retry := time.NewTimer(time.Hour)
	retry.Stop()
	defer retry.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-m.kickQ:
		case <-steadyC:
		case <-retry.C:
		}
		for {
			again, err := m.syncPass()
			if err != nil {
				if err != errNoOffers {
					m.logf("statesync: pass failed: %v", err)
				}
				retry.Reset(m.cfg.RetryInterval)
				break
			}
			if !again {
				break
			}
			// Installed something; immediately re-probe — the cluster may
			// have moved on while the transfer ran.
		}
	}
}

// errStopped aborts a pass when the replica shuts down mid-transfer.
var errStopped = fmt.Errorf("statesync: stopped")

// errNoOffers marks a probe that no peer answered — retried quietly (a
// freshly restarted replica's first probe often races the peers' detection
// of its previous incarnation's dead connections, which silently eats the
// first reply per link).
var errNoOffers = fmt.Errorf("statesync: no offers received")

// syncPass runs one probe-and-transfer cycle. It returns (true, nil) when a
// transfer was installed (caller re-probes), (false, nil) when the replica
// is at the attested head or no attested target exists yet, and an error
// when a transfer was needed but could not be completed.
func (m *Manager) syncPass() (bool, error) {
	m.setPhase(flight.PhaseProbe, m.host.Ledger().Height())
	target, sources, info := m.probe()
	if !info.attested {
		if info.sawHigher {
			// Peers claim state above ours but no f+1 of them agree yet —
			// offers raced a view change, or some replies were lost to a
			// peer's dead-link detection. Being behind with no attested
			// target is a retryable condition, not a steady state.
			m.synced.Store(false)
			return false, fmt.Errorf("statesync: peers report higher state but no attested target yet")
		}
		if info.responses == 0 && m.cfg.N > 1 {
			// Nobody answered: peers may be down, empty, or their replies
			// were eaten by dead-link detection. Keep probing quietly.
			return false, errNoOffers
		}
		// Peers answered and none claims more than we have: nothing to do.
		// With enough answers to have attested a higher target had one
		// existed, that silence is positive evidence the replica IS the
		// head — mark it synced so readiness does not hang on a fresh or
		// idle cluster that never needed a transfer.
		if info.responses >= m.cfg.Attest {
			m.synced.Store(true)
			m.setPhase(flight.PhaseSynced, m.host.Ledger().Height())
		}
		return false, nil
	}
	// One consistent (height, head) pair: reading them separately could
	// straddle a concurrent append on the lag path and mis-anchor the
	// whole range fetch.
	local, anchor := m.host.Ledger().Tip()
	if target.Height <= local {
		m.synced.Store(true)
		m.setPhase(flight.PhaseSynced, local)
		return false, nil
	}
	m.synced.Store(false)
	m.setPhase(flight.PhaseBehind, target.Height)
	m.logf("statesync: behind (local %d, attested head %d from %d peers) — fetching", local, target.Height, len(sources))

	start := time.Now()
	res := &Result{Target: target.Height, TargetHash: target.HeadHash, SyncPoint: target.SyncPoint}
	from := local
	if target.SnapHeight > local {
		m.setPhase(flight.PhaseSnapshot, target.SnapHeight)
		data, err := m.fetchSnapshot(target, sources)
		if err != nil {
			return false, err
		}
		res.Snapshot = &store.Snapshot{
			Height:      target.SnapHeight,
			HeadHash:    target.SnapHeadHash,
			StateDigest: target.SnapStateDigest,
			TxnCount:    target.TxnCount,
			AppState:    data,
		}
		from = target.SnapHeight
		anchor = target.SnapHeadHash
	}
	m.setPhase(flight.PhaseRange, from)
	blocks, err := m.fetchRange(from, target.Height, anchor, target.HeadHash, sources)
	if err != nil {
		return false, err
	}
	res.Blocks = blocks
	m.setPhase(flight.PhaseInstall, target.Height)
	if err := m.install(res); err != nil {
		m.bump(func(s *Stats) { s.InstallFailed++ })
		return false, err
	}
	m.bump(func(s *Stats) {
		s.Installs++
		s.TransferNanos += uint64(time.Since(start))
		if res.Snapshot != nil {
			s.InstalledSnaps++
		}
	})
	m.logf("statesync: installed height %d (%d blocks, snapshot=%v) in %v",
		target.Height, len(blocks), res.Snapshot != nil, time.Since(start))
	return true, nil
}

// offerKey is the attestation identity of an offer: every field a transfer
// will be verified against. Offers agree only if they are byte-identical
// in all of them.
type offerKey struct {
	snapHeight      uint64
	snapSize        uint64
	chunkBytes      uint32
	snapAppHash     types.Digest
	snapHeadHash    types.Digest
	snapStateDigest types.Digest
	txnCount        uint64
	height          uint64
	headHash        types.Digest
	syncPoint       string
}

// keyOf deliberately EXCLUDES AttSyncPoint and Att: two honest replicas
// combine their aggregates from whichever f+1 shares reached them first, so
// those bytes legitimately differ even when every attested field agrees —
// folding them in would dissolve every byte-identical group the moment
// attestation is enabled. They do not need identity protection here: the
// legacy path never reads them, and the fallback path verifies each offer's
// aggregate cryptographically on its own.
func keyOf(o *types.StateOffer) offerKey {
	return offerKey{
		snapHeight:      o.SnapHeight,
		snapSize:        o.SnapSize,
		chunkBytes:      o.ChunkBytes,
		snapAppHash:     o.SnapAppHash,
		snapHeadHash:    o.SnapHeadHash,
		snapStateDigest: o.SnapStateDigest,
		txnCount:        o.TxnCount,
		height:          o.Height,
		headHash:        o.HeadHash,
		syncPoint:       string(o.SyncPoint),
	}
}

// probeInfo summarizes a probe round for the retry policy.
type probeInfo struct {
	attested  bool // an f+1-attested target was found
	sawHigher bool // some offer (attested or not) claimed more state than ours
	responses int  // distinct peers that answered at all
}

// probe broadcasts a probe and gathers offers for OfferWait; it returns the
// highest target attested by Config.Attest byte-identical offers, plus the
// replicas that attested it (preferred source first).
func (m *Manager) probe() (*types.StateOffer, []types.ReplicaID, probeInfo) {
	local := m.host.Ledger().Height()
	m.drain()
	req := &types.SnapshotRequest{Replica: m.cfg.Self, Chunk: types.NoChunk}
	for i := 0; i < m.cfg.N; i++ {
		id := types.ReplicaID(i)
		if id == m.cfg.Self {
			continue
		}
		m.host.Send(id, req)
	}
	m.bump(func(s *Stats) { s.Probes++ })

	offers := make(map[types.ReplicaID]*types.StateOffer)
	deadline := time.NewTimer(m.cfg.OfferWait)
	defer deadline.Stop()
gather:
	for len(offers) < m.cfg.N-1 {
		select {
		case <-m.done:
			return nil, nil, probeInfo{}
		case <-deadline.C:
			break gather
		case in := <-m.fetchQ:
			if o, isOffer := in.msg.(*types.StateOffer); isOffer && in.from == o.Replica {
				offers[in.from] = o
			}
		}
	}

	info := probeInfo{responses: len(offers)}
	groups := make(map[offerKey][]types.ReplicaID)
	for from, o := range offers {
		if o.Height > local {
			info.sawHigher = true
		}
		groups[keyOf(o)] = append(groups[keyOf(o)], from)
	}
	var best *types.StateOffer
	var bestSrc []types.ReplicaID
	rejected := 0
	for k, members := range groups {
		if len(members) < m.cfg.Attest {
			rejected += len(members)
			continue
		}
		if best == nil || k.height > best.Height {
			best = offers[members[0]]
			bestSrc = members
		}
	}
	if rejected > 0 {
		m.bump(func(s *Stats) {
			s.OffersRejected += uint64(rejected)
			s.RejectCauses[flight.RejectNoQuorum] += uint64(rejected)
		})
		m.emit(flight.KOfferReject, uint64(rejected), uint64(flight.RejectNoQuorum))
	}
	if best == nil {
		// No byte-identical group — the cluster is deciding and the live
		// heads disagree. Fall back to the best checkpoint-boundary
		// attested offer: its aggregate proves f+1 replicas signed exactly
		// these snapshot fields, so one offer suffices as a target. The
		// synthetic target reaches the checkpoint, not the head; the pass
		// installs it and in-protocol catch-up bridges the rest.
		if t, srcs := m.attestedTarget(offers, local); t != nil {
			info.attested = true
			sortReplicas(srcs, m.cfg.Source)
			return t, srcs, info
		}
		return nil, nil, info
	}
	info.attested = true
	// Stable source order: preferred source first, then ascending IDs.
	sortReplicas(bestSrc, m.cfg.Source)
	return best, bestSrc, info
}

func sortReplicas(rs []types.ReplicaID, preferred types.ReplicaID) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1], preferred); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func less(a, b, preferred types.ReplicaID) bool {
	if a == preferred {
		return b != preferred
	}
	if b == preferred {
		return false
	}
	return a < b
}

// drain discards stale responses from a previous pass.
func (m *Manager) drain() {
	for {
		select {
		case <-m.fetchQ:
		default:
			return
		}
	}
}

// await reads fetchQ until match returns true or the request times out.
func (m *Manager) await(match func(in inMsg) bool) bool {
	deadline := time.NewTimer(m.cfg.RequestTimeout)
	defer deadline.Stop()
	for {
		select {
		case <-m.done:
			return false
		case <-deadline.C:
			return false
		case in := <-m.fetchQ:
			if match(in) {
				return true
			}
		}
	}
}

// fetchSnapshot downloads and verifies the attested snapshot's application
// state, chunk by chunk, rotating sources on timeout or refusal.
func (m *Manager) fetchSnapshot(t *types.StateOffer, sources []types.ReplicaID) ([]byte, error) {
	if t.SnapSize > 0 && t.ChunkBytes == 0 {
		return nil, fmt.Errorf("statesync: attested offer has zero chunk size")
	}
	total := chunkCount(t.SnapSize, uint64(t.ChunkBytes))
	data := make([]byte, 0, t.SnapSize)
	src := 0
	for chunk := uint64(0); chunk < total; {
		if src >= len(sources) {
			return nil, fmt.Errorf("statesync: no source could serve snapshot chunk %d/%d", chunk, total)
		}
		source := sources[src]
		m.host.Send(source, &types.SnapshotRequest{
			Replica: m.cfg.Self, Height: t.SnapHeight, Chunk: uint32(chunk),
		})
		var got *types.SnapshotChunk
		ok := m.await(func(in inMsg) bool {
			c, isChunk := in.msg.(*types.SnapshotChunk)
			if !isChunk || in.from != source || c.Height != t.SnapHeight || uint64(c.Chunk) != chunk {
				return false
			}
			got = c
			return true
		})
		if !ok {
			m.bump(func(s *Stats) { s.SourceRotates++ })
			src++
			continue
		}
		want := uint64(t.ChunkBytes)
		if chunk == total-1 {
			want = t.SnapSize - chunk*uint64(t.ChunkBytes)
		}
		if uint64(len(got.Data)) != want || uint64(got.Of) != total {
			// Truncated, padded, or mislabeled chunk: refuse it without
			// touching anything and try the next source.
			m.bump(func(s *Stats) { s.ChunksRefused++; s.SourceRotates++ })
			m.reject(flight.RejectTruncated, chunk)
			src++
			continue
		}
		data = append(data, got.Data...)
		m.bump(func(s *Stats) { s.ChunksFetched++; s.BytesFetched += uint64(len(got.Data)) })
		chunk++
	}
	if types.Hash(data) != t.SnapAppHash {
		// One or more chunks were silently corrupted (bit flip, hostile
		// source): the attested digest is the arbiter, and the whole
		// snapshot is refused.
		m.bump(func(s *Stats) { s.ChunksRefused++ })
		m.reject(flight.RejectDigest, t.SnapHeight)
		return nil, fmt.Errorf("statesync: reassembled snapshot fails the attested digest")
	}
	return data, nil
}

// fetchRange downloads and verifies blocks [from, to): every block must
// chain from anchor up to the attested headHash, and every commit proof
// must cover its batch. Verified prefixes survive source rotation.
func (m *Manager) fetchRange(from, to uint64, anchor types.Digest, headHash types.Digest, sources []types.ReplicaID) ([]*ledger.Block, error) {
	var blocks []*ledger.Block
	prev := anchor
	src := 0
	h := from
	for h < to {
		if src >= len(sources) {
			return nil, fmt.Errorf("statesync: no source could serve blocks from height %d", h)
		}
		source := sources[src]
		m.host.Send(source, &types.BlockRangeRequest{Replica: m.cfg.Self, From: h, To: to})
		var got *types.BlockRange
		ok := m.await(func(in inMsg) bool {
			r, isRange := in.msg.(*types.BlockRange)
			if !isRange || in.from != source || r.From != h || len(r.Blocks) == 0 {
				return false
			}
			got = r
			return true
		})
		if !ok {
			m.bump(func(s *Stats) { s.SourceRotates++ })
			src++
			continue
		}
		var rangeBytes uint64
		for _, enc := range got.Blocks {
			rangeBytes += uint64(len(enc))
		}
		verified, nprev, cause, err := verifyBlocks(got.Blocks, h, to, prev)
		if err != nil {
			// Wrong-height, substituted, or malformed blocks: the chain
			// check against the attested anchor caught it; rotate.
			m.logf("statesync: refusing range from replica %d: %v", source, err)
			m.bump(func(s *Stats) { s.RangesRefused++; s.SourceRotates++ })
			m.reject(cause, h)
			src++
			continue
		}
		blocks = append(blocks, verified...)
		m.bump(func(s *Stats) { s.BlocksFetched += uint64(len(verified)); s.RangeBytes += rangeBytes })
		prev = nprev
		h += uint64(len(verified))
	}
	if prev != headHash {
		// The range chained internally but does not end at the attested
		// head: a consistent forgery of the entire suffix. Refuse it all.
		m.bump(func(s *Stats) { s.RangesRefused++ })
		m.reject(flight.RejectHeadMismatch, to)
		return nil, fmt.Errorf("statesync: fetched range does not reach the attested head hash")
	}
	return blocks, nil
}

// verifyBlocks decodes and chain-checks one response's blocks, returning
// the verified blocks, the new chain tip, and — on failure — the reject
// cause the refusal is recorded under.
func verifyBlocks(encoded [][]byte, from, to uint64, prev types.Digest) ([]*ledger.Block, types.Digest, flight.Reject, error) {
	if uint64(len(encoded)) > to-from {
		return nil, prev, flight.RejectOvercount, fmt.Errorf("%d blocks answer a request for %d", len(encoded), to-from)
	}
	blocks := make([]*ledger.Block, 0, len(encoded))
	for i, enc := range encoded {
		blk, err := ledger.DecodeBlock(enc)
		if err != nil {
			return nil, prev, flight.RejectTruncated, err
		}
		if blk.Height != from+uint64(i) {
			return nil, prev, flight.RejectWrongHeight, fmt.Errorf("block %d has height %d, want %d", i, blk.Height, from+uint64(i))
		}
		if blk.PrevHash != prev {
			return nil, prev, flight.RejectChainBreak, fmt.Errorf("block at height %d breaks the hash chain", blk.Height)
		}
		if !blk.Proof.Digest.IsZero() && blk.Proof.Digest != blk.Batch.Digest() {
			return nil, prev, flight.RejectProof, fmt.Errorf("block at height %d carries a proof for a different batch", blk.Height)
		}
		prev = blk.Hash()
		blocks = append(blocks, blk)
	}
	return blocks, prev, 0, nil
}

// install hands the verified result to the event loop and waits.
func (m *Manager) install(res *Result) error {
	errc := make(chan error, 1)
	if !m.host.OnLoop(func() { errc <- m.host.Install(res) }) {
		return errStopped
	}
	select {
	case err := <-errc:
		return err
	case <-m.done:
		return errStopped
	}
}
