package statesync

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// RegisterMetrics exposes the manager's transfer counters in reg, polled at
// scrape time — state transfers become visible in /metrics mid-flight
// instead of only in a one-off log line after the fact.
func (m *Manager) RegisterMetrics(reg *obs.Registry) {
	rl := fmt.Sprintf(`replica="%d"`, m.cfg.Self)
	stat := func(f func(Stats) uint64) func() float64 {
		return func() float64 { return float64(f(m.Stats())) }
	}
	reg.CounterFunc("statesync_probes_total", rl, "probe broadcasts sent", stat(func(s Stats) uint64 { return s.Probes }))
	reg.CounterFunc("statesync_offers_served_total", rl, "state offers answered to peers", stat(func(s Stats) uint64 { return s.OffersServed }))
	reg.CounterFunc("statesync_offers_rejected_total", rl, "offers discarded for failing f+1 attestation", stat(func(s Stats) uint64 { return s.OffersRejected }))
	reg.CounterFunc("statesync_chunks_served_total", rl, "snapshot chunks served to peers", stat(func(s Stats) uint64 { return s.ChunksServed }))
	reg.CounterFunc("statesync_ranges_served_total", rl, "block ranges served to peers", stat(func(s Stats) uint64 { return s.RangesServed }))
	reg.CounterFunc("statesync_chunks_fetched_total", rl, "snapshot chunks accepted from peers", stat(func(s Stats) uint64 { return s.ChunksFetched }))
	reg.CounterFunc("statesync_blocks_fetched_total", rl, "blocks accepted from peers", stat(func(s Stats) uint64 { return s.BlocksFetched }))
	reg.CounterFunc("statesync_bytes_fetched_total", rl, "snapshot bytes accepted from peers", stat(func(s Stats) uint64 { return s.BytesFetched }))
	reg.CounterFunc("statesync_range_bytes_total", rl, "encoded block bytes accepted from peers", stat(func(s Stats) uint64 { return s.RangeBytes }))
	reg.CounterFunc("statesync_chunks_refused_total", rl, "chunks refused (size or digest mismatch)", stat(func(s Stats) uint64 { return s.ChunksRefused }))
	reg.CounterFunc("statesync_ranges_refused_total", rl, "ranges refused (chain-link or proof mismatch)", stat(func(s Stats) uint64 { return s.RangesRefused }))
	reg.CounterFunc("statesync_source_rotates_total", rl, "source failures that forced rotation", stat(func(s Stats) uint64 { return s.SourceRotates }))
	reg.CounterFunc("statesync_installs_total", rl, "successful installs", stat(func(s Stats) uint64 { return s.Installs }))
	reg.CounterFunc("statesync_install_failed_total", rl, "installs that errored", stat(func(s Stats) uint64 { return s.InstallFailed }))
	reg.CounterFunc("statesync_snapshots_installed_total", rl, "installs that included a snapshot (vs range-only)", stat(func(s Stats) uint64 { return s.InstalledSnaps }))
	reg.CounterFunc("statesync_transfer_seconds_total", rl, "wall time spent in successful transfers", func() float64 {
		return float64(m.Stats().TransferNanos) / 1e9
	})
	// One series per refusal cause, same codes the flight recorder's
	// offer_reject events carry — a spike here and a timeline entry name the
	// identical failure.
	for c := flight.RejectNoQuorum; c <= flight.RejectOvercount; c++ {
		cause := c
		reg.CounterFunc("statesync_reject_cause_total",
			fmt.Sprintf(`reason="%s",replica="%d"`, cause, m.cfg.Self),
			"refusals by cause (attestation, chunk, or range verification)",
			stat(func(s Stats) uint64 { return s.RejectCauses[cause] }))
	}
	reg.GaugeFunc("statesync_synced", rl, "1 once the replica is verified at the cluster head", func() float64 {
		if m.Synced() {
			return 1
		}
		return 0
	})
}
