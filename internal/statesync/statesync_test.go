package statesync

import (
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/types"
)

// mkChain builds a ledger with n single-transaction blocks and returns it.
func mkChain(n int, seed byte) *ledger.Ledger {
	lg := ledger.New()
	for i := 0; i < n; i++ {
		batch := &types.Batch{Txns: []types.Transaction{{
			Client: 1, Seq: uint64(i + 1), Op: []byte{seed, byte(i)},
		}}}
		proof := ledger.Proof{Round: types.Round(i + 1), Digest: batch.Digest()}
		lg.Append(batch, proof, types.Hash([]byte{seed, byte(i), 0xEE}))
	}
	return lg
}

func encodeRange(lg *ledger.Ledger, from, to uint64) [][]byte {
	var out [][]byte
	for h := from; h < to; h++ {
		out = append(out, ledger.EncodeBlock(lg.Get(h)))
	}
	return out
}

// newFetcher builds a Manager whose Send is answered synchronously by
// respond (per-destination): the reply, if any, is injected back through
// HandleMessage exactly as the event loop would.
func newFetcher(t *testing.T, attest int, respond func(to types.ReplicaID, m types.Message) types.Message) *Manager {
	t.Helper()
	var m *Manager
	m = New(Config{
		Self: 3, N: 4, Attest: attest,
		RequestTimeout: 50 * time.Millisecond,
		OfferWait:      30 * time.Millisecond,
	}, Host{
		Send: func(to types.ReplicaID, msg types.Message) {
			if reply := respond(to, msg); reply != nil {
				m.HandleMessage(to, false, reply)
			}
		},
		Ledger: func() *ledger.Ledger { return ledger.New() },
	})
	return m
}

// snapServer answers chunk requests for state, optionally corrupting them.
func snapServer(self types.ReplicaID, state []byte, chunkBytes uint64, corrupt func(chunk uint64, data []byte) []byte) func(m types.Message) types.Message {
	return func(m types.Message) types.Message {
		req, ok := m.(*types.SnapshotRequest)
		if !ok || req.IsProbe() {
			return nil
		}
		total := chunkCount(uint64(len(state)), chunkBytes)
		off := uint64(req.Chunk) * chunkBytes
		end := min(off+chunkBytes, uint64(len(state)))
		data := append([]byte(nil), state[off:end]...)
		if corrupt != nil {
			data = corrupt(uint64(req.Chunk), data)
		}
		return &types.SnapshotChunk{Replica: self, Height: req.Height, Chunk: req.Chunk, Of: uint32(total), Data: data}
	}
}

func snapOffer(state []byte, chunkBytes uint64) *types.StateOffer {
	return &types.StateOffer{
		SnapHeight:  8,
		SnapSize:    uint64(len(state)),
		ChunkBytes:  uint32(chunkBytes),
		SnapAppHash: types.Hash(state),
	}
}

func TestFetchSnapshotRefusesTruncatedChunk(t *testing.T) {
	state := make([]byte, 2500)
	for i := range state {
		state[i] = byte(i * 7)
	}
	const cb = 1024
	honest := snapServer(1, state, cb, nil)
	truncating := snapServer(0, state, cb, func(chunk uint64, data []byte) []byte {
		if chunk == 1 {
			return data[:len(data)-5] // bites off the tail of chunk 1
		}
		return data
	})
	m := newFetcher(t, 1, func(to types.ReplicaID, msg types.Message) types.Message {
		if to == 0 {
			return truncating(msg)
		}
		return honest(msg)
	})
	data, err := m.fetchSnapshot(snapOffer(state, cb), []types.ReplicaID{0, 1})
	if err != nil {
		t.Fatalf("fetch with honest fallback failed: %v", err)
	}
	if types.Hash(data) != types.Hash(state) {
		t.Fatal("fetched state differs")
	}
	st := m.Stats()
	if st.ChunksRefused == 0 || st.SourceRotates == 0 {
		t.Fatalf("truncated chunk was not refused: %+v", st)
	}

	// With ONLY the truncating source, the fetch must fail outright.
	m2 := newFetcher(t, 1, func(to types.ReplicaID, msg types.Message) types.Message { return truncating(msg) })
	if _, err := m2.fetchSnapshot(snapOffer(state, cb), []types.ReplicaID{0}); err == nil {
		t.Fatal("truncated-only source produced a snapshot")
	}
}

func TestFetchSnapshotRefusesBitFlippedChunk(t *testing.T) {
	state := make([]byte, 3000)
	for i := range state {
		state[i] = byte(i)
	}
	const cb = 1024
	flipping := snapServer(0, state, cb, func(chunk uint64, data []byte) []byte {
		if chunk == 2 {
			data[3] ^= 0x40 // right size, silently corrupt
		}
		return data
	})
	m := newFetcher(t, 1, func(to types.ReplicaID, msg types.Message) types.Message { return flipping(msg) })
	if _, err := m.fetchSnapshot(snapOffer(state, cb), []types.ReplicaID{0}); err == nil {
		t.Fatal("bit-flipped snapshot passed the attested digest")
	}
	if st := m.Stats(); st.ChunksRefused == 0 {
		t.Fatalf("digest mismatch not counted: %+v", st)
	}
}

func TestFetchRangeRefusesWrongHeightAndForgedChains(t *testing.T) {
	honestChain := mkChain(10, 1)
	forgedChain := mkChain(10, 2) // same heights, different history
	head := honestChain.Get(9).Hash()

	rangeServer := func(self types.ReplicaID, lg *ledger.Ledger, shift uint64) func(m types.Message) types.Message {
		return func(m types.Message) types.Message {
			req, ok := m.(*types.BlockRangeRequest)
			if !ok {
				return nil
			}
			from := req.From + shift // a wrong-height server answers off by `shift`
			if from >= lg.Height() {
				return nil
			}
			to := min(req.To+shift, lg.Height())
			return &types.BlockRange{Replica: self, From: req.From, Blocks: encodeRange(lg, from, to)}
		}
	}

	// Wrong-height server (serves heights shifted by 2 under the requested
	// labels) is refused by the chain-link check; honest server completes.
	m := newFetcher(t, 1, func(to types.ReplicaID, msg types.Message) types.Message {
		if to == 0 {
			return rangeServer(0, honestChain, 2)(msg)
		}
		return rangeServer(1, honestChain, 0)(msg)
	})
	blocks, err := m.fetchRange(4, 10, honestChain.Get(3).Hash(), head, []types.ReplicaID{0, 1})
	if err != nil {
		t.Fatalf("fetch with honest fallback failed: %v", err)
	}
	if len(blocks) != 6 || blocks[5].Hash() != head {
		t.Fatal("fetched range wrong")
	}
	if st := m.Stats(); st.RangesRefused == 0 {
		t.Fatalf("wrong-height range not refused: %+v", st)
	}

	// A consistent forgery (a whole substitute chain) survives the
	// internal link check but cannot reach the attested head hash.
	m2 := newFetcher(t, 1, func(to types.ReplicaID, msg types.Message) types.Message {
		return rangeServer(0, forgedChain, 0)(msg)
	})
	if _, err := m2.fetchRange(0, 10, types.ZeroDigest, head, []types.ReplicaID{0}); err == nil {
		t.Fatal("forged chain accepted")
	}

	// A forged block in the middle of an honest prefix breaks the link.
	m3 := newFetcher(t, 1, func(to types.ReplicaID, msg types.Message) types.Message {
		req, ok := msg.(*types.BlockRangeRequest)
		if !ok {
			return nil
		}
		blocks := encodeRange(honestChain, req.From, min(req.To, honestChain.Height()))
		if req.From <= 5 && 5 < req.To {
			blocks[5-req.From] = ledger.EncodeBlock(forgedChain.Get(5))
		}
		return &types.BlockRange{Replica: 0, From: req.From, Blocks: blocks}
	})
	if _, err := m3.fetchRange(0, 10, types.ZeroDigest, head, []types.ReplicaID{0}); err == nil {
		t.Fatal("substituted block accepted")
	}
}

func TestProbeRequiresAttestation(t *testing.T) {
	state := []byte("app state")
	mkOffer := func(id types.ReplicaID, height uint64) *types.StateOffer {
		o := snapOffer(state, 1024)
		o.Replica = id
		o.Height = height
		o.HeadHash = types.Hash([]byte{byte(height)})
		o.SyncPoint = []byte{1}
		return o
	}
	// Disagreeing offers with Attest=2: no trustworthy target.
	m := newFetcher(t, 2, func(to types.ReplicaID, msg types.Message) types.Message {
		if req, ok := msg.(*types.SnapshotRequest); ok && req.IsProbe() {
			return mkOffer(to, uint64(10+to)) // every peer claims a different head
		}
		return nil
	})
	if _, _, info := m.probe(); info.attested || !info.sawHigher {
		t.Fatal("disagreeing offers produced an attested target")
	}
	// Two identical offers: attested.
	m2 := newFetcher(t, 2, func(to types.ReplicaID, msg types.Message) types.Message {
		if req, ok := msg.(*types.SnapshotRequest); ok && req.IsProbe() {
			if to == 2 {
				return mkOffer(to, 99) // lone dissenter
			}
			return mkOffer(to, 12)
		}
		return nil
	})
	target, sources, info2 := m2.probe()
	if !info2.attested {
		t.Fatal("identical offers did not attest")
	}
	if target.Height != 12 || len(sources) != 2 {
		t.Fatalf("attested target %d from %v, want 12 from 2 peers", target.Height, sources)
	}
}

func TestChunkCount(t *testing.T) {
	for _, tc := range []struct{ size, cb, want uint64 }{
		{0, 1024, 1}, {1, 1024, 1}, {1024, 1024, 1}, {1025, 1024, 2}, {4096, 1024, 4},
	} {
		if got := chunkCount(tc.size, tc.cb); got != tc.want {
			t.Fatalf("chunkCount(%d,%d) = %d, want %d", tc.size, tc.cb, got, tc.want)
		}
	}
}
