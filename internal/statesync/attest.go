package statesync

// Checkpoint-boundary attestation: the fix for the known blocker that f+1
// byte-identical offers only form on quiescent clusters.
//
// The legacy offer tuple includes the LIVE ledger head and the machine's
// live frontier, both of which advance with every decision — under
// sustained load no two replicas serve identical bytes at the same instant
// and a wiped replica can never pick a target. Checkpoint boundaries do not
// have this problem: at the moment a replica persists the snapshot at
// height H, its boundary sync point (sm.BoundarySyncable) is a pure
// function of the delivery prefix, so every correct replica that
// checkpoints H serializes identical bytes NO MATTER how far its live state
// has run ahead. Each replica therefore signs a digest binding the snapshot
// to that boundary frontier with its threshold share (crypto.Share) and
// broadcasts it; whoever gathers f+1 matching shares combines them
// (crypto.Attest) into one constant-size aggregate its future StateOffers
// carry. A fetcher holding the group scheme verifies the aggregate against
// the digest it recomputes from the offer's own fields — ONE valid offer is
// then a trusted target, because f+1 replicas (at least one honest) signed
// exactly those bytes at the boundary.
//
// The attested target reaches the checkpoint, not the live head: the
// fetcher installs snapshot + boundary frontier, rejoins consensus there,
// and bridges the remaining gap through in-protocol checkpoint catch-up —
// which works while the cluster keeps deciding, the exact scenario the
// chaos harness exercises.

import (
	"encoding/binary"

	"repro/internal/crypto"
	"repro/internal/obs/flight"
	"repro/internal/store"
	"repro/internal/types"
)

// attMaxPendingHeights bounds how many not-yet-local checkpoint heights the
// manager stashes early shares for; attMaxShareLen bounds one share.
const (
	attMaxPendingHeights = 8
	attMaxShareLen       = 64
)

// attLocal accumulates shares for a checkpoint this replica itself took.
type attLocal struct {
	digest types.Digest
	bsp    []byte
	shares map[uint32][]byte
}

// attDone is a formed aggregate attestation, ready to ride on offers.
type attDone struct {
	height uint64
	bsp    []byte
	att    []byte
}

// pendingShare is a share that arrived before the local replica reached the
// checkpoint it attests.
type pendingShare struct {
	digest types.Digest
	share  []byte
}

// attestDigest is the message f+1 replicas sign at a checkpoint boundary:
// every snapshot identity field a fetch will be verified against, bound to
// the boundary sync point. ChunkBytes is deliberately excluded — it is
// per-server configuration, and a lie about it only makes a fetch fail its
// size checks, never pass verification with wrong bytes.
func attestDigest(snapHeight, snapSize uint64, appHash, headHash, stateDigest types.Digest, txnCount uint64, bsp []byte) types.Digest {
	buf := make([]byte, 0, 12+8*3+32*3+len(bsp))
	buf = append(buf, "ckpt-att-v1"...)
	buf = binary.BigEndian.AppendUint64(buf, snapHeight)
	buf = binary.BigEndian.AppendUint64(buf, snapSize)
	buf = append(buf, appHash[:]...)
	buf = append(buf, headHash[:]...)
	buf = append(buf, stateDigest[:]...)
	buf = binary.BigEndian.AppendUint64(buf, txnCount)
	buf = append(buf, bsp...)
	return types.Hash(buf)
}

// AttestCheckpoint begins attesting the just-persisted snapshot: compute
// the boundary digest, record and broadcast the local share, and adopt any
// shares peers sent ahead of us. Called on the event loop (runtime
// saveSnapshot); the app-state hash and the sends run on the serve
// goroutine.
func (m *Manager) AttestCheckpoint(snap *store.Snapshot, bsp []byte) {
	if m.cfg.AttestScheme == nil || snap == nil || len(bsp) == 0 {
		return
	}
	bspCopy := append([]byte(nil), bsp...)
	task := serveReq{fn: func() { m.attestLocal(snap, bspCopy) }}
	select {
	case m.serveQ <- task:
	default: // full queue: this boundary goes unattested, the next attests
	}
}

// attestLocal runs on the serve goroutine.
func (m *Manager) attestLocal(snap *store.Snapshot, bsp []byte) {
	scheme := m.cfg.AttestScheme
	digest := attestDigest(snap.Height, uint64(len(snap.AppState)), m.snapHash(snap),
		snap.HeadHash, snap.StateDigest, snap.TxnCount, bsp)
	self := uint32(m.cfg.Self)
	share := scheme.Share(self, digest[:])

	m.mu.Lock()
	local := &attLocal{digest: digest, bsp: bsp, shares: map[uint32][]byte{self: share}}
	m.attLocals[snap.Height] = local
	// Adopt matching early shares; drop the rest (their digest disagrees
	// with what we just checkpointed — a lagging recovery or a liar).
	for party, ps := range m.attPending[snap.Height] {
		if ps.digest == digest {
			local.shares[party] = ps.share
		}
	}
	delete(m.attPending, snap.Height)
	// A newer checkpoint retires every older accumulation: offers only ever
	// carry the attestation of the CURRENT snapshot generation (serveChunk
	// can serve no other).
	for h := range m.attLocals {
		if h < snap.Height {
			delete(m.attLocals, h)
		}
	}
	for h := range m.attPending {
		if h < snap.Height {
			delete(m.attPending, h)
		}
	}
	m.mu.Unlock()

	msg := &types.CheckpointAttest{
		Replica: m.cfg.Self,
		Height:  snap.Height,
		Digest:  digest,
		Share:   share,
	}
	for i := 0; i < m.cfg.N; i++ {
		if id := types.ReplicaID(i); id != m.cfg.Self {
			m.host.Send(id, msg)
		}
	}
	m.maybeFormAttestation(snap.Height)
}

// handleAttestShare runs on the serve goroutine: verify and accumulate one
// peer's share, or stash it when the local replica has not reached that
// checkpoint yet.
func (m *Manager) handleAttestShare(from types.ReplicaID, a *types.CheckpointAttest) {
	scheme := m.cfg.AttestScheme
	if scheme == nil || a.Replica != from || len(a.Share) == 0 || len(a.Share) > attMaxShareLen {
		return
	}
	party := uint32(from)
	// The share is verified against the digest the SENDER claims; whether
	// that digest is the right one for the height is decided when the local
	// checkpoint exists to compare against.
	if !scheme.VerifyShare(party, a.Digest[:], a.Share) {
		m.bump(func(s *Stats) { s.AttSharesRejected++ })
		return
	}
	m.mu.Lock()
	if local, ok := m.attLocals[a.Height]; ok {
		if local.digest != a.Digest {
			m.mu.Unlock()
			m.bump(func(s *Stats) { s.AttSharesRejected++ })
			return
		}
		local.shares[party] = a.Share
		m.mu.Unlock()
		m.maybeFormAttestation(a.Height)
		return
	}
	// Not our checkpoint (yet): stash, bounded.
	floor := uint64(0)
	if m.attDone != nil {
		floor = m.attDone.height
	}
	if a.Height <= floor || (len(m.attPending) >= attMaxPendingHeights && m.attPending[a.Height] == nil) {
		m.mu.Unlock()
		return
	}
	hp := m.attPending[a.Height]
	if hp == nil {
		hp = make(map[uint32]pendingShare, m.cfg.N)
		m.attPending[a.Height] = hp
	}
	hp[party] = pendingShare{digest: a.Digest, share: a.Share}
	m.mu.Unlock()
}

// maybeFormAttestation combines f+1 matching shares into the aggregate the
// replica's offers will carry.
func (m *Manager) maybeFormAttestation(height uint64) {
	scheme := m.cfg.AttestScheme
	m.mu.Lock()
	local, ok := m.attLocals[height]
	if !ok || len(local.shares) < m.cfg.AttestQuorum || (m.attDone != nil && m.attDone.height >= height) {
		m.mu.Unlock()
		return
	}
	shares := make(map[uint32][]byte, len(local.shares))
	for p, s := range local.shares {
		shares[p] = s
	}
	digest, bsp := local.digest, local.bsp
	m.mu.Unlock()

	at, err := scheme.Attest(digest[:], shares)
	if err != nil {
		return
	}
	enc := at.Marshal(nil)
	m.mu.Lock()
	if m.attDone == nil || height > m.attDone.height {
		m.attDone = &attDone{height: height, bsp: bsp, att: enc}
	}
	m.mu.Unlock()
	m.bump(func(s *Stats) { s.AttestationsFormed++ })
	m.emit(flight.KCkptAttest, height, uint64(len(shares)))
	m.logf("statesync: checkpoint %d attested (%d shares)", height, len(shares))
}

// attestationFor returns the (boundary sync point, aggregate) pair for the
// snapshot generation snap, when one has formed.
func (m *Manager) attestationFor(snap *store.Snapshot) ([]byte, []byte) {
	if snap == nil {
		return nil, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.attDone == nil || m.attDone.height != snap.Height {
		return nil, nil
	}
	return m.attDone.bsp, m.attDone.att
}

// attestedTarget scans a probe round's offers for a valid aggregate
// attestation above the local height and, when the byte-identical path
// found nothing, synthesizes a fetch target that reaches the attested
// checkpoint: Height/HeadHash collapse to the snapshot fields and the
// boundary sync point replaces the live frontier, so the ordinary
// fetch-and-install path needs no special casing (the range fetch is simply
// empty). Returns the target plus the replicas serving that exact snapshot
// generation.
func (m *Manager) attestedTarget(offers map[types.ReplicaID]*types.StateOffer, local uint64) (*types.StateOffer, []types.ReplicaID) {
	scheme := m.cfg.AttestScheme
	if scheme == nil {
		return nil, nil
	}
	type key struct {
		height uint64
		digest types.Digest
	}
	verified := make(map[key][]types.ReplicaID)
	for from, o := range offers {
		if len(o.Att) == 0 || o.SnapHeight <= local {
			continue
		}
		digest := attestDigest(o.SnapHeight, o.SnapSize, o.SnapAppHash,
			o.SnapHeadHash, o.SnapStateDigest, o.TxnCount, o.AttSyncPoint)
		at, rest, err := crypto.UnmarshalAttestation(o.Att)
		if err != nil || len(rest) != 0 || !scheme.VerifyAttestation(digest[:], at) {
			m.bump(func(s *Stats) { s.AttOffersRejected++ })
			m.reject(flight.RejectDigest, o.SnapHeight)
			continue
		}
		verified[key{o.SnapHeight, digest}] = append(verified[key{o.SnapHeight, digest}], from)
	}
	var bestKey key
	var bestSrc []types.ReplicaID
	for k, members := range verified {
		if bestSrc == nil || k.height > bestKey.height {
			bestKey, bestSrc = k, members
		}
	}
	if bestSrc == nil {
		return nil, nil
	}
	t := *offers[bestSrc[0]]
	t.Height = t.SnapHeight
	t.HeadHash = t.SnapHeadHash
	t.SyncPoint = t.AttSyncPoint
	m.bump(func(s *Stats) { s.AttestedTargets++ })
	m.emit(flight.KAttTarget, t.SnapHeight, uint64(len(bestSrc)))
	return &t, bestSrc
}
