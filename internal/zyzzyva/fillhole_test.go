package zyzzyva

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
)

// TestFillHoleRecoversMissedOrderRequests drops one order request on its
// way to a single replica. When the next order request arrives, the replica
// must notice the gap, ask the primary to fill the hole, and end up
// delivering both rounds in order.
func TestFillHoleRecoversMissedOrderRequests(t *testing.T) {
	dropping := true
	dropped := 0
	netcfg := simnet.Config{
		N:       4,
		Latency: time.Millisecond,
		Drop: func(from, to types.ReplicaID, m types.Message) bool {
			// Drop only the FIRST order request from the primary to
			// replica 3.
			if dropping && from == 0 && to == 3 && m.Type() == types.MsgOrderRequest {
				dropping = false
				dropped++
				return true
			}
			return false
		},
	}
	net, err := simnet.New(netcfg)
	if err != nil {
		t.Fatal(err)
	}
	insts := make([]*Instance, 4)
	for i := 0; i < 4; i++ {
		insts[i] = New(Config{BatchSize: 1, Window: 4})
		net.SetMachine(types.ReplicaID(i), insts[i])
	}
	net.Start()

	// Two back-to-back proposals: replica 3 misses round 1, sees round 2,
	// and must fill the hole.
	b1 := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("a")}}}
	b2 := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 2, Op: []byte("b")}}}
	net.Schedule(0, func() {
		insts[0].Propose(b1)
		insts[0].Propose(b2)
	})
	net.Run(2 * time.Second)

	if dropped != 1 {
		t.Fatalf("drop rule fired %d times, want 1", dropped)
	}
	if net.MessagesByType()[types.MsgFillHole] == 0 {
		t.Fatal("no FILL-HOLE was ever sent")
	}
	ds := net.Node(3).Decisions()
	if len(ds) != 2 {
		t.Fatalf("replica 3 delivered %d rounds, want 2 (hole filled)", len(ds))
	}
	if ds[0].Round != 1 || ds[1].Round != 2 {
		t.Fatalf("delivery order %d,%d, want 1,2", ds[0].Round, ds[1].Round)
	}
	if ds[0].Digest != b1.Digest() || ds[1].Digest != b2.Digest() {
		t.Fatal("recovered rounds carry wrong batches")
	}
}
