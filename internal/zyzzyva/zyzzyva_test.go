package zyzzyva

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

// cluster builds an n-replica simnet running standalone Zyzzyva.
func cluster(t *testing.T, n int, cfg Config, netcfg simnet.Config) (*simnet.Network, []*Instance) {
	t.Helper()
	netcfg.N = n
	if netcfg.Latency == 0 {
		netcfg.Latency = time.Millisecond
	}
	net, err := simnet.New(netcfg)
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	insts := make([]*Instance, n)
	for i := 0; i < n; i++ {
		insts[i] = New(cfg)
		net.SetMachine(types.ReplicaID(i), insts[i])
	}
	return net, insts
}

func addClient(net *simnet.Network, id types.ClientID, txns int) *client.Client {
	c := client.New(client.Config{
		Client:       id,
		Mode:         client.ModeZyzzyva,
		RetryTimeout: 120 * time.Millisecond,
		Broadcast:    true,
	})
	for s := uint64(1); s <= uint64(txns); s++ {
		c.Submit(types.Transaction{Client: id, Seq: s, Op: []byte(fmt.Sprintf("op-%d-%d", id, s))})
	}
	net.AddClient(id, c)
	return c
}

func TestFastPathSingleRoundTrip(t *testing.T) {
	net, insts := cluster(t, 4, Config{BatchSize: 1}, simnet.Config{})
	c := addClient(net, 1, 3)
	net.Start()
	net.Run(2 * time.Second)

	if !c.Done() {
		t.Fatalf("client incomplete: %d completions", len(c.Completions()))
	}
	for _, comp := range c.Completions() {
		if !comp.FastPath {
			t.Fatalf("seq %d completed via slow path with all replicas healthy", comp.Seq)
		}
	}
	for i, inst := range insts {
		if got, _ := inst.LastAccepted(); got != 3 {
			t.Fatalf("replica %d accepted through round %d, want 3", i, got)
		}
	}
}

func TestSlowPathWithOneCrashedBackup(t *testing.T) {
	net, _ := cluster(t, 4, Config{BatchSize: 1}, simnet.Config{})
	c := addClient(net, 1, 2)
	net.Start()
	net.Crash(3) // a backup, not the primary
	net.Run(4 * time.Second)

	if !c.Done() {
		t.Fatalf("client incomplete with one crashed backup: %d/%d", len(c.Completions()), 2)
	}
	// With only 3 of 4 responding, the fast path (all n) is unreachable:
	// every completion must use the commit-certificate slow path.
	for _, comp := range c.Completions() {
		if comp.FastPath {
			t.Fatalf("seq %d claimed fast path with a crashed backup", comp.Seq)
		}
	}
}

func TestDeliveryOrderConsistent(t *testing.T) {
	net, _ := cluster(t, 4, Config{BatchSize: 1}, simnet.Config{Jitter: 2 * time.Millisecond, Seed: 7})
	c1 := addClient(net, 1, 5)
	c2 := addClient(net, 2, 5)
	net.Start()
	net.Run(5 * time.Second)
	if !c1.Done() || !c2.Done() {
		t.Fatalf("clients incomplete: %d, %d", len(c1.Completions()), len(c2.Completions()))
	}
	ref := net.Node(0).Decisions()
	if len(ref) == 0 {
		t.Fatal("no decisions delivered")
	}
	for id := 1; id < 4; id++ {
		ds := net.Node(types.ReplicaID(id)).Decisions()
		limit := min(len(ds), len(ref))
		for j := 0; j < limit; j++ {
			if ds[j].Digest != ref[j].Digest || ds[j].Round != ref[j].Round {
				t.Fatalf("replica %d delivery %d diverges", id, j)
			}
		}
	}
}

func TestEquivocationDetectedInRCCMode(t *testing.T) {
	// In RCC mode, conflicting order requests for the same round must be
	// reported through Env.Suspect rather than triggering a view change.
	net, insts := cluster(t, 4, Config{BatchSize: 1, FixedPrimary: true}, simnet.Config{})
	net.Start()

	b1 := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("x")}}}
	b2 := &types.Batch{Txns: []types.Transaction{{Client: 2, Seq: 1, Op: []byte("y")}}}
	or1 := &types.OrderRequest{View: 0, Round: 1, Digest: b1.Digest(), Batch: b1}
	or2 := &types.OrderRequest{View: 0, Round: 1, Digest: b2.Digest(), Batch: b2}
	h1 := historyStep(types.ZeroDigest, b1.Digest())
	or1.History = h1
	or2.History = historyStep(types.ZeroDigest, b2.Digest())

	insts[1].OnMessage(sm.FromReplica(0), or1)
	insts[1].OnMessage(sm.FromReplica(0), or2)
	if len(net.Node(1).Suspicions()) == 0 {
		t.Fatal("equivocation not reported via Suspect")
	}
}

func TestViewChangeReplacesFaultyPrimary(t *testing.T) {
	net, insts := cluster(t, 4, Config{BatchSize: 1, ProgressTimeout: 100 * time.Millisecond}, simnet.Config{})
	c := addClient(net, 1, 1)
	net.Start()
	net.Crash(0) // initial primary of view 0
	net.Run(6 * time.Second)

	if !c.Done() {
		t.Fatalf("client request never completed after primary crash")
	}
	for i := 1; i < 4; i++ {
		if insts[i].View() == 0 {
			t.Fatalf("replica %d never left view 0", i)
		}
	}
}

func TestViewChangePreservesCommittedPrefix(t *testing.T) {
	net, _ := cluster(t, 4, Config{BatchSize: 1, ProgressTimeout: 100 * time.Millisecond}, simnet.Config{})
	c := addClient(net, 1, 2)
	net.Start()
	net.Run(2 * time.Second) // both committed in view 0
	if !c.Done() {
		t.Fatalf("warm-up incomplete")
	}
	before := len(net.Node(1).Decisions())
	net.Crash(0)
	c2 := addClient(net, 2, 1)
	// Re-register client 2's machine after Start already ran: start it
	// manually through the network.
	net.Schedule(net.Now(), func() {})
	net.Start() // idempotent for machines; starts the new client
	net.Run(net.Now() + 6*time.Second)

	if !c2.Done() {
		t.Fatalf("post-view-change request never completed")
	}
	after := net.Node(1).Decisions()
	if len(after) < before {
		t.Fatalf("view change lost decisions: %d -> %d", before, len(after))
	}
}

func TestHistoryChainIsDeterministic(t *testing.T) {
	d1 := types.Hash([]byte("a"))
	d2 := types.Hash([]byte("b"))
	h1 := historyStep(historyStep(types.ZeroDigest, d1), d2)
	h2 := historyStep(historyStep(types.ZeroDigest, d1), d2)
	if h1 != h2 {
		t.Fatal("history chain not deterministic")
	}
	if historyStep(types.ZeroDigest, d1) == historyStep(types.ZeroDigest, d2) {
		t.Fatal("history chain ignores digest")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
