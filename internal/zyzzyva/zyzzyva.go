// Package zyzzyva implements the Zyzzyva speculative Byzantine commit
// algorithm (Kotla et al.), the fastest primary-backup protocol of the RCC
// paper's evaluation when no failures occur (§V-C).
//
// Normal case: the primary assigns an order to a client batch and
// broadcasts an ORDER-REQ carrying a history hash chain; replicas
// speculatively execute the batch in that order and reply to the client
// directly. A client that collects all n matching speculative responses is
// done (single round trip). With only nf = 2f+1 matching responses the
// client assembles a COMMIT-CERT and broadcasts it; replicas acknowledge
// with LOCAL-COMMIT, making the prefix stable.
//
// Failure handling is expensive (the property Fig. 8 (c,d) shows): missing
// order requests trigger FILL-HOLE round trips, and a faulty primary
// triggers I-HATE-THE-PRIMARY accusations followed by a view change that
// must reconcile divergent speculative histories.
//
// Like the PBFT package, the instance supports RCC mode (Config.FixedPrimary):
// failures are reported through Env.Suspect instead of starting a view
// change, which is how RCC-Z (Fig. 9) is assembled.
package zyzzyva

import (
	"sort"
	"time"

	"repro/internal/sm"
	"repro/internal/types"
)

// Config parameterizes one Zyzzyva instance.
type Config struct {
	// Instance is the consensus instance this machine serves.
	Instance types.InstanceID
	// Primary is the initial primary (fixed in RCC mode).
	Primary types.ReplicaID
	// FixedPrimary selects RCC mode: no view changes, failures reported
	// via Env.Suspect.
	FixedPrimary bool
	// Window is the out-of-order proposal window (Zyzzyva supports
	// out-of-order processing, §V-C).
	Window int
	// ProgressTimeout is the failure-detection timeout.
	ProgressTimeout time.Duration
	// BatchSize groups client requests per order request.
	BatchSize int
	// BatchTimeout proposes a partial batch after this delay.
	BatchTimeout time.Duration
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 1
	}
	if c.ProgressTimeout <= 0 {
		c.ProgressTimeout = 500 * time.Millisecond
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 50 * time.Millisecond
	}
}

// round tracks one speculative round.
type round struct {
	view      types.View
	digest    types.Digest
	history   types.Digest // hash chain through this round
	batch     *types.Batch
	ordered   bool // ORDER-REQ received
	committed bool // commit certificate seen (LOCAL-COMMIT sent)
	delivered bool
}

// Instance is one Zyzzyva machine. It implements sm.Instance.
type Instance struct {
	cfg Config
	env sm.Env

	view    types.View
	rounds  map[types.Round]*round
	next    types.Round // next round the primary orders (1-based)
	deliver types.Round // next round to deliver speculatively (in order)
	// history is the delivered-prefix hash chain; orderChain is the
	// primary's proposal-order chain, which runs ahead of history when
	// out-of-order proposals are in flight. Both incorporate the same
	// digests in the same (round) order, so they agree at equal depths.
	history    types.Digest
	orderChain types.Digest
	halted     bool

	resumeFloor types.Round

	pending    []types.Transaction
	pendingSet map[txKey]struct{}
	// staleTxns counts delivered transactions since the last queue
	// compaction (amortization counter).
	staleTxns int
	lastSeq   map[types.ClientID]uint64

	// View change state (standalone mode): I-HATE-THE-PRIMARY accusations
	// per view, then PBFT-style VIEW-CHANGE/NEW-VIEW reconciliation over
	// the speculative histories.
	hates        map[types.View]map[types.ReplicaID]struct{}
	inViewChange bool
	vcVotes      map[types.View]map[types.ReplicaID]*types.ViewChange

	timerArmed bool
}

var _ sm.Instance = (*Instance)(nil)

// New creates a Zyzzyva instance.
func New(cfg Config) *Instance {
	cfg.defaults()
	return &Instance{
		cfg:        cfg,
		rounds:     make(map[types.Round]*round),
		next:       1,
		deliver:    1,
		lastSeq:    make(map[types.ClientID]uint64),
		pendingSet: make(map[txKey]struct{}),
		hates:      make(map[types.View]map[types.ReplicaID]struct{}),
		vcVotes:    make(map[types.View]map[types.ReplicaID]*types.ViewChange),
	}
}

// Start implements sm.Machine.
func (z *Instance) Start(env sm.Env) { z.env = env }

// View returns the current view.
func (z *Instance) View() types.View { return z.view }

func (z *Instance) primaryOf(v types.View) types.ReplicaID {
	if z.cfg.FixedPrimary {
		return z.cfg.Primary
	}
	n := z.env.Params().N
	return types.ReplicaID((int(z.cfg.Primary) + int(v)) % n)
}

// IsPrimary reports whether the local replica leads the current view.
func (z *Instance) IsPrimary() bool { return z.primaryOf(z.view) == z.env.ID() }

func (z *Instance) getRound(r types.Round) *round {
	rd, ok := z.rounds[r]
	if !ok {
		rd = &round{}
		z.rounds[r] = rd
	}
	return rd
}

func (z *Instance) inFlight() int {
	n := 0
	start := z.deliver
	if z.resumeFloor > start {
		start = z.resumeFloor
	}
	for r := start; r < z.next; r++ {
		if rd, ok := z.rounds[r]; !ok || !rd.ordered {
			n++
		}
	}
	return n
}

// historyStep extends the order-request history chain.
func historyStep(prev, d types.Digest) types.Digest {
	buf := make([]byte, 0, 64)
	buf = append(buf, prev[:]...)
	buf = append(buf, d[:]...)
	return types.Hash(buf)
}

// Propose implements sm.Instance: the primary assigns the next round to the
// batch and broadcasts an ORDER-REQ.
func (z *Instance) Propose(batch *types.Batch) bool {
	if z.halted || z.inViewChange || !z.IsPrimary() {
		return false
	}
	if z.inFlight() >= z.cfg.Window {
		return false
	}
	r := z.next
	if r < z.resumeFloor {
		r = z.resumeFloor
		z.next = r
	}
	z.next++
	d := batch.Digest()
	z.orderChain = historyStep(z.orderChain, d)
	or := &types.OrderRequest{View: z.view, Round: r, History: z.orderChain, Digest: d, Batch: batch}
	or.Inst = z.cfg.Instance
	z.env.Broadcast(or)
	return true
}

// NextProposeRound implements sm.Instance.
func (z *Instance) NextProposeRound() types.Round {
	if z.next < z.resumeFloor {
		return z.resumeFloor
	}
	return z.next
}

// LastAccepted implements sm.Instance.
func (z *Instance) LastAccepted() (types.Round, bool) {
	var max types.Round
	found := false
	for r, rd := range z.rounds {
		if rd.ordered && r > max {
			max, found = r, true
		}
	}
	return max, found
}

// Halt implements sm.Instance.
func (z *Instance) Halt() {
	z.halted = true
	z.disarmTimer()
}

// Halted implements sm.Instance.
func (z *Instance) Halted() bool { return z.halted }

// ResumeAt implements sm.Instance.
func (z *Instance) ResumeAt(r types.Round) {
	z.halted = false
	z.resumeFloor = r
	if z.next < r {
		z.next = r
	}
	z.tryDeliver()
}

// SkipTo voids every round in [deliver, target) without an ordered batch
// (RCC recovery agreed they hold no proposal); ordered rounds in the range
// are delivered in order. See pbft.Instance.SkipTo for the range-step
// rationale.
func (z *Instance) SkipTo(target types.Round) {
	if target <= z.deliver {
		return
	}
	queued := make(map[txKey]struct{}, len(z.pending))
	for i := range z.pending {
		queued[txKey{z.pending[i].Client, z.pending[i].Seq}] = struct{}{}
	}
	ordered := make([]types.Round, 0, 8)
	for r, rd := range z.rounds {
		if r < z.deliver || r >= target {
			continue
		}
		if rd.ordered {
			if !rd.delivered {
				ordered = append(ordered, r)
			}
			continue
		}
		z.requeueVoided(rd.batch, queued)
		delete(z.rounds, r)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, c := range ordered {
		rd := z.rounds[c]
		rd.delivered = true
		z.deliverRound(c, rd)
		z.deliver = c + 1
	}
	if z.deliver < target {
		z.deliver = target
	}
	z.tryDeliver()
}

// StateForRecovery implements sm.Instance (Assumption A3): with Zyzzyva's
// fine-tuning for RCC, the speculative order requests a replica holds are
// its recoverable state — a proposal accepted by any non-faulty replica is
// present at nf−f of them.
func (z *Instance) StateForRecovery() []types.AcceptedProposal {
	out := make([]types.AcceptedProposal, 0, len(z.rounds))
	for r, rd := range z.rounds {
		if rd.ordered && rd.batch != nil {
			out = append(out, types.AcceptedProposal{
				Round: r, View: rd.view, Digest: rd.digest,
				Batch: rd.batch, Prepared: rd.committed,
			})
		}
	}
	return out
}

// AdoptDecision implements sm.Instance.
func (z *Instance) AdoptDecision(d sm.Decision) {
	rd := z.getRound(d.Round)
	if rd.ordered {
		return
	}
	rd.view = d.View
	rd.digest = d.Digest
	rd.batch = d.Batch
	rd.ordered = true
	rd.committed = true
	if d.Round >= z.next {
		z.next = d.Round + 1
	}
	z.tryDeliver()
}

// Pending returns the number of queued client transactions.
func (z *Instance) Pending() int { return len(z.pending) }

// OnMessage implements sm.Machine.
func (z *Instance) OnMessage(from sm.Source, m types.Message) {
	if z.halted {
		return
	}
	switch msg := m.(type) {
	case *types.ClientRequest:
		z.onClientRequest(msg)
	case *types.OrderRequest:
		z.onOrderRequest(from.Replica, msg)
	case *types.CommitCert:
		z.onCommitCert(msg)
	case *types.FillHole:
		z.onFillHole(msg)
	case *types.IHatePrimary:
		z.onIHatePrimary(msg)
	case *types.ViewChange:
		z.onViewChange(msg)
	case *types.NewView:
		z.onNewView(from.Replica, msg)
	}
}

func (z *Instance) onClientRequest(m *types.ClientRequest) {
	if m.Tx.IsNoOp() || m.Tx.Seq <= z.lastSeq[m.Tx.Client] {
		return
	}
	key := txKey{m.Tx.Client, m.Tx.Seq}
	if _, dup := z.pendingSet[key]; dup {
		return // queued or already in flight
	}
	z.pendingSet[key] = struct{}{}
	z.pending = append(z.pending, m.Tx)
	if !z.IsPrimary() {
		z.armTimer()
		return
	}
	z.maybeProposeBatch()
}

func (z *Instance) maybeProposeBatch() {
	for len(z.pending) >= z.cfg.BatchSize && z.inFlight() < z.cfg.Window {
		txns := z.takeBatch(z.cfg.BatchSize)
		if len(txns) == 0 {
			continue // only stale entries were consumed; re-check the queue
		}
		if !z.Propose(&types.Batch{Txns: txns}) {
			// Window full: return the batch to the queue front.
			z.pending = append(txns, z.pending...)
			return
		}
	}
	if len(z.pending) > 0 {
		z.env.SetTimer(sm.TimerID{Instance: z.cfg.Instance, Kind: sm.TimerBatch}, z.cfg.BatchTimeout)
	}
}

func (z *Instance) onOrderRequest(from types.ReplicaID, m *types.OrderRequest) {
	if m.View != z.view || from != z.primaryOf(m.View) || z.inViewChange {
		return
	}
	if m.Round < z.resumeFloor || m.Batch == nil {
		return
	}
	if m.Batch.Digest() != m.Digest {
		z.suspect(m.Round)
		return
	}
	rd := z.getRound(m.Round)
	if rd.ordered {
		if rd.digest != m.Digest {
			// Equivocation: two order requests for the same round.
			z.suspect(m.Round)
		}
		return
	}
	rd.view = m.View
	rd.digest = m.Digest
	rd.history = m.History
	rd.batch = m.Batch
	rd.ordered = true
	z.armTimer()
	z.tryDeliver()
	// Detect holes: an order request for a round beyond the delivery
	// frontier whose predecessors are missing asks the primary to fill.
	if m.Round > z.deliver {
		if _, ok := z.rounds[z.deliver]; !ok {
			fh := &types.FillHole{Replica: z.env.ID(), View: z.view, From: z.deliver, To: m.Round - 1}
			fh.Inst = z.cfg.Instance
			z.env.Send(z.primaryOf(z.view), fh)
		}
	}
}

// tryDeliver speculatively delivers ordered rounds in order, verifying the
// history chain links.
func (z *Instance) tryDeliver() {
	progressed := false
	for {
		rd, ok := z.rounds[z.deliver]
		if !ok || !rd.ordered || rd.delivered {
			break
		}
		want := historyStep(z.history, rd.digest)
		if !rd.history.IsZero() && rd.history != want {
			// The primary's chain disagrees with ours: misbehaviour.
			z.suspect(z.deliver)
			break
		}
		z.history = want
		rd.delivered = true
		z.deliverRound(z.deliver, rd)
		z.deliver++
		progressed = true
	}
	if progressed {
		z.resetTimerAfterProgress()
	}
	if z.IsPrimary() {
		z.maybeProposeBatch()
	}
}

func (z *Instance) deliverRound(r types.Round, rd *round) {
	z.markDelivered(rd.batch)
	z.env.Deliver(sm.Decision{
		Instance:    z.cfg.Instance,
		Round:       r,
		View:        rd.view,
		Digest:      rd.digest,
		Batch:       rd.batch,
		Speculative: !rd.committed,
	})
	// Speculative responses go directly to the clients (the defining
	// Zyzzyva optimization): one per client with requests in the batch.
	// The result digest stands for the speculative execution outcome; it
	// is identical across non-faulty replicas because execution is
	// deterministic.
	if rd.batch == nil {
		return
	}
	sent := make(map[types.ClientID]struct{})
	for i := range rd.batch.Txns {
		tx := &rd.batch.Txns[i]
		if tx.IsNoOp() {
			continue
		}
		if _, dup := sent[tx.Client]; dup {
			continue
		}
		sent[tx.Client] = struct{}{}
		sr := &types.SpecResponse{
			Replica: z.env.ID(), View: rd.view, Round: r,
			History: z.history, Result: rd.digest,
			Client: tx.Client, Count: rd.batch.Len(),
		}
		sr.Inst = z.cfg.Instance
		z.env.SendClient(tx.Client, sr)
	}
}

func (z *Instance) markDelivered(b *types.Batch) {
	if b == nil {
		return
	}
	for i := range b.Txns {
		tx := &b.Txns[i]
		if tx.IsNoOp() {
			continue
		}
		delete(z.pendingSet, txKey{tx.Client, tx.Seq})
		if tx.Seq > z.lastSeq[tx.Client] {
			z.lastSeq[tx.Client] = tx.Seq
		}
	}
	// Compact the queue only when at least half of it is stale: a scan per
	// delivered batch is O(backlog) and melts down under open-loop
	// overload; amortized compaction is O(1) per transaction.
	z.staleTxns += b.Len()
	if len(z.pending) == 0 || 2*z.staleTxns < len(z.pending) {
		return
	}
	z.staleTxns = 0
	kept := z.pending[:0]
	for i := range z.pending {
		tx := &z.pending[i]
		if _, live := z.pendingSet[txKey{tx.Client, tx.Seq}]; live && tx.Seq > z.lastSeq[tx.Client] {
			kept = append(kept, *tx)
		}
	}
	z.pending = kept
}

// onCommitCert handles a client-assembled commit certificate: the rounds up
// to it become stable and the replica acknowledges with LOCAL-COMMIT.
func (z *Instance) onCommitCert(m *types.CommitCert) {
	if m.View != z.view {
		return
	}
	rd, ok := z.rounds[m.Round]
	if !ok || !rd.ordered || rd.history != m.History {
		return
	}
	for r := types.Round(1); r <= m.Round; r++ {
		if prd, ok := z.rounds[r]; ok {
			prd.committed = true
		}
	}
	lc := &types.LocalCommit{Replica: z.env.ID(), View: z.view, Round: m.Round, History: m.History, Client: m.Client}
	lc.Inst = z.cfg.Instance
	z.env.SendClient(m.Client, lc)
}

// onFillHole retransmits order requests the sender missed.
func (z *Instance) onFillHole(m *types.FillHole) {
	if !z.IsPrimary() || m.View != z.view {
		return
	}
	for r := m.From; r <= m.To; r++ {
		rd, ok := z.rounds[r]
		if !ok || !rd.ordered || rd.batch == nil {
			continue
		}
		or := &types.OrderRequest{View: rd.view, Round: r, History: rd.history, Digest: rd.digest, Batch: rd.batch}
		or.Inst = z.cfg.Instance
		z.env.Send(m.Replica, or)
	}
}

// suspect reports primary failure: Env.Suspect in RCC mode, otherwise an
// I-HATE-THE-PRIMARY accusation that can snowball into a view change.
func (z *Instance) suspect(rnd types.Round) {
	if z.cfg.FixedPrimary {
		z.env.Suspect(z.cfg.Instance, rnd)
		return
	}
	ihp := &types.IHatePrimary{Replica: z.env.ID(), View: z.view}
	ihp.Inst = z.cfg.Instance
	z.env.Broadcast(ihp)
}

func (z *Instance) onIHatePrimary(m *types.IHatePrimary) {
	if z.cfg.FixedPrimary || m.View != z.view {
		return
	}
	s, ok := z.hates[m.View]
	if !ok {
		s = make(map[types.ReplicaID]struct{})
		z.hates[m.View] = s
	}
	s[m.Replica] = struct{}{}
	// f+1 accusations guarantee one honest accuser: join the mutiny so all
	// honest replicas converge on the view change.
	if len(s) >= z.env.Params().FaultDetection() && !z.inViewChange {
		if _, accused := s[z.env.ID()]; !accused {
			ihp := &types.IHatePrimary{Replica: z.env.ID(), View: z.view}
			ihp.Inst = z.cfg.Instance
			z.env.Broadcast(ihp)
		}
		z.startViewChange(z.view + 1)
	}
}

// startViewChange abandons the current view and broadcasts this replica's
// ordered history for reconciliation in the new view.
func (z *Instance) startViewChange(v types.View) {
	if v <= z.view && z.inViewChange {
		return
	}
	z.inViewChange = true
	z.view = v
	z.disarmTimer()
	vc := &types.ViewChange{Replica: z.env.ID(), NewView: v, Prepared: z.StateForRecovery()}
	vc.Inst = z.cfg.Instance
	z.env.Broadcast(vc)
	z.env.SetTimer(sm.TimerID{Instance: z.cfg.Instance, Kind: sm.TimerViewChange}, z.cfg.ProgressTimeout)
}

func (z *Instance) onViewChange(m *types.ViewChange) {
	if z.cfg.FixedPrimary || m.NewView < z.view {
		return
	}
	votes, ok := z.vcVotes[m.NewView]
	if !ok {
		votes = make(map[types.ReplicaID]*types.ViewChange)
		z.vcVotes[m.NewView] = votes
	}
	votes[m.Replica] = m
	if len(votes) < z.env.Params().NF() {
		return
	}
	if z.primaryOf(m.NewView) != z.env.ID() {
		return
	}
	// New primary: reconcile histories. A round is re-proposed when any
	// committed copy exists, or speculatively when f+1 replicas report it
	// (guaranteeing one honest source). Zyzzyva may drop speculative
	// suffixes held by fewer replicas — the cost of speculation.
	counts := make(map[types.Round]map[types.Digest]int)
	byDigest := make(map[types.Digest]types.AcceptedProposal)
	for _, vc := range votes {
		for _, ap := range vc.Prepared {
			if ap.Batch == nil || ap.Batch.Digest() != ap.Digest {
				continue
			}
			c, ok := counts[ap.Round]
			if !ok {
				c = make(map[types.Digest]int)
				counts[ap.Round] = c
			}
			c[ap.Digest]++
			if prev, dup := byDigest[ap.Digest]; !dup || ap.Prepared && !prev.Prepared {
				byDigest[ap.Digest] = ap
			}
		}
	}
	var rounds []types.Round
	for r := range counts {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	var repropose []types.AcceptedProposal
	for _, r := range rounds {
		var pick types.AcceptedProposal
		found := false
		for d, c := range counts[r] {
			ap := byDigest[d]
			if ap.Prepared || c >= z.env.Params().FaultDetection() {
				if !found || ap.Prepared && !pick.Prepared {
					pick, found = ap, true
				}
			}
		}
		if found {
			pick.Round = r
			repropose = append(repropose, pick)
		}
	}
	signers := make([]types.ReplicaID, 0, len(votes))
	for r := range votes {
		signers = append(signers, r)
	}
	sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
	nv := &types.NewView{Replica: z.env.ID(), NewView: m.NewView, ViewProofs: signers, Reproposed: repropose}
	nv.Inst = z.cfg.Instance
	z.env.Broadcast(nv)
}

func (z *Instance) onNewView(from types.ReplicaID, m *types.NewView) {
	if z.cfg.FixedPrimary || m.NewView < z.view || from != z.primaryOf(m.NewView) {
		return
	}
	z.view = m.NewView
	z.inViewChange = false
	z.env.CancelTimer(sm.TimerID{Instance: z.cfg.Instance, Kind: sm.TimerViewChange})
	// Adopt the re-proposed suffix. Rounds already delivered locally stay
	// as they are (non-faulty replicas cannot have delivered divergent
	// prefixes: delivery verifies the shared history chain). Reproposed
	// rounds beyond the local frontier are installed as committed; gaps in
	// the re-proposed range were agreed void and are skipped.
	var maxR types.Round
	for i := range m.Reproposed {
		ap := &m.Reproposed[i]
		if ap.Batch == nil || ap.Batch.Digest() != ap.Digest || ap.Round < z.deliver {
			continue
		}
		rd := z.getRound(ap.Round)
		rd.view = m.NewView
		rd.digest = ap.Digest
		rd.batch = ap.Batch
		rd.ordered = true
		rd.committed = true
		rd.history = types.ZeroDigest // recomputed at delivery
		if ap.Round > maxR {
			maxR = ap.Round
		}
		if ap.Round >= z.next {
			z.next = ap.Round + 1
		}
	}
	for r := z.deliver; r <= maxR; r++ {
		rd, ok := z.rounds[r]
		if !ok || !rd.ordered {
			if ok {
				delete(z.rounds, r)
			}
			if r == z.deliver {
				z.deliver = r + 1 // hole agreed dropped by the view change
			}
			continue
		}
		if r == z.deliver && !rd.delivered {
			z.history = historyStep(z.history, rd.digest)
			rd.history = z.history
			rd.delivered = true
			z.deliverRound(r, rd)
			z.deliver = r + 1
		}
	}
	// The new primary continues the chain from the delivered prefix.
	z.orderChain = z.history
	if z.next < z.deliver {
		z.next = z.deliver
	}
	if z.IsPrimary() {
		z.maybeProposeBatch()
	} else if len(z.pending) > 0 {
		z.armTimer()
	}
}

// OnTimer implements sm.Machine.
func (z *Instance) OnTimer(id sm.TimerID) {
	if z.halted {
		return
	}
	switch id.Kind {
	case sm.TimerProgress:
		z.timerArmed = false
		if z.outstandingWork() {
			z.suspect(z.deliver)
		}
	case sm.TimerBatch:
		if z.IsPrimary() && len(z.pending) > 0 && z.inFlight() < z.cfg.Window {
			if txns := z.takeBatch(z.cfg.BatchSize); len(txns) > 0 {
				z.Propose(&types.Batch{Txns: txns})
			}
		}
	case sm.TimerViewChange:
		if z.inViewChange {
			z.startViewChange(z.view + 1)
		}
	}
}

func (z *Instance) outstandingWork() bool {
	if len(z.pending) > 0 && !z.IsPrimary() {
		return true
	}
	for r, rd := range z.rounds {
		if r >= z.deliver && r >= z.resumeFloor && rd.ordered && !rd.delivered {
			return true
		}
	}
	return false
}

func (z *Instance) armTimer() {
	if z.timerArmed || z.halted {
		return
	}
	z.timerArmed = true
	z.env.SetTimer(sm.TimerID{Instance: z.cfg.Instance, Kind: sm.TimerProgress}, z.cfg.ProgressTimeout)
}

func (z *Instance) resetTimerAfterProgress() {
	z.timerArmed = false
	z.env.CancelTimer(sm.TimerID{Instance: z.cfg.Instance, Kind: sm.TimerProgress})
	if z.outstandingWork() {
		z.armTimer()
	}
}

func (z *Instance) disarmTimer() {
	z.timerArmed = false
	z.env.CancelTimer(sm.TimerID{Instance: z.cfg.Instance, Kind: sm.TimerProgress})
}

// txKey identifies one client transaction for deduplication.
type txKey struct {
	c types.ClientID
	s uint64
}

// requeueVoided returns a voided round's undelivered transactions to the
// pending queue (primaries re-propose them after the resume round).
func (z *Instance) requeueVoided(b *types.Batch, queued map[txKey]struct{}) {
	if b == nil {
		return
	}
	for i := range b.Txns {
		tx := b.Txns[i]
		if tx.IsNoOp() || tx.Seq <= z.lastSeq[tx.Client] {
			continue
		}
		key := txKey{tx.Client, tx.Seq}
		if _, inQueue := queued[key]; inQueue {
			continue // still queued, nothing lost
		}
		if _, tracked := z.pendingSet[key]; tracked {
			z.pending = append(z.pending, tx)
			queued[key] = struct{}{}
		}
	}
}

// takeBatch pops up to max live transactions from the queue front, skipping
// entries already delivered elsewhere (their pendingSet entry is gone).
func (z *Instance) takeBatch(max int) []types.Transaction {
	out := make([]types.Transaction, 0, max)
	i := 0
	for ; i < len(z.pending) && len(out) < max; i++ {
		tx := z.pending[i]
		if _, live := z.pendingSet[txKey{tx.Client, tx.Seq}]; !live || tx.Seq <= z.lastSeq[tx.Client] {
			continue
		}
		out = append(out, tx)
	}
	z.pending = z.pending[i:]
	return out
}
