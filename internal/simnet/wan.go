package simnet

// WAN profile: a per-link latency preset modeling a geo-distributed
// deployment. Both network backends consume the same matrix — simnet
// through Config.LatencyMatrix, and the live TCP harness by installing
// each entry as a constant link delay in its fault matrix — so an
// experiment's "wan" flag means the same geography in simulation and
// over real sockets.

import "time"

// wanRegions is the region-to-region one-way latency model, in the spirit
// of a five-region cloud deployment (us-east, us-west, eu-west,
// ap-northeast, ap-south). Values are one-way, symmetric, and include a
// small intra-region floor.
var wanRegions = [5][5]time.Duration{
	{1 * time.Millisecond, 32 * time.Millisecond, 38 * time.Millisecond, 82 * time.Millisecond, 98 * time.Millisecond},
	{32 * time.Millisecond, 1 * time.Millisecond, 70 * time.Millisecond, 55 * time.Millisecond, 112 * time.Millisecond},
	{38 * time.Millisecond, 70 * time.Millisecond, 1 * time.Millisecond, 105 * time.Millisecond, 60 * time.Millisecond},
	{82 * time.Millisecond, 55 * time.Millisecond, 105 * time.Millisecond, 1 * time.Millisecond, 65 * time.Millisecond},
	{98 * time.Millisecond, 112 * time.Millisecond, 60 * time.Millisecond, 65 * time.Millisecond, 1 * time.Millisecond},
}

// WANLatencyMatrix returns an n×n one-way latency matrix for a cluster
// whose replicas are spread round-robin across five geographic regions:
// replica i lives in region i mod 5. Suitable for Config.LatencyMatrix or
// for seeding per-link transport delays in a live cluster.
func WANLatencyMatrix(n int) [][]time.Duration {
	m := make([][]time.Duration, n)
	for i := range m {
		m[i] = make([]time.Duration, n)
		for j := range m[i] {
			if i == j {
				continue // self-delivery is local
			}
			m[i][j] = wanRegions[i%5][j%5]
		}
	}
	return m
}
