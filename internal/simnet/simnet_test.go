package simnet

import (
	"testing"
	"time"

	"repro/internal/sm"
	"repro/internal/types"
)

// echo is a trivial machine: it re-broadcasts every PREPARE once, bumping
// the round, up to a bound — enough traffic to exercise the simulator.
type echo struct {
	env   sm.Env
	seen  int
	bound int
}

func (e *echo) Start(env sm.Env) { e.env = env }
func (e *echo) OnMessage(from sm.Source, m types.Message) {
	p, ok := m.(*types.Prepare)
	if !ok || int(p.Round) >= e.bound {
		return
	}
	e.seen++
	e.env.Broadcast(types.NewPrepare(0, e.env.ID(), 0, p.Round+1, p.Digest))
}
func (e *echo) OnTimer(sm.TimerID) {}

func cluster(t *testing.T, cfg Config, bound int) (*Network, []*echo) {
	t.Helper()
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.Latency == 0 {
		cfg.Latency = time.Millisecond
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	machines := make([]*echo, cfg.N)
	for i := range machines {
		machines[i] = &echo{bound: bound}
		net.SetMachine(types.ReplicaID(i), machines[i])
	}
	net.Start()
	return net, machines
}

func kick(net *Network) {
	net.Schedule(0, func() {
		net.Node(0).Machine().OnMessage(sm.FromReplica(1), types.NewPrepare(0, 1, 0, 0, types.ZeroDigest))
	})
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		net, _ := cluster(t, Config{Jitter: 3 * time.Millisecond, Seed: 5}, 6)
		kick(net)
		net.Run(2 * time.Second)
		return net.MessagesSent(), net.BytesSent()
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", m1, b1, m2, b2)
	}
	if m1 == 0 {
		t.Fatal("no traffic generated")
	}
}

func TestSeedChangesScheduleWithJitter(t *testing.T) {
	run := func(seed int64) time.Duration {
		net, _ := cluster(t, Config{Jitter: 5 * time.Millisecond, Seed: seed}, 6)
		kick(net)
		net.Run(2 * time.Second)
		return net.Now()
	}
	_ = run(1) // mostly checks absence of panics; jitter paths covered
}

func TestCrashSilencesReplica(t *testing.T) {
	net, machines := cluster(t, Config{}, 8)
	net.Crash(2)
	kick(net)
	net.Run(time.Second)
	if machines[2].seen != 0 {
		t.Fatal("crashed replica processed messages")
	}
	if machines[1].seen == 0 {
		t.Fatal("healthy replica made no progress")
	}
}

func TestDropRuleFiltersMessages(t *testing.T) {
	dropped := 0
	cfg := Config{
		Drop: func(from, to types.ReplicaID, m types.Message) bool {
			if from == 1 && to == 3 {
				dropped++
				return true
			}
			return false
		},
	}
	net, machines := cluster(t, cfg, 6)
	kick(net)
	net.Run(time.Second)
	if dropped == 0 {
		t.Fatal("drop rule never fired")
	}
	// Replica 3 still progresses via 0 and 2.
	if machines[3].seen == 0 {
		t.Fatal("partitioned replica received nothing at all")
	}
}

func TestBandwidthSerializesTransmission(t *testing.T) {
	// With finite bandwidth, sending k messages back to back must take at
	// least k·size/bw of virtual time before the last arrival.
	slow, _ := New(Config{N: 4, Latency: time.Millisecond, BandwidthBps: 1e6}) // 1 Mbit/s
	fast, _ := New(Config{N: 4, Latency: time.Millisecond})
	recvSlow, recvFast := 0, 0
	sinkS := &funcMachine{onMsg: func() { recvSlow++ }}
	sinkF := &funcMachine{onMsg: func() { recvFast++ }}
	slow.SetMachine(1, sinkS)
	fast.SetMachine(1, sinkF)
	sender := &funcMachine{}
	slow.SetMachine(0, sender)
	fast.SetMachine(0, sender)
	slow.Start()
	fast.Start()

	b := &types.Batch{Txns: make([]types.Transaction, 100)} // 5400 B proposal
	send := func(net *Network) {
		net.Schedule(0, func() {
			for i := 0; i < 10; i++ {
				pp := &types.PrePrepare{Round: types.Round(i + 1), Batch: b}
				net.Node(0).Send(1, pp)
			}
		})
	}
	send(slow)
	send(fast)
	// 10 × 5400 B × 8 / 1e6 bps = 432 ms of serialization on the slow net.
	slow.Run(100 * time.Millisecond)
	fast.Run(100 * time.Millisecond)
	if recvFast != 10 {
		t.Fatalf("infinite-bandwidth net delivered %d/10", recvFast)
	}
	if recvSlow >= 10 {
		t.Fatal("finite bandwidth did not delay deliveries")
	}
	slow.Run(time.Second)
	if recvSlow != 10 {
		t.Fatalf("slow net eventually delivered %d/10", recvSlow)
	}
}

func TestTimersFireAndCancel(t *testing.T) {
	net, _ := New(Config{N: 4, Latency: time.Millisecond})
	fired := 0
	m := &funcMachine{onTimer: func() { fired++ }}
	net.SetMachine(0, m)
	net.Start()
	id1 := sm.TimerID{Kind: sm.TimerProgress, Round: 1}
	id2 := sm.TimerID{Kind: sm.TimerProgress, Round: 2}
	net.Node(0).SetTimer(id1, 10*time.Millisecond)
	net.Node(0).SetTimer(id2, 20*time.Millisecond)
	net.Node(0).CancelTimer(id2)
	net.Run(time.Second)
	if fired != 1 {
		t.Fatalf("fired %d timers, want 1 (one canceled)", fired)
	}
	// Re-arming replaces the old deadline.
	net.Node(0).SetTimer(id1, 10*time.Millisecond)
	net.Node(0).SetTimer(id1, 30*time.Millisecond)
	net.Run(net.Now() + 50*time.Millisecond)
	if fired != 2 {
		t.Fatalf("re-armed timer fired %d times total, want 2", fired)
	}
}

func TestVirtualClockAdvancesToRunHorizon(t *testing.T) {
	net, _ := New(Config{N: 4, Latency: time.Millisecond})
	net.Run(5 * time.Second)
	if net.Now() != 5*time.Second {
		t.Fatalf("clock %v, want 5s", net.Now())
	}
}

func TestMessagesByTypeAccounting(t *testing.T) {
	net, _ := cluster(t, Config{}, 4)
	kick(net)
	net.Run(time.Second)
	if net.MessagesByType()[types.MsgPrepare] == 0 {
		t.Fatal("per-type accounting empty")
	}
}

// funcMachine adapts closures to sm.Machine.
type funcMachine struct {
	env     sm.Env
	onMsg   func()
	onTimer func()
}

func (f *funcMachine) Start(env sm.Env) { f.env = env }
func (f *funcMachine) OnMessage(sm.Source, types.Message) {
	if f.onMsg != nil {
		f.onMsg()
	}
}
func (f *funcMachine) OnTimer(sm.TimerID) {
	if f.onTimer != nil {
		f.onTimer()
	}
}

// clientEcho is a trivial client machine: counts replies, sets a timer.
type clientEcho struct {
	env     sm.ClientEnv
	replies int
	fired   int
}

func (c *clientEcho) Start(env sm.ClientEnv) {
	c.env = env
	c.env.Broadcast(types.NewClientRequest(0, types.Transaction{Client: env.Client(), Seq: 1, Op: []byte("x")}))
	c.env.SetTimer(sm.TimerID{Kind: sm.TimerClient, Round: 1}, 50*time.Millisecond)
	c.env.Logf("client started")
}
func (c *clientEcho) OnMessage(from types.ReplicaID, m types.Message) { c.replies++ }
func (c *clientEcho) OnTimer(sm.TimerID)                              { c.fired++ }

// replyBack answers every client request with a reply.
type replyBack struct{ env sm.Env }

func (r *replyBack) Start(env sm.Env) { r.env = env }
func (r *replyBack) OnMessage(from sm.Source, m types.Message) {
	if req, ok := m.(*types.ClientRequest); ok && from.IsClient {
		r.env.SendClient(from.Client, &types.ClientReply{Replica: r.env.ID(), Client: req.Tx.Client, Seq: req.Tx.Seq, Count: 1})
	}
}
func (r *replyBack) OnTimer(sm.TimerID) {}

func TestClientNodeRoundTripAndTimer(t *testing.T) {
	net, _ := New(Config{N: 4, Latency: time.Millisecond})
	for i := 0; i < 4; i++ {
		net.SetMachine(types.ReplicaID(i), &replyBack{})
	}
	cl := &clientEcho{}
	net.AddClient(7, cl)
	net.Start()
	net.Run(time.Second)
	if cl.replies != 4 {
		t.Fatalf("client got %d replies, want 4", cl.replies)
	}
	if cl.fired != 1 {
		t.Fatalf("client timer fired %d times, want 1", cl.fired)
	}
}

func TestClientTimerCancel(t *testing.T) {
	net, _ := New(Config{N: 4, Latency: time.Millisecond})
	cl := &clientEcho{}
	node := net.AddClient(7, cl)
	net.Start()
	node.CancelTimer(sm.TimerID{Kind: sm.TimerClient, Round: 1})
	net.Run(time.Second)
	if cl.fired != 0 {
		t.Fatalf("canceled client timer fired %d times", cl.fired)
	}
}

func TestRunStepsBoundsWork(t *testing.T) {
	net, _ := cluster(t, Config{}, 50)
	kick(net)
	if ran := net.RunSteps(5); ran != 5 {
		t.Fatalf("RunSteps processed %d, want 5", ran)
	}
}

func TestRestoreUndoesCrash(t *testing.T) {
	net, machines := cluster(t, Config{}, 8)
	net.Crash(2)
	kick(net)
	net.Run(time.Second)
	if machines[2].seen != 0 {
		t.Fatal("crashed replica progressed")
	}
	net.Restore(2)
	net.Schedule(net.Now(), func() {
		net.Node(2).Machine().OnMessage(sm.FromReplica(1), types.NewPrepare(0, 1, 0, 0, types.ZeroDigest))
	})
	net.Run(net.Now() + time.Second)
	if machines[2].seen == 0 {
		t.Fatal("restored replica never progressed")
	}
}
