// Package simnet is a deterministic discrete-event simulator for the
// consensus protocols in this repository. It drives the real protocol state
// machines (internal/sm.Machine) over a simulated network with configurable
// one-way latency, per-replica outgoing bandwidth, message drop rules, and
// crash faults.
//
// Determinism: with the same seed and the same machines, a simulation
// replays identically — events are ordered by (virtual time, sequence
// number). This is what makes the protocol tests reproducible and lets the
// benchmark harness regenerate the paper's failure timeline (Fig. 10).
//
// The simulator stands in for the paper's Google Cloud deployment; see
// DESIGN.md ("Substitutions") for why bandwidth/latency/CPU charging
// preserves the figures' shapes.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/quorum"
	"repro/internal/sm"
	"repro/internal/types"
)

// Config parameterizes a simulated network.
type Config struct {
	// N is the number of replicas. Replica IDs are 0..N-1.
	N int
	// Latency is the base one-way message latency.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) component per message.
	Jitter time.Duration
	// LatencyMatrix, when non-nil, gives the base one-way latency of each
	// directed replica link, indexed [from][to]; it overrides Latency for
	// replica-to-replica messages (client links keep the global base).
	// Jitter applies on top either way. WANLatencyMatrix builds a
	// geo-distributed preset.
	LatencyMatrix [][]time.Duration
	// BandwidthBps is each replica's outgoing bandwidth in bits per
	// second; 0 means infinite (no serialization delay).
	BandwidthBps float64
	// Seed seeds the jitter RNG.
	Seed int64
	// Drop, when non-nil, is consulted for every replica-to-replica
	// message; returning true silently drops it. This is the fault
	// injection hook: crashes, partitions, and in-the-dark attacks are
	// all drop rules.
	Drop func(from, to types.ReplicaID, m types.Message) bool
	// DropClient, when non-nil, drops replica-to-client messages.
	DropClient func(from types.ReplicaID, c types.ClientID, m types.Message) bool
	// Trace, when non-nil, receives a line per simulation event.
	Trace func(format string, args ...any)
}

type eventKind uint8

const (
	evMessage       eventKind = iota + 1
	evClientMessage           // replica -> client
	evTimer
	evClientTimer
	evFunc
)

type event struct {
	at   time.Duration
	seq  uint64
	kind eventKind

	to       types.ReplicaID
	toClient types.ClientID
	from     sm.Source
	msg      types.Message

	timer    sm.TimerID
	canceled *bool

	fn func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Network is a simulated deployment of N replicas plus any registered
// clients.
type Network struct {
	cfg     Config
	params  quorum.Params
	clock   time.Duration
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	nodes   []*Node
	clients map[types.ClientID]*ClientNode

	// Stats.
	msgsSent   uint64
	bytesSent  uint64
	msgsByType map[types.MsgType]uint64
}

// New creates a network. Machines are attached with SetMachine before Run.
func New(cfg Config) (*Network, error) {
	p, err := quorum.NewParams(cfg.N)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:        cfg,
		params:     p,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		clients:    make(map[types.ClientID]*ClientNode),
		msgsByType: make(map[types.MsgType]uint64),
	}
	n.nodes = make([]*Node, cfg.N)
	for i := range n.nodes {
		n.nodes[i] = &Node{
			id:     types.ReplicaID(i),
			net:    n,
			timers: make(map[sm.TimerID]*bool),
		}
	}
	return n, nil
}

// Params returns the quorum parameters of the deployment.
func (n *Network) Params() quorum.Params { return n.params }

// Node returns replica r's simulation node.
func (n *Network) Node(r types.ReplicaID) *Node { return n.nodes[r] }

// SetMachine attaches the protocol machine of replica r.
func (n *Network) SetMachine(r types.ReplicaID, m sm.Machine) {
	n.nodes[r].machine = m
}

// AddClient registers a client machine.
func (n *Network) AddClient(c types.ClientID, m sm.ClientMachine) *ClientNode {
	cn := &ClientNode{id: c, net: n, machine: m, timers: make(map[sm.TimerID]*bool)}
	n.clients[c] = cn
	return cn
}

// Start invokes Start on every attached machine and client.
func (n *Network) Start() {
	for _, nd := range n.nodes {
		if nd.machine != nil {
			nd.machine.Start(nd)
		}
	}
	for _, c := range n.clients {
		c.machine.Start(c)
	}
}

// Now returns the virtual clock.
func (n *Network) Now() time.Duration { return n.clock }

// MessagesSent returns the number of replica-to-replica and
// replica-to-client messages transmitted (self-deliveries excluded).
func (n *Network) MessagesSent() uint64 { return n.msgsSent }

// BytesSent returns the total simulated wire bytes transmitted.
func (n *Network) BytesSent() uint64 { return n.bytesSent }

// MessagesByType returns per-type transmission counts.
func (n *Network) MessagesByType() map[types.MsgType]uint64 { return n.msgsByType }

// Crash makes replica r drop every future inbound and outbound message and
// stop firing timers. (A crash is modeled, not executed: the machine object
// stays attached but is never invoked again.)
func (n *Network) Crash(r types.ReplicaID) { n.nodes[r].crashed = true }

// Restore undoes Crash (used to model recovering replicas).
func (n *Network) Restore(r types.ReplicaID) { n.nodes[r].crashed = false }

// Schedule runs fn at virtual time at (or immediately if at <= now). Used
// by experiments to inject faults mid-run.
func (n *Network) Schedule(at time.Duration, fn func()) {
	n.push(&event{at: at, kind: evFunc, fn: fn})
}

func (n *Network) push(e *event) {
	n.seq++
	e.seq = n.seq
	if e.at < n.clock {
		e.at = n.clock
	}
	heap.Push(&n.queue, e)
}

// Step processes the next event. It returns false when the queue is empty.
func (n *Network) Step() bool {
	if n.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&n.queue).(*event)
	n.clock = e.at
	switch e.kind {
	case evMessage:
		nd := n.nodes[e.to]
		if nd.crashed || nd.machine == nil {
			return true
		}
		nd.machine.OnMessage(e.from, e.msg)
	case evClientMessage:
		c, ok := n.clients[e.toClient]
		if !ok {
			return true
		}
		c.machine.OnMessage(e.from.Replica, e.msg)
	case evTimer:
		if *e.canceled {
			return true
		}
		nd := n.nodes[e.to]
		delete(nd.timers, e.timer)
		if nd.crashed || nd.machine == nil {
			return true
		}
		nd.machine.OnTimer(e.timer)
	case evClientTimer:
		if *e.canceled {
			return true
		}
		c, ok := n.clients[e.toClient]
		if !ok {
			return true
		}
		delete(c.timers, e.timer)
		c.machine.OnTimer(e.timer)
	case evFunc:
		e.fn()
	}
	return true
}

// Run processes events until the virtual clock would exceed until or the
// queue drains. It returns the number of events processed.
func (n *Network) Run(until time.Duration) int {
	count := 0
	for n.queue.Len() > 0 && n.queue[0].at <= until {
		n.Step()
		count++
	}
	if n.clock < until {
		n.clock = until
	}
	return count
}

// RunSteps processes at most max events, returning how many ran.
func (n *Network) RunSteps(max int) int {
	count := 0
	for count < max && n.Step() {
		count++
	}
	return count
}

// latency computes the one-way delay of the next message on the from→to
// replica link.
func (n *Network) latency(from, to types.ReplicaID) time.Duration {
	d := n.cfg.Latency
	if m := n.cfg.LatencyMatrix; int(from) < len(m) && int(to) < len(m[from]) {
		d = m[from][to]
	}
	return n.jittered(d)
}

// clientLatency is the one-way delay on client links; latency matrices
// cover only replica links, so clients always use the global base.
func (n *Network) clientLatency() time.Duration { return n.jittered(n.cfg.Latency) }

func (n *Network) jittered(d time.Duration) time.Duration {
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	return d
}

// transmit models occupancy of from's outgoing link and returns the arrival
// time of a message of size bytes whose propagation delay is lat.
func (n *Network) transmit(from *Node, bytes int, lat time.Duration) time.Duration {
	start := n.clock
	if n.cfg.BandwidthBps > 0 {
		if from.linkFreeAt > start {
			start = from.linkFreeAt
		}
		ser := time.Duration(float64(bytes) * 8 / n.cfg.BandwidthBps * float64(time.Second))
		from.linkFreeAt = start + ser
		start = from.linkFreeAt
	}
	return start + lat
}

func (n *Network) trace(format string, args ...any) {
	if n.cfg.Trace != nil {
		n.cfg.Trace(format, args...)
	}
}

// ---------------------------------------------------------------------------
// Node: the per-replica sm.Env implementation
// ---------------------------------------------------------------------------

// Node is one simulated replica.
type Node struct {
	id      types.ReplicaID
	net     *Network
	machine sm.Machine
	timers  map[sm.TimerID]*bool
	crashed bool

	linkFreeAt time.Duration

	decisions []sm.Decision
	suspects  []Suspicion
}

// Suspicion records a Suspect callback for assertions in tests.
type Suspicion struct {
	Instance types.InstanceID
	Round    types.Round
	At       time.Duration
}

// Decisions returns the decisions delivered by this replica, in order.
func (nd *Node) Decisions() []sm.Decision { return nd.decisions }

// Suspicions returns the failures this replica's machine reported.
func (nd *Node) Suspicions() []Suspicion { return nd.suspects }

// Machine returns the attached machine.
func (nd *Node) Machine() sm.Machine { return nd.machine }

// ID implements sm.Env.
func (nd *Node) ID() types.ReplicaID { return nd.id }

// Params implements sm.Env.
func (nd *Node) Params() quorum.Params { return nd.net.params }

// Send implements sm.Env.
func (nd *Node) Send(to types.ReplicaID, m types.Message) {
	if nd.crashed {
		return
	}
	if to == nd.id {
		// Self-delivery: local, immediate, no network cost.
		nd.net.push(&event{at: nd.net.clock, kind: evMessage, to: to, from: sm.FromReplica(nd.id), msg: m})
		return
	}
	if int(to) >= len(nd.net.nodes) {
		panic(fmt.Sprintf("simnet: send to unknown replica %d", to))
	}
	if nd.net.cfg.Drop != nil && nd.net.cfg.Drop(nd.id, to, m) {
		nd.net.trace("%v drop %s %d->%d", nd.net.clock, m.Type(), nd.id, to)
		return
	}
	arrival := nd.net.transmit(nd, m.WireSize(), nd.net.latency(nd.id, to))
	nd.net.msgsSent++
	nd.net.bytesSent += uint64(m.WireSize())
	nd.net.msgsByType[m.Type()]++
	nd.net.push(&event{at: arrival, kind: evMessage, to: to, from: sm.FromReplica(nd.id), msg: m})
}

// Broadcast implements sm.Env: send to every replica including self.
func (nd *Node) Broadcast(m types.Message) {
	for i := range nd.net.nodes {
		nd.Send(types.ReplicaID(i), m)
	}
}

// SendClient implements sm.Env.
func (nd *Node) SendClient(c types.ClientID, m types.Message) {
	if nd.crashed {
		return
	}
	if nd.net.cfg.DropClient != nil && nd.net.cfg.DropClient(nd.id, c, m) {
		return
	}
	arrival := nd.net.transmit(nd, m.WireSize(), nd.net.clientLatency())
	nd.net.msgsSent++
	nd.net.bytesSent += uint64(m.WireSize())
	nd.net.msgsByType[m.Type()]++
	nd.net.push(&event{at: arrival, kind: evClientMessage, toClient: c, from: sm.FromReplica(nd.id), msg: m})
}

// Deliver implements sm.Env.
func (nd *Node) Deliver(d sm.Decision) {
	nd.decisions = append(nd.decisions, d)
}

// SetTimer implements sm.Env.
func (nd *Node) SetTimer(id sm.TimerID, d time.Duration) {
	nd.CancelTimer(id)
	canceled := new(bool)
	nd.timers[id] = canceled
	nd.net.push(&event{at: nd.net.clock + d, kind: evTimer, to: nd.id, timer: id, canceled: canceled})
}

// CancelTimer implements sm.Env.
func (nd *Node) CancelTimer(id sm.TimerID) {
	if c, ok := nd.timers[id]; ok {
		*c = true
		delete(nd.timers, id)
	}
}

// Now implements sm.Env.
func (nd *Node) Now() time.Duration { return nd.net.clock }

// Suspect implements sm.Env.
func (nd *Node) Suspect(inst types.InstanceID, round types.Round) {
	nd.suspects = append(nd.suspects, Suspicion{Instance: inst, Round: round, At: nd.net.clock})
}

// Logf implements sm.Env.
func (nd *Node) Logf(format string, args ...any) {
	if nd.net.cfg.Trace != nil {
		nd.net.cfg.Trace("[%v r%d] "+format, append([]any{nd.net.clock, nd.id}, args...)...)
	}
}

// ---------------------------------------------------------------------------
// ClientNode: the per-client sm.ClientEnv implementation
// ---------------------------------------------------------------------------

// ClientNode is one simulated client.
type ClientNode struct {
	id      types.ClientID
	net     *Network
	machine sm.ClientMachine
	timers  map[sm.TimerID]*bool
}

// Client implements sm.ClientEnv.
func (c *ClientNode) Client() types.ClientID { return c.id }

// Params implements sm.ClientEnv.
func (c *ClientNode) Params() quorum.Params { return c.net.params }

// Send implements sm.ClientEnv. Client uplinks are not bandwidth-modeled
// (the paper saturates replica links, not client links).
func (c *ClientNode) Send(to types.ReplicaID, m types.Message) {
	arrival := c.net.clock + c.net.clientLatency()
	c.net.push(&event{at: arrival, kind: evMessage, to: to, from: sm.FromClient(c.id), msg: m})
}

// Broadcast implements sm.ClientEnv.
func (c *ClientNode) Broadcast(m types.Message) {
	for i := 0; i < c.net.cfg.N; i++ {
		c.Send(types.ReplicaID(i), m)
	}
}

// SetTimer implements sm.ClientEnv.
func (c *ClientNode) SetTimer(id sm.TimerID, d time.Duration) {
	c.CancelTimer(id)
	canceled := new(bool)
	c.timers[id] = canceled
	c.net.push(&event{at: c.net.clock + d, kind: evClientTimer, toClient: c.id, timer: id, canceled: canceled})
}

// CancelTimer implements sm.ClientEnv.
func (c *ClientNode) CancelTimer(id sm.TimerID) {
	if x, ok := c.timers[id]; ok {
		*x = true
		delete(c.timers, id)
	}
}

// Now implements sm.ClientEnv.
func (c *ClientNode) Now() time.Duration { return c.net.clock }

// Logf implements sm.ClientEnv.
func (c *ClientNode) Logf(format string, args ...any) {
	if c.net.cfg.Trace != nil {
		c.net.cfg.Trace("[%v c%d] "+format, append([]any{c.net.clock, c.id}, args...)...)
	}
}
