package sm

import (
	"time"

	"repro/internal/quorum"
	"repro/internal/types"
)

// ClientEnv is the effect interface a runtime provides to a client machine.
type ClientEnv interface {
	// Client returns the local client's identity.
	Client() types.ClientID
	// Params returns the deployment's quorum parameters.
	Params() quorum.Params
	// Send transmits m to a replica.
	Send(to types.ReplicaID, m types.Message)
	// Broadcast transmits m to all replicas.
	Broadcast(m types.Message)
	// SetTimer arms (or re-arms) timer id to fire after d.
	SetTimer(id TimerID, d time.Duration)
	// CancelTimer disarms timer id.
	CancelTimer(id TimerID)
	// Now returns monotonic (possibly virtual) time.
	Now() time.Duration
	// Logf records a debug line.
	Logf(format string, args ...any)
}

// ClientMachine is a deterministic client-side state machine (request
// submission, reply collection, retransmission, instance switching).
type ClientMachine interface {
	Start(env ClientEnv)
	OnMessage(from types.ReplicaID, m types.Message)
	OnTimer(id TimerID)
}
