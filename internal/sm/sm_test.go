package sm

import (
	"testing"

	"repro/internal/types"
)

func TestSourceConstructors(t *testing.T) {
	r := FromReplica(7)
	if r.IsClient || r.Replica != 7 {
		t.Fatalf("FromReplica: %+v", r)
	}
	c := FromClient(42)
	if !c.IsClient || c.Client != 42 {
		t.Fatalf("FromClient: %+v", c)
	}
}

func TestTimerIDsDistinguishInstancesKindsRounds(t *testing.T) {
	ids := map[TimerID]bool{}
	for _, inst := range []types.InstanceID{0, 1, types.CoordInstance(1)} {
		for _, kind := range []TimerKind{TimerProgress, TimerRecovery, TimerLag} {
			for _, round := range []types.Round{0, 1} {
				ids[TimerID{Instance: inst, Kind: kind, Round: round}] = true
			}
		}
	}
	if len(ids) != 18 {
		t.Fatalf("timer IDs collide: %d distinct, want 18", len(ids))
	}
}

func TestDecisionZeroValueIsNotSpeculative(t *testing.T) {
	var d Decision
	if d.Speculative {
		t.Fatal("zero decision marked speculative")
	}
}
