// Package sm defines the deterministic state-machine framework every
// consensus protocol in this repository is written against.
//
// A protocol is a Machine: a piece of sequential, deterministic code that
// reacts to messages and timers by emitting effects through its Env (send,
// broadcast, deliver a decision, arm a timer). The same machine code runs
// unchanged under
//
//   - the deterministic discrete-event simulator (internal/simnet),
//   - the goroutine/TCP replica runtime (internal/runtime), and
//   - unit tests (the synchronous Bus in this package),
//
// which is what makes property testing and failure injection of the
// protocols possible.
package sm

import (
	"time"

	"repro/internal/quorum"
	"repro/internal/types"
)

// TimerKind discriminates protocol timers.
type TimerKind uint8

// Timer kinds used across the protocols.
const (
	TimerProgress    TimerKind = iota + 1 // BCA round progress (failure detection)
	TimerViewChange                       // view-change completion
	TimerRecovery                         // RCC: waiting for the coordinating leader's stop proposal
	TimerRebroadcast                      // RCC: exponential FAILURE rebroadcast
	TimerBatch                            // primary batch-formation deadline
	TimerClient                           // client-side retransmission
	TimerLag                              // RCC: throttling/lag detection (σ rounds behind)
	TimerEpoch                            // Mir-BFT epoch change
)

// TimerID identifies one timer of one instance.
type TimerID struct {
	Instance types.InstanceID
	Kind     TimerKind
	Round    types.Round
}

// Source identifies the origin of a message: a replica or a client.
type Source struct {
	Replica  types.ReplicaID
	Client   types.ClientID
	IsClient bool
}

// FromReplica builds a replica source.
func FromReplica(r types.ReplicaID) Source { return Source{Replica: r} }

// FromClient builds a client source.
func FromClient(c types.ClientID) Source { return Source{Client: c, IsClient: true} }

// Decision is an accepted consensus value: instance Inst decided Batch in
// round Round. Signers records the commit certificate for the ledger proof.
type Decision struct {
	Instance types.InstanceID
	Round    types.Round
	View     types.View
	Digest   types.Digest
	Batch    *types.Batch
	Signers  []types.ReplicaID
	// Speculative marks decisions that may still be rolled back
	// (Zyzzyva's fast path before a commit certificate forms).
	Speculative bool
}

// Env is the effect interface a runtime provides to a machine. All calls
// happen from the machine's own event loop; implementations need not be
// re-entrant for a single replica.
type Env interface {
	// ID returns the local replica.
	ID() types.ReplicaID
	// Params returns the deployment's quorum parameters.
	Params() quorum.Params

	// Send transmits m to one replica. Sending to the local replica
	// enqueues m for local processing (self-delivery).
	Send(to types.ReplicaID, m types.Message)
	// Broadcast transmits m to every replica including the sender
	// (self-delivery is local and free of network cost).
	Broadcast(m types.Message)
	// SendClient transmits m to a client.
	SendClient(c types.ClientID, m types.Message)

	// Deliver reports a decision ready for ordering/execution. Decisions
	// are delivered in the unified order; how the runtime executes each
	// batch (serially or on internal/exec's conflict-aware worker pool)
	// is invisible here — execution is deterministic either way.
	Deliver(d Decision)

	// SetTimer arms (or re-arms) timer id to fire after d.
	SetTimer(id TimerID, d time.Duration)
	// CancelTimer disarms timer id; canceling an unarmed timer is a
	// no-op.
	CancelTimer(id TimerID)

	// Now returns monotonic (possibly virtual) time since runtime start.
	Now() time.Duration

	// Suspect reports a detected failure of the primary of instance
	// inst at round round. Under RCC this triggers the recovery protocol
	// (Fig. 4); standalone protocols may ignore it and handle failure
	// internally via view changes.
	Suspect(inst types.InstanceID, round types.Round)

	// Logf records a debug line. Runtimes may discard it.
	Logf(format string, args ...any)
}

// Machine is a deterministic protocol state machine.
type Machine interface {
	// Start initializes the machine (arm timers, send initial messages).
	Start(env Env)
	// OnMessage processes one incoming message.
	OnMessage(from Source, m types.Message)
	// OnTimer processes one fired timer.
	OnTimer(id TimerID)
}

// Instance is the interface RCC requires from a Byzantine commit algorithm
// (paper Assumptions A1–A4 plus the hooks for wait-free recovery).
type Instance interface {
	Machine

	// Propose asks the instance to propose batch in its next round.
	// It returns false when the local replica is not the instance's
	// primary, when the instance is halted, or when the out-of-order
	// proposal window is full.
	Propose(batch *types.Batch) bool

	// LastAccepted returns the highest round in which the local replica
	// accepted a proposal (0 and false when none).
	LastAccepted() (types.Round, bool)

	// NextProposeRound returns the round the primary would propose next.
	NextProposeRound() types.Round

	// Halt stops participation (recovery step, Fig. 4 line 2).
	Halt()
	// Halted reports whether the instance is halted.
	Halted() bool
	// ResumeAt re-enables the instance with round as the next valid
	// round number (Fig. 4 line 12).
	ResumeAt(round types.Round)

	// StateForRecovery returns the accepted proposals that form the
	// FAILURE message state P in accordance with Assumption A3.
	StateForRecovery() []types.AcceptedProposal

	// AdoptDecision installs a decision recovered via stop(i;E) or a
	// checkpoint, without running the commit phases again. Adopting an
	// already-accepted round is a no-op.
	AdoptDecision(d Decision)
}

// Suspector is implemented by client-facing machines that can be told a
// request went unserved (used to detect primaries refusing service,
// §III-E).
type Suspector interface {
	SuspectClientNeglect(c types.ClientID)
}

// StateSyncable is optionally implemented by machines that support
// checkpoint-based state transfer (internal/statesync). A machine that
// implements it can hand its delivered frontier to a lagging peer and can
// jump its own frontier to an attested install point, so a replica that
// installed a snapshot + ledger suffix rejoins consensus at the cluster
// head instead of waiting on rounds that were decided while it was gone.
type StateSyncable interface {
	// SyncPoint returns a deterministic serialization of the machine's
	// delivered frontier (round watermarks, checkpoint chain anchors),
	// consistent with the ledger head at the moment of the call. Two
	// honest replicas with identical frontiers return identical bytes —
	// which is what lets a fetcher demand f+1 byte-identical sync points
	// before trusting one. Returns nil when the machine (or one of its
	// nested instances) cannot serialize its frontier; state transfer is
	// then unavailable on this deployment.
	SyncPoint() []byte
	// ValidateSyncPoint checks that data is a well-formed sync point this
	// machine could install, WITHOUT mutating anything. Runtimes call it
	// before committing the expensive ledger install so a malformed or
	// incompatible frontier is rejected while the transfer is still fully
	// retryable, and InstallSyncPoint cannot fail halfway through.
	ValidateSyncPoint(data []byte) error
	// InstallSyncPoint adopts a sync point obtained from f+1 attesting
	// peers: every round below the encoded frontier is treated as
	// delivered-elsewhere (the ledger install covers their effects), and
	// the machine resumes participation at the frontier. Consensus state
	// the machine accumulated ABOVE the frontier (votes and commits that
	// arrived while the transfer ran) is preserved and delivered in order.
	InstallSyncPoint(data []byte) error
}

// BoundarySyncable is optionally implemented by StateSyncable machines
// whose live frontier is NOT deterministic at a ledger height (RCC: inner
// instances and the coordinating consensus run ahead of the wave-unified
// delivery frontier, at quorum-dependent speeds). BoundarySyncPoint
// serializes the frontier as it stands at the machine's current delivery
// boundary — a pure function of the delivery prefix — so every correct
// replica serializes identical bytes when its ledger stands at the same
// height, no quiescence required. That is the property checkpoint-boundary
// attestation rests on: f+1 replicas each sign their own serialization at
// snapshot time, and the shares only combine when the bytes agree.
//
// A machine implementing this interface also takes over the periodic
// checkpoint cadence: the runtime defers cadence-triggered snapshots
// (CheckpointDue) and the machine persists them at its next delivery
// boundary via CheckpointSink, so the snapshot and the boundary sync point
// describe the same instant.
type BoundarySyncable interface {
	StateSyncable
	// BoundarySyncPoint serializes the delivery-boundary frontier, in the
	// same wire format InstallSyncPoint accepts. Returns nil when the
	// boundary cannot be serialized right now (e.g. a checkpoint chain
	// value at the boundary was garbage-collected, or a recovery is in
	// flight); callers then skip attestation for this boundary.
	BoundarySyncPoint() []byte
}

// DeferredCheckpointer is optionally implemented by an Env whose runtime
// defers cadence snapshots to machine-announced delivery boundaries (see
// BoundarySyncable). CheckpointDue consumes the pending-cadence flag: it
// returns true at most once per cadence trigger, and the machine responds
// by calling CheckpointSink.PersistCheckpoint at its current boundary.
type DeferredCheckpointer interface {
	CheckpointDue() bool
}

// StateSyncRequester is optionally implemented by an Env whose runtime can
// run checkpoint-based state transfer. Machines call it when they detect
// they are in the dark beyond what in-protocol catch-up can bridge — e.g. a
// certified checkpoint whose body no longer reaches back to the local
// frontier. The runtime coalesces requests; calling it repeatedly is cheap.
type StateSyncRequester interface {
	RequestStateSync()
}

// CheckpointSink is optionally implemented by an Env whose runtime can
// persist execution-state checkpoints (the durable snapshot store). RCC
// calls it when a dynamic per-need checkpoint runs (§III-D), so the
// in-protocol catch-up point also becomes a crash-restart recovery point on
// disk. Runtimes without durable storage simply do not implement it.
type CheckpointSink interface {
	PersistCheckpoint()
}
