package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func parseK(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestAllTablesWellFormed(t *testing.T) {
	for _, tab := range All() {
		if tab.ID == "" || tab.Title == "" {
			t.Fatalf("table missing ID/title: %+v", tab)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: no rows", tab.ID)
		}
		for i, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s row %d: %d cells, header has %d", tab.ID, i, len(row), len(tab.Header))
			}
		}
		if !strings.Contains(tab.Render(), tab.ID) {
			t.Fatalf("%s: render missing ID", tab.ID)
		}
	}
}

func TestFig6MatchesPaperTable(t *testing.T) {
	tab := Fig6()
	want := map[string][3]string{
		"original":          {"800", "300", "100"},
		"first T1, then T2": {"600", "200", "400"},
		"first T2, then T1": {"600", "500", "100"},
	}
	for _, row := range tab.Rows {
		if w, ok := want[row[0]]; ok {
			if row[1] != w[0] || row[2] != w[1] || row[3] != w[2] {
				t.Fatalf("%s: got %v, want %v", row[0], row[1:], w)
			}
			delete(want, row[0])
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing scenarios: %v", want)
	}
	// The RCC row must match one of the two orders exactly.
	last := tab.Rows[len(tab.Rows)-1]
	if !(last[1] == "600" && (last[2] == "200" || last[2] == "500")) {
		t.Fatalf("RCC row inconsistent: %v", last)
	}
}

func TestFig8aRCCWinsEverywhereAbove4(t *testing.T) {
	tab := Fig8a()
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[0])
		if n <= 4 {
			continue
		}
		rccn := parseK(t, row[1])
		for col := 4; col <= 7; col++ { // PBFT, Zyzzyva, SBFT, HotStuff
			if rccn < parseK(t, row[col]) {
				t.Fatalf("n=%d: RCCn %.1f below %s %.1f", n, rccn, tab.Header[col], parseK(t, row[col]))
			}
		}
	}
}

func TestFig1ConcurrencyDominates(t *testing.T) {
	for _, txn := range []int{20, 400} {
		tab := Fig1(txn)
		for _, row := range tab.Rows {
			if parseK(t, row[3]) <= parseK(t, row[1]) {
				t.Fatalf("txn=%d n=%s: Tcmax not above Tmax", txn, row[0])
			}
		}
	}
}

func TestFig10TimelineShape(t *testing.T) {
	cfg := DefaultFig10()
	cfg.Horizon = 24 * time.Second
	cfg.CrashP1At = 8 * time.Second
	cfg.CrashP2At = 16 * time.Second
	tab, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rccMin, mirMin = int(^uint(0) >> 1), int(^uint(0) >> 1)
	var rccPre, mirPre int
	for i, row := range tab.Rows {
		r, _ := strconv.Atoi(row[1])
		m, _ := strconv.Atoi(row[2])
		if i < 3 { // pre-failure buckets
			rccPre += r
			mirPre += m
			continue
		}
		if r < rccMin {
			rccMin = r
		}
		if m < mirMin {
			mirMin = m
		}
	}
	if rccPre == 0 || mirPre == 0 {
		t.Fatal("no pre-failure throughput")
	}
	// The defining contrast: Mir-BFT's coordinated epoch change drops
	// throughput to zero; RCC's wait-free recovery never does.
	if mirMin != 0 {
		t.Fatalf("Mir-BFT never hit zero during recovery (min %d)", mirMin)
	}
	if rccMin == 0 {
		t.Fatal("RCC throughput hit zero — recovery was not wait-free")
	}
}

func TestSummaryRatiosWithinBands(t *testing.T) {
	tab := Summary()
	bands := map[string][2]float64{ // paper: 2.77 / 1.53 / 38 / 82 under failure
		"SBFT":     {1.8, 4.5},
		"PBFT":     {1.2, 4.0},
		"HotStuff": {20, 60},
		"Zyzzyva":  {40, 130},
	}
	for _, row := range tab.Rows {
		band, ok := bands[row[0]]
		if !ok {
			t.Fatalf("unexpected baseline %q", row[0])
		}
		fail := parseK(t, row[2])
		if fail < band[0] || fail > band[1] {
			t.Errorf("%s single-failure ratio %.2f outside [%.1f, %.1f]", row[0], fail, band[0], band[1])
		}
	}
}

func TestValidateSimulatorsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("validate runs seconds of simulated consensus")
	}
	tab, err := Validate()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("simulators contradict at n=%s: %v", row[0], row)
		}
	}
	// The protocol-level simulation must show RCC strictly ahead of PBFT
	// at n=7 (the concurrency advantage the paper measures).
	last := tab.Rows[len(tab.Rows)-1]
	rcc := parseK(t, last[1])
	pbft := parseK(t, last[2])
	if rcc < 1.5*pbft {
		t.Fatalf("simnet RCC advantage %.2f× at n=7, want >= 1.5×", rcc/pbft)
	}
}
