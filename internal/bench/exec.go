package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/ledger"
	"repro/internal/types"
	"repro/internal/ycsb"
)

// Exec measures the conflict-aware parallel execution engine directly:
// raw YCSB execution throughput (txn/s) versus worker count and conflict
// rate, plus the speedup over the serial engine. This is the experiment
// behind lifting the paper's serial execution ceiling (Fig. 7 left): at 0%
// conflicts every transaction is its own conflict component and the batch
// fans out fully; at 100% every transaction hits one hot record, the batch
// is a single component, and the engine must serialize it — the speedup
// column should fall back to ~1x (minus planning overhead).
//
// Numbers are machine-bound and, on a single-core host, the parallel rows
// measure pure engine overhead (speedup <= 1x by construction).
func Exec() (*Table, error) {
	t := &Table{
		ID: "exec",
		Title: fmt.Sprintf("conflict-aware parallel execution: YCSB txn/s vs workers and conflict rate (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
		Header: []string{"conflict", "workers", "txn/s", "vs-serial"},
	}
	const (
		records   = 1 << 16
		batchSize = 2048
		fieldLen  = 512
		rounds    = 24
	)
	for _, conflictPct := range []int{0, 50, 100} {
		batches := execBatches(conflictPct, rounds, batchSize, records, fieldLen)
		var serial float64
		for _, workers := range []int{1, 2, 4, 8} {
			rate := execRate(batches, records, workers)
			if workers == 1 {
				serial = rate
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d%%", conflictPct),
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.2fx", rate/serial),
			})
		}
	}
	return t, nil
}

// execBatches pre-generates write-only YCSB batches where conflictPct% of
// the transactions hit one hot record and the rest each touch a distinct
// record.
func execBatches(conflictPct, rounds, batchSize, records, fieldLen int) []*types.Batch {
	rng := rand.New(rand.NewSource(int64(conflictPct) + 1))
	batches := make([]*types.Batch, rounds)
	seq, next := uint64(0), 0
	for r := range batches {
		b := &types.Batch{Txns: make([]types.Transaction, 0, batchSize)}
		for i := 0; i < batchSize; i++ {
			seq++
			key := uint32(0)
			if rng.Intn(100) >= conflictPct {
				next++
				key = uint32(1 + next%(records-1))
			}
			value := make([]byte, fieldLen)
			rng.Read(value)
			b.Txns = append(b.Txns, types.Transaction{Client: 1, Seq: seq, Op: ycsb.EncodeWrite(key, value)})
		}
		batches[r] = b
	}
	return batches
}

// execRate runs every batch through a fresh engine and returns txn/s.
func execRate(batches []*types.Batch, records, workers int) float64 {
	e := exec.NewEngineOpts(ycsb.NewStore(records), nil, exec.Options{Workers: workers})
	defer e.Close()
	txns := 0
	start := time.Now()
	for i, b := range batches {
		e.ExecuteBatch(b, ledger.Proof{Round: types.Round(i + 1)})
		txns += len(b.Txns)
	}
	return float64(txns) / time.Since(start).Seconds()
}
