package bench

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/crypto"
	"repro/internal/crypto/digestcache"
	"repro/internal/quorum"
	"repro/internal/rcc"
	"repro/internal/runtime"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/ycsb"
)

// LiveCrypto measures the cost of frame authentication on a REAL cluster —
// 4 RCC replicas over loopback TCP, the exact stack cmd/rccnode deploys —
// rather than through the flow model's CPU-cost constants. It runs the same
// closed-loop YCSB workload under each scheme of Fig. 7 (right): no
// authentication, cached pairwise HMACs, and ED25519 dev-keyring signatures
// with the verify worker pool and the verified-digest cache active. The
// relative column is the live counterpart of the paper's DS ≈ -86% /
// MAC ≈ -33% simulation (absolute ratios differ: loopback TCP has no WAN
// latency, and ED25519 differs from the paper's RSA/CMAC primitives).
func LiveCrypto() (*Table, error) {
	t := &Table{
		ID:    "crypto",
		Title: "live authentication cost (4 RCC replicas, loopback TCP, 2 closed-loop clients)",
		Header: []string{"auth", "txns", "elapsed-s", "txn/s", "vs-none",
			"pooled-frames", "digest-hit-rate"},
	}
	var baseline float64
	for _, scheme := range []crypto.Scheme{crypto.SchemeNone, crypto.SchemeMAC, crypto.SchemeDS} {
		rate, txns, elapsed, stats, err := runLiveCrypto(scheme)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", scheme, err)
		}
		rel := "-"
		if scheme == crypto.SchemeNone {
			baseline = rate
		} else if baseline > 0 {
			rel = fmt.Sprintf("%+.0f%%", (rate/baseline-1)*100)
		}
		hitRate := "-"
		if lookups := stats.DigestHits + stats.DigestMisses; lookups > 0 {
			hitRate = fmt.Sprintf("%.0f%%", float64(stats.DigestHits)/float64(lookups)*100)
		}
		t.Rows = append(t.Rows, []string{
			scheme.String(),
			fmt.Sprintf("%d", txns),
			fmt.Sprintf("%.2f", elapsed.Seconds()),
			fmt.Sprintf("%.0f", rate),
			rel,
			fmt.Sprintf("%d", stats.VerifiedFrames),
			hitRate,
		})
	}
	return t, nil
}

// runLiveCrypto boots one 4-replica TCP cluster under scheme, drives the
// workload to completion, and returns the realized throughput plus replica
// 0's transport counters.
func runLiveCrypto(scheme crypto.Scheme) (rate float64, txns int, elapsed time.Duration, stats transport.TCPStats, err error) {
	const (
		n          = 4
		clients    = 2
		perClient  = 300
		secretSeed = "live-crypto-bench"
	)
	txns = clients * perClient
	params, err := quorum.NewParams(n)
	if err != nil {
		return 0, 0, 0, stats, err
	}

	reps := make([]*runtime.Replica, n)
	tcps := make([]*transport.TCP, n)
	peers := make(map[types.ReplicaID]string)
	defer func() {
		for _, r := range reps {
			if r != nil {
				r.Stop()
			}
		}
	}()
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		reps[i], err = runtime.New(runtime.Config{
			ID:     id,
			Params: params,
			Machine: rcc.New(rcc.Config{
				BatchSize: 1, Window: 8, ProgressTimeout: 30 * time.Second,
			}),
			App:            ycsb.NewStore(ycsb.DefaultRecords),
			Journal:        true,
			ReplyToClients: true,
		})
		if err != nil {
			return 0, 0, 0, stats, err
		}
		auth, aerr := crypto.NewAuth(scheme, crypto.PartyID(id), []byte(secretSeed))
		if aerr != nil {
			return 0, 0, 0, stats, aerr
		}
		cfg := transport.TCPConfig{Self: id, Listen: "127.0.0.1:0", Auth: auth}
		if scheme == crypto.SchemeDS {
			cfg.DigestCache = digestcache.New(digestcache.DefaultEntries)
		}
		tcps[i], err = transport.NewTCP(cfg, reps[i])
		if err != nil {
			return 0, 0, 0, stats, err
		}
		peers[id] = tcps[i].Addr()
	}
	for i := 0; i < n; i++ {
		tcps[i].SetPeers(peers)
		reps[i].Attach(tcps[i])
		reps[i].Run()
	}

	machs := make([]*client.Client, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		cid := types.ClientID(c + 1)
		mach := client.New(client.Config{Client: cid, Broadcast: true, RetryTimeout: 2 * time.Second})
		mach.SetWindow(8)
		wl := ycsb.NewWorkload(ycsb.WorkloadConfig{Seed: int64(cid)})
		for i := 0; i < perClient; i++ {
			mach.Submit(wl.Next(cid))
		}
		proc := runtime.NewClient(cid, params, mach)
		auth, aerr := crypto.NewAuth(scheme, crypto.ClientPartyID(cid), []byte(secretSeed))
		if aerr != nil {
			return 0, 0, 0, stats, aerr
		}
		ctcp, terr := transport.NewTCP(transport.TCPConfig{
			IsClient: true, SelfClient: cid, Peers: peers, Auth: auth,
		}, proc)
		if terr != nil {
			return 0, 0, 0, stats, terr
		}
		proc.Attach(ctcp)
		proc.Run()
		defer proc.Stop()
		machs[c] = mach
	}

	err = waitUntil(120*time.Second, func() bool {
		for _, m := range machs {
			if len(m.Completions()) < perClient {
				return false
			}
		}
		return true
	})
	elapsed = time.Since(start)
	if err != nil {
		return 0, 0, 0, stats, fmt.Errorf("workload incomplete: %w", err)
	}
	stats = tcps[0].Stats()
	return float64(txns) / elapsed.Seconds(), txns, elapsed, stats, nil
}
