package bench

import (
	"fmt"
	"time"

	"repro/internal/crypto"
	"repro/internal/flowsim"
	"repro/internal/pbft"
	"repro/internal/rcc"
	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

// simnetThroughput measures committed transactions per second for one
// protocol on the message-level simulator: real state machines, saturating
// open-loop client load, finite bandwidth.
func simnetThroughput(proto string, n, batch int, horizon time.Duration) (float64, error) {
	net, err := simnet.New(simnet.Config{
		N:            n,
		Latency:      time.Millisecond,
		BandwidthBps: 1e9,
		Seed:         7,
	})
	if err != nil {
		return 0, err
	}
	switch proto {
	case "rcc":
		for i := 0; i < n; i++ {
			net.SetMachine(types.ReplicaID(i), rcc.New(rcc.Config{
				BatchSize: batch, Window: 8, ProgressTimeout: time.Hour,
			}))
		}
	case "pbft":
		for i := 0; i < n; i++ {
			net.SetMachine(types.ReplicaID(i), pbft.New(pbft.Config{
				BatchSize: batch, Window: 8, ProgressTimeout: time.Hour,
			}))
		}
	default:
		return 0, fmt.Errorf("bench: unknown protocol %q", proto)
	}
	net.Start()

	// Open-loop load calibrated to exceed the single-primary capacity
	// without drowning the simulation in backlog: one batch worth of fresh
	// requests per client per millisecond. One client per replica under
	// RCC (one per instance); the same aggregate demand under PBFT.
	period := time.Millisecond
	perTick := batch
	seqs := make([]uint64, n+1)
	var sched func(c int, at time.Duration)
	sched = func(c int, at time.Duration) {
		if at > horizon {
			return
		}
		net.Schedule(at, func() {
			cl := types.ClientID(c)
			for k := 0; k < perTick; k++ {
				seqs[c]++
				tx := types.Transaction{Client: cl, Seq: seqs[c], Op: []byte{byte(c), byte(seqs[c]), byte(seqs[c] >> 8)}}
				req := types.NewClientRequest(0, tx)
				for r := 0; r < n; r++ {
					net.Node(types.ReplicaID(r)).Machine().OnMessage(sm.FromClient(cl), req)
				}
			}
			sched(c, at+period)
		})
	}
	for c := 1; c <= n; c++ {
		sched(c, time.Duration(c)*time.Millisecond)
	}
	net.Run(horizon)

	total := 0
	for _, d := range net.Node(0).Decisions() {
		if d.Batch == nil {
			continue
		}
		for _, tx := range d.Batch.Txns {
			if !tx.IsNoOp() {
				total++
			}
		}
	}
	return float64(total) / horizon.Seconds(), nil
}

// Validate cross-checks the two simulators at small n: the message-level
// simulator executes the real protocol state machines under finite
// bandwidth, and its RCC-vs-PBFT ranking must agree with the flow model
// that generates the large sweeps. (Absolute numbers differ by design: the
// flow model charges the calibrated CPU/execution costs of the paper's
// testbed, which the message-level simulator does not model.)
func Validate() (*Table, error) {
	t := &Table{
		ID:     "validate",
		Title:  "Simulator cross-check: simnet (real protocols) vs flowsim ranking",
		Header: []string{"n", "simnet RCC", "simnet PBFT", "flow RCC", "flow PBFT", "ranking agrees"},
	}
	const batch = 10
	horizon := 3 * time.Second
	for _, n := range []int{4, 7} {
		sr, err := simnetThroughput("rcc", n, batch, horizon)
		if err != nil {
			return nil, err
		}
		sp, err := simnetThroughput("pbft", n, batch, horizon)
		if err != nil {
			return nil, err
		}
		fr := flowsim.Evaluate(flowsim.Setup{
			Protocol: flowsim.PBFT, N: n, Concurrent: n, BatchSize: batch,
			Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC, OutOfOrder: true,
		}).Throughput
		fp := flowsim.Evaluate(flowsim.Setup{
			Protocol: flowsim.PBFT, N: n, Concurrent: 1, BatchSize: batch,
			Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC, OutOfOrder: true,
		}).Throughput
		// Rankings agree unless the simulators contradict each other by
		// more than a 5% margin (the flow model ties both protocols when
		// a shared resource like the execution ceiling binds).
		contradicts := (sr > 1.05*sp && fr < 0.95*fp) || (sp > 1.05*sr && fp < 0.95*fr)
		agrees := !contradicts
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", sr), fmt.Sprintf("%.0f", sp),
			fmt.Sprintf("%.0f", fr), fmt.Sprintf("%.0f", fp),
			fmt.Sprint(agrees),
		})
	}
	return t, nil
}
