package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ycsb"
)

// Stages runs a 4-replica durable RCC cluster under a pipelined client load
// and reports the per-stage latency breakdown the observability layer
// collects: where a transaction's time goes between arriving at a replica
// and being acknowledged. The closing row is the client-observed end-to-end
// latency for the same run, so the stage sums can be read against what a
// caller actually waited.
func Stages() (*Table, error) {
	const (
		n       = 4
		clients = 16
		perCli  = 32
	)

	dir, err := os.MkdirTemp("", "rcc-stages-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	met := obs.NewNodeMetrics(obs.NewRegistry(), 0, -1)
	cluster, err := core.NewCluster(core.Options{
		N:            n,
		Protocol:     core.RCC,
		BatchSize:    1,
		Window:       8,
		DataDir:      dir,
		AsyncJournal: true,
		Metrics:      met,
	})
	if err != nil {
		return nil, err
	}
	cluster.Start()
	defer cluster.Stop()

	// Closed-loop clients, one request in flight each: the e2e histogram
	// then measures true per-request latency, not client-side queueing.
	cls := make([]*core.Client, clients)
	for i := range cls {
		cls[i] = cluster.NewClient(0)
	}
	e2e := &obs.Histogram{}
	errs := make(chan error, clients)
	for _, cl := range cls {
		go func(cl *core.Client) {
			wl := ycsb.NewWorkload(ycsb.WorkloadConfig{Records: ycsb.DefaultRecords, Seed: int64(cl.ID())})
			for i := 0; i < perCli; i++ {
				start := time.Now()
				if _, err := cl.Execute(wl.Next(cl.ID()).Op, 30*time.Second); err != nil {
					errs <- fmt.Errorf("stages: %w", err)
					return
				}
				e2e.Observe(time.Since(start))
			}
			errs <- nil
		}(cl)
	}
	for range cls {
		if err := <-errs; err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:     "stages",
		Title:  "per-stage latency breakdown (RCC n=4, async journal, in-process transport)",
		Header: []string{"stage", "count", "p50-ms", "p95-ms", "p99-ms", "max-ms"},
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }
	row := func(name string, s obs.HistSnapshot) {
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(s.Count), ms(s.P50), ms(s.P95), ms(s.P99), ms(s.Max),
		})
	}
	for _, st := range obs.Stages() {
		row(st.String(), met.Stage(st).Snapshot())
	}
	row("client-e2e", e2e.Snapshot())
	return t, nil
}
