package bench

// Messaging-layer benchmark helpers: representative messages, the
// pre-refactor gob wire path as a baseline, and a discard server.
//
// The repository's transport originally gob-encoded each message and wrote
// it inline on the calling goroutine, serialized per connection by a mutex
// — exactly what GobBroadcaster reproduces. BenchmarkBroadcast (root
// bench_test.go) races that baseline against the refactored enqueue-only
// transport, and BenchmarkCodec races gob against the registry-based binary
// codec in internal/types; scripts/benchgate gates both.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/types"
)

// NetVote returns a 250B-class consensus vote, the most common message on
// the wire.
func NetVote() types.Message {
	return types.NewPrepare(1, 2, 3, 4, types.Hash([]byte("vote")))
}

// NetPrePrepare returns a proposal carrying a txns-transaction batch
// (txns=100 is the paper's standard batch).
func NetPrePrepare(txns int) types.Message {
	ts := make([]types.Transaction, txns)
	for i := range ts {
		ts[i] = types.Transaction{
			Client: types.ClientID(i%16 + 1),
			Seq:    uint64(i + 1),
			Op:     fmt.Appendf(nil, "op-%04d-payload-padding-to-54-bytes-of-wire", i),
		}
	}
	b := &types.Batch{Txns: ts}
	return &types.PrePrepare{
		Header: types.Header{Inst: 1},
		View:   1, Round: 7, Digest: b.Digest(), Batch: b,
	}
}

// GobFrame mirrors the pre-refactor wire envelope (sender identity and tag
// repeated per message, gob-encoded message payload).
type GobFrame struct {
	FromReplica types.ReplicaID
	FromClient  types.ClientID
	IsClient    bool
	Tag         []byte
	Msg         types.Message
}

var gobOnce sync.Once

// RegisterGob registers the message catalog with gob, as the old transport
// did at init.
func RegisterGob() {
	gobOnce.Do(func() {
		gob.Register(&types.ClientRequest{})
		gob.Register(&types.ClientReply{})
		gob.Register(&types.PrePrepare{})
		gob.Register(&types.Prepare{})
		gob.Register(&types.Commit{})
	})
}

// GobMarshal encodes a frame the way the old transport did.
func GobMarshal(f *GobFrame) ([]byte, error) {
	RegisterGob()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobUnmarshal decodes a gob frame.
func GobUnmarshal(b []byte) (*GobFrame, error) {
	RegisterGob()
	var f GobFrame
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// GobBroadcaster is the pre-refactor sender: one cached connection per
// destination, a shared gob.Encoder per connection, and encode+write inline
// on the calling goroutine under the connection mutex.
type GobBroadcaster struct {
	conns []*gobConn
}

type gobConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	c   net.Conn
}

// DialGobBroadcaster connects to every address.
func DialGobBroadcaster(addrs []string) (*GobBroadcaster, error) {
	RegisterGob()
	g := &GobBroadcaster{}
	for _, a := range addrs {
		c, err := net.Dial("tcp", a)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.conns = append(g.conns, &gobConn{enc: gob.NewEncoder(c), c: c})
	}
	return g, nil
}

// Broadcast writes m to every destination, inline — the per-send cost the
// consensus event loop used to pay.
func (g *GobBroadcaster) Broadcast(from types.ReplicaID, m types.Message) error {
	f := &GobFrame{FromReplica: from, Msg: m}
	for _, gc := range g.conns {
		gc.mu.Lock()
		err := gc.enc.Encode(f)
		gc.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close tears the connections down.
func (g *GobBroadcaster) Close() {
	for _, gc := range g.conns {
		gc.c.Close()
	}
}

// DiscardServer accepts connections and discards every byte — a peer whose
// read side never pushes back.
type DiscardServer struct {
	ln net.Listener
	wg sync.WaitGroup
}

// NewDiscardServer starts a discard server on a loopback port.
func NewDiscardServer() (*DiscardServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &DiscardServer{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				io.Copy(io.Discard, c)
				c.Close()
			}()
		}
	}()
	return s, nil
}

// Addr returns the server's address.
func (s *DiscardServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *DiscardServer) Close() {
	s.ln.Close()
	s.wg.Wait()
}
