package bench

import (
	"fmt"
	"time"

	"repro/internal/mirbft"
	"repro/internal/rcc"
	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

// Fig10Config parameterizes the failure-timeline experiment.
type Fig10Config struct {
	// N is the number of replicas (the paper runs m = 11 instances).
	N int
	// Horizon is the virtual duration of the run.
	Horizon time.Duration
	// Bucket is the sampling granularity of the timeline.
	Bucket time.Duration
	// InjectEvery is the per-client request period.
	InjectEvery time.Duration
	// CrashP1At / CrashP2At schedule the failures (paper events a and c).
	CrashP1At time.Duration
	CrashP2At time.Duration
}

// DefaultFig10 mirrors the paper's timeline compressed to simulate quickly:
// P1 fails early, P1+P2 fail later, and the run is long enough to watch
// recovery and (for Mir-BFT) gradual re-enablement.
func DefaultFig10() Fig10Config {
	return Fig10Config{
		N:           11,
		Horizon:     60 * time.Second,
		Bucket:      2 * time.Second,
		InjectEvery: 100 * time.Millisecond,
		CrashP1At:   10 * time.Second,
		CrashP2At:   35 * time.Second,
	}
}

// fig10Run drives one system (factory builds the per-replica machine) and
// returns delivered-transaction counts per bucket, measured at replica 0.
func fig10Run(cfg Fig10Config, factory func() sm.Machine) ([]uint64, error) {
	net, err := simnet.New(simnet.Config{N: cfg.N, Latency: time.Millisecond, Seed: 42})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.N; i++ {
		net.SetMachine(types.ReplicaID(i), factory())
	}
	net.Start()

	// Client load: one client per replica-led instance, issuing a request
	// every InjectEvery. Requests are broadcast so every replica forwards
	// them (and can detect neglect).
	seqs := make([]uint64, cfg.N)
	for c := 1; c <= cfg.N; c++ {
		client := types.ClientID(c)
		idx := c - 1
		period := cfg.InjectEvery
		var schedule func(at time.Duration)
		schedule = func(at time.Duration) {
			if at > cfg.Horizon {
				return
			}
			net.Schedule(at, func() {
				seqs[idx]++
				tx := types.Transaction{Client: client, Seq: seqs[idx], Op: []byte{byte(client), byte(seqs[idx])}}
				req := types.NewClientRequest(0, tx)
				for r := 0; r < cfg.N; r++ {
					node := net.Node(types.ReplicaID(r))
					node.Machine().OnMessage(sm.FromClient(client), req)
				}
				schedule(at + period)
			})
		}
		schedule(period)
	}

	net.Schedule(cfg.CrashP1At, func() { net.Crash(1) })
	net.Schedule(cfg.CrashP2At, func() { net.Crash(2) })

	// Clients served by the crashed primaries ask to be reassigned to a
	// healthy instance (§III-E SwitchInstance). Under RCC the reassignment
	// is agreed through the coordinating consensus of the old instance;
	// Mir-BFT re-buckets clients on its own at epoch changes and ignores
	// these messages.
	reassign := func(c types.ClientID, from, to types.InstanceID) {
		sw := &types.SwitchInstance{Client: c, To: to}
		sw.Inst = from
		for r := 0; r < cfg.N; r++ {
			node := net.Node(types.ReplicaID(r))
			node.Machine().OnMessage(sm.FromClient(c), sw)
		}
	}
	net.Schedule(cfg.CrashP1At+4*time.Second, func() { reassign(1, 1, 0) })
	net.Schedule(cfg.CrashP2At+4*time.Second, func() { reassign(2, 2, 3) })

	// Sample delivered real transactions at replica 0 per bucket.
	buckets := int(cfg.Horizon / cfg.Bucket)
	counts := make([]uint64, buckets)
	var prev uint64
	count := func() uint64 {
		var total uint64
		for _, d := range net.Node(0).Decisions() {
			if d.Batch == nil {
				continue
			}
			for _, tx := range d.Batch.Txns {
				if !tx.IsNoOp() {
					total++
				}
			}
		}
		return total
	}
	for b := 0; b < buckets; b++ {
		net.Run(time.Duration(b+1) * cfg.Bucket)
		cur := count()
		counts[b] = cur - prev
		prev = cur
	}
	return counts, nil
}

// Fig10 reproduces the Fig. 10 failure timeline: RCC's wait-free
// per-instance recovery versus Mir-BFT's fully-coordinated epoch changes,
// with primaries P1 (and later P2) crashing mid-run. The series is the
// per-bucket transaction throughput at replica 0.
func Fig10(cfg Fig10Config) (*Table, error) {
	if cfg.N == 0 {
		cfg = DefaultFig10()
	}
	// Failure-detection timeouts are paper-scale (seconds): the recovery
	// periods of Fig. 10 span multiple sampling buckets.
	rccCounts, err := fig10Run(cfg, func() sm.Machine {
		return rcc.New(rcc.Config{
			BatchSize:       1,
			Window:          4,
			ProgressTimeout: time.Second,
			RecoveryTimeout: 1500 * time.Millisecond,
		})
	})
	if err != nil {
		return nil, err
	}
	mirCounts, err := fig10Run(cfg, func() sm.Machine {
		return mirbft.New(mirbft.Config{
			BatchSize:         1,
			Window:            4,
			ProgressTimeout:   time.Second,
			StabilityInterval: 8 * time.Second,
		})
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "fig10",
		Title: fmt.Sprintf(
			"Failure timeline, m=%d instances (txn per %s bucket at replica 0); P1 fails at %s, P1+P2 at %s",
			cfg.N, cfg.Bucket, cfg.CrashP1At, cfg.CrashP2At),
		Header: []string{"t(s)", "RCC", "MirBFT"},
	}
	for b := range rccCounts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", (time.Duration(b+1) * cfg.Bucket).Seconds()),
			fmt.Sprint(rccCounts[b]),
			fmt.Sprint(mirCounts[b]),
		})
	}
	return t, nil
}
