package bench

import (
	"fmt"

	"repro/internal/bank"
	"repro/internal/rcc"
	"repro/internal/types"
)

// Fig6 reproduces the ordering-attack illustration of Fig. 6 / Example
// IV.1: two conditional transfers whose combined outcome depends on the
// execution order a (possibly malicious) primary picks, followed by a
// demonstration that RCC's deterministic permutation ordering (§IV) removes
// the primary's choice.
func Fig6() *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Ordering attack: transfer outcomes by execution order (paper Fig. 6)",
		Header: []string{"scenario", "Alice", "Bob", "Eve"},
	}
	t1 := bank.Transfer{From: "Alice", To: "Bob", Threshold: 500, Amount: 200}
	t2 := bank.Transfer{From: "Bob", To: "Eve", Threshold: 400, Amount: 300}
	opening := map[string]int64{"Alice": 800, "Bob": 300, "Eve": 100}

	run := func(order ...bank.Transfer) *bank.Bank {
		b := bank.New(opening)
		for i, tr := range order {
			b.Execute(types.Transaction{Client: 1, Seq: uint64(i + 1), Op: tr.Encode()})
		}
		return b
	}
	report := func(name string, b *bank.Bank) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprint(b.Balance("Alice")),
			fmt.Sprint(b.Balance("Bob")),
			fmt.Sprint(b.Balance("Eve")),
		})
	}
	report("original", run())
	report("first T1, then T2", run(t1, t2))
	report("first T2, then T1", run(t2, t1))

	// RCC's mitigation: the executed order is f_S(digest(S) mod (k!−1)),
	// known only after all proposals of the round are fixed (§IV). Show
	// the permutation selected for this round's two proposals.
	d1 := (&types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: t1.Encode()}}}).Digest()
	d2 := (&types.Batch{Txns: []types.Transaction{{Client: 2, Seq: 1, Op: t2.Encode()}}}).Digest()
	ord := rcc.ExecutionOrder([]types.Digest{d1, d2}, true)
	chosen := "first T1, then T2"
	if ord[0] == 1 {
		chosen = "first T2, then T1"
	}
	var b *bank.Bank
	if ord[0] == 0 {
		b = run(t1, t2)
	} else {
		b = run(t2, t1)
	}
	report("RCC §IV picks: "+chosen, b)
	return t
}
