package bench

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/ycsb"
)

// Timeline runs a 4-replica durable RCC cluster through a scripted incident
// — healthy load, then one replica crashed mid-load while the cluster
// decides on without it — and reports what the flight recorder captured:
// the merged causal timeline's event counts by kind and the anomaly
// highlights the merge layer raised. It is the in-process rehearsal of the
// production workflow (scrape /debug/events from every replica, merge,
// read the highlights).
func Timeline() (*Table, error) {
	const (
		n      = 4
		txns   = 24 // healthy phase
		txns2  = 24 // degraded phase, replica 3 gone
		crashN = 3
	)

	dir, err := os.MkdirTemp("", "rcc-timeline-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	met := obs.NewNodeMetrics(obs.NewRegistry(), 0, -1)
	cluster, err := core.NewCluster(core.Options{
		N:            n,
		Protocol:     core.RCC,
		BatchSize:    1,
		Window:       8,
		DataDir:      dir,
		AsyncJournal: true,
		Metrics:      met,
	})
	if err != nil {
		return nil, err
	}
	cluster.Start()
	defer cluster.Stop()

	cl := cluster.NewClient(0)
	wl := ycsb.NewWorkload(ycsb.WorkloadConfig{Records: ycsb.DefaultRecords, Seed: 1})
	run := func(count int) error {
		for i := 0; i < count; i++ {
			if _, err := cl.Execute(wl.Next(cl.ID()).Op, 30*time.Second); err != nil {
				return fmt.Errorf("timeline: %w", err)
			}
		}
		return nil
	}
	if err := run(txns); err != nil {
		return nil, err
	}
	// The incident: replica 3 drops off the network mid-deployment. Its
	// concurrent instances stop deciding, the survivors suspect it, agree to
	// void its rounds, and keep unifying waves without it.
	cluster.Crash(crashN)
	if err := run(txns2); err != nil {
		return nil, err
	}

	// The in-process cluster shares one catalog, so one dump carries every
	// replica's events; Merge aligns and orders them all the same.
	tl := flight.Merge([]flight.Snapshot{met.Flight.Dump(0)})
	anoms := flight.DetectAnomalies(tl)

	kinds := map[flight.Kind]int{}
	for _, ev := range tl {
		kinds[ev.Kind]++
	}
	order := make([]flight.Kind, 0, len(kinds))
	for k := range kinds {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	t := &Table{
		ID:     "timeline",
		Title:  "flight-recorder incident timeline (RCC n=4, replica 3 crashed mid-load)",
		Header: []string{"metric", "count"},
	}
	t.Rows = append(t.Rows, []string{"events-total", fmt.Sprint(len(tl))})
	for _, k := range order {
		t.Rows = append(t.Rows, []string{"events." + k.String(), fmt.Sprint(kinds[k])})
	}
	t.Rows = append(t.Rows, []string{"anomalies-total", fmt.Sprint(len(anoms))})
	byTitle := map[string]int{}
	for _, a := range anoms {
		byTitle[a.Title]++
	}
	titles := make([]string, 0, len(byTitle))
	for title := range byTitle {
		titles = append(titles, title)
	}
	sort.Strings(titles)
	for _, title := range titles {
		t.Rows = append(t.Rows, []string{"anomalies." + title, fmt.Sprint(byTitle[title])})
	}
	return t, nil
}
