// Package bench is the experiment harness: one function per table/figure of
// the RCC paper's evaluation (§V), each returning the same rows/series the
// paper reports. cmd/rccbench prints them; the repository-root benchmarks
// wrap them as testing.B targets; EXPERIMENTS.md records the measured
// values against the paper's.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/crypto"
	"repro/internal/flowsim"
	"repro/internal/model"
)

// Table is one reproduced table or figure series.
type Table struct {
	// ID is the experiment identifier, e.g. "fig8a".
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the series.
	Rows [][]string
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// ReplicaCounts is the paper's x-axis for the scalability plots.
var ReplicaCounts = []int{4, 16, 32, 64, 91}

// BatchSizes is the paper's x-axis for the batching plots (Fig. 8 e,f).
var BatchSizes = []int{10, 50, 100, 200, 400}

func ktps(v float64) string { return fmt.Sprintf("%.1f", v/1000) }

func seconds(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// ---------------------------------------------------------------------------
// Fig. 1 — analytical bounds
// ---------------------------------------------------------------------------

// Fig1 computes the analytical maximum-throughput curves of Fig. 1 for the
// given transactions-per-proposal grouping (20 for the left plot, 400 for
// the right).
func Fig1(txnPerProposal int) *Table {
	side := "left"
	if txnPerProposal >= 400 {
		side = "right"
	}
	t := &Table{
		ID:     "fig1" + side,
		Title:  fmt.Sprintf("Maximum replication throughput, %d txn/proposal (ktxn/s)", txnPerProposal),
		Header: []string{"n", "Tmax", "TPBFT", "Tcmax", "TcPBFT"},
	}
	for _, pt := range model.Fig1Series(model.DefaultFig1(txnPerProposal), 100) {
		if pt.N%8 != 0 && pt.N != 4 && pt.N != 100 {
			continue // sample the curve like the plot's readable grid
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.N), ktps(pt.Tmax), ktps(pt.TPBFT), ktps(pt.Tcmax), ktps(pt.TcPBFT),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 7 — ResilientDB characteristics
// ---------------------------------------------------------------------------

// Fig7Left reproduces Fig. 7 (left): the maximum rate of a single replica
// that receives client transactions and replies, versus one that also
// executes them.
func Fig7Left() *Table {
	env := flowsim.DefaultEnv()
	return &Table{
		ID:     "fig7left",
		Title:  "Single-replica client handling (ktxn/s); paper: Reply 551, Full 217",
		Header: []string{"mode", "ktxn/s"},
		Rows: [][]string{
			{"Reply", ktps(flowsim.SingleReplicaReply(env))},
			{"Full", ktps(flowsim.SingleReplicaFull(env, 100))},
		},
	}
}

// Fig7Right reproduces Fig. 7 (right): PBFT with n = 16 replicas under the
// three authentication configurations.
func Fig7Right() *Table {
	t := &Table{
		ID:     "fig7right",
		Title:  "PBFT n=16 by crypto scheme (ktxn/s); paper: None 145, DS −86%, MAC −33%",
		Header: []string{"scheme", "ktxn/s", "latency(s)", "bound"},
	}
	rows := []struct {
		name    string
		replica crypto.Scheme
		client  crypto.Scheme
	}{
		{"None", crypto.SchemeNone, crypto.SchemeNone},
		{"PK", crypto.SchemeDS, crypto.SchemeDS},
		{"MAC", crypto.SchemeMAC, crypto.SchemeDS},
	}
	for _, r := range rows {
		res := flowsim.Evaluate(flowsim.Setup{
			Protocol: flowsim.PBFT, N: 16, BatchSize: 100,
			Crypto: r.replica, ClientSig: r.client, OutOfOrder: true,
		})
		t.Rows = append(t.Rows, []string{r.name, ktps(res.Throughput), seconds(res.Latency), res.Bound})
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 8 — main evaluation
// ---------------------------------------------------------------------------

// protoColumn describes one plotted protocol line.
type protoColumn struct {
	name  string
	proto flowsim.Protocol
	m     func(n int) int
}

func fig8Columns() []protoColumn {
	return []protoColumn{
		{"RCCn", flowsim.PBFT, func(n int) int { return n }},
		{"RCCf+1", flowsim.PBFT, func(n int) int { return (n-1)/3 + 1 }},
		{"RCC3", flowsim.PBFT, func(int) int { return 3 }},
		{"PBFT", flowsim.PBFT, func(int) int { return 1 }},
		{"Zyzzyva", flowsim.Zyzzyva, func(int) int { return 1 }},
		{"SBFT", flowsim.SBFT, func(int) int { return 1 }},
		{"HotStuff", flowsim.HotStuff, func(int) int { return 1 }},
	}
}

func fig8Sweep(id, title string, batch, failures int, ooo bool, latency bool) *Table {
	cols := fig8Columns()
	t := &Table{ID: id, Title: title, Header: []string{"n"}}
	for _, c := range cols {
		t.Header = append(t.Header, c.name)
	}
	for _, n := range ReplicaCounts {
		row := []string{fmt.Sprint(n)}
		for _, c := range cols {
			res := flowsim.Evaluate(flowsim.Setup{
				Protocol: c.proto, N: n, Concurrent: c.m(n), BatchSize: batch,
				Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC,
				OutOfOrder: ooo, Failures: failures,
			})
			if latency {
				row = append(row, seconds(res.Latency))
			} else {
				row = append(row, ktps(res.Throughput))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig8a is the no-failure throughput scalability sweep (ktxn/s).
func Fig8a() *Table {
	return fig8Sweep("fig8a", "Scalability, no failures — throughput (ktxn/s)", 100, 0, true, false)
}

// Fig8b is the no-failure latency sweep (seconds).
func Fig8b() *Table {
	return fig8Sweep("fig8b", "Scalability, no failures — latency (s)", 100, 0, true, true)
}

// Fig8c is the single-failure throughput sweep (ktxn/s).
func Fig8c() *Table {
	return fig8Sweep("fig8c", "Scalability, single failure — throughput (ktxn/s)", 100, 1, true, false)
}

// Fig8d is the single-failure latency sweep (seconds).
func Fig8d() *Table {
	return fig8Sweep("fig8d", "Scalability, single failure — latency (s)", 100, 1, true, true)
}

func fig8Batch(id, title string, latency bool) *Table {
	cols := fig8Columns()
	t := &Table{ID: id, Title: title, Header: []string{"batch"}}
	for _, c := range cols {
		t.Header = append(t.Header, c.name)
	}
	const n = 32
	for _, b := range BatchSizes {
		row := []string{fmt.Sprint(b)}
		for _, c := range cols {
			res := flowsim.Evaluate(flowsim.Setup{
				Protocol: c.proto, N: n, Concurrent: c.m(n), BatchSize: b,
				Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC,
				OutOfOrder: true, Failures: 1,
			})
			if latency {
				row = append(row, seconds(res.Latency))
			} else {
				row = append(row, ktps(res.Throughput))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig8e is the batch-size throughput sweep at n=32 with one failure.
func Fig8e() *Table {
	return fig8Batch("fig8e", "Batching, single failure, n=32 — throughput (ktxn/s)", false)
}

// Fig8f is the batch-size latency sweep at n=32 with one failure.
func Fig8f() *Table {
	return fig8Batch("fig8f", "Batching, single failure, n=32 — latency (s)", true)
}

// Fig8g is the out-of-order-disabled throughput sweep.
func Fig8g() *Table {
	return fig8Sweep("fig8g", "Out-of-ordering disabled — throughput (ktxn/s)", 100, 0, false, false)
}

// Fig8h is the out-of-order-disabled latency sweep.
func Fig8h() *Table {
	return fig8Sweep("fig8h", "Out-of-ordering disabled — latency (s)", 100, 0, false, true)
}

// ---------------------------------------------------------------------------
// Fig. 9 — RCC as a paradigm
// ---------------------------------------------------------------------------

// Fig9 evaluates RCC-P, RCC-Z, and RCC-S (m = n, no failures).
func Fig9() *Table {
	t := &Table{
		ID:     "fig9",
		Title:  "RCC as a paradigm, m=n, no failures — throughput (ktxn/s) / latency (s)",
		Header: []string{"n", "RCC-P", "RCC-Z", "RCC-S", "latP", "latZ", "latS"},
	}
	protos := []flowsim.Protocol{flowsim.PBFT, flowsim.Zyzzyva, flowsim.SBFT}
	for _, n := range ReplicaCounts {
		row := []string{fmt.Sprint(n)}
		var lats []string
		for _, p := range protos {
			res := flowsim.Evaluate(flowsim.Setup{
				Protocol: p, N: n, Concurrent: n, BatchSize: 100,
				Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC,
				OutOfOrder: true,
			})
			row = append(row, ktps(res.Throughput))
			lats = append(lats, seconds(res.Latency))
		}
		row = append(row, lats...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ---------------------------------------------------------------------------
// §V-E summary ratios
// ---------------------------------------------------------------------------

// Summary computes the §V-E headline ratios ("RCC achieves up to X× higher
// throughput than ...") from the Fig. 8 sweeps.
func Summary() *Table {
	t := &Table{
		ID:     "summary",
		Title:  "Peak RCC advantage across n ∈ {4..91} (paper: fail 2.77/1.53/38/82; no-fail 2/1.83/33/1.45)",
		Header: []string{"baseline", "no-failure ×", "single-failure ×"},
	}
	ratio := func(p flowsim.Protocol, fail int) float64 {
		best := 0.0
		for _, n := range ReplicaCounts {
			rcc := flowsim.Evaluate(flowsim.Setup{
				Protocol: flowsim.PBFT, N: n, Concurrent: n, BatchSize: 100,
				Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC,
				OutOfOrder: true, Failures: fail,
			}).Throughput
			other := flowsim.Evaluate(flowsim.Setup{
				Protocol: p, N: n, Concurrent: 1, BatchSize: 100,
				Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC,
				OutOfOrder: true, Failures: fail,
			}).Throughput
			if other > 0 && rcc/other > best {
				best = rcc / other
			}
		}
		return best
	}
	for _, p := range []struct {
		name  string
		proto flowsim.Protocol
	}{
		{"SBFT", flowsim.SBFT},
		{"PBFT", flowsim.PBFT},
		{"HotStuff", flowsim.HotStuff},
		{"Zyzzyva", flowsim.Zyzzyva},
	} {
		t.Rows = append(t.Rows, []string{
			p.name,
			fmt.Sprintf("%.2f", ratio(p.proto, 0)),
			fmt.Sprintf("%.2f", ratio(p.proto, 1)),
		})
	}
	return t
}

// All returns every flow-model experiment (the simnet-driven Fig. 6 and
// Fig. 10 live in their own files because they execute real protocol state
// machines).
func All() []*Table {
	return []*Table{
		Fig1(20), Fig1(400),
		Fig7Left(), Fig7Right(),
		Fig8a(), Fig8b(), Fig8c(), Fig8d(),
		Fig8e(), Fig8f(), Fig8g(), Fig8h(),
		Fig9(), Summary(),
	}
}
