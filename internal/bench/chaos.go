package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

// ChaosOptions parameterizes the chaos experiment.
type ChaosOptions struct {
	Seed     int64
	Nodes    int
	Duration time.Duration
	WAN      bool
	// ArtifactDir receives flight rings and the merged timeline when the
	// run fails (empty: no artifacts).
	ArtifactDir string
	// Verbose streams the fault driver's actions to stderr.
	Verbose bool
}

// Chaos runs the randomized fault harness over a live loopback-TCP cluster
// and reports the outcome as a table plus the full report (for the caller's
// exit code and failure listing). The schedule is a pure function of the
// seed: rerunning with the same seed and duration replays the same faults.
func Chaos(o ChaosOptions) (*Table, *chaos.Report, error) {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Minute
	}
	cfg := chaos.Config{
		Nodes:       o.Nodes,
		Duration:    o.Duration,
		Seed:        o.Seed,
		WAN:         o.WAN,
		ArtifactDir: o.ArtifactDir,
	}
	if o.Verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := chaos.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	verdict := "PASS"
	if !rep.Passed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(rep.Failures))
	}
	t := &Table{
		ID: "chaos",
		Title: fmt.Sprintf("chaos harness: randomized kill/wipe/partition/disk faults over %d live TCP replicas",
			rep.Nodes),
		Header: []string{"seed", "duration", "events", "acked", "height", "restarts", "wipes",
			"installs", "attested-rejoins", "verdict"},
		Rows: [][]string{{
			fmt.Sprintf("%d", rep.Seed),
			rep.Duration.String(),
			fmt.Sprintf("%d", len(rep.Schedule.Events)),
			fmt.Sprintf("%d", rep.Acked),
			fmt.Sprintf("%d", rep.Height),
			fmt.Sprintf("%d", rep.Restarts),
			fmt.Sprintf("%d", rep.Wipes),
			fmt.Sprintf("%d", rep.Installs),
			fmt.Sprintf("%d", rep.AttestedRejoins),
			verdict,
		}},
	}
	return t, rep, nil
}
