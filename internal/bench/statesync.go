package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/client"
	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/runtime"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/ycsb"
)

// StateSync measures the checkpoint-based catch-up subsystem end to end: a
// 4-replica durable cluster decides real YCSB transactions, one replica is
// taken down (and optionally wiped), and the experiment reports how fast
// the state transfer brings it back to the head — transfer throughput in
// MB/s and blocks/s, the operational numbers an operator sizes recovery
// windows with.
func StateSync() (*Table, error) {
	t := &Table{
		ID:    "statesync",
		Title: "checkpoint-based catch-up: transfer throughput (4 replicas, in-process transport)",
		Header: []string{"scenario", "records", "height", "snapshot-MB", "blocks-fetched",
			"transfer-s", "MB/s", "blocks/s"},
	}
	type scenario struct {
		name      string
		records   int
		blocks    int
		snapEvery uint64
		wipe      bool
	}
	for _, sc := range []scenario{
		// A wiped replica ships the latest snapshot (taken at height 48)
		// plus the 8-block suffix to the head.
		{"wiped (snapshot+range)", 200_000, 56, 16, true},
		// A lagging replica keeps its prefix and fetches only the range.
		{"lagging (range only)", 200_000, 48, 0, false},
	} {
		row, err := runStateSyncScenario(sc.name, sc.records, sc.blocks, sc.snapEvery, sc.wipe)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runStateSyncScenario(name string, records, blocks int, snapEvery uint64, wipe bool) ([]string, error) {
	base, err := os.MkdirTemp("", "rcc-statesync-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)

	const n = 4
	params, err := quorum.NewParams(n)
	if err != nil {
		return nil, err
	}
	hub := transport.NewMemory()
	mkReplica := func(id types.ReplicaID) (*runtime.Replica, error) {
		rep, err := runtime.New(runtime.Config{
			ID:     id,
			Params: params,
			Machine: pbft.New(pbft.Config{
				BatchSize: 1, Window: 16, ProgressTimeout: 30 * time.Second,
			}),
			App:     ycsb.NewStore(records),
			DataDir: filepath.Join(base, fmt.Sprintf("replica-%d", id)),
			Journaling: runtime.JournalOptions{
				Async:         true,
				SnapshotEvery: snapEvery,
			},
			ReplyToClients: true,
			StateSync: runtime.StateSyncOptions{
				Enabled:     true,
				OfferWait:   100 * time.Millisecond,
				Retry:       200 * time.Millisecond,
				SteadyProbe: 300 * time.Millisecond,
			},
		})
		if err != nil {
			return nil, err
		}
		rep.Attach(hub.AttachReplica(id, rep))
		rep.Run()
		return rep, nil
	}

	reps := make([]*runtime.Replica, n)
	for i := 0; i < n; i++ {
		if reps[i], err = mkReplica(types.ReplicaID(i)); err != nil {
			return nil, err
		}
	}
	stopAll := func() {
		for i, r := range reps {
			if r != nil {
				hub.Detach(types.ReplicaID(i))
				r.Stop()
			}
		}
	}
	defer stopAll()

	drive := func(cid types.ClientID, txns int) error {
		mach := client.New(client.Config{Client: cid, Broadcast: true, RetryTimeout: time.Second})
		wl := ycsb.NewWorkload(ycsb.WorkloadConfig{Records: records, Seed: int64(cid)})
		for i := 0; i < txns; i++ {
			mach.Submit(wl.Next(cid))
		}
		proc := runtime.NewClient(cid, params, mach)
		proc.Attach(hub.AttachClient(cid, proc))
		proc.Run()
		defer proc.Stop()
		return waitUntil(30*time.Second, func() bool { return len(mach.Completions()) == txns })
	}
	waitHeight := func(r *runtime.Replica, h uint64) error {
		return waitUntil(30*time.Second, func() bool { return r.Ledger().Height() == h })
	}

	if err := drive(1, blocks); err != nil {
		return nil, fmt.Errorf("driving workload: %w", err)
	}
	for _, r := range reps {
		if err := waitHeight(r, uint64(blocks)); err != nil {
			return nil, fmt.Errorf("cluster did not reach height %d", blocks)
		}
	}

	// Take replica 3 down; wipe it or let it lag behind a second burst.
	hub.Detach(3)
	reps[3].Stop()
	reps[3] = nil
	target := uint64(blocks)
	if wipe {
		if err := os.RemoveAll(filepath.Join(base, "replica-3")); err != nil {
			return nil, err
		}
	} else {
		if err := drive(2, blocks); err != nil {
			return nil, fmt.Errorf("driving lag workload: %w", err)
		}
		target = uint64(2 * blocks)
		for _, r := range reps[:3] {
			if err := waitHeight(r, target); err != nil {
				return nil, fmt.Errorf("live replicas did not reach height %d", target)
			}
		}
	}

	rep3, err := mkReplica(3)
	if err != nil {
		return nil, err
	}
	reps[3] = rep3
	if err := waitUntil(60*time.Second, func() bool {
		return rep3.Ledger().Height() == target && rep3.StateSync().Synced()
	}); err != nil {
		return nil, fmt.Errorf("replica did not catch up to height %d", target)
	}

	st := rep3.StateSync().Stats()
	secs := float64(st.TransferNanos) / 1e9
	bytes := float64(st.BytesFetched + st.RangeBytes)
	mbps, bps := 0.0, 0.0
	if secs > 0 {
		mbps = bytes / secs / 1e6
		bps = float64(st.BlocksFetched) / secs
	}
	return []string{
		name,
		fmt.Sprintf("%d", records),
		fmt.Sprintf("%d", target),
		fmt.Sprintf("%.2f", float64(st.BytesFetched)/1e6),
		fmt.Sprintf("%d", st.BlocksFetched),
		fmt.Sprintf("%.3f", secs),
		fmt.Sprintf("%.1f", mbps),
		fmt.Sprintf("%.0f", bps),
	}, nil
}

func waitUntil(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("condition not met within %v", d)
}
