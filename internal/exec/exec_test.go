package exec

import (
	"testing"

	"repro/internal/ledger"
	"repro/internal/types"
	"repro/internal/ycsb"
)

func batch(txns ...types.Transaction) *types.Batch { return &types.Batch{Txns: txns} }

func wtx(c types.ClientID, seq uint64, key uint32) types.Transaction {
	return types.Transaction{Client: c, Seq: seq, Op: ycsb.EncodeWrite(key, []byte("v"))}
}

func TestExecuteBatchCountsAndHashes(t *testing.T) {
	e := NewEngine(ycsb.NewStore(100), nil)
	res := e.ExecuteBatch(batch(wtx(1, 1, 1), wtx(1, 2, 2)), ledger.Proof{Round: 1})
	if res.TxnExecuted != 2 || e.Executed() != 2 {
		t.Fatalf("executed %d/%d", res.TxnExecuted, e.Executed())
	}
	if res.ResultHash.IsZero() || res.StateHash.IsZero() {
		t.Fatal("zero hashes")
	}
}

func TestIdenticalHistoriesProduceIdenticalResults(t *testing.T) {
	// §III-A determinism: same batches in the same order → same result
	// hashes and state hashes on independent replicas.
	mk := func() []Result {
		e := NewEngine(ycsb.NewStore(100), nil)
		var out []Result
		for r := types.Round(1); r <= 5; r++ {
			out = append(out, e.ExecuteBatch(batch(
				wtx(1, uint64(r)*2-1, uint32(r)),
				wtx(2, uint64(r), uint32(r+50)),
			), ledger.Proof{Round: r}))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].ResultHash != b[i].ResultHash || a[i].StateHash != b[i].StateHash {
			t.Fatalf("round %d diverges", i+1)
		}
	}
}

func TestOrderSensitivity(t *testing.T) {
	// Different execution orders must yield different state hashes when
	// the transactions conflict (that is the whole point of consensus).
	e1 := NewEngine(ycsb.NewStore(100), nil)
	e2 := NewEngine(ycsb.NewStore(100), nil)
	a := types.Transaction{Client: 1, Seq: 1, Op: ycsb.EncodeWrite(7, []byte("from-a"))}
	b := types.Transaction{Client: 2, Seq: 1, Op: ycsb.EncodeWrite(7, []byte("from-b"))}
	r1 := e1.ExecuteBatch(batch(a, b), ledger.Proof{})
	r2 := e2.ExecuteBatch(batch(b, a), ledger.Proof{})
	if r1.StateHash == r2.StateHash {
		t.Fatal("conflicting orders produced identical state")
	}
}

func TestJournalling(t *testing.T) {
	l := ledger.New()
	e := NewEngine(ycsb.NewStore(100), l)
	res := e.ExecuteBatch(batch(wtx(1, 1, 3)), ledger.Proof{Instance: 2, Round: 9})
	if res.Block == nil {
		t.Fatal("no block journalled")
	}
	if l.Height() != 1 || l.Head().Proof.Round != 9 {
		t.Fatal("ledger state wrong")
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNilJournalIsFine(t *testing.T) {
	e := NewEngine(ycsb.NewStore(10), nil)
	if res := e.ExecuteBatch(batch(wtx(1, 1, 1)), ledger.Proof{}); res.Block != nil {
		t.Fatal("block produced without a journal")
	}
}

// asyncLedger wraps the in-memory ledger with a deferred-completion journal
// — the shape internal/store provides in async mode.
type asyncLedger struct {
	l       *ledger.Ledger
	pending []func(error)
}

func (a *asyncLedger) Append(b *types.Batch, p ledger.Proof, s types.Digest) *ledger.Block {
	return a.l.Append(b, p, s)
}

func (a *asyncLedger) AppendAsync(b *types.Batch, p ledger.Proof, s types.Digest, done func(error)) *ledger.Block {
	blk := a.l.Append(b, p, s)
	a.pending = append(a.pending, done)
	return blk
}

func (a *asyncLedger) complete(err error) {
	for _, done := range a.pending {
		done(err)
	}
	a.pending = nil
}

func TestExecuteBatchAsyncDefersCompletion(t *testing.T) {
	aj := &asyncLedger{l: ledger.New()}
	e := NewEngine(ycsb.NewStore(100), aj)
	var got []Result
	res := e.ExecuteBatchAsync(batch(wtx(1, 1, 3)), ledger.Proof{Round: 4}, func(r Result, err error) {
		if err != nil {
			t.Errorf("completion error: %v", err)
		}
		got = append(got, r)
	})
	if res.Block == nil {
		t.Fatal("no block journalled")
	}
	if len(got) != 0 {
		t.Fatal("completion fired before the journal reported durable")
	}
	aj.complete(nil)
	if len(got) != 1 {
		t.Fatalf("%d completions, want 1", len(got))
	}
	if got[0].ResultHash != res.ResultHash || got[0].Round != res.Round {
		t.Fatal("completion result differs from the returned result")
	}
	if got[0].Block != nil {
		t.Fatal("completion result must not carry the block")
	}
}

func TestExecuteBatchAsyncSyncJournalCompletesInline(t *testing.T) {
	l := ledger.New()
	e := NewEngine(ycsb.NewStore(100), l)
	fired := false
	res := e.ExecuteBatchAsync(batch(wtx(1, 1, 3)), ledger.Proof{Round: 1}, func(r Result, err error) {
		fired = true
		if err != nil {
			t.Errorf("completion error: %v", err)
		}
	})
	if !fired {
		t.Fatal("plain journal must complete inline")
	}
	if res.Block == nil || l.Height() != 1 {
		t.Fatal("block not journalled")
	}
}

func TestExecuteBatchAsyncNilJournalCompletesInline(t *testing.T) {
	e := NewEngine(ycsb.NewStore(10), nil)
	fired := false
	e.ExecuteBatchAsync(batch(wtx(1, 1, 1)), ledger.Proof{}, func(Result, error) { fired = true })
	if !fired {
		t.Fatal("nil journal must complete inline")
	}
}
