package exec

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/ledger"
	"repro/internal/types"
	"repro/internal/ycsb"
)

// newPerturbedEngine builds an engine whose pool scheduling is actively
// hostile to accidental determinism: group dispatch order is shuffled and
// workers sleep a random few microseconds before each group, so completion
// order varies run to run. Results must not.
func newPerturbedEngine(app Application, workers int, seed int64) *Engine {
	e := NewEngineOpts(app, nil, Options{Workers: workers, MinParallel: 2})
	if workers > 1 {
		rng := rand.New(rand.NewSource(seed))
		var mu sync.Mutex
		e.shuffleDispatch = func(order []int) {
			mu.Lock()
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			mu.Unlock()
		}
		e.perturb = func() {
			mu.Lock()
			d := time.Duration(rng.Intn(20)) * time.Microsecond
			mu.Unlock()
			time.Sleep(d)
		}
	}
	return e
}

// ycsbRounds builds a deterministic sequence of mixed read/write batches
// with a Zipfian key distribution (plenty of conflicts AND plenty of
// parallelism in every batch).
func ycsbRounds(rounds, batchSize int) []*types.Batch {
	wl := ycsb.NewWorkload(ycsb.WorkloadConfig{Records: 256, WriteRatio: 0.7, FieldLen: 8, Seed: 42})
	out := make([]*types.Batch, rounds)
	for r := range out {
		out[r] = wl.NextBatch(types.ClientID(r%13+1), batchSize)
	}
	return out
}

// bankRounds builds batches of conditional transfers over a small account
// set: heavy conflicts whose outcomes are order-sensitive (Example IV.1).
func bankRounds(rounds, batchSize int) []*types.Batch {
	rng := rand.New(rand.NewSource(7))
	out := make([]*types.Batch, rounds)
	seq := uint64(0)
	for r := range out {
		b := &types.Batch{Txns: make([]types.Transaction, 0, batchSize)}
		for i := 0; i < batchSize; i++ {
			seq++
			t := bank.Transfer{
				From:      fmt.Sprintf("acct-%02d", rng.Intn(48)),
				To:        fmt.Sprintf("acct-%02d", rng.Intn(48)),
				Threshold: int64(rng.Intn(200)),
				Amount:    int64(rng.Intn(50)),
			}
			b.Txns = append(b.Txns, types.Transaction{Client: 1, Seq: seq, Op: t.Encode()})
		}
		out[r] = b
	}
	return out
}

func bankOpening() map[string]int64 {
	opening := make(map[string]int64, 48)
	for i := 0; i < 48; i++ {
		opening[fmt.Sprintf("acct-%02d", i)] = 500
	}
	return opening
}

// digests runs every round through a fresh engine and returns the
// ResultHash/StateHash sequence.
func digests(e *Engine, rounds []*types.Batch) []Result {
	defer e.Close()
	out := make([]Result, len(rounds))
	for i, b := range rounds {
		out[i] = e.ExecuteBatch(b, ledger.Proof{Round: types.Round(i + 1)})
	}
	return out
}

func requireSameResults(t *testing.T, want, got []Result, label string) {
	t.Helper()
	for i := range want {
		if want[i].ResultHash != got[i].ResultHash {
			t.Fatalf("%s: round %d ResultHash diverges from serial", label, i+1)
		}
		if want[i].StateHash != got[i].StateHash {
			t.Fatalf("%s: round %d StateHash diverges from serial", label, i+1)
		}
	}
}

// TestParallelDeterminismAcrossWorkerCounts is the cross-replica
// determinism property: the same unified rounds executed with workers=1,
// 4, and 32 — under shuffled dispatch and jittered worker scheduling —
// must produce identical ResultHash and StateDigest sequences. One
// replica's worker-count knob must never show in its replies.
func TestParallelDeterminismAcrossWorkerCounts(t *testing.T) {
	const rounds, batchSize = 40, 96
	ycsbBatches := ycsbRounds(rounds, batchSize)
	bankBatches := bankRounds(rounds, batchSize)

	serialY := digests(NewEngine(ycsb.NewStore(256), nil), ycsbBatches)
	serialB := digests(NewEngine(bank.New(bankOpening()), nil), bankBatches)

	for _, workers := range []int{1, 4, 32} {
		for seed := int64(0); seed < 3; seed++ {
			label := fmt.Sprintf("ycsb/workers=%d/seed=%d", workers, seed)
			got := digests(newPerturbedEngine(ycsb.NewStore(256), workers, seed), ycsbBatches)
			requireSameResults(t, serialY, got, label)

			label = fmt.Sprintf("bank/workers=%d/seed=%d", workers, seed)
			got = digests(newPerturbedEngine(bank.New(bankOpening()), workers, seed), bankBatches)
			requireSameResults(t, serialB, got, label)
		}
	}
}

// TestHotKeyAdversarialSerialization is the conflict-heavy adversary:
// every transaction touches one hot record, so the whole batch is a single
// conflict component and MUST serialize in batch order — the read results
// (which expose order directly) and all digests must match the serial
// engine exactly.
func TestHotKeyAdversarialSerialization(t *testing.T) {
	const rounds, batchSize = 10, 64
	const hot = uint32(9)
	rng := rand.New(rand.NewSource(3))
	batches := make([]*types.Batch, rounds)
	seq := uint64(0)
	for r := range batches {
		b := &types.Batch{}
		for i := 0; i < batchSize; i++ {
			seq++
			var op []byte
			if rng.Intn(3) == 0 {
				op = ycsb.EncodeRead(hot)
			} else {
				val := make([]byte, 8)
				rng.Read(val)
				op = ycsb.EncodeWrite(hot, val)
			}
			b.Txns = append(b.Txns, types.Transaction{Client: 2, Seq: seq, Op: op})
		}
		batches[r] = b
	}
	serial := digests(NewEngine(ycsb.NewStore(64), nil), batches)
	parallel := digests(newPerturbedEngine(ycsb.NewStore(64), 8, 1), batches)
	requireSameResults(t, serial, parallel, "hot-key")
}

// barrierApp exercises the unknown-footprint path: ops with code 2 report
// ok=false from Keys and read ALL records (order-sensitive against every
// write), so they are only correct if the engine runs them alone between
// parallel groups.
type barrierApp struct {
	vals   []uint64
	global uint64
}

func (a *barrierApp) Execute(tx types.Transaction) []byte {
	switch tx.Op[0] {
	case 1: // write vals[Op[1]]
		idx := int(tx.Op[1]) % len(a.vals)
		old := a.vals[idx]
		a.vals[idx] = old*31 + uint64(tx.Op[2]) + 1
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, old)
		return out
	default: // barrier: fold the whole table into the global accumulator
		sum := a.global * 1099511628211
		for _, v := range a.vals {
			sum += v
		}
		a.global = sum
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, sum)
		return out
	}
}

func (a *barrierApp) Keys(tx types.Transaction, buf []types.StateKey) ([]types.StateKey, bool) {
	if tx.Op[0] == 1 {
		return append(buf, types.StateKey(int(tx.Op[1])%len(a.vals))), true
	}
	return buf, false
}

func (a *barrierApp) StateDigest() types.Digest {
	buf := make([]byte, 0, 8*(len(a.vals)+1))
	buf = binary.BigEndian.AppendUint64(buf, a.global)
	for _, v := range a.vals {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	return types.Hash(buf)
}

// TestUnknownFootprintBarrier mixes full-state transactions (Keys returns
// ok=false) into parallel batches and checks the outcome still matches the
// serial engine: barriers split the batch into segments and run alone.
func TestUnknownFootprintBarrier(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const rounds, batchSize = 12, 80
	batches := make([]*types.Batch, rounds)
	seq := uint64(0)
	for r := range batches {
		b := &types.Batch{}
		for i := 0; i < batchSize; i++ {
			seq++
			var op []byte
			if rng.Intn(10) == 0 {
				op = []byte{2}
			} else {
				op = []byte{1, byte(rng.Intn(64)), byte(rng.Intn(256))}
			}
			b.Txns = append(b.Txns, types.Transaction{Client: 3, Seq: seq, Op: op})
		}
		batches[r] = b
	}
	mk := func() *barrierApp { return &barrierApp{vals: make([]uint64, 64)} }
	serial := digests(NewEngine(mk(), nil), batches)
	parallel := digests(newPerturbedEngine(mk(), 8, 5), batches)
	requireSameResults(t, serial, parallel, "barrier")
}

// TestNoOpFootprintsAreEmpty pins the contract both applications rely on:
// no-ops and malformed payloads execute statelessly and declare empty
// footprints, so they never serialize an otherwise conflict-free batch.
func TestNoOpFootprintsAreEmpty(t *testing.T) {
	apps := []Application{ycsb.NewStore(16), bank.New(nil)}
	for _, app := range apps {
		noop := types.NoOp()
		if keys, ok := app.Keys(noop, nil); !ok || len(keys) != 0 {
			t.Fatalf("%T: no-op footprint = %v, %v; want empty, true", app, keys, ok)
		}
		bad := types.Transaction{Client: 1, Seq: 1, Op: []byte{0xde}}
		if keys, ok := app.Keys(bad, nil); !ok || len(keys) != 0 {
			t.Fatalf("%T: malformed footprint = %v, %v; want empty, true", app, keys, ok)
		}
	}
}

// TestExecutedCounterRaceSafe drives the engine while another goroutine
// polls Executed() — the metrics scrape path — and a Restore lands between
// batches. Run under -race this pins the atomic counter fix.
func TestExecutedCounterRaceSafe(t *testing.T) {
	e := NewEngineOpts(ycsb.NewStore(128), nil, Options{Workers: 4, MinParallel: 2})
	defer e.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Executed()
			}
		}
	}()
	rounds := ycsbRounds(30, 64)
	for i, b := range rounds {
		e.ExecuteBatch(b, ledger.Proof{Round: types.Round(i + 1)})
		if i == len(rounds)/2 {
			e.Restore(e.Executed()) // restart replay primes the counter
		}
	}
	close(stop)
	wg.Wait()
	var want uint64
	for _, b := range rounds {
		want += uint64(len(b.Txns))
	}
	if got := e.Executed(); got != want {
		t.Fatalf("executed %d, want %d", got, want)
	}
}

// TestParallelEngineCountsExecuted checks the counter (which feeds
// ResultHash) advances identically on serial and parallel engines.
func TestParallelEngineCountsExecuted(t *testing.T) {
	rounds := ycsbRounds(5, 33)
	es := NewEngine(ycsb.NewStore(256), nil)
	ep := newPerturbedEngine(ycsb.NewStore(256), 8, 2)
	defer ep.Close()
	for i, b := range rounds {
		rs := es.ExecuteBatch(b, ledger.Proof{Round: types.Round(i + 1)})
		rp := ep.ExecuteBatch(b, ledger.Proof{Round: types.Round(i + 1)})
		if rs.ResultHash != rp.ResultHash {
			t.Fatalf("round %d: ResultHash diverges", i+1)
		}
	}
	if es.Executed() != ep.Executed() {
		t.Fatalf("executed counters diverge: %d vs %d", es.Executed(), ep.Executed())
	}
}
