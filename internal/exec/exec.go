// Package exec defines the deterministic execution engine replicas run
// after consensus. Transactions must be deterministic: on identical inputs,
// execution must always produce identical outcomes (§III-A), which is what
// lets nf matching client replies prove correctness.
//
// The engine executes each unified round either serially (the paper's
// baseline — Fig. 7 left shows the resulting 217 ktxn/s execution ceiling)
// or on a bounded worker pool. Parallel execution is conflict-aware: the
// Application declares each transaction's state-key footprint via Keys, the
// engine partitions the batch into connected components of the conflict
// graph (union-find over shared keys), and each component executes on one
// worker in batch order. Components are disjoint by construction, so the
// final state and every per-transaction result are independent of worker
// count and scheduling, and ResultHash/StateDigest stay byte-identical to
// the serial engine on every replica.
package exec

import (
	"encoding/binary"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/types"
)

// StateKey aliases types.StateKey, the unit of conflict detection.
// Applications live below exec in the import graph and use types.StateKey
// directly; engine-facing code can use either name.
type StateKey = types.StateKey

// Application is a deterministic state machine with a declared conflict
// model. Two transactions conflict when their key sets intersect; the
// engine may call Execute concurrently for transactions whose footprints
// are disjoint, so implementations must make Execute safe under that
// contract (per-shard locking, atomic counters, or naturally disjoint
// writes). Transactions that DO conflict are always executed one at a
// time, in batch order, on a single goroutine.
type Application interface {
	// Execute applies tx and returns its result bytes. Calls may be
	// concurrent only for transactions with disjoint Keys footprints.
	Execute(tx types.Transaction) []byte
	// Keys appends tx's state-key footprint to buf and reports whether
	// the footprint is known. Returning ok=false declares an unknown
	// footprint: the engine treats tx as a barrier that conflicts with
	// everything and executes it alone between parallel groups (any keys
	// appended before returning false are discarded). An empty footprint
	// with ok=true means tx touches no shared state (e.g. a no-op or a
	// malformed payload the application rejects without mutating state).
	//
	// Keys must be pure (no state mutation) and deterministic, and is
	// only ever called from the engine's submitting goroutine.
	Keys(tx types.Transaction, buf []types.StateKey) ([]types.StateKey, bool)
	// StateDigest returns a digest of the current application state.
	StateDigest() types.Digest
}

// Simulated per-transaction CPU costs derived from Fig. 7 left: a replica
// can receive + reply to 551 ktxn/s but only fully execute 217 ktxn/s.
const (
	// CostExecutePerTxn is the sequential execution cost of one txn
	// (1/217k s).
	CostExecutePerTxn = 4600 * time.Nanosecond
	// CostClientIOPerTxn is the receive-request + send-reply handling
	// cost of one txn (1/551k s).
	CostClientIOPerTxn = 1815 * time.Nanosecond
)

// Result describes the outcome of executing one batch.
type Result struct {
	Round       types.Round
	Instance    types.InstanceID
	ResultHash  types.Digest // digest over all per-txn results
	StateHash   types.Digest // application state digest after the batch
	Block       *ledger.Block
	TxnExecuted int
}

// Journal is where the engine appends executed blocks. *ledger.Ledger is
// the in-memory implementation; the durable storage subsystem
// (internal/store wired through internal/runtime) provides a WAL-backed
// one. Pass an untyped nil to skip journalling.
type Journal interface {
	Append(batch *types.Batch, proof ledger.Proof, state types.Digest) *ledger.Block
}

// AsyncJournal is the pipelined journal surface: AppendAsync returns as
// soon as the block joins the chain and the record is handed to the
// journal's committer; done fires exactly once — possibly before
// AppendAsync returns — with nil once the record is durable, or with the
// journal's sticky error, after which the block must not be acknowledged
// to clients. Implementations may run done on a background goroutine.
type AsyncJournal interface {
	Journal
	AppendAsync(batch *types.Batch, proof ledger.Proof, state types.Digest, done func(err error)) *ledger.Block
}

// Options tunes the engine's parallel executor.
type Options struct {
	// Workers bounds total execution concurrency for one batch,
	// including the submitting goroutine (which executes one group while
	// the pool handles the rest). 0 means GOMAXPROCS; 1 disables the
	// pool and reproduces the serial engine exactly.
	Workers int
	// MinParallel is the smallest batch (and conflict-free segment)
	// worth planning and fanning out; smaller ones execute inline.
	// 0 means DefaultMinParallel.
	MinParallel int
}

// DefaultMinParallel is the Options.MinParallel default: below this many
// transactions the fixed planning + handoff cost outweighs any win.
const DefaultMinParallel = 8

// Engine applies ordered batches to an Application and journals them.
//
// Batches are submitted from a single goroutine at a time (the replica's
// event loop); the engine fans work out internally. Executed and
// StateDigest may be called concurrently with execution.
type Engine struct {
	app      Application
	journal  Journal
	executed atomic.Uint64
	met      *obs.NodeMetrics

	workers     int
	minParallel int

	// Worker pool, started lazily on the first parallel batch.
	poolOnce sync.Once
	tasks    chan []int32
	closed   bool
	batchWG  sync.WaitGroup

	// Per-batch planner scratch, reused across batches. Only the
	// submitting goroutine touches these except digests/curTxns, which
	// workers access for disjoint indices after a channel-send
	// happens-before edge.
	curTxns   []types.Transaction
	digests   []types.Digest
	hashBuf   []byte
	keys      []types.StateKey
	keyOff    []int32
	barrier   []bool
	parent    []int32
	compSize  []int32
	rootChunk []int32
	rootList  []int32
	load      []int32
	chunks    [][]int32
	table     conflictTable

	// Test hooks: perturb runs on a worker before each group (inject
	// scheduling jitter); shuffleDispatch permutes the order groups are
	// handed to the pool. Both must be set before the first batch.
	perturb         func()
	shuffleDispatch func(order []int)
}

// SetMetrics attaches the replica's instrument catalog: the engine feeds
// the execute- and journal-stage latency histograms. Nil (the default)
// disables instrumentation.
func (e *Engine) SetMetrics(m *obs.NodeMetrics) { e.met = m }

// NewEngine creates a serial engine over app, journalling into j (which
// may be nil to skip journalling, e.g. in micro-benchmarks). Equivalent to
// NewEngineOpts with Options{Workers: 1}.
func NewEngine(app Application, j Journal) *Engine {
	return NewEngineOpts(app, j, Options{Workers: 1})
}

// NewEngineOpts creates an engine with an explicit parallel-execution
// configuration. Call Close when done with a parallel engine to release
// its worker pool.
func NewEngineOpts(app Application, j Journal, opts Options) *Engine {
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.MinParallel <= 0 {
		opts.MinParallel = DefaultMinParallel
	}
	return &Engine{app: app, journal: j, workers: opts.Workers, minParallel: opts.MinParallel}
}

// Workers reports the engine's configured execution concurrency.
func (e *Engine) Workers() int { return e.workers }

// Close stops the worker pool (if one was started). The engine must be
// idle; no Execute* call may be in flight or follow.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.tasks != nil {
		close(e.tasks)
	}
}

// ExecuteBatch applies every transaction of batch and returns the combined
// result. proof records why the batch is final.
func (e *Engine) ExecuteBatch(batch *types.Batch, proof ledger.Proof) Result {
	res := e.execute(batch, proof)
	if e.journal != nil {
		res.Block = e.appendSync(batch, proof, res.StateHash)
	}
	return res
}

// appendSync journals one block synchronously, feeding the journal-stage
// histogram (submit → durable is one fsync-inclusive call here).
func (e *Engine) appendSync(batch *types.Batch, proof ledger.Proof, state types.Digest) *ledger.Block {
	if e.met == nil {
		return e.journal.Append(batch, proof, state)
	}
	start := time.Now()
	blk := e.journal.Append(batch, proof, state)
	e.met.ObserveStage(obs.StageJournal, time.Since(start))
	return blk
}

// ExecuteBatchAsync is ExecuteBatch over the pipelined commit path: when
// the journal implements AsyncJournal the block is handed off without
// waiting for the disk and done fires once the record is durable (or the
// journal failed); with a plain journal — or none — the append is
// synchronous and done fires inline before ExecuteBatchAsync returns.
//
// done receives the Result by value WITHOUT the Block field — the returned
// Result carries it — because done may run on the journal's committer
// goroutine concurrently with this method's return. Acknowledge clients
// from done, never from the returned Result: the return only means
// "executed", done means "durable".
func (e *Engine) ExecuteBatchAsync(batch *types.Batch, proof ledger.Proof, done func(res Result, err error)) Result {
	res := e.execute(batch, proof)
	if aj, ok := e.journal.(AsyncJournal); ok {
		notify := res // value copy: Block stays unset for the callback
		if met := e.met; met != nil {
			submitted := time.Now()
			res.Block = aj.AppendAsync(batch, proof, res.StateHash, func(err error) {
				met.ObserveStage(obs.StageJournal, time.Since(submitted))
				done(notify, err)
			})
			return res
		}
		res.Block = aj.AppendAsync(batch, proof, res.StateHash, func(err error) { done(notify, err) })
		return res
	}
	if e.journal != nil {
		res.Block = e.appendSync(batch, proof, res.StateHash)
	}
	notify := res
	notify.Block = nil
	done(notify, nil)
	return res
}

// execute applies every transaction of batch and assembles the result,
// leaving journalling to the caller. The per-transaction results — and
// therefore ResultHash and the application state — are identical whether
// the batch ran serially or across the pool.
func (e *Engine) execute(batch *types.Batch, proof ledger.Proof) Result {
	var start time.Time
	if e.met != nil {
		start = time.Now()
	}
	n := len(batch.Txns)
	if cap(e.digests) < n {
		e.digests = make([]types.Digest, n)
	}
	e.digests = e.digests[:n]
	if e.workers <= 1 || n < e.minParallel {
		for i := range batch.Txns {
			e.execOne(batch.Txns, i)
		}
	} else {
		e.executeParallel(batch.Txns)
	}
	// Assemble the result hash in batch order — the merge order is fixed
	// by transaction index, never by completion order. The per-txn digests
	// themselves were computed on whichever goroutine executed the txn
	// (hashing each result is the serial assembly's dominant cost, and it
	// parallelizes for free alongside execution).
	h := e.hashBuf[:0]
	for i := 0; i < n; i++ {
		h = append(h, e.digests[i][:]...)
	}
	total := e.executed.Add(uint64(n))
	var count [8]byte
	binary.BigEndian.PutUint64(count[:], total)
	h = append(h, count[:]...)
	e.hashBuf = h[:0]
	if e.met != nil {
		e.met.ObserveStage(obs.StageExecute, time.Since(start))
	}
	return Result{
		Round:       proof.Round,
		Instance:    proof.Instance,
		ResultHash:  types.Hash(h),
		StateHash:   e.app.StateDigest(),
		TxnExecuted: n,
	}
}

// executeParallel plans and runs one batch across the pool: collect
// footprints, union transactions sharing a key, split at barriers, pack
// components onto ≤Workers groups, fan out, join.
func (e *Engine) executeParallel(txns []types.Transaction) {
	n := len(txns)
	e.growScratch(n)

	// Footprint pass.
	keys := e.keys[:0]
	for i := range txns {
		e.barrier[i] = false
		prev := len(keys)
		var ok bool
		keys, ok = e.app.Keys(txns[i], keys)
		if !ok {
			keys = keys[:prev] // discard a partial footprint
			e.barrier[i] = true
		}
		e.keyOff[i+1] = int32(len(keys))
	}
	e.keys = keys

	// Conflict graph: union transactions sharing any key. The component
	// root is always the smallest member index, so components are
	// identified deterministically by their first transaction.
	for i := range txns {
		e.parent[i] = int32(i)
	}
	e.table.reset(len(keys))
	for i := 0; i < n; i++ {
		for _, k := range keys[e.keyOff[i]:e.keyOff[i+1]] {
			if owner, found := e.table.claim(k, int32(i)); found {
				e.union(int32(i), owner)
			}
		}
	}

	// Barrier transactions split the batch into segments; each segment
	// fans out, each barrier runs alone in between. Batch order across
	// the split is preserved, so a component straddling a barrier still
	// executes its members in order.
	segStart := 0
	for segStart < n {
		segEnd := segStart
		for segEnd < n && !e.barrier[segEnd] {
			segEnd++
		}
		if segEnd > segStart {
			e.runSegment(txns, segStart, segEnd)
		}
		if segEnd < n { // the barrier itself
			e.execOne(txns, segEnd)
			segEnd++
		}
		segStart = segEnd
	}
}

// growScratch sizes the per-batch planner arrays for n transactions.
func (e *Engine) growScratch(n int) {
	if cap(e.keyOff) < n+1 {
		e.keyOff = make([]int32, n+1)
		e.barrier = make([]bool, n)
		e.parent = make([]int32, n)
		e.compSize = make([]int32, n)  // zeroed; kept zeroed between segments
		e.rootChunk = make([]int32, n) // -1 when unassigned; restored after use
		for i := range e.rootChunk {
			e.rootChunk[i] = -1
		}
	}
	e.keyOff = e.keyOff[:n+1]
	e.barrier = e.barrier[:n]
	e.parent = e.parent[:n]
	e.compSize = e.compSize[:n]
	e.rootChunk = e.rootChunk[:n]
	if e.chunks == nil {
		e.chunks = make([][]int32, e.workers)
		e.load = make([]int32, e.workers)
	}
}

// find returns the component root of i with path halving.
func (e *Engine) find(i int32) int32 {
	for e.parent[i] != i {
		e.parent[i] = e.parent[e.parent[i]]
		i = e.parent[i]
	}
	return i
}

// union merges the components of a and b, keeping the smaller index as
// root so the root is deterministic (the component's first transaction).
func (e *Engine) union(a, b int32) {
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		e.parent[rb] = ra
	} else {
		e.parent[ra] = rb
	}
}

// runSegment executes txns[lo:hi] — a barrier-free range — by packing its
// conflict components onto up to Workers groups and fanning out. Packing
// is greedy least-loaded over components in first-appearance order:
// deterministic, though correctness only needs components to stay whole.
func (e *Engine) runSegment(txns []types.Transaction, lo, hi int) {
	if hi-lo < e.minParallel {
		for i := lo; i < hi; i++ {
			e.execOne(txns, i)
		}
		return
	}
	// Pass 1: component sizes and first-appearance order.
	roots := e.rootList[:0]
	for i := lo; i < hi; i++ {
		r := e.find(int32(i))
		if e.compSize[r] == 0 {
			roots = append(roots, r)
		}
		e.compSize[r]++
	}
	e.rootList = roots[:0]
	if len(roots) == 1 { // fully conflicting segment: serialize
		e.compSize[roots[0]] = 0
		for i := lo; i < hi; i++ {
			e.execOne(txns, i)
		}
		return
	}
	// Pass 2: assign each component to the least-loaded group.
	w := e.workers
	if len(roots) < w {
		w = len(roots)
	}
	load := e.load[:w]
	for c := range load {
		load[c] = 0
		e.chunks[c] = e.chunks[c][:0]
	}
	for _, r := range roots {
		best := 0
		for c := 1; c < w; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		e.rootChunk[r] = int32(best)
		load[best] += e.compSize[r]
		e.compSize[r] = 0
	}
	// Pass 3: fill groups in batch order.
	for i := lo; i < hi; i++ {
		c := e.rootChunk[e.find(int32(i))]
		e.chunks[c] = append(e.chunks[c], int32(i))
	}
	for _, r := range roots {
		e.rootChunk[r] = -1
	}
	e.dispatch(txns, e.chunks[:w])
}

// dispatch fans groups out to the pool and joins. The submitting
// goroutine executes one group itself, so a pool of Workers-1 goroutines
// yields Workers-way concurrency.
func (e *Engine) dispatch(txns []types.Transaction, groups [][]int32) {
	e.curTxns = txns
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	if e.shuffleDispatch != nil {
		e.shuffleDispatch(order)
	}
	e.startPool()
	e.batchWG.Add(len(groups) - 1)
	for _, gi := range order[1:] {
		e.tasks <- groups[gi]
	}
	e.runGroup(groups[order[0]])
	e.batchWG.Wait()
}

// startPool lazily launches the Workers-1 pool goroutines.
func (e *Engine) startPool() {
	e.poolOnce.Do(func() {
		e.tasks = make(chan []int32, e.workers)
		for i := 1; i < e.workers; i++ {
			go e.workerLoop()
		}
	})
}

func (e *Engine) workerLoop() {
	for group := range e.tasks {
		e.runGroup(group)
		e.batchWG.Done()
	}
}

// runGroup executes one group's transactions in batch order. Groups hold
// whole conflict components, so writes to digests (and application state)
// from concurrent groups never overlap.
func (e *Engine) runGroup(group []int32) {
	if h := e.perturb; h != nil {
		h()
	}
	txns := e.curTxns
	for _, idx := range group {
		e.execOne(txns, int(idx))
	}
}

// execOne executes txns[i] and records its result digest. ResultHash only
// ever consumes the per-txn digests, so hashing here — on the executing
// goroutine — keeps the submitting goroutine's assembly to a copy loop.
func (e *Engine) execOne(txns []types.Transaction, i int) {
	e.digests[i] = types.Hash(e.app.Execute(txns[i]))
}

// Executed returns the total number of transactions executed. Safe to call
// concurrently with execution (metrics scrapes, tests).
func (e *Engine) Executed() uint64 { return e.executed.Load() }

// Restore primes the executed-transaction counter after a restart replay.
// The counter feeds ResultHash, so a restarted replica must resume it to
// produce client replies identical to peers that never crashed.
func (e *Engine) Restore(executed uint64) { e.executed.Store(executed) }

// StateDigest exposes the application state digest.
func (e *Engine) StateDigest() types.Digest { return e.app.StateDigest() }

// conflictTable maps StateKey → first claiming transaction for one batch.
// Open addressing with a generation stamp per slot, so reset is O(1) and
// the table is reused allocation-free across batches (a Go map here costs
// a hash+bucket walk per key plus a full clear per batch).
type conflictTable struct {
	slots []tableSlot
	mask  uint64
	gen   uint32
}

type tableSlot struct {
	key   types.StateKey
	owner int32
	gen   uint32
}

// reset prepares the table for a batch with totalKeys keys.
func (t *conflictTable) reset(totalKeys int) {
	want := 1 << bits.Len(uint(totalKeys*2)) // load factor ≤ 0.5
	if want < 64 {
		want = 64
	}
	if len(t.slots) < want {
		t.slots = make([]tableSlot, want)
		t.mask = uint64(want - 1)
		t.gen = 1
		return
	}
	t.gen++
	if t.gen == 0 { // wrapped: stale stamps could collide, clear once
		for i := range t.slots {
			t.slots[i] = tableSlot{}
		}
		t.gen = 1
	}
}

// claim records txn as the latest owner of key. If the key was already
// claimed this batch, it returns the previous owner and found=true.
func (t *conflictTable) claim(key types.StateKey, txn int32) (owner int32, found bool) {
	// splitmix64 finalizer: StateKeys may be raw small integers (record
	// indices), so scramble before masking.
	h := uint64(key)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.gen != t.gen { // free slot
			*s = tableSlot{key: key, owner: txn, gen: t.gen}
			return 0, false
		}
		if s.key == key {
			owner = s.owner
			s.owner = txn
			return owner, true
		}
	}
}
