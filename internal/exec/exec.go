// Package exec defines the deterministic execution engine replicas run
// after consensus. Transactions must be deterministic: on identical inputs,
// execution must always produce identical outcomes (§III-A), which is what
// lets nf matching client replies prove correctness.
package exec

import (
	"encoding/binary"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/types"
)

// Application is a deterministic state machine. Implementations need not be
// safe for concurrent use; the engine serializes execution (the paper's
// replicas execute sequentially — Fig. 7 left shows the resulting
// 217 ktxn/s execution ceiling).
type Application interface {
	// Execute applies tx and returns its result bytes.
	Execute(tx types.Transaction) []byte
	// StateDigest returns a digest of the current application state.
	StateDigest() types.Digest
}

// Simulated per-transaction CPU costs derived from Fig. 7 left: a replica
// can receive + reply to 551 ktxn/s but only fully execute 217 ktxn/s.
const (
	// CostExecutePerTxn is the sequential execution cost of one txn
	// (1/217k s).
	CostExecutePerTxn = 4600 * time.Nanosecond
	// CostClientIOPerTxn is the receive-request + send-reply handling
	// cost of one txn (1/551k s).
	CostClientIOPerTxn = 1815 * time.Nanosecond
)

// Result describes the outcome of executing one batch.
type Result struct {
	Round       types.Round
	Instance    types.InstanceID
	ResultHash  types.Digest // digest over all per-txn results
	StateHash   types.Digest // application state digest after the batch
	Block       *ledger.Block
	TxnExecuted int
}

// Journal is where the engine appends executed blocks. *ledger.Ledger is
// the in-memory implementation; the durable storage subsystem
// (internal/store wired through internal/runtime) provides a WAL-backed
// one. Pass an untyped nil to skip journalling.
type Journal interface {
	Append(batch *types.Batch, proof ledger.Proof, state types.Digest) *ledger.Block
}

// AsyncJournal is the pipelined journal surface: AppendAsync returns as
// soon as the block joins the chain and the record is handed to the
// journal's committer; done fires exactly once — possibly before
// AppendAsync returns — with nil once the record is durable, or with the
// journal's sticky error, after which the block must not be acknowledged
// to clients. Implementations may run done on a background goroutine.
type AsyncJournal interface {
	Journal
	AppendAsync(batch *types.Batch, proof ledger.Proof, state types.Digest, done func(err error)) *ledger.Block
}

// Engine applies ordered batches to an Application and journals them.
type Engine struct {
	app      Application
	journal  Journal
	executed uint64
	met      *obs.NodeMetrics
}

// SetMetrics attaches the replica's instrument catalog: the engine feeds
// the execute- and journal-stage latency histograms. Nil (the default)
// disables instrumentation.
func (e *Engine) SetMetrics(m *obs.NodeMetrics) { e.met = m }

// NewEngine creates an engine over app, journalling into j (which may be
// nil to skip journalling, e.g. in micro-benchmarks).
func NewEngine(app Application, j Journal) *Engine {
	return &Engine{app: app, journal: j}
}

// ExecuteBatch applies every transaction of batch in order and returns the
// combined result. proof records why the batch is final.
func (e *Engine) ExecuteBatch(batch *types.Batch, proof ledger.Proof) Result {
	res := e.execute(batch, proof)
	if e.journal != nil {
		res.Block = e.appendSync(batch, proof, res.StateHash)
	}
	return res
}

// appendSync journals one block synchronously, feeding the journal-stage
// histogram (submit → durable is one fsync-inclusive call here).
func (e *Engine) appendSync(batch *types.Batch, proof ledger.Proof, state types.Digest) *ledger.Block {
	if e.met == nil {
		return e.journal.Append(batch, proof, state)
	}
	start := time.Now()
	blk := e.journal.Append(batch, proof, state)
	e.met.ObserveStage(obs.StageJournal, time.Since(start))
	return blk
}

// ExecuteBatchAsync is ExecuteBatch over the pipelined commit path: when
// the journal implements AsyncJournal the block is handed off without
// waiting for the disk and done fires once the record is durable (or the
// journal failed); with a plain journal — or none — the append is
// synchronous and done fires inline before ExecuteBatchAsync returns.
//
// done receives the Result by value WITHOUT the Block field — the returned
// Result carries it — because done may run on the journal's committer
// goroutine concurrently with this method's return. Acknowledge clients
// from done, never from the returned Result: the return only means
// "executed", done means "durable".
func (e *Engine) ExecuteBatchAsync(batch *types.Batch, proof ledger.Proof, done func(res Result, err error)) Result {
	res := e.execute(batch, proof)
	if aj, ok := e.journal.(AsyncJournal); ok {
		notify := res // value copy: Block stays unset for the callback
		if met := e.met; met != nil {
			submitted := time.Now()
			res.Block = aj.AppendAsync(batch, proof, res.StateHash, func(err error) {
				met.ObserveStage(obs.StageJournal, time.Since(submitted))
				done(notify, err)
			})
			return res
		}
		res.Block = aj.AppendAsync(batch, proof, res.StateHash, func(err error) { done(notify, err) })
		return res
	}
	if e.journal != nil {
		res.Block = e.appendSync(batch, proof, res.StateHash)
	}
	notify := res
	notify.Block = nil
	done(notify, nil)
	return res
}

// execute applies every transaction of batch in order and assembles the
// result, leaving journalling to the caller.
func (e *Engine) execute(batch *types.Batch, proof ledger.Proof) Result {
	var start time.Time
	if e.met != nil {
		start = time.Now()
	}
	h := make([]byte, 0, 64)
	var count [8]byte
	for i := range batch.Txns {
		out := e.app.Execute(batch.Txns[i])
		d := types.Hash(out)
		h = append(h, d[:]...)
		e.executed++
	}
	binary.BigEndian.PutUint64(count[:], e.executed)
	if e.met != nil {
		e.met.ObserveStage(obs.StageExecute, time.Since(start))
	}
	return Result{
		Round:       proof.Round,
		Instance:    proof.Instance,
		ResultHash:  types.Hash(append(h, count[:]...)),
		StateHash:   e.app.StateDigest(),
		TxnExecuted: batch.Len(),
	}
}

// Executed returns the total number of transactions executed.
func (e *Engine) Executed() uint64 { return e.executed }

// Restore primes the executed-transaction counter after a restart replay.
// The counter feeds ResultHash, so a restarted replica must resume it to
// produce client replies identical to peers that never crashed.
func (e *Engine) Restore(executed uint64) { e.executed = executed }

// StateDigest exposes the application state digest.
func (e *Engine) StateDigest() types.Digest { return e.app.StateDigest() }
