// Package exec defines the deterministic execution engine replicas run
// after consensus. Transactions must be deterministic: on identical inputs,
// execution must always produce identical outcomes (§III-A), which is what
// lets nf matching client replies prove correctness.
package exec

import (
	"encoding/binary"
	"time"

	"repro/internal/ledger"
	"repro/internal/types"
)

// Application is a deterministic state machine. Implementations need not be
// safe for concurrent use; the engine serializes execution (the paper's
// replicas execute sequentially — Fig. 7 left shows the resulting
// 217 ktxn/s execution ceiling).
type Application interface {
	// Execute applies tx and returns its result bytes.
	Execute(tx types.Transaction) []byte
	// StateDigest returns a digest of the current application state.
	StateDigest() types.Digest
}

// Simulated per-transaction CPU costs derived from Fig. 7 left: a replica
// can receive + reply to 551 ktxn/s but only fully execute 217 ktxn/s.
const (
	// CostExecutePerTxn is the sequential execution cost of one txn
	// (1/217k s).
	CostExecutePerTxn = 4600 * time.Nanosecond
	// CostClientIOPerTxn is the receive-request + send-reply handling
	// cost of one txn (1/551k s).
	CostClientIOPerTxn = 1815 * time.Nanosecond
)

// Result describes the outcome of executing one batch.
type Result struct {
	Round       types.Round
	Instance    types.InstanceID
	ResultHash  types.Digest // digest over all per-txn results
	StateHash   types.Digest // application state digest after the batch
	Block       *ledger.Block
	TxnExecuted int
}

// Journal is where the engine appends executed blocks. *ledger.Ledger is
// the in-memory implementation; the durable storage subsystem
// (internal/store wired through internal/runtime) provides a WAL-backed
// one. Pass an untyped nil to skip journalling.
type Journal interface {
	Append(batch *types.Batch, proof ledger.Proof, state types.Digest) *ledger.Block
}

// Engine applies ordered batches to an Application and journals them.
type Engine struct {
	app      Application
	journal  Journal
	executed uint64
}

// NewEngine creates an engine over app, journalling into j (which may be
// nil to skip journalling, e.g. in micro-benchmarks).
func NewEngine(app Application, j Journal) *Engine {
	return &Engine{app: app, journal: j}
}

// ExecuteBatch applies every transaction of batch in order and returns the
// combined result. proof records why the batch is final.
func (e *Engine) ExecuteBatch(batch *types.Batch, proof ledger.Proof) Result {
	h := make([]byte, 0, 64)
	var count [8]byte
	for i := range batch.Txns {
		out := e.app.Execute(batch.Txns[i])
		d := types.Hash(out)
		h = append(h, d[:]...)
		e.executed++
	}
	binary.BigEndian.PutUint64(count[:], e.executed)
	res := Result{
		Round:       proof.Round,
		Instance:    proof.Instance,
		ResultHash:  types.Hash(append(h, count[:]...)),
		StateHash:   e.app.StateDigest(),
		TxnExecuted: batch.Len(),
	}
	if e.journal != nil {
		res.Block = e.journal.Append(batch, proof, res.StateHash)
	}
	return res
}

// Executed returns the total number of transactions executed.
func (e *Engine) Executed() uint64 { return e.executed }

// Restore primes the executed-transaction counter after a restart replay.
// The counter feeds ResultHash, so a restarted replica must resume it to
// produce client replies identical to peers that never crashed.
func (e *Engine) Restore(executed uint64) { e.executed = executed }

// StateDigest exposes the application state digest.
func (e *Engine) StateDigest() types.Digest { return e.app.StateDigest() }
