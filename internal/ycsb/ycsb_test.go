package ycsb

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestOpCodecRoundTrip(t *testing.T) {
	f := func(key uint32, value []byte) bool {
		code, k, v, err := DecodeOp(EncodeWrite(key, value))
		if err != nil || code != OpWrite || k != key || len(v) != len(value) {
			return false
		}
		code, k, _, err = DecodeOp(EncodeRead(key))
		return err == nil && code == OpRead && k == key
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeOp([]byte{1, 2}); err == nil {
		t.Fatal("short op accepted")
	}
}

func TestStoreDeterministicAcrossReplicas(t *testing.T) {
	// Two replicas initialized alike and fed the same transactions must
	// reach identical state digests (§III-A: deterministic execution).
	a, b := NewStore(1000), NewStore(1000)
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("fresh stores diverge")
	}
	wl := NewWorkload(WorkloadConfig{Records: 1000, Seed: 42})
	for i := 0; i < 500; i++ {
		tx := wl.Next(1)
		ra, rb := a.Execute(tx), b.Execute(tx)
		if string(ra) != string(rb) {
			t.Fatalf("results diverge at txn %d", i)
		}
	}
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("state digests diverge after identical history")
	}
}

func TestStateDigestReflectsWrites(t *testing.T) {
	s := NewStore(100)
	before := s.StateDigest()
	s.Execute(types.Transaction{Client: 1, Seq: 1, Op: EncodeWrite(5, []byte("new"))})
	if s.StateDigest() == before {
		t.Fatal("digest unchanged after a write")
	}
	// Reads must not change state.
	mid := s.StateDigest()
	s.Execute(types.Transaction{Client: 1, Seq: 2, Op: EncodeRead(5)})
	if s.StateDigest() != mid {
		t.Fatal("digest changed by a read")
	}
}

func TestWriteRatioApproximatelyNinetyPercent(t *testing.T) {
	s := NewStore(DefaultRecords)
	wl := NewWorkload(WorkloadConfig{Seed: 7})
	const total = 5000
	for i := 0; i < total; i++ {
		s.Execute(wl.Next(1))
	}
	ratio := float64(s.Writes()) / float64(total)
	if ratio < 0.85 || ratio > 0.95 {
		t.Fatalf("write ratio %.3f, want ≈0.90 (paper §V-A)", ratio)
	}
}

func TestZipfianSkew(t *testing.T) {
	wl := NewWorkload(WorkloadConfig{Records: 10000, Seed: 3})
	counts := make(map[uint32]int)
	const total = 20000
	for i := 0; i < total; i++ {
		tx := wl.Next(1)
		_, key, _, err := DecodeOp(tx.Op)
		if err != nil {
			t.Fatal(err)
		}
		counts[key]++
	}
	// Zipfian: the hottest key must be far hotter than uniform (2/10000).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/total < 0.01 {
		t.Fatalf("hottest key only %.4f of accesses; distribution looks uniform", float64(max)/total)
	}
}

func TestWorkloadDeterministicPerSeed(t *testing.T) {
	w1 := NewWorkload(WorkloadConfig{Seed: 11})
	w2 := NewWorkload(WorkloadConfig{Seed: 11})
	for i := 0; i < 100; i++ {
		a, b := w1.Next(1), w2.Next(1)
		if a.Seq != b.Seq || string(a.Op) != string(b.Op) {
			t.Fatalf("workload diverges at %d", i)
		}
	}
	w3 := NewWorkload(WorkloadConfig{Seed: 12})
	same := true
	for i := 0; i < 20; i++ {
		if string(w1.Next(2).Op) != string(w3.Next(2).Op) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestSequenceNumbersPerClient(t *testing.T) {
	wl := NewWorkload(WorkloadConfig{Seed: 1})
	if wl.Next(1).Seq != 1 || wl.Next(1).Seq != 2 || wl.Next(2).Seq != 1 {
		t.Fatal("per-client sequence numbering broken")
	}
	b := wl.NextBatch(3, 10)
	if b.Len() != 10 || b.Txns[9].Seq != 10 {
		t.Fatal("batch generation broken")
	}
}

func TestExecuteRejectsGarbage(t *testing.T) {
	s := NewStore(10)
	out := s.Execute(types.Transaction{Client: 1, Seq: 1, Op: []byte{9, 9}})
	if len(out) != 1 || out[0] != 0xff {
		t.Fatal("garbage op not flagged")
	}
	if s.Execute(types.NoOp()) != nil {
		t.Fatal("noop produced output")
	}
}
