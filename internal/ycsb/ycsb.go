// Package ycsb implements the Yahoo Cloud Serving Benchmark workload the
// paper evaluates with (§V-A): a table with half a million active records
// where 90% of the transactions write/modify records, generated with the
// Blockbench-style Zipfian key distribution. Every replica is initialized
// with an identical copy of the table, and execution is deterministic.
package ycsb

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/types"
)

// Defaults matching the paper's setup.
const (
	DefaultRecords     = 500_000
	DefaultWriteRatio  = 0.9
	DefaultFieldLength = 64 // bytes per record value
)

// Op codes encoded in Transaction.Op.
const (
	OpRead  byte = 1
	OpWrite byte = 2
)

// EncodeRead builds the Op payload for reading key.
func EncodeRead(key uint32) []byte {
	op := make([]byte, 5)
	op[0] = OpRead
	binary.BigEndian.PutUint32(op[1:], key)
	return op
}

// EncodeWrite builds the Op payload for writing value to key.
func EncodeWrite(key uint32, value []byte) []byte {
	op := make([]byte, 5, 5+len(value))
	op[0] = OpWrite
	binary.BigEndian.PutUint32(op[1:], key)
	return append(op, value...)
}

// DecodeOp splits an Op payload into opcode, key, and value.
func DecodeOp(op []byte) (code byte, key uint32, value []byte, err error) {
	if len(op) < 5 {
		return 0, 0, nil, fmt.Errorf("ycsb: short op: %d bytes", len(op))
	}
	return op[0], binary.BigEndian.Uint32(op[1:5]), op[5:], nil
}

// Store is the YCSB table: a deterministic key/value application.
// It implements exec.Application. Each transaction touches exactly one
// record — its conflict StateKey is the record index — so transactions on
// distinct records commute: concurrent Execute calls write disjoint slice
// slots and the operation counters/state accumulator are atomic (wrapping
// adds commute, so the totals are schedule-independent).
type Store struct {
	records  []uint64 // fingerprint of the value for each key (compact state)
	writes   atomic.Uint64
	reads    atomic.Uint64
	stateSum atomic.Uint64 // rolling state accumulator for cheap digests
}

// NewStore initializes a table with n records. All replicas call this with
// the same n and obtain identical state.
func NewStore(n int) *Store {
	s := &Store{records: make([]uint64, n)}
	var sum uint64
	for i := range s.records {
		s.records[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
		sum += s.records[i]
	}
	s.stateSum.Store(sum)
	return s
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.records) }

// Reads and Writes report operation counts (for tests and stats).
func (s *Store) Reads() uint64  { return s.reads.Load() }
func (s *Store) Writes() uint64 { return s.writes.Load() }

// Keys declares a transaction's conflict footprint: the single record it
// reads or writes (reads conflict with writes to the same record — the
// read result depends on order). Malformed and unknown-opcode payloads
// execute statelessly (result 0xff), so they declare an empty footprint.
func (s *Store) Keys(tx types.Transaction, buf []types.StateKey) ([]types.StateKey, bool) {
	if tx.IsNoOp() {
		return buf, true
	}
	code, key, _, err := DecodeOp(tx.Op)
	if err != nil || len(s.records) == 0 || (code != OpRead && code != OpWrite) {
		return buf, true // stateless rejection: conflicts with nothing
	}
	return append(buf, types.StateKey(int(key)%len(s.records))), true
}

// Execute applies one YCSB transaction deterministically. Concurrent calls
// are safe for transactions on distinct records.
func (s *Store) Execute(tx types.Transaction) []byte {
	if tx.IsNoOp() {
		return nil
	}
	code, key, value, err := DecodeOp(tx.Op)
	if err != nil || len(s.records) == 0 {
		return []byte{0xff}
	}
	idx := int(key) % len(s.records)
	switch code {
	case OpRead:
		s.reads.Add(1)
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, s.records[idx])
		return out
	case OpWrite:
		s.writes.Add(1)
		old := s.records[idx]
		fp := fingerprint(value)
		s.records[idx] = fp
		s.stateSum.Add(fp - old)
		return []byte{1}
	default:
		return []byte{0xff}
	}
}

// StateDigest returns a digest of the table state. It hashes the rolling
// sum plus a sample of records, which is orders of magnitude cheaper than
// hashing 500k records per batch while still detecting divergence with high
// probability in tests.
func (s *Store) StateDigest() types.Digest {
	buf := make([]byte, 0, 8*18)
	buf = binary.BigEndian.AppendUint64(buf, s.stateSum.Load())
	buf = binary.BigEndian.AppendUint64(buf, s.writes.Load())
	if n := len(s.records); n > 0 {
		for i := 0; i < 16; i++ {
			buf = binary.BigEndian.AppendUint64(buf, s.records[(i*2654435761)%n])
		}
	}
	return types.Hash(buf)
}

// Snapshot serializes the full table for checkpoint persistence
// (store.Snapshotter): record count and fingerprints plus the operation
// counters, so a restored replica's StateDigest matches exactly.
func (s *Store) Snapshot() []byte {
	buf := make([]byte, 0, 8*(3+len(s.records)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(s.records)))
	for _, r := range s.records {
		buf = binary.BigEndian.AppendUint64(buf, r)
	}
	buf = binary.BigEndian.AppendUint64(buf, s.writes.Load())
	return binary.BigEndian.AppendUint64(buf, s.reads.Load())
}

// Restore replaces the table with a Snapshot image (store.Snapshotter).
func (s *Store) Restore(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("ycsb: short snapshot: %d bytes", len(data))
	}
	n := binary.BigEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) != 8*(n+2) {
		return fmt.Errorf("ycsb: snapshot claims %d records but carries %d bytes", n, len(data))
	}
	records := make([]uint64, n)
	var sum uint64
	for i := range records {
		records[i] = binary.BigEndian.Uint64(data)
		sum += records[i]
		data = data[8:]
	}
	s.records = records
	s.stateSum.Store(sum)
	s.writes.Store(binary.BigEndian.Uint64(data))
	s.reads.Store(binary.BigEndian.Uint64(data[8:]))
	return nil
}

func fingerprint(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h | 1
}

// Workload generates YCSB client transactions with a Zipfian key
// distribution and the paper's 90% write ratio. It is deterministic for a
// given seed. Not safe for concurrent use.
type Workload struct {
	rng        *rand.Rand
	zipf       *rand.Zipf
	records    int
	writeRatio float64
	fieldLen   int
	nextSeq    map[types.ClientID]uint64
}

// WorkloadConfig parameterizes a Workload; zero values take the paper
// defaults.
type WorkloadConfig struct {
	Records    int
	WriteRatio float64
	FieldLen   int
	Theta      float64 // Zipfian skew (s parameter); default 1.01
	Seed       int64
}

// NewWorkload creates a workload generator.
func NewWorkload(cfg WorkloadConfig) *Workload {
	if cfg.Records <= 0 {
		cfg.Records = DefaultRecords
	}
	if cfg.WriteRatio <= 0 {
		cfg.WriteRatio = DefaultWriteRatio
	}
	if cfg.FieldLen <= 0 {
		cfg.FieldLen = DefaultFieldLength
	}
	if cfg.Theta <= 1 {
		cfg.Theta = 1.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Workload{
		rng:        rng,
		zipf:       rand.NewZipf(rng, cfg.Theta, 1, uint64(cfg.Records-1)),
		records:    cfg.Records,
		writeRatio: cfg.WriteRatio,
		fieldLen:   cfg.FieldLen,
		nextSeq:    make(map[types.ClientID]uint64),
	}
}

// Next generates the next transaction for client c.
func (w *Workload) Next(c types.ClientID) types.Transaction {
	w.nextSeq[c]++
	key := uint32(w.zipf.Uint64())
	var op []byte
	if w.rng.Float64() < w.writeRatio {
		value := make([]byte, w.fieldLen)
		w.rng.Read(value)
		op = EncodeWrite(key, value)
	} else {
		op = EncodeRead(key)
	}
	return types.Transaction{Client: c, Seq: w.nextSeq[c], Op: op}
}

// NextBatch generates a batch of size transactions for client c.
func (w *Workload) NextBatch(c types.ClientID, size int) *types.Batch {
	b := &types.Batch{Txns: make([]types.Transaction, 0, size)}
	for i := 0; i < size; i++ {
		b.Txns = append(b.Txns, w.Next(c))
	}
	return b
}
