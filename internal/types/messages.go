package types

import (
	"encoding/binary"
	"fmt"
)

// MsgType discriminates the messages in the shared catalog.
type MsgType uint8

// Message type constants. The catalog is shared: PBFT, Zyzzyva, SBFT,
// HotStuff, RCC, and Mir-BFT all route messages by (InstanceID, MsgType).
const (
	MsgInvalid MsgType = iota

	// Client interaction.
	MsgClientRequest
	MsgClientReply
	MsgSwitchInstance // client requests reassignment to another instance (§III-E)

	// PBFT-style Byzantine commit algorithm (§III-A).
	MsgPrePrepare
	MsgPrepare
	MsgCommit
	MsgCheckpoint
	MsgViewChange
	MsgNewView

	// RCC recovery (§III-C, Fig. 4).
	MsgFailure // FAILURE(i, ρ, P)
	MsgStop    // stop(i; E) proposed via the coordinating consensus P

	// Zyzzyva.
	MsgOrderRequest // primary's speculative order assignment
	MsgSpecResponse // replica's speculative response to the client
	MsgCommitCert   // client-assembled commit certificate (2f+1 spec responses)
	MsgLocalCommit  // replica ack of a commit certificate
	MsgFillHole     // replica asks the primary for missed order requests
	MsgIHatePrimary // replica accusation starting Zyzzyva view change

	// SBFT.
	MsgSignShare        // replica's threshold signature share to the collector
	MsgFullCommitProof  // collector's combined threshold signature
	MsgSignStateShare   // post-execution share
	MsgFullExecuteProof // collector's combined execution proof

	// HotStuff (event-based chained variant).
	MsgHSProposal
	MsgHSVote
	MsgHSNewView

	// Mir-BFT-style epoch coordination.
	MsgEpochChange
	MsgNewEpoch

	// Checkpoint-based state transfer (internal/statesync): lagging or
	// wiped replicas fetch an f+1-attested snapshot plus the ledger suffix
	// from their peers instead of replaying history they no longer have.
	MsgStateOffer
	MsgSnapshotRequest
	MsgSnapshotChunk
	MsgBlockRangeRequest
	MsgBlockRange
	// MsgCheckpointAttest carries one replica's threshold-signature share
	// over a checkpoint-boundary attestation digest; f+1 matching shares
	// combine into the aggregate attestation offers carry.
	MsgCheckpointAttest
)

var msgTypeNames = map[MsgType]string{
	MsgInvalid:          "INVALID",
	MsgClientRequest:    "CLIENT-REQUEST",
	MsgClientReply:      "CLIENT-REPLY",
	MsgSwitchInstance:   "SWITCH-INSTANCE",
	MsgPrePrepare:       "PREPREPARE",
	MsgPrepare:          "PREPARE",
	MsgCommit:           "COMMIT",
	MsgCheckpoint:       "CHECKPOINT",
	MsgViewChange:       "VIEW-CHANGE",
	MsgNewView:          "NEW-VIEW",
	MsgFailure:          "FAILURE",
	MsgStop:             "STOP",
	MsgOrderRequest:     "ORDER-REQ",
	MsgSpecResponse:     "SPEC-RESPONSE",
	MsgCommitCert:       "COMMIT-CERT",
	MsgLocalCommit:      "LOCAL-COMMIT",
	MsgFillHole:         "FILL-HOLE",
	MsgIHatePrimary:     "I-HATE-THE-PRIMARY",
	MsgSignShare:        "SIGN-SHARE",
	MsgFullCommitProof:  "FULL-COMMIT-PROOF",
	MsgSignStateShare:   "SIGN-STATE-SHARE",
	MsgFullExecuteProof: "FULL-EXECUTE-PROOF",
	MsgHSProposal:       "HS-PROPOSAL",
	MsgHSVote:           "HS-VOTE",
	MsgHSNewView:        "HS-NEW-VIEW",
	MsgEpochChange:      "EPOCH-CHANGE",
	MsgNewEpoch:         "NEW-EPOCH",

	MsgStateOffer:        "STATE-OFFER",
	MsgSnapshotRequest:   "SNAPSHOT-REQUEST",
	MsgSnapshotChunk:     "SNAPSHOT-CHUNK",
	MsgBlockRangeRequest: "BLOCK-RANGE-REQUEST",
	MsgBlockRange:        "BLOCK-RANGE",
	MsgCheckpointAttest:  "CHECKPOINT-ATTEST",
}

func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is the interface implemented by every protocol message.
type Message interface {
	// Type returns the message discriminator.
	Type() MsgType
	// Instance returns the consensus instance the message belongs to.
	Instance() InstanceID
	// WireSize returns the simulated size in bytes charged against
	// network bandwidth (paper §V-B constants).
	WireSize() int
	// AuthPayload appends the deterministic byte form covered by the
	// message authenticator (MAC or signature) to buf.
	AuthPayload(buf []byte) []byte
}

// Header is embedded by all messages for the common fields.
type Header struct {
	Inst InstanceID
}

func (h Header) Instance() InstanceID { return h.Inst }

func (h Header) marshal(buf []byte, t MsgType) []byte {
	buf = append(buf, byte(t))
	return binary.BigEndian.AppendUint16(buf, uint16(h.Inst))
}

// ---------------------------------------------------------------------------
// Client interaction
// ---------------------------------------------------------------------------

// ClientRequest carries a client transaction to the replicas.
type ClientRequest struct {
	Header
	Tx Transaction
}

// NewClientRequest builds a client request routed to instance inst.
func NewClientRequest(inst InstanceID, tx Transaction) *ClientRequest {
	return &ClientRequest{Header: Header{Inst: inst}, Tx: tx}
}

func (m *ClientRequest) Type() MsgType { return MsgClientRequest }
func (m *ClientRequest) WireSize() int { return ClientRequestBytes }
func (m *ClientRequest) AuthPayload(buf []byte) []byte {
	return m.Tx.Marshal(m.marshal(buf, MsgClientRequest))
}

// ClientReply informs a client of the outcome of execution.
type ClientReply struct {
	Header
	Replica ReplicaID
	Client  ClientID
	Seq     uint64
	Round   Round
	Result  Digest // digest of the execution result
	Count   int    // transactions covered (batched replies)
}

func (m *ClientReply) Type() MsgType { return MsgClientReply }
func (m *ClientReply) WireSize() int { return ReplyWireSize(m.Count) }
func (m *ClientReply) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgClientReply)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Client))
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.Result[:]...)
}

// SwitchInstance is a client request to be reassigned from its current
// instance to instance To (§III-E). It is agreed upon via the coordinating
// consensus of the client's current instance.
type SwitchInstance struct {
	Header
	Client ClientID
	To     InstanceID
}

func (m *SwitchInstance) Type() MsgType { return MsgSwitchInstance }
func (m *SwitchInstance) WireSize() int { return ConsensusMsgBytes }
func (m *SwitchInstance) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgSwitchInstance)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Client))
	return binary.BigEndian.AppendUint16(buf, uint16(m.To))
}

// ---------------------------------------------------------------------------
// PBFT-style Byzantine commit (also reused by SBFT's proposal and as the
// coordinating consensus for RCC recovery)
// ---------------------------------------------------------------------------

// PrePrepare is the primary's proposal of a batch as the Round-th
// transaction set of its instance in view View.
type PrePrepare struct {
	Header
	View   View
	Round  Round
	Digest Digest
	Batch  *Batch // nil in digest-only retransmissions
}

func (m *PrePrepare) Type() MsgType { return MsgPrePrepare }
func (m *PrePrepare) WireSize() int {
	if m.Batch == nil {
		return ConsensusMsgBytes
	}
	return ProposalWireSize(m.Batch.Len())
}
func (m *PrePrepare) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgPrePrepare)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.Digest[:]...)
}

// PhaseVote is the shared shape of PREPARE/COMMIT-style votes.
type PhaseVote struct {
	Header
	Replica ReplicaID
	View    View
	Round   Round
	Digest  Digest
}

func (m *PhaseVote) WireSize() int { return ConsensusMsgBytes }
func (m *PhaseVote) payload(buf []byte, t MsgType) []byte {
	buf = m.marshal(buf, t)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.Digest[:]...)
}

// Prepare is a replica's PREPARE vote for a preprepared proposal.
type Prepare struct{ PhaseVote }

// NewPrepare builds a PREPARE vote.
func NewPrepare(inst InstanceID, r ReplicaID, v View, rnd Round, d Digest) *Prepare {
	return &Prepare{PhaseVote{Header{inst}, r, v, rnd, d}}
}

func (m *Prepare) Type() MsgType                 { return MsgPrepare }
func (m *Prepare) AuthPayload(buf []byte) []byte { return m.payload(buf, MsgPrepare) }

// Commit is a replica's COMMIT vote for a prepared proposal.
type Commit struct{ PhaseVote }

// NewCommit builds a COMMIT vote.
func NewCommit(inst InstanceID, r ReplicaID, v View, rnd Round, d Digest) *Commit {
	return &Commit{PhaseVote{Header{inst}, r, v, rnd, d}}
}

func (m *Commit) Type() MsgType                 { return MsgCommit }
func (m *Commit) AuthPayload(buf []byte) []byte { return m.payload(buf, MsgCommit) }

// Checkpoint carries a replica's state digest at a round boundary; nf
// matching checkpoints let in-the-dark replicas recover (§III-D).
type Checkpoint struct {
	Header
	Replica ReplicaID
	Round   Round
	State   Digest
	// Proposals carries the accepted proposals of the sender since the
	// previous stable checkpoint so in-the-dark replicas can catch up.
	Proposals []AcceptedProposal
}

func (m *Checkpoint) Type() MsgType { return MsgCheckpoint }
func (m *Checkpoint) WireSize() int {
	sz := ConsensusMsgBytes
	for i := range m.Proposals {
		if b := m.Proposals[i].Batch; b != nil {
			sz += ProposalWireSize(b.Len())
		}
	}
	return sz
}
func (m *Checkpoint) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgCheckpoint)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.State[:]...)
}

// AcceptedProposal is one accepted (round, batch) pair together with the
// view in which it was accepted. It is the unit of state exchanged by
// checkpoints, FAILURE messages, and view changes (Assumption A3).
type AcceptedProposal struct {
	Round  Round
	View   View
	Digest Digest
	Batch  *Batch
	// Prepared reports whether the sender holds a prepared certificate
	// (nf PREPARE votes) for the proposal, as opposed to merely having
	// received the preprepare.
	Prepared bool
}

// ViewChange announces that a replica moved to view NewView and carries its
// prepared-proposal state (PBFT view change).
type ViewChange struct {
	Header
	Replica   ReplicaID
	NewView   View
	StableCkp Round
	Prepared  []AcceptedProposal
}

func (m *ViewChange) Type() MsgType { return MsgViewChange }
func (m *ViewChange) WireSize() int {
	sz := ConsensusMsgBytes
	for i := range m.Prepared {
		if b := m.Prepared[i].Batch; b != nil {
			sz += ProposalWireSize(b.Len())
		}
	}
	return sz
}
func (m *ViewChange) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgViewChange)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.NewView))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.StableCkp))
	for i := range m.Prepared {
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Prepared[i].Round))
		buf = append(buf, m.Prepared[i].Digest[:]...)
	}
	return buf
}

// NewView is the new primary's announcement of view NewView, carrying the
// proposals that must be re-proposed.
type NewView struct {
	Header
	Replica    ReplicaID
	NewView    View
	ViewProofs []ReplicaID // replicas whose VIEW-CHANGE messages justify the new view
	Reproposed []AcceptedProposal
}

func (m *NewView) Type() MsgType { return MsgNewView }
func (m *NewView) WireSize() int {
	sz := ConsensusMsgBytes
	for i := range m.Reproposed {
		if b := m.Reproposed[i].Batch; b != nil {
			sz += ProposalWireSize(b.Len())
		}
	}
	return sz
}
func (m *NewView) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgNewView)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.NewView))
	for i := range m.Reproposed {
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Reproposed[i].Round))
		buf = append(buf, m.Reproposed[i].Digest[:]...)
	}
	return buf
}

// ---------------------------------------------------------------------------
// RCC recovery (paper Fig. 4)
// ---------------------------------------------------------------------------

// Failure is the FAILURE(i, ρ, P) message of the RCC recovery protocol: the
// sender detected failure of the primary of instance Inst in round Round and
// attaches its per-instance state P (accepted proposals, Assumption A3).
type Failure struct {
	Header
	Replica ReplicaID
	Round   Round
	State   []AcceptedProposal
	// Light indicates the state was elided (full state goes to the
	// coordinating leader only; everyone else gets FAILURE(i, ρ)).
	Light bool
}

func (m *Failure) Type() MsgType { return MsgFailure }
func (m *Failure) WireSize() int {
	if m.Light {
		return ConsensusMsgBytes
	}
	sz := ConsensusMsgBytes
	for i := range m.State {
		if b := m.State[i].Batch; b != nil {
			sz += ProposalWireSize(b.Len())
		}
	}
	return sz
}
func (m *Failure) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgFailure)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	for i := range m.State {
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.State[i].Round))
		buf = append(buf, m.State[i].Digest[:]...)
	}
	return buf
}

// Stop is the stop(i; E) operation replicated by the coordinating consensus
// protocol: E is a set of nf FAILURE messages from distinct replicas from
// which the accepted state of instance Inst can be recovered.
type Stop struct {
	Header
	Target   InstanceID
	Evidence []*Failure
}

func (m *Stop) Type() MsgType { return MsgStop }
func (m *Stop) WireSize() int {
	sz := ConsensusMsgBytes
	for _, f := range m.Evidence {
		sz += f.WireSize()
	}
	return sz
}
func (m *Stop) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgStop)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Target))
	for _, f := range m.Evidence {
		buf = binary.BigEndian.AppendUint16(buf, uint16(f.Replica))
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.Round))
	}
	return buf
}
