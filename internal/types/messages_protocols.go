package types

import "encoding/binary"

// ---------------------------------------------------------------------------
// Zyzzyva
// ---------------------------------------------------------------------------

// OrderRequest is the Zyzzyva primary's speculative order assignment: the
// primary assigns Round to Batch and broadcasts; replicas speculatively
// execute and answer the client directly.
type OrderRequest struct {
	Header
	View    View
	Round   Round
	History Digest // hash chain over all order requests up to Round
	Digest  Digest
	Batch   *Batch
}

func (m *OrderRequest) Type() MsgType { return MsgOrderRequest }
func (m *OrderRequest) WireSize() int {
	if m.Batch == nil {
		return ConsensusMsgBytes
	}
	return ProposalWireSize(m.Batch.Len())
}
func (m *OrderRequest) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgOrderRequest)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	buf = append(buf, m.History[:]...)
	return append(buf, m.Digest[:]...)
}

// SpecResponse is a replica's speculative response, sent directly to the
// client. A client accepts when it collects 3f+1 matching responses; with
// only 2f+1..3f it assembles a CommitCert.
type SpecResponse struct {
	Header
	Replica ReplicaID
	View    View
	Round   Round
	History Digest
	Result  Digest
	Client  ClientID
	Count   int
}

func (m *SpecResponse) Type() MsgType { return MsgSpecResponse }
func (m *SpecResponse) WireSize() int { return ReplyWireSize(m.Count) }
func (m *SpecResponse) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgSpecResponse)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	buf = append(buf, m.History[:]...)
	return append(buf, m.Result[:]...)
}

// CommitCert carries 2f+1 matching spec responses gathered by a client that
// could not reach the fast path; replicas answer with LocalCommit.
type CommitCert struct {
	Header
	Client    ClientID
	View      View
	Round     Round
	History   Digest
	Responses []ReplicaID // replicas whose spec responses form the certificate
}

func (m *CommitCert) Type() MsgType { return MsgCommitCert }
func (m *CommitCert) WireSize() int { return ConsensusMsgBytes + 48*len(m.Responses) }
func (m *CommitCert) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgCommitCert)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Client))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.History[:]...)
}

// LocalCommit is a replica's acknowledgement of a commit certificate.
type LocalCommit struct {
	Header
	Replica ReplicaID
	View    View
	Round   Round
	History Digest
	Client  ClientID
}

func (m *LocalCommit) Type() MsgType { return MsgLocalCommit }
func (m *LocalCommit) WireSize() int { return ConsensusMsgBytes }
func (m *LocalCommit) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgLocalCommit)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.History[:]...)
}

// FillHole asks the primary to retransmit order requests the sender missed.
type FillHole struct {
	Header
	Replica ReplicaID
	View    View
	From    Round
	To      Round
}

func (m *FillHole) Type() MsgType { return MsgFillHole }
func (m *FillHole) WireSize() int { return ConsensusMsgBytes }
func (m *FillHole) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgFillHole)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.From))
	return binary.BigEndian.AppendUint64(buf, uint64(m.To))
}

// IHatePrimary is a replica's accusation that starts a Zyzzyva view change.
type IHatePrimary struct {
	Header
	Replica ReplicaID
	View    View
}

func (m *IHatePrimary) Type() MsgType { return MsgIHatePrimary }
func (m *IHatePrimary) WireSize() int { return ConsensusMsgBytes }
func (m *IHatePrimary) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgIHatePrimary)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	return binary.BigEndian.AppendUint64(buf, uint64(m.View))
}

// ---------------------------------------------------------------------------
// SBFT
// ---------------------------------------------------------------------------

// SignShare is a replica's threshold-signature share over a proposal, sent
// to the round's collector instead of being broadcast (linear phase).
type SignShare struct {
	Header
	Replica ReplicaID
	View    View
	Round   Round
	Digest  Digest
	Share   []byte
}

func (m *SignShare) Type() MsgType { return MsgSignShare }
func (m *SignShare) WireSize() int { return ConsensusMsgBytes }
func (m *SignShare) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgSignShare)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.Digest[:]...)
}

// FullCommitProof is the collector's combined threshold signature proving
// that nf replicas signed the proposal; receiving it commits the round.
type FullCommitProof struct {
	Header
	Replica  ReplicaID
	View     View
	Round    Round
	Digest   Digest
	Combined []byte
}

func (m *FullCommitProof) Type() MsgType { return MsgFullCommitProof }
func (m *FullCommitProof) WireSize() int { return ConsensusMsgBytes }
func (m *FullCommitProof) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgFullCommitProof)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.Digest[:]...)
}

// SignStateShare is a replica's post-execution share over the resulting
// state, sent to the collector.
type SignStateShare struct {
	Header
	Replica ReplicaID
	Round   Round
	State   Digest
	Share   []byte
}

func (m *SignStateShare) Type() MsgType { return MsgSignStateShare }
func (m *SignStateShare) WireSize() int { return ConsensusMsgBytes }
func (m *SignStateShare) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgSignStateShare)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.State[:]...)
}

// FullExecuteProof is the collector's combined execution proof.
type FullExecuteProof struct {
	Header
	Replica  ReplicaID
	Round    Round
	State    Digest
	Combined []byte
}

func (m *FullExecuteProof) Type() MsgType { return MsgFullExecuteProof }
func (m *FullExecuteProof) WireSize() int { return ConsensusMsgBytes }
func (m *FullExecuteProof) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgFullExecuteProof)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.State[:]...)
}

// ---------------------------------------------------------------------------
// HotStuff (event-based chained variant)
// ---------------------------------------------------------------------------

// QuorumCert is a quorum certificate over a HotStuff block.
type QuorumCert struct {
	View    View
	Round   Round
	Block   Digest
	Signers []ReplicaID
}

// HSProposal is the leader's block proposal extending the block certified
// by Justify.
type HSProposal struct {
	Header
	Replica ReplicaID
	View    View
	Round   Round
	Parent  Digest
	Digest  Digest
	Batch   *Batch
	Justify QuorumCert
}

func (m *HSProposal) Type() MsgType { return MsgHSProposal }
func (m *HSProposal) WireSize() int {
	if m.Batch == nil {
		return ConsensusMsgBytes
	}
	return ProposalWireSize(m.Batch.Len())
}
func (m *HSProposal) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgHSProposal)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	buf = append(buf, m.Parent[:]...)
	return append(buf, m.Digest[:]...)
}

// HSVote is a replica's vote on a proposal, sent to the next leader.
type HSVote struct {
	Header
	Replica ReplicaID
	View    View
	Round   Round
	Block   Digest
	Share   []byte
}

func (m *HSVote) Type() MsgType { return MsgHSVote }
func (m *HSVote) WireSize() int { return ConsensusMsgBytes }
func (m *HSVote) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgHSVote)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
	return append(buf, m.Block[:]...)
}

// HSNewView carries a replica's highest QC to the next leader on timeout.
type HSNewView struct {
	Header
	Replica ReplicaID
	View    View
	HighQC  QuorumCert
}

func (m *HSNewView) Type() MsgType { return MsgHSNewView }
func (m *HSNewView) WireSize() int { return ConsensusMsgBytes }
func (m *HSNewView) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgHSNewView)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.View))
	return append(buf, m.HighQC.Block[:]...)
}

// ---------------------------------------------------------------------------
// Mir-BFT-style epoch coordination
// ---------------------------------------------------------------------------

// EpochChange announces that a replica wants to move to epoch Epoch after
// observing an instance failure; it halts all instances until NewEpoch.
type EpochChange struct {
	Header
	Replica ReplicaID
	Epoch   uint64
	Failed  InstanceID
	Round   Round
}

func (m *EpochChange) Type() MsgType { return MsgEpochChange }
func (m *EpochChange) WireSize() int { return ConsensusMsgBytes }
func (m *EpochChange) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgEpochChange)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	return binary.BigEndian.AppendUint16(buf, uint16(m.Failed))
}

// NewEpoch is the super-primary's configuration for epoch Epoch: the set of
// leaders enabled in the new epoch and the common round at which every
// instance resumes (a locally-derived resume round would diverge across
// replicas and make them reject each other's proposals).
type NewEpoch struct {
	Header
	Replica    ReplicaID
	Epoch      uint64
	Leaders    []ReplicaID
	StartRound Round
}

func (m *NewEpoch) Type() MsgType { return MsgNewEpoch }
func (m *NewEpoch) WireSize() int { return ConsensusMsgBytes + 2*len(m.Leaders) }
func (m *NewEpoch) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgNewEpoch)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.StartRound))
	for _, l := range m.Leaders {
		buf = binary.BigEndian.AppendUint16(buf, uint16(l))
	}
	return buf
}
