package types

import (
	"reflect"
	"testing"
)

// codecCorpus builds one fully-populated value of every message type in the
// catalog. Every field is non-zero so a codec that drops or reorders a field
// cannot round-trip.
func codecCorpus() []Message {
	d1 := Hash([]byte("d1"))
	d2 := Hash([]byte("d2"))
	d3 := Hash([]byte("d3"))
	batch := &Batch{Txns: []Transaction{
		{Client: 7, Seq: 3, Op: []byte("write x=1")},
		{Client: 9, Seq: 1, Op: []byte("read y")},
	}}
	props := []AcceptedProposal{
		{Round: 4, View: 2, Digest: d1, Batch: batch, Prepared: true},
		{Round: 5, View: 2, Digest: d2, Batch: nil, Prepared: false},
	}
	fail1 := &Failure{Header: Header{Inst: 3}, Replica: 1, Round: 9, State: props, Light: false}
	fail2 := &Failure{Header: Header{Inst: 3}, Replica: 2, Round: 9, Light: true}
	qc := QuorumCert{View: 3, Round: 8, Block: d3, Signers: []ReplicaID{0, 2, 3}}

	return []Message{
		&ClientRequest{Header: Header{Inst: 2}, Tx: Transaction{Client: 5, Seq: 11, Op: []byte("op")}},
		&ClientReply{Header: Header{Inst: 2}, Replica: 3, Client: 5, Seq: 11, Round: 6, Result: d1, Count: 100},
		&SwitchInstance{Header: Header{Inst: 1}, Client: 5, To: 2},
		&PrePrepare{Header: Header{Inst: 1}, View: 2, Round: 7, Digest: d1, Batch: batch},
		&PrePrepare{Header: Header{Inst: 1}, View: 2, Round: 7, Digest: d1}, // digest-only retransmission
		NewPrepare(1, 2, 3, 4, d2),
		NewCommit(1, 2, 3, 4, d2),
		&Checkpoint{Header: Header{Inst: 1}, Replica: 2, Round: 10, State: d3, Proposals: props},
		&ViewChange{Header: Header{Inst: 1}, Replica: 2, NewView: 4, StableCkp: 8, Prepared: props},
		&NewView{Header: Header{Inst: 1}, Replica: 3, NewView: 4, ViewProofs: []ReplicaID{0, 1, 2}, Reproposed: props},
		fail1,
		fail2,
		&Stop{Header: Header{Inst: CoordInstance(3)}, Target: 3, Evidence: []*Failure{fail1, fail2}},
		&OrderRequest{Header: Header{Inst: 0}, View: 1, Round: 2, History: d1, Digest: d2, Batch: batch},
		&SpecResponse{Header: Header{Inst: 0}, Replica: 1, View: 2, Round: 3, History: d1, Result: d2, Client: 5, Count: 100},
		&CommitCert{Header: Header{Inst: 0}, Client: 5, View: 2, Round: 3, History: d1, Responses: []ReplicaID{0, 1, 3}},
		&LocalCommit{Header: Header{Inst: 0}, Replica: 1, View: 2, Round: 3, History: d1, Client: 5},
		&FillHole{Header: Header{Inst: 0}, Replica: 1, View: 2, From: 3, To: 9},
		&IHatePrimary{Header: Header{Inst: 0}, Replica: 1, View: 2},
		&SignShare{Header: Header{Inst: 0}, Replica: 1, View: 2, Round: 3, Digest: d1, Share: []byte{1, 2, 3}},
		&FullCommitProof{Header: Header{Inst: 0}, Replica: 1, View: 2, Round: 3, Digest: d1, Combined: []byte{4, 5}},
		&SignStateShare{Header: Header{Inst: 0}, Replica: 1, Round: 3, State: d2, Share: []byte{6}},
		&FullExecuteProof{Header: Header{Inst: 0}, Replica: 1, Round: 3, State: d2, Combined: []byte{7, 8}},
		&HSProposal{Header: Header{Inst: 0}, Replica: 1, View: 2, Round: 3, Parent: d1, Digest: d2, Batch: batch, Justify: qc},
		&HSVote{Header: Header{Inst: 0}, Replica: 1, View: 2, Round: 3, Block: d3, Share: []byte{9}},
		&HSNewView{Header: Header{Inst: 0}, Replica: 1, View: 2, HighQC: qc},
		&EpochChange{Header: Header{Inst: 0}, Replica: 1, Epoch: 5, Failed: 2, Round: 7},
		&NewEpoch{Header: Header{Inst: 0}, Replica: 1, Epoch: 5, Leaders: []ReplicaID{0, 1, 3}, StartRound: 12},
		&StateOffer{Header: Header{Inst: 0}, Replica: 1, SnapHeight: 64, SnapSize: 4096,
			ChunkBytes: 1024, SnapAppHash: d1, SnapHeadHash: d2, SnapStateDigest: d3,
			TxnCount: 640, Height: 70, HeadHash: d1, SyncPoint: []byte{1, 2, 3, 4},
			AttSyncPoint: []byte{5, 6, 7}, Att: []byte{8, 9}},
		&CheckpointAttest{Header: Header{Inst: 0}, Replica: 1, Height: 64, Digest: d2, Share: []byte{1, 2, 3}},
		&SnapshotRequest{Header: Header{Inst: 0}, Replica: 1, Height: 64, Chunk: 3},
		&SnapshotRequest{Header: Header{Inst: 0}, Replica: 1, Chunk: NoChunk}, // probe
		&SnapshotChunk{Header: Header{Inst: 0}, Replica: 1, Height: 64, Chunk: 3, Of: 4, Data: []byte("chunk bytes")},
		&BlockRangeRequest{Header: Header{Inst: 0}, Replica: 1, From: 64, To: 70},
		&BlockRange{Header: Header{Inst: 0}, Replica: 1, From: 64,
			Blocks: [][]byte{make([]byte, minEncodedBlockLen), make([]byte, minEncodedBlockLen+17)}},
	}
}

// TestCodecRoundTripAllTypes is the completeness check the transport relies
// on: every message in the catalog must encode and decode back to a deeply
// equal value. A new message type without a codec fails here, not in
// production.
func TestCodecRoundTripAllTypes(t *testing.T) {
	seen := make(map[MsgType]bool)
	for _, m := range codecCorpus() {
		seen[m.Type()] = true
		enc, err := MarshalMessage(m)
		if err != nil {
			t.Fatalf("%T: marshal: %v", m, err)
		}
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T round-trip mismatch:\n got %#v\nwant %#v", m, got, m)
		}
	}
	// Every named MsgType except the invalid sentinel must be covered.
	for mt := range msgTypeNames {
		if mt != MsgInvalid && !seen[mt] {
			t.Errorf("corpus misses %v — add it and a codec", mt)
		}
	}
}

// TestCodecAppendSharesBuffer verifies the append-style API so transports
// can pool encode buffers.
func TestCodecAppendSharesBuffer(t *testing.T) {
	buf := make([]byte, 0, 1024)
	m1 := NewPrepare(1, 2, 3, 4, Hash([]byte("a")))
	m2 := NewCommit(5, 6, 7, 8, Hash([]byte("b")))
	buf, err := AppendMessage(buf, m1)
	if err != nil {
		t.Fatal(err)
	}
	split := len(buf)
	buf, err = AppendMessage(buf, m2)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := DecodeMessage(buf[:split])
	if err != nil {
		t.Fatal(err)
	}
	g2, err := DecodeMessage(buf[split:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1, m1) || !reflect.DeepEqual(g2, m2) {
		t.Fatal("append-mode round trip mismatch")
	}
}

func TestCodecRejectsMalformedInput(t *testing.T) {
	if _, err := DecodeMessage(nil); err == nil {
		t.Fatal("empty input decoded")
	}
	if _, err := DecodeMessage([]byte{0xEE, 1, 2}); err == nil {
		t.Fatal("unknown tag decoded")
	}
	enc, err := MarshalMessage(&PrePrepare{Header: Header{Inst: 1}, View: 2, Round: 3,
		Digest: Hash([]byte("d")), Batch: &Batch{Txns: []Transaction{{Client: 1, Seq: 1, Op: []byte("x")}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must error, never panic or decode garbage.
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeMessage(enc[:i]); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", i, len(enc))
		}
	}
	// Trailing bytes are a framing bug upstream; the codec must refuse them.
	if _, err := DecodeMessage(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestCodecRejectsForgedCounts: element counts arrive from the network
// (pre-authentication on the transport's decode path), so a forged huge
// count must fail the buffer-derived bound instead of driving a giant
// allocation.
func TestCodecRejectsForgedCounts(t *testing.T) {
	var d Digest
	// Checkpoint claiming 2^32-1 proposals in a ~50-byte message.
	buf := []byte{byte(MsgCheckpoint)}
	buf = appendU16(buf, 1)          // inst
	buf = appendU16(buf, 2)          // replica
	buf = appendU64(buf, 3)          // round
	buf = append(buf, d[:]...)       // state
	buf = appendU32(buf, 0xFFFFFFFF) // forged proposal count
	if _, err := DecodeMessage(buf); err == nil {
		t.Fatal("forged proposal count decoded")
	}

	// PrePrepare whose batch claims 2^32-1 transactions.
	buf = []byte{byte(MsgPrePrepare)}
	buf = appendU16(buf, 1)          // inst
	buf = appendU64(buf, 2)          // view
	buf = appendU64(buf, 3)          // round
	buf = append(buf, d[:]...)       // digest
	buf = append(buf, 1)             // batch present
	buf = appendU32(buf, 0xFFFFFFFF) // forged txn count
	if _, err := DecodeMessage(buf); err == nil {
		t.Fatal("forged batch txn count decoded")
	}

	// Stop claiming 2^32-1 evidence failures.
	buf = []byte{byte(MsgStop)}
	buf = appendU16(buf, uint16(CoordInstance(1))) // inst
	buf = appendU16(buf, 1)                        // target
	buf = appendU32(buf, 0xFFFFFFFF)               // forged evidence count
	if _, err := DecodeMessage(buf); err == nil {
		t.Fatal("forged evidence count decoded")
	}

	// BlockRange claiming 2^32-1 blocks in a tiny frame: the count must
	// fail the buffer-derived bound (each block needs a 4-byte length
	// prefix plus at least minEncodedBlockLen bytes of body).
	buf = []byte{byte(MsgBlockRange)}
	buf = appendU16(buf, 0)          // inst
	buf = appendU16(buf, 1)          // replica
	buf = appendU64(buf, 64)         // from
	buf = appendU32(buf, 0xFFFFFFFF) // forged block count
	if _, err := DecodeMessage(buf); err == nil {
		t.Fatal("forged block count decoded")
	}

	// SnapshotChunk whose data length claims 2^32-1 bytes: blob() must
	// refuse, not allocate.
	buf = []byte{byte(MsgSnapshotChunk)}
	buf = appendU16(buf, 0)          // inst
	buf = appendU16(buf, 1)          // replica
	buf = appendU64(buf, 64)         // height
	buf = appendU32(buf, 0)          // chunk
	buf = appendU32(buf, 4)          // of
	buf = appendU32(buf, 0xFFFFFFFF) // forged data length
	buf = append(buf, 0xAB)          // one actual byte
	if _, err := DecodeMessage(buf); err == nil {
		t.Fatal("forged chunk data length decoded")
	}

	// StateOffer whose sync-point blob claims more bytes than the frame
	// holds.
	var off StateOffer
	enc2, err := MarshalMessage(&off)
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), enc2...)
	// The sync-point length is the final u32 of the encoding.
	forged[len(forged)-1] = 0xFF
	forged[len(forged)-2] = 0xFF
	if _, err := DecodeMessage(forged); err == nil {
		t.Fatal("forged sync-point length decoded")
	}
}
