package types

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTransactionMarshalRoundTrip(t *testing.T) {
	f := func(client uint32, seq uint64, op []byte) bool {
		tx := Transaction{Client: ClientID(client), Seq: seq, Op: op}
		buf := tx.Marshal(nil)
		got, rest, err := UnmarshalTransaction(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got.Client == tx.Client && got.Seq == tx.Seq && bytes.Equal(got.Op, tx.Op)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionMarshalDeterministic(t *testing.T) {
	tx := Transaction{Client: 7, Seq: 9, Op: []byte("hello")}
	if !bytes.Equal(tx.Marshal(nil), tx.Marshal(nil)) {
		t.Fatal("marshal not deterministic")
	}
	if tx.Digest() != tx.Digest() {
		t.Fatal("digest not deterministic")
	}
}

func TestUnmarshalTransactionTruncated(t *testing.T) {
	tx := Transaction{Client: 1, Seq: 2, Op: []byte("abcdef")}
	buf := tx.Marshal(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := UnmarshalTransaction(buf[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d/%d", cut, len(buf))
		}
	}
}

func TestBatchMarshalRoundTrip(t *testing.T) {
	b := &Batch{Txns: []Transaction{
		{Client: 1, Seq: 1, Op: []byte("a")},
		{Client: 2, Seq: 9, Op: nil},
		{Client: 3, Seq: 100, Op: bytes.Repeat([]byte{0xAB}, 500)},
	}}
	enc := b.Marshal(nil)
	got, rest, err := UnmarshalBatch(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("round trip: %v (rest %d)", err, len(rest))
	}
	if got.Digest() != b.Digest() {
		t.Fatal("digest changed across round trip")
	}
	if got.Len() != 3 {
		t.Fatalf("len %d, want 3", got.Len())
	}
}

func TestBatchDigestBindsContent(t *testing.T) {
	b1 := &Batch{Txns: []Transaction{{Client: 1, Seq: 1, Op: []byte("a")}}}
	b2 := &Batch{Txns: []Transaction{{Client: 1, Seq: 1, Op: []byte("b")}}}
	b3 := &Batch{Txns: []Transaction{{Client: 1, Seq: 2, Op: []byte("a")}}}
	if b1.Digest() == b2.Digest() || b1.Digest() == b3.Digest() {
		t.Fatal("digest collision on differing batches")
	}
}

func TestNoOpSemantics(t *testing.T) {
	n := NoOp()
	if !n.IsNoOp() {
		t.Fatal("NoOp not recognized")
	}
	real := Transaction{Client: 1, Seq: 1}
	if real.IsNoOp() {
		t.Fatal("real txn recognized as noop")
	}
	nb := NoOpBatch()
	if !nb.IsNoOp() || nb.Len() != 1 {
		t.Fatal("NoOpBatch malformed")
	}
	mixed := &Batch{Txns: []Transaction{NoOp(), real}}
	if mixed.IsNoOp() {
		t.Fatal("mixed batch flagged as noop")
	}
}

func TestCoordInstanceMapping(t *testing.T) {
	for i := InstanceID(0); i < 100; i++ {
		c := CoordInstance(i)
		if !IsCoord(c) {
			t.Fatalf("coord(%d) not recognized", i)
		}
		if IsCoord(i) {
			t.Fatalf("instance %d misread as coord", i)
		}
		if BCAOf(c) != i {
			t.Fatalf("BCAOf(coord(%d)) = %d", i, BCAOf(c))
		}
	}
}

func TestWireSizeConstantsMatchPaper(t *testing.T) {
	// §V-B: 100-txn proposal = 5400 B; 100-txn reply = 1748 B (we round to
	// 1800 with 18 B/txn); consensus messages 250 B.
	if got := ProposalWireSize(100); got != 5400 {
		t.Fatalf("proposal(100) = %d, want 5400", got)
	}
	if got := ReplyWireSize(100); got < 1748 || got > 1900 {
		t.Fatalf("reply(100) = %d, want ≈1748", got)
	}
	if ConsensusMsgBytes != 250 {
		t.Fatalf("consensus msg = %d, want 250", ConsensusMsgBytes)
	}
	if got := ProposalWireSize(0); got != ProposalBytesPerTxn {
		t.Fatalf("proposal(0) = %d, want one-txn floor", got)
	}
}

func TestDigestHelpers(t *testing.T) {
	if !ZeroDigest.IsZero() {
		t.Fatal("zero digest not zero")
	}
	d := Hash([]byte("x"))
	if d.IsZero() {
		t.Fatal("hash is zero")
	}
	if d.Uint64() == 0 && Hash([]byte("y")).Uint64() == 0 {
		t.Fatal("uint64 folding degenerate")
	}
	if len(d.String()) == 0 {
		t.Fatal("empty digest string")
	}
}

func TestAuthPayloadsDifferAcrossTypes(t *testing.T) {
	// A PREPARE and a COMMIT with identical fields must authenticate
	// differently, or votes could be replayed across phases.
	d := Hash([]byte("d"))
	p := NewPrepare(1, 2, 3, 4, d)
	c := NewCommit(1, 2, 3, 4, d)
	if bytes.Equal(p.AuthPayload(nil), c.AuthPayload(nil)) {
		t.Fatal("PREPARE and COMMIT share an auth payload")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := MsgInvalid; mt <= MsgNewEpoch; mt++ {
		if s := mt.String(); s == "" {
			t.Fatalf("empty name for type %d", mt)
		}
	}
	if MsgType(200).String() == "" {
		t.Fatal("unknown type has empty name")
	}
}

func TestMessageWireSizes(t *testing.T) {
	b := &Batch{Txns: make([]Transaction, 100)}
	pp := &PrePrepare{Batch: b}
	if pp.WireSize() != ProposalWireSize(100) {
		t.Fatal("preprepare wire size")
	}
	ppNil := &PrePrepare{}
	if ppNil.WireSize() != ConsensusMsgBytes {
		t.Fatal("digest-only preprepare wire size")
	}
	f := &Failure{State: []AcceptedProposal{{Batch: b}}}
	if f.WireSize() <= ConsensusMsgBytes {
		t.Fatal("failure with state should exceed base size")
	}
	fl := &Failure{Light: true, State: []AcceptedProposal{{Batch: b}}}
	if fl.WireSize() != ConsensusMsgBytes {
		t.Fatal("light failure should cost base size")
	}
}
