package types

// Registry-based binary codec for the shared message catalog.
//
// The transports originally gob-encoded every message, which costs a type
// registry lookup, reflection, and several allocations per message — all on
// whatever goroutine calls Send. This codec replaces that with an explicit
// MsgType tag followed by a hand-written, deterministic, big-endian body per
// type. Encoding appends into a caller-supplied buffer (so transports can
// reuse pooled buffers across messages) and decoding reads the tag and
// dispatches through a fixed registry — no reflection anywhere on the hot
// path.
//
// The encoding is self-contained per message: one tag byte, then the body.
// It deliberately reuses the deterministic Marshal forms that already exist
// for transactions and batches, so a batch's wire bytes are exactly the
// bytes its digest covers.

import (
	"encoding/binary"
	"fmt"
)

// ErrUnknownMessage reports an unregistered or invalid message tag.
type ErrUnknownMessage struct{ Tag MsgType }

func (e ErrUnknownMessage) Error() string {
	return fmt.Sprintf("types: no codec for message tag %d", uint8(e.Tag))
}

// codecEntry is one registered message type.
type codecEntry struct {
	enc func(buf []byte, m Message) []byte
	dec func(r *wireReader) Message
}

// msgCodecs is the registry, indexed by MsgType. The catalog is small and
// closed (values fit a byte), so a dense array beats a map on the hot path.
var msgCodecs [256]codecEntry

func registerCodec(t MsgType, enc func(buf []byte, m Message) []byte, dec func(r *wireReader) Message) {
	if msgCodecs[t].enc != nil {
		panic(fmt.Sprintf("types: duplicate codec for %v", t))
	}
	msgCodecs[t] = codecEntry{enc: enc, dec: dec}
}

// AppendMessage appends the binary encoding of m (tag byte + body) to buf
// and returns the extended buffer.
func AppendMessage(buf []byte, m Message) ([]byte, error) {
	t := m.Type()
	c := &msgCodecs[t]
	if c.enc == nil {
		return buf, ErrUnknownMessage{Tag: t}
	}
	buf = append(buf, byte(t))
	return c.enc(buf, m), nil
}

// MarshalMessage encodes m into a fresh buffer.
func MarshalMessage(m Message) ([]byte, error) { return AppendMessage(nil, m) }

// DecodeMessage decodes exactly one message from b. Trailing bytes are an
// error: record boundaries belong to the framing layer above.
func DecodeMessage(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("types: empty message")
	}
	t := MsgType(b[0])
	c := &msgCodecs[t]
	if c.dec == nil {
		return nil, ErrUnknownMessage{Tag: t}
	}
	r := &wireReader{b: b[1:]}
	m := c.dec(r)
	if r.err != nil {
		return nil, fmt.Errorf("types: decode %v: %w", t, r.err)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("types: decode %v: %d trailing bytes", t, len(r.b))
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

// wireReader consumes big-endian primitives from a byte slice, latching the
// first error so decoders read straight through without per-field checks.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated message")
	}
	r.b = nil
}

func (r *wireReader) u8() uint8 {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) u16() uint16 {
	if len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *wireReader) u32() uint32 {
	if len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *wireReader) u64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *wireReader) bool() bool { return r.u8() != 0 }

func (r *wireReader) digest() Digest {
	var d Digest
	if len(r.b) < len(d) {
		r.fail()
		return d
	}
	copy(d[:], r.b)
	r.b = r.b[len(d):]
	return d
}

// blob reads a u32-length-prefixed byte string (copied out of the frame
// buffer, which the transport recycles). A zero length decodes as nil so
// round-trips preserve nil-ness.
func (r *wireReader) blob() []byte {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	if len(r.b) < n {
		r.fail()
		return nil
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out
}

func (r *wireReader) batch() *Batch {
	if !r.bool() { // presence byte: proposals retransmit digest-only
		return nil
	}
	if r.err != nil {
		return nil
	}
	b, rest, err := UnmarshalBatch(r.b)
	if err != nil {
		if r.err == nil {
			r.err = err
		}
		r.b = nil
		return nil
	}
	r.b = rest
	return b
}

func (r *wireReader) replicas() []ReplicaID {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	if len(r.b) < 2*n {
		r.fail()
		return nil
	}
	out := make([]ReplicaID, n)
	for i := range out {
		out[i] = ReplicaID(r.u16())
	}
	return out
}

// minProposalLen is the encoded floor of one AcceptedProposal (round +
// view + digest + prepared + batch-presence byte): decode-side allocation
// bounds divide by it so a forged count cannot amplify a small frame into
// a huge allocation (counts may arrive unauthenticated).
const minProposalLen = 8 + 8 + 32 + 1 + 1

func (r *wireReader) proposals() []AcceptedProposal {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	if n > len(r.b)/minProposalLen {
		r.fail()
		return nil
	}
	out := make([]AcceptedProposal, n)
	for i := range out {
		out[i] = r.proposal()
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *wireReader) proposal() AcceptedProposal {
	return AcceptedProposal{
		Round:    Round(r.u64()),
		View:     View(r.u64()),
		Digest:   r.digest(),
		Prepared: r.bool(),
		Batch:    r.batch(),
	}
}

func (r *wireReader) qc() QuorumCert {
	return QuorumCert{
		View:    View(r.u64()),
		Round:   Round(r.u64()),
		Block:   r.digest(),
		Signers: r.replicas(),
	}
}

func appendU16(buf []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(buf, v) }
func appendU32(buf []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(buf, v) }
func appendU64(buf []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(buf, v) }

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendBlob(buf, b []byte) []byte {
	buf = appendU32(buf, uint32(len(b)))
	return append(buf, b...)
}

func appendBatch(buf []byte, b *Batch) []byte {
	if b == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return b.Marshal(buf)
}

func appendReplicas(buf []byte, rs []ReplicaID) []byte {
	buf = appendU32(buf, uint32(len(rs)))
	for _, r := range rs {
		buf = appendU16(buf, uint16(r))
	}
	return buf
}

func appendProposal(buf []byte, p *AcceptedProposal) []byte {
	buf = appendU64(buf, uint64(p.Round))
	buf = appendU64(buf, uint64(p.View))
	buf = append(buf, p.Digest[:]...)
	buf = appendBool(buf, p.Prepared)
	return appendBatch(buf, p.Batch)
}

func appendProposals(buf []byte, ps []AcceptedProposal) []byte {
	buf = appendU32(buf, uint32(len(ps)))
	for i := range ps {
		buf = appendProposal(buf, &ps[i])
	}
	return buf
}

func appendQC(buf []byte, qc *QuorumCert) []byte {
	buf = appendU64(buf, uint64(qc.View))
	buf = appendU64(buf, uint64(qc.Round))
	buf = append(buf, qc.Block[:]...)
	return appendReplicas(buf, qc.Signers)
}

// ---------------------------------------------------------------------------
// Per-type codecs
// ---------------------------------------------------------------------------

func init() {
	registerCodec(MsgClientRequest,
		func(buf []byte, m Message) []byte {
			v := m.(*ClientRequest)
			buf = appendU16(buf, uint16(v.Inst))
			return v.Tx.Marshal(buf)
		},
		func(r *wireReader) Message {
			v := &ClientRequest{Header: Header{Inst: InstanceID(r.u16())}}
			if r.err != nil {
				return v
			}
			tx, rest, err := UnmarshalTransaction(r.b)
			if err != nil {
				r.err = err
				r.b = nil
				return v
			}
			v.Tx, r.b = tx, rest
			return v
		})

	registerCodec(MsgClientReply,
		func(buf []byte, m Message) []byte {
			v := m.(*ClientReply)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU32(buf, uint32(v.Client))
			buf = appendU64(buf, v.Seq)
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.Result[:]...)
			return appendU32(buf, uint32(v.Count))
		},
		func(r *wireReader) Message {
			return &ClientReply{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				Client:  ClientID(r.u32()),
				Seq:     r.u64(),
				Round:   Round(r.u64()),
				Result:  r.digest(),
				Count:   int(r.u32()),
			}
		})

	registerCodec(MsgSwitchInstance,
		func(buf []byte, m Message) []byte {
			v := m.(*SwitchInstance)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU32(buf, uint32(v.Client))
			return appendU16(buf, uint16(v.To))
		},
		func(r *wireReader) Message {
			return &SwitchInstance{
				Header: Header{Inst: InstanceID(r.u16())},
				Client: ClientID(r.u32()),
				To:     InstanceID(r.u16()),
			}
		})

	registerCodec(MsgPrePrepare,
		func(buf []byte, m Message) []byte {
			v := m.(*PrePrepare)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.Digest[:]...)
			return appendBatch(buf, v.Batch)
		},
		func(r *wireReader) Message {
			return &PrePrepare{
				Header: Header{Inst: InstanceID(r.u16())},
				View:   View(r.u64()),
				Round:  Round(r.u64()),
				Digest: r.digest(),
				Batch:  r.batch(),
			}
		})

	encVote := func(buf []byte, v *PhaseVote) []byte {
		buf = appendU16(buf, uint16(v.Inst))
		buf = appendU16(buf, uint16(v.Replica))
		buf = appendU64(buf, uint64(v.View))
		buf = appendU64(buf, uint64(v.Round))
		return append(buf, v.Digest[:]...)
	}
	decVote := func(r *wireReader) PhaseVote {
		return PhaseVote{
			Header:  Header{Inst: InstanceID(r.u16())},
			Replica: ReplicaID(r.u16()),
			View:    View(r.u64()),
			Round:   Round(r.u64()),
			Digest:  r.digest(),
		}
	}
	registerCodec(MsgPrepare,
		func(buf []byte, m Message) []byte { return encVote(buf, &m.(*Prepare).PhaseVote) },
		func(r *wireReader) Message { return &Prepare{PhaseVote: decVote(r)} })
	registerCodec(MsgCommit,
		func(buf []byte, m Message) []byte { return encVote(buf, &m.(*Commit).PhaseVote) },
		func(r *wireReader) Message { return &Commit{PhaseVote: decVote(r)} })

	registerCodec(MsgCheckpoint,
		func(buf []byte, m Message) []byte {
			v := m.(*Checkpoint)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.State[:]...)
			return appendProposals(buf, v.Proposals)
		},
		func(r *wireReader) Message {
			return &Checkpoint{
				Header:    Header{Inst: InstanceID(r.u16())},
				Replica:   ReplicaID(r.u16()),
				Round:     Round(r.u64()),
				State:     r.digest(),
				Proposals: r.proposals(),
			}
		})

	registerCodec(MsgViewChange,
		func(buf []byte, m Message) []byte {
			v := m.(*ViewChange)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.NewView))
			buf = appendU64(buf, uint64(v.StableCkp))
			return appendProposals(buf, v.Prepared)
		},
		func(r *wireReader) Message {
			return &ViewChange{
				Header:    Header{Inst: InstanceID(r.u16())},
				Replica:   ReplicaID(r.u16()),
				NewView:   View(r.u64()),
				StableCkp: Round(r.u64()),
				Prepared:  r.proposals(),
			}
		})

	registerCodec(MsgNewView,
		func(buf []byte, m Message) []byte {
			v := m.(*NewView)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.NewView))
			buf = appendReplicas(buf, v.ViewProofs)
			return appendProposals(buf, v.Reproposed)
		},
		func(r *wireReader) Message {
			return &NewView{
				Header:     Header{Inst: InstanceID(r.u16())},
				Replica:    ReplicaID(r.u16()),
				NewView:    View(r.u64()),
				ViewProofs: r.replicas(),
				Reproposed: r.proposals(),
			}
		})

	registerCodec(MsgFailure,
		func(buf []byte, m Message) []byte { return appendFailure(buf, m.(*Failure)) },
		func(r *wireReader) Message { return decodeFailure(r) })

	registerCodec(MsgStop,
		func(buf []byte, m Message) []byte {
			v := m.(*Stop)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Target))
			buf = appendU32(buf, uint32(len(v.Evidence)))
			for _, f := range v.Evidence {
				buf = appendFailure(buf, f)
			}
			return buf
		},
		func(r *wireReader) Message {
			v := &Stop{
				Header: Header{Inst: InstanceID(r.u16())},
				Target: InstanceID(r.u16()),
			}
			n := int(r.u32())
			if r.err != nil || n == 0 {
				return v
			}
			// A Failure encodes to ≥17 bytes (inst+replica+round+light+
			// state count): bound the count like proposals() does.
			if n > len(r.b)/17 {
				r.fail()
				return v
			}
			v.Evidence = make([]*Failure, n)
			for i := range v.Evidence {
				v.Evidence[i] = decodeFailure(r)
			}
			return v
		})

	registerCodec(MsgOrderRequest,
		func(buf []byte, m Message) []byte {
			v := m.(*OrderRequest)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.History[:]...)
			buf = append(buf, v.Digest[:]...)
			return appendBatch(buf, v.Batch)
		},
		func(r *wireReader) Message {
			return &OrderRequest{
				Header:  Header{Inst: InstanceID(r.u16())},
				View:    View(r.u64()),
				Round:   Round(r.u64()),
				History: r.digest(),
				Digest:  r.digest(),
				Batch:   r.batch(),
			}
		})

	registerCodec(MsgSpecResponse,
		func(buf []byte, m Message) []byte {
			v := m.(*SpecResponse)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.History[:]...)
			buf = append(buf, v.Result[:]...)
			buf = appendU32(buf, uint32(v.Client))
			return appendU32(buf, uint32(v.Count))
		},
		func(r *wireReader) Message {
			return &SpecResponse{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				View:    View(r.u64()),
				Round:   Round(r.u64()),
				History: r.digest(),
				Result:  r.digest(),
				Client:  ClientID(r.u32()),
				Count:   int(r.u32()),
			}
		})

	registerCodec(MsgCommitCert,
		func(buf []byte, m Message) []byte {
			v := m.(*CommitCert)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU32(buf, uint32(v.Client))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.History[:]...)
			return appendReplicas(buf, v.Responses)
		},
		func(r *wireReader) Message {
			return &CommitCert{
				Header:    Header{Inst: InstanceID(r.u16())},
				Client:    ClientID(r.u32()),
				View:      View(r.u64()),
				Round:     Round(r.u64()),
				History:   r.digest(),
				Responses: r.replicas(),
			}
		})

	registerCodec(MsgLocalCommit,
		func(buf []byte, m Message) []byte {
			v := m.(*LocalCommit)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.History[:]...)
			return appendU32(buf, uint32(v.Client))
		},
		func(r *wireReader) Message {
			return &LocalCommit{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				View:    View(r.u64()),
				Round:   Round(r.u64()),
				History: r.digest(),
				Client:  ClientID(r.u32()),
			}
		})

	registerCodec(MsgFillHole,
		func(buf []byte, m Message) []byte {
			v := m.(*FillHole)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.From))
			return appendU64(buf, uint64(v.To))
		},
		func(r *wireReader) Message {
			return &FillHole{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				View:    View(r.u64()),
				From:    Round(r.u64()),
				To:      Round(r.u64()),
			}
		})

	registerCodec(MsgIHatePrimary,
		func(buf []byte, m Message) []byte {
			v := m.(*IHatePrimary)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			return appendU64(buf, uint64(v.View))
		},
		func(r *wireReader) Message {
			return &IHatePrimary{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				View:    View(r.u64()),
			}
		})

	registerCodec(MsgSignShare,
		func(buf []byte, m Message) []byte {
			v := m.(*SignShare)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.Digest[:]...)
			return appendBlob(buf, v.Share)
		},
		func(r *wireReader) Message {
			return &SignShare{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				View:    View(r.u64()),
				Round:   Round(r.u64()),
				Digest:  r.digest(),
				Share:   r.blob(),
			}
		})

	registerCodec(MsgFullCommitProof,
		func(buf []byte, m Message) []byte {
			v := m.(*FullCommitProof)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.Digest[:]...)
			return appendBlob(buf, v.Combined)
		},
		func(r *wireReader) Message {
			return &FullCommitProof{
				Header:   Header{Inst: InstanceID(r.u16())},
				Replica:  ReplicaID(r.u16()),
				View:     View(r.u64()),
				Round:    Round(r.u64()),
				Digest:   r.digest(),
				Combined: r.blob(),
			}
		})

	registerCodec(MsgSignStateShare,
		func(buf []byte, m Message) []byte {
			v := m.(*SignStateShare)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.State[:]...)
			return appendBlob(buf, v.Share)
		},
		func(r *wireReader) Message {
			return &SignStateShare{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				Round:   Round(r.u64()),
				State:   r.digest(),
				Share:   r.blob(),
			}
		})

	registerCodec(MsgFullExecuteProof,
		func(buf []byte, m Message) []byte {
			v := m.(*FullExecuteProof)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.State[:]...)
			return appendBlob(buf, v.Combined)
		},
		func(r *wireReader) Message {
			return &FullExecuteProof{
				Header:   Header{Inst: InstanceID(r.u16())},
				Replica:  ReplicaID(r.u16()),
				Round:    Round(r.u64()),
				State:    r.digest(),
				Combined: r.blob(),
			}
		})

	registerCodec(MsgHSProposal,
		func(buf []byte, m Message) []byte {
			v := m.(*HSProposal)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.Parent[:]...)
			buf = append(buf, v.Digest[:]...)
			buf = appendBatch(buf, v.Batch)
			return appendQC(buf, &v.Justify)
		},
		func(r *wireReader) Message {
			return &HSProposal{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				View:    View(r.u64()),
				Round:   Round(r.u64()),
				Parent:  r.digest(),
				Digest:  r.digest(),
				Batch:   r.batch(),
				Justify: r.qc(),
			}
		})

	registerCodec(MsgHSVote,
		func(buf []byte, m Message) []byte {
			v := m.(*HSVote)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.View))
			buf = appendU64(buf, uint64(v.Round))
			buf = append(buf, v.Block[:]...)
			return appendBlob(buf, v.Share)
		},
		func(r *wireReader) Message {
			return &HSVote{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				View:    View(r.u64()),
				Round:   Round(r.u64()),
				Block:   r.digest(),
				Share:   r.blob(),
			}
		})

	registerCodec(MsgHSNewView,
		func(buf []byte, m Message) []byte {
			v := m.(*HSNewView)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, uint64(v.View))
			return appendQC(buf, &v.HighQC)
		},
		func(r *wireReader) Message {
			return &HSNewView{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				View:    View(r.u64()),
				HighQC:  r.qc(),
			}
		})

	registerCodec(MsgEpochChange,
		func(buf []byte, m Message) []byte {
			v := m.(*EpochChange)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, v.Epoch)
			buf = appendU16(buf, uint16(v.Failed))
			return appendU64(buf, uint64(v.Round))
		},
		func(r *wireReader) Message {
			return &EpochChange{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				Epoch:   r.u64(),
				Failed:  InstanceID(r.u16()),
				Round:   Round(r.u64()),
			}
		})

	registerCodec(MsgNewEpoch,
		func(buf []byte, m Message) []byte {
			v := m.(*NewEpoch)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, v.Epoch)
			buf = appendReplicas(buf, v.Leaders)
			return appendU64(buf, uint64(v.StartRound))
		},
		func(r *wireReader) Message {
			return &NewEpoch{
				Header:     Header{Inst: InstanceID(r.u16())},
				Replica:    ReplicaID(r.u16()),
				Epoch:      r.u64(),
				Leaders:    r.replicas(),
				StartRound: Round(r.u64()),
			}
		})
}

func appendFailure(buf []byte, v *Failure) []byte {
	buf = appendU16(buf, uint16(v.Inst))
	buf = appendU16(buf, uint16(v.Replica))
	buf = appendU64(buf, uint64(v.Round))
	buf = appendBool(buf, v.Light)
	return appendProposals(buf, v.State)
}

func decodeFailure(r *wireReader) *Failure {
	return &Failure{
		Header:  Header{Inst: InstanceID(r.u16())},
		Replica: ReplicaID(r.u16()),
		Round:   Round(r.u64()),
		Light:   r.bool(),
		State:   r.proposals(),
	}
}
