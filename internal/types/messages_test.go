package types

import (
	"bytes"
	"testing"
)

// allMessages builds one populated instance of every message type.
func allMessages() []Message {
	b := &Batch{Txns: []Transaction{{Client: 9, Seq: 3, Op: []byte("op")}}}
	d := b.Digest()
	h := Hash([]byte("chain"))
	ap := []AcceptedProposal{{Round: 2, View: 1, Digest: d, Batch: b, Prepared: true}}
	msgs := []Message{
		NewClientRequest(1, b.Txns[0]),
		&ClientReply{Replica: 1, Client: 9, Seq: 3, Round: 2, Result: d, Count: 1},
		&SwitchInstance{Client: 9, To: 2},
		&PrePrepare{View: 1, Round: 2, Digest: d, Batch: b},
		NewPrepare(1, 2, 1, 2, d),
		NewCommit(1, 2, 1, 2, d),
		&Checkpoint{Replica: 1, Round: 2, State: h, Proposals: ap},
		&ViewChange{Replica: 1, NewView: 3, StableCkp: 1, Prepared: ap},
		&NewView{Replica: 1, NewView: 3, ViewProofs: []ReplicaID{0, 1, 2}, Reproposed: ap},
		&Failure{Replica: 1, Round: 2, State: ap},
		&Stop{Target: 1, Evidence: []*Failure{{Replica: 1, Round: 2}}},
		&OrderRequest{View: 1, Round: 2, History: h, Digest: d, Batch: b},
		&SpecResponse{Replica: 1, View: 1, Round: 2, History: h, Result: d, Client: 9, Count: 1},
		&CommitCert{Client: 9, View: 1, Round: 2, History: h, Responses: []ReplicaID{0, 1, 2}},
		&LocalCommit{Replica: 1, View: 1, Round: 2, History: h, Client: 9},
		&FillHole{Replica: 1, View: 1, From: 2, To: 5},
		&IHatePrimary{Replica: 1, View: 1},
		&SignShare{Replica: 1, View: 1, Round: 2, Digest: d, Share: []byte("sh")},
		&FullCommitProof{Replica: 1, View: 1, Round: 2, Digest: d, Combined: []byte("cb")},
		&SignStateShare{Replica: 1, Round: 2, State: h, Share: []byte("sh")},
		&FullExecuteProof{Replica: 1, Round: 2, State: h, Combined: []byte("cb")},
		&HSProposal{Replica: 1, View: 1, Round: 2, Parent: h, Digest: d, Batch: b},
		&HSVote{Replica: 1, View: 1, Round: 2, Block: d, Share: []byte("sh")},
		&HSNewView{Replica: 1, View: 1, HighQC: QuorumCert{View: 1, Block: d}},
		&EpochChange{Replica: 1, Epoch: 2, Failed: 1, Round: 2},
		&NewEpoch{Replica: 1, Epoch: 2, Leaders: []ReplicaID{0, 2}, StartRound: 9},
	}
	return msgs
}

// TestAuthPayloadsPairwiseDistinct checks that no two message types (with
// overlapping field values) authenticate to the same bytes: a tag for one
// message must never verify another.
func TestAuthPayloadsPairwiseDistinct(t *testing.T) {
	msgs := allMessages()
	seen := make(map[string]MsgType)
	for _, m := range msgs {
		payload := string(m.AuthPayload(nil))
		if prev, dup := seen[payload]; dup {
			t.Fatalf("%s and %s share an auth payload", prev, m.Type())
		}
		seen[payload] = m.Type()
	}
}

// TestAuthPayloadsDeterministic checks replayability of the authenticated
// form (MACs/signatures are computed over it on both ends).
func TestAuthPayloadsDeterministic(t *testing.T) {
	for _, m := range allMessages() {
		if !bytes.Equal(m.AuthPayload(nil), m.AuthPayload(nil)) {
			t.Fatalf("%s: auth payload not deterministic", m.Type())
		}
	}
}

// TestAuthPayloadsAppend checks the append contract: the payload goes after
// whatever the caller already buffered.
func TestAuthPayloadsAppend(t *testing.T) {
	prefix := []byte("prefix")
	for _, m := range allMessages() {
		out := m.AuthPayload(append([]byte(nil), prefix...))
		if !bytes.HasPrefix(out, prefix) {
			t.Fatalf("%s: append contract broken", m.Type())
		}
		if !bytes.Equal(out[len(prefix):], m.AuthPayload(nil)) {
			t.Fatalf("%s: appended payload differs", m.Type())
		}
	}
}

// TestWireSizesPositiveAndTyped checks every message reports a positive
// simulated wire size and its declared type.
func TestWireSizesPositiveAndTyped(t *testing.T) {
	for _, m := range allMessages() {
		if m.WireSize() <= 0 {
			t.Fatalf("%s: non-positive wire size", m.Type())
		}
		if m.Type() == MsgInvalid {
			t.Fatalf("%T: invalid type", m)
		}
	}
}

// TestInstanceRouting checks the Header Instance accessor survives each
// concrete type.
func TestInstanceRouting(t *testing.T) {
	for _, m := range allMessages() {
		pp, ok := m.(*PrePrepare)
		if !ok {
			continue
		}
		pp.Inst = 7
		if pp.Instance() != 7 {
			t.Fatal("instance accessor broken")
		}
	}
}

// TestBatchCarryingSizesScale checks that batch-carrying messages charge
// proposal-proportional wire sizes while votes stay constant.
func TestBatchCarryingSizesScale(t *testing.T) {
	small := &Batch{Txns: make([]Transaction, 10)}
	large := &Batch{Txns: make([]Transaction, 400)}
	if (&PrePrepare{Batch: small}).WireSize() >= (&PrePrepare{Batch: large}).WireSize() {
		t.Fatal("preprepare size does not scale with batch")
	}
	if (&OrderRequest{Batch: small}).WireSize() >= (&OrderRequest{Batch: large}).WireSize() {
		t.Fatal("order request size does not scale with batch")
	}
	if (&HSProposal{Batch: small}).WireSize() >= (&HSProposal{Batch: large}).WireSize() {
		t.Fatal("hotstuff proposal size does not scale with batch")
	}
	v := NewPrepare(0, 0, 0, 1, ZeroDigest)
	if v.WireSize() != ConsensusMsgBytes {
		t.Fatal("vote size not constant")
	}
	// Aggregates charge their contents.
	ap := []AcceptedProposal{{Batch: large}}
	if (&ViewChange{Prepared: ap}).WireSize() <= ConsensusMsgBytes {
		t.Fatal("view change ignores carried proposals")
	}
	if (&NewView{Reproposed: ap}).WireSize() <= ConsensusMsgBytes {
		t.Fatal("new view ignores carried proposals")
	}
	st := &Stop{Evidence: []*Failure{{State: ap}}}
	if st.WireSize() <= ConsensusMsgBytes {
		t.Fatal("stop ignores carried evidence")
	}
}
