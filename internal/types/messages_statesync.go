package types

import "encoding/binary"

// State-transfer message catalog (internal/statesync). A replica that is
// behind — wiped, corrupted, or long-partitioned — probes its peers, picks
// an f+1-attested target, fetches the latest snapshot in bounded chunks
// plus the ledger suffix from snapshot height to head, verifies everything
// against the attested digests, and installs the result. These messages are
// handled by the replica runtime, never by the consensus machines.

// NoChunk marks a SnapshotRequest that probes for a StateOffer instead of
// asking for a chunk.
const NoChunk = uint32(0xFFFFFFFF)

// StateOffer advertises the durable state a replica can serve: its latest
// application snapshot (identified by content digests so the fetcher can
// verify what it receives) and its current ledger head. A fetcher trusts an
// offer tuple only once f+1 distinct replicas advertise byte-identical
// contents — at least one of them is honest, so the digests inside are real.
type StateOffer struct {
	Header
	Replica ReplicaID
	// SnapHeight is the ledger height of the advertised snapshot (the
	// number of blocks its state covers); 0 when the sender has no
	// snapshot and can only serve block ranges.
	SnapHeight uint64
	// SnapSize is the snapshot's serialized application state in bytes.
	SnapSize uint64
	// ChunkBytes is the chunk size the sender serves (the last chunk may
	// be shorter).
	ChunkBytes uint32
	// SnapAppHash is the SHA-256 of the snapshot's application-state
	// bytes: the fetcher verifies the reassembled chunks against it.
	SnapAppHash Digest
	// SnapHeadHash is the hash of block SnapHeight-1 — the anchor the
	// fetched block range must chain from.
	SnapHeadHash Digest
	// SnapStateDigest is block SnapHeight-1's StateHash (the application's
	// own digest at the snapshot point).
	SnapStateDigest Digest
	// TxnCount is the cumulative transaction count of the chain through
	// SnapHeight (restarted replicas must resume the executed counter to
	// keep client replies identical to peers').
	TxnCount uint64
	// Height and HeadHash name the sender's current ledger head; blocks
	// [SnapHeight, Height) are fetchable as ranges.
	Height   uint64
	HeadHash Digest
	// SyncPoint is the consensus machine's deterministic frontier
	// serialization (sm.StateSyncable), consistent with Height: installing
	// it lets the fetcher's machine rejoin at the head instead of waiting
	// on rounds that were decided while it was gone.
	SyncPoint []byte
	// AttSyncPoint and Att, when non-empty, carry the checkpoint-boundary
	// attestation of the advertised snapshot: AttSyncPoint is the machine
	// frontier serialized at the snapshot's delivery boundary
	// (sm.BoundarySyncable), and Att is a marshaled crypto.Attestation —
	// f+1 combined threshold shares over the digest binding the Snap*
	// fields to AttSyncPoint. A fetcher holding the group scheme can trust
	// this ONE offer without f+1 byte-identical peers, which is what lets a
	// wiped replica rejoin while the cluster is under load and its live
	// heads never agree.
	AttSyncPoint []byte
	Att          []byte
}

func (m *StateOffer) Type() MsgType { return MsgStateOffer }
func (m *StateOffer) WireSize() int {
	return ConsensusMsgBytes + len(m.SyncPoint) + len(m.AttSyncPoint) + len(m.Att)
}
func (m *StateOffer) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgStateOffer)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, m.SnapHeight)
	buf = binary.BigEndian.AppendUint64(buf, m.SnapSize)
	buf = binary.BigEndian.AppendUint32(buf, m.ChunkBytes)
	buf = append(buf, m.SnapAppHash[:]...)
	buf = append(buf, m.SnapHeadHash[:]...)
	buf = append(buf, m.SnapStateDigest[:]...)
	buf = binary.BigEndian.AppendUint64(buf, m.TxnCount)
	buf = binary.BigEndian.AppendUint64(buf, m.Height)
	buf = append(buf, m.HeadHash[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.SyncPoint)))
	buf = append(buf, m.SyncPoint...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.AttSyncPoint)))
	buf = append(buf, m.AttSyncPoint...)
	return append(buf, m.Att...)
}

// SnapshotRequest asks a peer either for its StateOffer (Chunk == NoChunk, a
// probe) or for one chunk of the snapshot at Height.
type SnapshotRequest struct {
	Header
	Replica ReplicaID // requester
	Height  uint64    // snapshot height wanted; ignored for probes
	Chunk   uint32    // chunk index, or NoChunk for a probe
}

// IsProbe reports whether the request asks for a StateOffer.
func (m *SnapshotRequest) IsProbe() bool { return m.Chunk == NoChunk }

func (m *SnapshotRequest) Type() MsgType { return MsgSnapshotRequest }
func (m *SnapshotRequest) WireSize() int { return ConsensusMsgBytes }
func (m *SnapshotRequest) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgSnapshotRequest)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, m.Height)
	return binary.BigEndian.AppendUint32(buf, m.Chunk)
}

// SnapshotChunk carries chunk Chunk (of Of total) of the application-state
// bytes of the snapshot at Height. Chunks are worthless individually: the
// fetcher reassembles all Of chunks and verifies the whole against the
// attested SnapAppHash before anything is installed.
type SnapshotChunk struct {
	Header
	Replica ReplicaID // sender
	Height  uint64
	Chunk   uint32
	Of      uint32 // total chunk count
	Data    []byte
}

func (m *SnapshotChunk) Type() MsgType { return MsgSnapshotChunk }
func (m *SnapshotChunk) WireSize() int { return ConsensusMsgBytes + len(m.Data) }
func (m *SnapshotChunk) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgSnapshotChunk)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, m.Height)
	buf = binary.BigEndian.AppendUint32(buf, m.Chunk)
	buf = binary.BigEndian.AppendUint32(buf, m.Of)
	return append(buf, m.Data...)
}

// BlockRangeRequest asks for the encoded ledger blocks of heights
// [From, To). Servers may answer with fewer blocks than asked (bounded
// response size); the fetcher advances From and asks again.
type BlockRangeRequest struct {
	Header
	Replica ReplicaID // requester
	From    uint64
	To      uint64
}

func (m *BlockRangeRequest) Type() MsgType { return MsgBlockRangeRequest }
func (m *BlockRangeRequest) WireSize() int { return ConsensusMsgBytes }
func (m *BlockRangeRequest) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgBlockRangeRequest)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, m.From)
	return binary.BigEndian.AppendUint64(buf, m.To)
}

// BlockRange answers a BlockRangeRequest: Blocks[i] is the wire encoding
// (ledger.EncodeBlock) of the block at height From+i. The fetcher verifies
// every block against the chain's hash links before installing — a range
// served at the wrong height, or with substituted blocks, fails the link to
// the attested anchor.
type BlockRange struct {
	Header
	Replica ReplicaID // sender
	From    uint64
	Blocks  [][]byte
}

func (m *BlockRange) Type() MsgType { return MsgBlockRange }
func (m *BlockRange) WireSize() int {
	sz := ConsensusMsgBytes
	for _, b := range m.Blocks {
		sz += len(b)
	}
	return sz
}
func (m *BlockRange) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgBlockRange)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, m.From)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Blocks)))
	for _, b := range m.Blocks {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// CheckpointAttest carries one replica's threshold-signature share over its
// checkpoint-boundary attestation digest (internal/statesync): Digest binds
// the snapshot at Height to the machine frontier serialized at the same
// delivery boundary, and Share is the sender's share over Digest. A replica
// that gathers f+1 shares whose digests match its own combines them into
// the aggregate Attestation its StateOffers then carry.
type CheckpointAttest struct {
	Header
	Replica ReplicaID
	Height  uint64
	Digest  Digest
	Share   []byte
}

func (m *CheckpointAttest) Type() MsgType { return MsgCheckpointAttest }
func (m *CheckpointAttest) WireSize() int { return ConsensusMsgBytes + len(m.Share) }
func (m *CheckpointAttest) AuthPayload(buf []byte) []byte {
	buf = m.marshal(buf, MsgCheckpointAttest)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.Replica))
	buf = binary.BigEndian.AppendUint64(buf, m.Height)
	buf = append(buf, m.Digest[:]...)
	return append(buf, m.Share...)
}
