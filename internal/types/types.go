// Package types defines the identifiers, transactions, batches, and the
// shared message catalog used by every consensus protocol in this
// repository.
//
// All encodings are deterministic: two replicas marshalling the same value
// produce identical bytes, which is required both for digests (proposals
// are identified by their digest) and for authenticators (MACs and
// signatures are computed over the marshalled form).
//
// Wire sizes follow the constants reported in the RCC paper (§V-B): a
// 100-transaction proposal is 5400 B (54 B per transaction), a client reply
// for 100 transactions is 1748 B, and all other consensus messages are
// 250 B. WireSize is what the simulators charge against link bandwidth; the
// actual marshalled form may be smaller.
//
// The package also provides the registry-based binary codec the transports
// put on the wire (codec.go): AppendMessage/MarshalMessage emit an explicit
// MsgType tag followed by a hand-written big-endian body, DecodeMessage
// dispatches on the tag — no reflection, append-into-caller-buffer so
// encode buffers pool, and an exhaustive round-trip test pins every type in
// the catalog (BenchmarkCodec measures the gap vs the gob encoding this
// replaced).
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// ReplicaID identifies a replica. Replicas are numbered 0..n-1.
type ReplicaID uint16

// NoReplica is a sentinel for "no replica" (e.g. broadcast destinations).
const NoReplica = ReplicaID(0xffff)

// InstanceID identifies a consensus instance. Under RCC, instance i of the
// Byzantine commit algorithm is coordinated by primary P_i = replica i.
// Coordinating (recovery) consensus instances use a disjoint ID range; see
// CoordInstance.
type InstanceID uint16

// CoordOffset separates BCA instance IDs from the per-instance coordinating
// consensus protocol P used during recovery (paper §III-C).
const CoordOffset InstanceID = 1 << 12

// CoordInstance returns the instance ID of the coordinating consensus
// protocol responsible for recovering BCA instance i.
func CoordInstance(i InstanceID) InstanceID { return i + CoordOffset }

// IsCoord reports whether id names a coordinating consensus instance.
func IsCoord(id InstanceID) bool { return id >= CoordOffset }

// BCAOf returns the BCA instance a coordinating instance recovers.
func BCAOf(id InstanceID) InstanceID { return id - CoordOffset }

// ClientID identifies a client.
type ClientID uint32

// View numbers the views of a primary-backup protocol.
type View uint64

// Round numbers consensus rounds (sequence numbers) within an instance.
type Round uint64

// StateKey identifies one unit of application state for conflict
// detection: two transactions conflict exactly when their key sets
// intersect (see exec.Application). Applications map their own state
// identifiers onto StateKey — YCSB uses record indices directly, the bank
// hashes account names with KeyBytes. Collisions are safe: they can only
// merge two non-conflicting transactions into one serialized group, never
// split a real conflict.
type StateKey uint64

// KeyBytes maps an application state identifier onto a StateKey with
// FNV-1a (deterministic across replicas, allocation-free).
func KeyBytes(b []byte) StateKey {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return StateKey(h)
}

// KeyString is KeyBytes for a string identifier.
func KeyString(s string) StateKey {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return StateKey(h)
}

// Digest is a SHA-256 digest used to identify proposals and states.
type Digest [32]byte

// ZeroDigest is the all-zero digest.
var ZeroDigest Digest

func (d Digest) String() string { return fmt.Sprintf("%x", d[:6]) }

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// Uint64 folds the digest into a uint64, used to seed the deterministic
// execution-order permutation (paper §IV).
func (d Digest) Uint64() uint64 { return binary.BigEndian.Uint64(d[:8]) }

// Hash computes the SHA-256 digest of data.
func Hash(data []byte) Digest { return sha256.Sum256(data) }

// Transaction is a client-signed request ⟨T⟩_c. Op is an opaque payload
// interpreted by the execution engine (YCSB operation, bank transfer, ...).
type Transaction struct {
	Client ClientID
	Seq    uint64 // per-client sequence number
	Op     []byte
}

// NoOp returns the small no-op transaction a primary proposes when it has no
// client transactions but observes other instances progressing (§III-E).
func NoOp() Transaction { return Transaction{Client: 0, Seq: 0, Op: nil} }

// IsNoOp reports whether t is a no-op transaction.
func (t *Transaction) IsNoOp() bool { return t.Client == 0 && t.Seq == 0 && len(t.Op) == 0 }

// Marshal appends the deterministic encoding of t to buf.
func (t *Transaction) Marshal(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Client))
	buf = binary.BigEndian.AppendUint64(buf, t.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.Op)))
	return append(buf, t.Op...)
}

// UnmarshalTransaction decodes a transaction from buf, returning the rest.
func UnmarshalTransaction(buf []byte) (Transaction, []byte, error) {
	var t Transaction
	if len(buf) < 16 {
		return t, nil, fmt.Errorf("types: short transaction: %d bytes", len(buf))
	}
	t.Client = ClientID(binary.BigEndian.Uint32(buf))
	t.Seq = binary.BigEndian.Uint64(buf[4:])
	n := int(binary.BigEndian.Uint32(buf[12:]))
	buf = buf[16:]
	if len(buf) < n {
		return t, nil, fmt.Errorf("types: transaction op truncated: want %d have %d", n, len(buf))
	}
	if n > 0 {
		t.Op = append([]byte(nil), buf[:n]...)
	}
	return t, buf[n:], nil
}

// Digest returns the digest identifying t.
func (t *Transaction) Digest() Digest { return Hash(t.Marshal(nil)) }

// Batch groups client transactions into one proposal (§V-B: ResilientDB
// typically groups 100 txn/batch to amortize consensus cost).
type Batch struct {
	Txns []Transaction
}

// Marshal appends the deterministic encoding of b to buf.
func (b *Batch) Marshal(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b.Txns)))
	for i := range b.Txns {
		buf = b.Txns[i].Marshal(buf)
	}
	return buf
}

// UnmarshalBatch decodes a batch from buf, returning the rest.
func UnmarshalBatch(buf []byte) (*Batch, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("types: short batch")
	}
	n := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	// The count arrives from the network (and, via the transport codec,
	// possibly from an unauthenticated peer): cap the pre-allocation by
	// what the buffer could physically hold (a transaction is ≥16 bytes)
	// so a forged count cannot demand gigabytes before the first
	// per-transaction bounds check fails.
	capHint := n
	if most := len(buf) / 16; capHint > most {
		capHint = most
	}
	b := &Batch{Txns: make([]Transaction, 0, capHint)}
	for i := 0; i < n; i++ {
		t, rest, err := UnmarshalTransaction(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("types: batch txn %d: %w", i, err)
		}
		b.Txns = append(b.Txns, t)
		buf = rest
	}
	return b, buf, nil
}

// Digest returns the digest identifying the batch.
func (b *Batch) Digest() Digest { return Hash(b.Marshal(nil)) }

// Len returns the number of transactions in the batch.
func (b *Batch) Len() int { return len(b.Txns) }

// IsNoOp reports whether the batch is a single no-op filler.
func (b *Batch) IsNoOp() bool { return len(b.Txns) == 1 && b.Txns[0].IsNoOp() }

// NoOpBatch returns a batch holding a single no-op transaction.
func NoOpBatch() *Batch { return &Batch{Txns: []Transaction{NoOp()}} }

// Wire-size constants from the paper (§V-B).
const (
	// ProposalBytesPerTxn is the proposal size per transaction: a
	// 100-transaction proposal is 5400 B.
	ProposalBytesPerTxn = 54
	// ReplyBytesPerTxn is the client-reply size per transaction: a reply
	// for 100 transactions is 1748 B (rounded up).
	ReplyBytesPerTxn = 18
	// ConsensusMsgBytes is the size of every non-proposal consensus
	// message (PREPARE, COMMIT, votes, shares, ...): 250 B.
	ConsensusMsgBytes = 250
	// ClientRequestBytes is the size of one client request on the wire
	// (Fig. 1 uses 512 B individual transactions).
	ClientRequestBytes = 512
)

// ProposalWireSize returns the simulated wire size of a proposal carrying
// batchSize transactions.
func ProposalWireSize(batchSize int) int {
	if batchSize < 1 {
		batchSize = 1
	}
	return ProposalBytesPerTxn * batchSize
}

// ReplyWireSize returns the simulated wire size of a client reply covering
// batchSize transactions.
func ReplyWireSize(batchSize int) int {
	if batchSize < 1 {
		batchSize = 1
	}
	return ReplyBytesPerTxn * batchSize
}
