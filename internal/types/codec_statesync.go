package types

// Codec entries for the state-transfer catalog. These messages carry the
// largest payloads on the wire (snapshot chunks, block ranges), and their
// counts and lengths arrive before authentication — every slice allocation
// below is bounded by what the received buffer could physically hold, the
// same rule proposals() and batches follow.

// minEncodedBlockLen is the floor of one ledger.EncodeBlock payload
// (version + height + two hashes + proof fixed part + signer count + batch
// count): the BlockRange decoder divides by it (plus the 4-byte length
// prefix) so a forged block count cannot amplify a small frame into a huge
// allocation.
const minEncodedBlockLen = 1 + 8 + 32 + 32 + 2 + 8 + 8 + 32 + 2 + 4

// blobs reads a u32-counted sequence of u32-length-prefixed byte strings,
// bounding the count by the buffer-derived floor of minLen bytes per
// element.
func (r *wireReader) blobs(minLen int) [][]byte {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	if n > len(r.b)/(4+minLen) {
		r.fail()
		return nil
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = r.blob()
	}
	if r.err != nil {
		return nil
	}
	return out
}

func appendBlobs(buf []byte, bs [][]byte) []byte {
	buf = appendU32(buf, uint32(len(bs)))
	for _, b := range bs {
		buf = appendBlob(buf, b)
	}
	return buf
}

func init() {
	registerCodec(MsgStateOffer,
		func(buf []byte, m Message) []byte {
			v := m.(*StateOffer)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, v.SnapHeight)
			buf = appendU64(buf, v.SnapSize)
			buf = appendU32(buf, v.ChunkBytes)
			buf = append(buf, v.SnapAppHash[:]...)
			buf = append(buf, v.SnapHeadHash[:]...)
			buf = append(buf, v.SnapStateDigest[:]...)
			buf = appendU64(buf, v.TxnCount)
			buf = appendU64(buf, v.Height)
			buf = append(buf, v.HeadHash[:]...)
			buf = appendBlob(buf, v.SyncPoint)
			buf = appendBlob(buf, v.AttSyncPoint)
			return appendBlob(buf, v.Att)
		},
		func(r *wireReader) Message {
			return &StateOffer{
				Header:          Header{Inst: InstanceID(r.u16())},
				Replica:         ReplicaID(r.u16()),
				SnapHeight:      r.u64(),
				SnapSize:        r.u64(),
				ChunkBytes:      r.u32(),
				SnapAppHash:     r.digest(),
				SnapHeadHash:    r.digest(),
				SnapStateDigest: r.digest(),
				TxnCount:        r.u64(),
				Height:          r.u64(),
				HeadHash:        r.digest(),
				SyncPoint:       r.blob(),
				AttSyncPoint:    r.blob(),
				Att:             r.blob(),
			}
		})

	registerCodec(MsgSnapshotRequest,
		func(buf []byte, m Message) []byte {
			v := m.(*SnapshotRequest)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, v.Height)
			return appendU32(buf, v.Chunk)
		},
		func(r *wireReader) Message {
			return &SnapshotRequest{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				Height:  r.u64(),
				Chunk:   r.u32(),
			}
		})

	registerCodec(MsgSnapshotChunk,
		func(buf []byte, m Message) []byte {
			v := m.(*SnapshotChunk)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, v.Height)
			buf = appendU32(buf, v.Chunk)
			buf = appendU32(buf, v.Of)
			return appendBlob(buf, v.Data)
		},
		func(r *wireReader) Message {
			return &SnapshotChunk{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				Height:  r.u64(),
				Chunk:   r.u32(),
				Of:      r.u32(),
				Data:    r.blob(),
			}
		})

	registerCodec(MsgBlockRangeRequest,
		func(buf []byte, m Message) []byte {
			v := m.(*BlockRangeRequest)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, v.From)
			return appendU64(buf, v.To)
		},
		func(r *wireReader) Message {
			return &BlockRangeRequest{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				From:    r.u64(),
				To:      r.u64(),
			}
		})

	registerCodec(MsgCheckpointAttest,
		func(buf []byte, m Message) []byte {
			v := m.(*CheckpointAttest)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, v.Height)
			buf = append(buf, v.Digest[:]...)
			return appendBlob(buf, v.Share)
		},
		func(r *wireReader) Message {
			return &CheckpointAttest{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				Height:  r.u64(),
				Digest:  r.digest(),
				Share:   r.blob(),
			}
		})

	registerCodec(MsgBlockRange,
		func(buf []byte, m Message) []byte {
			v := m.(*BlockRange)
			buf = appendU16(buf, uint16(v.Inst))
			buf = appendU16(buf, uint16(v.Replica))
			buf = appendU64(buf, v.From)
			return appendBlobs(buf, v.Blocks)
		},
		func(r *wireReader) Message {
			return &BlockRange{
				Header:  Header{Inst: InstanceID(r.u16())},
				Replica: ReplicaID(r.u16()),
				From:    r.u64(),
				Blocks:  r.blobs(minEncodedBlockLen),
			}
		})
}
