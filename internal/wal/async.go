package wal

import (
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultQueueDepth bounds submitted-but-not-durable records when
	// AsyncOptions.QueueDepth is zero.
	DefaultQueueDepth = 1024
	// DefaultMaxBatchBytes caps the payload bytes one fsync covers when
	// AsyncOptions.MaxBatchBytes is zero.
	DefaultMaxBatchBytes = 8 << 20
)

// AsyncOptions parameterizes an Appender.
type AsyncOptions struct {
	// QueueDepth bounds the records in flight (submitted, not yet
	// durable). Submit blocks when the queue is full — the appender's
	// back-pressure (default DefaultQueueDepth).
	QueueDepth int
	// MaxBatchBytes caps the record bytes coalesced under one fsync.
	// Smaller batches bound completion latency; larger ones amortize the
	// fsync further (default DefaultMaxBatchBytes).
	MaxBatchBytes int64
	// OnCommit, when set, observes every successful commit point: the
	// records and payload bytes it covered and how long the commit point
	// (flush + fsync) took. It runs on the committer goroutine before the
	// covered callbacks fire, so it must be fast and must not block.
	OnCommit func(records int, bytes int64, took time.Duration)
}

// pendingRec is one submitted record awaiting its commit point.
type pendingRec struct {
	idx  uint64
	size int64
	done func(lsn uint64, err error)
}

// Appender is the pipelined commit path of a Log: Submit writes the record
// into the log's buffer and returns immediately with its index; a single
// background committer coalesces every record in flight under one fsync and
// then reports each record durable via its completion callback, carrying
// the log's durable LSN. This is group commit for a SINGLE sequential
// appender — the replica event loop's situation — where the Log's own
// group commit cannot amortize because a lone Append always waits out a
// full fsync.
//
// Errors are sticky, mirroring the Log: after any write or fsync failure
// every in-flight callback fires with the error, and every later Submit
// fails immediately — no record past the failure is ever reported durable
// (fsyncgate).
type Appender struct {
	log  *Log
	opts AsyncOptions

	slots   chan struct{}   // back-pressure: one token per record in flight
	records chan pendingRec // the committer's FIFO work queue
	scratch []pendingRec    // committer-only batch buffer

	quit     chan struct{}
	quitOnce sync.Once
	abrupt   atomic.Bool // CloseAbrupt: skip the drain and final fsync
	wg       sync.WaitGroup

	subMu sync.Mutex // serializes append+enqueue so queue order is index order

	mu     sync.Mutex
	err    error // sticky first failure
	closed bool

	submitted atomic.Uint64
	batches   atomic.Uint64 // commit points (fsyncs) issued
}

// NewAppender starts an async appender over l. The caller owns sequencing:
// records are durable in submit order, and Submit must not race Close.
// Mixing Submit with direct l.Append calls is safe but forfeits the
// pipelining for those appends.
func (l *Log) NewAppender(opts AsyncOptions) *Appender {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = DefaultMaxBatchBytes
	}
	a := &Appender{
		log:     l,
		opts:    opts,
		slots:   make(chan struct{}, opts.QueueDepth),
		records: make(chan pendingRec, opts.QueueDepth),
		quit:    make(chan struct{}),
	}
	a.wg.Add(1)
	go a.run()
	return a
}

// Submit writes payload as the log's next record and returns its index
// without waiting for durability. done fires exactly once from the
// committer goroutine — with the durable LSN (>= the returned index) once
// the record's commit point succeeds, or with the sticky error when the
// journal failed after the record was queued. When Submit itself returns an
// error, done is never called. Submit blocks while the in-flight queue is
// full (back-pressure) and fails with ErrClosed once the appender closes.
func (a *Appender) Submit(payload []byte, done func(lsn uint64, err error)) (uint64, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return 0, ErrClosed
	}
	if a.err != nil {
		err := a.err
		a.mu.Unlock()
		return 0, err
	}
	a.mu.Unlock()

	select {
	case a.slots <- struct{}{}:
	case <-a.quit:
		return 0, ErrClosed
	}

	a.subMu.Lock()
	a.mu.Lock()
	if a.closed {
		// Close won the race between our slot grab and the enqueue; the
		// committer has (or will have) drained, so back out.
		a.mu.Unlock()
		a.subMu.Unlock()
		<-a.slots
		return 0, ErrClosed
	}
	a.mu.Unlock()
	idx, err := a.log.appendBuffered(payload)
	if err != nil {
		a.subMu.Unlock()
		<-a.slots
		a.fail(err)
		return 0, err
	}
	// Never blocks: cap(records) == cap(slots) and we hold a slot.
	a.records <- pendingRec{idx: idx, size: frameSize + int64(len(payload)), done: done}
	a.subMu.Unlock()
	a.submitted.Add(1)
	return idx, nil
}

// fail records the first error; later Submits and commit points observe it.
func (a *Appender) fail(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
}

// Err returns the sticky failure, nil while the appender is healthy.
func (a *Appender) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Stats reports submitted records and issued commit points; the ratio is
// the pipelining amortization factor (records per fsync).
func (a *Appender) Stats() (submitted, batches uint64) {
	return a.submitted.Load(), a.batches.Load()
}

// run is the committer: pull the oldest in-flight record, coalesce
// everything queued behind it up to MaxBatchBytes, issue ONE commit point,
// then wake every covered waiter.
func (a *Appender) run() {
	defer a.wg.Done()
	for {
		var first pendingRec
		select {
		case first = <-a.records:
		case <-a.quit:
			if !a.abrupt.Load() {
				a.drain()
			}
			return
		}
		a.commit(a.collect(first))
	}
}

// collect greedily batches queued records behind first, bounded by
// MaxBatchBytes.
func (a *Appender) collect(first pendingRec) []pendingRec {
	batch := append(a.scratch[:0], first)
	size := first.size
	for size < a.opts.MaxBatchBytes {
		select {
		case rec := <-a.records:
			batch = append(batch, rec)
			size += rec.size
		default:
			a.scratch = batch
			return batch
		}
	}
	a.scratch = batch
	return batch
}

// commit makes batch durable with one fsync and completes its callbacks in
// index order. Slots free before the callbacks run so a blocked submitter
// resumes as early as possible.
func (a *Appender) commit(batch []pendingRec) {
	if a.abrupt.Load() {
		// Crash already marked (the run loop's select can race quit
		// against a ready queue): no commit point, no callbacks — only
		// release the bookkeeping so CloseAbrupt's wait finishes.
		for i := range batch {
			<-a.slots
			batch[i] = pendingRec{}
		}
		return
	}
	a.mu.Lock()
	err := a.err // a poisoned journal must not report anything durable
	a.mu.Unlock()
	var lsn uint64
	if err == nil {
		var start time.Time
		if a.opts.OnCommit != nil {
			start = time.Now()
		}
		if a.log.opts.Sync == SyncNone {
			// The log's owner opted out of fsync: push to the OS and call
			// that the commit point, best-effort like synchronous SyncNone.
			err = a.log.Flush()
			lsn = batch[len(batch)-1].idx // Flush advances no durable watermark
		} else {
			lsn, err = a.log.syncPipelined()
		}
		a.batches.Add(1)
		if err != nil {
			a.fail(err)
		} else if a.opts.OnCommit != nil {
			var size int64
			for i := range batch {
				size += batch[i].size
			}
			a.opts.OnCommit(len(batch), size, time.Since(start))
		}
	}
	for range batch {
		<-a.slots
	}
	// A crash marked while this commit point was in flight suppresses the
	// callbacks: the records ARE durable (fsync completed), but the
	// "process" died before anyone could act on that — exactly the
	// unacked-but-persisted window a real crash leaves.
	abrupt := a.abrupt.Load()
	for i, rec := range batch {
		if rec.done != nil && !abrupt {
			if err != nil {
				rec.done(0, err)
			} else {
				rec.done(lsn, nil)
			}
		}
		batch[i] = pendingRec{} // the reused scratch array must not pin callbacks
	}
}

// drain empties the queue after Close: remaining records get one final
// commit point and their callbacks fire before Close returns.
func (a *Appender) drain() {
	for {
		select {
		case rec := <-a.records:
			a.commit(a.collect(rec))
		default:
			return
		}
	}
}

// Close stops the appender after making every submitted record durable and
// completing its callbacks. It returns the sticky error, if any. The
// underlying Log stays open — close it separately.
func (a *Appender) Close() error {
	a.mu.Lock()
	already := a.closed
	a.closed = true
	a.mu.Unlock()
	if !already {
		// Barrier: a Submit past the closed-check finishes its enqueue
		// before the committer is told to drain.
		a.subMu.Lock()
		_ = struct{}{} // the empty critical section is the barrier
		a.subMu.Unlock()
	}
	a.quitOnce.Do(func() { close(a.quit) })
	a.wg.Wait()
	return a.Err()
}

// CloseAbrupt stops the appender the way a crash would: queued records get
// no commit point, and no callback fires once the crash is marked — a
// batch already inside its commit point may still become durable (a real
// crash can land just after an fsync too) but stays unacknowledged. No
// callback ever runs after CloseAbrupt returns. Pair with Log.CloseAbrupt
// in crash-realism tests.
func (a *Appender) CloseAbrupt() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	a.abrupt.Store(true)
	a.quitOnce.Do(func() { close(a.quit) })
	a.wg.Wait()
}
