package wal

import (
	"errors"
	"testing"
)

// TestFsyncFailpointPoisonsLog injects an fsync error into a SyncAlways log
// and checks it enters the same sticky fatal path a real EIO would: the
// failing append surfaces the injected error, the log refuses all further
// appends even after the failpoint heals, and a reopen replays exactly the
// prefix that was fsynced before the fault.
func TestFsyncFailpointPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	injected := errors.New("injected: EIO")
	fp := &Failpoints{}
	l := openT(t, dir, Options{Sync: SyncAlways, Failpoints: fp})
	appendN(t, l, 0, 3)

	fp.FailFsync(injected)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, injected) {
		t.Fatalf("append under armed failpoint returned %v, want %v", err, injected)
	}
	if got := fp.FsyncFails.Load(); got == 0 {
		t.Fatal("fsync failpoint fired but FsyncFails counter is zero")
	}

	// Healing the disk must not resurrect the log: the kernel may have
	// dropped the dirty pages, so the poison is sticky until restart.
	fp.HealFsync()
	if _, err := l.Append([]byte("still-doomed")); err == nil {
		t.Fatal("poisoned log accepted an append after HealFsync")
	}
	l.CloseAbrupt()

	// The restart path: a fresh open of the same directory recovers at
	// least the three records fsynced before the fault. (The record whose
	// fsync failed may also survive: its bytes reached the OS page cache,
	// and this crash is a process death, not power loss.)
	l2 := openT(t, dir, Options{Sync: SyncAlways, Failpoints: fp})
	if l2.LastIndex() < 3 {
		t.Fatalf("reopened at index %d, want >= 3", l2.LastIndex())
	}
	got := collect(t, l2)
	for i := 0; i < 3; i++ {
		if got[uint64(i+1)] == "" {
			t.Fatalf("durable record %d missing after reopen", i+1)
		}
	}
	// Healed failpoint: the new incarnation writes fine.
	if _, err := l2.Append([]byte("recovered")); err != nil {
		t.Fatalf("append after restart: %v", err)
	}
}

// TestTornWriteFailpointRepairedOnReopen arms the torn-write failpoint,
// crashes the log, and checks reopen repairs the segment via the same
// torn-tail truncation a real mid-write power loss exercises.
func TestTornWriteFailpointRepairedOnReopen(t *testing.T) {
	dir := t.TempDir()
	fp := &Failpoints{}
	l := openT(t, dir, Options{Sync: SyncNone, Failpoints: fp})
	appendN(t, l, 0, 6)

	fp.TearOnCrash(10)
	l.CloseAbrupt()
	if got := fp.TornWrites.Load(); got != 1 {
		t.Fatalf("TornWrites = %d after CloseAbrupt, want 1", got)
	}

	l2 := openT(t, dir, Options{Sync: SyncNone, Failpoints: fp})
	if l2.Truncated() == 0 {
		t.Fatal("reopen repaired nothing: torn tail was not truncated")
	}
	if l2.LastIndex() >= 6 {
		t.Fatalf("reopened at index %d, want < 6 (torn final record dropped)", l2.LastIndex())
	}
	got := collect(t, l2)
	for i := uint64(1); i <= l2.LastIndex(); i++ {
		if got[i] == "" {
			t.Fatalf("surviving record %d missing after torn-tail repair", i)
		}
	}
	// The repaired log must accept new appends at the truncated index.
	appendN(t, l2, int(l2.LastIndex()), 3)
}
