package wal

import (
	"os"
	"sync/atomic"
)

// Failpoints injects the disk failure modes of the chaos harness into a
// live log: fsync errors (fsyncgate — the kernel may drop dirty pages after
// a failed fsync, so the log must poison itself) and torn writes at crash
// (a record partially flushed before power loss). One Failpoints value may
// be shared across goroutines; arming and healing are atomic.
//
// Failpoints compose with the log's own failure handling rather than
// bypassing it: an injected fsync error flows through the identical sticky
// fatal-error path a real one would, and an injected torn write is repaired
// by the identical torn-tail truncation Open performs on a real crash.
type Failpoints struct {
	fsyncErr  atomic.Pointer[error]
	tornBytes atomic.Int64

	// FsyncFails and TornWrites count the injections actually performed.
	FsyncFails atomic.Uint64
	TornWrites atomic.Uint64
}

// FailFsync arms the fsync failpoint: every subsequent fsync of logs wired
// to this Failpoints returns err instead of touching the disk. The first
// such failure poisons the log (sticky fatal), exactly like a real EIO.
func (fp *Failpoints) FailFsync(err error) { fp.fsyncErr.Store(&err) }

// HealFsync disarms the fsync failpoint. A log already poisoned stays
// poisoned — healing the disk does not resurrect dropped dirty pages; the
// replica must restart and replay.
func (fp *Failpoints) HealFsync() { fp.fsyncErr.Store(nil) }

// TearOnCrash arms the torn-write failpoint: the next CloseAbrupt flushes
// the write buffer to the OS and then truncates up to n bytes off the tail
// of the active segment, modeling a record caught mid-write by power loss.
// The failpoint disarms after firing once.
func (fp *Failpoints) TearOnCrash(n int) { fp.tornBytes.Store(int64(n)) }

// fsync applies the fsync failpoint; returns (err, true) when armed.
func (fp *Failpoints) fsync() (error, bool) {
	if fp == nil {
		return nil, false
	}
	if p := fp.fsyncErr.Load(); p != nil {
		fp.FsyncFails.Add(1)
		return *p, true
	}
	return nil, false
}

// tear applies (and disarms) the torn-write failpoint to the just-closed
// active segment at path.
func (fp *Failpoints) tear(path string) {
	if fp == nil {
		return
	}
	n := fp.tornBytes.Swap(0)
	if n <= 0 {
		return
	}
	fi, err := os.Stat(path)
	if err != nil {
		return
	}
	// Never cut into the header: a segment shorter than its header is
	// recreated at Open, which would silently drop the whole segment
	// instead of exercising torn-tail truncation.
	size := fi.Size() - n
	if size < headerSize {
		size = headerSize
	}
	if os.Truncate(path, size) == nil {
		fp.TornWrites.Add(1)
	}
}
