package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	magic       = "RCCWAL1\n"
	headerSize  = 16 // magic + first-index
	frameSize   = 8  // payload length + CRC-32
	segPrefix   = "wal-"
	segSuffix   = ".wal"
	maxPayload  = 1 << 30
	writeBuffer = 256 << 10

	// DefaultSegmentBytes is the roll threshold when Options.SegmentBytes
	// is zero.
	DefaultSegmentBytes = 64 << 20
)

// SyncPolicy selects when appends become durable. See the package
// documentation for the trade-offs.
type SyncPolicy int

const (
	// SyncGroup batches fsyncs across concurrent appenders (group
	// commit); every Append still returns only after its record is
	// durable. The default.
	SyncGroup SyncPolicy = iota
	// SyncAlways issues one fsync per record.
	SyncAlways
	// SyncNone never fsyncs explicitly; durability is best-effort.
	SyncNone
)

// Options parameterizes a log.
type Options struct {
	// SegmentBytes is the size at which segments roll (default 64 MiB).
	SegmentBytes int64
	// Sync is the durability policy (default SyncGroup).
	Sync SyncPolicy
	// FirstIndex, when >1, is the index the first record of a NEWLY
	// CREATED log receives — the rebase hook of the state-transfer
	// subsystem: a log staged next to an installed snapshot at height H
	// starts at index H+1, declaring records 1..H summarized by the
	// snapshot rather than lost. Ignored when the directory already holds
	// segments (their names carry the authoritative base).
	FirstIndex uint64
	// Failpoints, when non-nil, injects disk faults (fsync errors, torn
	// writes at crash) into this log. Chaos/test wiring only.
	Failpoints *Failpoints
}

// ErrCorrupt reports damage that cannot be a torn tail: the log is not
// trustworthy and must be rebuilt (e.g. by state transfer from peers).
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

type segment struct {
	path  string
	first uint64 // index of the segment's first record
	count uint64 // records in the segment
}

func (s *segment) lastIndex() uint64 { return s.first + s.count - 1 }

// Log is a segmented write-ahead log. Append, Sync, and Close are safe for
// concurrent use; Replay must not run concurrently with Append.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	segments  []segment
	f         *os.File      // active (last) segment
	w         *bufio.Writer // buffers writes into f
	size      int64         // bytes written to the active segment
	next      uint64        // index the next Append receives
	closed    bool
	fatal     error // sticky fsync failure: the kernel may have dropped dirty pages
	truncated int   // torn records dropped at Open

	appends atomic.Uint64 // records appended this process
	syncs   atomic.Uint64 // fsyncs issued this process

	// fsyncFn, when non-nil, replaces (*os.File).Sync — the test seam for
	// injecting fsync failures (fsyncgate realism).
	fsyncFn func(*os.File) error

	gc struct {
		mu      sync.Mutex
		synced  uint64       // highest index known durable
		syncing bool         // a group leader is at work
		pending *commitBatch // waiters for the leader's next commit point
		err     error        // sticky fsync failure
	}
}

// commitBatch is one group-commit generation: every waiter whose record
// precedes the leader's next flush blocks on done; the leader publishes the
// outcome and closes it — a single wakeup with no lock convoy.
type commitBatch struct {
	done   chan struct{}
	target uint64
	err    error
}

// Open opens (creating if necessary) the log in dir, validates every
// segment, truncates a torn tail, and positions the log to append after the
// last intact record. It returns ErrCorrupt when damage mid-log makes the
// journal untrustworthy.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, next: 1}
	if opts.FirstIndex > 1 {
		l.next = opts.FirstIndex
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i := range segs {
		if i == 0 {
			// A pruned log legitimately starts past index 1; only gaps
			// BETWEEN segments are corruption.
			l.next = segs[0].first
		}
		res, err := l.scanSegment(&segs[i], i == len(segs)-1, nil)
		if err != nil {
			return nil, err
		}
		if res.tornAt >= 0 {
			// Torn tail: drop the partial record(s) and reclaim the
			// space. Only legal in the last segment; scanSegment
			// already rejected everything else.
			if err := truncateSegment(segs[i].path, res.tornAt); err != nil {
				return nil, err
			}
			l.truncated++
		}
		segs[i].count = res.count
		if segs[i].first != l.next {
			return nil, fmt.Errorf("%w: segment %s starts at index %d, want %d",
				ErrCorrupt, filepath.Base(segs[i].path), segs[i].first, l.next)
		}
		l.next = segs[i].first + segs[i].count
	}
	// A crash can leave a last segment too short to even hold its header;
	// nothing durable was in it, so recreate it below.
	if n := len(segs); n > 0 && segs[n-1].count == 0 && segs[n-1].first == l.next {
		if fi, err := os.Stat(segs[n-1].path); err == nil && fi.Size() < headerSize {
			if err := os.Remove(segs[n-1].path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			segs = segs[:n-1]
		}
	}
	l.segments = segs

	if len(l.segments) == 0 {
		if err := l.rollLocked(); err != nil {
			return nil, err
		}
	} else {
		active := &l.segments[len(l.segments)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(fi.Size(), io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.w, l.size = f, bufio.NewWriterSize(f, writeBuffer), fi.Size()
	}
	l.gc.synced = l.next - 1
	return l, nil
}

// listSegments returns the segment files of dir in index order, with first
// indexes parsed from the names.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: unparseable segment name %q", ErrCorrupt, name)
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

type scanResult struct {
	count  uint64
	tornAt int64 // file offset of the torn tail, -1 when intact
}

// scanSegment validates seg record by record, invoking fn (when non-nil)
// with each intact payload. Damage in the last segment's tail position is
// reported via tornAt; any other damage is ErrCorrupt.
func (l *Log) scanSegment(seg *segment, isLast bool, fn func(index uint64, payload []byte) error) (scanResult, error) {
	res := scanResult{tornAt: -1}
	f, err := os.Open(seg.path)
	if err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	size := fi.Size()
	if size < headerSize {
		if isLast {
			res.tornAt = 0
			return res, nil
		}
		return res, fmt.Errorf("%w: segment %s shorter than its header", ErrCorrupt, filepath.Base(seg.path))
	}
	r := bufio.NewReaderSize(f, writeBuffer)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	if string(hdr[:8]) != magic {
		return res, fmt.Errorf("%w: segment %s has bad magic", ErrCorrupt, filepath.Base(seg.path))
	}
	if first := binary.BigEndian.Uint64(hdr[8:]); first != seg.first {
		return res, fmt.Errorf("%w: segment %s header says first index %d", ErrCorrupt, filepath.Base(seg.path), first)
	}

	var frame [frameSize]byte
	var payload []byte
	off := int64(headerSize)
	for off < size {
		torn := func() (scanResult, error) {
			if !isLast {
				return res, fmt.Errorf("%w: segment %s damaged at offset %d with segments after it",
					ErrCorrupt, filepath.Base(seg.path), off)
			}
			res.tornAt = off
			return res, nil
		}
		if size-off < frameSize {
			return torn() // header cut off mid-write
		}
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return res, fmt.Errorf("wal: %w", err)
		}
		n := int64(binary.BigEndian.Uint32(frame[:4]))
		sum := binary.BigEndian.Uint32(frame[4:])
		if n > maxPayload || off+frameSize+n > size {
			return torn() // payload cut off mid-write (or garbage length)
		}
		if int64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return res, fmt.Errorf("wal: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if isLast && off+frameSize+n == size {
				// The very last record of the log: a payload only
				// partially flushed before the crash.
				res.tornAt = off
				return res, nil
			}
			return res, fmt.Errorf("%w: crc mismatch in %s at offset %d (record %d)",
				ErrCorrupt, filepath.Base(seg.path), off, seg.first+res.count)
		}
		if fn != nil {
			if err := fn(seg.first+res.count, payload); err != nil {
				return res, err
			}
		}
		res.count++
		off += frameSize + n
	}
	return res, nil
}

func truncateSegment(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// rollLocked flushes, syncs, and closes the active segment and starts a
// fresh one whose first index is l.next. Caller holds l.mu.
func (l *Log) rollLocked() error {
	if l.f != nil {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.syncs.Add(1)
		if err := l.fsync(l.f); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		// Everything in the closed segment is durable now.
		l.gc.mu.Lock()
		if prev := l.next - 1; prev > l.gc.synced {
			l.gc.synced = prev
		}
		l.gc.mu.Unlock()
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, l.next, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint64(hdr[8:], l.next)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.segments = append(l.segments, segment{path: path, first: l.next})
	l.f, l.w, l.size = f, bufio.NewWriterSize(f, writeBuffer), headerSize
	return nil
}

// writeLocked validates, rolls if needed, and writes payload as the next
// record into the write buffer. Caller holds l.mu. Durability is the
// caller's problem.
func (l *Log) writeLocked(payload []byte) (uint64, error) {
	if int64(len(payload)) > maxPayload {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	if l.closed {
		return 0, ErrClosed
	}
	if l.fatal != nil {
		return 0, l.fatal
	}
	if l.size+frameSize+int64(len(payload)) > l.opts.SegmentBytes && l.size > headerSize {
		if err := l.rollLocked(); err != nil {
			l.fatal = err // mid-roll failures leave the log unusable too
			return 0, err
		}
	}
	var frame [frameSize]byte
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(frame[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	idx := l.next
	l.next++
	l.size += frameSize + int64(len(payload))
	l.segments[len(l.segments)-1].count++
	l.appends.Add(1)
	return idx, nil
}

// appendBuffered writes payload as the next record and returns immediately,
// whatever the sync policy — the Appender's submit path. The record is not
// durable until a later Sync (or the group committer) covers it.
func (l *Log) appendBuffered(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeLocked(payload)
}

// AppendNoSync writes payload as the next record and returns immediately,
// whatever the sync policy: the record is buffered, not durable, until a
// later Sync covers it. Bulk installers (state transfer) use it to write a
// whole block suffix under one fsync instead of one per record.
func (l *Log) AppendNoSync(payload []byte) (uint64, error) {
	return l.appendBuffered(payload)
}

// Base returns the index the oldest segment starts at — the log's rebase
// point. Records below it were summarized by a snapshot when the log was
// staged by a state-transfer install (1 for a log that has never been
// rebased).
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segments) == 0 {
		return l.next
	}
	return l.segments[0].first
}

// Append writes payload as the next record and returns its 1-based index.
// It returns once the record is durable under the log's sync policy.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	idx, err := l.writeLocked(payload)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}

	switch l.opts.Sync {
	case SyncNone:
		l.mu.Unlock()
		return idx, nil
	case SyncAlways:
		err := l.syncLocked()
		l.mu.Unlock()
		if err != nil {
			return 0, err
		}
		return idx, nil
	default:
		l.mu.Unlock()
		if err := l.waitDurable(idx); err != nil {
			return 0, err
		}
		return idx, nil
	}
}

// waitDurable implements group commit: the first appender to find no
// leader at work becomes the leader; everyone else joins the pending batch
// and blocks on its channel. The leader yields once so concurrently-running
// appenders finish their writes, flushes under the write lock, fsyncs
// OUTSIDE it (appenders keep writing while the disk works), publishes the
// commit point, and keeps going while new waiters have piled up — so every
// fsync covers a whole generation of records and waiters wake without a
// lock convoy.
func (l *Log) waitDurable(idx uint64) error {
	gc := &l.gc
	for {
		gc.mu.Lock()
		if gc.synced >= idx {
			gc.mu.Unlock()
			return nil
		}
		if gc.err != nil {
			err := gc.err
			gc.mu.Unlock()
			return err
		}
		if gc.syncing {
			b := gc.pending
			if b == nil {
				b = &commitBatch{done: make(chan struct{})}
				gc.pending = b
			}
			gc.mu.Unlock()
			<-b.done
			if b.err == nil && b.target >= idx {
				return nil
			}
			continue // re-examine under the lock (error or not yet covered)
		}
		gc.syncing = true
		gc.mu.Unlock()

		for {
			// Let appenders that are already running reach the buffer so
			// this commit point covers them too.
			runtime.Gosched()

			gc.mu.Lock()
			b := gc.pending
			gc.pending = nil
			gc.mu.Unlock()

			l.mu.Lock()
			var target uint64
			var err error
			var f *os.File
			if l.closed {
				err = ErrClosed
			} else {
				target = l.next - 1 // covers every record written so far
				if ferr := l.w.Flush(); ferr != nil {
					err = fmt.Errorf("wal: %w", ferr)
				}
				f = l.f
			}
			l.mu.Unlock()
			if err == nil && f != nil {
				err = l.fsyncOutsideLock(f)
			}

			gc.mu.Lock()
			var orphan *commitBatch
			if err != nil {
				if gc.err == nil {
					gc.err = err
				}
				// Don't strand waiters that piled up during the failed
				// fsync: hand them the error too.
				orphan, gc.pending = gc.pending, nil
			} else if target > gc.synced {
				gc.synced = target
			}
			more := gc.pending != nil && err == nil
			if !more {
				gc.syncing = false
			}
			covered := gc.synced >= idx // e.g. Close's final sync beat us
			gc.mu.Unlock()
			if b != nil {
				b.target, b.err = target, err
				close(b.done)
			}
			if orphan != nil {
				orphan.err = err
				close(orphan.done)
			}
			if err != nil {
				if covered {
					return nil
				}
				return err
			}
			if !more {
				return nil // target covers the leader's own record
			}
		}
	}
}

// fsync flushes f's data to stable storage, via the test seam when set.
// An armed fsync failpoint takes precedence over both the seam and the
// real syscall: the injected error enters the same sticky-failure paths.
func (l *Log) fsync(f *os.File) error {
	if err, armed := l.opts.Failpoints.fsync(); armed {
		return err
	}
	if l.fsyncFn != nil {
		return l.fsyncFn(f)
	}
	return f.Sync()
}

// fsyncOutsideLock is the shared tail of every commit point that fsyncs
// without holding l.mu (the group-commit leader and the async committer):
// a segment roll or Close may race us and close f, but both fsync before
// closing, so ErrClosed means "already durable". A real failure poisons
// the log (fsyncgate: the kernel may have dropped the dirty pages, so no
// later append may be reported durable).
func (l *Log) fsyncOutsideLock(f *os.File) error {
	l.syncs.Add(1)
	if serr := l.fsync(f); serr != nil && !errors.Is(serr, os.ErrClosed) {
		err := fmt.Errorf("wal: %w", serr)
		l.mu.Lock()
		if l.fatal == nil {
			l.fatal = err
		}
		l.mu.Unlock()
		return err
	}
	return nil
}

// syncLocked flushes the write buffer, fsyncs the active segment, and
// advances the durable watermark. A failure is sticky: after a failed fsync
// the kernel may have dropped the dirty pages (fsyncgate), so no later
// append may be reported durable. Caller holds l.mu.
func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		l.fatal = fmt.Errorf("wal: %w", err)
		return l.fatal
	}
	l.syncs.Add(1)
	if err := l.fsync(l.f); err != nil {
		l.fatal = fmt.Errorf("wal: %w", err)
		return l.fatal
	}
	synced := l.next - 1
	l.gc.mu.Lock()
	if synced > l.gc.synced {
		l.gc.synced = synced
	}
	l.gc.mu.Unlock()
	return nil
}

// Sync forces everything appended so far to durable storage regardless of
// the sync policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.fatal != nil {
		return l.fatal
	}
	return l.syncLocked()
}

// syncPipelined is the async committer's commit point: it flushes under the
// write lock, fsyncs OUTSIDE it so submitters keep writing while the disk
// works, and returns the durable watermark — covering every record written
// before the flush. Failures poison the log like syncLocked's.
func (l *Log) syncPipelined() (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.fatal != nil {
		err := l.fatal
		l.mu.Unlock()
		return 0, err
	}
	target := l.next - 1
	if err := l.w.Flush(); err != nil {
		err = fmt.Errorf("wal: %w", err)
		l.fatal = err
		l.mu.Unlock()
		return 0, err
	}
	f := l.f
	l.mu.Unlock()

	if err := l.fsyncOutsideLock(f); err != nil {
		return 0, err
	}
	l.gc.mu.Lock()
	if target > l.gc.synced {
		l.gc.synced = target
	}
	synced := l.gc.synced
	l.gc.mu.Unlock()
	return synced, nil
}

// Flush pushes buffered writes to the operating system without fsyncing —
// data survives a process crash but not a power loss. The async committer
// uses it in place of Sync under SyncNone.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.fatal != nil {
		return l.fatal
	}
	if err := l.w.Flush(); err != nil {
		l.fatal = fmt.Errorf("wal: %w", err)
		return l.fatal
	}
	return nil
}

// DurableIndex returns the highest record index known to be durable (0
// when nothing is durable yet).
func (l *Log) DurableIndex() uint64 {
	l.gc.mu.Lock()
	defer l.gc.mu.Unlock()
	return l.gc.synced
}

// Replay streams every record to fn in index order. It re-reads from disk,
// so it reflects exactly what a restart would recover. Replay must not run
// concurrently with Append.
func (l *Log) Replay(fn func(index uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: %w", err)
	}
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	for i := range segs {
		if _, err := l.scanSegment(&segs[i], i == len(segs)-1, fn); err != nil {
			return err
		}
	}
	return nil
}

// Roll syncs and closes the active segment and starts a fresh one whose
// first index is the next append's. Snapshot-coordinated pruning uses it
// to place a segment boundary exactly at the snapshot height, so Prune can
// then reclaim everything the snapshot summarizes (whole segments only)
// and leave the log's base aligned with a retained checkpoint — the
// invariant store.Open's rebase path checks. A no-op when the active
// segment holds no records yet.
func (l *Log) Roll() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.fatal != nil {
		return l.fatal
	}
	if l.size <= headerSize {
		return nil // active segment is empty: already a fresh cut
	}
	if err := l.rollLocked(); err != nil {
		l.fatal = err
		return err
	}
	return nil
}

// Prune deletes whole segments whose every record index is below keepFrom.
// The active segment is never deleted. Partial segments are kept: pruning
// is a space reclaim, not a truncation.
func (l *Log) Prune(keepFrom uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	kept := l.segments[:0]
	for i := range l.segments {
		s := l.segments[i]
		if i < len(l.segments)-1 && s.count > 0 && s.lastIndex() < keepFrom {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			continue
		}
		kept = append(kept, s)
	}
	l.segments = kept
	return nil
}

// FirstIndex returns the index of the oldest retained record (1 when the
// log has never been pruned), and 0 when the log is empty.
func (l *Log) FirstIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.segments {
		if l.segments[i].count > 0 {
			return l.segments[i].first
		}
	}
	return 0
}

// LastIndex returns the index of the newest record, 0 when empty.
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Truncated reports how many torn tail records Open dropped.
func (l *Log) Truncated() int { return l.truncated }

// Stats reports the appended-record and issued-fsync counts of this
// process — the ratio is the group-commit amortization factor.
func (l *Log) Stats() (appends, syncs uint64) {
	return l.appends.Load(), l.syncs.Load()
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes, syncs, and closes the log. Further appends fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	cerr := l.f.Close()
	l.mu.Unlock()

	l.gc.mu.Lock()
	if l.gc.err == nil {
		l.gc.err = ErrClosed
	}
	// A pending batch can only exist while a leader is at work; that
	// leader observes l.closed and wakes it, so nothing to drain here.
	l.gc.mu.Unlock()

	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("wal: %w", cerr)
	}
	return nil
}

// CloseAbrupt closes the log the way a crash would: the write buffer is
// discarded and nothing is flushed or fsynced, so only records already
// pushed to the OS survive a reopen — and only fsynced ones would survive
// power loss. Crash-realism test helper; see DurableLedger.CloseAbrupt.
func (l *Log) CloseAbrupt() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	var tearPath string
	if fp := l.opts.Failpoints; fp != nil && fp.tornBytes.Load() > 0 {
		// Torn-write failpoint: model the buffered bytes reaching the OS
		// with the tail of the last record caught mid-write — flush, then
		// cut the tail below. Reopen must repair it via torn-tail
		// truncation.
		l.w.Flush()
		tearPath = l.segments[len(l.segments)-1].path
	}
	l.f.Close() // deliberately without Flush: the buffer dies with the "process"
	if tearPath != "" {
		l.opts.Failpoints.tear(tearPath)
	}
	l.mu.Unlock()

	l.gc.mu.Lock()
	if l.gc.err == nil {
		l.gc.err = ErrClosed
	}
	l.gc.mu.Unlock()
}
