package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ack is one completion notification observed by a test callback.
type ack struct {
	idx uint64 // the record's own index
	lsn uint64 // durable watermark reported with it
	err error
}

// submitN submits n records sequentially (the replica event loop's
// situation) and returns a channel carrying every completion.
func submitN(t *testing.T, a *Appender, start, n int) chan ack {
	t.Helper()
	acks := make(chan ack, n)
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("record-%04d", start+i))
		idx, err := a.Submit(payload, func(idx uint64) func(uint64, error) {
			return func(lsn uint64, err error) { acks <- ack{idx: idx, lsn: lsn, err: err} }
		}(uint64(start+i+1)))
		if err != nil {
			t.Fatalf("submit %d: %v", start+i, err)
		}
		if want := uint64(start + i + 1); idx != want {
			t.Fatalf("submit returned index %d, want %d", idx, want)
		}
	}
	return acks
}

func TestAsyncSubmitCompletesDurableInOrder(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	a := l.NewAppender(AsyncOptions{QueueDepth: 8})
	const n = 100
	acks := submitN(t, a, 0, n)
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	close(acks)
	var prev uint64
	count := 0
	for k := range acks {
		count++
		if k.err != nil {
			t.Fatalf("record %d completed with error: %v", k.idx, k.err)
		}
		if k.idx <= prev {
			t.Fatalf("completion order violated: %d after %d", k.idx, prev)
		}
		if k.lsn < k.idx {
			t.Fatalf("record %d reported durable at LSN %d < its own index", k.idx, k.lsn)
		}
		prev = k.idx
	}
	if count != n {
		t.Fatalf("%d completions, want %d", count, n)
	}
	if l.DurableIndex() != n {
		t.Fatalf("durable index %d, want %d", l.DurableIndex(), n)
	}
	// The whole point: far fewer fsyncs than records.
	if sub, batches := a.Stats(); batches == 0 || batches >= sub {
		t.Fatalf("no amortization: %d records over %d commit points", sub, batches)
	}
	l.Close()
	l2 := openT(t, dir, Options{})
	if got := len(collect(t, l2)); got != n {
		t.Fatalf("recovered %d records, want %d", got, n)
	}
}

func TestAsyncBackPressureBoundsInFlight(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	// Stall the committer inside fsync so the queue genuinely fills.
	release := make(chan struct{})
	var stalled sync.Once
	ready := make(chan struct{})
	l.fsyncFn = func(f *os.File) error {
		stalled.Do(func() { close(ready) })
		<-release
		return f.Sync()
	}
	const depth = 4
	a := l.NewAppender(AsyncOptions{QueueDepth: depth})
	var done atomic.Int64
	// Wedge the committer on the first record's fsync, then fill the
	// remaining in-flight slots (the wedged record still holds one).
	if _, err := a.Submit([]byte("r0"), func(uint64, error) { done.Add(1) }); err != nil {
		t.Fatal(err)
	}
	<-ready
	for i := 0; i < depth-1; i++ {
		if _, err := a.Submit([]byte("r"), func(uint64, error) { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	extra := make(chan error, 1)
	go func() {
		_, err := a.Submit([]byte("overflow"), func(uint64, error) { done.Add(1) })
		extra <- err
	}()
	select {
	case err := <-extra:
		t.Fatalf("submit past a full queue returned (%v) instead of blocking", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked — back-pressure works.
	}
	close(release)
	if err := <-extra; err != nil {
		t.Fatalf("blocked submit failed after queue drained: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := done.Load(); got != depth+1 {
		t.Fatalf("%d completions after close, want %d", got, depth+1)
	}
}

// TestAsyncStickyFsyncFailure is the fsyncgate scenario through the
// pipelined path: once one commit point fails, every queued record's
// callback carries the error, no later record is ever reported durable,
// and Submit itself refuses new work.
func TestAsyncStickyFsyncFailure(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	boom := errors.New("injected: disk on fire")
	var failing atomic.Bool
	l.fsyncFn = func(f *os.File) error {
		if failing.Load() {
			return boom
		}
		return f.Sync()
	}
	a := l.NewAppender(AsyncOptions{QueueDepth: 64})

	acks := submitN(t, a, 0, 10) // healthy prefix
	waitAcks := func(n int, wantErr error) {
		t.Helper()
		for i := 0; i < n; i++ {
			select {
			case k := <-acks:
				if !errors.Is(k.err, wantErr) {
					t.Fatalf("record %d: err=%v, want %v", k.idx, k.err, wantErr)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("timed out waiting for completions")
			}
		}
	}
	waitAcks(10, nil)

	failing.Store(true)
	for i := 0; i < 5; i++ {
		payload := []byte(fmt.Sprintf("doomed-%d", i))
		if _, err := a.Submit(payload, func(lsn uint64, err error) { acks <- ack{lsn: lsn, err: err} }); err != nil {
			// Sticky error already surfaced at submit — also acceptable,
			// but only after the first failed commit point.
			if i == 0 {
				t.Fatalf("first submit after fsync failure rejected early: %v", err)
			}
			break
		}
	}
	// Every record queued after the failure completes with the error.
	select {
	case k := <-acks:
		if k.err == nil {
			t.Fatalf("record reported durable (lsn %d) despite failed fsync", k.lsn)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no error completion after fsync failure")
	}
	// And the appender is poisoned for good — even with fsync "repaired",
	// dirty pages may already be gone (fsyncgate).
	failing.Store(false)
	if _, err := a.Submit([]byte("after"), nil); err == nil {
		t.Fatal("submit succeeded on a poisoned appender")
	}
	if a.Err() == nil {
		t.Fatal("sticky error not recorded")
	}
	a.Close()
}

// TestAsyncCrashLosesOnlyUnackedTail kills the appender with a full
// in-flight queue and verifies a reopen replays exactly the durable prefix:
// every record whose callback fired with err == nil is present; the
// unacked tail (stuck behind a stalled fsync, then crashed) is gone.
func TestAsyncCrashLosesOnlyUnackedTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	release := make(chan struct{})
	var once sync.Once
	gate := make(chan struct{})
	var blocked atomic.Bool
	l.fsyncFn = func(f *os.File) error {
		if blocked.Load() {
			once.Do(func() { close(gate) })
			<-release // hold the commit point until "power loss"
			return errors.New("crashed mid-fsync")
		}
		return f.Sync()
	}

	const depth = 4
	a := l.NewAppender(AsyncOptions{QueueDepth: depth})
	var acked atomic.Uint64
	// Healthy, acknowledged prefix.
	for i := 0; i < 9; i++ {
		if _, err := a.Submit([]byte(fmt.Sprintf("acked-%02d", i)), func(lsn uint64, err error) {
			if err == nil {
				acked.Store(max(acked.Load(), lsn))
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	a.drainWait(t)
	if acked.Load() != 9 {
		t.Fatalf("healthy prefix acked through %d, want 9", acked.Load())
	}

	// Record 10 wedges the committer INSIDE its failing fsync — after the
	// flush, so it reached the OS but will never be acked. Records 11..13
	// then land only in the write buffer (the committer is stuck, so no
	// flush runs) and fill the remaining in-flight slots: a full queue at
	// crash time.
	blocked.Store(true)
	if _, err := a.Submit([]byte("wedged-09"), nil); err != nil {
		t.Fatal(err)
	}
	<-gate
	for i := 0; i < depth-1; i++ {
		if _, err := a.Submit([]byte(fmt.Sprintf("doomed-%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		// Unwedge the committer only after CloseAbrupt has marked the
		// crash, so no doomed record can still be committed.
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	a.CloseAbrupt()
	l.CloseAbrupt()

	l2 := openT(t, dir, Options{})
	got := collect(t, l2)
	for i := uint64(1); i <= acked.Load(); i++ {
		if _, ok := got[i]; !ok {
			t.Fatalf("acked record %d lost across crash-restart", i)
		}
	}
	// Restart replays exactly the prefix that reached the OS: the acked
	// records plus the flushed-but-unacked record 10. The buffered tail
	// died with the process.
	if uint64(len(got)) != 10 {
		t.Fatalf("replayed %d records, want exactly 10 (acked prefix + flushed record), buffered tail lost", len(got))
	}
	for i := uint64(11); i <= 13; i++ {
		if _, ok := got[i]; ok {
			t.Fatalf("unflushed record %d survived the crash", i)
		}
	}
}

// drainWait blocks until everything submitted so far has completed.
func (a *Appender) drainWait(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sub, _ := a.Stats()
		if a.log.DurableIndex() >= sub {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("appender did not drain")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAsyncSubmitAfterCloseFails(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	a := l.NewAppender(AsyncOptions{})
	if _, err := a.Submit([]byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit([]byte("y"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncSyncNonePolicySkipsFsync(t *testing.T) {
	l := openT(t, t.TempDir(), Options{Sync: SyncNone})
	a := l.NewAppender(AsyncOptions{QueueDepth: 8})
	acks := submitN(t, a, 0, 20)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	close(acks)
	n := 0
	for k := range acks {
		if k.err != nil {
			t.Fatalf("completion error under SyncNone: %v", k.err)
		}
		n++
	}
	if n != 20 {
		t.Fatalf("%d completions, want 20", n)
	}
	if _, syncs := l.Stats(); syncs != 0 {
		t.Fatalf("%d fsyncs issued under SyncNone", syncs)
	}
}
