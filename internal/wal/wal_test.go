package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		idx, err := l.Append([]byte(fmt.Sprintf("record-%04d", start+i)))
		if err != nil {
			t.Fatalf("append %d: %v", start+i, err)
		}
		if want := uint64(start + i + 1); idx != want {
			t.Fatalf("append returned index %d, want %d", idx, want)
		}
	}
}

func collect(t *testing.T, l *Log) map[uint64]string {
	t.Helper()
	got := make(map[uint64]string)
	if err := l.Replay(func(idx uint64, p []byte) error {
		got[idx] = string(p)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone})
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{Sync: SyncNone})
	if l2.LastIndex() != 10 {
		t.Fatalf("reopened at index %d, want 10", l2.LastIndex())
	}
	appendN(t, l2, 10, 5)
	got := collect(t, l2)
	if len(got) != 15 {
		t.Fatalf("replayed %d records, want 15", len(got))
	}
	for i := 0; i < 15; i++ {
		if got[uint64(i+1)] != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("record %d = %q", i+1, got[uint64(i+1)])
		}
	}
}

func TestSegmentsRollAndStayOrdered(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	appendN(t, l, 0, 50)
	if l.Segments() < 5 {
		t.Fatalf("only %d segments after 50 records with 128-byte roll", l.Segments())
	}
	if len(collect(t, l)) != 50 {
		t.Fatal("records lost across segment rolls")
	}
	l.Close()
	l2 := openT(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	if l2.LastIndex() != 50 {
		t.Fatalf("reopen across segments: last index %d, want 50", l2.LastIndex())
	}
}

// lastSegment returns the path of the highest-index segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no segments in %s", dir)
	}
	sort.Strings(entries)
	return entries[len(entries)-1]
}

func TestTornTailRecordIsTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone})
	appendN(t, l, 0, 5)
	l.Close()

	// Simulate a crash mid-append: chop the last record's payload short.
	path := lastSegment(t, dir)
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{Sync: SyncNone})
	if l2.Truncated() != 1 {
		t.Fatalf("Truncated() = %d, want 1", l2.Truncated())
	}
	if l2.LastIndex() != 4 {
		t.Fatalf("last index %d after torn tail, want 4", l2.LastIndex())
	}
	// The log must be fully usable after truncation: the torn index is
	// reassigned to the next append.
	appendN(t, l2, 4, 1)
	got := collect(t, l2)
	if len(got) != 5 || got[5] != "record-0004" {
		t.Fatalf("post-truncation state wrong: %v", got)
	}
}

func TestTornFrameHeaderIsTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone})
	appendN(t, l, 0, 3)
	l.Close()

	// Crash after only 3 bytes of the next record's frame header hit disk.
	f, err := os.OpenFile(lastSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x00})
	f.Close()

	l2 := openT(t, dir, Options{Sync: SyncNone})
	if l2.LastIndex() != 3 || l2.Truncated() != 1 {
		t.Fatalf("last=%d truncated=%d, want 3/1", l2.LastIndex(), l2.Truncated())
	}
}

func TestBitFlipMidSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone})
	appendN(t, l, 0, 8)
	l.Close()

	// Flip one payload bit of record 3 — damage with intact records after
	// it can never be a torn tail, so Open must refuse the log.
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("record-0002"))
	if i < 0 {
		t.Fatal("record 3 payload not found")
	}
	data[i] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{Sync: SyncNone}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open after mid-segment bit flip: %v, want ErrCorrupt", err)
	}
}

func TestBitFlipInNonFinalSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	appendN(t, l, 0, 20)
	if l.Segments() < 2 {
		t.Fatal("need multiple segments")
	}
	l.Close()

	// Damage the LAST record of the FIRST segment: tail position within
	// its file, but segments follow it, so it is corruption, not a tear.
	entries, _ := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	sort.Strings(entries)
	data, _ := os.ReadFile(entries[0])
	data[len(data)-1] ^= 0x01
	os.WriteFile(entries[0], data, 0o644)

	if _, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 128}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open after non-final-segment damage: %v, want ErrCorrupt", err)
	}
}

func TestMissingSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	appendN(t, l, 0, 20)
	l.Close()
	entries, _ := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	sort.Strings(entries)
	if len(entries) < 3 {
		t.Fatal("need at least 3 segments")
	}
	os.Remove(entries[1])
	if _, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 128}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with a missing middle segment: %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitConcurrentAppendsAllDurable(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncGroup})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if l.LastIndex() != writers*each {
		t.Fatalf("last index %d, want %d", l.LastIndex(), writers*each)
	}
	l.Close()

	l2 := openT(t, dir, Options{})
	if got := len(collect(t, l2)); got != writers*each {
		t.Fatalf("recovered %d records, want %d", got, writers*each)
	}
}

func TestPruneDropsOnlyWholeColdSegments(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	appendN(t, l, 0, 40)
	before := l.Segments()
	if err := l.Prune(20); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= before {
		t.Fatalf("prune removed nothing (%d segments)", l.Segments())
	}
	if first := l.FirstIndex(); first == 0 || first > 20 {
		t.Fatalf("first retained index %d, want in (0, 20]", first)
	}
	// Everything from keepFrom on must still replay.
	got := collect(t, l)
	for i := uint64(20); i <= 40; i++ {
		if _, ok := got[i]; !ok {
			t.Fatalf("record %d lost by prune", i)
		}
	}
	l.Close()
	// A pruned log must still reopen (first index > 1).
	l2 := openT(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	if l2.LastIndex() != 40 {
		t.Fatalf("reopen after prune: last %d, want 40", l2.LastIndex())
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestEmptyPayloadRoundTrips(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone})
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := openT(t, dir, Options{Sync: SyncNone})
	got := collect(t, l2)
	if v, ok := got[1]; !ok || v != "" {
		t.Fatalf("empty payload lost: %v", got)
	}
}
