// Package wal implements the segmented, checksummed, group-commit
// write-ahead log underlying the durable storage subsystem
// (internal/store). It persists the blockchain ledger the paper's replicas
// maintain (§V-B) so a restarted replica resumes from disk instead of
// demanding full state transfer from its peers.
//
// # On-disk format
//
// A log is a directory of segment files named
//
//	wal-<first-index>.wal        e.g. wal-0000000000000001.wal
//
// where <first-index> is the 1-based index of the segment's first record,
// zero-padded to 16 hex digits so lexicographic order is index order. Each
// segment starts with a 16-byte header:
//
//	offset  size  field
//	0       8     magic "RCCWAL1\n"
//	8       8     first record index, big-endian uint64
//
// followed by a sequence of records framed as
//
//	offset  size  field
//	0       4     payload length, big-endian uint32
//	4       4     CRC-32 (IEEE) of the payload
//	8       n     payload
//
// Records never span segments: when appending a record would push the
// current segment past Options.SegmentBytes, the segment is flushed, synced,
// and closed, and a fresh segment starts with the next index.
//
// # Recovery semantics (open-replay-truncate)
//
// Open scans every segment in index order and validates each record's frame
// and checksum. Damage is classified by where it sits:
//
//   - A record that extends past the end of the LAST segment, or whose
//     checksum fails on the very last record of the last segment, is a torn
//     write — the tail of an append that lost a race with the crash. The
//     segment is truncated to the last intact record and appends resume
//     from there. Torn tails are expected and silent (reported via
//     Log.Truncated for tests and operators).
//
//   - Any other damage — a checksum mismatch with intact records after it,
//     a short record in a non-final segment, a bad segment header — cannot
//     be the trailing edge of a crash and means the storage itself lied.
//     Open fails with ErrCorrupt; recovery then requires state transfer
//     from peers (internal/statesync: delete the data dir and restart),
//     never a silent gap in the journal.
//
// # Rebase on state-transfer install
//
// A log normally starts at record index 1. A state-transfer install
// (store.InstallState) REBASES it: the staged log's first segment starts
// at index H+1, where H is the installed snapshot's height — declaring
// records 1..H summarized by that snapshot rather than lost. Open already
// accepts a first segment past index 1 (pruned logs share the shape); the
// store layer enforces that a rebased journal is always accompanied by its
// base checkpoint (pinned against retention pruning), whose head hash and
// cumulative transaction count anchor the chain below the first record.
// Options.FirstIndex is the creation hook; Log.Base reports the rebase
// point.
//
// Acked⇒durable across a state transfer: the async committer is drained
// and closed before the old journal is retired, the staged log is fully
// fsynced before the commit marker is written, and the install either
// completes or leaves the old state untouched — so at every instant the
// journal on disk covers every transaction any client was ever
// acknowledged for, on both sides of the swap.
//
// # Group commit
//
// Durability policy is per-log (Options.Sync):
//
//   - SyncGroup (default): appenders publish their record under the write
//     lock, then wait on a shared commit point. One appender becomes the
//     sync leader and issues a single fdatasync covering every record
//     written so far; appenders that arrive while that fsync is in flight
//     are covered by the NEXT fsync, issued immediately after by the next
//     leader. Concurrent appenders therefore amortize the ~ms fsync cost
//     across the whole group (see BenchmarkWALAppend) while every Append
//     still returns only after its record is durable.
//
//   - SyncAlways: one fsync per record, serialized. The safe, slow
//     baseline the benchmark compares against.
//
//   - SyncNone: no explicit fsync; durability is left to the OS page
//     cache. For tests and throwaway runs.
//
// # Async pipelined commit (Appender)
//
// Group commit amortizes across CONCURRENT appenders, but a replica's
// event loop is one sequential appender: stop-and-wait journaling pays a
// full fsync per block however the log batches. The Appender converts that
// path to a pipeline:
//
//   - Submit writes the record into the log's buffer and returns
//     immediately with its index; the caller keeps executing.
//   - A single committer goroutine coalesces every record in flight — up
//     to AsyncOptions.MaxBatchBytes per batch — under ONE commit point
//     (flush under the write lock, fsync outside it, exactly like the
//     group-commit leader), then fires each record's completion callback
//     with the durable LSN, in index order.
//   - AsyncOptions.QueueDepth bounds records submitted but not yet
//     durable; a full queue blocks Submit, back-pressuring the producer
//     instead of buffering unacknowledged work without limit.
//   - Errors are sticky (fsyncgate): after one failed commit point every
//     in-flight callback carries the error, later Submits fail, and
//     nothing past the failure is ever reported durable.
//   - Close drains: remaining records get a final commit point and their
//     callbacks before Close returns. CloseAbrupt is the crash-shaped
//     close for tests — no flush, no fsync, no callbacks.
//
// The replica runtime defers client replies to these callbacks
// (runtime.Config.Journaling.Async): a client acknowledgement then implies the
// block is on disk, while the event loop never waits out an fsync.
// BenchmarkAsyncJournal compares the two shapes; records/fsync reports the
// amortization the pipeline recovers.
package wal
