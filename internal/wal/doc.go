// Package wal implements the segmented, checksummed, group-commit
// write-ahead log underlying the durable storage subsystem
// (internal/store). It persists the blockchain ledger the paper's replicas
// maintain (§V-B) so a restarted replica resumes from disk instead of
// demanding full state transfer from its peers.
//
// # On-disk format
//
// A log is a directory of segment files named
//
//	wal-<first-index>.wal        e.g. wal-0000000000000001.wal
//
// where <first-index> is the 1-based index of the segment's first record,
// zero-padded to 16 hex digits so lexicographic order is index order. Each
// segment starts with a 16-byte header:
//
//	offset  size  field
//	0       8     magic "RCCWAL1\n"
//	8       8     first record index, big-endian uint64
//
// followed by a sequence of records framed as
//
//	offset  size  field
//	0       4     payload length, big-endian uint32
//	4       4     CRC-32 (IEEE) of the payload
//	8       n     payload
//
// Records never span segments: when appending a record would push the
// current segment past Options.SegmentBytes, the segment is flushed, synced,
// and closed, and a fresh segment starts with the next index.
//
// # Recovery semantics (open-replay-truncate)
//
// Open scans every segment in index order and validates each record's frame
// and checksum. Damage is classified by where it sits:
//
//   - A record that extends past the end of the LAST segment, or whose
//     checksum fails on the very last record of the last segment, is a torn
//     write — the tail of an append that lost a race with the crash. The
//     segment is truncated to the last intact record and appends resume
//     from there. Torn tails are expected and silent (reported via
//     Log.Truncated for tests and operators).
//
//   - Any other damage — a checksum mismatch with intact records after it,
//     a short record in a non-final segment, a bad segment header — cannot
//     be the trailing edge of a crash and means the storage itself lied.
//     Open fails with ErrCorrupt; recovery then requires state transfer
//     from peers, never a silent gap in the journal.
//
// # Group commit
//
// Durability policy is per-log (Options.Sync):
//
//   - SyncGroup (default): appenders publish their record under the write
//     lock, then wait on a shared commit point. One appender becomes the
//     sync leader and issues a single fdatasync covering every record
//     written so far; appenders that arrive while that fsync is in flight
//     are covered by the NEXT fsync, issued immediately after by the next
//     leader. Concurrent appenders therefore amortize the ~ms fsync cost
//     across the whole group (see BenchmarkWALAppend) while every Append
//     still returns only after its record is durable.
//
//   - SyncAlways: one fsync per record, serialized. The safe, slow
//     baseline the benchmark compares against.
//
//   - SyncNone: no explicit fsync; durability is left to the OS page
//     cache. For tests and throwaway runs.
package wal
