package rcc

import (
	"sort"
	"time"

	"repro/internal/obs/flight"
	"repro/internal/sm"
	"repro/internal/types"
)

// This file implements the wait-free recovery protocol of Fig. 4 and the
// dynamic per-need checkpoints of §III-D.
//
// Recovery request role: a replica that detects failure of primary P_i in
// round ρ halts I_i and broadcasts FAILURE(i, ρ, P) with its instance state
// P (Assumption A3), rebroadcasting with exponentially growing delay until
// it learns how to proceed. f+1 FAILURE messages from distinct replicas are
// themselves a failure detection; nf messages are a *confirmed* failure.
//
// Recovery leader role: the leader of the coordinating consensus P for I_i
// that holds nf well-formed FAILURE messages proposes stop(i; E).
//
// State recovery role: accepting stop(i; E) recovers the instance state
// from E, determines the last accepted round ρ, and resumes the instance at
// ρ + 2^k where k counts accepted stop operations (the exponentially
// growing restart penalty of Fig. 4 line 12).

const initialRebroadcast = 250 * time.Millisecond

// suspectInstance is the local failure-detection entry point (Fig. 4
// line 1): BCA progress timeouts, equivocation, lag detection, and f+1
// FAILURE claims all funnel here.
func (r *Replica) suspectInstance(inst types.InstanceID, round types.Round) {
	st := r.states[inst]
	if st.suspected {
		return
	}
	// A dormant instance — one still serving its restart penalty — is not
	// expected to propose until the other instances reach its resume round,
	// so suspicion of it is premature. The lag detector (checkLag) raises
	// the suspicion again once the instance is actually due. Without this
	// gate a permanently crashed primary would be re-suspected immediately
	// after every recovery, doubling the penalty in a tight loop.
	if st.voidBelow > r.maxDecided+1 {
		return
	}
	st.suspected = true
	st.suspectRound = round
	st.inst.Halt()
	r.broadcastFailure(st, round)
	st.rebroadcast = initialRebroadcast
	r.env.SetTimer(sm.TimerID{Instance: inst, Kind: sm.TimerRebroadcast}, st.rebroadcast)
}

func (r *Replica) broadcastFailure(st *instState, round types.Round) {
	f := &types.Failure{
		Replica: r.env.ID(),
		Round:   round,
		State:   st.inst.StateForRecovery(),
	}
	f.Inst = st.id
	r.env.Broadcast(f)
}

// onRebroadcastTimer re-sends FAILURE with exponential backoff until the
// instance recovers (handles unreliable communication).
func (r *Replica) onRebroadcastTimer(inst types.InstanceID) {
	st := r.states[inst]
	if !st.suspected {
		return
	}
	r.broadcastFailure(st, st.suspectRound)
	st.rebroadcast *= 2
	r.env.SetTimer(sm.TimerID{Instance: inst, Kind: sm.TimerRebroadcast}, st.rebroadcast)
}

// onFailure processes FAILURE(i, ρ, P) (Fig. 4 lines 5–8).
func (r *Replica) onFailure(from sm.Source, m *types.Failure) {
	if from.IsClient || int(m.Instance()) >= len(r.states) {
		return
	}
	st := r.states[m.Instance()]
	// Condition 3: the claimed round must come after the round in which
	// I_i started last (stale claims from before a recovery are void).
	if m.Round < st.startedAt {
		return
	}
	st.failures[m.Replica] = m

	p := r.env.Params()
	// An in-dark replica beyond repair: f+1 distinct replicas claim
	// progress far past everything this replica has decided or voided —
	// at least one of them is honest, so the cluster really is there, and
	// a gap wider than σ means the checkpoint bodies that heal ordinary
	// in-the-dark replicas (§III-D) no longer reach back to our frontier.
	// Only a ledger-level state transfer can close it.
	if len(st.failures) >= p.FaultDetection() &&
		m.Round > st.lastDec+2*r.cfg.Sigma && m.Round > r.voidHorizon(st)+2*r.cfg.Sigma {
		r.requestStateSync()
	}
	// A replica that already finished the claimed round and does not
	// share the suspicion answers the claim with a checkpoint: if the
	// claimant was merely kept in the dark (≤ f affected replicas, so no
	// confirmed failure will ever form), the f+1 honest responses let it
	// adopt the missed proposals (§III-D).
	if !st.suspected && st.lastDec >= m.Round && m.Round > st.ckpForced {
		if ckp, ok := st.inst.(checkpointer); ok {
			st.ckpForced = st.lastDec
			ckp.ForceCheckpoint()
		}
	}
	// f+1 distinct claims: at least one is from a non-faulty replica,
	// so detect the failure ourselves (Fig. 4 line 5).
	if len(st.failures) >= p.FaultDetection() && !st.suspected {
		r.suspectInstance(st.id, m.Round)
	}
	// nf−f claims may indicate an in-the-dark attack: participate in a
	// dynamic checkpoint if this replica finished the claimed rounds
	// (§III-D).
	if len(st.failures) == p.InDarkRecovery() {
		r.maybeDynamicCheckpoint(m.Round)
	}
	// nf claims: confirmed failure (Fig. 4 line 7).
	if len(st.failures) >= p.NF() && !st.confirmed {
		st.confirmed = true
		r.env.SetTimer(sm.TimerID{Instance: st.id, Kind: sm.TimerRecovery}, r.cfg.RecoveryTimeout)
		r.maybeProposeStop(st)
	}
}

// maybeProposeStop lets the coordinating leader propose stop(i; E) once it
// holds nf well-formed FAILURE messages.
func (r *Replica) maybeProposeStop(st *instState) {
	if st.stopProposed || !st.confirmed || !st.coord.IsPrimary() {
		return
	}
	p := r.env.Params()
	if len(st.failures) < p.NF() {
		return
	}
	// Deterministically select nf pieces of evidence (sorted by sender).
	senders := make([]types.ReplicaID, 0, len(st.failures))
	for s := range st.failures {
		senders = append(senders, s)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	evidence := make([]*types.Failure, 0, p.NF())
	for _, s := range senders[:p.NF()] {
		evidence = append(evidence, st.failures[s])
	}
	r.coordSeq++
	tx := types.Transaction{
		Client: 0,
		Seq:    r.coordSeq<<8 | uint64(r.env.ID())&0xff + 1,
		Op:     encodeStop(st.id, evidence),
	}
	if st.coord.Propose(&types.Batch{Txns: []types.Transaction{tx}}) {
		st.stopProposed = true
		r.env.Logf("rcc: proposed stop(%d) with %d evidence", st.id, len(evidence))
	} else {
		r.env.Logf("rcc: stop(%d) proposal rejected by coordinator", st.id)
	}
}

// onRecoveryTimer fires when the coordinating leader failed to get a stop
// operation accepted in time: the replica joins a coordinator view change
// (Fig. 4's "follows the steps of a view-change in P to replace L_i").
func (r *Replica) onRecoveryTimer(inst types.InstanceID) {
	st := r.states[inst]
	if !st.confirmed {
		return
	}
	if st.coord.IsPrimary() {
		// A previous leader's stop proposal may have been lost in a
		// coordinator view change; the proposal guard is per-replica, so
		// clear it and propose again. Duplicate accepted stops are
		// harmless (each is one more "accepted stop(i;E′) operation" in
		// the penalty count of Fig. 4 line 12).
		st.stopProposed = false
		r.maybeProposeStop(st)
	} else {
		st.coord.ForceViewChange()
	}
	r.env.SetTimer(sm.TimerID{Instance: inst, Kind: sm.TimerRecovery}, r.cfg.RecoveryTimeout)
}

// onCoordDecision processes decisions of the coordinating consensus of
// instance inst: stop operations and client reassignments.
func (r *Replica) onCoordDecision(inst types.InstanceID, d sm.Decision) {
	if d.Batch == nil {
		return
	}
	for i := range d.Batch.Txns {
		op := d.Batch.Txns[i].Op
		if len(op) == 0 {
			continue
		}
		switch op[0] {
		case opStop:
			target, evidence, err := decodeStop(op)
			if err == nil && target == inst {
				r.handleStop(target, evidence)
			}
		case opSwitch:
			c, to, err := decodeSwitch(op)
			if err == nil {
				r.handleSwitch(inst, c, to)
			}
		}
	}
}

// handleStop applies an accepted stop(i; E): recover the instance state
// from E, then schedule the restart (Fig. 4 lines 9–12).
func (r *Replica) handleStop(inst types.InstanceID, evidence []*types.Failure) {
	st := r.states[inst]
	p := r.env.Params()
	if len(evidence) < p.NF() {
		return
	}

	// Recover the per-round state: for every round, adopt the reported
	// proposal with the highest view whose batch matches its digest
	// (Theorem III.3: anything accepted by a non-faulty replica is
	// recoverable from E).
	best := make(map[types.Round]types.AcceptedProposal)
	var last types.Round
	for _, f := range evidence {
		for j := range f.State {
			ap := f.State[j]
			if ap.Batch == nil || ap.Batch.Digest() != ap.Digest {
				continue
			}
			cur, ok := best[ap.Round]
			if !ok || ap.View > cur.View {
				best[ap.Round] = ap
			}
			if ap.Round > last {
				last = ap.Round
			}
		}
	}
	adopt := make([]types.Round, 0, len(best))
	for rnd := range best {
		adopt = append(adopt, rnd)
	}
	sort.Slice(adopt, func(i, j int) bool { return adopt[i] < adopt[j] })
	for _, rnd := range adopt {
		ap := best[rnd]
		st.inst.AdoptDecision(sm.Decision{
			Instance: inst, Round: rnd, View: ap.View,
			Digest: ap.Digest, Batch: ap.Batch,
		})
	}

	// Exponentially growing restart penalty (Fig. 4 line 12). The exponent
	// is capped so the shift stays defined; by then the resume round is so
	// far in the future the instance is effectively retired.
	st.stops++
	exp := st.stops
	if exp > 40 {
		exp = 40
	}
	resume := last + types.Round(1)<<uint(exp)
	// Every round below resume without an adopted proposal is void — a
	// watermark, not a per-round walk, so the penalty width costs O(1).
	if resume > st.voidBelow {
		st.voidBelow = resume
	}
	if skipper, ok := st.inst.(rangeSkipper); ok {
		skipper.SkipTo(resume)
	}
	st.inst.ResumeAt(resume)
	st.startedAt = resume
	r.emit(flight.KVoid, inst, 0, uint64(resume), uint64(st.stops))
	r.env.Logf("rcc: applied stop(%d): last=%d resume=%d stops=%d", inst, last, resume, st.stops)
	r.resetDetection(st, resume)
	r.tryExecute()
	r.maybeNoOpFill()
}

// resetDetection clears the failure-detection epoch after a recovery.
func (r *Replica) resetDetection(st *instState, startedAt types.Round) {
	st.suspected = false
	st.confirmed = false
	st.stopProposed = false
	st.stallRound = 0
	st.failures = make(map[types.ReplicaID]*types.Failure)
	st.startedAt = startedAt
	r.env.CancelTimer(sm.TimerID{Instance: st.id, Kind: sm.TimerRebroadcast})
	r.env.CancelTimer(sm.TimerID{Instance: st.id, Kind: sm.TimerRecovery})
}

// requestStateSync reports that this replica is in the dark beyond what
// checkpoint catch-up can bridge: the hosting runtime (when it implements
// sm.StateSyncRequester) starts a checkpoint-based state transfer from
// peers. Requests coalesce in the runtime; duplicates are cheap.
func (r *Replica) requestStateSync() {
	if req, ok := r.env.(sm.StateSyncRequester); ok {
		r.emit(flight.KRecoveryKick, 0, 0, uint64(r.execRound), 0)
		req.RequestStateSync()
	}
}

// maybeDynamicCheckpoint triggers per-need checkpoints (§III-D): when
// nf−f replicas claim a failure in round ρ and this replica has finished ρ
// in all its instances, it participates in a checkpoint so in-the-dark
// replicas can recover the round without the malicious primary's help.
func (r *Replica) maybeDynamicCheckpoint(round types.Round) {
	for _, st := range r.states {
		if st.lastDec < round && round >= st.voidBelow && !st.inst.Halted() {
			return // not finished everywhere yet
		}
	}
	for _, st := range r.states {
		if ckp, ok := st.inst.(checkpointer); ok {
			ckp.ForceCheckpoint()
		}
	}
	// A checkpoint everyone can agree on is also the cheapest durable
	// recovery point: runtimes with a snapshot store persist the
	// execution state here, so a crash-restart resumes from this round
	// instead of replaying the whole journal.
	if sink, ok := r.env.(sm.CheckpointSink); ok {
		sink.PersistCheckpoint()
	}
}

// handleSwitch installs the agreed reassignment schedule (§III-E): the old
// primary stops proposing for the client immediately; the new instance
// starts accepting after 2σ more rounds; requests queue in between.
func (r *Replica) handleSwitch(coordOf types.InstanceID, c types.ClientID, to types.InstanceID) {
	if int(to) >= len(r.states) {
		return
	}
	cur := r.Assignment(c)
	if cur != coordOf || cur == to {
		return
	}
	r.switches[c] = &switchSched{
		from:        cur,
		to:          to,
		activeAfter: r.maxDecided + 2*r.cfg.Sigma,
	}
}
