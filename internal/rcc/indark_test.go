package rcc

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
)

// TestGeneralizedInTheDarkAttack reproduces Example III.4 at n = 7
// (f = 2): two malicious primaries partition the non-faulty replicas into
// A1, A2, and B so that only B accepts both instances' proposals. The
// dynamic per-need checkpoints (§III-D) must let every honest replica learn
// the missing proposals and execute the round.
func TestGeneralizedInTheDarkAttack(t *testing.T) {
	n := 7
	// Honest replicas: 0, 3, 4, 5, 6. Partition: A1 = {3, 4}, A2 = {5, 6},
	// B = {0}. Primary 1 proposes only to A1 ∪ B; primary 2 only to
	// A2 ∪ B. (The malicious primaries never trigger a confirmed failure:
	// each denies only f = 2 honest replicas.)
	a1 := map[types.ReplicaID]bool{3: true, 4: true, 0: true}
	a2 := map[types.ReplicaID]bool{5: true, 6: true, 0: true}
	netcfg := simnet.Config{
		Latency: time.Millisecond,
		Drop: func(from, to types.ReplicaID, m types.Message) bool {
			if m.Type() != types.MsgPrePrepare {
				return false
			}
			if from == 1 && m.Instance() == 1 {
				return !a1[to] && to != 1 && to != 2
			}
			if from == 2 && m.Instance() == 2 {
				return !a2[to] && to != 1 && to != 2
			}
			return false
		},
	}
	net, reps := cluster(t, n, Config{
		BatchSize:       1,
		Window:          4,
		ProgressTimeout: 150 * time.Millisecond,
		RecoveryTimeout: 450 * time.Millisecond,
	}, netcfg)

	// Demand for every instance across several rounds.
	for s := uint64(1); s <= 3; s++ {
		for c := types.ClientID(1); c <= 7; c++ {
			injectAt(net, n, time.Duration(s)*20*time.Millisecond, mkTx(c, s))
		}
	}
	net.Run(15 * time.Second)

	honest := []types.ReplicaID{0, 3, 4, 5, 6}
	for _, id := range honest {
		if got := reps[id].RoundsExecuted(); got < 1 {
			t.Fatalf("replica %d executed %d rounds under the in-the-dark attack", id, got)
		}
		// Each replica must have learned BOTH attacked instances'
		// transactions (via checkpoint or recovery) for the rounds it
		// executed.
		seen1, seen2 := 0, 0
		for _, tx := range realTxns(net.Node(id).Decisions()) {
			switch tx.Client {
			case 1:
				seen1++
			case 2:
				seen2++
			}
		}
		if seen1 == 0 && seen2 == 0 {
			t.Fatalf("replica %d never learned any attacked-instance transaction", id)
		}
	}
	sameOrder(t, net, honest)
}
