package rcc

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

// TestSyncPointRoundTrip: a fresh replica that installs a running cluster's
// sync point adopts the execution frontier, every instance's delivery
// watermark, and the checkpoint chain anchors — the machine half of a state
// transfer.
func TestSyncPointRoundTrip(t *testing.T) {
	const n = 4
	net, reps := cluster(t, n, Config{BatchSize: 1, Window: 4}, simnet.Config{})
	for seq := uint64(1); seq <= 6; seq++ {
		inject(net, n, mkTx(1, seq))
		net.Run(net.Now() + 200*time.Millisecond)
	}
	if reps[0].ExecRound() < 2 {
		t.Fatalf("cluster made no progress (exec round %d)", reps[0].ExecRound())
	}

	// Determinism: replicas at the same frontier serialize identically.
	sp := reps[0].SyncPoint()
	if sp == nil {
		t.Fatal("PBFT-backed RCC must support sync points")
	}
	for i := 1; i < n; i++ {
		if reps[i].ExecRound() == reps[0].ExecRound() && !bytes.Equal(reps[i].SyncPoint(), sp) {
			t.Fatalf("replica %d at the same frontier serializes a different sync point", i)
		}
	}

	// A fresh replica (same deployment shape) installs the frontier.
	net2, reps2 := cluster(t, n, Config{BatchSize: 1, Window: 4}, simnet.Config{})
	_ = net2
	fresh := reps2[0]
	if err := fresh.InstallSyncPoint(sp); err != nil {
		t.Fatalf("install: %v", err)
	}
	if fresh.ExecRound() != reps[0].ExecRound() {
		t.Fatalf("installed exec round %d, want %d", fresh.ExecRound(), reps[0].ExecRound())
	}
	for i := 0; i < fresh.M(); i++ {
		got, want := fresh.Status(types.InstanceID(i)), reps[0].Status(types.InstanceID(i))
		if got.LastDecided != want.LastDecided || got.VoidBelow != want.VoidBelow {
			t.Fatalf("instance %d installed %+v, want %+v", i, got, want)
		}
	}
	// And the installed frontier re-serializes to the same bytes.
	if !bytes.Equal(fresh.SyncPoint(), sp) {
		t.Fatal("installed sync point does not round-trip")
	}

	// Malformed and mismatched inputs are refused (checked on a replica
	// that has not installed anything, so the idempotent already-at-
	// frontier early-out cannot mask the refusal).
	if err := fresh.InstallSyncPoint([]byte{9, 9, 9}); err == nil {
		t.Fatal("malformed sync point accepted")
	}
	if err := reps2[1].InstallSyncPoint(sp[:len(sp)-3]); err == nil {
		t.Fatal("truncated sync point accepted")
	}
}

var _ sm.StateSyncable = (*Replica)(nil)
