// Package rcc implements the paper's primary contribution: the RCC
// (Resilient Concurrent Consensus) paradigm, which turns any primary-backup
// Byzantine commit algorithm into a concurrent consensus protocol by
// running m instances concurrently (§III), recovering failed instances
// wait-free (§III-C, Fig. 4), running dynamic per-need checkpoints against
// in-the-dark attacks (§III-D), managing client-to-instance assignment
// (§III-E), and executing each round's transactions in a deterministic but
// unpredictable permutation to mitigate ordering attacks (§IV).
package rcc

import (
	"math/big"

	"repro/internal/types"
)

// This file implements §IV's deterministic order-selection: the bijection
//
//	f_S : {0, ..., |S|!−1} → P(S)
//	f_S(i) = S                     if |S| = 1
//	f_S(i) = f_{S∖S[q]}(r) ⊕ S[q]  if |S| > 1
//
// with q = i div (|S|−1)! and r = i mod (|S|−1)!, where ⊕ appends S[q] at
// the end (Lemma IV.2 proves f_S is a bijection). Replicas uniformly pick
// h = digest(S) mod (k!−1): with at least one non-malicious primary (m > f)
// the value is only known after the round completes and cannot be
// predictably influenced.
//
// Factorials overflow uint64 beyond 20 elements and RCC runs with up to
// m = 91 instances, so the arithmetic uses math/big.

// factorial returns n! as a big.Int.
func factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// PermutationIndices maps h ∈ {0, ..., k!−1} to the permutation f_S(h),
// returned as positions: out[p] is the index of S executed at position p.
// It panics when h is out of range (callers reduce h modulo k!−1 first).
func PermutationIndices(k int, h *big.Int) []int {
	if k <= 0 {
		return nil
	}
	if h.Sign() < 0 || h.Cmp(factorial(k)) >= 0 {
		panic("rcc: permutation index out of range")
	}
	avail := make([]int, k)
	for i := range avail {
		avail[i] = i
	}
	out := make([]int, k)
	rem := new(big.Int).Set(h)
	q := new(big.Int)
	for size := k; size >= 1; size-- {
		fact := factorial(size - 1)
		q.DivMod(rem, fact, rem)
		qi := int(q.Int64()) // q < size because rem < size!
		// f_S appends S[q] at the END of the recursive permutation,
		// so the element chosen at this level executes last among the
		// remaining positions.
		out[size-1] = avail[qi]
		avail = append(avail[:qi], avail[qi+1:]...)
	}
	return out
}

// OrderSeed computes h = digest(S) mod (k!−1) for the sequence of per-round
// decisions S, where digest(S) hashes the per-instance proposal digests in
// increasing instance order.
func OrderSeed(digests []types.Digest) *big.Int {
	k := len(digests)
	if k <= 1 {
		return big.NewInt(0)
	}
	buf := make([]byte, 0, 32*k)
	for i := range digests {
		buf = append(buf, digests[i][:]...)
	}
	d := types.Hash(buf)
	mod := new(big.Int).Sub(factorial(k), big.NewInt(1)) // k! − 1, as the paper specifies
	h := new(big.Int).SetBytes(d[:])
	return h.Mod(h, mod)
}

// ExecutionOrder returns the execution positions for one RCC round: given
// the per-instance proposal digests (increasing instance order), it returns
// a slice ord where ord[p] is the instance-slot executed at position p.
//
// When unpredictable is false, the identity order is returned (the basic
// scheme of §III-B where ⟨T_i⟩ is executed i-th).
func ExecutionOrder(digests []types.Digest, unpredictable bool) []int {
	k := len(digests)
	out := make([]int, k)
	if !unpredictable || k <= 1 {
		for i := range out {
			out[i] = i
		}
		return out
	}
	return PermutationIndices(k, OrderSeed(digests))
}
