package rcc

import (
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/pbft"
	"repro/internal/sm"
	"repro/internal/types"
)

// Factory creates one BCA instance; it is how RCC acts as a paradigm
// (design goal D3): supply a PBFT, Zyzzyva, or SBFT factory to obtain
// RCC-P, RCC-Z, or RCC-S.
type Factory func(cfg InstanceConfig) sm.Instance

// InstanceConfig parameterizes one concurrent BCA instance.
type InstanceConfig struct {
	Instance        types.InstanceID
	Primary         types.ReplicaID
	Window          int
	BatchSize       int
	ProgressTimeout time.Duration
	// Metrics is the replica's instrument catalog; factories whose BCA
	// supports instrumentation forward it (nil disables).
	Metrics *obs.NodeMetrics
}

// Config parameterizes an RCC replica.
type Config struct {
	// M is the number of concurrent instances (1 ≤ m ≤ n); 0 means n.
	M int
	// BatchSize groups client transactions per proposal.
	BatchSize int
	// Window is the out-of-order proposal window per instance
	// (1 disables out-of-order processing).
	Window int
	// ProgressTimeout is the per-instance failure-detection timeout.
	ProgressTimeout time.Duration
	// RecoveryTimeout bounds the wait for the coordinating leader's
	// stop proposal before forcing a coordinator view change.
	RecoveryTimeout time.Duration
	// Sigma is the lag threshold σ: an instance σ rounds behind any
	// other is suspected (throttling detection, §IV), and σ also paces
	// the SwitchInstance schedule (§III-E).
	Sigma types.Round
	// UnpredictableOrdering enables the §IV permutation ordering;
	// when false, round transactions execute in instance order.
	UnpredictableOrdering bool
	// DisableNoOpFill turns off no-op filling (§III-E) for tests.
	DisableNoOpFill bool
	// NewInstance creates the underlying BCA; nil selects PBFT.
	NewInstance Factory
	// Metrics receives unification counters, the unify-stage latency
	// histogram, and lifecycle trace stamps, and is forwarded to each
	// BCA instance. Nil disables instrumentation.
	Metrics *obs.NodeMetrics
}

func (c *Config) defaults(n int) {
	if c.M <= 0 || c.M > n {
		c.M = n
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.Window <= 0 {
		c.Window = 1
	}
	if c.ProgressTimeout <= 0 {
		c.ProgressTimeout = 500 * time.Millisecond
	}
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = 4 * c.ProgressTimeout
	}
	if c.Sigma <= 0 {
		c.Sigma = 16
	}
	if c.NewInstance == nil {
		c.NewInstance = PBFTFactory()
	}
}

// PBFTFactory returns a Factory producing PBFT instances in RCC mode
// (fixed primary, no view changes).
func PBFTFactory() Factory {
	return func(cfg InstanceConfig) sm.Instance {
		return pbft.New(pbft.Config{
			Instance:        cfg.Instance,
			Primary:         cfg.Primary,
			FixedPrimary:    true,
			Window:          cfg.Window,
			BatchSize:       cfg.BatchSize,
			ProgressTimeout: cfg.ProgressTimeout,
			Metrics:         cfg.Metrics,
		})
	}
}

// checkpointer is the optional capability RCC uses for dynamic per-need
// checkpoints (§III-D).
type checkpointer interface{ ForceCheckpoint() }

// pendinger exposes the queued-request count (used by no-op filling).
type pendinger interface{ Pending() int }

// rangeSkipper is the optional capability of a BCA to void all rounds below
// a target that hold no agreed proposal (used by handleStop). The skip must
// cost O(materialized rounds), not O(range width): restart penalties can
// span arbitrarily many rounds.
type rangeSkipper interface{ SkipTo(types.Round) }

// instState tracks one concurrent instance at this replica.
type instState struct {
	id      types.InstanceID
	primary types.ReplicaID
	inst    sm.Instance
	coord   *pbft.Instance

	decided map[types.Round]sm.Decision
	// decidedAt stamps when each decided round arrived (env.Now), feeding
	// the unify-stage latency histogram; nil when metrics are off.
	decidedAt map[types.Round]time.Duration
	// voidBelow is the void watermark: every round below it that is not in
	// decided was agreed (via stop(i;E)) to hold no proposal. A watermark
	// rather than a per-round set keeps restart penalties O(1) in space.
	voidBelow types.Round
	lastDec   types.Round // highest decided round

	// Failure handling (Fig. 4).
	suspected    bool
	suspectRound types.Round
	confirmed    bool
	failures     map[types.ReplicaID]*types.Failure
	stopProposed bool
	stops        int         // accepted stop(i;E) count — the penalty exponent
	startedAt    types.Round // round at which the instance last (re)started
	rebroadcast  time.Duration
	ckpForced    types.Round // last round answered with a catch-up checkpoint
	stallRound   types.Round // round for which a stall timer is armed (0 none)
}

// switchSched tracks an in-progress client reassignment (§III-E).
type switchSched struct {
	from, to    types.InstanceID
	activeAfter types.Round // to-instance accepts after this RCC round
	queued      []*types.ClientRequest
}

// Replica is the RCC machine of one replica: it hosts m concurrent BCA
// instances plus their coordinating consensus instances, collects per-round
// decisions, orders them deterministically, and emits them for execution
// through its environment's Deliver.
type Replica struct {
	cfg Config
	env sm.Env

	states []*instState

	execRound  types.Round // next RCC round to order and deliver (1-based)
	maxDecided types.Round // highest round decided by any instance

	assign   map[types.ClientID]types.InstanceID
	switches map[types.ClientID]*switchSched

	// delivered is the composite per-client dedup frontier: the highest
	// sequence number per client that wave unification has EXECUTED (not
	// merely decided inside an instance). Unlike the inner instances'
	// lastSeq maps — which advance at inner delivery, ahead of the wave
	// frontier and at quorum-dependent speeds — this map is a pure function
	// of the delivery prefix, so it is identical across replicas at the
	// same block height and safe to ship in boundary-attested sync points.
	delivered map[types.ClientID]uint64

	coordSeq uint64

	// stats
	roundsExecuted uint64
	noopsProposed  uint64
}

var _ sm.Machine = (*Replica)(nil)

// New creates an RCC replica machine. The quorum parameters come from the
// environment at Start.
func New(cfg Config) *Replica {
	return &Replica{
		cfg:       cfg,
		assign:    make(map[types.ClientID]types.InstanceID),
		switches:  make(map[types.ClientID]*switchSched),
		delivered: make(map[types.ClientID]uint64),
	}
}

// Start implements sm.Machine: instantiate the m BCA instances and their
// coordinating consensus instances.
func (r *Replica) Start(env sm.Env) {
	r.env = env
	n := env.Params().N
	r.cfg.defaults(n)
	r.execRound = 1
	r.states = make([]*instState, r.cfg.M)
	for i := 0; i < r.cfg.M; i++ {
		id := types.InstanceID(i)
		st := &instState{
			id:       id,
			primary:  types.ReplicaID(i % n),
			decided:  make(map[types.Round]sm.Decision),
			failures: make(map[types.ReplicaID]*types.Failure),
		}
		if r.cfg.Metrics != nil {
			st.decidedAt = make(map[types.Round]time.Duration)
		}
		st.inst = r.cfg.NewInstance(InstanceConfig{
			Instance:        id,
			Primary:         st.primary,
			Window:          r.cfg.Window,
			BatchSize:       r.cfg.BatchSize,
			ProgressTimeout: r.cfg.ProgressTimeout,
			Metrics:         r.cfg.Metrics,
		})
		// The coordinating consensus P for instance i is a standalone
		// PBFT instance (view changes enabled) whose initial leader is
		// the replica after the instance's primary, so a faulty
		// primary does not lead its own recovery.
		st.coord = pbft.New(pbft.Config{
			Instance:        types.CoordInstance(id),
			Primary:         types.ReplicaID((i + 1) % n),
			ProgressTimeout: r.cfg.ProgressTimeout,
			BatchSize:       1,
			Window:          4,
		})
		r.states[i] = st
		st.coord.SetViewInstalledHook(func(types.View) { r.onCoordViewInstalled(st) })
		st.inst.Start(&instEnv{outer: env, mgr: r, inst: id})
		st.coord.Start(&coordEnv{outer: env, mgr: r, inst: id})
	}
}

// onCoordViewInstalled runs after the coordinating consensus of st replaced
// its leader. With a confirmed failure pending, the fresh leader must
// propose the stop operation immediately, and the other replicas grant it a
// fresh timeout before suspecting it too (Fig. 4's "waits on the leader Li
// to propose a valid stop-operation or for the timer to run out") — without
// this, every replica's recovery timer fires in lockstep and the forced
// view changes kill each new leader's proposal before it can commit.
func (r *Replica) onCoordViewInstalled(st *instState) {
	if !st.confirmed {
		return
	}
	r.env.SetTimer(sm.TimerID{Instance: st.id, Kind: sm.TimerRecovery}, r.cfg.RecoveryTimeout)
	if st.coord.IsPrimary() {
		st.stopProposed = false
		r.maybeProposeStop(st)
	}
}

// M returns the number of concurrent instances.
func (r *Replica) M() int { return len(r.states) }

// OwnInstance returns the instance this replica leads, if any.
func (r *Replica) OwnInstance() (types.InstanceID, bool) {
	for _, st := range r.states {
		if st.primary == r.env.ID() {
			return st.id, true
		}
	}
	return 0, false
}

// Instance returns the i-th BCA instance (for tests and the runtime).
func (r *Replica) Instance(i types.InstanceID) sm.Instance { return r.states[i].inst }

// ExecRound returns the next RCC round awaiting ordering/execution.
func (r *Replica) ExecRound() types.Round { return r.execRound }

// RoundsExecuted returns the number of completed RCC rounds.
func (r *Replica) RoundsExecuted() uint64 { return r.roundsExecuted }

// NoOpsProposed returns the number of no-op fill proposals made locally.
func (r *Replica) NoOpsProposed() uint64 { return r.noopsProposed }

// Status is an introspection snapshot of one instance's recovery state,
// used by tests, the benchmark harness, and operators.
type Status struct {
	Instance    types.InstanceID
	Primary     types.ReplicaID
	Halted      bool
	Suspected   bool
	Confirmed   bool
	Stops       int
	VoidBelow   types.Round
	LastDecided types.Round
	StartedAt   types.Round
	Failures    int        // distinct FAILURE claims held
	CoordView   types.View // view of the coordinating consensus
	DecidedExec bool       // whether this instance decided the execution round
}

// Status returns the snapshot for instance i.
func (r *Replica) Status(i types.InstanceID) Status {
	st := r.states[i]
	_, dec := st.decided[r.execRound]
	return Status{
		Instance:    st.id,
		Primary:     st.primary,
		Halted:      st.inst.Halted(),
		Suspected:   st.suspected,
		Confirmed:   st.confirmed,
		Stops:       st.stops,
		VoidBelow:   st.voidBelow,
		LastDecided: st.lastDec,
		StartedAt:   st.startedAt,
		Failures:    len(st.failures),
		CoordView:   st.coord.View(),
		DecidedExec: dec,
	}
}

// Assignment returns the instance currently serving client c (§III-E:
// every client is assigned to a single instance).
func (r *Replica) Assignment(c types.ClientID) types.InstanceID {
	if inst, ok := r.assign[c]; ok {
		return inst
	}
	return types.InstanceID(uint32(c) % uint32(len(r.states)))
}

// Propose submits a batch directly to the local replica's own instance
// (used by the benchmark drivers; client traffic normally arrives as
// ClientRequest messages).
func (r *Replica) Propose(b *types.Batch) bool {
	own, ok := r.OwnInstance()
	if !ok {
		return false
	}
	return r.states[own].inst.Propose(b)
}

// OnMessage implements sm.Machine: route by instance and type.
func (r *Replica) OnMessage(from sm.Source, m types.Message) {
	switch msg := m.(type) {
	case *types.ClientRequest:
		r.routeClientRequest(from, msg)
		return
	case *types.Failure:
		r.onFailure(from, msg)
		return
	case *types.SwitchInstance:
		r.onSwitchRequest(msg)
		return
	}
	id := m.Instance()
	if types.IsCoord(id) {
		b := types.BCAOf(id)
		if int(b) < len(r.states) {
			r.states[b].coord.OnMessage(from, m)
		}
		return
	}
	if int(id) < len(r.states) {
		r.states[id].inst.OnMessage(from, m)
	}
}

// OnTimer implements sm.Machine.
func (r *Replica) OnTimer(id sm.TimerID) {
	switch id.Kind {
	case sm.TimerRebroadcast:
		r.onRebroadcastTimer(id.Instance)
		return
	case sm.TimerRecovery:
		r.onRecoveryTimer(id.Instance)
		return
	case sm.TimerLag:
		r.onStallTimer(id)
		return
	}
	if types.IsCoord(id.Instance) {
		b := types.BCAOf(id.Instance)
		if int(b) < len(r.states) {
			r.states[b].coord.OnTimer(id)
		}
		return
	}
	if int(id.Instance) < len(r.states) {
		r.states[id.Instance].inst.OnTimer(id)
	}
}

// routeClientRequest forwards a client transaction to the instance serving
// the client, honoring any in-progress reassignment schedule.
func (r *Replica) routeClientRequest(from sm.Source, m *types.ClientRequest) {
	c := m.Tx.Client
	if sched, ok := r.switches[c]; ok {
		if r.maxDecided < sched.activeAfter {
			sched.queued = append(sched.queued, m)
			return
		}
		r.completeSwitch(c, sched)
	}
	inst := r.Assignment(c)
	if met := r.cfg.Metrics; met != nil {
		met.Trace(uint64(c), m.Tx.Seq, obs.PointAssign)
	}
	fwd := types.NewClientRequest(inst, m.Tx)
	r.states[inst].inst.OnMessage(from, fwd)
}

// completeSwitch flushes a finished reassignment.
func (r *Replica) completeSwitch(c types.ClientID, sched *switchSched) {
	r.assign[c] = sched.to
	delete(r.switches, c)
	for _, q := range sched.queued {
		fwd := types.NewClientRequest(sched.to, q.Tx)
		r.states[sched.to].inst.OnMessage(sm.FromClient(c), fwd)
	}
}

// onSwitchRequest handles a client's SWITCH-INSTANCE broadcast: the current
// leader of the coordinating consensus of the client's instance proposes
// the reassignment (agreement makes the schedule consistent everywhere).
func (r *Replica) onSwitchRequest(m *types.SwitchInstance) {
	if int(m.To) >= len(r.states) {
		return
	}
	cur := r.Assignment(m.Client)
	if cur == m.To {
		return
	}
	if _, pending := r.switches[m.Client]; pending {
		return
	}
	coord := r.states[cur].coord
	if !coord.IsPrimary() {
		return
	}
	r.coordSeq++
	tx := types.Transaction{Client: 0, Seq: r.coordSeq<<8 | uint64(r.env.ID()) + 1, Op: encodeSwitch(m.Client, m.To)}
	coord.Propose(&types.Batch{Txns: []types.Transaction{tx}})
}

// emit records a flight event attributed to this replica.
func (r *Replica) emit(kind flight.Kind, inst types.InstanceID, view types.View, seq, detail uint64) {
	r.cfg.Metrics.Emit(uint16(r.env.ID()), flight.SubRCC, kind, uint32(inst), uint64(view), seq, detail)
}

// onDecision receives one BCA instance decision (via instEnv.Deliver).
func (r *Replica) onDecision(inst types.InstanceID, d sm.Decision) {
	st := r.states[inst]
	if _, dup := st.decided[d.Round]; dup {
		return
	}
	st.decided[d.Round] = d
	r.emit(flight.KInstanceDecide, inst, d.View, uint64(d.Round), 0)
	if st.decidedAt != nil {
		st.decidedAt[d.Round] = r.env.Now()
	}
	if d.Round > st.lastDec {
		st.lastDec = d.Round
	}
	if d.Round > r.maxDecided {
		r.maxDecided = d.Round
	}
	// A halted-but-unconfirmed instance whose missing rounds arrived via
	// checkpoint catch-up resumes participation: the suspected failure
	// resolved itself (in-the-dark recovery, §III-D).
	if st.suspected && !st.confirmed && st.inst.Halted() && d.Round >= st.suspectRound {
		st.inst.ResumeAt(st.lastDec + 1)
		r.resetDetection(st, st.lastDec+1)
	}
	r.checkLag()
	r.maybeNoOpFill()
	r.tryExecute()
}

// tryExecute orders and delivers completed RCC rounds (§III-B steps 2–3):
// once every instance has either decided round ρ or has ρ void (stopped
// with a restart penalty covering ρ), the round's transactions execute in
// the deterministic permutation order of §IV.
func (r *Replica) tryExecute() {
	for {
		type slot struct {
			inst types.InstanceID
			dec  sm.Decision
		}
		slots := make([]slot, 0, len(r.states))
		var blockers []*instState
		for _, st := range r.states {
			if d, ok := st.decided[r.execRound]; ok {
				slots = append(slots, slot{st.id, d})
				continue
			}
			if r.execRound < st.voidBelow {
				continue
			}
			blockers = append(blockers, st)
		}
		if len(blockers) > 0 {
			// The round cannot execute yet. If other instances have
			// already decided it, each blocking instance is due and must
			// make progress in time — this is what re-detects a resumed
			// instance whose primary is still crashed once its restart
			// penalty has been consumed.
			if len(slots) > 0 {
				for _, st := range blockers {
					r.armStall(st)
				}
			}
			return
		}
		digests := make([]types.Digest, len(slots))
		for i := range slots {
			digests[i] = slots[i].dec.Digest
		}
		ord := ExecutionOrder(digests, r.cfg.UnpredictableOrdering)
		for _, p := range ord {
			r.noteDelivered(slots[p].dec.Batch)
			r.env.Deliver(slots[p].dec)
		}
		met := r.cfg.Metrics
		for _, s := range slots {
			st := r.states[s.inst]
			delete(st.decided, r.execRound)
			if st.decidedAt != nil {
				if at, ok := st.decidedAt[r.execRound]; ok {
					met.ObserveStage(obs.StageUnify, r.env.Now()-at)
					delete(st.decidedAt, r.execRound)
				}
			}
		}
		if met != nil {
			met.Unified.Inc()
		}
		r.emit(flight.KWaveUnify, 0, 0, uint64(r.execRound), uint64(len(slots)))
		r.roundsExecuted++
		r.execRound++
		// A cadence snapshot that came due mid-wave persists here, at the
		// wave boundary: the ledger head and the boundary sync point
		// describe the same deterministic instant on every replica, which is
		// what lets f+1 of them attest the checkpoint byte-identically.
		if due, ok := r.env.(sm.DeferredCheckpointer); ok && due.CheckpointDue() {
			if sink, ok := r.env.(sm.CheckpointSink); ok {
				sink.PersistCheckpoint()
			}
		}
	}
}

// noteDelivered advances the composite dedup frontier for every client
// transaction the wave just executed.
func (r *Replica) noteDelivered(b *types.Batch) {
	if b == nil {
		return
	}
	for i := range b.Txns {
		tx := &b.Txns[i]
		if tx.IsNoOp() {
			continue
		}
		if tx.Seq > r.delivered[tx.Client] {
			r.delivered[tx.Client] = tx.Seq
		}
	}
}

// armStall arms the execution-stall detector for a blocking instance: if it
// fails to decide the current execution round within the progress timeout,
// it is suspected (once per round, so sustained progress elsewhere cannot
// keep postponing the deadline).
func (r *Replica) armStall(st *instState) {
	if st.suspected || st.stallRound == r.execRound {
		return
	}
	st.stallRound = r.execRound
	id := sm.TimerID{Instance: st.id, Kind: sm.TimerLag, Round: r.execRound}
	r.env.SetTimer(id, r.cfg.ProgressTimeout)
}

// onStallTimer fires when a due instance failed to decide the execution
// round in time.
func (r *Replica) onStallTimer(id sm.TimerID) {
	if int(id.Instance) >= len(r.states) || r.execRound != id.Round {
		return
	}
	st := r.states[id.Instance]
	st.stallRound = 0
	if st.suspected {
		return
	}
	if _, ok := st.decided[id.Round]; ok || id.Round < st.voidBelow {
		return
	}
	r.suspectInstance(st.id, id.Round)
}

// checkLag suspects instances lagging σ rounds behind the front runner
// (throttling attack mitigation, §IV).
func (r *Replica) checkLag() {
	for _, st := range r.states {
		if st.suspected || st.inst.Halted() {
			continue
		}
		behind := st.lastDec
		if v := r.voidHorizon(st); v > behind {
			behind = v
		}
		if r.maxDecided > behind+r.cfg.Sigma {
			r.suspectInstance(st.id, behind+1)
		}
	}
}

// voidHorizon returns the highest round void for st (restart penalties
// count as progress for lag purposes).
func (r *Replica) voidHorizon(st *instState) types.Round {
	if st.voidBelow == 0 {
		return 0
	}
	return st.voidBelow - 1
}

// maybeNoOpFill proposes a no-op on the local replica's own instance when
// it has nothing to propose but other instances are progressing (§III-E),
// so low client demand does not stall round completion.
func (r *Replica) maybeNoOpFill() {
	if r.cfg.DisableNoOpFill {
		return
	}
	own, ok := r.OwnInstance()
	if !ok {
		return
	}
	st := r.states[own]
	if st.inst.Halted() {
		return
	}
	if p, ok := st.inst.(pendinger); ok && p.Pending() > 0 {
		return
	}
	for st.inst.NextProposeRound() <= r.maxDecided {
		if !st.inst.Propose(types.NoOpBatch()) {
			return
		}
		r.noopsProposed++
		if met := r.cfg.Metrics; met != nil {
			met.NoOps.Inc()
		}
	}
}
