package rcc

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

// equivocator is a Byzantine replica: as primary of instance 1 it sends
// CONFLICTING proposals for the same round to different replicas (the
// classic equivocation attack), and otherwise stays silent.
type equivocator struct {
	env   sm.Env
	round types.Round
}

func (e *equivocator) Start(env sm.Env) { e.env = env }

func (e *equivocator) OnMessage(from sm.Source, m types.Message) {
	req, ok := m.(*types.ClientRequest)
	if !ok || !from.IsClient {
		return
	}
	e.round++
	b1 := &types.Batch{Txns: []types.Transaction{req.Tx}}
	alt := req.Tx
	alt.Op = append([]byte("evil-"), alt.Op...)
	b2 := &types.Batch{Txns: []types.Transaction{alt}}

	pp1 := &types.PrePrepare{View: 0, Round: e.round, Digest: b1.Digest(), Batch: b1}
	pp1.Inst = 1
	pp2 := &types.PrePrepare{View: 0, Round: e.round, Digest: b2.Digest(), Batch: b2}
	pp2.Inst = 1
	// Half the replicas see one proposal, half the other.
	n := e.env.Params().N
	for r := 0; r < n; r++ {
		if r == int(e.env.ID()) {
			continue
		}
		if r%2 == 0 {
			e.env.Send(types.ReplicaID(r), pp1)
		} else {
			e.env.Send(types.ReplicaID(r), pp2)
		}
	}
}

func (e *equivocator) OnTimer(sm.TimerID) {}

func TestEquivocatingPrimaryIsStoppedAndOthersAgree(t *testing.T) {
	n := 4
	net, err := simnet.New(simnet.Config{N: n, Latency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		if i == 1 {
			net.SetMachine(1, &equivocator{})
			continue
		}
		reps[i] = New(Config{
			BatchSize:       1,
			Window:          4,
			ProgressTimeout: 100 * time.Millisecond,
			RecoveryTimeout: 300 * time.Millisecond,
		})
		net.SetMachine(types.ReplicaID(i), reps[i])
	}
	net.Start()

	// Demand for every instance, including the equivocator's.
	for s := uint64(1); s <= 3; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			tx := types.Transaction{Client: c, Seq: s, Op: []byte{byte(c), byte(s)}}
			req := types.NewClientRequest(0, tx)
			at := time.Duration(s) * 20 * time.Millisecond
			for r := 0; r < n; r++ {
				node := net.Node(types.ReplicaID(r))
				net.Schedule(at, func() { node.Machine().OnMessage(sm.FromClient(tx.Client), req) })
			}
		}
	}
	net.Run(10 * time.Second)

	honest := []int{0, 2, 3}
	for _, i := range honest {
		st := reps[i].Status(1)
		if st.Stops == 0 {
			t.Fatalf("replica %d never stopped the equivocating instance: %+v", i, st)
		}
		// Wait-free progress: healthy instances' transactions executed.
		count := 0
		for _, d := range net.Node(types.ReplicaID(i)).Decisions() {
			if d.Batch == nil {
				continue
			}
			for _, tx := range d.Batch.Txns {
				if !tx.IsNoOp() && tx.Client != 1 {
					count++
				}
			}
		}
		if count < 9 {
			t.Fatalf("replica %d executed only %d healthy-instance txns, want 9", i, count)
		}
	}
	// No honest replica may have delivered BOTH conflicting payloads, and
	// all must agree on what instance 1 delivered (possibly nothing).
	ref := instance1Payloads(net, 0)
	for _, i := range honest[1:] {
		got := instance1Payloads(net, types.ReplicaID(i))
		if len(got) != len(ref) {
			t.Fatalf("replica %d delivered %d instance-1 batches, replica 0 delivered %d", i, len(got), len(ref))
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Fatalf("replica %d diverges from replica 0 on instance-1 delivery %d", i, j)
			}
		}
	}
}

func instance1Payloads(net *simnet.Network, id types.ReplicaID) []types.Digest {
	var out []types.Digest
	for _, d := range net.Node(id).Decisions() {
		if d.Instance == 1 {
			out = append(out, d.Digest)
		}
	}
	return out
}

// slowPrimary throttles: it proposes, but only after a long artificial
// delay — slow enough to starve its instance, fast enough to dodge naive
// progress timeouts. σ-lag detection (§IV) must catch it.
func TestThrottlingPrimaryCaughtBySigma(t *testing.T) {
	n := 4
	net, err := simnet.New(simnet.Config{N: n, Latency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		reps[i] = New(Config{
			BatchSize:       1,
			Window:          8,
			Sigma:           3,
			ProgressTimeout: time.Hour, // timeouts alone must not catch it
			RecoveryTimeout: 300 * time.Millisecond,
		})
		net.SetMachine(types.ReplicaID(i), reps[i])
	}
	net.Start()
	// The "throttled" instance is simulated by dropping its primary's
	// proposals: instance 1 falls behind while 0, 2, 3 advance.
	// (A real throttler would propose at a crawl; the lag signature that
	// σ-detection keys on is identical.)
	net.Crash(1)
	for s := uint64(1); s <= 8; s++ {
		for _, c := range []types.ClientID{2, 3, 4} {
			tx := types.Transaction{Client: c, Seq: s, Op: []byte{byte(c), byte(s)}}
			req := types.NewClientRequest(0, tx)
			at := time.Duration(s) * 20 * time.Millisecond
			for r := 0; r < n; r++ {
				node := net.Node(types.ReplicaID(r))
				net.Schedule(at, func() { node.Machine().OnMessage(sm.FromClient(tx.Client), req) })
			}
		}
	}
	net.Run(15 * time.Second)
	st := reps[0].Status(1)
	if st.Stops == 0 && !st.Suspected {
		t.Fatalf("σ=3 lag detection never fired: %+v", st)
	}
}
