package rcc

// Checkpoint-based state transfer for the RCC paradigm (sm.StateSyncable):
// the replica's frontier is the composition of every concurrent instance's
// frontier (and its coordinating consensus'), plus the RCC-level round
// ordering state and the agreed client assignment. All of it is derived
// from consensus decisions, so replicas with identical frontiers serialize
// identically — the property the f+1 attestation of statesync offers rests
// on.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/sm"
	"repro/internal/types"
)

const rccSyncPointV1 = 2 // distinct from the PBFT tag so blobs cannot be confused

// SyncPoint implements sm.StateSyncable. Returns nil when any nested
// instance cannot serialize its frontier (a non-PBFT factory without
// support): state transfer is then unavailable for the deployment.
func (r *Replica) SyncPoint() []byte {
	buf := make([]byte, 0, 64+64*len(r.states))
	buf = append(buf, rccSyncPointV1)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.execRound))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.maxDecided))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.states)))
	for _, st := range r.states {
		inner, ok := st.inst.(sm.StateSyncable)
		if !ok {
			return nil
		}
		isp := inner.SyncPoint()
		if isp == nil {
			return nil
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(st.voidBelow))
		buf = binary.BigEndian.AppendUint64(buf, uint64(st.lastDec))
		buf = binary.BigEndian.AppendUint32(buf, uint32(st.stops))
		buf = binary.BigEndian.AppendUint64(buf, uint64(st.startedAt))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(isp)))
		buf = append(buf, isp...)
		csp := st.coord.SyncPoint()
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(csp)))
		buf = append(buf, csp...)
	}
	// Client assignment (§III-E), sorted for determinism. Only explicit
	// reassignments are recorded; the default hash assignment needs none.
	clients := make([]types.ClientID, 0, len(r.assign))
	for c := range r.assign {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(clients)))
	for _, c := range clients {
		buf = binary.BigEndian.AppendUint32(buf, uint32(c))
		buf = binary.BigEndian.AppendUint16(buf, uint16(r.assign[c]))
	}
	// In-flight reassignment schedules (without their queued requests —
	// clients retransmit).
	pending := make([]types.ClientID, 0, len(r.switches))
	for c := range r.switches {
		pending = append(pending, c)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pending)))
	for _, c := range pending {
		s := r.switches[c]
		buf = binary.BigEndian.AppendUint32(buf, uint32(c))
		buf = binary.BigEndian.AppendUint16(buf, uint16(s.from))
		buf = binary.BigEndian.AppendUint16(buf, uint16(s.to))
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.activeAfter))
	}
	// Composite per-client dedup frontier (pure function of the delivery
	// prefix), sorted for determinism. A synced replica that becomes primary
	// must know which sequence numbers already executed, or a client
	// retransmission would be re-proposed and double-delivered.
	return appendDelivered(buf, r.delivered)
}

// appendDelivered appends a u32 count plus sorted (client u32, seq u64)
// pairs.
func appendDelivered(buf []byte, m map[types.ClientID]uint64) []byte {
	clients := make([]types.ClientID, 0, len(m))
	for c := range m {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(clients)))
	for _, c := range clients {
		buf = binary.BigEndian.AppendUint32(buf, uint32(c))
		buf = binary.BigEndian.AppendUint64(buf, m[c])
	}
	return buf
}

type rccSyncReader struct {
	b   []byte
	err error
}

func (r *rccSyncReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("rcc: truncated sync point")
	}
	r.b = nil
}

func (r *rccSyncReader) u16() uint16 {
	if len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *rccSyncReader) u32() uint32 {
	if len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *rccSyncReader) u64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *rccSyncReader) blob() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail()
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// rccSyncState is a fully parsed sync point, decoded and bounds-checked in
// its entirety BEFORE any machine state mutates — a truncated or malformed
// blob must not leave some instances installed and others not (a retry of
// the same frontier would then no-op on the already-advanced execRound and
// the machine would stay torn forever).
type rccSyncState struct {
	execRound  types.Round
	maxDecided types.Round
	insts      []rccSyncInst
	assign     map[types.ClientID]types.InstanceID
	switches   map[types.ClientID]*switchSched
	delivered  map[types.ClientID]uint64
}

type rccSyncInst struct {
	voidBelow types.Round
	lastDec   types.Round
	stops     int
	startedAt types.Round
	inner     []byte
	coord     []byte
}

func parseRCCSyncPoint(data []byte, m int) (*rccSyncState, error) {
	if len(data) < 1 || data[0] != rccSyncPointV1 {
		return nil, fmt.Errorf("rcc: malformed sync point")
	}
	rd := &rccSyncReader{b: data[1:]}
	st := &rccSyncState{
		execRound:  types.Round(rd.u64()),
		maxDecided: types.Round(rd.u64()),
	}
	if got := int(rd.u16()); rd.err == nil && got != m {
		return nil, fmt.Errorf("rcc: sync point has %d instances, this deployment runs %d", got, m)
	}
	for i := 0; i < m && rd.err == nil; i++ {
		st.insts = append(st.insts, rccSyncInst{
			voidBelow: types.Round(rd.u64()),
			lastDec:   types.Round(rd.u64()),
			stops:     int(rd.u32()),
			startedAt: types.Round(rd.u64()),
			inner:     rd.blob(),
			coord:     rd.blob(),
		})
	}
	n := int(rd.u32())
	if rd.err == nil && n > len(rd.b)/6 {
		return nil, fmt.Errorf("rcc: malformed sync point assignment")
	}
	st.assign = make(map[types.ClientID]types.InstanceID, n)
	for i := 0; i < n && rd.err == nil; i++ {
		c := types.ClientID(rd.u32())
		st.assign[c] = types.InstanceID(rd.u16())
	}
	n = int(rd.u32())
	if rd.err == nil && n > len(rd.b)/16 {
		return nil, fmt.Errorf("rcc: malformed sync point switches")
	}
	st.switches = make(map[types.ClientID]*switchSched, n)
	for i := 0; i < n && rd.err == nil; i++ {
		c := types.ClientID(rd.u32())
		st.switches[c] = &switchSched{
			from:        types.InstanceID(rd.u16()),
			to:          types.InstanceID(rd.u16()),
			activeAfter: types.Round(rd.u64()),
		}
	}
	n = int(rd.u32())
	if rd.err == nil && n > len(rd.b)/12 {
		return nil, fmt.Errorf("rcc: malformed sync point dedup map")
	}
	st.delivered = make(map[types.ClientID]uint64, n)
	for i := 0; i < n && rd.err == nil; i++ {
		c := types.ClientID(rd.u32())
		st.delivered[c] = rd.u64()
	}
	if rd.err != nil {
		return nil, rd.err
	}
	if len(rd.b) != 0 {
		return nil, fmt.Errorf("rcc: %d trailing bytes in sync point", len(rd.b))
	}
	return st, nil
}

// validateParsed checks every nested frontier blob against its instance
// (capability and format) without mutating anything.
func (r *Replica) validateParsed(sp *rccSyncState) error {
	for i, st := range r.states {
		inner, ok := st.inst.(sm.StateSyncable)
		if !ok {
			return fmt.Errorf("rcc: instance %d does not support state transfer", st.id)
		}
		if err := inner.ValidateSyncPoint(sp.insts[i].inner); err != nil {
			return fmt.Errorf("rcc: instance %d: %w", st.id, err)
		}
		if err := st.coord.ValidateSyncPoint(sp.insts[i].coord); err != nil {
			return fmt.Errorf("rcc: instance %d coordinator: %w", st.id, err)
		}
	}
	return nil
}

// ValidateSyncPoint implements sm.StateSyncable: full structural check —
// envelope, per-instance capability, and every nested frontier blob — with
// no mutation.
func (r *Replica) ValidateSyncPoint(data []byte) error {
	sp, err := parseRCCSyncPoint(data, len(r.states))
	if err != nil {
		return err
	}
	return r.validateParsed(sp)
}

// InstallSyncPoint implements sm.StateSyncable: adopt an attested frontier.
// The blob — including every nested instance frontier — is parsed and
// validated in full first; only then does anything mutate, so a rejected
// sync point can never leave some instances installed and others not.
// RCC-level fields install before the per-instance installs so deliveries
// those trigger (rounds committed while the transfer ran) order and execute
// against the new frontier, not the stale one.
func (r *Replica) InstallSyncPoint(data []byte) error {
	sp, err := parseRCCSyncPoint(data, len(r.states))
	if err != nil {
		return err
	}
	if err := r.validateParsed(sp); err != nil {
		return err
	}
	// Max-merge the dedup frontier even when the execution frontier brings
	// nothing new, and push it into every instance: it only ever prevents
	// re-proposing already-executed requests.
	for c, s := range sp.delivered {
		if s > r.delivered[c] {
			r.delivered[c] = s
		}
	}
	for _, st := range r.states {
		if merger, ok := st.inst.(seqMerger); ok {
			merger.MergeDeliveredSeqs(sp.delivered)
		}
	}
	if sp.execRound <= r.execRound {
		return nil // already at or past the install point
	}
	r.execRound = sp.execRound
	if sp.maxDecided > r.maxDecided {
		r.maxDecided = sp.maxDecided
	}
	for i, st := range r.states {
		in := &sp.insts[i]
		inner, ok := st.inst.(sm.StateSyncable)
		if !ok {
			return fmt.Errorf("rcc: instance %d does not support state transfer", st.id)
		}
		if in.voidBelow > st.voidBelow {
			st.voidBelow = in.voidBelow
		}
		if in.lastDec > st.lastDec {
			st.lastDec = in.lastDec
		}
		if in.stops > st.stops {
			st.stops = in.stops
		}
		// Delivered-elsewhere rounds below the new execution frontier are
		// settled by the ledger install; drop their queued decisions.
		for rnd := range st.decided {
			if rnd < sp.execRound {
				delete(st.decided, rnd)
				delete(st.decidedAt, rnd)
			}
		}
		r.resetDetection(st, in.startedAt)
		if err := inner.InstallSyncPoint(in.inner); err != nil {
			return fmt.Errorf("rcc: instance %d: %w", st.id, err)
		}
		if err := st.coord.InstallSyncPoint(in.coord); err != nil {
			return fmt.Errorf("rcc: instance %d coordinator: %w", st.id, err)
		}
	}
	r.assign = sp.assign
	r.switches = sp.switches
	r.tryExecute()
	r.maybeNoOpFill()
	return nil
}

// seqMerger is the per-instance capability of pushing externally-established
// delivered sequence numbers into the dedup map (pbft.MergeDeliveredSeqs).
type seqMerger interface {
	MergeDeliveredSeqs(map[types.ClientID]uint64)
}

// boundarySerializer is the per-instance capability of serializing the
// frontier as it stood when delivery crossed a given round
// (pbft.BoundarySyncPointAt).
type boundarySerializer interface {
	BoundarySyncPointAt(types.Round) []byte
}

// BoundarySyncPoint implements sm.BoundarySyncable: the frontier as it
// stands at the current wave boundary, serialized from delivery-derived
// state only. Quorum-timing-dependent fields are normalized — per-instance
// lastDec and the replica's maxDecided collapse to execRound-1, inner
// frontiers serialize through BoundarySyncPointAt(execRound), views and
// stable checkpoints to zero — so every correct replica whose ledger stands
// at the same wave boundary produces identical bytes while consensus keeps
// running. Recovery bookkeeping (voidBelow, stops, startedAt, the coord
// frontier) is stable between recoveries; a boundary captured while a
// recovery is mid-flight may serialize differently across replicas, fail to
// gather f+1 matching shares, and simply go unattested — attestation is
// best-effort per boundary, and the next quiet boundary attests.
func (r *Replica) BoundarySyncPoint() []byte {
	buf := make([]byte, 0, 64+64*len(r.states))
	buf = append(buf, rccSyncPointV1)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.execRound))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.execRound-1)) // maxDecided, normalized
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.states)))
	for _, st := range r.states {
		inner, ok := st.inst.(boundarySerializer)
		if !ok {
			return nil
		}
		isp := inner.BoundarySyncPointAt(r.execRound)
		if isp == nil {
			return nil
		}
		csp := st.coord.BoundarySyncPointAt(st.coord.Delivered())
		if csp == nil {
			return nil
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(st.voidBelow))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.execRound-1)) // lastDec, normalized
		buf = binary.BigEndian.AppendUint32(buf, uint32(st.stops))
		buf = binary.BigEndian.AppendUint64(buf, uint64(st.startedAt))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(isp)))
		buf = append(buf, isp...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(csp)))
		buf = append(buf, csp...)
	}
	clients := make([]types.ClientID, 0, len(r.assign))
	for c := range r.assign {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(clients)))
	for _, c := range clients {
		buf = binary.BigEndian.AppendUint32(buf, uint32(c))
		buf = binary.BigEndian.AppendUint16(buf, uint16(r.assign[c]))
	}
	pending := make([]types.ClientID, 0, len(r.switches))
	for c := range r.switches {
		pending = append(pending, c)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pending)))
	for _, c := range pending {
		s := r.switches[c]
		buf = binary.BigEndian.AppendUint32(buf, uint32(c))
		buf = binary.BigEndian.AppendUint16(buf, uint16(s.from))
		buf = binary.BigEndian.AppendUint16(buf, uint16(s.to))
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.activeAfter))
	}
	return appendDelivered(buf, r.delivered)
}

var _ sm.StateSyncable = (*Replica)(nil)
var _ sm.BoundarySyncable = (*Replica)(nil)
