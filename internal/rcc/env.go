package rcc

import (
	"time"

	"repro/internal/quorum"
	"repro/internal/sm"
	"repro/internal/types"
)

// instEnv is the environment handed to each BCA instance: it passes network
// effects through to the outer environment but intercepts Deliver (RCC
// collects decisions for round ordering) and Suspect (RCC runs the Fig. 4
// recovery instead of a view change).
type instEnv struct {
	outer sm.Env
	mgr   *Replica
	inst  types.InstanceID
}

var _ sm.Env = (*instEnv)(nil)

func (e *instEnv) ID() types.ReplicaID                          { return e.outer.ID() }
func (e *instEnv) Params() quorum.Params                        { return e.outer.Params() }
func (e *instEnv) Send(to types.ReplicaID, m types.Message)     { e.outer.Send(to, m) }
func (e *instEnv) Broadcast(m types.Message)                    { e.outer.Broadcast(m) }
func (e *instEnv) SendClient(c types.ClientID, m types.Message) { e.outer.SendClient(c, m) }
func (e *instEnv) SetTimer(id sm.TimerID, d time.Duration)      { e.outer.SetTimer(id, d) }
func (e *instEnv) CancelTimer(id sm.TimerID)                    { e.outer.CancelTimer(id) }
func (e *instEnv) Now() time.Duration                           { return e.outer.Now() }
func (e *instEnv) Logf(format string, args ...any)              { e.outer.Logf(format, args...) }

func (e *instEnv) Deliver(d sm.Decision) { e.mgr.onDecision(e.inst, d) }

func (e *instEnv) Suspect(inst types.InstanceID, round types.Round) {
	e.mgr.suspectInstance(e.inst, round)
}

// RequestStateSync forwards an instance's in-the-dark report (a certified
// checkpoint it cannot bridge) to the hosting runtime, when that runtime
// can run state transfer (sm.StateSyncRequester).
func (e *instEnv) RequestStateSync() { e.mgr.requestStateSync() }

// coordEnv is the environment of a coordinating consensus instance: its
// decisions (stop operations, reassignments) go to the manager, and its
// internal view changes never escalate.
type coordEnv struct {
	outer sm.Env
	mgr   *Replica
	inst  types.InstanceID // the BCA instance this coordinator recovers
}

var _ sm.Env = (*coordEnv)(nil)

func (e *coordEnv) ID() types.ReplicaID                          { return e.outer.ID() }
func (e *coordEnv) Params() quorum.Params                        { return e.outer.Params() }
func (e *coordEnv) Send(to types.ReplicaID, m types.Message)     { e.outer.Send(to, m) }
func (e *coordEnv) Broadcast(m types.Message)                    { e.outer.Broadcast(m) }
func (e *coordEnv) SendClient(c types.ClientID, m types.Message) { e.outer.SendClient(c, m) }
func (e *coordEnv) SetTimer(id sm.TimerID, d time.Duration)      { e.outer.SetTimer(id, d) }
func (e *coordEnv) CancelTimer(id sm.TimerID)                    { e.outer.CancelTimer(id) }
func (e *coordEnv) Now() time.Duration                           { return e.outer.Now() }
func (e *coordEnv) Logf(format string, args ...any)              { e.outer.Logf(format, args...) }

func (e *coordEnv) Deliver(d sm.Decision) { e.mgr.onCoordDecision(e.inst, d) }

func (e *coordEnv) Suspect(types.InstanceID, types.Round) {
	// The coordinator runs standalone PBFT (view changes enabled), so it
	// never reports suspicions; nothing to do.
}

// RequestStateSync forwards a coordinator's in-the-dark report like the
// instance path does.
func (e *coordEnv) RequestStateSync() { e.mgr.requestStateSync() }
