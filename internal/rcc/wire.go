package rcc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// The coordinating consensus protocol P replicates stop(i; E) operations
// and SwitchInstance reassignments as ordinary transactions. This file
// provides the deterministic encoding of those operations into
// Transaction.Op payloads.

// Coordinator operation codes (first byte of Transaction.Op).
const (
	opStop   byte = 0xA1
	opSwitch byte = 0xA2
)

// encodeStop serializes a stop(i; E) operation.
func encodeStop(target types.InstanceID, evidence []*types.Failure) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, opStop)
	buf = binary.BigEndian.AppendUint16(buf, uint16(target))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(evidence)))
	for _, f := range evidence {
		buf = binary.BigEndian.AppendUint16(buf, uint16(f.Replica))
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.Round))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.State)))
		for i := range f.State {
			ap := &f.State[i]
			buf = binary.BigEndian.AppendUint64(buf, uint64(ap.Round))
			buf = binary.BigEndian.AppendUint64(buf, uint64(ap.View))
			if ap.Prepared {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = append(buf, ap.Digest[:]...)
			if ap.Batch != nil {
				buf = append(buf, 1)
				buf = ap.Batch.Marshal(buf)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// decodeStop parses a stop(i; E) operation.
func decodeStop(op []byte) (types.InstanceID, []*types.Failure, error) {
	if len(op) < 5 || op[0] != opStop {
		return 0, nil, fmt.Errorf("rcc: not a stop operation")
	}
	target := types.InstanceID(binary.BigEndian.Uint16(op[1:]))
	count := int(binary.BigEndian.Uint16(op[3:]))
	op = op[5:]
	evidence := make([]*types.Failure, 0, count)
	for e := 0; e < count; e++ {
		if len(op) < 14 {
			return 0, nil, fmt.Errorf("rcc: truncated stop evidence")
		}
		f := &types.Failure{
			Replica: types.ReplicaID(binary.BigEndian.Uint16(op)),
			Round:   types.Round(binary.BigEndian.Uint64(op[2:])),
		}
		f.Inst = target
		nProps := int(binary.BigEndian.Uint32(op[10:]))
		op = op[14:]
		for i := 0; i < nProps; i++ {
			if len(op) < 50 {
				return 0, nil, fmt.Errorf("rcc: truncated stop proposal")
			}
			var ap types.AcceptedProposal
			ap.Round = types.Round(binary.BigEndian.Uint64(op))
			ap.View = types.View(binary.BigEndian.Uint64(op[8:]))
			ap.Prepared = op[16] == 1
			copy(ap.Digest[:], op[17:49])
			hasBatch := op[49] == 1
			op = op[50:]
			if hasBatch {
				b, rest, err := types.UnmarshalBatch(op)
				if err != nil {
					return 0, nil, fmt.Errorf("rcc: stop batch: %w", err)
				}
				ap.Batch = b
				op = rest
			}
			f.State = append(f.State, ap)
		}
		evidence = append(evidence, f)
	}
	return target, evidence, nil
}

// encodeSwitch serializes a SwitchInstance reassignment.
func encodeSwitch(c types.ClientID, to types.InstanceID) []byte {
	buf := make([]byte, 0, 7)
	buf = append(buf, opSwitch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(c))
	return binary.BigEndian.AppendUint16(buf, uint16(to))
}

// decodeSwitch parses a SwitchInstance reassignment.
func decodeSwitch(op []byte) (types.ClientID, types.InstanceID, error) {
	if len(op) != 7 || op[0] != opSwitch {
		return 0, 0, fmt.Errorf("rcc: not a switch operation")
	}
	return types.ClientID(binary.BigEndian.Uint32(op[1:])), types.InstanceID(binary.BigEndian.Uint16(op[5:])), nil
}

// isCoordOp reports whether a transaction payload is a coordinator op.
func isCoordOp(op []byte) bool {
	return len(op) > 0 && (op[0] == opStop || op[0] == opSwitch)
}
