package rcc

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

// cluster builds an n-replica simnet running RCC.
func cluster(t *testing.T, n int, cfg Config, netcfg simnet.Config) (*simnet.Network, []*Replica) {
	t.Helper()
	netcfg.N = n
	if netcfg.Latency == 0 {
		netcfg.Latency = time.Millisecond
	}
	net, err := simnet.New(netcfg)
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		reps[i] = New(cfg)
		net.SetMachine(types.ReplicaID(i), reps[i])
	}
	net.Start()
	return net, reps
}

// inject broadcasts a client request to all replicas at the current time.
func inject(net *simnet.Network, n int, tx types.Transaction) {
	req := types.NewClientRequest(0, tx)
	for i := 0; i < n; i++ {
		node := net.Node(types.ReplicaID(i))
		net.Schedule(net.Now(), func() {
			if node.Machine() != nil {
				node.Machine().OnMessage(sm.FromClient(tx.Client), req)
			}
		})
	}
}

// injectAt broadcasts a client request at virtual time at.
func injectAt(net *simnet.Network, n int, at time.Duration, tx types.Transaction) {
	req := types.NewClientRequest(0, tx)
	for i := 0; i < n; i++ {
		node := net.Node(types.ReplicaID(i))
		net.Schedule(at, func() {
			if node.Machine() != nil {
				node.Machine().OnMessage(sm.FromClient(tx.Client), req)
			}
		})
	}
}

func mkTx(c types.ClientID, seq uint64) types.Transaction {
	return types.Transaction{Client: c, Seq: seq, Op: []byte(fmt.Sprintf("op-%d-%d", c, seq))}
}

// realTxns flattens the non-noop transactions of delivered decisions.
func realTxns(ds []sm.Decision) []types.Transaction {
	var out []types.Transaction
	for _, d := range ds {
		if d.Batch == nil {
			continue
		}
		for _, tx := range d.Batch.Txns {
			if !tx.IsNoOp() {
				out = append(out, tx)
			}
		}
	}
	return out
}

// sameOrder asserts all replicas in ids delivered identical sequences.
func sameOrder(t *testing.T, net *simnet.Network, ids []types.ReplicaID) {
	t.Helper()
	ref := net.Node(ids[0]).Decisions()
	for _, id := range ids[1:] {
		ds := net.Node(id).Decisions()
		limit := len(ref)
		if len(ds) < limit {
			limit = len(ds)
		}
		for j := 0; j < limit; j++ {
			if ds[j].Digest != ref[j].Digest || ds[j].Instance != ref[j].Instance || ds[j].Round != ref[j].Round {
				t.Fatalf("replica %d delivery %d = (inst %d, round %d, %v); replica %d has (inst %d, round %d, %v)",
					id, j, ds[j].Instance, ds[j].Round, ds[j].Digest,
					ids[0], ref[j].Instance, ref[j].Round, ref[j].Digest)
			}
		}
	}
}

func allIDs(n int) []types.ReplicaID {
	out := make([]types.ReplicaID, n)
	for i := range out {
		out[i] = types.ReplicaID(i)
	}
	return out
}

func TestHappyPathConcurrentInstances(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{BatchSize: 1, Window: 4}, simnet.Config{})
	// One client per instance: clients 0..3 map to instances 0..3.
	for c := types.ClientID(0); c < 4; c++ {
		inject(net, n, mkTx(c+1, 1)) // client IDs 1..4 -> instances 1,2,3,0
	}
	net.Run(3 * time.Second)

	for i := 0; i < n; i++ {
		if got := reps[i].RoundsExecuted(); got < 1 {
			t.Fatalf("replica %d executed %d rounds, want >= 1", i, got)
		}
		txns := realTxns(net.Node(types.ReplicaID(i)).Decisions())
		if len(txns) != 4 {
			t.Fatalf("replica %d delivered %d real txns, want 4", i, len(txns))
		}
	}
	sameOrder(t, net, allIDs(n))
}

func TestRoundCompletionRequiresAllInstances(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{BatchSize: 1, DisableNoOpFill: true, ProgressTimeout: time.Hour}, simnet.Config{})
	// Only client 1 (instance 1) submits: without no-op fill the round
	// can never complete.
	inject(net, n, mkTx(1, 1))
	net.Run(2 * time.Second)
	for i := 0; i < n; i++ {
		if got := reps[i].RoundsExecuted(); got != 0 {
			t.Fatalf("replica %d executed %d rounds without all instances deciding", i, got)
		}
	}
}

func TestNoOpFillCompletesRounds(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{BatchSize: 1}, simnet.Config{})
	// Only one client submits; the other instances must fill with no-ops
	// (§III-E) so the round executes.
	inject(net, n, mkTx(1, 1))
	net.Run(3 * time.Second)
	for i := 0; i < n; i++ {
		if got := reps[i].RoundsExecuted(); got < 1 {
			t.Fatalf("replica %d executed %d rounds, want >= 1 (no-op fill)", i, got)
		}
		txns := realTxns(net.Node(types.ReplicaID(i)).Decisions())
		if len(txns) != 1 {
			t.Fatalf("replica %d delivered %d real txns, want 1", i, len(txns))
		}
	}
	if reps[0].NoOpsProposed()+reps[2].NoOpsProposed()+reps[3].NoOpsProposed() == 0 {
		t.Fatalf("no replica proposed no-op fillers")
	}
	sameOrder(t, net, allIDs(n))
}

func TestSustainedThroughputAllInstances(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{BatchSize: 1, Window: 8}, simnet.Config{Jitter: 2 * time.Millisecond, Seed: 3})
	// Four clients, ten requests each, spread over time.
	for s := uint64(1); s <= 10; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, time.Duration(s)*20*time.Millisecond, mkTx(c, s))
		}
	}
	net.Run(10 * time.Second)
	for i := 0; i < n; i++ {
		txns := realTxns(net.Node(types.ReplicaID(i)).Decisions())
		if len(txns) != 40 {
			t.Fatalf("replica %d delivered %d real txns, want 40", i, len(txns))
		}
		if reps[i].RoundsExecuted() < 10 {
			t.Fatalf("replica %d executed only %d rounds", i, reps[i].RoundsExecuted())
		}
	}
	sameOrder(t, net, allIDs(n))
}

func TestRecoveryAfterPrimaryCrash(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{
		BatchSize:       1,
		Window:          4,
		ProgressTimeout: 100 * time.Millisecond,
		RecoveryTimeout: 300 * time.Millisecond,
	}, simnet.Config{})

	// Warm up: all instances decide a few rounds.
	for s := uint64(1); s <= 3; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, time.Duration(s)*10*time.Millisecond, mkTx(c, s))
		}
	}
	net.Run(2 * time.Second)

	// Crash replica 1 (primary of instance 1). Its clients' new requests
	// go unserved -> backups detect failure -> FAILURE -> stop(1;E).
	net.Crash(1)
	for s := uint64(4); s <= 6; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, net.Now()+time.Duration(s)*10*time.Millisecond, mkTx(c, s))
		}
	}
	net.Run(net.Now() + 10*time.Second)

	live := []types.ReplicaID{0, 2, 3}
	for _, id := range live {
		rep := reps[id]
		st := rep.states[1]
		if st.stops == 0 {
			t.Fatalf("replica %d never accepted a stop for instance 1", id)
		}
		if rep.RoundsExecuted() < 4 {
			t.Fatalf("replica %d executed only %d rounds after recovery", id, rep.RoundsExecuted())
		}
		// Other instances must have kept committing (wait-free D4/D5):
		// clients 2,3,4 -> instances 2,3,0 got requests 4..6.
		txns := realTxns(net.Node(id).Decisions())
		for c := types.ClientID(2); c <= 4; c++ {
			count := 0
			for _, tx := range txns {
				if tx.Client == c {
					count++
				}
			}
			if count < 6 {
				t.Fatalf("replica %d delivered %d txns of client %d, want 6 (wait-free progress)", id, count, c)
			}
		}
	}
	sameOrder(t, net, live)
}

func TestRecoveryPreservesAcceptedProposals(t *testing.T) {
	n := 4
	// Drop instance-1 proposals to replica 0 only near the failure:
	// replicas 2,3 accept round proposals that 0 misses; after recovery
	// from stop evidence all live replicas must agree on them.
	var blocking bool
	netcfg := simnet.Config{
		Drop: func(from, to types.ReplicaID, m types.Message) bool {
			return blocking && from == 1 && to == 0 && m.Instance() == 1 &&
				(m.Type() == types.MsgPrePrepare)
		},
	}
	net, reps := cluster(t, n, Config{
		BatchSize:       1,
		ProgressTimeout: 100 * time.Millisecond,
		RecoveryTimeout: 300 * time.Millisecond,
	}, netcfg)
	// One full round for everyone.
	for c := types.ClientID(1); c <= 4; c++ {
		inject(net, n, mkTx(c, 1))
	}
	net.Run(time.Second)
	// Now partially deliver one more instance-1 proposal, then crash P1.
	blocking = true
	inject(net, n, mkTx(1, 2)) // client 1 -> instance 1
	net.Schedule(net.Now()+150*time.Millisecond, func() { net.Crash(1) })
	net.Run(net.Now() + 8*time.Second)

	live := []types.ReplicaID{0, 2, 3}
	// Replicas 2,3 accepted ⟨c1,2⟩ before the crash. Replica 0 was kept in
	// the dark (only one affected replica, so no confirmed failure forms —
	// §III-D); it must learn the proposal through the dynamic checkpoint
	// the finished replicas answer its FAILURE claim with, and all live
	// replicas must deliver it exactly once.
	counts := make(map[types.ReplicaID]int)
	for _, id := range live {
		for _, tx := range realTxns(net.Node(id).Decisions()) {
			if tx.Client == 1 && tx.Seq == 2 {
				counts[id]++
			}
		}
	}
	for _, id := range live {
		if counts[id] != 1 {
			t.Fatalf("delivery of recovered proposal: %v, want exactly once everywhere", counts)
		}
	}
	// No stop may have been accepted: one in-the-dark replica is below the
	// f+1 detection threshold, and the checkpoint resolves its suspicion.
	for _, id := range live {
		if got := reps[id].states[1].stops; got != 0 {
			t.Fatalf("replica %d accepted %d stops; in-the-dark recovery must not stop the instance", id, got)
		}
	}
	sameOrder(t, net, live)
}

func TestExponentialRestartPenalty(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{
		BatchSize:       1,
		ProgressTimeout: 80 * time.Millisecond,
		RecoveryTimeout: 250 * time.Millisecond,
	}, simnet.Config{})
	// Byzantine-ish: primary of instance 1 stays silent forever (crash),
	// but the network keeps trying to use it: two detection cycles.
	net.Crash(1)
	inject(net, n, mkTx(1, 1))
	net.Run(5 * time.Second)

	st := reps[0].states[1]
	if st.stops < 1 {
		t.Fatalf("no stop accepted for the silent instance")
	}
	first := st.startedAt
	if first < 2 {
		t.Fatalf("restart round %d, want >= 2 (penalty 2^1)", first)
	}
	// Trigger a second failure cycle: the instance resumed (primary
	// still dead), clients demand service again.
	inject(net, n, mkTx(1, 2))
	net.Run(net.Now() + 10*time.Second)
	if st.stops >= 2 {
		// The penalty doubles: resume_k = last + 2^k, so with the same
		// last-accepted round the second restart lands strictly later.
		second := st.startedAt
		if second <= first {
			t.Fatalf("second restart round %d not after first %d (penalty did not grow)", second, first)
		}
		if second-first < 2 {
			t.Fatalf("penalty growth %d rounds, want >= 2 (2^2-2^1)", second-first)
		}
	}
}

func TestInTheDarkAttackRecoversViaDynamicCheckpoint(t *testing.T) {
	n := 4
	// Malicious primary of instance 1 keeps replica 3 in the dark: it
	// sends instance-1 proposals to replicas 0,1,2 only. nf-f = 2
	// failure claims cannot confirm (nf=3), so recovery cannot stop the
	// instance; replica 3 must catch up via the dynamic checkpoint.
	netcfg := simnet.Config{
		Drop: func(from, to types.ReplicaID, m types.Message) bool {
			return from == 1 && to == 3 && m.Instance() == 1 && m.Type() == types.MsgPrePrepare
		},
	}
	net, reps := cluster(t, n, Config{
		BatchSize:       1,
		Window:          4,
		ProgressTimeout: 100 * time.Millisecond,
		RecoveryTimeout: 300 * time.Millisecond,
	}, netcfg)
	for s := uint64(1); s <= 3; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, time.Duration(s)*10*time.Millisecond, mkTx(c, s))
		}
	}
	net.Run(10 * time.Second)

	// Replica 3 must have executed rounds despite being kept in the dark.
	if got := reps[3].RoundsExecuted(); got < 1 {
		t.Fatalf("in-the-dark replica executed %d rounds, want >= 1", got)
	}
	found := 0
	for _, tx := range realTxns(net.Node(3).Decisions()) {
		if tx.Client == 1 {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("in-the-dark replica never learned instance-1 transactions")
	}
}

func TestThrottlingDetectionSigma(t *testing.T) {
	n := 4
	// The primary of instance 1 throttles: its proposals are delayed far
	// beyond the others by dropping and never re-proposing. Simplest
	// model: it just never proposes (crash), but with a huge progress
	// timeout only σ-lag detection can catch it.
	net, reps := cluster(t, n, Config{
		BatchSize:       1,
		Window:          8,
		Sigma:           4,
		ProgressTimeout: time.Hour, // disable timeout-based detection
		RecoveryTimeout: 300 * time.Millisecond,
	}, simnet.Config{})
	net.Crash(1)
	// Drive the other instances well past σ rounds.
	for s := uint64(1); s <= 10; s++ {
		for _, c := range []types.ClientID{2, 3, 4} {
			injectAt(net, n, time.Duration(s)*20*time.Millisecond, mkTx(c, s))
		}
	}
	net.Run(15 * time.Second)
	st := reps[0].states[1]
	if st.stops == 0 && !st.suspected {
		t.Fatalf("lagging instance was never suspected despite σ=4")
	}
}

func TestSwitchInstanceReassignsClient(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{
		BatchSize: 1,
		Sigma:     2,
	}, simnet.Config{})
	// Client 1 is served by instance 1. Ask to switch to instance 2.
	sw := &types.SwitchInstance{Client: 1, To: 2}
	sw.Inst = 1
	for i := 0; i < n; i++ {
		node := net.Node(types.ReplicaID(i))
		net.Schedule(0, func() { node.Machine().OnMessage(sm.FromClient(1), sw) })
	}
	// Drive rounds forward so the switch schedule matures.
	for s := uint64(1); s <= 8; s++ {
		for _, c := range []types.ClientID{2, 3, 4} {
			injectAt(net, n, time.Duration(s)*20*time.Millisecond, mkTx(c, s))
		}
	}
	net.Run(5 * time.Second)
	// Now the client's transactions must be served by instance 2.
	inject(net, n, mkTx(1, 1))
	net.Run(net.Now() + 3*time.Second)

	for i := 0; i < n; i++ {
		if got := reps[i].Assignment(1); got != 2 {
			t.Fatalf("replica %d assignment(client 1) = instance %d, want 2", i, got)
		}
	}
	// The transaction must have been delivered by instance 2.
	for _, d := range net.Node(0).Decisions() {
		if d.Batch == nil {
			continue
		}
		for _, tx := range d.Batch.Txns {
			if tx.Client == 1 && tx.Seq == 1 && d.Instance != 2 {
				t.Fatalf("client-1 txn delivered by instance %d, want 2", d.Instance)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		n := 4
		net, reps := cluster(t, n, Config{BatchSize: 1, Window: 4},
			simnet.Config{Jitter: 2 * time.Millisecond, Seed: 99})
		for s := uint64(1); s <= 5; s++ {
			for c := types.ClientID(1); c <= 4; c++ {
				injectAt(net, n, time.Duration(s)*15*time.Millisecond, mkTx(c, s))
			}
		}
		net.Run(5 * time.Second)
		return net.MessagesSent(), net.BytesSent(), reps[0].RoundsExecuted()
	}
	m1, b1, r1 := run()
	m2, b2, r2 := run()
	if m1 != m2 || b1 != b2 || r1 != r2 {
		t.Fatalf("replay diverged: (%d,%d,%d) vs (%d,%d,%d)", m1, b1, r1, m2, b2, r2)
	}
}

func TestUnpredictableOrderingConsistentAcrossReplicas(t *testing.T) {
	n := 4
	net, _ := cluster(t, n, Config{BatchSize: 1, UnpredictableOrdering: true}, simnet.Config{})
	for s := uint64(1); s <= 5; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, time.Duration(s)*15*time.Millisecond, mkTx(c, s))
		}
	}
	net.Run(5 * time.Second)
	sameOrder(t, net, allIDs(n))
	// With permutation ordering on, at least one round should deviate
	// from the identity instance order 0,1,2,3 (overwhelmingly likely
	// over 5 rounds: P[identity]=1/24 per round).
	ds := net.Node(0).Decisions()
	deviated := false
	for i := 0; i+4 <= len(ds); i += 4 {
		if ds[i].Instance != 0 || ds[i+1].Instance != 1 || ds[i+2].Instance != 2 || ds[i+3].Instance != 3 {
			deviated = true
		}
	}
	if !deviated {
		t.Fatalf("permutation ordering never deviated from identity over %d rounds", len(ds)/4)
	}
}

func TestStopWireRoundTrip(t *testing.T) {
	b := &types.Batch{Txns: []types.Transaction{mkTx(3, 9)}}
	f1 := &types.Failure{Replica: 2, Round: 17, State: []types.AcceptedProposal{
		{Round: 15, View: 0, Digest: b.Digest(), Batch: b, Prepared: true},
		{Round: 16, View: 1, Digest: types.Hash([]byte("x")), Batch: nil},
	}}
	f1.Inst = 5
	f2 := &types.Failure{Replica: 0, Round: 17}
	f2.Inst = 5
	enc := encodeStop(5, []*types.Failure{f1, f2})
	target, ev, err := decodeStop(enc)
	if err != nil {
		t.Fatalf("decodeStop: %v", err)
	}
	if target != 5 || len(ev) != 2 {
		t.Fatalf("target=%d evidence=%d, want 5,2", target, len(ev))
	}
	if ev[0].Replica != 2 || ev[0].Round != 17 || len(ev[0].State) != 2 {
		t.Fatalf("evidence[0] mismatch: %+v", ev[0])
	}
	if ev[0].State[0].Batch == nil || ev[0].State[0].Batch.Digest() != b.Digest() {
		t.Fatalf("batch did not round-trip")
	}
	if !ev[0].State[0].Prepared || ev[0].State[1].Prepared {
		t.Fatalf("prepared flags did not round-trip")
	}
}

func TestSwitchWireRoundTrip(t *testing.T) {
	enc := encodeSwitch(12345, 7)
	c, to, err := decodeSwitch(enc)
	if err != nil || c != 12345 || to != 7 {
		t.Fatalf("switch round-trip: c=%d to=%d err=%v", c, to, err)
	}
	if _, _, err := decodeSwitch([]byte{opStop, 0}); err == nil {
		t.Fatalf("decodeSwitch accepted a stop payload")
	}
}

func TestFewerInstancesThanReplicas(t *testing.T) {
	// RCC_3 configuration from the paper: m=3 instances on n=7 replicas.
	n := 7
	net, reps := cluster(t, n, Config{M: 3, BatchSize: 1}, simnet.Config{})
	for c := types.ClientID(1); c <= 3; c++ {
		inject(net, n, mkTx(c, 1))
	}
	net.Run(3 * time.Second)
	if reps[0].M() != 3 {
		t.Fatalf("M() = %d, want 3", reps[0].M())
	}
	for i := 0; i < n; i++ {
		if reps[i].RoundsExecuted() < 1 {
			t.Fatalf("replica %d executed no rounds with m=3", i)
		}
	}
	// Replicas 3..6 lead no instance.
	if _, ok := reps[4].OwnInstance(); ok {
		t.Fatalf("replica 4 claims an instance with m=3")
	}
	sameOrder(t, net, allIDs(n))
}
