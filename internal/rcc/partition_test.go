package rcc

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

// TestFullPartitionHeals drops ALL replica-to-replica traffic for a while —
// every instance experiences a round failure (§III-C: "instances can also
// fail due to periods of unreliable communication") — then heals the
// network. The exponential FAILURE rebroadcast must re-establish confirmed
// failures, stop operations must void the lost rounds, and every instance
// must resume serving its clients.
func TestFullPartitionHeals(t *testing.T) {
	n := 4
	partitioned := false
	netcfg := simnet.Config{
		Latency: time.Millisecond,
		Drop: func(from, to types.ReplicaID, m types.Message) bool {
			return partitioned
		},
	}
	net, reps := cluster(t, n, Config{
		BatchSize:       1,
		Window:          4,
		ProgressTimeout: 100 * time.Millisecond,
		RecoveryTimeout: 300 * time.Millisecond,
	}, netcfg)

	// Healthy warm-up round.
	for c := types.ClientID(1); c <= 4; c++ {
		inject(net, n, mkTx(c, 1))
	}
	net.Run(2 * time.Second)
	for i := 0; i < n; i++ {
		if reps[i].RoundsExecuted() == 0 {
			t.Fatalf("replica %d made no progress before the partition", i)
		}
	}

	// Partition everything; demand keeps arriving (clients are unaffected
	// by the replica-to-replica drop rule). Clients retransmit unserved
	// requests (§III-E forced execution) — modeled by periodic
	// re-injection; the replicas deduplicate.
	partitioned = true
	retransmit := func(tx types.Transaction, from, until time.Duration) {
		for at := from; at < until; at += 500 * time.Millisecond {
			injectAt(net, n, at, tx)
		}
	}
	for c := types.ClientID(1); c <= 4; c++ {
		retransmit(mkTx(c, 2), net.Now()+50*time.Millisecond, net.Now()+24*time.Second)
	}
	net.Run(net.Now() + 4*time.Second)

	// Heal and give the exponential rebroadcasts time to fire.
	partitioned = false
	for c := types.ClientID(1); c <= 4; c++ {
		retransmit(mkTx(c, 3), net.Now()+100*time.Millisecond, net.Now()+20*time.Second)
	}
	net.Run(net.Now() + 25*time.Second)

	for i := 0; i < n; i++ {
		txns := realTxns(net.Node(types.ReplicaID(i)).Decisions())
		// All 12 transactions (3 per client) must eventually execute:
		// seq 2 either committed before the partition bit or was
		// re-proposed after healing.
		perClient := map[types.ClientID]int{}
		for _, tx := range txns {
			perClient[tx.Client]++
		}
		for c := types.ClientID(1); c <= 4; c++ {
			if perClient[c] < 3 {
				t.Fatalf("replica %d: client %d has %d txns after healing, want 3", i, c, perClient[c])
			}
		}
	}
	sameOrder(t, net, allIDs(n))
}

// TestSwitchInstanceDuringFailure exercises §III-E end to end on the
// simulator: the client of a crashed primary requests reassignment and its
// transactions flow through the new instance.
func TestSwitchInstanceDuringFailure(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{
		BatchSize:       1,
		Window:          4,
		Sigma:           2,
		ProgressTimeout: 100 * time.Millisecond,
		RecoveryTimeout: 300 * time.Millisecond,
	}, simnet.Config{})

	// Warm up all instances, then crash instance 1's primary.
	for c := types.ClientID(1); c <= 4; c++ {
		inject(net, n, mkTx(c, 1))
	}
	net.Run(2 * time.Second)
	net.Crash(1)

	// Client 1 (served by instance 1) asks to move to instance 3,
	// rebroadcasting until the reassignment is agreed (the coordinator of
	// the old instance may be mid-recovery when the first copy arrives).
	sw := &types.SwitchInstance{Client: 1, To: 3}
	sw.Inst = 1
	for k := 0; k < 16; k++ {
		net.Schedule(net.Now()+200*time.Millisecond+time.Duration(k)*500*time.Millisecond, func() {
			for i := 0; i < n; i++ {
				node := net.Node(types.ReplicaID(i))
				node.Machine().OnMessage(sm.FromClient(1), sw)
			}
		})
	}
	// Keep the other instances moving so the reassignment schedule
	// matures (activation is keyed to round progress, §III-E).
	for s := uint64(2); s <= 16; s++ {
		for _, c := range []types.ClientID{2, 3, 4} {
			injectAt(net, n, net.Now()+time.Duration(s)*50*time.Millisecond, mkTx(c, s))
		}
	}
	net.Run(net.Now() + 10*time.Second)

	// Now client 1's next transaction must be served by instance 3.
	inject(net, n, mkTx(1, 2))
	net.Run(net.Now() + 5*time.Second)

	for _, i := range []int{0, 2, 3} {
		if got := reps[i].Assignment(1); got != 3 {
			t.Fatalf("replica %d assignment(client 1) = %d, want 3", i, got)
		}
	}
	found := false
	for _, d := range net.Node(0).Decisions() {
		if d.Batch == nil || d.Instance != 3 {
			continue
		}
		for _, tx := range d.Batch.Txns {
			if tx.Client == 1 && tx.Seq == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("client 1's post-switch transaction never flowed through instance 3")
	}
}
