package rcc

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

// TestPermutationBijection property-tests Lemma IV.2: f_S is a bijection
// from {0, ..., k!−1} to the permutations of S. For small k we verify
// exhaustively that every index yields a distinct valid permutation.
func TestPermutationBijection(t *testing.T) {
	fact := func(n int) int {
		f := 1
		for i := 2; i <= n; i++ {
			f *= i
		}
		return f
	}
	for k := 1; k <= 6; k++ {
		seen := make(map[string]bool)
		for h := 0; h < fact(k); h++ {
			perm := PermutationIndices(k, big.NewInt(int64(h)))
			if len(perm) != k {
				t.Fatalf("k=%d h=%d: length %d", k, h, len(perm))
			}
			// Valid permutation: every position exactly once.
			used := make([]bool, k)
			key := make([]byte, k)
			for _, p := range perm {
				if p < 0 || p >= k || used[p] {
					t.Fatalf("k=%d h=%d: invalid permutation %v", k, h, perm)
				}
				used[p] = true
			}
			for i, p := range perm {
				key[i] = byte(p)
			}
			if seen[string(key)] {
				t.Fatalf("k=%d h=%d: duplicate permutation %v (not injective)", k, h, perm)
			}
			seen[string(key)] = true
		}
		if len(seen) != fact(k) {
			t.Fatalf("k=%d: %d distinct permutations, want %d (not surjective)", k, len(seen), fact(k))
		}
	}
}

// TestPermutationLargeK checks the big.Int path at the paper's maximum
// deployment size (91 instances, where 91! overflows every native integer).
func TestPermutationLargeK(t *testing.T) {
	k := 91
	h := new(big.Int).Lsh(big.NewInt(1), 400) // huge but < 91!
	perm := PermutationIndices(k, h)
	used := make([]bool, k)
	for _, p := range perm {
		if p < 0 || p >= k || used[p] {
			t.Fatalf("invalid permutation entry %d", p)
		}
		used[p] = true
	}
}

func TestPermutationPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for h >= k!")
		}
	}()
	PermutationIndices(3, big.NewInt(6)) // 3! = 6 is out of range
}

// TestOrderSeedDeterministicAndSensitive checks the h = digest(S) mod
// (k!−1) selection: identical digest sequences give identical seeds, and
// changing any single proposal changes the seed (with overwhelming
// probability).
func TestOrderSeedDeterministicAndSensitive(t *testing.T) {
	mk := func(seed byte, n int) []types.Digest {
		out := make([]types.Digest, n)
		for i := range out {
			out[i] = types.Hash([]byte{seed, byte(i)})
		}
		return out
	}
	a, b := mk(1, 8), mk(1, 8)
	if OrderSeed(a).Cmp(OrderSeed(b)) != 0 {
		t.Fatal("identical sequences produced different seeds")
	}
	c := mk(1, 8)
	c[3] = types.Hash([]byte("tampered"))
	if OrderSeed(a).Cmp(OrderSeed(c)) == 0 {
		t.Fatal("tampering one proposal left the seed unchanged")
	}
}

func TestOrderSeedInRange(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw%10) + 2
		digests := make([]types.Digest, k)
		for i := range digests {
			digests[i] = types.Hash(append(raw, byte(i)))
		}
		h := OrderSeed(digests)
		fact := big.NewInt(1)
		for i := 2; i <= k; i++ {
			fact.Mul(fact, big.NewInt(int64(i)))
		}
		limit := new(big.Int).Sub(fact, big.NewInt(1)) // k! − 1 (the paper's modulus)
		return h.Sign() >= 0 && h.Cmp(limit) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExecutionOrderIdentityWhenDisabled(t *testing.T) {
	digests := []types.Digest{types.Hash([]byte("a")), types.Hash([]byte("b")), types.Hash([]byte("c"))}
	ord := ExecutionOrder(digests, false)
	for i, p := range ord {
		if p != i {
			t.Fatalf("identity order broken: %v", ord)
		}
	}
}

func TestExecutionOrderUnpredictableVaries(t *testing.T) {
	// Across many rounds the permutation must deviate from identity
	// (P[identity] = 1/k! per round).
	deviated := false
	for r := 0; r < 20 && !deviated; r++ {
		digests := make([]types.Digest, 5)
		for i := range digests {
			digests[i] = types.Hash([]byte{byte(r), byte(i)})
		}
		ord := ExecutionOrder(digests, true)
		for i, p := range ord {
			if p != i {
				deviated = true
			}
		}
	}
	if !deviated {
		t.Fatal("permutation ordering never deviated from identity across 20 rounds")
	}
}

func TestExecutionOrderSingleAndEmpty(t *testing.T) {
	if got := ExecutionOrder(nil, true); len(got) != 0 {
		t.Fatal("empty input")
	}
	if got := ExecutionOrder([]types.Digest{types.Hash([]byte("x"))}, true); len(got) != 1 || got[0] != 0 {
		t.Fatal("single input")
	}
}
