package mirbft

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

func cluster(t *testing.T, n int, cfg Config, netcfg simnet.Config) (*simnet.Network, []*Replica) {
	t.Helper()
	netcfg.N = n
	if netcfg.Latency == 0 {
		netcfg.Latency = time.Millisecond
	}
	net, err := simnet.New(netcfg)
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		reps[i] = New(cfg)
		net.SetMachine(types.ReplicaID(i), reps[i])
	}
	net.Start()
	return net, reps
}

func injectAt(net *simnet.Network, n int, at time.Duration, tx types.Transaction) {
	req := types.NewClientRequest(0, tx)
	for i := 0; i < n; i++ {
		node := net.Node(types.ReplicaID(i))
		net.Schedule(at, func() { node.Machine().OnMessage(sm.FromClient(tx.Client), req) })
	}
}

func realTxns(ds []sm.Decision) int {
	n := 0
	for _, d := range ds {
		if d.Batch == nil {
			continue
		}
		for _, tx := range d.Batch.Txns {
			if !tx.IsNoOp() {
				n++
			}
		}
	}
	return n
}

func TestHappyPathMultiLeader(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{BatchSize: 1, Window: 4}, simnet.Config{})
	for c := types.ClientID(1); c <= 4; c++ {
		injectAt(net, n, 0, types.Transaction{Client: c, Seq: 1, Op: []byte(fmt.Sprintf("op%d", c))})
	}
	net.Run(3 * time.Second)
	for i := 0; i < n; i++ {
		if got := realTxns(net.Node(types.ReplicaID(i)).Decisions()); got != 4 {
			t.Fatalf("replica %d delivered %d real txns, want 4", i, got)
		}
		if reps[i].EpochChanges() != 0 {
			t.Fatalf("replica %d performed epoch changes without failures", i)
		}
	}
}

func TestEpochChangeHaltsEverything(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{
		BatchSize:         1,
		Window:            4,
		ProgressTimeout:   100 * time.Millisecond,
		StabilityInterval: time.Hour, // no re-enable during this test
	}, simnet.Config{})

	// Warm up.
	for c := types.ClientID(1); c <= 4; c++ {
		injectAt(net, n, 0, types.Transaction{Client: c, Seq: 1, Op: []byte("x")})
	}
	net.Run(2 * time.Second)

	net.Crash(1)
	for s := uint64(2); s <= 3; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, net.Now()+time.Duration(s)*20*time.Millisecond,
				types.Transaction{Client: c, Seq: s, Op: []byte{byte(s)}})
		}
	}
	net.Run(net.Now() + 8*time.Second)

	for _, i := range []int{0, 2, 3} {
		rep := reps[i]
		if rep.EpochChanges() == 0 {
			t.Fatalf("replica %d never performed an epoch change", i)
		}
		if rep.Epoch() == 0 {
			t.Fatalf("replica %d stuck in epoch 0", i)
		}
		// The new epoch must exclude the crashed leader.
		enabled := rep.EnabledInstances()
		if len(enabled) >= rep.M() {
			t.Fatalf("replica %d still runs all %d instances after the failure", i, len(enabled))
		}
		for _, id := range enabled {
			if id == 1 {
				t.Fatalf("replica %d kept the failed leader enabled", i)
			}
		}
	}
}

func TestProgressContinuesInNewEpoch(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{
		BatchSize:         1,
		Window:            4,
		ProgressTimeout:   100 * time.Millisecond,
		StabilityInterval: time.Hour,
	}, simnet.Config{})
	net.Crash(1)
	// Demand from clients mapped to various buckets.
	for s := uint64(1); s <= 5; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, time.Duration(s)*30*time.Millisecond,
				types.Transaction{Client: c, Seq: s, Op: []byte{byte(s)}})
		}
	}
	net.Run(12 * time.Second)
	for _, i := range []int{0, 2, 3} {
		if reps[i].Epoch() == 0 {
			t.Fatalf("replica %d never changed epochs", i)
		}
		if got := realTxns(net.Node(types.ReplicaID(i)).Decisions()); got == 0 {
			t.Fatalf("replica %d made no progress in the new epoch", i)
		}
	}
}

func TestGradualReEnable(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{
		BatchSize:         1,
		Window:            4,
		ProgressTimeout:   100 * time.Millisecond,
		StabilityInterval: 500 * time.Millisecond,
	}, simnet.Config{})
	net.Crash(1)
	injectAt(net, n, 0, types.Transaction{Client: 1, Seq: 1, Op: []byte("x")})
	net.Run(3 * time.Second)

	// After the stability interval the super-primary re-enables the
	// excluded leader (its replica is still crashed, but Mir-BFT re-tries
	// leaders optimistically; a new failure would trigger another epoch).
	deadline := net.Now() + 10*time.Second
	injectAt(net, n, net.Now()+time.Second, types.Transaction{Client: 2, Seq: 1, Op: []byte("y")})
	net.Run(deadline)

	for _, i := range []int{0, 2, 3} {
		if got := len(reps[i].EnabledInstances()); got != reps[i].M() {
			// Re-enabling a still-crashed leader triggers another epoch
			// change that disables it again — both full and reduced sets
			// are legal end states, but the epoch counter must show the
			// re-enable happened.
			if reps[i].Epoch() < 2 {
				t.Fatalf("replica %d: epoch %d, want >= 2 (re-enable attempted)", i, reps[i].Epoch())
			}
		}
	}
}

func TestDeliveryConsistentAcrossReplicas(t *testing.T) {
	n := 4
	net, _ := cluster(t, n, Config{BatchSize: 1, Window: 4}, simnet.Config{Jitter: 2 * time.Millisecond, Seed: 5})
	for s := uint64(1); s <= 5; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, time.Duration(s)*15*time.Millisecond,
				types.Transaction{Client: c, Seq: s, Op: []byte{byte(s)}})
		}
	}
	net.Run(5 * time.Second)
	ref := net.Node(0).Decisions()
	if len(ref) == 0 {
		t.Fatal("no decisions")
	}
	for i := 1; i < n; i++ {
		ds := net.Node(types.ReplicaID(i)).Decisions()
		limit := len(ref)
		if len(ds) < limit {
			limit = len(ds)
		}
		for j := 0; j < limit; j++ {
			if ds[j].Digest != ref[j].Digest || ds[j].Instance != ref[j].Instance {
				t.Fatalf("replica %d delivery %d diverges", i, j)
			}
		}
	}
}

// TestStartRoundSynchronizesResumption checks the NEW-EPOCH StartRound
// contract: after an epoch change, every replica resumes its instances at
// the same round (a locally-derived resume round would make replicas reject
// each other's proposals — the bug class the field exists to prevent).
func TestStartRoundSynchronizesResumption(t *testing.T) {
	n := 4
	net, reps := cluster(t, n, Config{
		BatchSize:         1,
		Window:            4,
		ProgressTimeout:   100 * time.Millisecond,
		StabilityInterval: time.Hour,
	}, simnet.Config{Jitter: 2 * time.Millisecond, Seed: 9})

	for s := uint64(1); s <= 4; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, time.Duration(s)*15*time.Millisecond, mkTxM(c, s))
		}
	}
	net.Run(2 * time.Second)
	net.Crash(1)
	for s := uint64(5); s <= 8; s++ {
		for c := types.ClientID(1); c <= 4; c++ {
			injectAt(net, n, net.Now()+time.Duration(s)*30*time.Millisecond, mkTxM(c, s))
		}
	}
	net.Run(net.Now() + 8*time.Second)

	// All live replicas must be in the same epoch with the same leader
	// set, and must keep committing after the change.
	live := []int{0, 2, 3}
	epoch := reps[live[0]].Epoch()
	if epoch == 0 {
		t.Fatal("no epoch change happened")
	}
	for _, i := range live {
		if reps[i].Epoch() != epoch {
			t.Fatalf("replica %d epoch %d, want %d", i, reps[i].Epoch(), epoch)
		}
		if got := realTxns(net.Node(types.ReplicaID(i)).Decisions()); got < 16 {
			t.Fatalf("replica %d committed %d txns, want >= 16 (progress across the epoch change)", i, got)
		}
	}
}

func mkTxM(c types.ClientID, s uint64) types.Transaction {
	return types.Transaction{Client: c, Seq: s, Op: []byte{byte(c), byte(s)}}
}
