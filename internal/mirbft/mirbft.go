// Package mirbft implements a Mir-BFT-style multi-leader consensus baseline
// (Stathakopoulou et al.), the comparator of the RCC paper's Fig. 10 and
// Example VI.1.
//
// Like RCC, Mir-BFT runs concurrent PBFT instances with distinct leaders.
// The defining difference is failure handling: Mir-BFT operates in global
// epochs. When any instance fails, the replicas perform an epoch change
// that temporarily halts ALL instances (dropping throughput to zero), after
// which a super-primary installs a new epoch whose leader set excludes the
// failed leader. Once the system looks reliable again, disabled leaders are
// re-enabled gradually, one per stability interval.
//
// This is exactly the behavioural contrast Fig. 10 measures against RCC's
// wait-free per-instance recovery: during Mir-BFT recovery every instance
// stalls, and after recovery the system runs with fewer instances for a
// while.
package mirbft

import (
	"sort"
	"time"

	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/sm"
	"repro/internal/types"
)

// Config parameterizes a Mir-BFT replica.
type Config struct {
	// M is the number of concurrent instances (0 means n).
	M int
	// BatchSize groups client transactions per proposal.
	BatchSize int
	// Window is the out-of-order proposal window per instance.
	Window int
	// ProgressTimeout is the per-instance failure-detection timeout.
	ProgressTimeout time.Duration
	// StabilityInterval is how long the super-primary waits after an
	// epoch change before re-enabling one disabled leader.
	StabilityInterval time.Duration
	// DisableNoOpFill turns off no-op filling for tests.
	DisableNoOpFill bool
}

func (c *Config) defaults(n int) {
	if c.M <= 0 || c.M > n {
		c.M = n
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.Window <= 0 {
		c.Window = 1
	}
	if c.ProgressTimeout <= 0 {
		c.ProgressTimeout = 500 * time.Millisecond
	}
	if c.StabilityInterval <= 0 {
		c.StabilityInterval = 2 * time.Second
	}
}

// instState tracks one instance at this replica.
type instState struct {
	id      types.InstanceID
	primary types.ReplicaID
	inst    *pbft.Instance

	enabled   bool
	decided   map[types.Round]sm.Decision
	voidBelow types.Round
	lastDec   types.Round
	suspected bool
}

// Replica is one Mir-BFT replica hosting m concurrent instances under
// global epoch coordination.
type Replica struct {
	cfg Config
	env sm.Env

	states []*instState
	epoch  uint64
	// changing is set between the epoch-change trigger and NEW-EPOCH:
	// every instance is halted (the throughput dip of Fig. 10).
	changing bool
	// pendingEpoch/pendingFailed track the in-progress epoch change so a
	// silent super-primary can be skipped by escalating to the next epoch.
	pendingEpoch  uint64
	pendingFailed types.InstanceID
	// failed accumulates the leaders excluded from the current epoch.
	failed map[types.ReplicaID]bool

	votes map[uint64]map[types.ReplicaID]types.InstanceID

	execRound  types.Round
	maxDecided types.Round

	roundsExecuted uint64
	noopsProposed  uint64
	epochChanges   uint64
}

var _ sm.Machine = (*Replica)(nil)

// New creates a Mir-BFT replica machine.
func New(cfg Config) *Replica {
	return &Replica{
		failed: make(map[types.ReplicaID]bool),
		votes:  make(map[uint64]map[types.ReplicaID]types.InstanceID),
		cfg:    cfg,
	}
}

// Start implements sm.Machine.
func (r *Replica) Start(env sm.Env) {
	r.env = env
	n := env.Params().N
	r.cfg.defaults(n)
	r.execRound = 1
	r.states = make([]*instState, r.cfg.M)
	for i := 0; i < r.cfg.M; i++ {
		id := types.InstanceID(i)
		st := &instState{
			id:      id,
			primary: types.ReplicaID(i % n),
			enabled: true,
			decided: make(map[types.Round]sm.Decision),
		}
		st.inst = pbft.New(pbft.Config{
			Instance:        id,
			Primary:         st.primary,
			FixedPrimary:    true,
			Window:          r.cfg.Window,
			BatchSize:       r.cfg.BatchSize,
			ProgressTimeout: r.cfg.ProgressTimeout,
		})
		r.states[i] = st
		st.inst.Start(&instEnv{outer: env, mgr: r, inst: id})
	}
}

// M returns the number of instances.
func (r *Replica) M() int { return len(r.states) }

// Epoch returns the current epoch number.
func (r *Replica) Epoch() uint64 { return r.epoch }

// EpochChanges returns how many epoch changes this replica performed.
func (r *Replica) EpochChanges() uint64 { return r.epochChanges }

// RoundsExecuted returns the number of completed rounds.
func (r *Replica) RoundsExecuted() uint64 { return r.roundsExecuted }

// EnabledInstances returns the instances enabled in the current epoch.
func (r *Replica) EnabledInstances() []types.InstanceID {
	var out []types.InstanceID
	for _, st := range r.states {
		if st.enabled {
			out = append(out, st.id)
		}
	}
	return out
}

// superPrimary returns the coordinator of epoch e.
func (r *Replica) superPrimary(e uint64) types.ReplicaID {
	return types.ReplicaID(e % uint64(r.env.Params().N))
}

// Assignment returns the enabled instance serving client c. Requests of
// clients assigned to disabled leaders are re-bucketed (Mir-BFT reassigns
// request buckets every epoch).
func (r *Replica) Assignment(c types.ClientID) types.InstanceID {
	enabled := r.EnabledInstances()
	if len(enabled) == 0 {
		return 0
	}
	return enabled[int(uint32(c))%len(enabled)]
}

// OwnInstance returns the instance this replica leads, if any.
func (r *Replica) OwnInstance() (types.InstanceID, bool) {
	for _, st := range r.states {
		if st.primary == r.env.ID() {
			return st.id, true
		}
	}
	return 0, false
}

// OnMessage implements sm.Machine.
func (r *Replica) OnMessage(from sm.Source, m types.Message) {
	switch msg := m.(type) {
	case *types.ClientRequest:
		r.routeClientRequest(from, msg)
		return
	case *types.EpochChange:
		r.onEpochChange(msg)
		return
	case *types.NewEpoch:
		r.onNewEpoch(from.Replica, msg)
		return
	}
	id := m.Instance()
	if int(id) < len(r.states) {
		r.states[id].inst.OnMessage(from, m)
	}
}

// OnTimer implements sm.Machine.
func (r *Replica) OnTimer(id sm.TimerID) {
	if id.Kind == sm.TimerEpoch {
		if id.Round == 0 {
			r.onStabilityTimer()
		} else {
			r.onEpochEscalation(uint64(id.Round))
		}
		return
	}
	if int(id.Instance) < len(r.states) {
		r.states[id.Instance].inst.OnTimer(id)
	}
}

func (r *Replica) routeClientRequest(from sm.Source, m *types.ClientRequest) {
	if r.changing {
		return // all buckets stall during an epoch change
	}
	inst := r.Assignment(m.Tx.Client)
	fwd := types.NewClientRequest(inst, m.Tx)
	r.states[inst].inst.OnMessage(from, fwd)
}

// suspectInstance starts the global epoch change (the Mir-BFT contrast to
// RCC's per-instance recovery).
func (r *Replica) suspectInstance(inst types.InstanceID, _ types.Round) {
	st := r.states[inst]
	if st.suspected || !st.enabled {
		return
	}
	st.suspected = true
	r.env.Logf("mirbft: suspecting instance %d (epoch %d)", inst, r.epoch)
	ec := &types.EpochChange{Replica: r.env.ID(), Epoch: r.epoch + 1, Failed: inst}
	ec.Inst = inst
	r.env.Broadcast(ec)
}

func (r *Replica) onEpochChange(m *types.EpochChange) {
	if m.Epoch <= r.epoch {
		return
	}
	votes, ok := r.votes[m.Epoch]
	if !ok {
		votes = make(map[types.ReplicaID]types.InstanceID)
		r.votes[m.Epoch] = votes
	}
	votes[m.Replica] = m.Failed
	p := r.env.Params()
	// f+1 distinct complaints: join the epoch change ourselves.
	if len(votes) >= p.FaultDetection() && !r.changing {
		if _, voted := votes[r.env.ID()]; !voted {
			ec := &types.EpochChange{Replica: r.env.ID(), Epoch: m.Epoch, Failed: m.Failed}
			ec.Inst = m.Failed
			r.env.Broadcast(ec)
		}
		// Halt everything: the fully-coordinated recovery of Mir-BFT.
		r.changing = true
		r.epochChanges++
		r.pendingEpoch = m.Epoch
		r.pendingFailed = m.Failed
		for _, st := range r.states {
			st.inst.Halt()
		}
		// Guard against a silent super-primary (it may itself be the
		// crashed replica): escalate to the next epoch on timeout.
		r.env.SetTimer(sm.TimerID{Kind: sm.TimerEpoch, Round: types.Round(m.Epoch)}, r.cfg.ProgressTimeout)
	}
	// nf votes: the new super-primary installs the epoch.
	if len(votes) >= p.NF() && r.superPrimary(m.Epoch) == r.env.ID() {
		failed := make(map[types.InstanceID]int)
		for _, f := range votes {
			failed[f]++
		}
		leaders := make([]types.ReplicaID, 0, len(r.states))
		for _, st := range r.states {
			excluded := false
			for f, c := range failed {
				if f == st.id && c >= p.FaultDetection() {
					excluded = true
				}
			}
			if r.failed[st.primary] {
				excluded = true
			}
			if !excluded {
				leaders = append(leaders, st.primary)
			}
		}
		sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
		// The common resume round must clear every replica's in-flight
		// window; 2×Window beyond the super-primary's own frontier covers
		// the out-of-order spread.
		start := r.maxDecided + types.Round(2*r.cfg.Window) + 1
		ne := &types.NewEpoch{Replica: r.env.ID(), Epoch: m.Epoch, Leaders: leaders, StartRound: start}
		r.env.Broadcast(ne)
	}
}

// onEpochEscalation fires when the super-primary of a pending epoch change
// failed to install the new epoch in time: move on to the next epoch, whose
// super-primary is the next replica in round-robin order.
func (r *Replica) onEpochEscalation(epoch uint64) {
	if !r.changing || epoch != r.pendingEpoch {
		return
	}
	ec := &types.EpochChange{Replica: r.env.ID(), Epoch: epoch + 1, Failed: r.pendingFailed}
	ec.Inst = r.pendingFailed
	r.env.Broadcast(ec)
	r.pendingEpoch = epoch + 1
	r.env.SetTimer(sm.TimerID{Kind: sm.TimerEpoch, Round: types.Round(epoch + 1)}, r.cfg.ProgressTimeout)
}

func (r *Replica) onNewEpoch(from types.ReplicaID, m *types.NewEpoch) {
	if m.Epoch <= r.epoch || from != r.superPrimary(m.Epoch) {
		return
	}
	r.epoch = m.Epoch
	r.changing = false
	r.env.Logf("mirbft: epoch %d installed, %d leaders", m.Epoch, len(m.Leaders))
	if r.pendingEpoch != 0 {
		r.env.CancelTimer(sm.TimerID{Kind: sm.TimerEpoch, Round: types.Round(r.pendingEpoch)})
		r.pendingEpoch = 0
	}
	enabled := make(map[types.ReplicaID]bool, len(m.Leaders))
	for _, l := range m.Leaders {
		enabled[l] = true
	}
	// The common resume round comes from the NEW-EPOCH message: everything
	// below it is settled per instance (decided rounds execute, the rest
	// are void). Simplification vs real Mir-BFT: rounds in flight at the
	// epoch boundary are voided on replicas that had not committed them
	// (gracious epoch-change state transfer is out of scope); the Fig. 10
	// contrast — global halt vs RCC's wait-free recovery — is unaffected.
	resume := m.StartRound
	if resume <= r.maxDecided {
		resume = r.maxDecided + 1
	}
	for _, st := range r.states {
		st.suspected = false
		st.enabled = enabled[st.primary]
		r.failed[st.primary] = !st.enabled
		if resume > st.voidBelow {
			st.voidBelow = resume
		}
		st.inst.SkipTo(resume)
		if st.enabled {
			st.inst.ResumeAt(resume)
		}
	}
	r.tryExecute()
	r.maybeNoOpFill()
	// The super-primary of the *next* epoch change is responsible for
	// gradually re-enabling leaders once the system is stable.
	if r.superPrimary(r.epoch+1) == r.env.ID() && len(m.Leaders) < len(r.states) {
		r.env.SetTimer(sm.TimerID{Kind: sm.TimerEpoch}, r.cfg.StabilityInterval)
	}
}

// onStabilityTimer re-enables one disabled leader (Fig. 10 points e and f).
func (r *Replica) onStabilityTimer() {
	if r.changing || r.superPrimary(r.epoch+1) != r.env.ID() {
		return
	}
	leaders := make([]types.ReplicaID, 0, len(r.states))
	var disabled []types.ReplicaID
	for _, st := range r.states {
		if st.enabled {
			leaders = append(leaders, st.primary)
		} else {
			disabled = append(disabled, st.primary)
		}
	}
	if len(disabled) == 0 {
		return
	}
	sort.Slice(disabled, func(i, j int) bool { return disabled[i] < disabled[j] })
	r.failed[disabled[0]] = false
	leaders = append(leaders, disabled[0])
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
	ne := &types.NewEpoch{
		Replica: r.env.ID(), Epoch: r.epoch + 1, Leaders: leaders,
		StartRound: r.maxDecided + types.Round(2*r.cfg.Window) + 1,
	}
	r.env.Broadcast(ne)
}

// onDecision receives one instance decision.
func (r *Replica) onDecision(inst types.InstanceID, d sm.Decision) {
	st := r.states[inst]
	if _, dup := st.decided[d.Round]; dup {
		return
	}
	st.decided[d.Round] = d
	if d.Round > st.lastDec {
		st.lastDec = d.Round
	}
	if d.Round > r.maxDecided {
		r.maxDecided = d.Round
	}
	r.maybeNoOpFill()
	r.tryExecute()
}

// tryExecute delivers completed rounds: a round is complete when every
// enabled instance decided it and every disabled instance has it void.
func (r *Replica) tryExecute() {
	for {
		type slot struct {
			inst types.InstanceID
			dec  sm.Decision
		}
		slots := make([]slot, 0, len(r.states))
		complete := true
		for _, st := range r.states {
			if d, ok := st.decided[r.execRound]; ok {
				slots = append(slots, slot{st.id, d})
				continue
			}
			if r.execRound < st.voidBelow || !st.enabled {
				continue
			}
			complete = false
			break
		}
		if !complete || r.changing {
			return
		}
		if len(slots) == 0 {
			// Nothing decided this round anywhere and all instances
			// void or disabled: advance only if some instance is ahead,
			// else wait for demand.
			anyAhead := false
			for _, st := range r.states {
				if st.lastDec >= r.execRound {
					anyAhead = true
				}
			}
			if !anyAhead {
				return
			}
		}
		for _, s := range slots {
			r.env.Deliver(s.dec)
		}
		for _, s := range slots {
			delete(r.states[s.inst].decided, r.execRound)
		}
		r.roundsExecuted++
		r.execRound++
	}
}

// maybeNoOpFill keeps the local leader's instance in step with the most
// advanced instance so rounds complete (same role as RCC's no-op filling).
func (r *Replica) maybeNoOpFill() {
	if r.cfg.DisableNoOpFill || r.changing {
		return
	}
	own, ok := r.OwnInstance()
	if !ok {
		return
	}
	st := r.states[own]
	if !st.enabled || st.inst.Halted() {
		return
	}
	if st.inst.Pending() > 0 {
		return
	}
	for st.inst.NextProposeRound() <= r.maxDecided {
		if !st.inst.Propose(types.NoOpBatch()) {
			return
		}
		r.noopsProposed++
	}
}

// instEnv adapts sm.Env for one hosted instance.
type instEnv struct {
	outer sm.Env
	mgr   *Replica
	inst  types.InstanceID
}

var _ sm.Env = (*instEnv)(nil)

func (e *instEnv) ID() types.ReplicaID                          { return e.outer.ID() }
func (e *instEnv) Params() quorum.Params                        { return e.outer.Params() }
func (e *instEnv) Send(to types.ReplicaID, m types.Message)     { e.outer.Send(to, m) }
func (e *instEnv) Broadcast(m types.Message)                    { e.outer.Broadcast(m) }
func (e *instEnv) SendClient(c types.ClientID, m types.Message) { e.outer.SendClient(c, m) }
func (e *instEnv) SetTimer(id sm.TimerID, d time.Duration)      { e.outer.SetTimer(id, d) }
func (e *instEnv) CancelTimer(id sm.TimerID)                    { e.outer.CancelTimer(id) }
func (e *instEnv) Now() time.Duration                           { return e.outer.Now() }
func (e *instEnv) Logf(format string, args ...any)              { e.outer.Logf(format, args...) }
func (e *instEnv) Deliver(d sm.Decision)                        { e.mgr.onDecision(e.inst, d) }
func (e *instEnv) Suspect(inst types.InstanceID, round types.Round) {
	e.mgr.suspectInstance(e.inst, round)
}
