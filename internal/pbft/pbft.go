// Package pbft implements the PBFT Byzantine commit algorithm
// (preprepare-prepare-commit, §III-A and Example III.1 of the RCC paper)
// together with PBFT's view-change and checkpoint protocols.
//
// The implementation supports two modes:
//
//   - Standalone: a complete primary-backup consensus protocol with view
//     changes and periodic checkpoints — the PBFT baseline of the paper's
//     evaluation.
//   - RCC mode (Config.FixedPrimary): the instance has a fixed primary and
//     never changes views; detected failures are reported through
//     Env.Suspect so the RCC paradigm can run its wait-free recovery
//     (paper Fig. 4) instead.
//
// Out-of-order processing (§V-B) is supported through a proposal window:
// the primary may propose round ρ+k while round ρ is still committing,
// which is what lets PBFT (and RCC over PBFT) saturate primary bandwidth.
package pbft

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sm"
	"repro/internal/types"
)

// Config parameterizes one PBFT instance.
type Config struct {
	// Instance is the consensus instance this machine serves.
	Instance types.InstanceID
	// Primary is the initial primary. In FixedPrimary mode it never
	// changes; otherwise the primary of view v is replica (Primary+v) mod n.
	Primary types.ReplicaID
	// FixedPrimary selects RCC mode: no view changes; failures are
	// reported via Env.Suspect.
	FixedPrimary bool
	// Window is the out-of-order proposal window: the primary may have
	// up to Window proposals in flight. Window <= 1 disables
	// out-of-order processing (the Fig. 8 (g,h) configuration).
	Window int
	// CheckpointEvery emits a checkpoint every so many rounds
	// (0 disables periodic checkpoints; RCC uses dynamic per-need
	// checkpoints instead, implemented in internal/rcc).
	CheckpointEvery types.Round
	// RetainDelivered bounds per-round state: delivered rounds more than
	// this many rounds behind the delivery frontier are garbage-collected
	// even without a stable checkpoint. The retained window is what
	// FAILURE messages and view changes can still attach as evidence;
	// anything older was delivered by a quorum and is recoverable through
	// checkpoints. 0 selects the default of 512.
	RetainDelivered types.Round
	// ProgressTimeout is the failure-detection timeout: if an expected
	// decision does not arrive in time, the primary is suspected.
	ProgressTimeout time.Duration
	// BatchSize is the number of client requests grouped per proposal
	// when the instance batches requests itself (standalone mode).
	BatchSize int
	// BatchTimeout proposes a partial batch after this delay.
	BatchTimeout time.Duration
	// Metrics receives consensus counters, the consensus-stage latency
	// histogram, and lifecycle trace stamps. Nil disables instrumentation.
	Metrics *obs.NodeMetrics
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 1
	}
	if c.ProgressTimeout <= 0 {
		c.ProgressTimeout = 500 * time.Millisecond
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 50 * time.Millisecond
	}
	if c.RetainDelivered <= 0 {
		c.RetainDelivered = 512
	}
}

// round tracks the state of one consensus round.
type round struct {
	view        types.View
	digest      types.Digest
	batch       *types.Batch
	seenAt      time.Duration // env.Now() when the proposal was first seen
	preprepared bool
	prepares    map[types.Digest]map[types.ReplicaID]struct{}
	commits     map[types.Digest]map[types.ReplicaID]struct{}
	prepared    bool
	committed   bool
	delivered   bool
	sentPrepare bool
	sentCommit  bool
}

// txKey identifies one client transaction for deduplication.
type txKey struct {
	c types.ClientID
	s uint64
}

func newRound() *round {
	return &round{
		prepares: make(map[types.Digest]map[types.ReplicaID]struct{}),
		commits:  make(map[types.Digest]map[types.ReplicaID]struct{}),
	}
}

func addVote(m map[types.Digest]map[types.ReplicaID]struct{}, d types.Digest, r types.ReplicaID) int {
	s, ok := m[d]
	if !ok {
		s = make(map[types.ReplicaID]struct{})
		m[d] = s
	}
	s[r] = struct{}{}
	return len(s)
}

func voters(m map[types.Digest]map[types.ReplicaID]struct{}, d types.Digest) []types.ReplicaID {
	out := make([]types.ReplicaID, 0, len(m[d]))
	for r := range m[d] {
		out = append(out, r)
	}
	return out
}

// Instance is one PBFT machine. It implements sm.Instance.
type Instance struct {
	cfg Config
	env sm.Env

	view    types.View
	rounds  map[types.Round]*round
	next    types.Round // next round the primary proposes (1-based)
	deliver types.Round // next round to deliver (in order)
	halted  bool
	// resumeFloor is the lowest round this instance may operate in after
	// an RCC recovery (Fig. 4 line 12).
	resumeFloor types.Round
	// nextGC is the delivery round at which the next retention sweep runs.
	nextGC types.Round

	// Standalone batching of client requests. lastSeq tracks the highest
	// delivered sequence number per client so duplicates and already
	// executed requests are not re-proposed; pendingSet covers requests
	// queued or in flight (proposed but not yet delivered), so client
	// retransmissions cannot enter a second round.
	pending    []types.Transaction
	pendingSet map[txKey]struct{}
	// staleTxns counts delivered transactions since the last queue
	// compaction (amortization counter).
	staleTxns int
	lastSeq   map[types.ClientID]uint64
	// syncSeq carries dedup floors established OUTSIDE this instance's own
	// delivery prefix — RCC's composite delivery frontier, pushed down after
	// a state-transfer install (MergeDeliveredSeqs). Kept apart from lastSeq
	// because lastSeq is serialized into sync points and must stay a pure
	// function of the delivered prefix (byte-identical across replicas at
	// the same frontier); dedup checks consult the max of both.
	syncSeq map[types.ClientID]uint64

	// Checkpoints. chain is the incremental digest chain over the
	// delivered prefix; chainAt records the chain value after each
	// delivered round (garbage-collected at stable checkpoints).
	stableCkp types.Round
	chain     types.Digest
	chainAt   map[types.Round]types.Digest
	ckpVotes  map[types.Round]map[types.Digest]map[types.ReplicaID]struct{}
	ckpBodies map[types.Round]map[types.ReplicaID][]types.AcceptedProposal

	// View change state (standalone mode). vcAnnounced tracks the highest
	// view each replica announced (the synchronization rule); vcBackoff
	// doubles the view-change timer on consecutive failed attempts.
	inViewChange bool
	vcVotes      map[types.View]map[types.ReplicaID]*types.ViewChange
	vcAnnounced  map[types.ReplicaID]types.View
	vcBackoff    time.Duration
	// viewInstalled, when set, is invoked after a NEW-VIEW is adopted.
	// RCC uses it to have a fresh coordinating leader propose a pending
	// stop operation immediately and to grant it a fresh timeout.
	viewInstalled func(types.View)

	timerArmed bool
}

var _ sm.Instance = (*Instance)(nil)

// New creates a PBFT instance.
func New(cfg Config) *Instance {
	cfg.defaults()
	return &Instance{
		cfg:        cfg,
		rounds:     make(map[types.Round]*round),
		next:       1,
		deliver:    1,
		chainAt:    make(map[types.Round]types.Digest),
		pendingSet: make(map[txKey]struct{}),
		lastSeq:    make(map[types.ClientID]uint64),
		syncSeq:    make(map[types.ClientID]uint64),
		ckpVotes:   make(map[types.Round]map[types.Digest]map[types.ReplicaID]struct{}),
		ckpBodies:  make(map[types.Round]map[types.ReplicaID][]types.AcceptedProposal),
		vcVotes:    make(map[types.View]map[types.ReplicaID]*types.ViewChange),
	}
}

// Start implements sm.Machine.
func (p *Instance) Start(env sm.Env) { p.env = env }

// Config returns the instance configuration.
func (p *Instance) Config() Config { return p.cfg }

// View returns the current view.
func (p *Instance) View() types.View { return p.view }

// primaryOf returns the primary of view v.
func (p *Instance) primaryOf(v types.View) types.ReplicaID {
	if p.cfg.FixedPrimary {
		return p.cfg.Primary
	}
	n := p.env.Params().N
	return types.ReplicaID((int(p.cfg.Primary) + int(v)) % n)
}

// IsPrimary reports whether the local replica leads the current view.
func (p *Instance) IsPrimary() bool { return p.primaryOf(p.view) == p.env.ID() }

func (p *Instance) getRound(r types.Round) *round {
	rd, ok := p.rounds[r]
	if !ok {
		rd = newRound()
		p.rounds[r] = rd
	}
	return rd
}

// inFlight counts proposals the primary started that have not committed
// locally. Rounds below the resume floor are void by agreement, not in
// flight.
func (p *Instance) inFlight() int {
	n := 0
	start := p.deliver
	if p.resumeFloor > start {
		start = p.resumeFloor
	}
	for r := start; r < p.next; r++ {
		if rd, ok := p.rounds[r]; !ok || !rd.committed {
			n++
		}
	}
	return n
}

// Propose implements sm.Instance: the primary assigns the next round to
// batch and broadcasts a PREPREPARE.
func (p *Instance) Propose(batch *types.Batch) bool {
	if p.halted || p.inViewChange || !p.IsPrimary() {
		return false
	}
	if p.inFlight() >= p.cfg.Window {
		return false
	}
	r := p.next
	if r < p.resumeFloor {
		r = p.resumeFloor
		p.next = r
	}
	p.next++
	d := batch.Digest()
	pp := &types.PrePrepare{View: p.view, Round: r, Digest: d, Batch: batch}
	pp.Inst = p.cfg.Instance
	p.env.Broadcast(pp)
	return true
}

// NextProposeRound implements sm.Instance.
func (p *Instance) NextProposeRound() types.Round {
	if p.next < p.resumeFloor {
		return p.resumeFloor
	}
	return p.next
}

// LastAccepted implements sm.Instance.
func (p *Instance) LastAccepted() (types.Round, bool) {
	var max types.Round
	found := false
	for r, rd := range p.rounds {
		if rd.committed && r > max {
			max, found = r, true
		}
	}
	return max, found
}

// Halt implements sm.Instance.
func (p *Instance) Halt() {
	p.halted = true
	p.disarmTimer()
}

// Halted implements sm.Instance.
func (p *Instance) Halted() bool { return p.halted }

// ResumeAt implements sm.Instance. Rounds below r that are neither adopted
// (AdoptDecision) nor voided (SkipTo) by the recovery layer keep delivery
// parked; RCC's handleStop covers every such round before calling ResumeAt.
func (p *Instance) ResumeAt(r types.Round) {
	p.halted = false
	p.resumeFloor = r
	if p.next < r {
		p.next = r
	}
	p.tryDeliver()
	// In standalone mode, restart failure detection if requests are still
	// waiting. In RCC mode the instance is dormant until other instances
	// approach the resume round (the restart penalty, Fig. 4 line 12);
	// re-suspicion is the RCC lag detector's job, not the progress timer's,
	// as otherwise a permanently crashed primary would be re-suspected
	// immediately and drive an unbounded recovery spin.
	if !p.cfg.FixedPrimary && p.outstandingWork() {
		p.armTimer()
	}
}

// SkipTo voids every round in [deliver, target) for which no commit exists
// (RCC recovery agreed those rounds hold no proposal): committed rounds in
// the range are delivered in order, and each maximal gap of void rounds
// advances the checkpoint chain by a single range step. The cost is
// proportional to the number of materialized rounds, not to the width of
// the range — restart penalties can span millions of rounds (Fig. 4
// line 12) and must not be walked one by one.
func (p *Instance) SkipTo(target types.Round) {
	if target <= p.deliver {
		return
	}
	queued := make(map[txKey]struct{}, len(p.pending))
	for i := range p.pending {
		queued[txKey{p.pending[i].Client, p.pending[i].Seq}] = struct{}{}
	}
	committed := make([]types.Round, 0, 8)
	for r, rd := range p.rounds {
		if r < p.deliver || r >= target {
			continue
		}
		if rd.committed {
			if !rd.delivered {
				committed = append(committed, r)
			}
			continue
		}
		// The round is void by agreement; discard any partial state, but
		// put its in-flight transactions back in the queue so clients'
		// requests are not silently lost with the voided round.
		p.requeueVoided(rd.batch, queued)
		delete(p.rounds, r)
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i] < committed[j] })
	for _, c := range committed {
		if c > p.deliver {
			p.chain = chainStep(p.chain, voidRangeDigest(p.deliver, c))
		}
		rd := p.rounds[c]
		rd.delivered = true
		p.chain = chainStep(p.chain, rd.digest)
		p.chainAt[c] = p.chain
		p.markDelivered(rd.batch)
		p.env.Deliver(sm.Decision{
			Instance: p.cfg.Instance,
			Round:    c,
			View:     rd.view,
			Digest:   rd.digest,
			Batch:    rd.batch,
			Signers:  voters(rd.commits, rd.digest),
		})
		p.deliver = c + 1
	}
	if p.deliver < target {
		p.chain = chainStep(p.chain, voidRangeDigest(p.deliver, target))
		p.deliver = target
	}
	p.chainAt[target-1] = p.chain
	p.resetTimerAfterProgress()
	p.tryDeliver()
}

// requeueVoided returns a voided round's undelivered transactions to the
// pending queue (primaries re-propose them after the resume round).
func (p *Instance) requeueVoided(b *types.Batch, queued map[txKey]struct{}) {
	if b == nil {
		return
	}
	for i := range b.Txns {
		tx := b.Txns[i]
		if tx.IsNoOp() || tx.Seq <= p.seqFloor(tx.Client) {
			continue
		}
		key := txKey{tx.Client, tx.Seq}
		if _, inQueue := queued[key]; inQueue {
			continue // still queued, nothing lost
		}
		if _, tracked := p.pendingSet[key]; tracked {
			p.pending = append(p.pending, tx)
			queued[key] = struct{}{}
		}
	}
}

// StateForRecovery implements sm.Instance (Assumption A3): the accepted and
// prepared proposals of this replica.
func (p *Instance) StateForRecovery() []types.AcceptedProposal {
	out := make([]types.AcceptedProposal, 0, len(p.rounds))
	for r, rd := range p.rounds {
		if rd.batch == nil {
			continue
		}
		if rd.committed || rd.prepared {
			out = append(out, types.AcceptedProposal{
				Round: r, View: rd.view, Digest: rd.digest,
				Batch: rd.batch, Prepared: true,
			})
		}
	}
	return out
}

// AdoptDecision implements sm.Instance: installs a decision recovered by
// RCC recovery or a checkpoint without re-running the commit phases.
func (p *Instance) AdoptDecision(d sm.Decision) {
	rd := p.getRound(d.Round)
	if rd.committed {
		return
	}
	rd.view = d.View
	rd.digest = d.Digest
	rd.batch = d.Batch
	rd.preprepared = true
	rd.prepared = true
	rd.committed = true
	if d.Round >= p.next {
		p.next = d.Round + 1
	}
	p.tryDeliver()
}

// Pending returns the number of queued client transactions (standalone
// batching).
func (p *Instance) Pending() int { return len(p.pending) }

// OnMessage implements sm.Machine.
func (p *Instance) OnMessage(from sm.Source, m types.Message) {
	if p.halted {
		// A halted instance ignores everything except checkpoints,
		// which remain live so in-the-dark replicas can still catch
		// up (checkpoints run concurrently, §III-D).
		if m.Type() != types.MsgCheckpoint {
			return
		}
	}
	switch msg := m.(type) {
	case *types.ClientRequest:
		p.onClientRequest(from, msg)
	case *types.PrePrepare:
		p.onPrePrepare(from.Replica, msg)
	case *types.Prepare:
		p.onPrepare(msg)
	case *types.Commit:
		p.onCommit(msg)
	case *types.Checkpoint:
		p.onCheckpoint(msg)
	case *types.ViewChange:
		p.onViewChange(msg)
	case *types.NewView:
		p.onNewView(from.Replica, msg)
	}
}

// onClientRequest queues a request; the primary proposes a batch when full.
func (p *Instance) onClientRequest(from sm.Source, m *types.ClientRequest) {
	if m.Tx.IsNoOp() || m.Tx.Seq <= p.seqFloor(m.Tx.Client) {
		return // already executed or filler
	}
	key := txKey{m.Tx.Client, m.Tx.Seq}
	if _, dup := p.pendingSet[key]; dup {
		return // queued or already in flight
	}
	p.pendingSet[key] = struct{}{}
	p.pending = append(p.pending, m.Tx)
	if met := p.cfg.Metrics; met != nil {
		met.Requests.Inc()
		met.Trace(uint64(m.Tx.Client), m.Tx.Seq, obs.PointArrive)
	}
	if !p.IsPrimary() {
		// A backup starts its failure-detection timer when it learns
		// of a request: the primary must propose it in time.
		p.armTimer()
		return
	}
	p.maybeProposeBatch()
}

func (p *Instance) maybeProposeBatch() {
	for len(p.pending) >= p.cfg.BatchSize && p.inFlight() < p.cfg.Window {
		txns := p.takeBatch(p.cfg.BatchSize)
		if len(txns) == 0 {
			continue // only stale entries were consumed; re-check the queue
		}
		if !p.Propose(&types.Batch{Txns: txns}) {
			// Window full: return the batch to the queue front.
			p.pending = append(txns, p.pending...)
			return
		}
	}
	if len(p.pending) > 0 {
		p.env.SetTimer(sm.TimerID{Instance: p.cfg.Instance, Kind: sm.TimerBatch}, p.cfg.BatchTimeout)
	}
}

func (p *Instance) onPrePrepare(from types.ReplicaID, m *types.PrePrepare) {
	if m.View != p.view || from != p.primaryOf(m.View) || p.inViewChange {
		return
	}
	if m.Round < p.resumeFloor || m.Batch == nil {
		return
	}
	if m.Batch.Digest() != m.Digest {
		// Malformed proposal: treat as primary failure evidence.
		p.suspect(m.Round)
		return
	}
	rd := p.getRound(m.Round)
	if rd.preprepared {
		if rd.digest != m.Digest {
			// Equivocation by the primary.
			p.suspect(m.Round)
		}
		return
	}
	rd.view = m.View
	rd.digest = m.Digest
	rd.batch = m.Batch
	rd.preprepared = true
	rd.seenAt = p.env.Now()
	if met := p.cfg.Metrics; met.Tracing() {
		for i := range m.Batch.Txns {
			tx := &m.Batch.Txns[i]
			met.Trace(uint64(tx.Client), tx.Seq, obs.PointPropose)
		}
	}
	p.armTimer()

	if !rd.sentPrepare {
		rd.sentPrepare = true
		p.env.Broadcast(types.NewPrepare(p.cfg.Instance, p.env.ID(), m.View, m.Round, m.Digest))
	}
	// The primary's preprepare counts as its prepare vote.
	p.tallyPrepare(m.Round, rd, from, m.Digest)
}

func (p *Instance) onPrepare(m *types.Prepare) {
	if m.View != p.view || p.inViewChange || m.Round < p.resumeFloor {
		return
	}
	rd := p.getRound(m.Round)
	p.tallyPrepare(m.Round, rd, m.Replica, m.Digest)
}

func (p *Instance) tallyPrepare(rnd types.Round, rd *round, from types.ReplicaID, d types.Digest) {
	n := addVote(rd.prepares, d, from)
	if rd.prepared || n < p.env.Params().NF() {
		return
	}
	if !rd.preprepared || rd.digest != d {
		return // wait for the matching preprepare
	}
	rd.prepared = true
	if !rd.sentCommit {
		rd.sentCommit = true
		p.env.Broadcast(types.NewCommit(p.cfg.Instance, p.env.ID(), rd.view, rnd, d))
	}
}

func (p *Instance) onCommit(m *types.Commit) {
	if p.inViewChange || m.Round < p.resumeFloor {
		return
	}
	rd := p.getRound(m.Round)
	n := addVote(rd.commits, m.Digest, m.Replica)
	if rd.committed || n < p.env.Params().NF() {
		return
	}
	if !rd.prepared || rd.digest != m.Digest {
		// A commit certificate can complete before our own prepare
		// certificate in asynchronous networks; accept only once the
		// local preprepare matches.
		if !rd.preprepared || rd.digest != m.Digest {
			return
		}
		rd.prepared = true
	}
	rd.committed = true
	p.tryDeliver()
}

// tryDeliver delivers committed rounds in order.
func (p *Instance) tryDeliver() {
	progressed := false
	for {
		rd, ok := p.rounds[p.deliver]
		if !ok {
			break
		}
		if !rd.committed || rd.delivered {
			break
		}
		rd.delivered = true
		p.chain = chainStep(p.chain, rd.digest)
		p.chainAt[p.deliver] = p.chain
		p.markDelivered(rd.batch)
		if met := p.cfg.Metrics; met != nil {
			met.Decided.Inc()
			if rd.seenAt > 0 {
				met.ObserveStage(obs.StageConsensus, p.env.Now()-rd.seenAt)
			}
			if met.Tracing() && rd.batch != nil {
				for i := range rd.batch.Txns {
					tx := &rd.batch.Txns[i]
					met.Trace(uint64(tx.Client), tx.Seq, obs.PointDecide)
				}
			}
		}
		p.env.Deliver(sm.Decision{
			Instance: p.cfg.Instance,
			Round:    p.deliver,
			View:     rd.view,
			Digest:   rd.digest,
			Batch:    rd.batch,
			Signers:  voters(rd.commits, rd.digest),
		})
		if p.cfg.CheckpointEvery > 0 && p.deliver%p.cfg.CheckpointEvery == 0 {
			p.emitCheckpoint(p.deliver)
		}
		p.deliver++
		progressed = true
	}
	if progressed {
		p.resetTimerAfterProgress()
		p.gcDelivered()
	}
	if p.IsPrimary() {
		p.maybeProposeBatch()
	}
}

// gcDelivered drops delivered per-round state older than the retention
// window (stable checkpoints GC more aggressively when enabled). The scan
// is amortized: it runs once every quarter-window of delivery progress.
func (p *Instance) gcDelivered() {
	if p.deliver <= p.cfg.RetainDelivered || p.deliver < p.nextGC {
		return
	}
	p.nextGC = p.deliver + p.cfg.RetainDelivered/4
	floor := p.deliver - p.cfg.RetainDelivered
	for r, rd := range p.rounds {
		if r < floor && rd.delivered {
			delete(p.rounds, r)
			delete(p.chainAt, r)
		}
	}
}

// Delivered returns the next round awaiting delivery (i.e. all rounds below
// have been delivered).
func (p *Instance) Delivered() types.Round { return p.deliver }

// markDelivered records delivered client sequence numbers and drops the
// corresponding queued requests, so backups stop waiting on them and no
// replica re-proposes them after a view change.
func (p *Instance) markDelivered(b *types.Batch) {
	if b == nil {
		return
	}
	for i := range b.Txns {
		tx := &b.Txns[i]
		if tx.IsNoOp() {
			continue
		}
		delete(p.pendingSet, txKey{tx.Client, tx.Seq})
		// Only delivery advances lastSeq: it must remain a pure function of
		// the delivered prefix (sync points serialize it).
		if tx.Seq > p.lastSeq[tx.Client] {
			p.lastSeq[tx.Client] = tx.Seq
		}
	}
	// Compact the queue only when at least half of it is stale: a scan per
	// delivered batch is O(backlog) and melts down under open-loop
	// overload; amortized compaction is O(1) per transaction.
	p.staleTxns += b.Len()
	if len(p.pending) == 0 || 2*p.staleTxns < len(p.pending) {
		return
	}
	p.staleTxns = 0
	kept := p.pending[:0]
	for i := range p.pending {
		tx := &p.pending[i]
		if _, live := p.pendingSet[txKey{tx.Client, tx.Seq}]; live && tx.Seq > p.seqFloor(tx.Client) {
			kept = append(kept, *tx)
		}
	}
	p.pending = kept
}

// emit records a flight event attributed to this replica and instance.
func (p *Instance) emit(kind flight.Kind, view types.View, seq, detail uint64) {
	p.cfg.Metrics.Emit(uint16(p.env.ID()), flight.SubPBFT, kind, uint32(p.cfg.Instance), uint64(view), seq, detail)
}

// suspect reports a detected primary failure.
func (p *Instance) suspect(rnd types.Round) {
	if met := p.cfg.Metrics; met != nil {
		met.Suspects.Inc()
	}
	p.emit(flight.KSuspect, p.view, uint64(rnd), 0)
	if p.cfg.FixedPrimary {
		p.env.Suspect(p.cfg.Instance, rnd)
		return
	}
	// A backup that cannot deliver may not be facing a dead primary at
	// all — it may simply be behind (restarted from a wiped or stale
	// disk while the cluster moved on). Kick state transfer alongside
	// the view change: if we are current it is a no-op probe; if we are
	// behind, healing the gap is what actually restores liveness (the
	// view change alone never can — no view has the history we lack).
	p.reportSyncGap()
	p.startViewChange(p.view + 1)
}

// OnTimer implements sm.Machine.
func (p *Instance) OnTimer(id sm.TimerID) {
	if p.halted {
		return
	}
	switch id.Kind {
	case sm.TimerProgress:
		p.timerArmed = false
		if p.outstandingWork() {
			p.suspect(p.deliver)
		}
	case sm.TimerBatch:
		if p.IsPrimary() && len(p.pending) > 0 && p.inFlight() < p.cfg.Window {
			if txns := p.takeBatch(p.cfg.BatchSize); len(txns) > 0 {
				p.Propose(&types.Batch{Txns: txns})
			}
		}
	case sm.TimerViewChange:
		if p.inViewChange {
			// The new primary failed to install the view in time.
			p.env.Logf("pbft[%d]: view %d timed out", p.cfg.Instance, p.view)
			p.startViewChange(p.view + 1)
		}
	}
}

// outstandingWork reports whether the replica is waiting on the primary.
func (p *Instance) outstandingWork() bool {
	if len(p.pending) > 0 && !p.IsPrimary() {
		return true
	}
	for r, rd := range p.rounds {
		if r >= p.deliver && r >= p.resumeFloor && rd.preprepared && !rd.committed {
			return true
		}
	}
	return false
}

func (p *Instance) armTimer() {
	if p.timerArmed || p.halted {
		return
	}
	p.timerArmed = true
	p.env.SetTimer(sm.TimerID{Instance: p.cfg.Instance, Kind: sm.TimerProgress}, p.cfg.ProgressTimeout)
}

func (p *Instance) resetTimerAfterProgress() {
	p.timerArmed = false
	p.env.CancelTimer(sm.TimerID{Instance: p.cfg.Instance, Kind: sm.TimerProgress})
	if p.outstandingWork() {
		p.armTimer()
	}
}

func (p *Instance) disarmTimer() {
	p.timerArmed = false
	p.env.CancelTimer(sm.TimerID{Instance: p.cfg.Instance, Kind: sm.TimerProgress})
}

// seqFloor is the per-client dedup floor: the highest sequence number known
// executed, whether delivered by this instance (lastSeq) or established
// externally through a state-transfer install (syncSeq).
func (p *Instance) seqFloor(c types.ClientID) uint64 {
	f := p.lastSeq[c]
	if s := p.syncSeq[c]; s > f {
		f = s
	}
	return f
}

// takeBatch pops up to max live transactions from the queue front, skipping
// entries already delivered elsewhere (their pendingSet entry is gone).
func (p *Instance) takeBatch(max int) []types.Transaction {
	out := make([]types.Transaction, 0, max)
	i := 0
	for ; i < len(p.pending) && len(out) < max; i++ {
		tx := p.pending[i]
		if _, live := p.pendingSet[txKey{tx.Client, tx.Seq}]; !live || tx.Seq <= p.seqFloor(tx.Client) {
			continue
		}
		out = append(out, tx)
	}
	p.pending = p.pending[i:]
	return out
}
