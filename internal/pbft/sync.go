package pbft

// Checkpoint-based state transfer (sm.StateSyncable): serialization and
// installation of the delivered frontier. A wiped or long-partitioned
// replica cannot use checkpoint catch-up — the bodies peers attach only
// reach back to their last stable checkpoint, not to genesis — so the
// statesync subsystem ships it the ledger itself and then installs the
// matching machine frontier through InstallSyncPoint.
//
// Two serializations share one wire format:
//
//   - SyncPoint() captures the live frontier, including the per-client
//     lastSeq dedup map. In standalone mode lastSeq is a pure function of
//     the delivered prefix, so replicas at the same frontier serialize
//     identically and the f+1 byte-identical offer quorum still forms.
//   - BoundarySyncPointAt(r) captures the frontier as it stood when
//     delivery crossed round r — the form attested at checkpoint
//     boundaries. Quorum-timing-dependent fields (view, stableCkp,
//     lastSeq — which in RCC mode advances at inner delivery, ahead of
//     the wave frontier) are omitted; the composite dedup state travels
//     at the RCC level instead and is pushed back down through
//     MergeDeliveredSeqs at install.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/types"
)

// syncPointV1 tags the PBFT frontier serialization.
const syncPointV1 = 1

// syncPointLen is the fixed prefix size: version, view, deliver, stableCkp,
// chain digest. A v1 sync point is either exactly this long (legacy, no
// dedup map) or extends it with a u32 count and count (client u32, seq u64)
// pairs sorted by client.
const syncPointLen = 1 + 8 + 8 + 8 + 32

// SyncPoint implements sm.StateSyncable: the delivered frontier, the
// checkpoint chain value it carries, the view, and the per-client dedup
// map — everything a peer needs to resume participation exactly where this
// replica stands without re-proposing delivered requests. Deterministic:
// replicas with identical frontiers serialize identically.
func (p *Instance) SyncPoint() []byte {
	buf := make([]byte, 0, syncPointLen+4+12*len(p.lastSeq))
	buf = append(buf, syncPointV1)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.view))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.deliver))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.stableCkp))
	buf = append(buf, p.chain[:]...)
	return appendSeqMap(buf, p.lastSeq)
}

// appendSeqMap appends a u32 count plus sorted (client u32, seq u64) pairs.
func appendSeqMap(buf []byte, m map[types.ClientID]uint64) []byte {
	clients := make([]types.ClientID, 0, len(m))
	for c := range m {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(clients)))
	for _, c := range clients {
		buf = binary.BigEndian.AppendUint32(buf, uint32(c))
		buf = binary.BigEndian.AppendUint64(buf, m[c])
	}
	return buf
}

// parseSeqMap parses the suffix appendSeqMap wrote. The count is bounded by
// the remaining bytes, so a hostile count cannot force a huge allocation.
func parseSeqMap(b []byte) (map[types.ClientID]uint64, error) {
	if len(b) == 0 {
		return nil, nil // legacy fixed-length form
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("pbft: truncated sync point dedup map")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) != 12*n {
		return nil, fmt.Errorf("pbft: sync point dedup map length mismatch")
	}
	m := make(map[types.ClientID]uint64, n)
	for i := 0; i < n; i++ {
		c := types.ClientID(binary.BigEndian.Uint32(b[12*i:]))
		m[c] = binary.BigEndian.Uint64(b[12*i+4:])
	}
	return m, nil
}

// ValidateSyncPoint implements sm.StateSyncable: format check only, no
// mutation.
func (p *Instance) ValidateSyncPoint(data []byte) error {
	if len(data) < syncPointLen || data[0] != syncPointV1 {
		return fmt.Errorf("pbft: malformed sync point (%d bytes)", len(data))
	}
	if _, err := parseSeqMap(data[syncPointLen:]); err != nil {
		return err
	}
	return nil
}

// InstallSyncPoint implements sm.StateSyncable: jump the delivered frontier
// to an attested install point. Rounds below it were installed through the
// ledger; rounds at or above it keep whatever votes and commits accumulated
// while the transfer ran and deliver in order from here. Advisory fields
// (view, stableCkp, dedup map) max-merge: a boundary-attested point carries
// conservative zeros for them, and an install must never regress state the
// replica accumulated on its own.
func (p *Instance) InstallSyncPoint(data []byte) error {
	if err := p.ValidateSyncPoint(data); err != nil {
		return err
	}
	view := types.View(binary.BigEndian.Uint64(data[1:]))
	deliver := types.Round(binary.BigEndian.Uint64(data[9:]))
	stable := types.Round(binary.BigEndian.Uint64(data[17:]))
	var chain types.Digest
	copy(chain[:], data[25:])
	seqs, _ := parseSeqMap(data[syncPointLen:]) // validated above

	// The blob's dedup map is the SOURCE's delivery-derived lastSeq, a pure
	// function of the frontier being installed — it belongs in lastSeq (the
	// serialized map), keeping installed replicas byte-identical with
	// organic ones. Merged even when the frontier brings nothing new: it
	// only ever prevents re-proposing delivered requests.
	for c, s := range seqs {
		if s > p.lastSeq[c] {
			p.lastSeq[c] = s
		}
	}

	if deliver <= p.deliver {
		return nil // already at or past the install point
	}
	if view > p.view {
		p.view = view
		p.inViewChange = false
	}
	p.deliver = deliver
	if p.next < deliver {
		p.next = deliver
	}
	// Everything below the frontier is settled elsewhere; refuse late
	// traffic for it exactly like a post-recovery resume does.
	if deliver > p.resumeFloor {
		p.resumeFloor = deliver
	}
	if stable > p.stableCkp {
		p.stableCkp = stable
	}
	p.chain = chain
	p.chainAt = map[types.Round]types.Digest{deliver - 1: chain}
	for r := range p.rounds {
		if r < deliver {
			delete(p.rounds, r)
		}
	}
	for r := range p.ckpVotes {
		if r < deliver {
			delete(p.ckpVotes, r)
			delete(p.ckpBodies, r)
		}
	}
	p.halted = false
	// Rounds decided while the transfer ran may already be committed in
	// p.rounds: deliver them now that the frontier reaches them.
	p.tryDeliver()
	return nil
}

// BoundarySyncPointAt serializes the frontier as it stood when delivery
// crossed round frontier (all rounds below delivered or voided): the form
// every correct replica serializes byte-identically at a checkpoint
// boundary regardless of how far its live state has run ahead. Returns nil
// when the chain value at the boundary is no longer retained (GC'd past);
// callers skip attestation for that boundary.
func (p *Instance) BoundarySyncPointAt(frontier types.Round) []byte {
	var chain types.Digest
	if frontier > 1 {
		c, ok := p.chainAt[frontier-1]
		if !ok {
			return nil
		}
		chain = c
	}
	buf := make([]byte, 0, syncPointLen+4)
	buf = append(buf, syncPointV1)
	buf = binary.BigEndian.AppendUint64(buf, 0) // view: quorum-timing dependent
	buf = binary.BigEndian.AppendUint64(buf, uint64(frontier))
	buf = binary.BigEndian.AppendUint64(buf, 0) // stableCkp: quorum-timing dependent
	buf = append(buf, chain[:]...)
	return binary.BigEndian.AppendUint32(buf, 0) // dedup map travels at the RCC level
}

// MergeDeliveredSeqs folds externally established per-client delivered
// sequence numbers into the dedup floor (max-merge). RCC pushes its
// composite delivery frontier down through this after a state-transfer
// install, so a synced replica that becomes primary does not re-propose
// delivered requests on client retransmit. The floors land in syncSeq, NOT
// lastSeq: they cover deliveries from OTHER instances, so folding them into
// the serialized map would make this instance's sync point differ from
// organically-progressed replicas at the same frontier.
func (p *Instance) MergeDeliveredSeqs(seqs map[types.ClientID]uint64) {
	for c, s := range seqs {
		if s > p.syncSeq[c] {
			p.syncSeq[c] = s
		}
	}
}

// reportSyncGap asks the runtime for a state transfer when in-protocol
// catch-up cannot bridge a certified gap (sm.StateSyncRequester; runtimes
// without the capability ignore the report).
func (p *Instance) reportSyncGap() {
	if req, ok := p.env.(interface{ RequestStateSync() }); ok {
		req.RequestStateSync()
	}
}
