package pbft

// Checkpoint-based state transfer (sm.StateSyncable): serialization and
// installation of the delivered frontier. A wiped or long-partitioned
// replica cannot use checkpoint catch-up — the bodies peers attach only
// reach back to their last stable checkpoint, not to genesis — so the
// statesync subsystem ships it the ledger itself and then installs the
// matching machine frontier through InstallSyncPoint.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// syncPointV1 tags the PBFT frontier serialization.
const syncPointV1 = 1

// syncPointLen is the fixed encoded size: version, view, deliver,
// stableCkp, chain digest.
const syncPointLen = 1 + 8 + 8 + 8 + 32

// SyncPoint implements sm.StateSyncable: the delivered frontier, the
// checkpoint chain value it carries, and the view — everything a peer needs
// to resume participation exactly where this replica stands. Deterministic:
// replicas with identical frontiers serialize identically.
func (p *Instance) SyncPoint() []byte {
	buf := make([]byte, 0, syncPointLen)
	buf = append(buf, syncPointV1)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.view))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.deliver))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.stableCkp))
	return append(buf, p.chain[:]...)
}

// ValidateSyncPoint implements sm.StateSyncable: format check only, no
// mutation.
func (p *Instance) ValidateSyncPoint(data []byte) error {
	if len(data) != syncPointLen || data[0] != syncPointV1 {
		return fmt.Errorf("pbft: malformed sync point (%d bytes)", len(data))
	}
	return nil
}

// InstallSyncPoint implements sm.StateSyncable: jump the delivered frontier
// to an attested install point. Rounds below it were installed through the
// ledger; rounds at or above it keep whatever votes and commits accumulated
// while the transfer ran and deliver in order from here.
func (p *Instance) InstallSyncPoint(data []byte) error {
	if err := p.ValidateSyncPoint(data); err != nil {
		return err
	}
	view := types.View(binary.BigEndian.Uint64(data[1:]))
	deliver := types.Round(binary.BigEndian.Uint64(data[9:]))
	stable := types.Round(binary.BigEndian.Uint64(data[17:]))
	var chain types.Digest
	copy(chain[:], data[25:])

	if deliver <= p.deliver {
		return nil // already at or past the install point
	}
	p.view = view
	p.inViewChange = false
	p.deliver = deliver
	if p.next < deliver {
		p.next = deliver
	}
	// Everything below the frontier is settled elsewhere; refuse late
	// traffic for it exactly like a post-recovery resume does.
	if deliver > p.resumeFloor {
		p.resumeFloor = deliver
	}
	p.stableCkp = stable
	p.chain = chain
	p.chainAt = map[types.Round]types.Digest{deliver - 1: chain}
	for r := range p.rounds {
		if r < deliver {
			delete(p.rounds, r)
		}
	}
	for r := range p.ckpVotes {
		if r < deliver {
			delete(p.ckpVotes, r)
			delete(p.ckpBodies, r)
		}
	}
	p.halted = false
	// Rounds decided while the transfer ran may already be committed in
	// p.rounds: deliver them now that the frontier reaches them.
	p.tryDeliver()
	return nil
}

// reportSyncGap asks the runtime for a state transfer when in-protocol
// catch-up cannot bridge a certified gap (sm.StateSyncRequester; runtimes
// without the capability ignore the report).
func (p *Instance) reportSyncGap() {
	if req, ok := p.env.(interface{ RequestStateSync() }); ok {
		req.RequestStateSync()
	}
}
