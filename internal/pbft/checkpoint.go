package pbft

import (
	"encoding/binary"

	"repro/internal/obs/flight"
	"repro/internal/sm"
	"repro/internal/types"
)

// Checkpoints (§III-A "Recovery"): replicas periodically exchange state
// digests; nf matching digests form a stable checkpoint, which both
// garbage-collects old rounds and lets in-the-dark replicas (replicas a
// faulty primary kept out of up to f proposals, Assumption A1) learn the
// accepted proposals without the primary's help.
//
// The checkpoint digest is an incremental hash chain over delivered
// proposal digests: chain_r = H(chain_{r-1} ‖ digest_r). A quorum on
// chain_r therefore certifies the entire delivered prefix; a lagging
// replica adopts missing batches from any checkpoint body whose contents
// extend its local chain to the certified value.

// chainStep extends a checkpoint chain by one round digest.
func chainStep(prev, d types.Digest) types.Digest {
	buf := make([]byte, 0, 64)
	buf = append(buf, prev[:]...)
	buf = append(buf, d[:]...)
	return types.Hash(buf)
}

// voidRangeDigest is the chain contribution of the agreed-void round range
// [from, to). All replicas apply identical ranges (they are derived from a
// consensus decision on stop(i;E)), so one step per range keeps the chains
// consistent while costing O(1) regardless of the range width.
func voidRangeDigest(from, to types.Round) types.Digest {
	var buf [17]byte
	buf[0] = 0xFD // tag distinguishing range steps from round digests
	binary.BigEndian.PutUint64(buf[1:], uint64(from))
	binary.BigEndian.PutUint64(buf[9:], uint64(to))
	return types.Hash(buf[:])
}

// emitCheckpoint broadcasts this replica's checkpoint at delivered round r,
// attaching the proposals since the previous stable checkpoint so lagging
// replicas can catch up.
func (p *Instance) emitCheckpoint(r types.Round) {
	chain, ok := p.chainAt[r]
	if !ok {
		return // r not delivered locally
	}
	props := make([]types.AcceptedProposal, 0, int(r-p.stableCkp))
	for q := p.stableCkp + 1; q <= r; q++ {
		if rd, ok := p.rounds[q]; ok && rd.committed && rd.batch != nil {
			props = append(props, types.AcceptedProposal{
				Round: q, View: rd.view, Digest: rd.digest, Batch: rd.batch,
			})
		}
	}
	ckp := &types.Checkpoint{
		Replica:   p.env.ID(),
		Round:     r,
		State:     chain,
		Proposals: props,
	}
	ckp.Inst = p.cfg.Instance
	p.env.Broadcast(ckp)
}

// ForceCheckpoint triggers an out-of-schedule checkpoint exchange at the
// highest delivered round. RCC uses this for its dynamic per-need
// checkpoints (§III-D).
func (p *Instance) ForceCheckpoint() {
	if p.deliver > 1 {
		p.emitCheckpoint(p.deliver - 1)
	}
}

func (p *Instance) onCheckpoint(m *types.Checkpoint) {
	votes, ok := p.ckpVotes[m.Round]
	if !ok {
		votes = make(map[types.Digest]map[types.ReplicaID]struct{})
		p.ckpVotes[m.Round] = votes
	}
	n := addVote(votes, m.State, m.Replica)
	bodies, ok := p.ckpBodies[m.Round]
	if !ok {
		bodies = make(map[types.ReplicaID][]types.AcceptedProposal)
		p.ckpBodies[m.Round] = bodies
	}
	if len(m.Proposals) > 0 {
		bodies[m.Replica] = m.Proposals
	}
	if m.Round <= p.stableCkp {
		return
	}
	// f+1 matching digests form a weak certificate: at least one honest
	// replica vouches for the prefix, which is enough for a lagging
	// replica to adopt the contents (PBFT's state-transfer rule).
	if n >= p.env.Params().FaultDetection() {
		p.adoptFromCheckpoint(m.Round, m.State)
		if _, bridged := p.chainAt[m.Round]; !bridged && m.Round >= p.deliver {
			// A certified prefix this replica cannot reach from any body
			// it holds: the gap predates what checkpoints carry (wiped
			// disk, long partition). Only a ledger-level state transfer
			// can close it.
			p.reportSyncGap()
		}
	}
	// nf matching digests make the checkpoint stable (garbage collection).
	if n >= p.env.Params().NF() {
		if chain, ok := p.chainAt[m.Round]; ok && chain == m.State {
			p.stableCkp = m.Round
			p.gcBelow(m.Round)
		}
	}
}

// adoptFromCheckpoint lets an in-the-dark replica adopt the proposals it is
// missing below certified round r. Adoption is all-or-nothing per body: the
// candidate contents must extend the local chain exactly to the certified
// digest.
func (p *Instance) adoptFromCheckpoint(r types.Round, state types.Digest) {
	if _, ok := p.chainAt[r]; ok {
		return // already delivered through r
	}
	for _, props := range p.ckpBodies[r] {
		byRound := make(map[types.Round]*types.AcceptedProposal, len(props))
		valid := true
		for i := range props {
			ap := &props[i]
			if ap.Batch == nil || ap.Batch.Digest() != ap.Digest {
				valid = false
				break
			}
			byRound[ap.Round] = ap
		}
		if !valid {
			continue
		}
		// Walk the chain forward from the local delivery frontier.
		cur := p.chain
		complete := true
		for q := p.deliver; q <= r; q++ {
			var d types.Digest
			if rd, ok := p.rounds[q]; ok && rd.committed {
				d = rd.digest
			} else if ap, ok := byRound[q]; ok {
				d = ap.Digest
			} else {
				complete = false
				break
			}
			cur = chainStep(cur, d)
		}
		if !complete || cur != state {
			continue
		}
		// Certified: adopt every missing round.
		p.emit(flight.KCheckpointAdopt, p.view, uint64(r), 0)
		for q := p.deliver; q <= r; q++ {
			if rd, ok := p.rounds[q]; ok && rd.committed {
				continue
			}
			ap := byRound[q]
			p.AdoptDecision(sm.Decision{
				Instance: p.cfg.Instance,
				Round:    ap.Round,
				View:     ap.View,
				Digest:   ap.Digest,
				Batch:    ap.Batch,
			})
		}
		p.tryDeliver()
		return
	}
}

// gcBelow drops per-round state at or below the stable checkpoint.
func (p *Instance) gcBelow(r types.Round) {
	for q, rd := range p.rounds {
		if q <= r && rd.delivered {
			delete(p.rounds, q)
		}
	}
	for q := range p.chainAt {
		if q < r {
			delete(p.chainAt, q)
		}
	}
	for q := range p.ckpVotes {
		if q < r {
			delete(p.ckpVotes, q)
			delete(p.ckpBodies, q)
		}
	}
}

// StableCheckpoint returns the round of the latest stable checkpoint.
func (p *Instance) StableCheckpoint() types.Round { return p.stableCkp }
