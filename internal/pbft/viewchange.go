package pbft

import (
	"sort"

	"repro/internal/obs/flight"
	"repro/internal/sm"
	"repro/internal/types"
)

// View changes (§III-A "Primary replacement", standalone mode only): when a
// replica detects failure of the primary of view v it broadcasts a
// VIEW-CHANGE for v+1 carrying its prepared proposals. The primary of view
// v+1 collects nf such messages, computes the proposals that must be
// re-proposed (for every round, the prepared proposal with the highest view,
// or a no-op when no replica prepared anything), and broadcasts NEW-VIEW.
// Replicas validate the NEW-VIEW against the same rule and resume the
// commit phases in the new view.
//
// Under RCC, view changes are disabled (Config.FixedPrimary): detectable
// failures run the wait-free recovery protocol of internal/rcc instead.

// ForceViewChange starts a view change toward the next view. RCC uses it to
// replace a coordinating-consensus leader that fails to propose a pending
// stop operation in time. A no-op while a view change is already running —
// the view-change timer escalates stuck changes on its own.
func (p *Instance) ForceViewChange() {
	if !p.inViewChange {
		p.startViewChange(p.view + 1)
	}
}

// startViewChange moves the replica into the view-change sub-protocol for
// view nv.
func (p *Instance) startViewChange(nv types.View) {
	if p.cfg.FixedPrimary || nv <= p.view {
		return
	}
	p.inViewChange = true
	p.view = nv
	p.disarmTimer()
	p.env.Logf("pbft[%d]: view change -> %d (primary %d)", p.cfg.Instance, nv, p.primaryOf(nv))
	p.emit(flight.KViewChangeStart, nv, uint64(p.deliver), 0)

	vc := &types.ViewChange{
		Replica:   p.env.ID(),
		NewView:   nv,
		StableCkp: p.stableCkp,
		Prepared:  p.preparedProposals(),
	}
	vc.Inst = p.cfg.Instance
	p.env.Broadcast(vc)
	// If the new primary stalls, move to the next view, backing off
	// exponentially so drifting replicas get time to re-synchronize.
	if p.vcBackoff <= 0 {
		p.vcBackoff = 2 * p.cfg.ProgressTimeout
	} else if p.vcBackoff < 16*p.cfg.ProgressTimeout {
		p.vcBackoff *= 2
	}
	p.env.SetTimer(sm.TimerID{Instance: p.cfg.Instance, Kind: sm.TimerViewChange}, p.vcBackoff)
}

// preparedProposals returns, for every round above the stable checkpoint,
// the locally prepared (or committed) proposal.
func (p *Instance) preparedProposals() []types.AcceptedProposal {
	out := make([]types.AcceptedProposal, 0, len(p.rounds))
	for r, rd := range p.rounds {
		if r <= p.stableCkp || rd.batch == nil {
			continue
		}
		if rd.prepared || rd.committed {
			out = append(out, types.AcceptedProposal{
				Round: r, View: rd.view, Digest: rd.digest,
				Batch: rd.batch, Prepared: true,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

func (p *Instance) onViewChange(m *types.ViewChange) {
	if p.cfg.FixedPrimary || m.NewView < p.view {
		return
	}
	views, ok := p.vcVotes[m.NewView]
	if !ok {
		views = make(map[types.ReplicaID]*types.ViewChange)
		p.vcVotes[m.NewView] = views
	}
	views[m.Replica] = m
	if p.vcAnnounced == nil {
		p.vcAnnounced = make(map[types.ReplicaID]types.View)
	}
	if m.NewView > p.vcAnnounced[m.Replica] {
		p.vcAnnounced[m.Replica] = m.NewView
	}

	// View synchronization: replicas time out independently, so their
	// target views drift apart and naive per-view vote counting never
	// accumulates a quorum. The standard rule re-synchronizes them: once
	// f+1 distinct replicas announce views above ours (one of them is
	// honest), jump to the SMALLEST announced view above ours, so all
	// honest replicas converge on the same target.
	if m.NewView > p.view {
		count := 0
		minAbove := m.NewView
		for _, v := range p.vcAnnounced {
			if v > p.view {
				count++
				if v < minAbove {
					minAbove = v
				}
			}
		}
		if count >= p.env.Params().FaultDetection() {
			p.startViewChange(minAbove)
		}
	}

	// The new primary assembles NEW-VIEW from nf view-change messages.
	if p.primaryOf(m.NewView) == p.env.ID() && len(views) >= p.env.Params().NF() && p.view == m.NewView && p.inViewChange {
		p.sendNewView(m.NewView, views)
	}
}

// sendNewView computes and broadcasts the NEW-VIEW message.
func (p *Instance) sendNewView(nv types.View, votes map[types.ReplicaID]*types.ViewChange) {
	best := make(map[types.Round]types.AcceptedProposal)
	var maxRound types.Round
	for _, vc := range votes {
		for _, ap := range vc.Prepared {
			if ap.Batch == nil || ap.Batch.Digest() != ap.Digest {
				continue
			}
			cur, ok := best[ap.Round]
			if !ok || ap.View > cur.View {
				best[ap.Round] = ap
			}
			if ap.Round > maxRound {
				maxRound = ap.Round
			}
		}
	}
	// Fill gaps with no-ops so rounds stay dense.
	re := make([]types.AcceptedProposal, 0, len(best))
	for r := p.stableCkp + 1; r <= maxRound; r++ {
		ap, ok := best[r]
		if !ok {
			b := types.NoOpBatch()
			ap = types.AcceptedProposal{Round: r, View: nv, Digest: b.Digest(), Batch: b}
		}
		ap.View = nv
		re = append(re, ap)
	}
	signers := make([]types.ReplicaID, 0, len(votes))
	for r := range votes {
		signers = append(signers, r)
	}
	sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
	nvm := &types.NewView{Replica: p.env.ID(), NewView: nv, ViewProofs: signers, Reproposed: re}
	nvm.Inst = p.cfg.Instance
	p.env.Broadcast(nvm)
}

func (p *Instance) onNewView(from types.ReplicaID, m *types.NewView) {
	if p.cfg.FixedPrimary || m.NewView < p.view || from != p.primaryOf(m.NewView) {
		return
	}
	if len(m.ViewProofs) < p.env.Params().NF() {
		return
	}
	// Adopt the new view.
	p.env.Logf("pbft[%d]: new view %d installed (%d reproposals)", p.cfg.Instance, m.NewView, len(m.Reproposed))
	p.view = m.NewView
	p.inViewChange = false
	p.vcBackoff = 0
	p.env.CancelTimer(sm.TimerID{Instance: p.cfg.Instance, Kind: sm.TimerViewChange})

	var maxRound types.Round
	for i := range m.Reproposed {
		ap := &m.Reproposed[i]
		if ap.Batch == nil || ap.Batch.Digest() != ap.Digest {
			continue
		}
		if ap.Round > maxRound {
			maxRound = ap.Round
		}
		rd := p.getRound(ap.Round)
		if rd.committed {
			continue
		}
		// Treat the re-proposal as a preprepare in the new view and
		// restart the vote phases.
		rd.view = m.NewView
		rd.digest = ap.Digest
		rd.batch = ap.Batch
		rd.preprepared = true
		rd.prepared = false
		rd.sentPrepare = true
		rd.sentCommit = false
		rd.prepares = make(map[types.Digest]map[types.ReplicaID]struct{})
		rd.commits = make(map[types.Digest]map[types.ReplicaID]struct{})
		p.env.Broadcast(types.NewPrepare(p.cfg.Instance, p.env.ID(), m.NewView, ap.Round, ap.Digest))
		p.tallyPrepare(ap.Round, rd, from, ap.Digest)
	}
	if maxRound >= p.next {
		p.next = maxRound + 1
	}
	p.armTimer()
	// The new primary resumes proposing queued requests.
	if p.IsPrimary() {
		p.maybeProposeBatch()
	}
	if met := p.cfg.Metrics; met != nil {
		met.ViewChanges.Inc()
	}
	p.emit(flight.KViewChangeDone, m.NewView, uint64(p.deliver), uint64(len(m.Reproposed)))
	if p.viewInstalled != nil {
		p.viewInstalled(m.NewView)
	}
}

// SetViewInstalledHook registers a callback invoked after every adopted
// NEW-VIEW.
func (p *Instance) SetViewInstalledHook(f func(types.View)) { p.viewInstalled = f }
