package pbft

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

// cluster builds an n-replica simnet with one standalone PBFT instance per
// replica.
func cluster(t *testing.T, n int, cfg Config, netcfg simnet.Config) (*simnet.Network, []*Instance) {
	t.Helper()
	netcfg.N = n
	if netcfg.Latency == 0 {
		netcfg.Latency = time.Millisecond
	}
	net, err := simnet.New(netcfg)
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	insts := make([]*Instance, n)
	for i := 0; i < n; i++ {
		insts[i] = New(cfg)
		net.SetMachine(types.ReplicaID(i), insts[i])
	}
	net.Start()
	return net, insts
}

// inject delivers a client request to every replica (client broadcast).
func inject(net *simnet.Network, n int, tx types.Transaction) {
	req := types.NewClientRequest(0, tx)
	for i := 0; i < n; i++ {
		node := net.Node(types.ReplicaID(i))
		net.Schedule(net.Now(), func() {
			if node.Machine() != nil {
				node.Machine().OnMessage(sm.FromClient(tx.Client), req)
			}
		})
	}
}

func mkTx(c types.ClientID, seq uint64) types.Transaction {
	return types.Transaction{Client: c, Seq: seq, Op: []byte(fmt.Sprintf("op-%d-%d", c, seq))}
}

func TestHappyPathAllReplicasDeliver(t *testing.T) {
	n := 4
	net, _ := cluster(t, n, Config{BatchSize: 2}, simnet.Config{})
	inject(net, n, mkTx(1, 1))
	inject(net, n, mkTx(1, 2))
	net.Run(time.Second)

	var want sm.Decision
	for i := 0; i < n; i++ {
		ds := net.Node(types.ReplicaID(i)).Decisions()
		if len(ds) != 1 {
			t.Fatalf("replica %d delivered %d decisions, want 1", i, len(ds))
		}
		if i == 0 {
			want = ds[0]
			if want.Batch.Len() != 2 {
				t.Fatalf("batch size = %d, want 2", want.Batch.Len())
			}
			continue
		}
		if ds[0].Digest != want.Digest || ds[0].Round != want.Round {
			t.Fatalf("replica %d decided (%v,%v), want (%v,%v)",
				i, ds[0].Round, ds[0].Digest, want.Round, want.Digest)
		}
	}
}

func TestManyRoundsDeliverInOrder(t *testing.T) {
	n := 4
	rounds := 20
	net, _ := cluster(t, n, Config{BatchSize: 1, Window: 8}, simnet.Config{Jitter: 3 * time.Millisecond, Seed: 7})
	for s := 1; s <= rounds; s++ {
		inject(net, n, mkTx(1, uint64(s)))
	}
	net.Run(5 * time.Second)
	for i := 0; i < n; i++ {
		ds := net.Node(types.ReplicaID(i)).Decisions()
		if len(ds) != rounds {
			t.Fatalf("replica %d delivered %d decisions, want %d", i, len(ds), rounds)
		}
		for j, d := range ds {
			if d.Round != types.Round(j+1) {
				t.Fatalf("replica %d decision %d has round %d, want in-order %d", i, j, d.Round, j+1)
			}
		}
	}
	// All replicas must agree on the digests round by round.
	ref := net.Node(0).Decisions()
	for i := 1; i < n; i++ {
		for j, d := range net.Node(types.ReplicaID(i)).Decisions() {
			if d.Digest != ref[j].Digest {
				t.Fatalf("replica %d round %d digest diverges", i, j+1)
			}
		}
	}
}

func TestOutOfOrderWindowLimitsInFlight(t *testing.T) {
	n := 4
	net, insts := cluster(t, n, Config{BatchSize: 1, Window: 2}, simnet.Config{})
	// Propose directly on the primary: only Window proposals may start
	// before commits come back.
	ok1 := insts[0].Propose(&types.Batch{Txns: []types.Transaction{mkTx(1, 1)}})
	ok2 := insts[0].Propose(&types.Batch{Txns: []types.Transaction{mkTx(1, 2)}})
	ok3 := insts[0].Propose(&types.Batch{Txns: []types.Transaction{mkTx(1, 3)}})
	if !ok1 || !ok2 {
		t.Fatalf("first two proposals should be admitted, got %v %v", ok1, ok2)
	}
	if ok3 {
		t.Fatalf("third proposal admitted despite window=2")
	}
	net.Run(time.Second)
	if got := len(net.Node(0).Decisions()); got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
	// After commits, the window reopens.
	if !insts[0].Propose(&types.Batch{Txns: []types.Transaction{mkTx(1, 3)}}) {
		t.Fatalf("window did not reopen after commit")
	}
}

func TestNonPrimaryCannotPropose(t *testing.T) {
	_, insts := cluster(t, 4, Config{}, simnet.Config{})
	if insts[1].Propose(types.NoOpBatch()) {
		t.Fatalf("backup replica proposed")
	}
}

func TestViewChangeReplacesCrashedPrimary(t *testing.T) {
	n := 4
	net, insts := cluster(t, n, Config{BatchSize: 1, ProgressTimeout: 100 * time.Millisecond}, simnet.Config{})
	// One committed round first.
	inject(net, n, mkTx(1, 1))
	net.Run(time.Second)
	// Crash the primary, then submit another request.
	net.Crash(0)
	inject(net, n, mkTx(1, 2))
	net.Run(10 * time.Second)

	for i := 1; i < n; i++ {
		if insts[i].View() == 0 {
			t.Fatalf("replica %d never changed view", i)
		}
		ds := net.Node(types.ReplicaID(i)).Decisions()
		if len(ds) < 2 {
			t.Fatalf("replica %d delivered %d decisions after view change, want >= 2", i, len(ds))
		}
		found := false
		for _, d := range ds {
			if d.Batch != nil {
				for _, tx := range d.Batch.Txns {
					if tx.Client == 1 && tx.Seq == 2 {
						found = true
					}
				}
			}
		}
		if !found {
			t.Fatalf("replica %d never delivered the request submitted after the crash", i)
		}
	}
}

func TestViewChangePreservesPreparedProposal(t *testing.T) {
	n := 4
	// Drop all COMMIT messages from the primary and then crash it after
	// the proposal prepared: the view change must re-propose it.
	blockCommits := true
	netcfg := simnet.Config{
		Drop: func(from, to types.ReplicaID, m types.Message) bool {
			return blockCommits && from == 0 && m.Type() == types.MsgCommit
		},
	}
	net, _ := cluster(t, n, Config{BatchSize: 1, ProgressTimeout: 100 * time.Millisecond}, netcfg)
	inject(net, n, mkTx(7, 1))
	net.Run(200 * time.Millisecond)
	net.Crash(0)
	net.Run(10 * time.Second)

	for i := 1; i < n; i++ {
		ds := net.Node(types.ReplicaID(i)).Decisions()
		found := false
		for _, d := range ds {
			if d.Batch == nil {
				continue
			}
			for _, tx := range d.Batch.Txns {
				if tx.Client == 7 && tx.Seq == 1 {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("replica %d lost the prepared proposal across the view change", i)
		}
	}
}

func TestFixedPrimarySuspectsInsteadOfViewChange(t *testing.T) {
	n := 4
	net, insts := cluster(t, n, Config{
		FixedPrimary:    true,
		BatchSize:       1,
		ProgressTimeout: 50 * time.Millisecond,
	}, simnet.Config{})
	net.Crash(0)
	inject(net, n, mkTx(1, 1))
	net.Run(2 * time.Second)
	for i := 1; i < n; i++ {
		if insts[i].View() != 0 {
			t.Fatalf("replica %d changed view in fixed-primary mode", i)
		}
		if len(net.Node(types.ReplicaID(i)).Suspicions()) == 0 {
			t.Fatalf("replica %d never suspected the crashed primary", i)
		}
	}
}

func TestEquivocationTriggersSuspicion(t *testing.T) {
	n := 4
	net, insts := cluster(t, n, Config{FixedPrimary: true, BatchSize: 1}, simnet.Config{})
	// Byzantine primary: send conflicting preprepares for round 1.
	b1 := &types.Batch{Txns: []types.Transaction{mkTx(1, 1)}}
	b2 := &types.Batch{Txns: []types.Transaction{mkTx(2, 9)}}
	pp1 := &types.PrePrepare{View: 0, Round: 1, Digest: b1.Digest(), Batch: b1}
	pp2 := &types.PrePrepare{View: 0, Round: 1, Digest: b2.Digest(), Batch: b2}
	net.Schedule(0, func() {
		insts[1].OnMessage(sm.FromReplica(0), pp1)
		insts[1].OnMessage(sm.FromReplica(0), pp2)
	})
	net.Run(time.Second)
	if len(net.Node(1).Suspicions()) == 0 {
		t.Fatalf("equivocation not detected")
	}
}

func TestInTheDarkReplicaCatchesUpViaCheckpoint(t *testing.T) {
	n := 4
	dark := true
	netcfg := simnet.Config{
		// Primary keeps replica 3 in the dark: it never receives
		// proposals, but f=1 faulty "cover" means no view change
		// is triggered here (we simply don't crash anyone).
		Drop: func(from, to types.ReplicaID, m types.Message) bool {
			return dark && to == 3 && m.Type() == types.MsgPrePrepare
		},
	}
	net, _ := cluster(t, n, Config{
		BatchSize:       1,
		Window:          8,
		CheckpointEvery: 4,
		// Long timeout: the dark replica should recover via
		// checkpoints, not via a view change.
		ProgressTimeout: time.Hour,
	}, netcfg)
	for s := 1; s <= 8; s++ {
		inject(net, n, mkTx(1, uint64(s)))
	}
	net.Run(5 * time.Second)

	ds := net.Node(3).Decisions()
	if len(ds) < 8 {
		t.Fatalf("in-the-dark replica delivered %d decisions, want 8 via checkpoint catch-up", len(ds))
	}
	ref := net.Node(0).Decisions()
	for i := range ds[:8] {
		if ds[i].Digest != ref[i].Digest {
			t.Fatalf("catch-up decision %d diverges from the quorum", i)
		}
	}
}

func TestCheckpointGarbageCollects(t *testing.T) {
	n := 4
	net, insts := cluster(t, n, Config{BatchSize: 1, Window: 8, CheckpointEvery: 4}, simnet.Config{})
	for s := 1; s <= 12; s++ {
		inject(net, n, mkTx(1, uint64(s)))
	}
	net.Run(5 * time.Second)
	for i := 0; i < n; i++ {
		if got := insts[i].StableCheckpoint(); got < 8 {
			t.Fatalf("replica %d stable checkpoint = %d, want >= 8", i, got)
		}
		if len(insts[i].rounds) > 8 {
			t.Fatalf("replica %d retains %d rounds after GC", i, len(insts[i].rounds))
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		n := 4
		net, _ := cluster(t, n, Config{BatchSize: 1, Window: 4},
			simnet.Config{Jitter: 2 * time.Millisecond, Seed: 42})
		for s := 1; s <= 10; s++ {
			inject(net, n, mkTx(1, uint64(s)))
		}
		net.Run(5 * time.Second)
		return net.MessagesSent(), net.BytesSent()
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", m1, b1, m2, b2)
	}
}

func TestAdoptDecisionIdempotent(t *testing.T) {
	_, insts := cluster(t, 4, Config{}, simnet.Config{})
	b := &types.Batch{Txns: []types.Transaction{mkTx(1, 1)}}
	d := sm.Decision{Instance: 0, Round: 1, Digest: b.Digest(), Batch: b}
	insts[1].AdoptDecision(d)
	insts[1].AdoptDecision(d)
	if last, ok := insts[1].LastAccepted(); !ok || last != 1 {
		t.Fatalf("LastAccepted = (%d,%v), want (1,true)", last, ok)
	}
	if insts[1].NextProposeRound() != 2 {
		t.Fatalf("NextProposeRound = %d, want 2", insts[1].NextProposeRound())
	}
}

func TestHaltStopsParticipation(t *testing.T) {
	n := 4
	net, insts := cluster(t, n, Config{FixedPrimary: true, BatchSize: 1}, simnet.Config{})
	insts[1].Halt()
	if !insts[1].Halted() {
		t.Fatalf("Halted() = false after Halt")
	}
	inject(net, n, mkTx(1, 1))
	net.Run(time.Second)
	if len(net.Node(1).Decisions()) != 0 {
		t.Fatalf("halted replica delivered a decision")
	}
	// Remaining nf=3 replicas still commit (quorum still reachable).
	if len(net.Node(2).Decisions()) != 1 {
		t.Fatalf("live replicas failed to commit with one halted participant")
	}
	// Resume and adopt: the halted replica comes back at a later round.
	insts[1].ResumeAt(2)
	if insts[1].Halted() {
		t.Fatalf("still halted after ResumeAt")
	}
}

func TestStateForRecoveryContainsCommitted(t *testing.T) {
	n := 4
	net, insts := cluster(t, n, Config{FixedPrimary: true, BatchSize: 1}, simnet.Config{})
	inject(net, n, mkTx(1, 1))
	net.Run(time.Second)
	st := insts[2].StateForRecovery()
	if len(st) != 1 {
		t.Fatalf("StateForRecovery returned %d proposals, want 1", len(st))
	}
	if st[0].Round != 1 || st[0].Batch == nil || !st[0].Prepared {
		t.Fatalf("unexpected recovery state: %+v", st[0])
	}
}
