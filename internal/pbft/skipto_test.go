package pbft

import (
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sm"
	"repro/internal/types"
)

// recEnv is a synchronous sm.Env recording deliveries for one instance.
type recEnv struct {
	id     types.ReplicaID
	params quorum.Params
	decs   []sm.Decision
}

func (e *recEnv) ID() types.ReplicaID                      { return e.id }
func (e *recEnv) Params() quorum.Params                    { return e.params }
func (e *recEnv) Send(types.ReplicaID, types.Message)      {}
func (e *recEnv) Broadcast(types.Message)                  {}
func (e *recEnv) SendClient(types.ClientID, types.Message) {}
func (e *recEnv) Deliver(d sm.Decision)                    { e.decs = append(e.decs, d) }
func (e *recEnv) SetTimer(sm.TimerID, time.Duration)       {}
func (e *recEnv) CancelTimer(sm.TimerID)                   {}
func (e *recEnv) Now() time.Duration                       { return 0 }
func (e *recEnv) Suspect(types.InstanceID, types.Round)    {}
func (e *recEnv) Logf(string, ...any)                      {}

func newFixed(t *testing.T) (*Instance, *recEnv) {
	t.Helper()
	params, err := quorum.NewParams(4)
	if err != nil {
		t.Fatal(err)
	}
	env := &recEnv{id: 1, params: params}
	p := New(Config{Instance: 0, Primary: 0, FixedPrimary: true, Window: 16})
	p.Start(env)
	return p, env
}

func adopt(p *Instance, r types.Round, tag byte) {
	b := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: uint64(r), Op: []byte{tag}}}}
	p.AdoptDecision(sm.Decision{Round: r, Digest: b.Digest(), Batch: b})
}

func TestSkipToDeliversCommittedInRange(t *testing.T) {
	p, env := newFixed(t)
	// Rounds 2 and 5 committed; 1, 3, 4 void. Nothing delivered yet
	// (round 1 parks the frontier).
	adopt(p, 2, 'b')
	adopt(p, 5, 'e')
	if len(env.decs) != 0 {
		t.Fatalf("delivered %d before skip", len(env.decs))
	}
	p.SkipTo(7)
	if len(env.decs) != 2 {
		t.Fatalf("delivered %d, want 2 (rounds 2 and 5)", len(env.decs))
	}
	if env.decs[0].Round != 2 || env.decs[1].Round != 5 {
		t.Fatalf("delivery order %d, %d", env.decs[0].Round, env.decs[1].Round)
	}
	if p.Delivered() != 7 {
		t.Fatalf("frontier %d, want 7", p.Delivered())
	}
}

func TestSkipToHugeRangeIsCheap(t *testing.T) {
	// Restart penalties can span millions of rounds (Fig. 4 line 12); the
	// skip must not materialize them.
	p, _ := newFixed(t)
	adopt(p, 1, 'a')
	start := time.Now()
	p.SkipTo(50_000_000)
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("SkipTo(50M) took %v", d)
	}
	if p.Delivered() != 50_000_000 {
		t.Fatalf("frontier %d", p.Delivered())
	}
	if len(p.rounds) > 2 {
		t.Fatalf("skip left %d round entries behind", len(p.rounds))
	}
}

func TestSkipToIdempotentAndBackwardsSafe(t *testing.T) {
	p, env := newFixed(t)
	adopt(p, 1, 'a')
	p.SkipTo(10)
	n := len(env.decs)
	p.SkipTo(10) // same target
	p.SkipTo(5)  // backwards: no-op
	if len(env.decs) != n {
		t.Fatal("repeated/backwards skip re-delivered")
	}
}

func TestSkipToDiscardsPartialRounds(t *testing.T) {
	p, _ := newFixed(t)
	// A preprepared-but-uncommitted round inside the skip range is void
	// by agreement and must be discarded.
	b := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("x")}}}
	pp := &types.PrePrepare{View: 0, Round: 3, Digest: b.Digest(), Batch: b}
	p.OnMessage(sm.FromReplica(0), pp)
	if len(p.rounds) != 1 {
		t.Fatal("preprepare not recorded")
	}
	p.SkipTo(10)
	if _, ok := p.rounds[3]; ok {
		t.Fatal("void partial round survived the skip")
	}
}

func TestResumeAtKeepsProposerAboveFloor(t *testing.T) {
	params, _ := quorum.NewParams(4)
	env := &recEnv{id: 0, params: params}
	p := New(Config{Instance: 0, Primary: 0, FixedPrimary: true, Window: 4})
	p.Start(env)
	p.Halt()
	p.ResumeAt(100)
	if got := p.NextProposeRound(); got != 100 {
		t.Fatalf("next propose round %d, want 100", got)
	}
	b := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("x")}}}
	if !p.Propose(b) {
		t.Fatal("primary cannot propose after resume")
	}
}

func TestVoidRangeDigestDistinguishesRanges(t *testing.T) {
	if voidRangeDigest(1, 5) == voidRangeDigest(1, 6) {
		t.Fatal("range digests collide on different ends")
	}
	if voidRangeDigest(1, 5) == voidRangeDigest(2, 5) {
		t.Fatal("range digests collide on different starts")
	}
	if voidRangeDigest(3, 9) != voidRangeDigest(3, 9) {
		t.Fatal("range digest not deterministic")
	}
}

func TestRetentionGCBoundsRoundState(t *testing.T) {
	params, _ := quorum.NewParams(4)
	env := &recEnv{id: 1, params: params}
	p := New(Config{Instance: 0, Primary: 0, FixedPrimary: true, Window: 16, RetainDelivered: 64})
	p.Start(env)
	for r := types.Round(1); r <= 1000; r++ {
		adopt(p, r, byte(r))
	}
	if len(env.decs) != 1000 {
		t.Fatalf("delivered %d, want 1000", len(env.decs))
	}
	// The per-round map must stay bounded near the retention window, not
	// grow with total history.
	if len(p.rounds) > 64+64/4+1 {
		t.Fatalf("retention GC left %d round entries (window 64)", len(p.rounds))
	}
}
