package sbft

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/crypto"
	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

func cluster(t *testing.T, n int, cfg Config, netcfg simnet.Config) (*simnet.Network, []*Instance) {
	t.Helper()
	netcfg.N = n
	if netcfg.Latency == 0 {
		netcfg.Latency = time.Millisecond
	}
	net, err := simnet.New(netcfg)
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	insts := make([]*Instance, n)
	for i := 0; i < n; i++ {
		insts[i] = New(cfg)
		net.SetMachine(types.ReplicaID(i), insts[i])
	}
	return net, insts
}

func addClient(net *simnet.Network, id types.ClientID, txns int) *client.Client {
	c := client.New(client.Config{
		Client:       id,
		Mode:         client.ModePBFT,
		RetryTimeout: 200 * time.Millisecond,
		Broadcast:    true,
	})
	for s := uint64(1); s <= uint64(txns); s++ {
		c.Submit(types.Transaction{Client: id, Seq: s, Op: []byte(fmt.Sprintf("op-%d-%d", id, s))})
	}
	net.AddClient(id, c)
	return c
}

func TestCommitViaThresholdProof(t *testing.T) {
	net, insts := cluster(t, 4, Config{BatchSize: 1}, simnet.Config{})
	net.Start()
	b := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("x")}}}
	net.Schedule(0, func() { insts[0].Propose(b) })
	net.Run(time.Second)

	for i := 0; i < 4; i++ {
		ds := net.Node(types.ReplicaID(i)).Decisions()
		if len(ds) != 1 {
			t.Fatalf("replica %d delivered %d decisions, want 1", i, len(ds))
		}
		if ds[0].Digest != b.Digest() {
			t.Fatalf("replica %d delivered wrong digest", i)
		}
	}
	// Message complexity must be linear-ish: shares go to one collector,
	// not all-to-all. With n=4: 4 preprepares + 4 shares + 4 proofs ≈ 12
	// non-self messages, far below PBFT's ~4+12+12.
	byType := net.MessagesByType()
	if byType[types.MsgSignShare] > 4 {
		t.Fatalf("SIGN-SHARE count %d, want <= 4 (linear phase)", byType[types.MsgSignShare])
	}
}

func TestOutOfOrderWindow(t *testing.T) {
	net, insts := cluster(t, 4, Config{BatchSize: 1, Window: 8}, simnet.Config{})
	net.Start()
	net.Schedule(0, func() {
		for s := uint64(1); s <= 8; s++ {
			b := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: s, Op: []byte{byte(s)}}}}
			if !insts[0].Propose(b) {
				t.Errorf("window rejected proposal %d", s)
			}
		}
	})
	net.Run(2 * time.Second)
	for i := 0; i < 4; i++ {
		if got := len(net.Node(types.ReplicaID(i)).Decisions()); got != 8 {
			t.Fatalf("replica %d delivered %d, want 8", i, got)
		}
	}
}

func TestClientRequestsCommit(t *testing.T) {
	net, _ := cluster(t, 4, Config{BatchSize: 1}, simnet.Config{})
	c := addClient(net, 1, 3)
	c.SetWindow(3) // no reply path in this bare-instance test: pipeline all
	net.Start()
	net.Run(3 * time.Second)
	// The client machine relies on ClientReply messages, which the
	// runtime layer sends (not the bare instance); here we check the
	// replica side: all requests must commit on all replicas.
	total := 0
	for _, d := range net.Node(0).Decisions() {
		total += d.Batch.Len()
	}
	if total != 3 {
		t.Fatalf("committed %d transactions, want 3", total)
	}
}

func TestEquivocationSuspectInRCCMode(t *testing.T) {
	net, insts := cluster(t, 4, Config{BatchSize: 1, FixedPrimary: true}, simnet.Config{})
	net.Start()
	b1 := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("x")}}}
	b2 := &types.Batch{Txns: []types.Transaction{{Client: 2, Seq: 1, Op: []byte("y")}}}
	pp1 := &types.PrePrepare{View: 0, Round: 1, Digest: b1.Digest(), Batch: b1}
	pp2 := &types.PrePrepare{View: 0, Round: 1, Digest: b2.Digest(), Batch: b2}
	insts[1].OnMessage(sm.FromReplica(0), pp1)
	insts[1].OnMessage(sm.FromReplica(0), pp2)
	if len(net.Node(1).Suspicions()) == 0 {
		t.Fatal("equivocation not reported via Suspect")
	}
}

func TestViewChangeOnPrimaryCrash(t *testing.T) {
	net, insts := cluster(t, 4, Config{BatchSize: 1, ProgressTimeout: 100 * time.Millisecond}, simnet.Config{})
	addClient(net, 1, 1)
	net.Start()
	net.Crash(0)
	net.Run(5 * time.Second)
	for i := 1; i < 4; i++ {
		if insts[i].View() == 0 {
			t.Fatalf("replica %d never left view 0", i)
		}
	}
	// The request must commit in the new view.
	total := 0
	for _, d := range net.Node(1).Decisions() {
		total += d.Batch.Len()
	}
	if total != 1 {
		t.Fatalf("committed %d transactions after view change, want 1", total)
	}
}

func TestSharedThresholdSchemeRequired(t *testing.T) {
	// Replicas with different schemes must not commit: shares fail
	// verification at the collector.
	netcfg := simnet.Config{N: 4, Latency: time.Millisecond}
	net, err := simnet.New(netcfg)
	if err != nil {
		t.Fatal(err)
	}
	good := crypto.NewThresholdScheme(4, 3, []byte("good"))
	bad := crypto.NewThresholdScheme(4, 3, []byte("bad"))
	insts := make([]*Instance, 4)
	for i := 0; i < 4; i++ {
		scheme := good
		if i == 2 {
			scheme = bad
		}
		insts[i] = New(Config{BatchSize: 1, Threshold: scheme, ProgressTimeout: time.Hour})
		net.SetMachine(types.ReplicaID(i), insts[i])
	}
	net.Start()
	b := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("x")}}}
	net.Schedule(0, func() { insts[0].Propose(b) })
	net.Run(time.Second)
	// Replica 2's share is rejected, but the other three still form a
	// quorum (nf=3) — the round commits without it.
	if got := len(net.Node(0).Decisions()); got != 1 {
		t.Fatalf("delivered %d, want 1 (three good shares suffice)", got)
	}
	// Now also break replica 3: only two good shares remain, below nf.
	insts2 := make([]*Instance, 4)
	net2, _ := simnet.New(netcfg)
	for i := 0; i < 4; i++ {
		scheme := good
		if i >= 2 {
			scheme = bad
		}
		insts2[i] = New(Config{BatchSize: 1, Threshold: scheme, ProgressTimeout: time.Hour})
		net2.SetMachine(types.ReplicaID(i), insts2[i])
	}
	net2.Start()
	net2.Schedule(0, func() { insts2[0].Propose(b) })
	net2.Run(time.Second)
	if got := len(net2.Node(0).Decisions()); got != 0 {
		t.Fatalf("delivered %d with insufficient valid shares, want 0", got)
	}
}

// TestExecutionProofPhase checks SBFT's second linear phase: after a round
// executes, the collector combines nf state shares into a FULL-EXECUTE-PROOF
// and every replica ends up holding a verifiable certificate of the executed
// prefix.
func TestExecutionProofPhase(t *testing.T) {
	net, insts := cluster(t, 4, Config{BatchSize: 1, Window: 4}, simnet.Config{})
	net.Start()
	net.Schedule(0, func() {
		for s := uint64(1); s <= 3; s++ {
			b := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: s, Op: []byte{byte(s)}}}}
			insts[0].Propose(b)
		}
	})
	net.Run(2 * time.Second)

	for i := 0; i < 4; i++ {
		for r := types.Round(1); r <= 3; r++ {
			proof, ok := insts[i].ExecuteProof(r)
			if !ok || len(proof) == 0 {
				t.Fatalf("replica %d holds no execution proof for round %d", i, r)
			}
		}
	}
	// Proofs must be identical across replicas (one canonical combine).
	p0, _ := insts[0].ExecuteProof(2)
	for i := 1; i < 4; i++ {
		pi, _ := insts[i].ExecuteProof(2)
		if string(pi) != string(p0) {
			t.Fatalf("replica %d execution proof diverges", i)
		}
	}
}

// TestExecutionProofRejectsDivergentState forges an execute proof claiming a
// different state: replicas whose local chain disagrees must not store it.
func TestExecutionProofRejectsDivergentState(t *testing.T) {
	net, insts := cluster(t, 4, Config{BatchSize: 1}, simnet.Config{})
	net.Start()
	b := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("x")}}}
	net.Schedule(0, func() { insts[0].Propose(b) })
	net.Run(time.Second)

	forged := &types.FullExecuteProof{Replica: 2, Round: 1, State: types.Hash([]byte("divergent")), Combined: []byte("junk")}
	before, _ := insts[1].ExecuteProof(1)
	insts[1].OnMessage(sm.FromReplica(2), forged)
	after, ok := insts[1].ExecuteProof(1)
	if !ok || string(after) != string(before) {
		t.Fatal("forged execution proof displaced the real one")
	}
}
