// Package sbft implements the SBFT Byzantine commit algorithm (Golan Gueta
// et al.): a PBFT-shaped protocol whose all-to-all vote phases are replaced
// by linear collector phases using threshold signatures (§V-C of the RCC
// paper).
//
// Normal case for round ρ:
//
//  1. The primary broadcasts the proposal (PRE-PREPARE).
//  2. Every replica sends a threshold signature share over the proposal to
//     the round's collector (SIGN-SHARE) — linear, not quadratic.
//  3. The collector combines nf shares into one constant-size commit proof
//     and broadcasts it (FULL-COMMIT-PROOF); receiving a valid proof
//     commits the round.
//
// Threshold signatures do not reduce the primary's cost of sending the
// proposal itself — the dominant term in practice (§I-A) — but they cut all
// other phase costs from O(n²) to O(n) messages.
//
// The instance supports RCC mode (Config.FixedPrimary) exactly like the
// PBFT and Zyzzyva packages: failures are reported through Env.Suspect,
// which is how RCC-S (Fig. 9) is assembled.
package sbft

import (
	"sort"
	"time"

	"repro/internal/crypto"
	"repro/internal/sm"
	"repro/internal/types"
)

// Config parameterizes one SBFT instance.
type Config struct {
	// Instance is the consensus instance this machine serves.
	Instance types.InstanceID
	// Primary is the initial primary (fixed in RCC mode).
	Primary types.ReplicaID
	// FixedPrimary selects RCC mode.
	FixedPrimary bool
	// Window is the out-of-order proposal window.
	Window int
	// ProgressTimeout is the failure-detection timeout.
	ProgressTimeout time.Duration
	// BatchSize groups client requests per proposal.
	BatchSize int
	// BatchTimeout proposes a partial batch after this delay.
	BatchTimeout time.Duration
	// Threshold is the (nf, n) threshold signature scheme shared by the
	// deployment. When nil, a deterministic development scheme is derived
	// at Start (all replicas derive the same one).
	Threshold *crypto.ThresholdScheme
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 1
	}
	if c.ProgressTimeout <= 0 {
		c.ProgressTimeout = 500 * time.Millisecond
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 50 * time.Millisecond
	}
}

// devSecret seeds the development threshold scheme when none is supplied.
var devSecret = []byte("sbft-development-threshold-secret")

type round struct {
	view      types.View
	digest    types.Digest
	batch     *types.Batch
	proposed  bool
	shares    map[types.ReplicaID][]byte
	shareSent bool
	committed bool
	delivered bool
	signers   []types.ReplicaID
	// pendingProof holds a verified commit proof that arrived before the
	// proposal (out-of-order delivery); applied when the batch arrives.
	pendingProof *types.FullCommitProof
}

// Instance is one SBFT machine. It implements sm.Instance.
type Instance struct {
	cfg    Config
	env    sm.Env
	scheme *crypto.ThresholdScheme

	view    types.View
	rounds  map[types.Round]*round
	next    types.Round
	deliver types.Round
	halted  bool

	resumeFloor types.Round

	pending    []types.Transaction
	pendingSet map[txKey]struct{}
	// staleTxns counts delivered transactions since the last queue
	// compaction (amortization counter).
	staleTxns int
	lastSeq   map[types.ClientID]uint64

	inViewChange bool
	vcVotes      map[types.View]map[types.ReplicaID]*types.ViewChange

	// Execution-proof phase (SBFT's second linear phase): execChain is the
	// hash chain over delivered digests; stateShares collects per-round
	// threshold shares at the collector; execProofs stores verified
	// combined proofs — one constant-size certificate of the executed
	// prefix for clients and auditors.
	execChain   types.Digest
	chainAt     map[types.Round]types.Digest
	stateShares map[types.Round]map[types.ReplicaID][]byte
	execProofs  map[types.Round][]byte

	timerArmed bool
}

var _ sm.Instance = (*Instance)(nil)

// New creates an SBFT instance.
func New(cfg Config) *Instance {
	cfg.defaults()
	return &Instance{
		cfg:         cfg,
		rounds:      make(map[types.Round]*round),
		next:        1,
		deliver:     1,
		lastSeq:     make(map[types.ClientID]uint64),
		pendingSet:  make(map[txKey]struct{}),
		vcVotes:     make(map[types.View]map[types.ReplicaID]*types.ViewChange),
		chainAt:     make(map[types.Round]types.Digest),
		stateShares: make(map[types.Round]map[types.ReplicaID][]byte),
		execProofs:  make(map[types.Round][]byte),
	}
}

// Start implements sm.Machine.
func (s *Instance) Start(env sm.Env) {
	s.env = env
	s.scheme = s.cfg.Threshold
	if s.scheme == nil {
		p := env.Params()
		s.scheme = crypto.NewThresholdScheme(p.N, p.NF(), devSecret)
	}
}

// View returns the current view.
func (s *Instance) View() types.View { return s.view }

func (s *Instance) primaryOf(v types.View) types.ReplicaID {
	if s.cfg.FixedPrimary {
		return s.cfg.Primary
	}
	n := s.env.Params().N
	return types.ReplicaID((int(s.cfg.Primary) + int(v)) % n)
}

// IsPrimary reports whether the local replica leads the current view.
func (s *Instance) IsPrimary() bool { return s.primaryOf(s.view) == s.env.ID() }

// collectorOf returns the collector of round r: SBFT rotates collectors
// across rounds to spread the combining load; the primary collects round 1.
func (s *Instance) collectorOf(r types.Round) types.ReplicaID {
	n := s.env.Params().N
	return types.ReplicaID((int(s.primaryOf(s.view)) + int(r-1)) % n)
}

func (s *Instance) getRound(r types.Round) *round {
	rd, ok := s.rounds[r]
	if !ok {
		rd = &round{shares: make(map[types.ReplicaID][]byte)}
		s.rounds[r] = rd
	}
	return rd
}

func (s *Instance) inFlight() int {
	n := 0
	start := s.deliver
	if s.resumeFloor > start {
		start = s.resumeFloor
	}
	for r := start; r < s.next; r++ {
		if rd, ok := s.rounds[r]; !ok || !rd.committed {
			n++
		}
	}
	return n
}

// commitMsg is the byte form the threshold shares sign.
func commitMsg(inst types.InstanceID, v types.View, r types.Round, d types.Digest) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(inst>>8), byte(inst))
	buf = append(buf, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	buf = append(buf, byte(r>>56), byte(r>>48), byte(r>>40), byte(r>>32), byte(r>>24), byte(r>>16), byte(r>>8), byte(r))
	return append(buf, d[:]...)
}

// Propose implements sm.Instance.
func (s *Instance) Propose(batch *types.Batch) bool {
	if s.halted || s.inViewChange || !s.IsPrimary() {
		return false
	}
	if s.inFlight() >= s.cfg.Window {
		return false
	}
	r := s.next
	if r < s.resumeFloor {
		r = s.resumeFloor
		s.next = r
	}
	s.next++
	d := batch.Digest()
	pp := &types.PrePrepare{View: s.view, Round: r, Digest: d, Batch: batch}
	pp.Inst = s.cfg.Instance
	s.env.Broadcast(pp)
	return true
}

// NextProposeRound implements sm.Instance.
func (s *Instance) NextProposeRound() types.Round {
	if s.next < s.resumeFloor {
		return s.resumeFloor
	}
	return s.next
}

// LastAccepted implements sm.Instance.
func (s *Instance) LastAccepted() (types.Round, bool) {
	var max types.Round
	found := false
	for r, rd := range s.rounds {
		if rd.committed && r > max {
			max, found = r, true
		}
	}
	return max, found
}

// Halt implements sm.Instance.
func (s *Instance) Halt() {
	s.halted = true
	s.disarmTimer()
}

// Halted implements sm.Instance.
func (s *Instance) Halted() bool { return s.halted }

// ResumeAt implements sm.Instance.
func (s *Instance) ResumeAt(r types.Round) {
	s.halted = false
	s.resumeFloor = r
	if s.next < r {
		s.next = r
	}
	s.tryDeliver()
}

// SkipTo voids non-committed rounds in [deliver, target); see
// pbft.Instance.SkipTo.
func (s *Instance) SkipTo(target types.Round) {
	if target <= s.deliver {
		return
	}
	queued := make(map[txKey]struct{}, len(s.pending))
	for i := range s.pending {
		queued[txKey{s.pending[i].Client, s.pending[i].Seq}] = struct{}{}
	}
	committed := make([]types.Round, 0, 8)
	for r, rd := range s.rounds {
		if r < s.deliver || r >= target {
			continue
		}
		if rd.committed {
			if !rd.delivered {
				committed = append(committed, r)
			}
			continue
		}
		s.requeueVoided(rd.batch, queued)
		delete(s.rounds, r)
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i] < committed[j] })
	for _, c := range committed {
		rd := s.rounds[c]
		rd.delivered = true
		s.deliverRound(c, rd)
		s.deliver = c + 1
	}
	if s.deliver < target {
		s.deliver = target
	}
	s.tryDeliver()
}

// StateForRecovery implements sm.Instance.
func (s *Instance) StateForRecovery() []types.AcceptedProposal {
	out := make([]types.AcceptedProposal, 0, len(s.rounds))
	for r, rd := range s.rounds {
		if rd.batch == nil {
			continue
		}
		if rd.committed || rd.proposed {
			out = append(out, types.AcceptedProposal{
				Round: r, View: rd.view, Digest: rd.digest,
				Batch: rd.batch, Prepared: rd.committed,
			})
		}
	}
	return out
}

// AdoptDecision implements sm.Instance.
func (s *Instance) AdoptDecision(d sm.Decision) {
	rd := s.getRound(d.Round)
	if rd.committed {
		return
	}
	rd.view = d.View
	rd.digest = d.Digest
	rd.batch = d.Batch
	rd.proposed = true
	rd.committed = true
	if d.Round >= s.next {
		s.next = d.Round + 1
	}
	s.tryDeliver()
}

// Pending returns the number of queued client transactions.
func (s *Instance) Pending() int { return len(s.pending) }

// OnMessage implements sm.Machine.
func (s *Instance) OnMessage(from sm.Source, m types.Message) {
	if s.halted {
		return
	}
	switch msg := m.(type) {
	case *types.ClientRequest:
		s.onClientRequest(msg)
	case *types.PrePrepare:
		s.onPrePrepare(from.Replica, msg)
	case *types.SignShare:
		s.onSignShare(msg)
	case *types.FullCommitProof:
		s.onCommitProof(msg)
	case *types.SignStateShare:
		s.onStateShare(msg)
	case *types.FullExecuteProof:
		s.onExecuteProof(msg)
	case *types.ViewChange:
		s.onViewChange(msg)
	case *types.NewView:
		s.onNewView(from.Replica, msg)
	}
}

func (s *Instance) onClientRequest(m *types.ClientRequest) {
	if m.Tx.IsNoOp() || m.Tx.Seq <= s.lastSeq[m.Tx.Client] {
		return
	}
	key := txKey{m.Tx.Client, m.Tx.Seq}
	if _, dup := s.pendingSet[key]; dup {
		return // queued or already in flight
	}
	s.pendingSet[key] = struct{}{}
	s.pending = append(s.pending, m.Tx)
	if !s.IsPrimary() {
		s.armTimer()
		return
	}
	s.maybeProposeBatch()
}

func (s *Instance) maybeProposeBatch() {
	for len(s.pending) >= s.cfg.BatchSize && s.inFlight() < s.cfg.Window {
		txns := s.takeBatch(s.cfg.BatchSize)
		if len(txns) == 0 {
			continue // only stale entries were consumed; re-check the queue
		}
		if !s.Propose(&types.Batch{Txns: txns}) {
			// Window full: return the batch to the queue front.
			s.pending = append(txns, s.pending...)
			return
		}
	}
	if len(s.pending) > 0 {
		s.env.SetTimer(sm.TimerID{Instance: s.cfg.Instance, Kind: sm.TimerBatch}, s.cfg.BatchTimeout)
	}
}

func (s *Instance) onPrePrepare(from types.ReplicaID, m *types.PrePrepare) {
	if m.View != s.view || from != s.primaryOf(m.View) || s.inViewChange {
		return
	}
	if m.Round < s.resumeFloor || m.Batch == nil {
		return
	}
	if m.Batch.Digest() != m.Digest {
		s.suspect(m.Round)
		return
	}
	rd := s.getRound(m.Round)
	if rd.proposed {
		if rd.digest != m.Digest {
			s.suspect(m.Round)
		}
		return
	}
	rd.view = m.View
	rd.digest = m.Digest
	rd.batch = m.Batch
	rd.proposed = true
	s.armTimer()

	if !rd.shareSent {
		rd.shareSent = true
		msg := commitMsg(s.cfg.Instance, m.View, m.Round, m.Digest)
		share := s.scheme.Share(crypto.PartyID(s.env.ID()), msg)
		ss := &types.SignShare{Replica: s.env.ID(), View: m.View, Round: m.Round, Digest: m.Digest, Share: share}
		ss.Inst = s.cfg.Instance
		s.env.Send(s.collectorOf(m.Round), ss)
	}
	if rd.pendingProof != nil {
		proof := rd.pendingProof
		rd.pendingProof = nil
		s.onCommitProof(proof)
	}
}

// onSignShare runs at the round's collector: combine nf shares into a
// commit proof and broadcast it.
func (s *Instance) onSignShare(m *types.SignShare) {
	if m.View != s.view || s.inViewChange || s.collectorOf(m.Round) != s.env.ID() {
		return
	}
	rd := s.getRound(m.Round)
	if rd.committed {
		return
	}
	msg := commitMsg(s.cfg.Instance, m.View, m.Round, m.Digest)
	if !s.scheme.VerifyShare(crypto.PartyID(m.Replica), msg, m.Share) {
		return
	}
	rd.shares[m.Replica] = m.Share
	if len(rd.shares) < s.env.Params().NF() {
		return
	}
	shares := make(map[uint32][]byte, len(rd.shares))
	signers := make([]types.ReplicaID, 0, len(rd.shares))
	for r, sh := range rd.shares {
		shares[crypto.PartyID(r)] = sh
		signers = append(signers, r)
	}
	combined := s.scheme.Combine(msg, shares)
	if combined == nil {
		return
	}
	sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
	rd.signers = signers[:s.env.Params().NF()]
	proof := &types.FullCommitProof{Replica: s.env.ID(), View: m.View, Round: m.Round, Digest: m.Digest, Combined: combined}
	proof.Inst = s.cfg.Instance
	s.env.Broadcast(proof)
}

// onCommitProof commits the round once a valid combined signature arrives.
func (s *Instance) onCommitProof(m *types.FullCommitProof) {
	if m.Round < s.resumeFloor {
		return
	}
	rd := s.getRound(m.Round)
	if rd.committed {
		return
	}
	// Verify the combined proof. The signer set is not carried on the
	// wire (constant-size proof); verification reconstructs from the
	// collector's canonical choice: the nf lexicographically smallest
	// signers among those whose shares could combine. Our simulated
	// scheme needs the signer set; a real BLS proof would verify against
	// the group public key alone. Reconstruct by trying the share set of
	// all replicas (n is small) — the canonical combine picks the nf
	// smallest signers, which the collector's Combine also does.
	msg := commitMsg(s.cfg.Instance, m.View, m.Round, m.Digest)
	if !s.verifyProofAgainstAll(msg, m.Combined) {
		return
	}
	if !rd.proposed {
		// Commit proof before the proposal (out-of-order arrival): hold
		// it until the batch arrives.
		rd.pendingProof = m
		return
	}
	if rd.digest != m.Digest {
		s.suspect(m.Round)
		return
	}
	rd.committed = true
	s.tryDeliver()
}

// verifyProofAgainstAll checks the combined proof assuming the canonical
// nf-smallest signer sets. SBFT's real BLS verification is one pairing; the
// simulation's reconstruction is O(n) HMACs, charged equivalently by the
// simulators.
func (s *Instance) verifyProofAgainstAll(msg, combined []byte) bool {
	p := s.env.Params()
	signers := make([]uint32, p.N)
	for i := range signers {
		signers[i] = uint32(i)
	}
	// Try every contiguous-free subset is exponential; instead rely on
	// the canonical property: Combine picks the nf smallest of whatever
	// share set it holds. Accept when any prefix-ish canonical set
	// verifies; in practice collectors hold shares from an arbitrary nf
	// subset, so check the full-set canonical combine plus the proof
	// reconstruction from every single-replica-excluded set. This covers
	// all nf-of-n sets for f ≤ 2 deployments used in tests; larger
	// deployments run under the flow simulator, which does not verify
	// bytes.
	if s.scheme.VerifyCombined(msg, signers, combined) {
		return true
	}
	for skip := 0; skip < p.N; skip++ {
		sub := make([]uint32, 0, p.N-1)
		for i := range signers {
			if i != skip {
				sub = append(sub, signers[i])
			}
		}
		if len(sub) >= p.NF() && s.scheme.VerifyCombined(msg, sub, combined) {
			return true
		}
		for skip2 := skip + 1; skip2 < p.N; skip2++ {
			sub2 := make([]uint32, 0, p.N-2)
			for i := range signers {
				if i != skip && i != skip2 {
					sub2 = append(sub2, signers[i])
				}
			}
			if len(sub2) >= p.NF() && s.scheme.VerifyCombined(msg, sub2, combined) {
				return true
			}
		}
	}
	return false
}

func (s *Instance) tryDeliver() {
	progressed := false
	for {
		rd, ok := s.rounds[s.deliver]
		if !ok || !rd.committed || rd.delivered {
			break
		}
		rd.delivered = true
		s.deliverRound(s.deliver, rd)
		s.deliver++
		progressed = true
	}
	if progressed {
		s.resetTimerAfterProgress()
	}
	if s.IsPrimary() {
		s.maybeProposeBatch()
	}
}

func (s *Instance) deliverRound(r types.Round, rd *round) {
	s.markDelivered(rd.batch)
	s.env.Deliver(sm.Decision{
		Instance: s.cfg.Instance,
		Round:    r,
		View:     rd.view,
		Digest:   rd.digest,
		Batch:    rd.batch,
		Signers:  rd.signers,
	})
	// Execution-proof phase: extend the executed-prefix chain and send the
	// round's collector a threshold share over it. nf shares combine into
	// one constant-size FULL-EXECUTE-PROOF certifying the whole prefix.
	s.execChain = chainStep(s.execChain, rd.digest)
	s.chainAt[r] = s.execChain
	share := s.scheme.Share(crypto.PartyID(s.env.ID()), stateMsg(s.cfg.Instance, r, s.execChain))
	ss := &types.SignStateShare{Replica: s.env.ID(), Round: r, State: s.execChain, Share: share}
	ss.Inst = s.cfg.Instance
	s.env.Send(s.collectorOf(r), ss)
}

// chainStep extends the executed-prefix hash chain by one round digest.
func chainStep(prev, d types.Digest) types.Digest {
	buf := make([]byte, 0, 64)
	buf = append(buf, prev[:]...)
	buf = append(buf, d[:]...)
	return types.Hash(buf)
}

// stateMsg is the byte form execution-proof shares sign.
func stateMsg(inst types.InstanceID, r types.Round, state types.Digest) []byte {
	buf := make([]byte, 0, 48)
	buf = append(buf, 0xE1, byte(inst>>8), byte(inst))
	buf = append(buf, byte(r>>56), byte(r>>48), byte(r>>40), byte(r>>32), byte(r>>24), byte(r>>16), byte(r>>8), byte(r))
	return append(buf, state[:]...)
}

// onStateShare runs at the round's collector: combine nf execution shares
// into a proof of the executed prefix and broadcast it.
func (s *Instance) onStateShare(m *types.SignStateShare) {
	if s.collectorOf(m.Round) != s.env.ID() {
		return
	}
	if _, done := s.execProofs[m.Round]; done {
		return
	}
	msg := stateMsg(s.cfg.Instance, m.Round, m.State)
	if !s.scheme.VerifyShare(crypto.PartyID(m.Replica), msg, m.Share) {
		return
	}
	shares, ok := s.stateShares[m.Round]
	if !ok {
		shares = make(map[types.ReplicaID][]byte)
		s.stateShares[m.Round] = shares
	}
	shares[m.Replica] = m.Share
	if len(shares) < s.env.Params().NF() {
		return
	}
	byParty := make(map[uint32][]byte, len(shares))
	for r, sh := range shares {
		byParty[crypto.PartyID(r)] = sh
	}
	combined := s.scheme.Combine(msg, byParty)
	if combined == nil {
		return
	}
	s.execProofs[m.Round] = combined
	delete(s.stateShares, m.Round)
	proof := &types.FullExecuteProof{Replica: s.env.ID(), Round: m.Round, State: m.State, Combined: combined}
	proof.Inst = s.cfg.Instance
	s.env.Broadcast(proof)
}

// onExecuteProof records a verified execution proof. The signer-set
// reconstruction mirrors onCommitProof's canonical verification.
func (s *Instance) onExecuteProof(m *types.FullExecuteProof) {
	if _, done := s.execProofs[m.Round]; done {
		return
	}
	local, ok := s.chainAt[m.Round]
	if !ok || local != m.State {
		return // not executed locally yet, or divergent state
	}
	if !s.verifyProofAgainstAll(stateMsg(s.cfg.Instance, m.Round, m.State), m.Combined) {
		return
	}
	s.execProofs[m.Round] = m.Combined
}

// ExecuteProof returns the combined execution proof for round r, if this
// replica holds one.
func (s *Instance) ExecuteProof(r types.Round) ([]byte, bool) {
	p, ok := s.execProofs[r]
	return p, ok
}

func (s *Instance) markDelivered(b *types.Batch) {
	if b == nil {
		return
	}
	for i := range b.Txns {
		tx := &b.Txns[i]
		if tx.IsNoOp() {
			continue
		}
		delete(s.pendingSet, txKey{tx.Client, tx.Seq})
		if tx.Seq > s.lastSeq[tx.Client] {
			s.lastSeq[tx.Client] = tx.Seq
		}
	}
	// Compact the queue only when at least half of it is stale: a scan per
	// delivered batch is O(backlog) and melts down under open-loop
	// overload; amortized compaction is O(1) per transaction.
	s.staleTxns += b.Len()
	if len(s.pending) == 0 || 2*s.staleTxns < len(s.pending) {
		return
	}
	s.staleTxns = 0
	kept := s.pending[:0]
	for i := range s.pending {
		tx := &s.pending[i]
		if _, live := s.pendingSet[txKey{tx.Client, tx.Seq}]; live && tx.Seq > s.lastSeq[tx.Client] {
			kept = append(kept, *tx)
		}
	}
	s.pending = kept
}

func (s *Instance) suspect(rnd types.Round) {
	if s.cfg.FixedPrimary {
		s.env.Suspect(s.cfg.Instance, rnd)
		return
	}
	s.startViewChange(s.view + 1)
}

func (s *Instance) startViewChange(v types.View) {
	if v <= s.view && s.inViewChange {
		return
	}
	s.inViewChange = true
	s.view = v
	s.disarmTimer()
	vc := &types.ViewChange{Replica: s.env.ID(), NewView: v, Prepared: s.StateForRecovery()}
	vc.Inst = s.cfg.Instance
	s.env.Broadcast(vc)
	s.env.SetTimer(sm.TimerID{Instance: s.cfg.Instance, Kind: sm.TimerViewChange}, s.cfg.ProgressTimeout)
}

func (s *Instance) onViewChange(m *types.ViewChange) {
	if s.cfg.FixedPrimary || m.NewView < s.view {
		return
	}
	votes, ok := s.vcVotes[m.NewView]
	if !ok {
		votes = make(map[types.ReplicaID]*types.ViewChange)
		s.vcVotes[m.NewView] = votes
	}
	votes[m.Replica] = m
	if len(votes) < s.env.Params().NF() || s.primaryOf(m.NewView) != s.env.ID() {
		return
	}
	// New primary: re-propose every committed proposal reported, plus any
	// proposal seen by f+1 replicas (one honest witness).
	counts := make(map[types.Round]map[types.Digest]int)
	byDigest := make(map[types.Digest]types.AcceptedProposal)
	for _, vc := range votes {
		for _, ap := range vc.Prepared {
			if ap.Batch == nil || ap.Batch.Digest() != ap.Digest {
				continue
			}
			c, ok := counts[ap.Round]
			if !ok {
				c = make(map[types.Digest]int)
				counts[ap.Round] = c
			}
			c[ap.Digest]++
			if prev, dup := byDigest[ap.Digest]; !dup || ap.Prepared && !prev.Prepared {
				byDigest[ap.Digest] = ap
			}
		}
	}
	var rounds []types.Round
	for r := range counts {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	var repropose []types.AcceptedProposal
	for _, r := range rounds {
		var pick types.AcceptedProposal
		found := false
		for d, c := range counts[r] {
			ap := byDigest[d]
			if ap.Prepared || c >= s.env.Params().FaultDetection() {
				if !found || ap.Prepared && !pick.Prepared {
					pick, found = ap, true
				}
			}
		}
		if found {
			pick.Round = r
			repropose = append(repropose, pick)
		}
	}
	signers := make([]types.ReplicaID, 0, len(votes))
	for r := range votes {
		signers = append(signers, r)
	}
	sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
	nv := &types.NewView{Replica: s.env.ID(), NewView: m.NewView, ViewProofs: signers, Reproposed: repropose}
	nv.Inst = s.cfg.Instance
	s.env.Broadcast(nv)
}

func (s *Instance) onNewView(from types.ReplicaID, m *types.NewView) {
	if s.cfg.FixedPrimary || m.NewView < s.view || from != s.primaryOf(m.NewView) {
		return
	}
	s.view = m.NewView
	s.inViewChange = false
	s.env.CancelTimer(sm.TimerID{Instance: s.cfg.Instance, Kind: sm.TimerViewChange})
	for i := range m.Reproposed {
		ap := &m.Reproposed[i]
		if ap.Batch == nil || ap.Batch.Digest() != ap.Digest {
			continue
		}
		rd := s.getRound(ap.Round)
		if rd.committed {
			continue
		}
		rd.view = m.NewView
		rd.digest = ap.Digest
		rd.batch = ap.Batch
		rd.proposed = true
		rd.committed = true
		if ap.Round >= s.next {
			s.next = ap.Round + 1
		}
	}
	// Rounds below the re-proposed maximum that no one reported are voided
	// by the view change.
	var maxR types.Round
	for i := range m.Reproposed {
		if m.Reproposed[i].Round > maxR {
			maxR = m.Reproposed[i].Round
		}
	}
	for r := s.deliver; r <= maxR; r++ {
		if rd, ok := s.rounds[r]; !ok || !rd.committed {
			if ok {
				delete(s.rounds, r)
			}
			if r == s.deliver {
				s.deliver = r + 1
			}
		}
	}
	s.tryDeliver()
	if s.IsPrimary() {
		s.maybeProposeBatch()
	} else if len(s.pending) > 0 {
		s.armTimer()
	}
}

// OnTimer implements sm.Machine.
func (s *Instance) OnTimer(id sm.TimerID) {
	if s.halted {
		return
	}
	switch id.Kind {
	case sm.TimerProgress:
		s.timerArmed = false
		if s.outstandingWork() {
			s.suspect(s.deliver)
		}
	case sm.TimerBatch:
		if s.IsPrimary() && len(s.pending) > 0 && s.inFlight() < s.cfg.Window {
			if txns := s.takeBatch(s.cfg.BatchSize); len(txns) > 0 {
				s.Propose(&types.Batch{Txns: txns})
			}
		}
	case sm.TimerViewChange:
		if s.inViewChange {
			s.startViewChange(s.view + 1)
		}
	}
}

func (s *Instance) outstandingWork() bool {
	if len(s.pending) > 0 && !s.IsPrimary() {
		return true
	}
	for r, rd := range s.rounds {
		if r >= s.deliver && r >= s.resumeFloor && rd.proposed && !rd.committed {
			return true
		}
	}
	return false
}

func (s *Instance) armTimer() {
	if s.timerArmed || s.halted {
		return
	}
	s.timerArmed = true
	s.env.SetTimer(sm.TimerID{Instance: s.cfg.Instance, Kind: sm.TimerProgress}, s.cfg.ProgressTimeout)
}

func (s *Instance) resetTimerAfterProgress() {
	s.timerArmed = false
	s.env.CancelTimer(sm.TimerID{Instance: s.cfg.Instance, Kind: sm.TimerProgress})
	if s.outstandingWork() {
		s.armTimer()
	}
}

func (s *Instance) disarmTimer() {
	s.timerArmed = false
	s.env.CancelTimer(sm.TimerID{Instance: s.cfg.Instance, Kind: sm.TimerProgress})
}

// txKey identifies one client transaction for deduplication.
type txKey struct {
	c types.ClientID
	s uint64
}

// requeueVoided returns a voided round's undelivered transactions to the
// pending queue (primaries re-propose them after the resume round).
func (s *Instance) requeueVoided(b *types.Batch, queued map[txKey]struct{}) {
	if b == nil {
		return
	}
	for i := range b.Txns {
		tx := b.Txns[i]
		if tx.IsNoOp() || tx.Seq <= s.lastSeq[tx.Client] {
			continue
		}
		key := txKey{tx.Client, tx.Seq}
		if _, inQueue := queued[key]; inQueue {
			continue // still queued, nothing lost
		}
		if _, tracked := s.pendingSet[key]; tracked {
			s.pending = append(s.pending, tx)
			queued[key] = struct{}{}
		}
	}
}

// takeBatch pops up to max live transactions from the queue front, skipping
// entries already delivered elsewhere (their pendingSet entry is gone).
func (s *Instance) takeBatch(max int) []types.Transaction {
	out := make([]types.Transaction, 0, max)
	i := 0
	for ; i < len(s.pending) && len(out) < max; i++ {
		tx := s.pending[i]
		if _, live := s.pendingSet[txKey{tx.Client, tx.Seq}]; !live || tx.Seq <= s.lastSeq[tx.Client] {
			continue
		}
		out = append(out, tx)
	}
	s.pending = s.pending[i:]
	return out
}
