package crypto

import (
	"bytes"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"sync"
	"testing"

	"repro/internal/types"
)

// TestMACCachedMatchesUncached pins the wire compatibility of the cached
// implementation: precomputed HMAC states must produce byte-identical tags
// to the straightforward hmac.New chain, in both directions, across payload
// sizes — a cached node and an uncached node interoperate.
func TestMACCachedMatchesUncached(t *testing.T) {
	secret := []byte("deployment-secret")
	cached := NewMAC(PartyID(0), secret)
	plain := NewMACUncached(PartyID(0), secret)
	for _, n := range []int{0, 1, 53, 64, 500, 4096} {
		payload := bytes.Repeat([]byte{0xA5}, n)
		ct := cached.Tag(PartyID(1), payload)
		pt := plain.Tag(PartyID(1), payload)
		if !bytes.Equal(ct, pt) {
			t.Fatalf("payload %dB: cached tag %x != uncached %x", n, ct, pt)
		}
		// Cross-verify: each implementation accepts the other's tag.
		peerCached := NewMAC(PartyID(1), secret)
		peerPlain := NewMACUncached(PartyID(1), secret)
		if !peerCached.Verify(PartyID(0), payload, pt) {
			t.Fatalf("payload %dB: cached verify rejected uncached tag", n)
		}
		if !peerPlain.Verify(PartyID(0), payload, ct) {
			t.Fatalf("payload %dB: uncached verify rejected cached tag", n)
		}
	}
	// And against the reference HMAC directly.
	ref := hmac.New(sha256.New, derivePairKey(secret, 0, 1))
	ref.Write([]byte("m"))
	if !bytes.Equal(cached.Tag(PartyID(1), []byte("m")), ref.Sum(nil)) {
		t.Fatal("cached tag diverges from reference HMAC-SHA256")
	}
}

// TestMACAppendTag pins the allocation-free send path.
func TestMACAppendTag(t *testing.T) {
	a := NewMAC(PartyID(0), []byte("s")).(TagAppender)
	buf := make([]byte, 0, 64)
	out := a.AppendTag(PartyID(1), []byte("m"), buf)
	if len(out) != sha256.Size {
		t.Fatalf("appended tag is %d bytes, want %d", len(out), sha256.Size)
	}
	if !bytes.Equal(out, NewMAC(PartyID(0), []byte("s")).Tag(PartyID(1), []byte("m"))) {
		t.Fatal("AppendTag output differs from Tag")
	}
	prefix := []byte("prefix")
	out2 := a.AppendTag(PartyID(1), []byte("m"), prefix)
	if !bytes.Equal(out2[:6], []byte("prefix")) || !bytes.Equal(out2[6:], out) {
		t.Fatal("AppendTag did not append to the existing buffer")
	}
}

// TestMACConcurrent exercises the lazy pair-state cache from many
// goroutines (run under -race).
func TestMACConcurrent(t *testing.T) {
	a := NewMAC(PartyID(0), []byte("s"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			peer := NewMAC(PartyID(types.ReplicaID(1+g%3)), []byte("s"))
			for i := 0; i < 500; i++ {
				payload := []byte{byte(g), byte(i)}
				tag := a.Tag(PartyID(types.ReplicaID(1+g%3)), payload)
				if !peer.Verify(PartyID(0), payload, tag) {
					t.Error("concurrent verify failed")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestKeyRingFrozenAtConstruction pins the satellite fix: NewDS snapshots
// the ring, so a late Add can neither race Verify on transport goroutines
// (-race proves it) nor retroactively introduce new parties.
func TestKeyRingFrozenAtConstruction(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ring := NewKeyRing()
	ring.Add(PartyID(0), pub)
	verifier := NewDS(PartyID(1), nil, ring)
	sig := ed25519.Sign(priv, []byte("m"))

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if !verifier.Verify(PartyID(0), []byte("m"), sig) {
				t.Error("valid signature rejected during concurrent Add")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			ring.Add(PartyID(types.ReplicaID(100+i)), pub)
		}
	}()
	wg.Wait()

	// The snapshot does not see parties added after construction.
	if verifier.Verify(PartyID(100), []byte("m"), sig) {
		t.Fatal("late Add leaked into a constructed authenticator")
	}
}

func TestKeyRingSealPanicsOnAdd(t *testing.T) {
	ring := NewKeyRing().Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a sealed ring did not panic")
		}
	}()
	ring.Add(0, make([]byte, ed25519.PublicKeySize))
}

// TestDSDevDeterministic pins the dev-mode keyring: all nodes sharing a
// secret verify each other (replicas and clients) with zero out-of-band
// provisioning, and different secrets are mutually unintelligible.
func TestDSDevDeterministic(t *testing.T) {
	secret := []byte("cluster-seed")
	r0 := NewDSDev(PartyID(0), secret)
	r1 := NewDSDev(PartyID(1), secret)
	cli := NewDSDev(ClientPartyID(7), secret)

	payload := []byte("vote")
	sig := r0.Tag(0, payload)
	if !r1.Verify(PartyID(0), payload, sig) {
		t.Fatal("replica did not verify peer replica's dev signature")
	}
	if !cli.Verify(PartyID(0), payload, sig) {
		t.Fatal("client did not verify replica's dev signature")
	}
	csig := cli.Tag(0, payload)
	if !r0.Verify(ClientPartyID(7), payload, csig) {
		t.Fatal("replica did not verify client's dev signature")
	}
	if r0.Verify(PartyID(1), payload, sig) {
		t.Fatal("signature attributed to the wrong party verified")
	}
	other := NewDSDev(PartyID(1), []byte("different-seed"))
	if other.Verify(PartyID(0), payload, sig) {
		t.Fatal("dev signature verified across different secrets")
	}
}

// TestBatchVerifierBisection: 1 bad signature in a batch of 64 rejects
// exactly that one (the ISSUE's pinned case), and multi-forgery batches
// isolate every bad index.
func TestBatchVerifierBisection(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	build := func(n int, bad ...int) *BatchVerifier {
		isBad := map[int]bool{}
		for _, b := range bad {
			isBad[b] = true
		}
		var bv BatchVerifier
		for i := 0; i < n; i++ {
			payload := []byte{byte(i), byte(i >> 8)}
			sig := ed25519.Sign(priv, payload)
			if isBad[i] {
				sig[0] ^= 0xff
			}
			bv.Add(pub, payload, sig)
		}
		return &bv
	}

	bv := build(64)
	if !bv.Verify() || len(bv.Failed()) != 0 {
		t.Fatal("clean batch of 64 did not verify")
	}

	bv = build(64, 17)
	if bv.Verify() {
		t.Fatal("batch with a forged signature verified")
	}
	if got := bv.Failed(); len(got) != 1 || got[0] != 17 {
		t.Fatalf("Failed() = %v, want exactly [17]", got)
	}

	bv = build(64, 0, 31, 63)
	got := bv.Failed()
	if len(got) != 3 || got[0] != 0 || got[1] != 31 || got[2] != 63 {
		t.Fatalf("Failed() = %v, want [0 31 63]", got)
	}
}

// TestBatchVerifierBisectionCallPattern proves Failed() really bisects:
// with an injected counting backend, isolating 1 bad item of 64 takes
// O(log n) range checks, far fewer than the 64 a per-item sweep needs.
func TestBatchVerifierBisectionCallPattern(t *testing.T) {
	const n = 64
	const bad = 41
	var bv BatchVerifier
	for i := 0; i < n; i++ {
		bv.Add(nil, nil, nil)
	}
	calls := 0
	bv.checkFn = func(lo, hi int) bool {
		calls++
		return !(lo <= bad && bad < hi)
	}
	if got := bv.Failed(); len(got) != 1 || got[0] != bad {
		t.Fatalf("Failed() = %v, want [%d]", got, bad)
	}
	// Bisection on one bad item: 1 failing check per level plus at most one
	// sibling check per level — comfortably under 2*log2(64)+1 = 13.
	if calls > 13 {
		t.Fatalf("bisection used %d range checks for 1 bad of %d; not logarithmic", calls, n)
	}
}

func TestDSVerifyBatch(t *testing.T) {
	secret := []byte("seed")
	signer := NewDSDev(PartyID(2), secret)
	verifier := NewDSDev(PartyID(0), secret).(BatchAuthenticator)

	const n = 16
	payloads := make([][]byte, n)
	tags := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
		tags[i] = signer.Tag(0, payloads[i])
	}
	tags[5] = append([]byte(nil), tags[5]...)
	tags[5][1] ^= 0x80

	ok := make([]bool, n)
	verifier.VerifyBatch(PartyID(2), payloads, tags, ok)
	for i, v := range ok {
		if (i == 5) == v {
			t.Fatalf("VerifyBatch ok[%d] = %v", i, v)
		}
	}

	// Unknown sender (non-dev authenticator, empty ring): everything false.
	empty := NewDS(PartyID(0), nil, NewKeyRing()).(BatchAuthenticator)
	for i := range ok {
		ok[i] = true
	}
	empty.VerifyBatch(PartyID(2), payloads, tags, ok)
	for i, v := range ok {
		if v {
			t.Fatalf("unknown sender accepted at %d", i)
		}
	}
}

// ---------------------------------------------------------------------------
// Attestations
// ---------------------------------------------------------------------------

func TestAttestRoundTrip(t *testing.T) {
	s := NewThresholdScheme(4, 3, []byte("dealer"))
	msg := []byte("checkpoint digest @ height 48")
	shares := map[uint32][]byte{}
	for p := uint32(0); p < 4; p++ {
		shares[p] = s.Share(p, msg)
	}
	at, err := s.Attest(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if len(at.Signers) != 3 {
		t.Fatalf("attestation carries %d signers, want t=3", len(at.Signers))
	}
	if !s.VerifyAttestation(msg, at) {
		t.Fatal("valid attestation rejected")
	}
	if s.VerifyAttestation([]byte("other"), at) {
		t.Fatal("attestation verified for the wrong message")
	}

	wire := at.Marshal(nil)
	back, rest, err := UnmarshalAttestation(wire)
	if err != nil || len(rest) != 0 {
		t.Fatalf("unmarshal: %v (rest %d)", err, len(rest))
	}
	if !s.VerifyAttestation(msg, back) {
		t.Fatal("attestation did not survive the wire round trip")
	}

	// Tampered signer set must fail.
	back.Signers[0] = 3
	if s.VerifyAttestation(msg, back) {
		t.Fatal("attestation verified with a swapped signer set")
	}
}

func TestAttestInsufficientShares(t *testing.T) {
	s := NewThresholdScheme(4, 3, []byte("dealer"))
	msg := []byte("m")
	if _, err := s.Attest(msg, map[uint32][]byte{0: s.Share(0, msg)}); err == nil {
		t.Fatal("attested with fewer than t shares")
	}
}

func TestUnmarshalAttestationTruncated(t *testing.T) {
	s := NewThresholdScheme(4, 3, []byte("dealer"))
	msg := []byte("m")
	shares := map[uint32][]byte{}
	for p := uint32(0); p < 3; p++ {
		shares[p] = s.Share(p, msg)
	}
	at, _ := s.Attest(msg, shares)
	wire := at.Marshal(nil)
	for cut := 0; cut < len(wire); cut++ {
		if _, _, err := UnmarshalAttestation(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

func TestParseScheme(t *testing.T) {
	for in, want := range map[string]Scheme{
		"": SchemeNone, "none": SchemeNone, "None": SchemeNone,
		"mac": SchemeMAC, "MAC": SchemeMAC, "ds": SchemeDS, "DS": SchemeDS,
	} {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Fatalf("ParseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScheme("rsa"); err == nil {
		t.Fatal("unknown scheme parsed")
	}
}
