package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// ThresholdScheme is an (t, n) threshold signature scheme: any t of the n
// parties can jointly produce a signature verifiable against the group.
//
// Real SBFT and HotStuff use BLS threshold signatures. This implementation
// simulates the interface with HMAC shares combined into a deterministic
// aggregate: a share is HMAC(k_i, msg), and the combined signature is the
// hash of the t lexicographically-smallest signer IDs with their shares.
// The simulation preserves exactly the properties the protocols rely on:
//
//   - a share can only be produced by a party holding its share key,
//   - t valid shares from distinct parties combine into one constant-size
//     proof,
//   - the proof is verifiable by anyone holding the group key and the
//     signer set.
//
// It does NOT provide signer anonymity or non-interactive public
// verification against a single group public key; the simulators charge
// BLS-style CPU costs (CostShareGen, CostCombine, CostThreshVrfy) so the
// performance model matches the real primitive.
type ThresholdScheme struct {
	n         int
	threshold int
	group     []byte   // group secret all parties share (trusted dealer)
	keys      sync.Map // party -> []byte share key, derived once
}

// NewThresholdScheme creates a (threshold, n) scheme from a dealer secret.
func NewThresholdScheme(n, threshold int, secret []byte) *ThresholdScheme {
	cp := append([]byte(nil), secret...)
	return &ThresholdScheme{n: n, threshold: threshold, group: cp}
}

// Threshold returns t.
func (s *ThresholdScheme) Threshold() int { return s.threshold }

// shareKey returns party's share key, deriving it on first use — repeated
// shares and verifications (every checkpoint, every statesync offer) skip
// the HMAC key schedule.
func (s *ThresholdScheme) shareKey(party uint32) []byte {
	if k, ok := s.keys.Load(party); ok {
		return k.([]byte)
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], party)
	h := hmac.New(sha256.New, s.group)
	h.Write(b[:])
	k, _ := s.keys.LoadOrStore(party, h.Sum(nil))
	return k.([]byte)
}

// Share produces party's signature share over msg.
func (s *ThresholdScheme) Share(party uint32, msg []byte) []byte {
	h := hmac.New(sha256.New, s.shareKey(party))
	h.Write(msg)
	return h.Sum(nil)
}

// VerifyShare checks that share is party's share over msg.
func (s *ThresholdScheme) VerifyShare(party uint32, msg, share []byte) bool {
	return hmac.Equal(s.Share(party, msg), share)
}

// Combine merges at least t valid shares (keyed by party) into a combined
// signature. Returns nil if fewer than t shares are supplied or any share
// fails verification.
func (s *ThresholdScheme) Combine(msg []byte, shares map[uint32][]byte) []byte {
	if len(shares) < s.threshold {
		return nil
	}
	parties := make([]uint32, 0, len(shares))
	for p, sh := range shares {
		if !s.VerifyShare(p, msg, sh) {
			return nil
		}
		parties = append(parties, p)
	}
	sort.Slice(parties, func(i, j int) bool { return parties[i] < parties[j] })
	parties = parties[:s.threshold]
	h := sha256.New()
	h.Write(s.group)
	h.Write(msg)
	var b [4]byte
	for _, p := range parties {
		binary.BigEndian.PutUint32(b[:], p)
		h.Write(b[:])
		h.Write(shares[p])
	}
	return h.Sum(nil)
}

// Attestation is a constant-size, serializable aggregate of t threshold
// shares over a message: the signer set plus the combined signature. It is
// the groundwork for checkpoint and statesync offer attestation (ROADMAP
// item 5) — a replica that gathers t shares over a checkpoint digest can
// attach one Attestation to its offer, and a fetcher verifies it against
// the group scheme instead of demanding f+1 byte-identical offers from
// quiescent-enough peers.
type Attestation struct {
	// Signers is the sorted set of parties whose shares were combined
	// (exactly t of them).
	Signers []uint32
	// Sig is the combined signature over the attested message.
	Sig []byte
}

// Attest combines at least t valid shares (keyed by party) into a
// verifiable Attestation.
func (s *ThresholdScheme) Attest(msg []byte, shares map[uint32][]byte) (*Attestation, error) {
	sig := s.Combine(msg, shares)
	if sig == nil {
		return nil, fmt.Errorf("crypto: attest: %d shares, need %d valid", len(shares), s.threshold)
	}
	parties := make([]uint32, 0, len(shares))
	for p := range shares {
		parties = append(parties, p)
	}
	sort.Slice(parties, func(i, j int) bool { return parties[i] < parties[j] })
	return &Attestation{Signers: parties[:s.threshold], Sig: sig}, nil
}

// VerifyAttestation checks an Attestation over msg.
func (s *ThresholdScheme) VerifyAttestation(msg []byte, at *Attestation) bool {
	return at != nil && s.VerifyCombined(msg, at.Signers, at.Sig)
}

// Marshal appends the attestation's wire encoding to buf:
// count(u16) signer(u32)* sigLen(u16) sig.
func (at *Attestation) Marshal(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(at.Signers)))
	for _, p := range at.Signers {
		buf = binary.BigEndian.AppendUint32(buf, p)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(at.Sig)))
	return append(buf, at.Sig...)
}

// UnmarshalAttestation decodes one attestation from b, returning the
// remainder of the buffer.
func UnmarshalAttestation(b []byte) (*Attestation, []byte, error) {
	if len(b) < 2 {
		return nil, b, fmt.Errorf("crypto: attestation truncated")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < 4*n+2 {
		return nil, b, fmt.Errorf("crypto: attestation signer set truncated")
	}
	at := &Attestation{Signers: make([]uint32, n)}
	for i := 0; i < n; i++ {
		at.Signers[i] = binary.BigEndian.Uint32(b)
		b = b[4:]
	}
	sl := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < sl {
		return nil, b, fmt.Errorf("crypto: attestation signature truncated")
	}
	at.Sig = append([]byte(nil), b[:sl]...)
	return at, b[sl:], nil
}

// VerifyCombined checks a combined signature over msg given the claimed
// signer set (which must contain at least t parties).
func (s *ThresholdScheme) VerifyCombined(msg []byte, signers []uint32, combined []byte) bool {
	if len(signers) < s.threshold {
		return false
	}
	shares := make(map[uint32][]byte, len(signers))
	for _, p := range signers {
		shares[p] = s.Share(p, msg)
	}
	want := s.Combine(msg, shares)
	return want != nil && hmac.Equal(want, combined)
}
