package digestcache

import (
	"encoding/binary"
	"sync"
	"testing"
)

func key(i int) Key {
	var k Key
	k.Client = uint64(i % 7)
	k.Seq = uint64(i)
	binary.BigEndian.PutUint64(k.Digest[:], uint64(i*2654435761))
	k.Digest[0] = byte(i) // spread across shards
	return k
}

func TestHitMiss(t *testing.T) {
	c := New(1024)
	k := key(1)
	if c.Contains(k) {
		t.Fatal("empty cache reported a hit")
	}
	c.Add(k)
	if !c.Contains(k) {
		t.Fatal("added key not found")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestDistinctKeys(t *testing.T) {
	c := New(1024)
	a, b := key(1), key(1)
	b.Digest[5] ^= 0xff // same (client, seq), different digest
	c.Add(a)
	if c.Contains(b) {
		t.Fatal("digest change must miss: the digest binds payload and tag")
	}
	b = key(1)
	b.Seq++
	if c.Contains(b) {
		t.Fatal("seq change must miss")
	}
}

func TestBounded(t *testing.T) {
	const capEntries = 256
	c := New(capEntries)
	for i := 0; i < capEntries*8; i++ {
		c.Add(key(i))
	}
	if st := c.Stats(); st.Len > capEntries {
		t.Fatalf("cache grew to %d entries, cap %d", st.Len, capEntries)
	}
}

func TestEvictionPrefersStale(t *testing.T) {
	c := New(shardCount) // one entry per shard before eviction kicks in
	hot := key(0)
	c.Add(hot)
	// Hammer the hot key's shard with cold keys, touching hot in between.
	for i := 1; i < 64; i++ {
		k := key(i)
		k.Digest[0] = hot.Digest[0] // same shard
		c.Contains(hot)             // refresh recency
		c.Add(k)
	}
	// With per-shard cap 1 even the hot key churns; just assert bound held.
	st := c.Stats()
	if st.Len > shardCount {
		t.Fatalf("len %d exceeds total cap %d", st.Len, shardCount)
	}
}

func TestConcurrent(t *testing.T) {
	c := New(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(g*2000 + i)
				c.Add(k)
				if !c.Contains(k) && c.Stats().Len == 0 {
					t.Error("added key missing from non-full cache")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Len > 4096 {
		t.Fatalf("len %d exceeds cap", st.Len)
	}
}
