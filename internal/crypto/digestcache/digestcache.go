// Package digestcache holds a sharded, bounded LRU of verified
// client-request digests.
//
// Under RCC, all m concurrent instances of a replica see the same forwarded
// client request — and retransmissions re-deliver it again. Each arrival
// used to pay a full signature (or MAC) verification. The cache keys on
// (client, seq, digest), where the digest binds the sender party, the exact
// authenticated payload bytes, and the tag: a hit proves this precise triple
// was verified before on this replica, so re-verifying is pure waste. A miss
// verifies as usual and, on success, inserts.
//
// Sharding keeps the transport's verify workers from serializing on one
// lock; per-shard LRU eviction bounds memory no matter how many clients
// churn. Only successful verifications are inserted, so cache state can
// never turn a forgery into an accept — and because a hit and a miss return
// on the same code path of the same worker, hit/miss patterns cannot reorder
// per-link delivery (pinned by runtime's determinism tests).
package digestcache

import (
	"sync"
	"sync/atomic"
)

// DigestSize is the byte width of Key.Digest (SHA-256).
const DigestSize = 32

// DefaultEntries is the default total capacity.
const DefaultEntries = 1 << 16

const shardCount = 16 // power of two; low bits of the digest pick the shard

// Key identifies one verified (client, seq, digest) tuple. Digest must bind
// everything the verification depended on (sender party, payload, tag).
type Key struct {
	Client uint64
	Seq    uint64
	Digest [DigestSize]byte
}

// Stats is a point-in-time view of cache effectiveness.
type Stats struct {
	Hits   uint64
	Misses uint64
	Len    int // entries currently cached
}

// Cache is a sharded, bounded LRU set of verified digests. Safe for
// concurrent use. The zero value is not usable; call New.
type Cache struct {
	shards [shardCount]shard
	perCap int
	hits   atomic.Uint64
	misses atomic.Uint64
}

// New creates a cache holding up to entries keys (entries <= 0 picks
// DefaultEntries). Capacity splits evenly across shards.
func New(entries int) *Cache {
	if entries <= 0 {
		entries = DefaultEntries
	}
	per := entries / shardCount
	if per < 1 {
		per = 1
	}
	c := &Cache{perCap: per}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]uint64, per)
	}
	return c
}

// shard is one LRU segment: a map from key to last-touch tick, with
// clock-style eviction of the oldest half when full. This trades exact LRU
// order for a lock held only briefly and no per-entry list allocations; the
// workload (hot keys re-verified within milliseconds, cold keys never
// again) doesn't reward exactness.
type shard struct {
	mu   sync.Mutex
	m    map[Key]uint64
	tick uint64
}

func (c *Cache) shard(k *Key) *shard {
	return &c.shards[int(k.Digest[0])&(shardCount-1)]
}

// Contains reports whether k was previously inserted, refreshing its
// recency and counting the lookup as a hit or miss.
func (c *Cache) Contains(k Key) bool {
	s := c.shard(&k)
	s.mu.Lock()
	_, ok := s.m[k]
	if ok {
		s.tick++
		s.m[k] = s.tick
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ok
}

// Add inserts k (refreshing it if present), evicting the least-recent half
// of its shard when the shard is full.
func (c *Cache) Add(k Key) {
	s := c.shard(&k)
	s.mu.Lock()
	s.tick++
	if _, ok := s.m[k]; !ok && len(s.m) >= c.perCap {
		s.evictLocked()
	}
	s.m[k] = s.tick
	s.mu.Unlock()
}

// evictLocked drops the less-recent half of the shard, amortizing eviction
// cost across many inserts. Ticks are unique per operation, so at most
// len/2 distinct ticks fit in (tick-len/2, tick] — the cut always frees at
// least half the shard.
func (s *shard) evictLocked() {
	cut := s.tick - uint64(len(s.m))/2
	for k, t := range s.m {
		if t <= cut {
			delete(s.m, k)
		}
	}
}

// Stats returns cumulative hit/miss counters and the current entry count.
func (c *Cache) Stats() Stats {
	st := Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Len += len(s.m)
		s.mu.Unlock()
	}
	return st
}
