package crypto

import "crypto/ed25519"

// BatchVerifier accumulates (public key, payload, signature) triples and
// verifies them together. The shape matches algebraic ED25519 batch
// verification (one multi-scalar check over the whole batch, bisection to
// isolate forgeries when the aggregate check fails); the standard library
// exposes no batch equation, so the default backend verifies a range by
// checking its items with early exit — the transport still wins by running
// whole frames per worker dispatch, and a real batch backend slots in
// behind checkFn without touching any caller.
//
// The zero value is ready to use. A BatchVerifier is not safe for
// concurrent use; pool or stack-allocate per call site.
type BatchVerifier struct {
	pubs     []ed25519.PublicKey
	payloads [][]byte
	sigs     [][]byte

	// checkFn, when set, replaces the range check — tests inject counting
	// or algebraic backends here.
	checkFn func(lo, hi int) bool
}

// Add appends one triple to the batch. The slices are retained until Reset.
func (v *BatchVerifier) Add(pub ed25519.PublicKey, payload, sig []byte) {
	v.pubs = append(v.pubs, pub)
	v.payloads = append(v.payloads, payload)
	v.sigs = append(v.sigs, sig)
}

// Len reports the number of accumulated triples.
func (v *BatchVerifier) Len() int { return len(v.pubs) }

// Reset empties the batch, retaining capacity for reuse.
func (v *BatchVerifier) Reset() {
	v.pubs = v.pubs[:0]
	v.payloads = v.payloads[:0]
	v.sigs = v.sigs[:0]
}

// Verify reports whether every accumulated triple carries a valid
// signature. On false, Failed isolates the invalid indices.
func (v *BatchVerifier) Verify() bool { return v.check(0, v.Len()) }

// Failed returns the indices (ascending) of the invalid triples by
// bisecting the batch check: a clean half is vouched for by one aggregate
// check, so k forgeries in a batch of n cost O(k log n) range checks
// instead of a full per-item sweep.
func (v *BatchVerifier) Failed() []int {
	return v.bisect(0, v.Len(), nil)
}

func (v *BatchVerifier) bisect(lo, hi int, out []int) []int {
	if lo >= hi || v.check(lo, hi) {
		return out
	}
	if hi-lo == 1 {
		return append(out, lo)
	}
	mid := lo + (hi-lo)/2
	out = v.bisect(lo, mid, out)
	return v.bisect(mid, hi, out)
}

// check verifies the half-open range [lo, hi) as a unit.
func (v *BatchVerifier) check(lo, hi int) bool {
	if v.checkFn != nil {
		return v.checkFn(lo, hi)
	}
	for i := lo; i < hi; i++ {
		if len(v.pubs[i]) != ed25519.PublicKeySize ||
			!ed25519.Verify(v.pubs[i], v.payloads[i], v.sigs[i]) {
			return false
		}
	}
	return true
}
