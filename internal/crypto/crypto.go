// Package crypto provides the message-authentication primitives used by the
// consensus protocols: no authentication (baseline), HMAC-SHA256 message
// authentication codes (standing in for the paper's CMAC-AES), and ED25519
// digital signatures, plus a threshold-signature scheme for SBFT and
// HotStuff.
//
// The package also exports the per-operation CPU cost table used by the
// simulators: the paper (§V-B, Fig. 7 right) reports that digital signatures
// reduce PBFT throughput by 86% and MACs by 33% relative to no
// authentication; the costs below reproduce those ratios.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/types"
)

// Scheme selects the authentication scheme for replica-to-replica messages.
type Scheme uint8

// Authentication schemes (paper Fig. 7 right: None / DS / MAC).
const (
	SchemeNone Scheme = iota // no authentication (baseline)
	SchemeMAC                // HMAC-SHA256 pairwise MACs (CMAC-AES in the paper)
	SchemeDS                 // ED25519 digital signatures
)

func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "None"
	case SchemeMAC:
		return "MAC"
	case SchemeDS:
		return "DS"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// Simulated per-operation CPU costs. Calibrated so that, with the paper's
// message mix, DS costs ≈ 86% throughput and MAC ≈ 33% (Fig. 7 right).
const (
	CostMACGen     = 2 * time.Microsecond
	CostMACVerify  = 2 * time.Microsecond
	CostDSSign     = 55 * time.Microsecond
	CostDSVerify   = 130 * time.Microsecond
	CostShareGen   = 60 * time.Microsecond  // threshold share
	CostCombine    = 150 * time.Microsecond // combine nf shares
	CostThreshVrfy = 140 * time.Microsecond // verify combined signature
)

// SignCost returns the simulated CPU time to authenticate one outgoing
// message under scheme s. For MACs the cost is per recipient (a broadcast
// needs one MAC per receiver); callers multiply accordingly.
func SignCost(s Scheme) time.Duration {
	switch s {
	case SchemeMAC:
		return CostMACGen
	case SchemeDS:
		return CostDSSign
	default:
		return 0
	}
}

// VerifyCost returns the simulated CPU time to verify one incoming message.
func VerifyCost(s Scheme) time.Duration {
	switch s {
	case SchemeMAC:
		return CostMACVerify
	case SchemeDS:
		return CostDSVerify
	default:
		return 0
	}
}

// Authenticator authenticates messages between a fixed set of parties.
// Implementations are safe for concurrent use after construction.
type Authenticator interface {
	// Scheme reports the underlying scheme.
	Scheme() Scheme
	// Tag authenticates payload from the local party to party `to`.
	Tag(to uint32, payload []byte) []byte
	// Verify checks a tag on payload claimed to be from party `from`
	// addressed to the local party.
	Verify(from uint32, payload, tag []byte) bool
}

// PartyID builds the uint32 party identifier for a replica.
func PartyID(r types.ReplicaID) uint32 { return uint32(r) }

// ClientPartyID builds the uint32 party identifier for a client. Client IDs
// live in a disjoint range above all replica IDs.
func ClientPartyID(c types.ClientID) uint32 { return uint32(c) | 1<<31 }

// ---------------------------------------------------------------------------
// None
// ---------------------------------------------------------------------------

type noneAuth struct{}

// NewNone returns an Authenticator that performs no authentication.
func NewNone() Authenticator { return noneAuth{} }

func (noneAuth) Scheme() Scheme                     { return SchemeNone }
func (noneAuth) Tag(uint32, []byte) []byte          { return nil }
func (noneAuth) Verify(uint32, []byte, []byte) bool { return true }

// ---------------------------------------------------------------------------
// MAC (HMAC-SHA256 with pairwise keys derived from a shared system secret)
// ---------------------------------------------------------------------------

type macAuth struct {
	self   uint32
	secret []byte
}

// NewMAC returns a MAC authenticator for party self. All parties of a
// deployment must share the same system secret; pairwise keys are derived
// from it, mirroring how ResilientDB provisions CMAC-AES keys out of band.
func NewMAC(self uint32, secret []byte) Authenticator {
	cp := append([]byte(nil), secret...)
	return &macAuth{self: self, secret: cp}
}

func (a *macAuth) Scheme() Scheme { return SchemeMAC }

// pairKey derives the symmetric key for the unordered pair {x, y}.
func (a *macAuth) pairKey(x, y uint32) []byte {
	if x > y {
		x, y = y, x
	}
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], x)
	binary.BigEndian.PutUint32(b[4:], y)
	h := hmac.New(sha256.New, a.secret)
	h.Write(b[:])
	return h.Sum(nil)
}

func (a *macAuth) Tag(to uint32, payload []byte) []byte {
	h := hmac.New(sha256.New, a.pairKey(a.self, to))
	h.Write(payload)
	return h.Sum(nil)
}

func (a *macAuth) Verify(from uint32, payload, tag []byte) bool {
	h := hmac.New(sha256.New, a.pairKey(from, a.self))
	h.Write(payload)
	return hmac.Equal(h.Sum(nil), tag)
}

// ---------------------------------------------------------------------------
// DS (ED25519)
// ---------------------------------------------------------------------------

// KeyRing holds the ED25519 public keys of all parties in a deployment.
type KeyRing struct {
	pubs map[uint32]ed25519.PublicKey
}

// NewKeyRing creates an empty key ring.
func NewKeyRing() *KeyRing { return &KeyRing{pubs: make(map[uint32]ed25519.PublicKey)} }

// Add registers the public key of a party. Not safe to call concurrently
// with Verify; populate the ring during setup.
func (kr *KeyRing) Add(party uint32, pub ed25519.PublicKey) { kr.pubs[party] = pub }

type dsAuth struct {
	self uint32
	priv ed25519.PrivateKey
	ring *KeyRing
}

// NewDS returns a digital-signature authenticator for party self.
func NewDS(self uint32, priv ed25519.PrivateKey, ring *KeyRing) Authenticator {
	return &dsAuth{self: self, priv: priv, ring: ring}
}

// GenerateKey generates an ED25519 keypair.
func GenerateKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(rand.Reader)
}

func (a *dsAuth) Scheme() Scheme { return SchemeDS }

func (a *dsAuth) Tag(_ uint32, payload []byte) []byte {
	return ed25519.Sign(a.priv, payload)
}

func (a *dsAuth) Verify(from uint32, payload, tag []byte) bool {
	pub, ok := a.ring.pubs[from]
	if !ok {
		return false
	}
	return ed25519.Verify(pub, payload, tag)
}
