// Package crypto provides the message-authentication primitives used by the
// consensus protocols: no authentication (baseline), HMAC-SHA256 message
// authentication codes (standing in for the paper's CMAC-AES), and ED25519
// digital signatures, plus a threshold-signature scheme for SBFT and
// HotStuff.
//
// The live-path implementations are built for line rate: the MAC
// authenticator derives each pairwise key once and keeps the HMAC inner and
// outer SHA-256 states precomputed (Tag/Verify then cost two short hash
// finalizations, no key schedule, no allocations on the Verify path), the DS
// authenticator freezes its public-key ring at construction so verification
// never races provisioning, and BatchVerifier amortizes signature checks
// over whole inbound frames with bisection to isolate bad records.
//
// The package also exports the per-operation CPU cost table used by the
// simulators: the paper (§V-B, Fig. 7 right) reports that digital signatures
// reduce PBFT throughput by 86% and MACs by 33% relative to no
// authentication; the costs below reproduce those ratios.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"
	"strings"
	"sync"
	"time"

	"repro/internal/types"
)

// Scheme selects the authentication scheme for replica-to-replica messages.
type Scheme uint8

// Authentication schemes (paper Fig. 7 right: None / DS / MAC).
const (
	SchemeNone Scheme = iota // no authentication (baseline)
	SchemeMAC                // HMAC-SHA256 pairwise MACs (CMAC-AES in the paper)
	SchemeDS                 // ED25519 digital signatures
)

func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "None"
	case SchemeMAC:
		return "MAC"
	case SchemeDS:
		return "DS"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// ParseScheme parses the -auth flag values used by rccnode and rccclient.
// The empty string means no authentication.
func ParseScheme(s string) (Scheme, error) {
	switch strings.ToLower(s) {
	case "", "none":
		return SchemeNone, nil
	case "mac":
		return SchemeMAC, nil
	case "ds":
		return SchemeDS, nil
	}
	return SchemeNone, fmt.Errorf("crypto: unknown auth scheme %q (want none, mac, or ds)", s)
}

// Simulated per-operation CPU costs. Calibrated so that, with the paper's
// message mix, DS costs ≈ 86% throughput and MAC ≈ 33% (Fig. 7 right).
const (
	CostMACGen     = 2 * time.Microsecond
	CostMACVerify  = 2 * time.Microsecond
	CostDSSign     = 55 * time.Microsecond
	CostDSVerify   = 130 * time.Microsecond
	CostShareGen   = 60 * time.Microsecond  // threshold share
	CostCombine    = 150 * time.Microsecond // combine nf shares
	CostThreshVrfy = 140 * time.Microsecond // verify combined signature
)

// SignCost returns the simulated CPU time to authenticate one outgoing
// message under scheme s. For MACs the cost is per recipient (a broadcast
// needs one MAC per receiver); callers multiply accordingly.
func SignCost(s Scheme) time.Duration {
	switch s {
	case SchemeMAC:
		return CostMACGen
	case SchemeDS:
		return CostDSSign
	default:
		return 0
	}
}

// VerifyCost returns the simulated CPU time to verify one incoming message.
func VerifyCost(s Scheme) time.Duration {
	switch s {
	case SchemeMAC:
		return CostMACVerify
	case SchemeDS:
		return CostDSVerify
	default:
		return 0
	}
}

// Authenticator authenticates messages between a fixed set of parties.
// Implementations are safe for concurrent use after construction.
type Authenticator interface {
	// Scheme reports the underlying scheme.
	Scheme() Scheme
	// Tag authenticates payload from the local party to party `to`.
	Tag(to uint32, payload []byte) []byte
	// Verify checks a tag on payload claimed to be from party `from`
	// addressed to the local party.
	Verify(from uint32, payload, tag []byte) bool
}

// TagAppender is implemented by authenticators whose Tag can append into a
// caller-provided buffer, keeping hot send paths allocation-free. The MAC
// authenticator implements it; ED25519 signing allocates inside the standard
// library either way.
type TagAppender interface {
	// AppendTag appends the tag over payload (addressed to party `to`) to
	// dst and returns the extended slice.
	AppendTag(to uint32, payload, dst []byte) []byte
}

// BatchAuthenticator is implemented by authenticators that can verify many
// records from one sender as a unit — the transport's verify workers use it
// to drain whole frames of votes per call instead of one signature at a
// time. ok[i] reports the verdict for (payloads[i], tags[i]).
type BatchAuthenticator interface {
	VerifyBatch(from uint32, payloads, tags [][]byte, ok []bool)
}

// PartyID builds the uint32 party identifier for a replica.
func PartyID(r types.ReplicaID) uint32 { return uint32(r) }

// ClientPartyID builds the uint32 party identifier for a client. Client IDs
// live in a disjoint range above all replica IDs.
func ClientPartyID(c types.ClientID) uint32 { return uint32(c) | 1<<31 }

// ---------------------------------------------------------------------------
// None
// ---------------------------------------------------------------------------

type noneAuth struct{}

// NewNone returns an Authenticator that performs no authentication.
func NewNone() Authenticator { return noneAuth{} }

// NewAuth builds party's authenticator for scheme from one shared secret:
// nothing for SchemeNone, cached pairwise HMACs for SchemeMAC, and the
// deterministic dev ED25519 keyring for SchemeDS. This is the provisioning
// model of rccnode/rccclient's -auth flag — one secret distributed to the
// deployment, per-party keys derived from it. Production DS deployments
// should provision real keys via NewDS and a sealed KeyRing instead.
func NewAuth(s Scheme, party uint32, secret []byte) (Authenticator, error) {
	switch s {
	case SchemeNone:
		return NewNone(), nil
	case SchemeMAC:
		if len(secret) == 0 {
			return nil, fmt.Errorf("crypto: scheme mac requires a shared secret")
		}
		return NewMAC(party, secret), nil
	case SchemeDS:
		if len(secret) == 0 {
			return nil, fmt.Errorf("crypto: scheme ds requires a shared secret (dev keyring seed)")
		}
		return NewDSDev(party, secret), nil
	}
	return nil, fmt.Errorf("crypto: unknown scheme %v", s)
}

func (noneAuth) Scheme() Scheme                     { return SchemeNone }
func (noneAuth) Tag(uint32, []byte) []byte          { return nil }
func (noneAuth) Verify(uint32, []byte, []byte) bool { return true }

// ---------------------------------------------------------------------------
// MAC (HMAC-SHA256 with pairwise keys derived from a shared system secret)
// ---------------------------------------------------------------------------

// shaDigest is the concrete capability set of a sha256 digest: its state
// can be exported once and reimported per operation, which is what lets a
// precomputed HMAC key schedule be reused without re-hashing the key pads.
type shaDigest interface {
	hash.Hash
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// macScratch bundles one pooled sha256 digest with the intermediate sum
// buffers, so neither the inner digest nor a Verify comparison target ever
// escapes to a per-call heap allocation.
type macScratch struct {
	h     shaDigest
	inner [sha256.Size]byte
	out   [sha256.Size]byte
}

// shaPool recycles digest scratch across Tag/Verify calls; every use fully
// overwrites the hash state via UnmarshalBinary, so reuse is safe.
var shaPool = sync.Pool{New: func() any { return &macScratch{h: sha256.New().(shaDigest)} }}

// hmacState is the precomputed key schedule of one HMAC-SHA256 key: the
// serialized sha256 states after absorbing the inner (key^ipad) and outer
// (key^opad) blocks. Tagging a payload is then inner-resume + payload +
// finalize, outer-resume + digest + finalize — two short hash runs with no
// key processing.
type hmacState struct {
	ipad, opad []byte
}

func newHMACState(key []byte) *hmacState {
	var block [sha256.BlockSize]byte
	if len(key) > sha256.BlockSize {
		sum := sha256.Sum256(key)
		key = sum[:]
	}
	copy(block[:], key)
	for i := range block {
		block[i] ^= 0x36
	}
	h := sha256.New().(shaDigest)
	h.Write(block[:])
	ipad, _ := h.MarshalBinary()
	for i := range block {
		block[i] ^= 0x36 ^ 0x5c
	}
	h = sha256.New().(shaDigest)
	h.Write(block[:])
	opad, _ := h.MarshalBinary()
	return &hmacState{ipad: ipad, opad: opad}
}

// appendSum appends the 32-byte HMAC of payload to dst.
func (st *hmacState) appendSum(dst, payload []byte) []byte {
	sc := shaPool.Get().(*macScratch)
	st.sumInto(sc, payload)
	dst = append(dst, sc.out[:]...)
	shaPool.Put(sc)
	return dst
}

// verify recomputes the HMAC of payload and compares it to tag without
// allocating.
func (st *hmacState) verify(payload, tag []byte) bool {
	sc := shaPool.Get().(*macScratch)
	st.sumInto(sc, payload)
	eq := hmac.Equal(sc.out[:], tag)
	shaPool.Put(sc)
	return eq
}

// sumInto computes the HMAC of payload into sc.out.
func (st *hmacState) sumInto(sc *macScratch, payload []byte) {
	h := sc.h
	if err := h.UnmarshalBinary(st.ipad); err != nil {
		panic("crypto: resuming hmac inner state: " + err.Error())
	}
	h.Write(payload)
	h.Sum(sc.inner[:0])
	if err := h.UnmarshalBinary(st.opad); err != nil {
		panic("crypto: resuming hmac outer state: " + err.Error())
	}
	h.Write(sc.inner[:])
	h.Sum(sc.out[:0])
}

type macAuth struct {
	self   uint32
	secret []byte
	states sync.Map // peer party -> *hmacState, built lazily, never evicted
}

// NewMAC returns a MAC authenticator for party self. All parties of a
// deployment must share the same system secret; pairwise keys are derived
// from it, mirroring how ResilientDB provisions CMAC-AES keys out of band.
//
// Each peer's key schedule is derived once on first use and cached, so
// steady-state Tag/Verify never re-derive the pairwise key (compare
// NewMACUncached, the pre-caching twin kept for the gated benchmark pair).
func NewMAC(self uint32, secret []byte) Authenticator {
	cp := append([]byte(nil), secret...)
	return &macAuth{self: self, secret: cp}
}

func (a *macAuth) Scheme() Scheme { return SchemeMAC }

// state returns the cached HMAC key schedule for the {self, peer} pair.
// The pair key is symmetric, so one state serves both Tag and Verify.
func (a *macAuth) state(peer uint32) *hmacState {
	if st, ok := a.states.Load(peer); ok {
		return st.(*hmacState)
	}
	st := newHMACState(derivePairKey(a.secret, a.self, peer))
	actual, _ := a.states.LoadOrStore(peer, st)
	return actual.(*hmacState)
}

func (a *macAuth) Tag(to uint32, payload []byte) []byte {
	return a.state(to).appendSum(make([]byte, 0, sha256.Size), payload)
}

// AppendTag implements TagAppender: the hot send path appends the tag
// straight into the frame buffer, allocation-free.
func (a *macAuth) AppendTag(to uint32, payload, dst []byte) []byte {
	return a.state(to).appendSum(dst, payload)
}

func (a *macAuth) Verify(from uint32, payload, tag []byte) bool {
	return a.state(from).verify(payload, tag)
}

// derivePairKey derives the symmetric key for the unordered pair {x, y}
// from the shared system secret.
func derivePairKey(secret []byte, x, y uint32) []byte {
	if x > y {
		x, y = y, x
	}
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], x)
	binary.BigEndian.PutUint32(b[4:], y)
	h := hmac.New(sha256.New, secret)
	h.Write(b[:])
	return h.Sum(nil)
}

// macUncached is the pre-caching MAC implementation: it re-derives the
// pairwise key and re-runs the full HMAC key schedule on every operation.
type macUncached struct {
	self   uint32
	secret []byte
}

// NewMACUncached returns a MAC authenticator that derives the pairwise key
// on every Tag/Verify — the reference twin BenchmarkAuth pairs against the
// cached implementation (scripts/benchgate enforces the speedup floor
// within one run). Produces tags byte-identical to NewMAC's.
func NewMACUncached(self uint32, secret []byte) Authenticator {
	cp := append([]byte(nil), secret...)
	return &macUncached{self: self, secret: cp}
}

func (a *macUncached) Scheme() Scheme { return SchemeMAC }

func (a *macUncached) Tag(to uint32, payload []byte) []byte {
	h := hmac.New(sha256.New, derivePairKey(a.secret, a.self, to))
	h.Write(payload)
	return h.Sum(nil)
}

func (a *macUncached) Verify(from uint32, payload, tag []byte) bool {
	h := hmac.New(sha256.New, derivePairKey(a.secret, from, a.self))
	h.Write(payload)
	return hmac.Equal(h.Sum(nil), tag)
}

// ---------------------------------------------------------------------------
// DS (ED25519)
// ---------------------------------------------------------------------------

// KeyRing holds the ED25519 public keys of all parties in a deployment.
// Populate it during setup with Add, then freeze it with Seal (or let NewDS
// snapshot it): verification runs on concurrent transport goroutines and
// must never observe a mutating map.
type KeyRing struct {
	mu     sync.Mutex
	sealed bool
	pubs   map[uint32]ed25519.PublicKey
}

// NewKeyRing creates an empty key ring.
func NewKeyRing() *KeyRing { return &KeyRing{pubs: make(map[uint32]ed25519.PublicKey)} }

// Add registers the public key of a party. Panics once the ring is sealed —
// provisioning after verification has started is a deployment bug, not a
// race to paper over.
func (kr *KeyRing) Add(party uint32, pub ed25519.PublicKey) {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	if kr.sealed {
		panic("crypto: KeyRing.Add after Seal")
	}
	kr.pubs[party] = pub
}

// Seal freezes the ring: further Adds panic. Returns the ring for chaining.
func (kr *KeyRing) Seal() *KeyRing {
	kr.mu.Lock()
	kr.sealed = true
	kr.mu.Unlock()
	return kr
}

// snapshot returns an immutable copy of the ring's current contents.
func (kr *KeyRing) snapshot() map[uint32]ed25519.PublicKey {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	cp := make(map[uint32]ed25519.PublicKey, len(kr.pubs))
	for p, k := range kr.pubs {
		cp[p] = k
	}
	return cp
}

type dsAuth struct {
	self uint32
	priv ed25519.PrivateKey
	// pubs is an immutable snapshot taken at construction (NewDS); a late
	// KeyRing.Add can neither race nor affect this authenticator.
	pubs map[uint32]ed25519.PublicKey
	// dev, when set, derives unknown parties' keys on demand from the
	// shared dev seed (NewDSDev); devPubs caches the derivations.
	dev     []byte
	devPubs sync.Map // party -> ed25519.PublicKey
}

// NewDS returns a digital-signature authenticator for party self. The ring
// is copied at construction: register every party before calling, and use
// KeyRing.Seal to make late provisioning fail loudly.
func NewDS(self uint32, priv ed25519.PrivateKey, ring *KeyRing) Authenticator {
	return &dsAuth{self: self, priv: priv, pubs: ring.snapshot()}
}

// NewDSDev returns a digital-signature authenticator whose entire key
// universe is derived deterministically from a shared secret: party p's
// keypair is ed25519.NewKeyFromSeed(HMAC(secret, p)). Every node of a dev
// deployment passes the same secret (rccnode/rccclient -auth ds
// -auth-secret) and can then verify any party — replicas and clients alike —
// without out-of-band key distribution. Real deployments provision a
// KeyRing instead; the signatures and their verification cost are identical,
// which is what makes Fig. 7 right measurable on a live TCP cluster.
func NewDSDev(self uint32, secret []byte) Authenticator {
	return &dsAuth{
		self: self,
		priv: DevKey(secret, self),
		dev:  append([]byte(nil), secret...),
	}
}

// DevKey derives party's deterministic dev-mode ED25519 private key from the
// shared secret.
func DevKey(secret []byte, party uint32) ed25519.PrivateKey {
	h := hmac.New(sha256.New, secret)
	h.Write([]byte("rcc-dev-ed25519/"))
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], party)
	h.Write(b[:])
	return ed25519.NewKeyFromSeed(h.Sum(nil))
}

// GenerateKey generates an ED25519 keypair.
func GenerateKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(rand.Reader)
}

func (a *dsAuth) Scheme() Scheme { return SchemeDS }

func (a *dsAuth) Tag(_ uint32, payload []byte) []byte {
	return ed25519.Sign(a.priv, payload)
}

func (a *dsAuth) pub(from uint32) (ed25519.PublicKey, bool) {
	if pub, ok := a.pubs[from]; ok {
		return pub, true
	}
	if a.dev == nil {
		return nil, false
	}
	if pub, ok := a.devPubs.Load(from); ok {
		return pub.(ed25519.PublicKey), true
	}
	pub := DevKey(a.dev, from).Public().(ed25519.PublicKey)
	actual, _ := a.devPubs.LoadOrStore(from, pub)
	return actual.(ed25519.PublicKey), true
}

func (a *dsAuth) Verify(from uint32, payload, tag []byte) bool {
	pub, ok := a.pub(from)
	if !ok {
		return false
	}
	return ed25519.Verify(pub, payload, tag)
}

// VerifyBatch implements BatchAuthenticator: all records of one frame share
// the sender, so they share the public key and flow through one
// BatchVerifier — valid frames (the overwhelming majority) cost one batch
// check, and a frame with forged records pays only the bisection to isolate
// them.
func (a *dsAuth) VerifyBatch(from uint32, payloads, tags [][]byte, ok []bool) {
	pub, found := a.pub(from)
	if !found {
		for i := range ok {
			ok[i] = false
		}
		return
	}
	var bv BatchVerifier
	for i := range payloads {
		bv.Add(pub, payloads[i], tags[i])
	}
	if bv.Verify() {
		for i := range ok {
			ok[i] = true
		}
		return
	}
	for i := range ok {
		ok[i] = true
	}
	for _, i := range bv.Failed() {
		ok[i] = false
	}
}
