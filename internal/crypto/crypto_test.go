package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMACRoundTrip(t *testing.T) {
	secret := []byte("deployment-secret")
	a := NewMAC(PartyID(0), secret)
	b := NewMAC(PartyID(1), secret)
	payload := []byte("the payload")
	tag := a.Tag(PartyID(1), payload)
	if !b.Verify(PartyID(0), payload, tag) {
		t.Fatal("valid MAC rejected")
	}
	if b.Verify(PartyID(0), []byte("tampered"), tag) {
		t.Fatal("tampered payload accepted")
	}
	if b.Verify(PartyID(2), payload, tag) {
		t.Fatal("wrong claimed sender accepted")
	}
}

func TestMACPairwiseKeysDiffer(t *testing.T) {
	secret := []byte("s")
	a := NewMAC(PartyID(0), secret)
	t01 := a.Tag(PartyID(1), []byte("m"))
	t02 := a.Tag(PartyID(2), []byte("m"))
	if bytes.Equal(t01, t02) {
		t.Fatal("same tag for different recipients: pairwise keys degenerate")
	}
}

func TestMACWrongSecretFails(t *testing.T) {
	a := NewMAC(PartyID(0), []byte("good"))
	b := NewMAC(PartyID(1), []byte("evil"))
	tag := a.Tag(PartyID(1), []byte("m"))
	if b.Verify(PartyID(0), []byte("m"), tag) {
		t.Fatal("MAC verified across different secrets")
	}
}

func TestDSRoundTrip(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ring := NewKeyRing()
	ring.Add(PartyID(3), pub)
	signer := NewDS(PartyID(3), priv, ring)
	verifier := NewDS(PartyID(1), nil, ring)

	payload := []byte("signed payload")
	sig := signer.Tag(0, payload)
	if !verifier.Verify(PartyID(3), payload, sig) {
		t.Fatal("valid signature rejected")
	}
	if verifier.Verify(PartyID(3), []byte("other"), sig) {
		t.Fatal("tampered payload accepted")
	}
	if verifier.Verify(PartyID(9), payload, sig) {
		t.Fatal("unknown signer accepted")
	}
}

func TestNoneAcceptsEverything(t *testing.T) {
	a := NewNone()
	if !a.Verify(0, []byte("x"), nil) {
		t.Fatal("None rejected a message")
	}
	if a.Tag(0, []byte("x")) != nil {
		t.Fatal("None produced a tag")
	}
}

func TestSchemeCosts(t *testing.T) {
	if SignCost(SchemeNone) != 0 || VerifyCost(SchemeNone) != 0 {
		t.Fatal("None must be free")
	}
	if SignCost(SchemeDS) <= SignCost(SchemeMAC) {
		t.Fatal("DS must cost more than MAC (Fig. 7 right)")
	}
	if VerifyCost(SchemeDS) <= VerifyCost(SchemeMAC) {
		t.Fatal("DS verify must cost more than MAC verify")
	}
}

func TestSchemeString(t *testing.T) {
	for _, s := range []Scheme{SchemeNone, SchemeMAC, SchemeDS, Scheme(9)} {
		if s.String() == "" {
			t.Fatal("empty scheme name")
		}
	}
}

func TestClientPartyIDsDisjointFromReplicas(t *testing.T) {
	f := func(r uint16, c uint32) bool {
		return PartyID(0)|uint32(r) != ClientPartyID(1)|ClientPartyID(0) &&
			ClientPartyID(0) >= 1<<31 && uint32(r) < 1<<31
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Threshold signatures
// ---------------------------------------------------------------------------

func TestThresholdCombineAndVerify(t *testing.T) {
	s := NewThresholdScheme(4, 3, []byte("dealer"))
	msg := []byte("commit round 7")
	shares := map[uint32][]byte{}
	for p := uint32(0); p < 3; p++ {
		shares[p] = s.Share(p, msg)
	}
	combined := s.Combine(msg, shares)
	if combined == nil {
		t.Fatal("combine failed with t shares")
	}
	if !s.VerifyCombined(msg, []uint32{0, 1, 2}, combined) {
		t.Fatal("valid combined signature rejected")
	}
	if s.VerifyCombined([]byte("other"), []uint32{0, 1, 2}, combined) {
		t.Fatal("combined signature verified for wrong message")
	}
}

func TestThresholdInsufficientShares(t *testing.T) {
	s := NewThresholdScheme(4, 3, []byte("dealer"))
	msg := []byte("m")
	shares := map[uint32][]byte{0: s.Share(0, msg), 1: s.Share(1, msg)}
	if s.Combine(msg, shares) != nil {
		t.Fatal("combined with fewer than t shares")
	}
	if s.VerifyCombined(msg, []uint32{0, 1}, []byte("x")) {
		t.Fatal("verified with fewer than t signers")
	}
}

func TestThresholdRejectsBadShare(t *testing.T) {
	s := NewThresholdScheme(4, 3, []byte("dealer"))
	msg := []byte("m")
	shares := map[uint32][]byte{
		0: s.Share(0, msg),
		1: s.Share(1, msg),
		2: []byte("forged"),
	}
	if s.Combine(msg, shares) != nil {
		t.Fatal("combined with a forged share")
	}
	if s.VerifyShare(2, msg, []byte("forged")) {
		t.Fatal("forged share verified")
	}
}

func TestThresholdCanonicalSubsetIndependence(t *testing.T) {
	// The combined signature over the same t smallest signers must be
	// identical regardless of which extra shares the collector held.
	s := NewThresholdScheme(7, 5, []byte("dealer"))
	msg := []byte("m")
	small := map[uint32][]byte{}
	for p := uint32(0); p < 5; p++ {
		small[p] = s.Share(p, msg)
	}
	big := map[uint32][]byte{}
	for p := uint32(0); p < 7; p++ {
		big[p] = s.Share(p, msg)
	}
	if !bytes.Equal(s.Combine(msg, small), s.Combine(msg, big)) {
		t.Fatal("combine is not canonical over the t smallest signers")
	}
}

func TestThresholdSharesDifferPerParty(t *testing.T) {
	s := NewThresholdScheme(4, 3, []byte("dealer"))
	f := func(msg []byte) bool {
		return !bytes.Equal(s.Share(0, msg), s.Share(1, msg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdDifferentDealersIncompatible(t *testing.T) {
	a := NewThresholdScheme(4, 3, []byte("dealer-a"))
	b := NewThresholdScheme(4, 3, []byte("dealer-b"))
	msg := []byte("m")
	if b.VerifyShare(0, msg, a.Share(0, msg)) {
		t.Fatal("share verified across dealers")
	}
}
