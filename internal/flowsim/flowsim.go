// Package flowsim is a resource/flow-level performance model of the
// evaluated consensus protocols. Where internal/simnet executes the real
// protocol state machines message by message, flowsim charges the same
// per-round byte, CPU, and execution costs against per-replica resource
// budgets and solves for the steady-state throughput — which makes n = 91
// sweeps instantaneous and is how the Fig. 7/8/9 series are regenerated.
//
// The model follows the paper's own analysis:
//
//   - §I-A/§II: throughput is governed by the outgoing bandwidth of the
//     busiest replica (the primary for primary-backup protocols; every
//     replica symmetrically under RCC).
//   - §V-B (Fig. 7 left): replicas can answer clients faster than they can
//     sequentially execute transactions — the execution ceiling.
//   - §V-B (Fig. 7 right): cryptography costs CPU; digital signatures cost
//     far more than MACs.
//   - §V-C/D: protocols without out-of-order processing are bounded by
//     message delay, not bandwidth (HotStuff, and everything in Fig. 8 g,h).
//   - §V-B: messages are handled by a dispatch pipeline; at large n the
//     sheer number of vote messages per round throttles quadratic-phase
//     protocols even when bandwidth would still have headroom.
//
// Absolute numbers depend on the environment constants below; the *shapes*
// (who wins, by what factor, where the crossovers are) are what this model
// reproduces — see EXPERIMENTS.md for measured-vs-paper values.
package flowsim

import (
	"fmt"
	"time"

	"repro/internal/crypto"
	"repro/internal/types"
)

// Protocol names the modeled Byzantine commit algorithms.
type Protocol string

// Modeled protocols.
const (
	PBFT     Protocol = "pbft"
	Zyzzyva  Protocol = "zyzzyva"
	SBFT     Protocol = "sbft"
	HotStuff Protocol = "hotstuff"
)

// Environment is the modeled deployment (paper §V-A: Google Cloud
// c2-machines with 16-core 3.8 GHz CPUs, 32 GB memory, ~1 Gbit/s).
type Environment struct {
	// BandwidthBps is each replica's outgoing bandwidth (bits/s).
	BandwidthBps float64
	// MsgDelay is the one-way message delay.
	MsgDelay time.Duration
	// CryptoCores is the CPU parallelism available for authentication
	// work (the rest of the cores run execution, I/O, and dispatch).
	CryptoCores float64
	// MsgHandle is the serialized per-incoming-message dispatch cost (the
	// network/ordering thread every message funnels through).
	MsgHandle time.Duration
	// ExecPerTxn and ExecPerBatch model sequential execution: a batch of
	// b transactions takes ExecPerBatch + b·ExecPerTxn.
	ExecPerTxn   time.Duration
	ExecPerBatch time.Duration
	// ClientIOPerTxn models request-receive plus reply-send handling.
	ClientIOPerTxn time.Duration
	// ThresholdCritical is the serialized per-round critical-path cost of
	// BLS-style threshold signatures (share + combined-proof pairing
	// checks; real BLS pairings cost ~1 ms, unlike the cheap HMAC
	// simulation internal/crypto uses for correctness testing).
	ThresholdCritical time.Duration
	// ZyzzyvaFailBatch is the effective per-batch completion time of
	// Zyzzyva's commit-certificate path under failures: clients must time
	// out waiting for all n responses before assembling certificates,
	// which serializes progress (§V-E: Zyzzyva's performance plummets).
	ZyzzyvaFailBatch time.Duration
	// ZyzzyvaClientPenalty discounts RCC-Z throughput for the client-pool
	// effect of §V-F: RCC-Z clients wait for all n replies before issuing
	// new transactions, so a finite client pool cannot keep all instances
	// saturated.
	ZyzzyvaClientPenalty float64
}

// DefaultEnv returns the environment calibrated against the paper's §V-B
// measurements (551 ktxn/s client I/O, execution ceiling, Fig. 7 crypto
// ratios, 365 ktxn/s peak at 400 txn/batch).
func DefaultEnv() Environment {
	return Environment{
		BandwidthBps:         1e9,
		MsgDelay:             7 * time.Millisecond,
		CryptoCores:          12,
		MsgHandle:            6 * time.Microsecond,
		ExecPerTxn:           2500 * time.Nanosecond,
		ExecPerBatch:         150 * time.Microsecond,
		ClientIOPerTxn:       1815 * time.Nanosecond,
		ThresholdCritical:    1200 * time.Microsecond,
		ZyzzyvaFailBatch:     35 * time.Millisecond,
		ZyzzyvaClientPenalty: 0.85,
	}
}

// Setup describes one evaluated configuration.
type Setup struct {
	// Protocol is the Byzantine commit algorithm.
	Protocol Protocol
	// N is the number of replicas; F is derived as ⌊(n−1)/3⌋.
	N int
	// Concurrent is the number of concurrent instances m (RCC). 0 or 1
	// models the standalone primary-backup protocol.
	Concurrent int
	// BatchSize is the number of transactions per proposal.
	BatchSize int
	// Crypto selects the replica-message authentication scheme.
	Crypto crypto.Scheme
	// ClientSig selects the client-transaction signature scheme. The
	// paper's Fig. 7 "MAC" configuration pairs CMAC replica messages with
	// ED25519 client signatures; the main experiments use the heavily
	// optimized MAC-everywhere configuration (§V-C).
	ClientSig crypto.Scheme
	// OutOfOrder enables out-of-order processing (proposal pipelining).
	// HotStuff ignores it (the protocol does not support it).
	OutOfOrder bool
	// Failures is the number of crashed replicas (0 or 1 in the paper).
	Failures int
	// Env is the modeled deployment; zero value means DefaultEnv.
	Env Environment
}

// F returns the derived fault bound.
func (s Setup) F() int { return (s.N - 1) / 3 }

// NF returns n − f.
func (s Setup) NF() int { return s.N - s.F() }

// Result is the modeled steady-state performance.
type Result struct {
	// Throughput in transactions per second.
	Throughput float64
	// Latency is the modeled client-observed latency.
	Latency time.Duration
	// Bound names the binding resource: "bandwidth", "cpu", "dispatch",
	// "execution", "clientio", "delay", "threshold", or "failpath".
	Bound string
}

// roleCost is the per-round resource cost of one replica role.
type roleCost struct {
	outBytes float64 // bytes sent per round
	inMsgs   float64 // messages received per round (dispatch load)
	sends    float64 // messages authenticated per round
	recvs    float64 // messages verified per round
	phases   float64 // one-way delays on the commit critical path
	thresh   bool    // threshold signatures on the critical path
}

// costs returns (primaryRole, backupRole) per-round costs for one instance
// of the protocol with n replicas and b transactions per batch.
func costs(p Protocol, n, b int) (roleCost, roleCost) {
	P := float64(types.ProposalWireSize(b))
	V := float64(types.ConsensusMsgBytes)
	R := float64(types.ReplyWireSize(b))
	n1 := float64(n - 1)
	switch p {
	case PBFT:
		// preprepare-prepare-commit (Example III.1): the primary's
		// preprepare doubles as its prepare; everyone broadcasts both
		// vote phases; every replica replies to the clients of its batch.
		pri := roleCost{
			outBytes: n1*P + n1*V + R,
			inMsgs:   2 * n1,
			sends:    2*n1 + 1,
			recvs:    2 * n1,
			phases:   3,
		}
		bak := roleCost{
			outBytes: 2*n1*V + R,
			inMsgs:   1 + 2*n1,
			sends:    2*n1 + 1,
			recvs:    1 + 2*n1,
			phases:   3,
		}
		return pri, bak
	case Zyzzyva:
		// Single-phase speculation: order request out, spec responses
		// straight to the client. The commit critical path still spans
		// three one-way delays (request, order request, responses), which
		// is what binds when out-of-order processing is off.
		pri := roleCost{
			outBytes: n1*P + R,
			inMsgs:   0,
			sends:    n1 + 1,
			recvs:    0,
			phases:   3,
		}
		bak := roleCost{
			outBytes: R,
			inMsgs:   1,
			sends:    1,
			recvs:    1,
			phases:   3,
		}
		return pri, bak
	case SBFT:
		// Linear collector phases: one share to the collector, one
		// combined proof broadcast back (collector duty rotates across
		// rounds, so its (n−1)-message load amortizes to ~1 per round).
		proofAmortized := n1 * V / float64(n)
		pri := roleCost{
			outBytes: n1*P + V + proofAmortized + R,
			inMsgs:   1 + n1/float64(n) + 1,
			sends:    n1 + 2,
			recvs:    2,
			phases:   3,
			thresh:   true,
		}
		bak := roleCost{
			outBytes: V + proofAmortized + R,
			inMsgs:   1 + n1/float64(n) + 1,
			sends:    2,
			recvs:    2,
			phases:   3,
			thresh:   true,
		}
		return pri, bak
	case HotStuff:
		// Chained single-phase: block proposal out, one vote to the next
		// leader. Leadership rotates every view, so the per-replica cost
		// is uniform: each replica leads 1/n of the blocks.
		amort := roleCost{
			outBytes: n1*P/float64(n) + V + R,
			inMsgs:   1 + 1,
			sends:    n1/float64(n) + 2,
			recvs:    2,
			phases:   2,
			thresh:   true,
		}
		return amort, amort
	}
	return roleCost{}, roleCost{}
}

// Evaluate solves the model for one setup.
func Evaluate(s Setup) Result {
	env := s.Env
	if env.BandwidthBps == 0 {
		env = DefaultEnv()
	}
	if s.BatchSize < 1 {
		s.BatchSize = 1
	}
	m := s.Concurrent
	if m <= 0 {
		m = 1
	}
	if m > s.N {
		m = s.N
	}
	b := float64(s.BatchSize)

	// Zyzzyva's failure path is special-cased: the client-driven commit
	// certificates serialize per-batch progress (§V-E).
	if s.Protocol == Zyzzyva && s.Failures > 0 {
		mEff := float64(m)
		if m > 1 {
			mEff = float64(m - s.Failures)
		}
		tput := b / env.ZyzzyvaFailBatch.Seconds() * mEff
		return Result{
			Throughput: tput,
			Latency:    env.ZyzzyvaFailBatch + 4*env.MsgDelay,
			Bound:      "failpath",
		}
	}

	pri, bak := costs(s.Protocol, s.N, s.BatchSize)

	// Effective concurrency: a crashed replica removes its instance until
	// its restart penalty elapses; RCC keeps the remaining m−1 instances
	// at full speed (design goals D4/D5).
	mEff := float64(m)
	if s.Failures > 0 && m > 1 {
		mEff = float64(m - s.Failures)
	}

	// Per-super-round cost at the busiest replica: under RCC every replica
	// is primary of one instance and backup of the rest; standalone, the
	// primary is the bottleneck.
	var outBytes, inMsgs, sends, recvs float64
	if m > 1 {
		outBytes = pri.outBytes + (mEff-1)*bak.outBytes
		inMsgs = pri.inMsgs + (mEff-1)*bak.inMsgs
		sends = pri.sends + (mEff-1)*bak.sends
		recvs = pri.recvs + (mEff-1)*bak.recvs
	} else {
		outBytes, inMsgs, sends, recvs = pri.outBytes, pri.inMsgs, pri.sends, pri.recvs
	}

	// A "super-round" commits mEff batches (m > 1) or one batch.
	batchesPerRound := mEff
	if m <= 1 {
		batchesPerRound = 1
	}
	txnPerRound := b * batchesPerRound

	rate, bound := env.BandwidthBps/8/outBytes, "bandwidth"

	// Serialized message dispatch at the busiest replica.
	if inMsgs > 0 && env.MsgHandle > 0 {
		dispatchRate := 1 / (inMsgs * env.MsgHandle.Seconds())
		if dispatchRate < rate {
			rate, bound = dispatchRate, "dispatch"
		}
	}

	// Crypto CPU: authenticate outgoing, verify incoming, verify client
	// transaction signatures, authenticate replies.
	sign := crypto.SignCost(s.Crypto)
	verify := crypto.VerifyCost(s.Crypto)
	cpuRound := time.Duration(sends)*sign + time.Duration(recvs)*verify
	cpuRound += time.Duration(txnPerRound) * crypto.VerifyCost(s.ClientSig)
	cpuRound += time.Duration(txnPerRound) * sign // reply authenticators
	if cpuRound > 0 {
		cpuRate := env.CryptoCores / cpuRound.Seconds()
		if cpuRate < rate {
			rate, bound = cpuRate, "cpu"
		}
	}

	// Threshold-signature critical path (per instance, serialized).
	if pri.thresh && env.ThresholdCritical > 0 && m <= 1 {
		tRate := 1 / env.ThresholdCritical.Seconds()
		if tRate < rate {
			rate, bound = tRate, "threshold"
		}
	}

	// Sequential execution: all batches of a round execute in order.
	execPerRound := time.Duration(batchesPerRound) * (env.ExecPerBatch + time.Duration(b)*env.ExecPerTxn)
	if execRate := 1 / execPerRound.Seconds(); execRate < rate {
		rate, bound = execRate, "execution"
	}

	// Client I/O (request receive + reply send).
	if ioRate := 1 / (time.Duration(txnPerRound) * env.ClientIOPerTxn).Seconds(); ioRate < rate {
		rate, bound = ioRate, "clientio"
	}

	// Message delay: without out-of-order processing a new round only
	// starts after the previous one commits.
	ooo := s.OutOfOrder && s.Protocol != HotStuff
	if !ooo {
		if delayRate := 1 / (pri.phases * env.MsgDelay.Seconds()); delayRate < rate {
			rate, bound = delayRate, "delay"
		}
	}

	tput := rate * txnPerRound
	if s.Protocol == Zyzzyva && m > 1 && env.ZyzzyvaClientPenalty > 0 {
		tput *= env.ZyzzyvaClientPenalty
	}

	// Latency: commit-path delays plus service time, inflated near
	// saturation (an M/M/1-flavoured factor, capped).
	service := time.Duration(float64(time.Second) / rate)
	inflation := 1.0
	if bound != "delay" {
		inflation = 8 // pipelined protocols run saturated in the paper's runs
	}
	lat := time.Duration(float64(pri.phases+1)*float64(env.MsgDelay)) +
		time.Duration(float64(service)*inflation) +
		time.Duration(float64(time.Duration(b))*float64(env.ClientIOPerTxn)) // batch formation

	return Result{Throughput: tput, Latency: lat, Bound: bound}
}

// String renders a setup compactly (used by the benchmark harness).
func (s Setup) String() string {
	name := string(s.Protocol)
	if s.Concurrent > 1 {
		name = fmt.Sprintf("rcc-%s(m=%d)", s.Protocol, s.Concurrent)
	}
	return fmt.Sprintf("%s n=%d b=%d ooo=%v fail=%d", name, s.N, s.BatchSize, s.OutOfOrder, s.Failures)
}

// SingleReplicaReply returns the Fig. 7 (left) "Reply" rate: a single
// replica receiving client transactions and answering without executing.
func SingleReplicaReply(env Environment) float64 {
	return 1 / env.ClientIOPerTxn.Seconds()
}

// SingleReplicaFull returns the Fig. 7 (left) "Full" rate: receive,
// execute, and reply, at the given batch size.
func SingleReplicaFull(env Environment, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	per := env.ClientIOPerTxn + env.ExecPerTxn + time.Duration(int(env.ExecPerBatch)/batch)
	return 1 / per.Seconds()
}
