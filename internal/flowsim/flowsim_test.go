package flowsim

import (
	"testing"

	"repro/internal/crypto"
)

func eval(p Protocol, n, m, b, fail int, ooo bool) Result {
	return Evaluate(Setup{
		Protocol: p, N: n, Concurrent: m, BatchSize: b,
		Crypto: crypto.SchemeMAC, ClientSig: crypto.SchemeMAC,
		OutOfOrder: ooo, Failures: fail,
	})
}

// TestFig8aOrdering asserts the who-wins structure of Fig. 8 (a): the RCC
// variants outperform every primary-backup protocol at n >= 16, and
// HotStuff (no out-of-order processing) trails everything.
func TestFig8aOrdering(t *testing.T) {
	for _, n := range []int{16, 32, 64, 91} {
		f := (n - 1) / 3
		rccn := eval(PBFT, n, n, 100, 0, true).Throughput
		rccf1 := eval(PBFT, n, f+1, 100, 0, true).Throughput
		rcc3 := eval(PBFT, n, 3, 100, 0, true).Throughput
		pbft := eval(PBFT, n, 1, 100, 0, true).Throughput
		zyz := eval(Zyzzyva, n, 1, 100, 0, true).Throughput
		sbft := eval(SBFT, n, 1, 100, 0, true).Throughput
		hs := eval(HotStuff, n, 1, 100, 0, true).Throughput

		for name, v := range map[string]float64{"pbft": pbft, "zyzzyva": zyz, "sbft": sbft, "hotstuff": hs} {
			if rccn <= v {
				t.Fatalf("n=%d: RCCn %.0f <= %s %.0f", n, rccn, name, v)
			}
			if rccf1 <= v {
				t.Fatalf("n=%d: RCCf+1 %.0f <= %s %.0f", n, rccf1, name, v)
			}
		}
		// More concurrency helps: RCC3 <= RCCf+1 and RCC3 <= RCCn (§V-E:
		// "adding concurrency by adding more instances improves
		// performance, as RCC3 is outperformed by the other versions").
		if rcc3 > rccf1 || rcc3 > rccn {
			t.Fatalf("n=%d: RCC3 %.0f beats RCCf+1 %.0f or RCCn %.0f", n, rcc3, rccf1, rccn)
		}
		// HotStuff is uncompetitive against out-of-order protocols.
		if hs >= pbft {
			t.Fatalf("n=%d: HotStuff %.0f >= PBFT %.0f", n, hs, pbft)
		}
	}
}

// TestZyzzyvaFastestPrimaryBackup asserts §V-E: Zyzzyva is the fastest
// primary-backup protocol when no failures happen, and collapses under a
// single failure while the others are barely affected.
func TestZyzzyvaFastestPrimaryBackup(t *testing.T) {
	for _, n := range []int{16, 32, 64, 91} {
		zyz := eval(Zyzzyva, n, 1, 100, 0, true).Throughput
		pbft := eval(PBFT, n, 1, 100, 0, true).Throughput
		if zyz < pbft {
			t.Fatalf("n=%d: Zyzzyva %.0f < PBFT %.0f without failures", n, zyz, pbft)
		}
	}
	healthy := eval(Zyzzyva, 32, 1, 100, 0, true).Throughput
	failed := eval(Zyzzyva, 32, 1, 100, 1, true).Throughput
	if failed > healthy/10 {
		t.Fatalf("Zyzzyva under failure %.0f, want collapse below %.0f", failed, healthy/10)
	}
	pbftHealthy := eval(PBFT, 32, 1, 100, 0, true).Throughput
	pbftFailed := eval(PBFT, 32, 1, 100, 1, true).Throughput
	if pbftFailed < pbftHealthy*0.9 {
		t.Fatalf("PBFT under failure %.0f, want within 10%% of %.0f", pbftFailed, pbftHealthy)
	}
}

// TestSummaryRatios asserts the §V-E summary factors within generous bands:
// single-failure RCC beats SBFT by ~2.77×, PBFT by ~1.53×, HotStuff by
// ~38×, and Zyzzyva by ~82×.
func TestSummaryRatios(t *testing.T) {
	best := func(p Protocol, m func(n int) int, fail int) float64 {
		max := 0.0
		for _, n := range []int{16, 32, 64, 91} {
			if v := eval(p, n, m(n), 100, fail, true).Throughput; v > max {
				max = v
			}
		}
		return max
	}
	one := func(int) int { return 1 }
	all := func(n int) int { return n }

	rcc := best(PBFT, all, 1)
	checks := []struct {
		name   string
		other  float64
		lo, hi float64
	}{
		{"sbft", best(SBFT, one, 1), 1.8, 4.5},       // paper: 2.77
		{"pbft", best(PBFT, one, 1), 1.2, 2.5},       // paper: 1.53
		{"hotstuff", best(HotStuff, one, 1), 20, 60}, // paper: 38
		{"zyzzyva", best(Zyzzyva, one, 1), 40, 130},  // paper: 82
	}
	for _, c := range checks {
		ratio := rcc / c.other
		if ratio < c.lo || ratio > c.hi {
			t.Errorf("single-failure RCC/%s = %.2f, want within [%.1f, %.1f]", c.name, ratio, c.lo, c.hi)
		}
	}
}

// TestFig7CryptoRatios asserts the Fig. 7 (right) structure: digital
// signatures cost dramatically more than MACs, which cost more than no
// authentication (paper: −86% and −33%).
func TestFig7CryptoRatios(t *testing.T) {
	run := func(sch, client crypto.Scheme) float64 {
		return Evaluate(Setup{
			Protocol: PBFT, N: 16, Concurrent: 1, BatchSize: 100,
			Crypto: sch, ClientSig: client, OutOfOrder: true,
		}).Throughput
	}
	none := run(crypto.SchemeNone, crypto.SchemeNone)
	mac := run(crypto.SchemeMAC, crypto.SchemeDS)
	ds := run(crypto.SchemeDS, crypto.SchemeDS)
	if !(none > mac && mac > ds) {
		t.Fatalf("crypto ordering broken: none=%.0f mac=%.0f ds=%.0f", none, mac, ds)
	}
	macDrop := 1 - mac/none
	dsDrop := 1 - ds/none
	if macDrop < 0.2 || macDrop > 0.5 {
		t.Errorf("MAC reduction %.0f%%, want 20–50%% (paper: 33%%)", macDrop*100)
	}
	if dsDrop < 0.55 || dsDrop > 0.95 {
		t.Errorf("DS reduction %.0f%%, want 55–95%% (paper: 86%%)", dsDrop*100)
	}
}

// TestFig8gNoOutOfOrder asserts Fig. 8 (g): with out-of-order processing
// disabled, HotStuff's two-phase event-based design beats the three-phase
// primary-backup protocols, while the RCC variants keep improving with n
// because more replicas mean more concurrent instances.
func TestFig8gNoOutOfOrder(t *testing.T) {
	for _, n := range []int{16, 32, 64} {
		hs := eval(HotStuff, n, 1, 100, 0, false).Throughput
		pbft := eval(PBFT, n, 1, 100, 0, false).Throughput
		zyz := eval(Zyzzyva, n, 1, 100, 0, false).Throughput
		if hs <= pbft || hs <= zyz {
			t.Fatalf("n=%d: HotStuff %.0f not ahead of PBFT %.0f / Zyzzyva %.0f without ooo", n, hs, pbft, zyz)
		}
		rccn := eval(PBFT, n, n, 100, 0, false).Throughput
		if rccn <= hs {
			t.Fatalf("n=%d: non-ooo RCC %.0f <= HotStuff %.0f", n, rccn, hs)
		}
	}
	// RCC benefits from more replicas in this regime (§V-E).
	small := eval(PBFT, 4, 4, 100, 0, false).Throughput
	large := eval(PBFT, 32, 32, 100, 0, false).Throughput
	if large <= small {
		t.Fatalf("non-ooo RCC did not improve with n: %.0f -> %.0f", small, large)
	}
}

// TestFig8eBatching asserts Fig. 8 (e): larger batches increase throughput
// for every protocol, with diminishing returns past 100 txn/batch.
func TestFig8eBatching(t *testing.T) {
	for _, p := range []Protocol{PBFT, SBFT} {
		prev := 0.0
		for _, b := range []int{10, 50, 100, 200, 400} {
			v := eval(p, 32, 1, b, 1, true).Throughput
			if v < prev {
				t.Fatalf("%s: batch %d throughput %.0f below smaller batch %.0f", p, b, v, prev)
			}
			prev = v
		}
		gain100 := eval(p, 32, 1, 100, 1, true).Throughput / eval(p, 32, 1, 50, 1, true).Throughput
		gain400 := eval(p, 32, 1, 400, 1, true).Throughput / eval(p, 32, 1, 200, 1, true).Throughput
		if gain400 > gain100 {
			t.Fatalf("%s: batching gains not diminishing (%0.2f then %.2f)", p, gain100, gain400)
		}
	}
	// RCC's peak at 400 txn/batch approaches the paper's 365 ktxn/s.
	peak := eval(PBFT, 32, 32, 400, 1, true).Throughput
	if peak < 280_000 || peak > 430_000 {
		t.Errorf("RCC peak at 400 txn/batch = %.0f, want ~348k (paper: 365k)", peak)
	}
}

// TestFig9Paradigm asserts Fig. 9: all RCC variants reach high throughput;
// RCC-S attains equal-or-higher throughput than RCC-Z (client interplay,
// §V-F), and both beat RCC-P at large n (linear vs quadratic phases).
func TestFig9Paradigm(t *testing.T) {
	for _, n := range []int{4, 16, 32, 64, 91} {
		p := eval(PBFT, n, n, 100, 0, true).Throughput
		z := eval(Zyzzyva, n, n, 100, 0, true).Throughput
		s := eval(SBFT, n, n, 100, 0, true).Throughput
		if s < z {
			t.Fatalf("n=%d: RCC-S %.0f below RCC-Z %.0f", n, s, z)
		}
		if n >= 64 && (s <= p || z <= p) {
			t.Fatalf("n=%d: linear-phase variants (S=%.0f, Z=%.0f) not ahead of RCC-P %.0f", n, s, z, p)
		}
	}
}

// TestSingleReplicaRates checks the Fig. 7 (left) anchors: reply-only well
// above full processing, in the paper's 551k / ~217k ballpark.
func TestSingleReplicaRates(t *testing.T) {
	env := DefaultEnv()
	reply := SingleReplicaReply(env)
	full := SingleReplicaFull(env, 100)
	if reply < 450_000 || reply > 650_000 {
		t.Errorf("reply-only rate %.0f, want ~551k", reply)
	}
	if full < 150_000 || full > 280_000 {
		t.Errorf("full-processing rate %.0f, want ~217k", full)
	}
	if reply <= full {
		t.Fatal("reply-only must exceed full processing")
	}
}

// TestLatencyGrowsWithBatchSize matches Fig. 8 (f): batch formation and
// service time push latency up with batch size.
func TestLatencyGrowsWithBatchSize(t *testing.T) {
	prev := eval(PBFT, 32, 32, 10, 1, true).Latency
	for _, b := range []int{50, 100, 200, 400} {
		l := eval(PBFT, 32, 32, b, 1, true).Latency
		if l < prev {
			t.Fatalf("latency fell from %v to %v at batch %d", prev, l, b)
		}
		prev = l
	}
}

// TestBoundsAreNamed ensures every evaluation reports its binding resource.
func TestBoundsAreNamed(t *testing.T) {
	for _, p := range []Protocol{PBFT, Zyzzyva, SBFT, HotStuff} {
		for _, m := range []int{1, 16} {
			r := eval(p, 16, m, 100, 0, true)
			if r.Bound == "" || r.Throughput <= 0 {
				t.Fatalf("%s m=%d: empty bound or zero throughput", p, m)
			}
		}
	}
}

func TestSetupDerivedParams(t *testing.T) {
	s := Setup{N: 91}
	if s.F() != 30 || s.NF() != 61 {
		t.Fatalf("f=%d nf=%d, want 30/61", s.F(), s.NF())
	}
	if got := (Setup{Protocol: PBFT, N: 16, Concurrent: 16, BatchSize: 100}).String(); got == "" {
		t.Fatal("empty setup string")
	}
	if got := (Setup{Protocol: SBFT, N: 4}).String(); got == "" {
		t.Fatal("empty standalone string")
	}
}

func TestEvaluateClampsDegenerateInputs(t *testing.T) {
	// Zero batch and oversized m must not panic or divide by zero.
	r := Evaluate(Setup{Protocol: PBFT, N: 4, Concurrent: 99, BatchSize: 0,
		Crypto: crypto.SchemeNone, ClientSig: crypto.SchemeNone, OutOfOrder: true})
	if r.Throughput <= 0 {
		t.Fatalf("degenerate setup produced %v", r)
	}
}

func TestExplicitEnvironmentIshonored(t *testing.T) {
	env := DefaultEnv()
	env.BandwidthBps = 1e8 // 10× slower link
	slow := Evaluate(Setup{Protocol: PBFT, N: 16, BatchSize: 100,
		Crypto: crypto.SchemeNone, ClientSig: crypto.SchemeNone, OutOfOrder: true, Env: env})
	fast := Evaluate(Setup{Protocol: PBFT, N: 16, BatchSize: 100,
		Crypto: crypto.SchemeNone, ClientSig: crypto.SchemeNone, OutOfOrder: true})
	if slow.Throughput >= fast.Throughput {
		t.Fatalf("slower link did not reduce throughput: %.0f vs %.0f", slow.Throughput, fast.Throughput)
	}
	if slow.Bound != "bandwidth" {
		t.Fatalf("10x slower link bound = %s, want bandwidth", slow.Bound)
	}
}
