// Package hotstuff implements the event-based chained HotStuff protocol
// (Yin et al.), the variant the RCC paper evaluates (§V-C).
//
// Each view has one leader. The leader proposes a block extending the
// highest quorum certificate (QC) it knows; replicas vote by sending a
// threshold share to the NEXT view's leader, which combines nf votes into a
// QC and proposes the next block justified by it. A block commits once it
// heads a three-chain of blocks with consecutive views (the chained
// single-phase commit rule).
//
// Two properties matter for the paper's evaluation:
//
//   - Linearity: votes go to one leader, not all-to-all, so communication
//     is O(n) per view.
//   - No out-of-order processing: one block is in flight per view, so
//     throughput is bounded by message delay rather than bandwidth — which
//     is why HotStuff is uncompetitive in Fig. 8 (a–f) but wins among
//     primary-backup protocols when out-of-ordering is disabled everywhere
//     (Fig. 8 (g,h)).
//
// Leaders rotate every view, which doubles as the protocol's built-in
// primary replacement (no separate view-change subprotocol is needed; a
// timeout simply advances the view via NEW-VIEW messages).
package hotstuff

import (
	"time"

	"repro/internal/crypto"
	"repro/internal/sm"
	"repro/internal/types"
)

// Config parameterizes one HotStuff instance.
type Config struct {
	// Instance is the consensus instance this machine serves.
	Instance types.InstanceID
	// ViewTimeout advances the view when no proposal arrives in time.
	ViewTimeout time.Duration
	// BatchSize groups client requests per block.
	BatchSize int
	// BatchTimeout proposes a partial batch after this delay.
	BatchTimeout time.Duration
	// Threshold is the (nf, n) threshold scheme; nil derives a
	// development scheme at Start.
	Threshold *crypto.ThresholdScheme
}

func (c *Config) defaults() {
	if c.ViewTimeout <= 0 {
		c.ViewTimeout = 500 * time.Millisecond
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 50 * time.Millisecond
	}
}

var devSecret = []byte("hotstuff-development-threshold-secret")

// block is one node of the block tree.
type block struct {
	digest  types.Digest
	parent  types.Digest
	view    types.View
	round   types.Round
	batch   *types.Batch
	justify types.QuorumCert
}

// Instance is one HotStuff machine. It implements sm.Machine (not
// sm.Instance: HotStuff rotates leaders by design, so it is evaluated
// standalone, not as an RCC substrate).
type Instance struct {
	cfg    Config
	env    sm.Env
	scheme *crypto.ThresholdScheme

	view    types.View
	blocks  map[types.Digest]*block
	highQC  types.QuorumCert
	genesis types.Digest

	// Voting state of the leader of view v+1.
	votes map[types.Digest]map[types.ReplicaID][]byte

	// newview counts NEW-VIEW messages per view for the next leader.
	newviews map[types.View]map[types.ReplicaID]types.QuorumCert

	lastVoted  types.View
	executed   map[types.Digest]bool
	deliverSeq types.Round
	// lastReal is the most recent block carrying client transactions;
	// leaders fill with no-op blocks until it commits (the three-chain
	// rule needs successors).
	lastReal types.Digest

	pending    []types.Transaction
	pendingSet map[txKey]struct{}
	// staleTxns counts delivered transactions since the last queue
	// compaction (amortization counter).
	staleTxns int
	lastSeq   map[types.ClientID]uint64

	proposedInView bool
}

// txKey identifies one client transaction.
type txKey struct {
	c types.ClientID
	s uint64
}

var _ sm.Machine = (*Instance)(nil)

// New creates a HotStuff instance.
func New(cfg Config) *Instance {
	cfg.defaults()
	h := &Instance{
		cfg:        cfg,
		blocks:     make(map[types.Digest]*block),
		votes:      make(map[types.Digest]map[types.ReplicaID][]byte),
		newviews:   make(map[types.View]map[types.ReplicaID]types.QuorumCert),
		executed:   make(map[types.Digest]bool),
		lastSeq:    make(map[types.ClientID]uint64),
		pendingSet: make(map[txKey]struct{}),
		deliverSeq: 1,
	}
	return h
}

// Start implements sm.Machine.
func (h *Instance) Start(env sm.Env) {
	h.env = env
	h.scheme = h.cfg.Threshold
	if h.scheme == nil {
		p := env.Params()
		h.scheme = crypto.NewThresholdScheme(p.N, p.NF(), devSecret)
	}
	// Install the genesis block; the first QC certifies it.
	g := &block{digest: types.Hash([]byte("hotstuff-genesis")), view: 0, round: 0}
	h.genesis = g.digest
	h.blocks[g.digest] = g
	h.highQC = types.QuorumCert{View: 0, Round: 0, Block: g.digest}
	h.view = 1
	h.armViewTimer()
}

// View returns the current view.
func (h *Instance) View() types.View { return h.view }

// LeaderOf returns the leader of view v (round-robin).
func (h *Instance) LeaderOf(v types.View) types.ReplicaID {
	return types.ReplicaID(uint64(v) % uint64(h.env.Params().N))
}

// IsLeader reports whether the local replica leads the current view.
func (h *Instance) IsLeader() bool { return h.LeaderOf(h.view) == h.env.ID() }

// Pending returns the number of queued client transactions.
func (h *Instance) Pending() int { return len(h.pending) }

// blockMsg is the byte form votes sign.
func blockMsg(inst types.InstanceID, v types.View, d types.Digest) []byte {
	buf := make([]byte, 0, 48)
	buf = append(buf, byte(inst>>8), byte(inst))
	buf = append(buf, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	return append(buf, d[:]...)
}

// OnMessage implements sm.Machine.
func (h *Instance) OnMessage(from sm.Source, m types.Message) {
	switch msg := m.(type) {
	case *types.ClientRequest:
		h.onClientRequest(msg)
	case *types.HSProposal:
		h.onProposal(from.Replica, msg)
	case *types.HSVote:
		h.onVote(msg)
	case *types.HSNewView:
		h.onNewView(msg)
	}
}

func (h *Instance) onClientRequest(m *types.ClientRequest) {
	if m.Tx.IsNoOp() || m.Tx.Seq <= h.lastSeq[m.Tx.Client] {
		return
	}
	key := txKey{m.Tx.Client, m.Tx.Seq}
	if _, dup := h.pendingSet[key]; dup {
		return // queued or already carried by a chain block
	}
	h.pendingSet[key] = struct{}{}
	h.pending = append(h.pending, m.Tx)
	h.maybePropose()
}

// maybePropose lets the current leader propose one block per view, skipping
// transactions already carried by an uncommitted ancestor of the chain it
// would extend (transactions on abandoned forks become proposable again).
func (h *Instance) maybePropose() {
	if !h.IsLeader() || h.proposedInView {
		return
	}
	busy := h.uncommittedChainTxns()
	var txns []types.Transaction
	for i := range h.pending {
		key := txKey{h.pending[i].Client, h.pending[i].Seq}
		if _, live := h.pendingSet[key]; !live || h.pending[i].Seq <= h.lastSeq[h.pending[i].Client] {
			continue // delivered elsewhere; awaits compaction
		}
		if _, inFlight := busy[key]; inFlight {
			continue
		}
		txns = append(txns, h.pending[i])
		if len(txns) == h.cfg.BatchSize {
			break
		}
	}
	if len(txns) == 0 {
		// Nothing new to propose. If real blocks still await their
		// three-chain successors, drive the chain with a no-op block;
		// otherwise stay idle.
		if h.needChainProgress() {
			h.propose(types.NoOpBatch())
		}
		return
	}
	h.propose(&types.Batch{Txns: txns})
}

// uncommittedChainTxns collects the transactions of every uncommitted
// ancestor of the high QC's block — the in-flight suffix a new proposal
// must not duplicate.
func (h *Instance) uncommittedChainTxns() map[txKey]struct{} {
	out := make(map[txKey]struct{})
	cur, ok := h.blocks[h.highQC.Block]
	for ok && cur.digest != h.genesis && !h.executed[cur.digest] {
		if cur.batch != nil {
			for i := range cur.batch.Txns {
				if !cur.batch.Txns[i].IsNoOp() {
					out[txKey{cur.batch.Txns[i].Client, cur.batch.Txns[i].Seq}] = struct{}{}
				}
			}
		}
		cur, ok = h.blocks[cur.parent]
	}
	return out
}

func (h *Instance) propose(batch *types.Batch) {
	parent := h.highQC.Block
	pb := h.blocks[parent]
	blk := &block{
		parent:  parent,
		view:    h.view,
		round:   pb.round + 1,
		batch:   batch,
		justify: h.highQC,
	}
	blk.digest = blockDigest(blk)
	h.proposedInView = true
	if !batch.IsNoOp() {
		h.lastReal = blk.digest
	}
	p := &types.HSProposal{
		Replica: h.env.ID(), View: h.view, Round: blk.round,
		Parent: parent, Digest: blk.digest, Batch: batch, Justify: h.highQC,
	}
	p.Inst = h.cfg.Instance
	h.env.Broadcast(p)
}

// blockDigest computes the digest identifying a block.
func blockDigest(b *block) types.Digest {
	buf := make([]byte, 0, 128)
	buf = append(buf, b.parent[:]...)
	buf = append(buf, byte(b.view>>56), byte(b.view>>48), byte(b.view>>40), byte(b.view>>32),
		byte(b.view>>24), byte(b.view>>16), byte(b.view>>8), byte(b.view))
	if b.batch != nil {
		d := b.batch.Digest()
		buf = append(buf, d[:]...)
	}
	return types.Hash(buf)
}

func (h *Instance) onProposal(from types.ReplicaID, m *types.HSProposal) {
	if m.View < h.view || from != h.LeaderOf(m.View) || m.Batch == nil {
		return
	}
	parent, ok := h.blocks[m.Parent]
	if !ok {
		return // unknown parent (lost block); the view timer recovers
	}
	blk := &block{
		parent:  m.Parent,
		view:    m.View,
		round:   parent.round + 1,
		batch:   m.Batch,
		justify: m.Justify,
	}
	blk.digest = blockDigest(blk)
	if blk.digest != m.Digest {
		return
	}
	if _, dup := h.blocks[blk.digest]; !dup {
		h.blocks[blk.digest] = blk
	}
	if !m.Batch.IsNoOp() {
		h.lastReal = blk.digest
	}
	h.updateHighQC(m.Justify)

	// SafeNode rule (simplified for the chained single-phase variant):
	// vote when the proposal extends the high QC's block and the view is
	// not older than the last vote.
	if m.View <= h.lastVoted || m.Parent != h.highQC.Block {
		h.advanceTo(m.View)
		h.tryCommit(blk)
		return
	}
	h.lastVoted = m.View
	share := h.scheme.Share(crypto.PartyID(h.env.ID()), blockMsg(h.cfg.Instance, m.View, blk.digest))
	vote := &types.HSVote{Replica: h.env.ID(), View: m.View, Round: blk.round, Block: blk.digest, Share: share}
	vote.Inst = h.cfg.Instance
	h.env.Send(h.LeaderOf(m.View+1), vote)

	h.advanceTo(m.View)
	h.tryCommit(blk)
	// The next view starts when the view-(v+1) leader proposes with the
	// QC it combines from our votes; the view timer guards against a
	// silent next leader. Entering it eagerly here would let the next
	// leader propose before holding the QC, forking the chain.
}

// onVote runs at the leader of view m.View+1: combine nf votes into a QC.
func (h *Instance) onVote(m *types.HSVote) {
	if h.LeaderOf(m.View+1) != h.env.ID() {
		return
	}
	msg := blockMsg(h.cfg.Instance, m.View, m.Block)
	if !h.scheme.VerifyShare(crypto.PartyID(m.Replica), msg, m.Share) {
		return
	}
	vs, ok := h.votes[m.Block]
	if !ok {
		vs = make(map[types.ReplicaID][]byte)
		h.votes[m.Block] = vs
	}
	vs[m.Replica] = m.Share
	if len(vs) < h.env.Params().NF() {
		return
	}
	signers := make([]types.ReplicaID, 0, len(vs))
	for r := range vs {
		signers = append(signers, r)
	}
	qc := types.QuorumCert{View: m.View, Round: m.Round, Block: m.Block, Signers: signers}
	h.updateHighQC(qc)
	delete(h.votes, m.Block)
	h.enterView(m.View + 1)
	h.maybePropose()
	if h.IsLeader() && !h.proposedInView {
		// Nothing pending: drive the chain forward with a no-op block so
		// earlier blocks can commit (the chained rule needs successors).
		if h.needChainProgress() {
			h.propose(types.NoOpBatch())
			h.proposedInView = true
		}
	}
}

// needChainProgress reports whether a real (non-filler) block still awaits
// the successor blocks the three-chain commit rule requires.
func (h *Instance) needChainProgress() bool {
	return !h.lastReal.IsZero() && !h.executed[h.lastReal]
}

func (h *Instance) updateHighQC(qc types.QuorumCert) {
	if qc.View >= h.highQC.View && qc.Block != h.highQC.Block {
		if _, known := h.blocks[qc.Block]; known {
			h.highQC = qc
		}
	} else if qc.View > h.highQC.View {
		if _, known := h.blocks[qc.Block]; known {
			h.highQC = qc
		}
	}
}

// tryCommit applies the chained three-chain commit rule: when blocks
// b” ← b' ← b have consecutive views and b carries a QC for b', b”
// commits (and with it its whole uncommitted ancestry).
func (h *Instance) tryCommit(b *block) {
	b1, ok := h.blocks[b.justify.Block]
	if !ok {
		return
	}
	b2, ok := h.blocks[b1.justify.Block]
	if !ok {
		return
	}
	if b1.view+1 != b.view || b2.view+1 != b1.view {
		return // chain not consecutive: no commit yet
	}
	h.commitAncestry(b2)
}

// commitAncestry executes b and every uncommitted ancestor, oldest first.
func (h *Instance) commitAncestry(b *block) {
	if b.digest == h.genesis || h.executed[b.digest] {
		return
	}
	var chain []*block
	for cur := b; cur != nil && cur.digest != h.genesis && !h.executed[cur.digest]; {
		chain = append(chain, cur)
		next, ok := h.blocks[cur.parent]
		if !ok {
			break
		}
		cur = next
	}
	for i := len(chain) - 1; i >= 0; i-- {
		blk := chain[i]
		h.executed[blk.digest] = true
		h.markDelivered(blk.batch)
		h.env.Deliver(sm.Decision{
			Instance: h.cfg.Instance,
			Round:    h.deliverSeq,
			View:     blk.view,
			Digest:   blk.digest,
			Batch:    blk.batch,
			Signers:  blk.justify.Signers,
		})
		h.deliverSeq++
	}
}

func (h *Instance) markDelivered(b *types.Batch) {
	if b == nil {
		return
	}
	for i := range b.Txns {
		tx := &b.Txns[i]
		if tx.IsNoOp() {
			continue
		}
		delete(h.pendingSet, txKey{tx.Client, tx.Seq})
		if tx.Seq > h.lastSeq[tx.Client] {
			h.lastSeq[tx.Client] = tx.Seq
		}
	}
	// Compact the queue only when at least half of it is stale: a scan per
	// delivered batch is O(backlog) and melts down under open-loop
	// overload; amortized compaction is O(1) per transaction.
	h.staleTxns += b.Len()
	if len(h.pending) == 0 || 2*h.staleTxns < len(h.pending) {
		return
	}
	h.staleTxns = 0
	kept := h.pending[:0]
	for i := range h.pending {
		tx := &h.pending[i]
		if _, live := h.pendingSet[txKey{tx.Client, tx.Seq}]; live && tx.Seq > h.lastSeq[tx.Client] {
			kept = append(kept, *tx)
		}
	}
	h.pending = kept
}

// advanceTo moves the local view forward to at least v.
func (h *Instance) advanceTo(v types.View) {
	if v > h.view {
		h.view = v
		h.proposedInView = false
		h.armViewTimer()
	}
}

// enterView enters view v (from a QC or proposal for view v−1).
func (h *Instance) enterView(v types.View) {
	if v <= h.view {
		return
	}
	h.view = v
	h.proposedInView = false
	h.armViewTimer()
	h.maybePropose()
}

// onNewView collects NEW-VIEW messages (timeout path): the new leader
// adopts the highest reported QC and proposes on it.
func (h *Instance) onNewView(m *types.HSNewView) {
	if h.LeaderOf(m.View) != h.env.ID() {
		return
	}
	nv, ok := h.newviews[m.View]
	if !ok {
		nv = make(map[types.ReplicaID]types.QuorumCert)
		h.newviews[m.View] = nv
	}
	nv[m.Replica] = m.HighQC
	h.updateHighQC(m.HighQC)
	if len(nv) >= h.env.Params().NF() && m.View >= h.view {
		h.advanceTo(m.View)
		if len(h.pending) > 0 {
			h.maybePropose()
		} else if h.needChainProgress() {
			h.propose(types.NoOpBatch())
		}
	}
}

// OnTimer implements sm.Machine.
func (h *Instance) OnTimer(id sm.TimerID) {
	switch id.Kind {
	case sm.TimerProgress:
		// View timeout: move to the next view and tell its leader our
		// high QC (the pacemaker).
		h.view++
		h.proposedInView = false
		nv := &types.HSNewView{Replica: h.env.ID(), View: h.view, HighQC: h.highQC}
		nv.Inst = h.cfg.Instance
		h.env.Send(h.LeaderOf(h.view), nv)
		h.armViewTimer()
	case sm.TimerBatch:
		h.maybePropose()
	}
}

func (h *Instance) armViewTimer() {
	h.env.SetTimer(sm.TimerID{Instance: h.cfg.Instance, Kind: sm.TimerProgress}, h.cfg.ViewTimeout)
}
