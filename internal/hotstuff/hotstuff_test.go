package hotstuff

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

func cluster(t *testing.T, n int, cfg Config, netcfg simnet.Config) (*simnet.Network, []*Instance) {
	t.Helper()
	netcfg.N = n
	if netcfg.Latency == 0 {
		netcfg.Latency = time.Millisecond
	}
	net, err := simnet.New(netcfg)
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	insts := make([]*Instance, n)
	for i := 0; i < n; i++ {
		insts[i] = New(cfg)
		net.SetMachine(types.ReplicaID(i), insts[i])
	}
	return net, insts
}

func inject(net *simnet.Network, n int, at time.Duration, tx types.Transaction) {
	req := types.NewClientRequest(0, tx)
	for i := 0; i < n; i++ {
		node := net.Node(types.ReplicaID(i))
		net.Schedule(at, func() { node.Machine().OnMessage(sm.FromClient(tx.Client), req) })
	}
}

func realTxnCount(ds []sm.Decision) int {
	n := 0
	for _, d := range ds {
		if d.Batch == nil {
			continue
		}
		for _, tx := range d.Batch.Txns {
			if !tx.IsNoOp() {
				n++
			}
		}
	}
	return n
}

func TestThreeChainCommit(t *testing.T) {
	n := 4
	net, _ := cluster(t, n, Config{BatchSize: 1, ViewTimeout: 200 * time.Millisecond}, simnet.Config{})
	net.Start()
	for s := uint64(1); s <= 5; s++ {
		inject(net, n, time.Duration(s)*10*time.Millisecond, types.Transaction{Client: 1, Seq: s, Op: []byte{byte(s)}})
	}
	net.Run(5 * time.Second)

	for i := 0; i < n; i++ {
		if got := realTxnCount(net.Node(types.ReplicaID(i)).Decisions()); got != 5 {
			t.Fatalf("replica %d committed %d real txns, want 5", i, got)
		}
	}
}

func TestCommitOrderIdenticalAcrossReplicas(t *testing.T) {
	n := 4
	net, _ := cluster(t, n, Config{BatchSize: 1, ViewTimeout: 200 * time.Millisecond},
		simnet.Config{Jitter: 2 * time.Millisecond, Seed: 11})
	net.Start()
	for s := uint64(1); s <= 8; s++ {
		inject(net, n, time.Duration(s)*8*time.Millisecond,
			types.Transaction{Client: types.ClientID(1 + s%2), Seq: (s + 1) / 2, Op: []byte(fmt.Sprintf("%d", s))})
	}
	net.Run(6 * time.Second)
	ref := net.Node(0).Decisions()
	if len(ref) == 0 {
		t.Fatal("no commits")
	}
	for i := 1; i < n; i++ {
		ds := net.Node(types.ReplicaID(i)).Decisions()
		limit := len(ref)
		if len(ds) < limit {
			limit = len(ds)
		}
		for j := 0; j < limit; j++ {
			if ds[j].Digest != ref[j].Digest {
				t.Fatalf("replica %d commit %d diverges", i, j)
			}
		}
	}
}

func TestLeaderRotatesEveryView(t *testing.T) {
	net, insts := cluster(t, 4, Config{BatchSize: 1, ViewTimeout: 150 * time.Millisecond}, simnet.Config{})
	net.Start()
	inject(net, 4, 0, types.Transaction{Client: 1, Seq: 1, Op: []byte("x")})
	net.Run(3 * time.Second)
	// Views must have advanced well beyond 1 (the chain flows leader to
	// leader), and the leader function must rotate.
	if insts[0].View() < 3 {
		t.Fatalf("view %d, want >= 3 (chained views)", insts[0].View())
	}
	if insts[0].LeaderOf(1) == insts[0].LeaderOf(2) {
		t.Fatal("leader did not rotate between views")
	}
}

func TestProgressDespiteSilentLeader(t *testing.T) {
	// Crash the leader of view 2 (replica 2): the pacemaker must advance
	// past its view via NEW-VIEW messages and commit on later leaders.
	n := 4
	net, _ := cluster(t, n, Config{BatchSize: 1, ViewTimeout: 100 * time.Millisecond}, simnet.Config{})
	net.Start()
	net.Crash(2)
	for s := uint64(1); s <= 4; s++ {
		inject(net, n, time.Duration(s)*10*time.Millisecond, types.Transaction{Client: 1, Seq: s, Op: []byte{byte(s)}})
	}
	net.Run(8 * time.Second)
	for _, i := range []int{0, 1, 3} {
		if got := realTxnCount(net.Node(types.ReplicaID(i)).Decisions()); got != 4 {
			t.Fatalf("replica %d committed %d real txns with silent leader, want 4", i, got)
		}
	}
}

func TestNoOutOfOrderProcessing(t *testing.T) {
	// HotStuff proposes one block per view: flooding the leader with
	// requests must not create parallel in-flight blocks; commits arrive
	// view by view. We verify by counting proposals broadcast per view.
	n := 4
	net, _ := cluster(t, n, Config{BatchSize: 1, ViewTimeout: 300 * time.Millisecond}, simnet.Config{})
	net.Start()
	for s := uint64(1); s <= 6; s++ {
		inject(net, n, 0, types.Transaction{Client: 1, Seq: s, Op: []byte{byte(s)}})
	}
	net.Run(6 * time.Second)
	proposals := net.MessagesByType()[types.MsgHSProposal]
	// Each proposal is broadcast to n−1 others (self-delivery free), so
	// proposals/(n−1) is the number of blocks; 6 requests with batch 1
	// need >= 6 blocks, but blocks are sequential — at most one per view.
	blocks := int(proposals) / (n - 1)
	if blocks < 6 {
		t.Fatalf("only %d blocks proposed, want >= 6", blocks)
	}
	// All six transactions must commit on every live replica.
	for i := 0; i < n; i++ {
		if got := realTxnCount(net.Node(types.ReplicaID(i)).Decisions()); got != 6 {
			t.Fatalf("replica %d committed %d, want 6", i, got)
		}
	}
}

func TestBlockDigestBindsContent(t *testing.T) {
	b1 := &block{parent: types.Hash([]byte("p")), view: 3, batch: &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("a")}}}}
	b2 := &block{parent: types.Hash([]byte("p")), view: 3, batch: &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("b")}}}}
	if blockDigest(b1) == blockDigest(b2) {
		t.Fatal("digest ignores batch content")
	}
	b3 := *b1
	b3.view = 4
	if blockDigest(b1) == blockDigest(&b3) {
		t.Fatal("digest ignores view")
	}
}
