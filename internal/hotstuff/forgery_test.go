package hotstuff

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/simnet"
	"repro/internal/sm"
	"repro/internal/types"
)

// TestForgedVotesDoNotFormQC checks that a replica holding the wrong
// threshold shares cannot contribute to quorum certificates: with two such
// replicas, only two valid shares remain (below nf = 3) and no block can
// ever commit.
func TestForgedVotesDoNotFormQC(t *testing.T) {
	n := 4
	net, err := simnet.New(simnet.Config{N: n, Latency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	good := crypto.NewThresholdScheme(n, 3, []byte("good"))
	bad := crypto.NewThresholdScheme(n, 3, []byte("bad"))
	insts := make([]*Instance, n)
	for i := 0; i < n; i++ {
		scheme := good
		if i >= 2 {
			scheme = bad
		}
		insts[i] = New(Config{BatchSize: 1, ViewTimeout: 100 * time.Millisecond, Threshold: scheme})
		net.SetMachine(types.ReplicaID(i), insts[i])
	}
	net.Start()
	tx := types.Transaction{Client: 1, Seq: 1, Op: []byte("x")}
	req := types.NewClientRequest(0, tx)
	for r := 0; r < n; r++ {
		node := net.Node(types.ReplicaID(r))
		net.Schedule(0, func() { node.Machine().OnMessage(sm.FromClient(1), req) })
	}
	net.Run(3 * time.Second)
	for i := 0; i < n; i++ {
		for _, d := range net.Node(types.ReplicaID(i)).Decisions() {
			if d.Batch != nil && !d.Batch.IsNoOp() {
				t.Fatalf("replica %d committed despite 2 forged-share replicas", i)
			}
		}
	}
}

// TestVoteVerificationAtLeader forges a single vote share directly: the
// next leader must reject it and the QC must form only from valid shares.
func TestVoteVerificationAtLeader(t *testing.T) {
	n := 4
	net, err := simnet.New(simnet.Config{N: n, Latency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	insts := make([]*Instance, n)
	for i := 0; i < n; i++ {
		insts[i] = New(Config{BatchSize: 1, ViewTimeout: 200 * time.Millisecond})
		net.SetMachine(types.ReplicaID(i), insts[i])
	}
	net.Start()
	tx := types.Transaction{Client: 1, Seq: 1, Op: []byte("x")}
	req := types.NewClientRequest(0, tx)
	for r := 0; r < n; r++ {
		node := net.Node(types.ReplicaID(r))
		net.Schedule(0, func() { node.Machine().OnMessage(sm.FromClient(1), req) })
	}
	// Inject a forged vote claiming to be from replica 3 for a bogus block
	// at the view-2 leader: it must be ignored (share verification fails).
	net.Schedule(time.Millisecond, func() {
		leader := insts[0].LeaderOf(2)
		forged := &types.HSVote{Replica: 3, View: 1, Round: 1,
			Block: types.Hash([]byte("bogus")), Share: []byte("forged")}
		net.Node(leader).Machine().OnMessage(sm.FromReplica(3), forged)
	})
	net.Run(3 * time.Second)
	// The real transaction still commits everywhere.
	for i := 0; i < n; i++ {
		committed := false
		for _, d := range net.Node(types.ReplicaID(i)).Decisions() {
			if d.Batch != nil && !d.Batch.IsNoOp() {
				committed = true
			}
		}
		if !committed {
			t.Fatalf("replica %d never committed the real transaction", i)
		}
	}
}
