// Package bank implements the financial-service state machine of the
// paper's ordering-attack example (Example IV.1, Fig. 6): conditional
// transfers of the form
//
//	transfer(A, B, n, m) := if amount(A) > n then withdraw(A, m); deposit(B, m)
//
// whose outcomes depend on execution order, which is what a malicious
// primary exploits in an ordering attack and what RCC's deterministic
// unpredictable permutation ordering mitigates.
package bank

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// Transfer is the conditional-transfer transaction payload.
type Transfer struct {
	From, To  string
	Threshold int64 // n: transfer only if amount(From) > n
	Amount    int64 // m
}

// Encode serializes the transfer into a Transaction.Op payload.
func (t Transfer) Encode() []byte {
	buf := make([]byte, 0, 32+len(t.From)+len(t.To))
	buf = appendString(buf, t.From)
	buf = appendString(buf, t.To)
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.Threshold))
	return binary.BigEndian.AppendUint64(buf, uint64(t.Amount))
}

// DecodeTransfer parses a transfer payload.
func DecodeTransfer(op []byte) (Transfer, error) {
	var t Transfer
	var err error
	t.From, op, err = readString(op)
	if err != nil {
		return t, err
	}
	t.To, op, err = readString(op)
	if err != nil {
		return t, err
	}
	if len(op) < 16 {
		return t, fmt.Errorf("bank: short transfer payload")
	}
	t.Threshold = int64(binary.BigEndian.Uint64(op))
	t.Amount = int64(binary.BigEndian.Uint64(op[8:]))
	return t, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, fmt.Errorf("bank: short string")
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return "", nil, fmt.Errorf("bank: truncated string")
	}
	return string(buf[:n]), buf[n:], nil
}

// rawAccounts slices the From/To account names out of a transfer payload
// without allocating strings, mirroring DecodeTransfer's framing exactly:
// any payload DecodeTransfer rejects is rejected here too (and Execute
// leaves state untouched for those).
func rawAccounts(op []byte) (from, to []byte, ok bool) {
	if len(op) < 2 {
		return nil, nil, false
	}
	n := int(binary.BigEndian.Uint16(op))
	op = op[2:]
	if len(op) < n {
		return nil, nil, false
	}
	from, op = op[:n], op[n:]
	if len(op) < 2 {
		return nil, nil, false
	}
	n = int(binary.BigEndian.Uint16(op))
	op = op[2:]
	if len(op) < n+16 {
		return nil, nil, false
	}
	return from, op[:n], true
}

// shardCount is a power of two: accounts hash onto shards with the same
// FNV-1a hash that yields their conflict StateKey.
const shardCount = 64

type shard struct {
	mu sync.Mutex
	m  map[string]int64
}

// Bank is a deterministic account store implementing exec.Application.
// Balances are sharded by account-name hash with per-shard locks and the
// applied counter is atomic, so Execute tolerates the engine's concurrent
// calls for transactions with disjoint account footprints; transfers
// touching a common account share a StateKey and are serialized by the
// engine in batch order.
type Bank struct {
	shards  [shardCount]shard
	applied atomic.Uint64
}

func shardOf(k types.StateKey) int { return int(uint64(k) & (shardCount - 1)) }

// New creates a bank with the given opening balances.
func New(opening map[string]int64) *Bank {
	b := &Bank{}
	for i := range b.shards {
		b.shards[i].m = make(map[string]int64)
	}
	for k, v := range opening {
		b.shards[shardOf(types.KeyString(k))].m[k] = v
	}
	return b
}

// Balance returns the balance of account a (0 when absent).
func (b *Bank) Balance(a string) int64 {
	s := &b.shards[shardOf(types.KeyString(a))]
	s.mu.Lock()
	v := s.m[a]
	s.mu.Unlock()
	return v
}

// Keys declares a transfer's conflict footprint: the From and To accounts.
// Payloads DecodeTransfer would reject execute statelessly (result 0xff,
// no counter bump), so they declare an empty footprint.
func (b *Bank) Keys(tx types.Transaction, buf []types.StateKey) ([]types.StateKey, bool) {
	if tx.IsNoOp() {
		return buf, true
	}
	from, to, ok := rawAccounts(tx.Op)
	if !ok {
		return buf, true // stateless rejection: conflicts with nothing
	}
	return append(buf, types.KeyBytes(from), types.KeyBytes(to)), true
}

// Execute applies one transfer transaction. The result byte reports whether
// the conditional fired (1) or not (0). Concurrent calls are safe for
// transfers with disjoint {From, To} footprints: the two shards involved
// are locked in index order.
func (b *Bank) Execute(tx types.Transaction) []byte {
	if tx.IsNoOp() {
		return nil
	}
	t, err := DecodeTransfer(tx.Op)
	if err != nil {
		return []byte{0xff}
	}
	b.applied.Add(1)
	si, sj := shardOf(types.KeyString(t.From)), shardOf(types.KeyString(t.To))
	if si > sj {
		si, sj = sj, si
	}
	b.shards[si].mu.Lock()
	if sj != si {
		b.shards[sj].mu.Lock()
	}
	from := &b.shards[shardOf(types.KeyString(t.From))]
	out := byte(0)
	if from.m[t.From] > t.Threshold {
		from.m[t.From] -= t.Amount
		b.shards[shardOf(types.KeyString(t.To))].m[t.To] += t.Amount
		out = 1
	}
	if sj != si {
		b.shards[sj].mu.Unlock()
	}
	b.shards[si].mu.Unlock()
	return []byte{out}
}

// sortedEntries collects every account across the shards in deterministic
// (sorted) order.
func (b *Bank) sortedEntries() ([]string, map[string]int64) {
	all := make(map[string]int64)
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			all[k] = v
		}
		s.mu.Unlock()
	}
	names := make([]string, 0, len(all))
	for k := range all {
		names = append(names, k)
	}
	sort.Strings(names)
	return names, all
}

// Snapshot serializes the balances and the applied-transfer counter in
// deterministic (sorted) order for checkpoint persistence
// (store.Snapshotter). The format is unchanged from the unsharded bank.
func (b *Bank) Snapshot() []byte {
	names, all := b.sortedEntries()
	buf := make([]byte, 0, 16+24*len(names))
	buf = binary.BigEndian.AppendUint64(buf, b.applied.Load())
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, k := range names {
		buf = appendString(buf, k)
		buf = binary.BigEndian.AppendUint64(buf, uint64(all[k]))
	}
	return buf
}

// Restore replaces the bank state with a Snapshot image
// (store.Snapshotter).
func (b *Bank) Restore(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("bank: short snapshot: %d bytes", len(data))
	}
	applied := binary.BigEndian.Uint64(data)
	n := int(binary.BigEndian.Uint32(data[8:]))
	data = data[12:]
	balances := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k, rest, err := readString(data)
		if err != nil {
			return fmt.Errorf("bank: snapshot account %d: %w", i, err)
		}
		if len(rest) < 8 {
			return fmt.Errorf("bank: snapshot truncated at account %d", i)
		}
		balances[k] = int64(binary.BigEndian.Uint64(rest))
		data = rest[8:]
	}
	if len(data) != 0 {
		return fmt.Errorf("bank: %d trailing snapshot bytes", len(data))
	}
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		s.m = make(map[string]int64)
		s.mu.Unlock()
	}
	for k, v := range balances {
		s := &b.shards[shardOf(types.KeyString(k))]
		s.mu.Lock()
		s.m[k] = v
		s.mu.Unlock()
	}
	b.applied.Store(applied)
	return nil
}

// StateDigest hashes all balances in deterministic (sorted) order. The
// digest is byte-identical to the unsharded bank's.
func (b *Bank) StateDigest() types.Digest {
	names, all := b.sortedEntries()
	buf := make([]byte, 0, 16*len(names))
	for _, k := range names {
		buf = appendString(buf, k)
		buf = binary.BigEndian.AppendUint64(buf, uint64(all[k]))
	}
	return types.Hash(buf)
}
