// Package bank implements the financial-service state machine of the
// paper's ordering-attack example (Example IV.1, Fig. 6): conditional
// transfers of the form
//
//	transfer(A, B, n, m) := if amount(A) > n then withdraw(A, m); deposit(B, m)
//
// whose outcomes depend on execution order, which is what a malicious
// primary exploits in an ordering attack and what RCC's deterministic
// unpredictable permutation ordering mitigates.
package bank

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/types"
)

// Transfer is the conditional-transfer transaction payload.
type Transfer struct {
	From, To  string
	Threshold int64 // n: transfer only if amount(From) > n
	Amount    int64 // m
}

// Encode serializes the transfer into a Transaction.Op payload.
func (t Transfer) Encode() []byte {
	buf := make([]byte, 0, 32+len(t.From)+len(t.To))
	buf = appendString(buf, t.From)
	buf = appendString(buf, t.To)
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.Threshold))
	return binary.BigEndian.AppendUint64(buf, uint64(t.Amount))
}

// DecodeTransfer parses a transfer payload.
func DecodeTransfer(op []byte) (Transfer, error) {
	var t Transfer
	var err error
	t.From, op, err = readString(op)
	if err != nil {
		return t, err
	}
	t.To, op, err = readString(op)
	if err != nil {
		return t, err
	}
	if len(op) < 16 {
		return t, fmt.Errorf("bank: short transfer payload")
	}
	t.Threshold = int64(binary.BigEndian.Uint64(op))
	t.Amount = int64(binary.BigEndian.Uint64(op[8:]))
	return t, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, fmt.Errorf("bank: short string")
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return "", nil, fmt.Errorf("bank: truncated string")
	}
	return string(buf[:n]), buf[n:], nil
}

// Bank is a deterministic account store implementing exec.Application.
// Not safe for concurrent use.
type Bank struct {
	balances map[string]int64
	applied  uint64
}

// New creates a bank with the given opening balances.
func New(opening map[string]int64) *Bank {
	b := &Bank{balances: make(map[string]int64, len(opening))}
	for k, v := range opening {
		b.balances[k] = v
	}
	return b
}

// Balance returns the balance of account a (0 when absent).
func (b *Bank) Balance(a string) int64 { return b.balances[a] }

// Execute applies one transfer transaction. The result byte reports whether
// the conditional fired (1) or not (0).
func (b *Bank) Execute(tx types.Transaction) []byte {
	if tx.IsNoOp() {
		return nil
	}
	t, err := DecodeTransfer(tx.Op)
	if err != nil {
		return []byte{0xff}
	}
	b.applied++
	if b.balances[t.From] > t.Threshold {
		b.balances[t.From] -= t.Amount
		b.balances[t.To] += t.Amount
		return []byte{1}
	}
	return []byte{0}
}

// Snapshot serializes the balances and the applied-transfer counter in
// deterministic (sorted) order for checkpoint persistence
// (store.Snapshotter).
func (b *Bank) Snapshot() []byte {
	names := make([]string, 0, len(b.balances))
	for k := range b.balances {
		names = append(names, k)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 16+24*len(names))
	buf = binary.BigEndian.AppendUint64(buf, b.applied)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, k := range names {
		buf = appendString(buf, k)
		buf = binary.BigEndian.AppendUint64(buf, uint64(b.balances[k]))
	}
	return buf
}

// Restore replaces the bank state with a Snapshot image
// (store.Snapshotter).
func (b *Bank) Restore(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("bank: short snapshot: %d bytes", len(data))
	}
	applied := binary.BigEndian.Uint64(data)
	n := int(binary.BigEndian.Uint32(data[8:]))
	data = data[12:]
	balances := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k, rest, err := readString(data)
		if err != nil {
			return fmt.Errorf("bank: snapshot account %d: %w", i, err)
		}
		if len(rest) < 8 {
			return fmt.Errorf("bank: snapshot truncated at account %d", i)
		}
		balances[k] = int64(binary.BigEndian.Uint64(rest))
		data = rest[8:]
	}
	if len(data) != 0 {
		return fmt.Errorf("bank: %d trailing snapshot bytes", len(data))
	}
	b.balances = balances
	b.applied = applied
	return nil
}

// StateDigest hashes all balances in deterministic (sorted) order.
func (b *Bank) StateDigest() types.Digest {
	names := make([]string, 0, len(b.balances))
	for k := range b.balances {
		names = append(names, k)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 16*len(names))
	for _, k := range names {
		buf = appendString(buf, k)
		buf = binary.BigEndian.AppendUint64(buf, uint64(b.balances[k]))
	}
	return types.Hash(buf)
}
