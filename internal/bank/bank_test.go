package bank

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestTransferCodecRoundTrip(t *testing.T) {
	f := func(from, to string, threshold, amount int64) bool {
		if len(from) > 60000 || len(to) > 60000 {
			return true
		}
		tr := Transfer{From: from, To: to, Threshold: threshold, Amount: amount}
		got, err := DecodeTransfer(tr.Encode())
		return err == nil && got == tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTransfer([]byte{0}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestPaperFig6Outcomes(t *testing.T) {
	// The exact table of Fig. 6.
	t1 := Transfer{From: "Alice", To: "Bob", Threshold: 500, Amount: 200}
	t2 := Transfer{From: "Bob", To: "Eve", Threshold: 400, Amount: 300}
	opening := map[string]int64{"Alice": 800, "Bob": 300, "Eve": 100}

	run := func(order ...Transfer) *Bank {
		b := New(opening)
		for i, tr := range order {
			b.Execute(types.Transaction{Client: 1, Seq: uint64(i + 1), Op: tr.Encode()})
		}
		return b
	}

	b12 := run(t1, t2)
	if b12.Balance("Alice") != 600 || b12.Balance("Bob") != 200 || b12.Balance("Eve") != 400 {
		t.Fatalf("T1;T2 = %d/%d/%d, want 600/200/400",
			b12.Balance("Alice"), b12.Balance("Bob"), b12.Balance("Eve"))
	}
	b21 := run(t2, t1)
	if b21.Balance("Alice") != 600 || b21.Balance("Bob") != 500 || b21.Balance("Eve") != 100 {
		t.Fatalf("T2;T1 = %d/%d/%d, want 600/500/100",
			b21.Balance("Alice"), b21.Balance("Bob"), b21.Balance("Eve"))
	}
}

func TestConditionalThreshold(t *testing.T) {
	b := New(map[string]int64{"A": 100, "B": 0})
	// amount(A) > 100 is false: transfer must not fire.
	out := b.Execute(types.Transaction{Client: 1, Seq: 1,
		Op: Transfer{From: "A", To: "B", Threshold: 100, Amount: 50}.Encode()})
	if out[0] != 0 || b.Balance("A") != 100 || b.Balance("B") != 0 {
		t.Fatal("transfer fired below threshold")
	}
	// amount(A) > 99 is true: fires.
	out = b.Execute(types.Transaction{Client: 1, Seq: 2,
		Op: Transfer{From: "A", To: "B", Threshold: 99, Amount: 50}.Encode()})
	if out[0] != 1 || b.Balance("A") != 50 || b.Balance("B") != 50 {
		t.Fatal("transfer did not fire above threshold")
	}
}

func TestConservationOfMoney(t *testing.T) {
	f := func(ops []uint8) bool {
		b := New(map[string]int64{"A": 1000, "B": 1000, "C": 1000})
		names := []string{"A", "B", "C"}
		for i, op := range ops {
			tr := Transfer{
				From:      names[int(op)%3],
				To:        names[int(op/3)%3],
				Threshold: int64(op%7) * 100,
				Amount:    int64(op%5) * 50,
			}
			b.Execute(types.Transaction{Client: 1, Seq: uint64(i + 1), Op: tr.Encode()})
		}
		return b.Balance("A")+b.Balance("B")+b.Balance("C") == 3000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateDigestDeterministic(t *testing.T) {
	mk := func() *Bank {
		b := New(map[string]int64{"X": 5, "Y": 10})
		b.Execute(types.Transaction{Client: 1, Seq: 1,
			Op: Transfer{From: "Y", To: "X", Threshold: 1, Amount: 3}.Encode()})
		return b
	}
	if mk().StateDigest() != mk().StateDigest() {
		t.Fatal("identical histories produced different digests")
	}
	b := mk()
	before := b.StateDigest()
	b.Execute(types.Transaction{Client: 1, Seq: 2,
		Op: Transfer{From: "X", To: "Y", Threshold: 1, Amount: 2}.Encode()})
	if b.StateDigest() == before {
		t.Fatal("digest unchanged by a firing transfer")
	}
}

func TestGarbageAndNoOp(t *testing.T) {
	b := New(nil)
	if out := b.Execute(types.Transaction{Client: 1, Seq: 1, Op: []byte{1}}); out[0] != 0xff {
		t.Fatal("garbage not flagged")
	}
	if b.Execute(types.NoOp()) != nil {
		t.Fatal("noop produced output")
	}
}
