// Package quorum implements the quorum arithmetic of Byzantine consensus
// (n > 3f; nf = n − f non-faulty replicas) and vote-tracking certificates
// shared by all protocols in this repository.
package quorum

import (
	"fmt"

	"repro/internal/types"
)

// Params captures the fault-tolerance parameters of a deployment.
type Params struct {
	N int // total replicas
	F int // maximum Byzantine replicas tolerated
}

// NewParams derives Params for n replicas with the maximum f such that
// n > 3f. It returns an error when n < 4 (no fault can be tolerated in a
// meaningful BFT setup below four replicas).
func NewParams(n int) (Params, error) {
	if n < 4 {
		return Params{}, fmt.Errorf("quorum: need at least 4 replicas, got %d", n)
	}
	return Params{N: n, F: (n - 1) / 3}, nil
}

// NF returns nf = n − f, the number of non-faulty replicas (and the size of
// a Byzantine quorum).
func (p Params) NF() int { return p.N - p.F }

// FaultDetection returns f+1, the number of distinct claims that guarantees
// at least one comes from a non-faulty replica.
func (p Params) FaultDetection() int { return p.F + 1 }

// InDarkRecovery returns nf − f, the minimum number of non-faulty replicas
// guaranteed to hold an accepted proposal (Assumption A1/A3), which is also
// the threshold of failure claims that triggers a dynamic per-need
// checkpoint (§III-D).
func (p Params) InDarkRecovery() int { return p.NF() - p.F }

// Valid reports whether n > 3f holds.
func (p Params) Valid() bool { return p.N > 3*p.F && p.F >= 0 }

// VoteSet tracks votes keyed by (round, digest) from distinct replicas, the
// building block of prepared/committed certificates.
type VoteSet struct {
	votes map[types.Digest]map[types.ReplicaID]struct{}
}

// NewVoteSet creates an empty vote set.
func NewVoteSet() *VoteSet {
	return &VoteSet{votes: make(map[types.Digest]map[types.ReplicaID]struct{})}
}

// Add records a vote from replica r for digest d, returning the number of
// distinct voters for d after the addition. Duplicate votes are idempotent.
func (vs *VoteSet) Add(r types.ReplicaID, d types.Digest) int {
	m, ok := vs.votes[d]
	if !ok {
		m = make(map[types.ReplicaID]struct{})
		vs.votes[d] = m
	}
	m[r] = struct{}{}
	return len(m)
}

// Count returns the number of distinct voters for digest d.
func (vs *VoteSet) Count(d types.Digest) int { return len(vs.votes[d]) }

// Voters returns the distinct voters for digest d.
func (vs *VoteSet) Voters(d types.Digest) []types.ReplicaID {
	m := vs.votes[d]
	out := make([]types.ReplicaID, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	return out
}

// Certificate is an assembled quorum certificate: a digest together with the
// replicas that voted for it.
type Certificate struct {
	Round   types.Round
	Digest  types.Digest
	Signers []types.ReplicaID
}

// Meets reports whether the certificate carries at least q signers.
func (c *Certificate) Meets(q int) bool { return len(c.Signers) >= q }
