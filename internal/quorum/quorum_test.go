package quorum

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestNewParamsRejectsTinyClusters(t *testing.T) {
	for n := -1; n < 4; n++ {
		if _, err := NewParams(n); err == nil {
			t.Fatalf("accepted n=%d", n)
		}
	}
}

func TestParamsKnownValues(t *testing.T) {
	cases := []struct{ n, f, nf int }{
		{4, 1, 3}, {7, 2, 5}, {10, 3, 7}, {16, 5, 11},
		{32, 10, 22}, {64, 21, 43}, {91, 30, 61},
	}
	for _, c := range cases {
		p, err := NewParams(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if p.F != c.f || p.NF() != c.nf {
			t.Fatalf("n=%d: f=%d nf=%d, want f=%d nf=%d", c.n, p.F, p.NF(), c.f, c.nf)
		}
		if !p.Valid() {
			t.Fatalf("n=%d: params invalid", c.n)
		}
	}
}

// TestQuorumIntersection checks the property all BFT safety rests on: two
// quorums of nf replicas overlap in at least f+1 replicas, hence in at
// least one non-faulty replica.
func TestQuorumIntersection(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%100) + 4
		p, err := NewParams(n)
		if err != nil {
			return false
		}
		overlap := 2*p.NF() - p.N
		return overlap >= p.F+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestInDarkRecoveryBound checks nf − f > f (Assumption A1's consequence):
// the replicas guaranteed to hold an accepted proposal outnumber the faulty
// ones, so checkpoints can always out-vote them.
func TestInDarkRecoveryBound(t *testing.T) {
	for n := 4; n <= 128; n++ {
		p, _ := NewParams(n)
		if p.InDarkRecovery() <= p.F {
			t.Fatalf("n=%d: nf−f=%d not above f=%d", n, p.InDarkRecovery(), p.F)
		}
	}
}

func TestVoteSetCounting(t *testing.T) {
	vs := NewVoteSet()
	d1 := types.Hash([]byte("a"))
	d2 := types.Hash([]byte("b"))
	if got := vs.Add(1, d1); got != 1 {
		t.Fatalf("first vote count %d", got)
	}
	if got := vs.Add(1, d1); got != 1 {
		t.Fatalf("duplicate vote counted: %d", got)
	}
	vs.Add(2, d1)
	vs.Add(3, d2)
	if vs.Count(d1) != 2 || vs.Count(d2) != 1 {
		t.Fatalf("counts %d/%d, want 2/1", vs.Count(d1), vs.Count(d2))
	}
	if len(vs.Voters(d1)) != 2 {
		t.Fatal("voters mismatch")
	}
}

func TestCertificateMeets(t *testing.T) {
	c := &Certificate{Signers: []types.ReplicaID{0, 1, 2}}
	if !c.Meets(3) || c.Meets(4) {
		t.Fatal("Meets miscounts")
	}
}
