package transport

// Wire format v2.
//
// Each direction of a TCP connection is an independent byte stream:
//
//	stream  = header frame*
//	header  = magic("RCCB") version(u16) kind(u8) sender(u32)
//	frame   = frameLen(u32) record*            // frameLen = total record bytes
//	record  = recLen(u32) tagLen(u8) tag msg   // recLen = 1 + tagLen + len(msg)
//	msg     = MsgType(u8) body                 // types.AppendMessage encoding
//
// All integers are big-endian. The header names the SENDER once per
// connection (kind 0 = replica, 1 = client; sender carries the replica ID in
// the low 16 bits or the full client ID), so records carry no per-message
// envelope — only the authenticator tag over the message's AuthPayload.
// A reader that sees a bad magic or a different version refuses the
// connection before any frame is interpreted: mixed-version deployments
// fail loudly at connect time (compare store.ErrDataDirMismatch for disk
// state) instead of corrupting each other's streams.
//
// Frames exist for write-side batching: a writer goroutine coalesces every
// message queued at that moment into one frame and hands the kernel a single
// buffer, so the per-syscall cost amortizes across the burst. Record and
// frame lengths let the reader slice messages back out without peeking into
// codec internals, and cap memory per frame (MaxFrameBytes).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/crypto"
	"repro/internal/types"
)

// WireVersion is the framing version this build speaks. Connections
// announcing any other version are refused at the handshake.
const WireVersion = 2

var wireMagic = [4]byte{'R', 'C', 'C', 'B'}

// ErrWireVersion reports a peer speaking a different framing version (or not
// speaking this protocol at all).
var ErrWireVersion = errors.New("transport: wire version mismatch")

const (
	kindReplica   = 0
	kindClient    = 1
	wireHeaderLen = 4 + 2 + 1 + 4
	maxTagLen     = 255
)

// wireHeader is the decoded per-connection stream header.
type wireHeader struct {
	version  uint16
	isClient bool
	replica  types.ReplicaID
	client   types.ClientID
}

// party returns the crypto party ID the header's sender authenticates as.
func (h *wireHeader) party() uint32 {
	if h.isClient {
		return crypto.ClientPartyID(h.client)
	}
	return crypto.PartyID(h.replica)
}

// appendHeader encodes the local node's stream header.
func appendHeader(buf []byte, isClient bool, r types.ReplicaID, c types.ClientID) []byte {
	buf = append(buf, wireMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, WireVersion)
	if isClient {
		buf = append(buf, kindClient)
		return binary.BigEndian.AppendUint32(buf, uint32(c))
	}
	buf = append(buf, kindReplica)
	return binary.BigEndian.AppendUint32(buf, uint32(r))
}

// readHeader consumes and validates a stream header.
func readHeader(r io.Reader) (wireHeader, error) {
	var b [wireHeaderLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return wireHeader{}, fmt.Errorf("transport: reading stream header: %w", err)
	}
	if [4]byte(b[:4]) != wireMagic {
		return wireHeader{}, fmt.Errorf("%w: bad magic %q", ErrWireVersion, b[:4])
	}
	h := wireHeader{version: binary.BigEndian.Uint16(b[4:6])}
	if h.version != WireVersion {
		return h, fmt.Errorf("%w: peer speaks v%d, this build speaks v%d",
			ErrWireVersion, h.version, WireVersion)
	}
	id := binary.BigEndian.Uint32(b[7:11])
	switch b[6] {
	case kindReplica:
		h.replica = types.ReplicaID(id)
	case kindClient:
		h.isClient = true
		h.client = types.ClientID(id)
	default:
		return h, fmt.Errorf("%w: unknown sender kind %d", ErrWireVersion, b[6])
	}
	return h, nil
}

// appendRecord encodes one message (tag + codec bytes) as a record into buf.
// The authenticator tag is computed here — on the writer goroutine — so the
// MAC cost never lands on the caller of Send. scratch is reused across calls
// for the AuthPayload bytes.
func appendRecord(buf []byte, auth crypto.Authenticator, party uint32, m types.Message, scratch *[]byte) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // recLen, patched below
	var tag []byte
	if auth != nil && auth.Scheme() != crypto.SchemeNone {
		*scratch = m.AuthPayload((*scratch)[:0])
		if ta, ok := auth.(crypto.TagAppender); ok {
			// Tag lands in scratch right after the payload: no per-record
			// allocation once the scratch buffer is warm. AppendTag only
			// reads payload and appends to dst, so aliasing one buffer is
			// safe even if the append reallocates.
			plen := len(*scratch)
			*scratch = ta.AppendTag(party, (*scratch)[:plen], *scratch)
			tag = (*scratch)[plen:]
		} else {
			tag = auth.Tag(party, *scratch)
		}
	}
	if len(tag) > maxTagLen {
		return buf[:start], fmt.Errorf("transport: authenticator tag %d bytes exceeds %d", len(tag), maxTagLen)
	}
	buf = append(buf, byte(len(tag)))
	buf = append(buf, tag...)
	out, err := types.AppendMessage(buf, m)
	if err != nil {
		return buf[:start], err
	}
	binary.BigEndian.PutUint32(out[start:], uint32(len(out)-start-4))
	return out, nil
}

// forEachRecord walks the records of one frame, yielding (tag, msg) slices
// that alias the frame buffer — the callback must not retain them.
func forEachRecord(frame []byte, fn func(tag, msg []byte)) error {
	for len(frame) > 0 {
		if len(frame) < 4 {
			return fmt.Errorf("transport: truncated record header")
		}
		n := int(binary.BigEndian.Uint32(frame))
		frame = frame[4:]
		if n < 1 || n > len(frame) {
			return fmt.Errorf("transport: record length %d exceeds frame", n)
		}
		rec := frame[:n]
		frame = frame[n:]
		tagLen := int(rec[0])
		if 1+tagLen > len(rec) {
			return fmt.Errorf("transport: tag length %d exceeds record", tagLen)
		}
		fn(rec[1:1+tagLen], rec[1+tagLen:])
	}
	return nil
}

// ---------------------------------------------------------------------------
// Pooled buffers
// ---------------------------------------------------------------------------

// bufPool recycles frame encode/decode buffers across messages and
// connections, keeping the steady-state messaging path allocation-light.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	// Don't let one huge frame pin a huge buffer forever.
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
