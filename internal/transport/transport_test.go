package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/types"
)

// sink collects delivered messages.
type sink struct {
	mu       sync.Mutex
	replicas []types.ReplicaID
	clients  []types.ClientID
	msgs     []types.Message
	notify   chan struct{}
}

func newSink() *sink { return &sink{notify: make(chan struct{}, 4096)} }

func (s *sink) DeliverReplica(from types.ReplicaID, m types.Message) {
	s.mu.Lock()
	s.replicas = append(s.replicas, from)
	s.msgs = append(s.msgs, m)
	s.mu.Unlock()
	s.notify <- struct{}{}
}

func (s *sink) DeliverClient(from types.ClientID, m types.Message) {
	s.mu.Lock()
	s.clients = append(s.clients, from)
	s.msgs = append(s.msgs, m)
	s.mu.Unlock()
	s.notify <- struct{}{}
}

func (s *sink) wait(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-s.notify:
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delivery %d/%d", i+1, n)
		}
	}
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *sink) first(t *testing.T) types.Message {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.msgs) == 0 {
		t.Fatal("no messages delivered")
	}
	return s.msgs[0]
}

func TestMemoryHubRoundTrip(t *testing.T) {
	hub := NewMemory()
	a, b := newSink(), newSink()
	ta := hub.AttachReplica(0, a)
	hub.AttachReplica(1, b)

	m := types.NewPrepare(3, 0, 1, 2, types.Hash([]byte("x")))
	if err := ta.Send(1, m); err != nil {
		t.Fatal(err)
	}
	b.wait(t, 1)
	got := b.first(t).(*types.Prepare)
	if got.Round != 2 || b.replicas[0] != 0 {
		t.Fatalf("delivered %+v from %d", got, b.replicas[0])
	}
	if err := ta.Send(9, m); err == nil {
		t.Fatal("send to unattached replica succeeded")
	}
}

func TestMemoryDetachModelsCrash(t *testing.T) {
	hub := NewMemory()
	a, b := newSink(), newSink()
	ta := hub.AttachReplica(0, a)
	hub.AttachReplica(1, b)
	hub.Detach(1)
	if err := ta.Send(1, types.NewPrepare(0, 0, 0, 1, types.ZeroDigest)); err == nil {
		t.Fatal("send to detached replica succeeded")
	}
}

// blockingEndpoint wedges every delivery until released — a node whose
// event loop has stopped draining.
type blockingEndpoint struct{ release chan struct{} }

func (b *blockingEndpoint) DeliverReplica(types.ReplicaID, types.Message) { <-b.release }
func (b *blockingEndpoint) DeliverClient(types.ClientID, types.Message)   { <-b.release }

// TestMemorySendIsEnqueueOnly pins the non-blocking contract of the
// in-process hub: a destination endpoint stuck inside Deliver must not make
// Send block (until the bounded queue fills), and traffic to other
// endpoints must flow untouched.
func TestMemorySendIsEnqueueOnly(t *testing.T) {
	hub := NewMemory()
	stuck := &blockingEndpoint{release: make(chan struct{})}
	defer close(stuck.release)
	fast := newSink()
	ta := hub.AttachReplica(0, newSink())
	hub.AttachReplica(1, stuck)
	hub.AttachReplica(2, fast)

	m := types.NewPrepare(0, 0, 0, 1, types.ZeroDigest)
	const sends = 64 // well under MemQueueDepth: never backpressures
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < sends; i++ {
			if err := ta.Send(1, m); err != nil {
				t.Error(err)
				return
			}
			if err := ta.Send(2, m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on a stuck endpoint")
	}
	fast.wait(t, sends)
}

// TestMemoryClientOverflowDrops pins the client-link drop policy of the
// in-process hub, with the drop counter observable.
func TestMemoryClientOverflowDrops(t *testing.T) {
	hub := NewMemory()
	stuck := &blockingEndpoint{release: make(chan struct{})}
	defer close(stuck.release)
	ta := hub.AttachReplica(0, newSink())
	hub.AttachClient(7, stuck)

	reply := &types.ClientReply{Client: 7, Seq: 1}
	// One delivery in flight + a full queue, then every further send drops.
	const sends = MemClientQueueDepth + 16
	for i := 0; i < sends; i++ {
		if err := ta.SendClient(7, reply); err != nil {
			t.Fatal(err)
		}
	}
	if d := hub.Dropped(); d == 0 {
		t.Fatal("overflowing a client queue recorded no drops")
	}
}

func tcpPair(t *testing.T, auth0, auth1 crypto.Authenticator) (*TCP, *TCP, *sink, *sink) {
	t.Helper()
	s0, s1 := newSink(), newSink()
	t0, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Auth: auth0}, s0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0", Auth: auth1}, s1)
	if err != nil {
		t.Fatal(err)
	}
	t0.SetPeers(map[types.ReplicaID]string{1: t1.Addr()})
	t1.SetPeers(map[types.ReplicaID]string{0: t0.Addr()})
	t.Cleanup(func() { t0.Close(); t1.Close() })
	return t0, t1, s0, s1
}

func TestTCPRoundTrip(t *testing.T) {
	t0, _, _, s1 := tcpPair(t, nil, nil)
	b := &types.Batch{Txns: []types.Transaction{{Client: 7, Seq: 1, Op: []byte("hello")}}}
	pp := &types.PrePrepare{View: 1, Round: 5, Digest: b.Digest(), Batch: b}
	pp.Inst = 2
	if err := t0.Send(1, pp); err != nil {
		t.Fatal(err)
	}
	s1.wait(t, 1)
	got := s1.first(t).(*types.PrePrepare)
	if got.Round != 5 || got.Batch == nil || got.Batch.Digest() != b.Digest() {
		t.Fatalf("round-trip mangled the message: %+v", got)
	}
	if s1.replicas[0] != 0 {
		t.Fatalf("sender %d, want 0", s1.replicas[0])
	}
}

// TestTCPAuthenticationRejectsForgery: a sender with the wrong MAC secret
// claims replica 0's identity; its records must be dropped while a properly
// keyed sender's records (same claimed identity) are delivered.
func TestTCPAuthenticationRejectsForgery(t *testing.T) {
	good := []byte("shared-secret")
	s1 := newSink()
	t1, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0", Auth: crypto.NewMAC(crypto.PartyID(1), good)}, s1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	peers := map[types.ReplicaID]string{1: t1.Addr()}

	evil, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0", Peers: peers,
		Auth: crypto.NewMAC(crypto.PartyID(0), []byte("wrong-secret")),
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	if err := evil.Send(1, types.NewCommit(0, 0, 0, 2, types.Hash([]byte("forged")))); err != nil {
		t.Fatal(err)
	}

	honest, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0", Peers: peers,
		Auth: crypto.NewMAC(crypto.PartyID(0), good),
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	defer honest.Close()
	if err := honest.Send(1, types.NewCommit(0, 0, 0, 3, types.Hash([]byte("ok")))); err != nil {
		t.Fatal(err)
	}

	s1.wait(t, 1)
	got := s1.first(t).(*types.Commit)
	if got.Round != 3 {
		t.Fatalf("forged commit delivered: %+v", got)
	}
	waitCond(t, 5*time.Second, func() bool { return t1.Stats().AuthRejects >= 1 })
	if n := s1.count(); n != 1 {
		t.Fatalf("delivered %d frames, want 1 (forgery dropped)", n)
	}
}

func TestTCPClientReplyPath(t *testing.T) {
	srvSink := newSink()
	srv, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0"}, srvSink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cliSink := newSink()
	cli, err := NewTCP(TCPConfig{
		IsClient: true, SelfClient: 42,
		Peers: map[types.ReplicaID]string{0: srv.Addr()},
	}, cliSink)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	req := types.NewClientRequest(0, types.Transaction{Client: 42, Seq: 1, Op: []byte("q")})
	if err := cli.Send(0, req); err != nil {
		t.Fatal(err)
	}
	srvSink.wait(t, 1)
	if srvSink.clients[0] != 42 {
		t.Fatalf("client identity %d, want 42", srvSink.clients[0])
	}

	reply := &types.ClientReply{Replica: 0, Client: 42, Seq: 1, Result: types.Hash([]byte("r")), Count: 1}
	if err := srv.SendClient(42, reply); err != nil {
		t.Fatal(err)
	}
	cliSink.wait(t, 1)
	if got := cliSink.first(t).(*types.ClientReply); got.Seq != 1 || got.Client != 42 {
		t.Fatalf("reply mangled: %+v", got)
	}
}

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := &Frame{FromReplica: 3, Tag: []byte{9, 9}, Msg: types.NewPrepare(1, 3, 2, 9, types.Hash([]byte("d")))}
	b, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.FromReplica != 3 || got.Msg.(*types.Prepare).Round != 9 || len(got.Tag) != 2 {
		t.Fatalf("frame mangled: %+v", got)
	}
}

// TestTCPBatchesBursts: a burst of sends to one destination must coalesce
// into fewer write batches than messages — the multi-message framing at
// work (exact counts depend on scheduling, so only the ratio is asserted).
func TestTCPBatchesBursts(t *testing.T) {
	t0, _, _, s1 := tcpPair(t, nil, nil)
	const burst = 512
	m := types.NewPrepare(0, 0, 1, 2, types.Hash([]byte("b")))
	for i := 0; i < burst; i++ {
		if err := t0.Send(1, m); err != nil {
			t.Fatal(err)
		}
	}
	s1.wait(t, burst)
	st := t0.Stats()
	if st.MsgsSent != burst {
		t.Fatalf("sent %d msgs, want %d", st.MsgsSent, burst)
	}
	if st.BatchesSent >= burst {
		t.Fatalf("no batching: %d batches for %d msgs", st.BatchesSent, burst)
	}
	t.Logf("burst of %d coalesced into %d batches (%.1f msgs/batch)",
		burst, st.BatchesSent, float64(st.MsgsSent)/float64(st.BatchesSent))
}

func waitCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
