package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/types"
)

// sink collects delivered messages.
type sink struct {
	mu       sync.Mutex
	replicas []types.ReplicaID
	clients  []types.ClientID
	msgs     []types.Message
	notify   chan struct{}
}

func newSink() *sink { return &sink{notify: make(chan struct{}, 64)} }

func (s *sink) DeliverReplica(from types.ReplicaID, m types.Message) {
	s.mu.Lock()
	s.replicas = append(s.replicas, from)
	s.msgs = append(s.msgs, m)
	s.mu.Unlock()
	s.notify <- struct{}{}
}

func (s *sink) DeliverClient(from types.ClientID, m types.Message) {
	s.mu.Lock()
	s.clients = append(s.clients, from)
	s.msgs = append(s.msgs, m)
	s.mu.Unlock()
	s.notify <- struct{}{}
}

func (s *sink) wait(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-s.notify:
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delivery %d/%d", i+1, n)
		}
	}
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func TestMemoryHubRoundTrip(t *testing.T) {
	hub := NewMemory()
	a, b := newSink(), newSink()
	ta := hub.AttachReplica(0, a)
	hub.AttachReplica(1, b)

	m := types.NewPrepare(3, 0, 1, 2, types.Hash([]byte("x")))
	if err := ta.Send(1, m); err != nil {
		t.Fatal(err)
	}
	b.wait(t, 1)
	got := b.msgs[0].(*types.Prepare)
	if got.Round != 2 || b.replicas[0] != 0 {
		t.Fatalf("delivered %+v from %d", got, b.replicas[0])
	}
	if err := ta.Send(9, m); err == nil {
		t.Fatal("send to unattached replica succeeded")
	}
}

func TestMemoryDetachModelsCrash(t *testing.T) {
	hub := NewMemory()
	a, b := newSink(), newSink()
	ta := hub.AttachReplica(0, a)
	hub.AttachReplica(1, b)
	hub.Detach(1)
	if err := ta.Send(1, types.NewPrepare(0, 0, 0, 1, types.ZeroDigest)); err == nil {
		t.Fatal("send to detached replica succeeded")
	}
}

func tcpPair(t *testing.T, auth0, auth1 crypto.Authenticator) (*TCP, *TCP, *sink, *sink) {
	t.Helper()
	s0, s1 := newSink(), newSink()
	t0, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Auth: auth0}, s0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0", Auth: auth1}, s1)
	if err != nil {
		t.Fatal(err)
	}
	t0.cfg.Peers = map[types.ReplicaID]string{1: t1.Addr()}
	t1.cfg.Peers = map[types.ReplicaID]string{0: t0.Addr()}
	t.Cleanup(func() { t0.Close(); t1.Close() })
	return t0, t1, s0, s1
}

func TestTCPRoundTrip(t *testing.T) {
	t0, _, _, s1 := tcpPair(t, nil, nil)
	b := &types.Batch{Txns: []types.Transaction{{Client: 7, Seq: 1, Op: []byte("hello")}}}
	pp := &types.PrePrepare{View: 1, Round: 5, Digest: b.Digest(), Batch: b}
	pp.Inst = 2
	if err := t0.Send(1, pp); err != nil {
		t.Fatal(err)
	}
	s1.wait(t, 1)
	got := s1.msgs[0].(*types.PrePrepare)
	if got.Round != 5 || got.Batch == nil || got.Batch.Digest() != b.Digest() {
		t.Fatalf("round-trip mangled the message: %+v", got)
	}
	if s1.replicas[0] != 0 {
		t.Fatalf("sender %d, want 0", s1.replicas[0])
	}
}

func TestTCPAuthenticationRejectsForgery(t *testing.T) {
	good := []byte("shared-secret")
	auth0 := crypto.NewMAC(crypto.PartyID(0), good)
	auth1 := crypto.NewMAC(crypto.PartyID(1), good)
	evil := crypto.NewMAC(crypto.PartyID(0), []byte("wrong-secret"))

	t0, _, _, s1 := tcpPair(t, auth0, auth1)
	m := types.NewCommit(0, 0, 0, 1, types.Hash([]byte("ok")))
	if err := t0.Send(1, m); err != nil {
		t.Fatal(err)
	}
	s1.wait(t, 1)

	// Now forge: same wire path, wrong key. The frame must be dropped.
	t0.cfg.Auth = evil
	if err := t0.Send(1, types.NewCommit(0, 0, 0, 2, types.Hash([]byte("forged")))); err != nil {
		t.Fatal(err)
	}
	// And a subsequent good frame still arrives (connection survives).
	t0.cfg.Auth = auth0
	if err := t0.Send(1, types.NewCommit(0, 0, 0, 3, types.Hash([]byte("ok2")))); err != nil {
		t.Fatal(err)
	}
	s1.wait(t, 1)
	if n := s1.count(); n != 2 {
		t.Fatalf("delivered %d frames, want 2 (forgery dropped)", n)
	}
}

func TestTCPClientReplyPath(t *testing.T) {
	srvSink := newSink()
	srv, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0"}, srvSink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cliSink := newSink()
	cli, err := NewTCP(TCPConfig{
		IsClient: true, SelfClient: 42,
		Peers: map[types.ReplicaID]string{0: srv.Addr()},
	}, cliSink)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	req := types.NewClientRequest(0, types.Transaction{Client: 42, Seq: 1, Op: []byte("q")})
	if err := cli.Send(0, req); err != nil {
		t.Fatal(err)
	}
	srvSink.wait(t, 1)
	if srvSink.clients[0] != 42 {
		t.Fatalf("client identity %d, want 42", srvSink.clients[0])
	}

	reply := &types.ClientReply{Replica: 0, Client: 42, Seq: 1, Result: types.Hash([]byte("r")), Count: 1}
	if err := srv.SendClient(42, reply); err != nil {
		t.Fatal(err)
	}
	cliSink.wait(t, 1)
	if got := cliSink.msgs[0].(*types.ClientReply); got.Seq != 1 || got.Client != 42 {
		t.Fatalf("reply mangled: %+v", got)
	}
}

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := &Frame{FromReplica: 3, Msg: types.NewPrepare(1, 3, 2, 9, types.Hash([]byte("d")))}
	b, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.FromReplica != 3 || got.Msg.(*types.Prepare).Round != 9 {
		t.Fatalf("frame mangled: %+v", got)
	}
}

func TestAllMessageTypesGobRegistered(t *testing.T) {
	b := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 1, Op: []byte("x")}}}
	msgs := []types.Message{
		types.NewClientRequest(0, b.Txns[0]),
		&types.ClientReply{Client: 1},
		&types.SwitchInstance{Client: 1, To: 2},
		&types.PrePrepare{Round: 1, Batch: b},
		types.NewPrepare(0, 1, 0, 1, b.Digest()),
		types.NewCommit(0, 1, 0, 1, b.Digest()),
		&types.Checkpoint{Round: 1},
		&types.ViewChange{NewView: 1},
		&types.NewView{NewView: 1},
		&types.Failure{Round: 1},
		&types.Stop{Target: 1},
		&types.OrderRequest{Round: 1, Batch: b},
		&types.SpecResponse{Round: 1},
		&types.CommitCert{Round: 1},
		&types.LocalCommit{Round: 1},
		&types.FillHole{From: 1, To: 2},
		&types.IHatePrimary{View: 1},
		&types.SignShare{Round: 1, Share: []byte{1}},
		&types.FullCommitProof{Round: 1, Combined: []byte{2}},
		&types.SignStateShare{Round: 1},
		&types.FullExecuteProof{Round: 1},
		&types.HSProposal{Round: 1, Batch: b},
		&types.HSVote{Round: 1},
		&types.HSNewView{View: 1},
		&types.EpochChange{Epoch: 1},
		&types.NewEpoch{Epoch: 1, StartRound: 7},
	}
	for _, m := range msgs {
		enc, err := Marshal(&Frame{FromReplica: 1, Msg: m})
		if err != nil {
			t.Fatalf("%T: marshal: %v", m, err)
		}
		dec, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		if dec.Msg.Type() != m.Type() {
			t.Fatalf("%T: type mismatch after round trip", m)
		}
	}
}
