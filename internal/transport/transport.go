// Package transport provides the message transports of the replica runtime:
// an in-process transport for tests and single-machine deployments, and a
// TCP transport (binary wire format v2, see wire.go) for real multi-host
// deployments via cmd/rccnode and cmd/rccclient.
//
// # Non-blocking contract
//
// Send and SendClient are enqueue-only on every transport: they place the
// message on a bounded per-destination queue and return without performing
// encoding, authentication, or network I/O. A dedicated writer goroutine per
// destination drains its queue, encodes messages through the binary codec in
// internal/types, coalesces everything queued at that moment into one
// multi-message frame, and hands the kernel a single buffer — so the
// consensus event loop never waits on a socket, and one slow destination
// never delays traffic to any other.
//
// The two link classes overflow differently:
//
//   - Replica links (peer connections a node dials) exert BACKPRESSURE: when
//     a healthy peer's queue is full, Send blocks until space frees. While a
//     peer is unreachable the writer drops instead (counted, see Stats) and
//     redials with exponential backoff, so a dead peer can never wedge the
//     event loop — consensus timeouts and retransmission own that failure.
//     The backpressure is bounded: a peer that accepts the connection but
//     stops draining it fails its next write within WriteTimeout, at which
//     point the link demotes to the same drop-while-down policy.
//   - Client links (inbound connections from clients) DROP on overflow,
//     with an observable counter: a reply dropped for one stalled client
//     costs nothing — the block is durable and the client collects its f+1
//     replies from other replicas or retries.
//
// Authentication: every record carries an authenticator tag over the
// message's AuthPayload, computed on the writer goroutine and verified
// against the sender identity announced in the connection's stream header
// before delivery. With digital signatures (and optionally with MACs, see
// TCPConfig.VerifyWorkers) verification runs on a bounded shared worker
// pool that preserves per-link delivery order, batches a frame's records
// into one VerifyBatch call, and can memoize verified client-request
// digests in a TCPConfig.DigestCache; links streaming forged records are
// demoted after AuthFailLimit consecutive failures. See verify.go.
package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// Endpoint delivers messages to the local node.
type Endpoint interface {
	// DeliverReplica hands a verified message from another replica.
	DeliverReplica(from types.ReplicaID, m types.Message)
	// DeliverClient hands a verified message from a client.
	DeliverClient(from types.ClientID, m types.Message)
}

// Transport sends messages to remote nodes. Both methods are enqueue-only:
// see the package documentation for the queueing and overflow model.
type Transport interface {
	// Send enqueues m for replica `to`.
	Send(to types.ReplicaID, m types.Message) error
	// SendClient enqueues m for client c.
	SendClient(c types.ClientID, m types.Message) error
	// Close drains the outbound queues (bounded by the drain timeout) and
	// releases resources.
	Close() error
}

// Frame is the logical envelope of one message: who sent it, the
// authenticator tag, and the message itself. The TCP stream encodes the
// sender once per connection (wire.go); Frame plus Marshal/Unmarshal exist
// for tests and wire-size measurements that want a self-contained record.
type Frame struct {
	FromReplica types.ReplicaID
	FromClient  types.ClientID
	IsClient    bool
	Tag         []byte
	Msg         types.Message
}

// Marshal encodes a frame to self-contained bytes via the binary codec.
func Marshal(f *Frame) ([]byte, error) {
	buf := make([]byte, 0, 256)
	if f.IsClient {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.FromReplica))
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.FromClient))
	if len(f.Tag) > maxTagLen {
		return nil, fmt.Errorf("transport: tag too long")
	}
	buf = append(buf, byte(len(f.Tag)))
	buf = append(buf, f.Tag...)
	return types.AppendMessage(buf, f.Msg)
}

// Unmarshal decodes a frame from bytes.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("transport: short frame")
	}
	f := &Frame{
		IsClient:    b[0] != 0,
		FromReplica: types.ReplicaID(binary.BigEndian.Uint16(b[1:])),
		FromClient:  types.ClientID(binary.BigEndian.Uint32(b[3:])),
	}
	tagLen := int(b[7])
	b = b[8:]
	if len(b) < tagLen {
		return nil, fmt.Errorf("transport: truncated tag")
	}
	if tagLen > 0 {
		f.Tag = append([]byte(nil), b[:tagLen]...)
	}
	m, err := types.DecodeMessage(b[tagLen:])
	if err != nil {
		return nil, err
	}
	f.Msg = m
	return f, nil
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

// Queue depths of the in-process transport, mirroring the TCP defaults.
const (
	// MemQueueDepth bounds each replica endpoint's delivery queue.
	MemQueueDepth = 4096
	// MemClientQueueDepth bounds each client endpoint's delivery queue.
	MemClientQueueDepth = 1024
)

// Memory is an in-process transport hub connecting replicas and clients.
// It exercises the same non-blocking contract as the TCP transport: Send
// enqueues onto the destination endpoint's bounded queue and a per-endpoint
// delivery goroutine hands messages to the Endpoint, so in-process tests see
// the same semantics (asynchrony, replica backpressure, client drops) as a
// real deployment. Safe for concurrent use.
type Memory struct {
	mu       sync.RWMutex
	replicas map[types.ReplicaID]*memEndpoint
	clients  map[types.ClientID]*memEndpoint
	dropped  atomic.Uint64
}

// NewMemory creates an empty hub.
func NewMemory() *Memory {
	return &Memory{
		replicas: make(map[types.ReplicaID]*memEndpoint),
		clients:  make(map[types.ClientID]*memEndpoint),
	}
}

type memItem struct {
	fromReplica types.ReplicaID
	fromClient  types.ClientID
	isClient    bool
	m           types.Message
}

// memEndpoint is one attached node: its bounded inbound queue and the
// delivery goroutine draining it.
type memEndpoint struct {
	ep   Endpoint
	ch   chan memItem
	done chan struct{}
	once sync.Once
}

func startMemEndpoint(ep Endpoint, depth int) *memEndpoint {
	me := &memEndpoint{ep: ep, ch: make(chan memItem, depth), done: make(chan struct{})}
	go me.run()
	return me
}

func (me *memEndpoint) run() {
	for {
		select {
		case it := <-me.ch:
			if it.isClient {
				me.ep.DeliverClient(it.fromClient, it.m)
			} else {
				me.ep.DeliverReplica(it.fromReplica, it.m)
			}
		case <-me.done:
			return
		}
	}
}

func (me *memEndpoint) stop() { me.once.Do(func() { close(me.done) }) }

// AttachReplica registers replica r's endpoint and returns its transport.
func (h *Memory) AttachReplica(r types.ReplicaID, ep Endpoint) Transport {
	me := startMemEndpoint(ep, MemQueueDepth)
	h.mu.Lock()
	if prev := h.replicas[r]; prev != nil {
		prev.stop()
	}
	h.replicas[r] = me
	h.mu.Unlock()
	return &memTransport{hub: h, replica: r, me: me}
}

// AttachClient registers client c's endpoint and returns its transport.
func (h *Memory) AttachClient(c types.ClientID, ep Endpoint) Transport {
	me := startMemEndpoint(ep, MemClientQueueDepth)
	h.mu.Lock()
	if prev := h.clients[c]; prev != nil {
		prev.stop()
	}
	h.clients[c] = me
	h.mu.Unlock()
	return &memTransport{hub: h, client: c, isClient: true, me: me}
}

// Detach removes replica r (models a crash): its delivery goroutine stops
// and queued messages are discarded.
func (h *Memory) Detach(r types.ReplicaID) {
	h.mu.Lock()
	me := h.replicas[r]
	delete(h.replicas, r)
	h.mu.Unlock()
	if me != nil {
		me.stop()
	}
}

// Dropped returns how many client-bound messages overflowed a client
// endpoint's queue and were discarded.
func (h *Memory) Dropped() uint64 { return h.dropped.Load() }

type memTransport struct {
	hub      *Memory
	replica  types.ReplicaID
	client   types.ClientID
	isClient bool
	// me is the endpoint this transport's Attach created: Close tears down
	// only it, never a successor registered under the same ID.
	me *memEndpoint
}

// Send enqueues m for replica `to`. Replica queues exert backpressure: a
// full queue blocks until the destination drains or detaches.
func (t *memTransport) Send(to types.ReplicaID, m types.Message) error {
	t.hub.mu.RLock()
	me := t.hub.replicas[to]
	t.hub.mu.RUnlock()
	if me == nil {
		return fmt.Errorf("transport: replica %d not attached", to)
	}
	it := memItem{fromReplica: t.replica, fromClient: t.client, isClient: t.isClient, m: m}
	select {
	case me.ch <- it:
		return nil
	case <-me.done:
		return fmt.Errorf("transport: replica %d detached", to)
	}
}

// SendClient enqueues m for client c. Client queues drop on overflow (the
// hub counts drops): a stalled client must never be able to exert
// backpressure on a replica.
func (t *memTransport) SendClient(c types.ClientID, m types.Message) error {
	t.hub.mu.RLock()
	me := t.hub.clients[c]
	t.hub.mu.RUnlock()
	if me == nil {
		return fmt.Errorf("transport: client %d not attached", c)
	}
	select {
	case me.ch <- memItem{fromReplica: t.replica, m: m}:
	default:
		t.hub.dropped.Add(1)
	}
	return nil
}

// Close detaches this node from the hub, stopping its delivery goroutine.
// If the ID has since been re-attached (a restarted node on the same hub),
// only this transport's own endpoint is stopped — the successor stays.
func (t *memTransport) Close() error {
	h := t.hub
	h.mu.Lock()
	if t.isClient {
		if h.clients[t.client] == t.me {
			delete(h.clients, t.client)
		}
	} else {
		if h.replicas[t.replica] == t.me {
			delete(h.replicas, t.replica)
		}
	}
	h.mu.Unlock()
	t.me.stop()
	return nil
}
