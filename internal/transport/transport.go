// Package transport provides the message transports of the replica runtime:
// an in-process transport for tests and single-machine deployments, and a
// TCP transport (gob-encoded frames) for real multi-host deployments via
// cmd/rccnode and cmd/rccclient.
//
// Authentication: every frame carries the sender, an optional authenticator
// tag over the message's AuthPayload, and the gob-encoded message. The
// receiving endpoint verifies the tag against the configured
// crypto.Authenticator before delivering.
package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/crypto"
	"repro/internal/types"
)

// Endpoint delivers messages to the local node.
type Endpoint interface {
	// DeliverReplica hands a verified message from another replica.
	DeliverReplica(from types.ReplicaID, m types.Message)
	// DeliverClient hands a verified message from a client.
	DeliverClient(from types.ClientID, m types.Message)
}

// Transport sends messages to remote nodes.
type Transport interface {
	// Send transmits m to replica `to`.
	Send(to types.ReplicaID, m types.Message) error
	// SendClient transmits m to client c.
	SendClient(c types.ClientID, m types.Message) error
	// Close releases resources.
	Close() error
}

func init() {
	// Register every concrete message type for gob transport.
	gob.Register(&types.ClientRequest{})
	gob.Register(&types.ClientReply{})
	gob.Register(&types.SwitchInstance{})
	gob.Register(&types.PrePrepare{})
	gob.Register(&types.Prepare{})
	gob.Register(&types.Commit{})
	gob.Register(&types.Checkpoint{})
	gob.Register(&types.ViewChange{})
	gob.Register(&types.NewView{})
	gob.Register(&types.Failure{})
	gob.Register(&types.Stop{})
	gob.Register(&types.OrderRequest{})
	gob.Register(&types.SpecResponse{})
	gob.Register(&types.CommitCert{})
	gob.Register(&types.LocalCommit{})
	gob.Register(&types.FillHole{})
	gob.Register(&types.IHatePrimary{})
	gob.Register(&types.SignShare{})
	gob.Register(&types.FullCommitProof{})
	gob.Register(&types.SignStateShare{})
	gob.Register(&types.FullExecuteProof{})
	gob.Register(&types.HSProposal{})
	gob.Register(&types.HSVote{})
	gob.Register(&types.HSNewView{})
	gob.Register(&types.EpochChange{})
	gob.Register(&types.NewEpoch{})
}

// Frame is the wire envelope.
type Frame struct {
	FromReplica types.ReplicaID
	FromClient  types.ClientID
	IsClient    bool
	Tag         []byte
	Msg         types.Message
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

// Memory is an in-process transport hub connecting replicas and clients by
// direct delivery. Safe for concurrent use.
type Memory struct {
	mu       sync.RWMutex
	replicas map[types.ReplicaID]Endpoint
	clients  map[types.ClientID]Endpoint
}

// NewMemory creates an empty hub.
func NewMemory() *Memory {
	return &Memory{
		replicas: make(map[types.ReplicaID]Endpoint),
		clients:  make(map[types.ClientID]Endpoint),
	}
}

// AttachReplica registers replica r's endpoint and returns its transport.
func (h *Memory) AttachReplica(r types.ReplicaID, ep Endpoint) Transport {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.replicas[r] = ep
	return &memTransport{hub: h, replica: r}
}

// AttachClient registers client c's endpoint and returns its transport.
func (h *Memory) AttachClient(c types.ClientID, ep Endpoint) Transport {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clients[c] = ep
	return &memTransport{hub: h, client: c, isClient: true}
}

// Detach removes replica r (models a crash).
func (h *Memory) Detach(r types.ReplicaID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.replicas, r)
}

type memTransport struct {
	hub      *Memory
	replica  types.ReplicaID
	client   types.ClientID
	isClient bool
}

func (t *memTransport) Send(to types.ReplicaID, m types.Message) error {
	t.hub.mu.RLock()
	ep := t.hub.replicas[to]
	t.hub.mu.RUnlock()
	if ep == nil {
		return fmt.Errorf("transport: replica %d not attached", to)
	}
	if t.isClient {
		ep.DeliverClient(t.client, m)
	} else {
		ep.DeliverReplica(t.replica, m)
	}
	return nil
}

func (t *memTransport) SendClient(c types.ClientID, m types.Message) error {
	t.hub.mu.RLock()
	ep := t.hub.clients[c]
	t.hub.mu.RUnlock()
	if ep == nil {
		return fmt.Errorf("transport: client %d not attached", c)
	}
	ep.DeliverReplica(t.replica, m)
	return nil
}

func (t *memTransport) Close() error { return nil }

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

// TCPConfig parameterizes a TCP node.
type TCPConfig struct {
	// Self is the local replica (ignored for clients).
	Self types.ReplicaID
	// SelfClient is the local client identity when IsClient.
	SelfClient types.ClientID
	// IsClient marks a client node (listens on no port, dials replicas).
	IsClient bool
	// Listen is the local listen address (replicas only).
	Listen string
	// Peers maps replica IDs to their dialable addresses.
	Peers map[types.ReplicaID]string
	// Auth authenticates frames; nil disables authentication.
	Auth crypto.Authenticator
}

// TCP is a TCP transport node. Outbound connections are dialed lazily and
// cached; inbound frames are verified and handed to the endpoint.
type TCP struct {
	cfg      TCPConfig
	ep       Endpoint
	listener net.Listener

	mu    sync.Mutex
	conns map[string]*tcpConn
	// accepted tracks inbound connections so Close can unblock their read
	// loops.
	accepted map[net.Conn]struct{}
	// clientsByID maps client identities to the inbound connections they
	// dialed, so replies flow back over the same connection.
	clientsByID map[types.ClientID]*tcpConn
	done        chan struct{}
	wg          sync.WaitGroup
}

type tcpConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	c   net.Conn
}

// NewTCP creates a TCP node delivering inbound messages to ep. Replicas
// start listening immediately.
func NewTCP(cfg TCPConfig, ep Endpoint) (*TCP, error) {
	t := &TCP{
		cfg: cfg, ep: ep,
		conns:       make(map[string]*tcpConn),
		accepted:    make(map[net.Conn]struct{}),
		clientsByID: make(map[types.ClientID]*tcpConn),
		done:        make(chan struct{}),
	}
	if !cfg.IsClient {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		t.listener = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// SetPeers installs (or replaces) the replica address map. Call before any
// Send — typically after all listeners have bound, when ephemeral ports
// become known.
func (t *TCP) SetPeers(peers map[types.ReplicaID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := make(map[types.ReplicaID]string, len(peers))
	for k, v := range peers {
		cp[k] = v
	}
	t.cfg.Peers = cp
}

// Addr returns the bound listen address (replicas only).
func (t *TCP) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.listener.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		t.accepted[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCP) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(c)
	// The write half of the same connection, registered lazily when the
	// first client frame identifies the peer.
	wc := &tcpConn{enc: gob.NewEncoder(c), c: c}
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			_ = err // EOF or closed; either way this connection is done
			return
		}
		if f.Msg == nil || !t.verify(&f) {
			continue // drop malformed or unauthenticated frames
		}
		if f.IsClient {
			t.mu.Lock()
			if _, known := t.clientsByID[f.FromClient]; !known {
				t.clientsByID[f.FromClient] = wc
			}
			t.mu.Unlock()
			t.ep.DeliverClient(f.FromClient, f.Msg)
		} else {
			t.ep.DeliverReplica(f.FromReplica, f.Msg)
		}
	}
}

func (t *TCP) verify(f *Frame) bool {
	if t.cfg.Auth == nil || t.cfg.Auth.Scheme() == crypto.SchemeNone {
		return true
	}
	var from uint32
	if f.IsClient {
		from = crypto.ClientPartyID(f.FromClient)
	} else {
		from = crypto.PartyID(f.FromReplica)
	}
	return t.cfg.Auth.Verify(from, f.Msg.AuthPayload(nil), f.Tag)
}

func (t *TCP) frame(to uint32, m types.Message) *Frame {
	f := &Frame{FromReplica: t.cfg.Self, FromClient: t.cfg.SelfClient, IsClient: t.cfg.IsClient, Msg: m}
	if t.cfg.Auth != nil && t.cfg.Auth.Scheme() != crypto.SchemeNone {
		f.Tag = t.cfg.Auth.Tag(to, m.AuthPayload(nil))
	}
	return f
}

// connTo returns (dialing if needed) the cached connection to addr.
func (t *TCP) connTo(addr string) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{enc: gob.NewEncoder(c), c: c}
	t.mu.Lock()
	if prev, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		c.Close()
		return prev, nil
	}
	t.conns[addr] = tc
	t.mu.Unlock()
	// Replicas answer clients over the same connection; clients must read
	// their inbound frames from the dialed connection.
	if t.cfg.IsClient {
		t.wg.Add(1)
		go t.readLoop(c)
	}
	return tc, nil
}

func (t *TCP) sendTo(addr string, f *Frame) error {
	tc, err := t.connTo(addr)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := tc.enc.Encode(f); err != nil {
		t.mu.Lock()
		delete(t.conns, addr)
		t.mu.Unlock()
		tc.c.Close()
		return err
	}
	return nil
}

// Send implements Transport.
func (t *TCP) Send(to types.ReplicaID, m types.Message) error {
	t.mu.Lock()
	addr, ok := t.cfg.Peers[to]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: unknown replica %d", to)
	}
	return t.sendTo(addr, t.frame(crypto.PartyID(to), m))
}

// SendClient implements Transport. Replica-to-client messages flow over the
// connection the client dialed; the replica tracks client connections by
// identity from inbound frames.
func (t *TCP) SendClient(c types.ClientID, m types.Message) error {
	t.mu.Lock()
	tc, ok := t.clientsByID[c]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: client %d not connected", c)
	}
	f := t.frame(crypto.ClientPartyID(c), m)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.enc.Encode(f)
}

// Close implements Transport.
func (t *TCP) Close() error {
	close(t.done)
	if t.listener != nil {
		t.listener.Close()
	}
	t.mu.Lock()
	for _, c := range t.conns {
		c.c.Close()
	}
	// Force accepted connections closed so their read loops unblock.
	for c := range t.accepted {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// Marshal encodes a frame to bytes (used by tests to measure wire size).
func Marshal(f *Frame) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a frame from bytes.
func Unmarshal(b []byte) (*Frame, error) {
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}
