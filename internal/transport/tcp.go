package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crypto"
	"repro/internal/crypto/digestcache"
	"repro/internal/obs/flight"
	"repro/internal/types"
)

// TCPConfig parameterizes a TCP node.
type TCPConfig struct {
	// Self is the local replica (ignored for clients).
	Self types.ReplicaID
	// SelfClient is the local client identity when IsClient.
	SelfClient types.ClientID
	// IsClient marks a client node (listens on no port, dials replicas).
	IsClient bool
	// Listen is the local listen address (replicas only).
	Listen string
	// Peers maps replica IDs to their dialable addresses.
	Peers map[types.ReplicaID]string
	// Auth authenticates frames; nil disables authentication.
	Auth crypto.Authenticator

	// QueueDepth bounds each per-peer outbound queue (default 4096).
	// Overflow on a connected peer link blocks the sender (backpressure);
	// while the peer is unreachable messages are dropped and counted.
	QueueDepth int
	// ClientQueueDepth bounds each per-client reply queue (default 1024).
	// Overflow drops the reply and counts it — a stalled client never
	// delays anyone else's replies.
	ClientQueueDepth int
	// MaxBatchBytes caps the encoded bytes one write batch coalesces into
	// a single syscall (default 128 KiB).
	MaxBatchBytes int
	// MaxBatchMsgs caps the messages per write batch (default 256).
	MaxBatchMsgs int
	// MaxFrameBytes caps accepted inbound frames (default 64 MiB).
	MaxFrameBytes int
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds each steady-state frame write (default 10s).
	// A peer that accepts the connection but stops draining it (paused,
	// partitioned, Byzantine) fails its write within this bound and the
	// link demotes to the drop-while-down policy — so the backpressure a
	// full replica queue exerts on senders is bounded, never a permanent
	// wedge of the consensus event loop.
	WriteTimeout time.Duration
	// ReconnectBackoff is the initial redial delay after a link failure,
	// doubling up to ReconnectBackoffMax (defaults 50ms, 1s).
	ReconnectBackoff    time.Duration
	ReconnectBackoffMax time.Duration
	// DrainTimeout bounds how long Close lets writer goroutines flush
	// queued messages (default 1s).
	DrainTimeout time.Duration

	// VerifyWorkers sizes the shared inbound-verification worker pool (see
	// verify.go). 0 picks a scheme-dependent default: GOMAXPROCS workers
	// for digital signatures (verification dominates, parallelism pays),
	// inline verification for MACs (a cached HMAC check is cheaper than a
	// queue handoff). Negative forces the inline path; positive forces a
	// pool of that size. Ignored when Auth is nil or SchemeNone.
	VerifyWorkers int
	// VerifyQueueDepth bounds both the shared pool queue and each link's
	// in-order release FIFO, in frames (default 32). A link producing
	// faster than the pool verifies backpressures its own reader.
	VerifyQueueDepth int
	// AuthFailLimit demotes an inbound link after this many consecutive
	// records failed authentication (default 16): the connection is closed
	// and the counting peer re-establishes through its reconnect backoff.
	// Negative disables demotion.
	AuthFailLimit int
	// DigestCache, when set, memoizes verified client-request digests so
	// retransmitted and cross-delivered requests skip re-verification.
	// Worth wiring for digital signatures; a MAC re-check costs about as
	// much as the cache's own hash.
	DigestCache *digestcache.Cache
	// VerifyObserve, when set, receives the queue+verify latency of every
	// frame the verify pool completes (feeds the "verify" stage histogram).
	VerifyObserve func(time.Duration)
	// Flight, when set, receives link lifecycle events (connect, reconnect,
	// demotion, auth failure, overflow drop) attributed to Self. Nil
	// disables flight recording.
	Flight *flight.Recorder
	// Faults, when set, injects link faults (partition drops, per-link
	// delays) at the send and delivery boundaries — see faults.go. The
	// chaos harness shares one matrix across an in-process cluster; nil
	// (production) injects nothing and costs one nil check per message.
	Faults *Faults
}

func (c *TCPConfig) defaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.ClientQueueDepth <= 0 {
		c.ClientQueueDepth = 1024
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 128 << 10
	}
	if c.MaxBatchMsgs <= 0 {
		c.MaxBatchMsgs = 256
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 64 << 20
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 50 * time.Millisecond
	}
	if c.ReconnectBackoffMax <= 0 {
		c.ReconnectBackoffMax = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = time.Second
	}
	if c.VerifyQueueDepth <= 0 {
		c.VerifyQueueDepth = 32
	}
	if c.AuthFailLimit == 0 {
		c.AuthFailLimit = 16
	}
}

// verifyWorkers resolves the VerifyWorkers policy against the configured
// scheme: how many pool workers to start, or 0 for inline verification.
func (c *TCPConfig) verifyWorkers() int {
	if c.Auth == nil || c.Auth.Scheme() == crypto.SchemeNone {
		return 0
	}
	switch {
	case c.VerifyWorkers > 0:
		return c.VerifyWorkers
	case c.VerifyWorkers < 0:
		return 0
	case c.Auth.Scheme() == crypto.SchemeDS:
		return runtime.GOMAXPROCS(0)
	default:
		return 0
	}
}

// TCPStats are the transport's observable counters. All values are
// cumulative since NewTCP.
type TCPStats struct {
	// MsgsSent / BatchesSent count messages written and the frames they
	// were coalesced into; their ratio is the realized batching factor.
	MsgsSent    uint64
	BatchesSent uint64
	// PeerDropped counts replica-link messages discarded while the peer
	// was unreachable (down or in dial backoff).
	PeerDropped uint64
	// ClientDropped counts client replies discarded on queue overflow or
	// after the client's connection died.
	ClientDropped uint64
	// Reconnects counts successful re-dials after a link failure.
	Reconnects uint64
	// BadHeader counts connections refused at the handshake (wrong magic,
	// wire version, or sender kind).
	BadHeader uint64
	// DecodeErrs counts inbound records that failed to decode and were
	// skipped.
	DecodeErrs uint64
	// EncodeErrs counts outbound messages discarded because they could
	// not be encoded (a message type missing from the codec registry —
	// a local bug, not a peer problem).
	EncodeErrs uint64
	// AuthRejects counts records dropped for a bad authenticator tag.
	AuthRejects uint64
	// AuthDemotions counts inbound links closed after AuthFailLimit
	// consecutive authentication failures.
	AuthDemotions uint64
	// VerifiedFrames counts frames verified off the reader thread by the
	// verify worker pool (0 on the inline path).
	VerifiedFrames uint64
	// DigestHits / DigestMisses mirror the configured digest cache's
	// counters (0 when no cache is wired).
	DigestHits   uint64
	DigestMisses uint64
	// FaultDropped counts messages discarded by injected link faults
	// (faults.go); always 0 without a Faults matrix.
	FaultDropped uint64
}

// TCP is a TCP transport node. Send/SendClient enqueue onto bounded
// per-destination queues; writer goroutines encode, batch, write, and
// reconnect. Inbound frames are verified and handed to the endpoint.
type TCP struct {
	cfg      TCPConfig
	ep       Endpoint
	listener net.Listener
	pool     *verifyPool // nil = inline verification

	mu          sync.Mutex
	closing     bool
	queues      map[types.ReplicaID]*peerQueue
	clientsByID map[types.ClientID]*connQueue
	conns       map[net.Conn]struct{}

	done chan struct{}
	// closeDeadline (unix nanos, 0 until Close) caps every write deadline
	// once shutdown starts, so no in-flight or drain write can stretch
	// Close past its DrainTimeout bound.
	closeDeadline atomic.Int64
	wgReaders     sync.WaitGroup
	wgWriters     sync.WaitGroup

	msgsSent       atomic.Uint64
	batchesSent    atomic.Uint64
	peerDropped    atomic.Uint64
	clientDropped  atomic.Uint64
	reconnects     atomic.Uint64
	badHeader      atomic.Uint64
	decodeErrs     atomic.Uint64
	encodeErrs     atomic.Uint64
	authRejects    atomic.Uint64
	authDemotions  atomic.Uint64
	verifiedFrames atomic.Uint64
	faultDropped   atomic.Uint64

	// delayCh feeds the delay heap goroutine (faults.go); nil unless a
	// Faults matrix is configured.
	delayCh chan delayedMsg
}

// NewTCP creates a TCP node delivering inbound messages to ep. Replicas
// start listening immediately.
func NewTCP(cfg TCPConfig, ep Endpoint) (*TCP, error) {
	cfg.defaults()
	t := &TCP{
		cfg: cfg, ep: ep,
		queues:      make(map[types.ReplicaID]*peerQueue),
		clientsByID: make(map[types.ClientID]*connQueue),
		conns:       make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
	}
	cp := make(map[types.ReplicaID]string, len(cfg.Peers))
	for k, v := range cfg.Peers {
		cp[k] = v
	}
	t.cfg.Peers = cp
	if w := t.cfg.verifyWorkers(); w > 0 {
		t.pool = newVerifyPool(t, w)
	}
	if cfg.Faults != nil {
		t.delayCh = make(chan delayedMsg, 1024)
		t.wgReaders.Add(1)
		go t.delayLoop()
	}
	if !cfg.IsClient {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		t.listener = ln
		t.wgReaders.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// SetPeers installs (or replaces) the replica address map. Call before any
// Send — typically after all listeners have bound, when ephemeral ports
// become known. Links already established keep their connection; the new
// address applies from the next (re)dial.
func (t *TCP) SetPeers(peers map[types.ReplicaID]string) {
	cp := make(map[types.ReplicaID]string, len(peers))
	for k, v := range peers {
		cp[k] = v
	}
	t.mu.Lock()
	t.cfg.Peers = cp
	t.mu.Unlock()
}

// Addr returns the bound listen address (replicas only).
func (t *TCP) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}

// Stats returns a snapshot of the transport's counters.
func (t *TCP) Stats() TCPStats {
	st := TCPStats{
		MsgsSent:       t.msgsSent.Load(),
		BatchesSent:    t.batchesSent.Load(),
		PeerDropped:    t.peerDropped.Load(),
		ClientDropped:  t.clientDropped.Load(),
		Reconnects:     t.reconnects.Load(),
		BadHeader:      t.badHeader.Load(),
		DecodeErrs:     t.decodeErrs.Load(),
		EncodeErrs:     t.encodeErrs.Load(),
		AuthRejects:    t.authRejects.Load(),
		AuthDemotions:  t.authDemotions.Load(),
		VerifiedFrames: t.verifiedFrames.Load(),
		FaultDropped:   t.faultDropped.Load(),
	}
	if c := t.cfg.DigestCache; c != nil {
		cs := c.Stats()
		st.DigestHits, st.DigestMisses = cs.Hits, cs.Misses
	}
	return st
}

// LinkStat is a point-in-time view of one outbound replica link.
type LinkStat struct {
	Peer      types.ReplicaID
	Queued    int  // messages waiting in the link's outbound queue
	Connected bool // writer currently holds a live connection
}

// LinkStats snapshots every outbound replica link, sorted by peer ID —
// queue depths expose where backpressure is building, connected flags
// expose partitions.
func (t *TCP) LinkStats() []LinkStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]LinkStat, 0, len(t.queues))
	for id, q := range t.queues {
		out = append(out, LinkStat{Peer: id, Queued: len(q.ch), Connected: q.connected.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// ClientLinks reports the number of connected client links and the total
// messages queued toward clients.
func (t *TCP) ClientLinks() (links, queued int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, q := range t.clientsByID {
		links++
		queued += len(q.ch)
	}
	return links, queued
}

// addConn registers a live connection; during shutdown it refuses so no new
// connection outlives Close.
func (t *TCP) addConn(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closing {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *TCP) dropConn(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

func (t *TCP) acceptLoop() {
	defer t.wgReaders.Done()
	for {
		c, err := t.listener.Accept()
		if err != nil {
			return
		}
		if !t.addConn(c) {
			c.Close()
			return
		}
		t.wgReaders.Add(1)
		go t.readLoop(c, false)
	}
}

// readLoop reads one connection: stream header first (refusing version
// mismatches), then batched frames. dialed marks connections this node
// dialed (a client reading replies from a replica).
func (t *TCP) readLoop(c net.Conn, dialed bool) {
	var cq *connQueue
	defer t.wgReaders.Done()
	defer func() {
		// The connection is gone in both directions: stop routing replies
		// to its queue (the writer's own teardown also does this — the
		// read side usually notices death first).
		if cq != nil {
			cq.dead.Store(true)
			t.unregisterClient(cq.client, cq)
			close(cq.quit)
		}
		t.dropConn(c)
		c.Close()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	hdr, err := readHeader(br)
	if err != nil {
		t.badHeader.Add(1)
		return
	}
	party := hdr.party()
	if hdr.isClient && !dialed {
		// A client link: replies to this client ride a dedicated bounded
		// queue on the connection's write half.
		cq = newConnQueue(t, c, hdr.client)
		t.mu.Lock()
		if t.closing {
			t.mu.Unlock()
			return
		}
		t.clientsByID[hdr.client] = cq
		t.wgWriters.Add(1)
		t.mu.Unlock()
		go cq.run()
	}
	var link *inLink
	if t.pool != nil {
		// Pooled verification: this loop only decodes and stages; the
		// link's releaser delivers in order once workers have verified.
		link = t.newInLink(c, hdr)
		defer close(link.pending)
	}
	consecFails := 0
	var lenb [4]byte
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(lenb[:]))
		if n <= 0 || n > t.cfg.MaxFrameBytes {
			return
		}
		bp := getBuf()
		if cap(*bp) < n {
			*bp = make([]byte, n)
		}
		frame := (*bp)[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			putBuf(bp)
			return
		}
		if link != nil {
			task, err := link.buildTask(frame)
			putBuf(bp)
			if err != nil {
				return // framing desync: drop the connection
			}
			if task != nil && !t.pool.submit(link, task) {
				return // shutting down
			}
			continue
		}
		err := forEachRecord(frame, func(tag, msg []byte) {
			m, err := types.DecodeMessage(msg)
			if err != nil {
				t.decodeErrs.Add(1)
				return
			}
			if !t.verify(party, m, tag) {
				t.authRejects.Add(1)
				t.emit(flight.KAuthFail, 0, sourceID(hdr))
				consecFails++
				return
			}
			consecFails = 0
			if hdr.isClient {
				t.ep.DeliverClient(hdr.client, m)
			} else {
				t.deliverReplica(hdr.replica, m)
			}
		})
		putBuf(bp)
		if err != nil {
			// A framing error desyncs the stream: drop the connection and
			// let the peer re-establish.
			return
		}
		if t.cfg.AuthFailLimit > 0 && consecFails >= t.cfg.AuthFailLimit {
			// Demote: a stream of forged records stops costing verify
			// cycles here; an honest-but-misconfigured dialer returns
			// through its reconnect backoff.
			t.authDemotions.Add(1)
			t.emit(flight.KDemote, 0, sourceID(hdr))
			return
		}
	}
}

// sourceID is the numeric identity of a connection's remote end for flight
// event details: the replica id, or the client id for client links.
func sourceID(hdr wireHeader) uint64 {
	if hdr.isClient {
		return uint64(hdr.client)
	}
	return uint64(hdr.replica)
}

func (t *TCP) verify(party uint32, m types.Message, tag []byte) bool {
	if t.cfg.Auth == nil || t.cfg.Auth.Scheme() == crypto.SchemeNone {
		return true
	}
	bp := getBuf()
	payload := m.AuthPayload((*bp)[:0])
	ok := t.cfg.Auth.Verify(party, payload, tag)
	*bp = payload[:0]
	putBuf(bp)
	return ok
}

// emit records a transport flight event attributed to this node.
func (t *TCP) emit(kind flight.Kind, seq, detail uint64) {
	t.cfg.Flight.Record(uint16(t.cfg.Self), flight.SubTransport, kind, 0, 0, seq, detail)
}

// Send implements Transport: enqueue-only, per-peer queue, backpressure on
// a connected-but-slow peer, drop-with-counter on an unreachable one. A
// fault-cut link drops here, before the queue — a partitioned peer's queue
// must not fill with messages that would all burst out at heal time.
func (t *TCP) Send(to types.ReplicaID, m types.Message) error {
	if !t.cfg.IsClient && t.cfg.Faults.dropped(t.cfg.Self, to) {
		t.faultDropped.Add(1)
		return nil
	}
	q, err := t.peerQueueFor(to)
	if err != nil {
		return err
	}
	return q.enqueue(m)
}

// SendClient implements Transport. Replica-to-client messages ride the
// bounded queue of the connection the client dialed; overflow or a dead
// connection drops the reply (counted) — never blocks, never cascades.
func (t *TCP) SendClient(c types.ClientID, m types.Message) error {
	t.mu.Lock()
	q := t.clientsByID[c]
	t.mu.Unlock()
	if q == nil {
		return fmt.Errorf("transport: client %d not connected", c)
	}
	q.enqueue(m)
	return nil
}

func (t *TCP) peerQueueFor(to types.ReplicaID) (*peerQueue, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closing {
		return nil, fmt.Errorf("transport: closed")
	}
	if q, ok := t.queues[to]; ok {
		return q, nil
	}
	if _, ok := t.cfg.Peers[to]; !ok {
		return nil, fmt.Errorf("transport: unknown replica %d", to)
	}
	q := &peerQueue{
		t:     t,
		id:    to,
		party: crypto.PartyID(to),
		ch:    make(chan types.Message, t.cfg.QueueDepth),
	}
	t.queues[to] = q
	t.wgWriters.Add(1)
	go q.run()
	return q, nil
}

// Close implements Transport: stop accepting work, give every writer up to
// DrainTimeout to flush what is queued, then tear the connections down.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		return nil
	}
	t.closing = true
	// Bound the drain: a writer blocked on a stalled destination unblocks
	// at this deadline instead of holding Close hostage, and writeFrame
	// caps later deadlines at it. Stored before done closes so no drain
	// can observe a zero deadline.
	deadline := time.Now().Add(t.cfg.DrainTimeout)
	t.closeDeadline.Store(deadline.UnixNano())
	close(t.done)
	if t.listener != nil {
		t.listener.Close()
	}
	for c := range t.conns {
		c.SetWriteDeadline(deadline)
	}
	t.mu.Unlock()

	t.wgWriters.Wait()
	// Writers closed their own connections; sweep the rest (inbound
	// replica links have no writer) so the read loops unblock.
	t.mu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wgReaders.Wait()
	if t.pool != nil {
		t.pool.wg.Wait()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Outbound queues
// ---------------------------------------------------------------------------

// peerQueue is the outbound queue and writer goroutine of one dialed link
// (replica→replica, or client→replica). The writer owns the connection:
// it dials lazily, redials with exponential backoff after failures, encodes
// and tags messages, and coalesces bursts into multi-message frames.
type peerQueue struct {
	t         *TCP
	id        types.ReplicaID
	party     uint32
	ch        chan types.Message
	connected atomic.Bool
}

// enqueue applies the replica-link overflow policy: backpressure while the
// link is up, drop-with-counter while it is down (the writer is then in
// dial backoff and consensus retransmission owns recovery — blocking the
// event loop on a dead peer would trade liveness for nothing).
func (q *peerQueue) enqueue(m types.Message) error {
	select {
	case q.ch <- m:
		return nil
	default:
	}
	if !q.connected.Load() {
		q.t.peerDropped.Add(1)
		q.t.emit(flight.KOverflowDrop, 1, uint64(q.id))
		return nil
	}
	select {
	case q.ch <- m:
		return nil
	case <-q.t.done:
		return fmt.Errorf("transport: closed")
	}
}

func (q *peerQueue) addr() string {
	q.t.mu.Lock()
	defer q.t.mu.Unlock()
	return q.t.cfg.Peers[q.id]
}

func (q *peerQueue) run() {
	t := q.t
	defer t.wgWriters.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			t.dropConn(conn)
			conn.Close()
		}
	}()
	backoff := t.cfg.ReconnectBackoff
	var nextDial time.Time
	everConnected := false
	scratch := make([]byte, 0, 512)
	frame := make([]byte, 0, 4096)

	for {
		var first types.Message
		select {
		case first = <-q.ch:
		case <-t.done:
			if conn != nil {
				t.drainOnClose(conn, q.ch, q.party, &frame, &scratch)
			}
			return
		}

		frame = frame[:0]
		count := 0
		frame, count = q.batch(frame, first, &scratch)
		if count == 0 {
			continue
		}

		if conn == nil {
			now := time.Now()
			if now.Before(nextDial) {
				t.peerDropped.Add(uint64(count))
				t.emit(flight.KOverflowDrop, uint64(count), uint64(q.id))
				continue
			}
			c, err := net.DialTimeout("tcp", q.addr(), t.cfg.DialTimeout)
			if err != nil {
				nextDial = time.Now().Add(backoff)
				backoff = min(2*backoff, t.cfg.ReconnectBackoffMax)
				t.peerDropped.Add(uint64(count))
				continue
			}
			if !t.addConn(c) {
				c.Close()
				return
			}
			hdr := appendHeader(nil, t.cfg.IsClient, t.cfg.Self, t.cfg.SelfClient)
			if _, err := c.Write(hdr); err != nil {
				t.dropConn(c)
				c.Close()
				nextDial = time.Now().Add(backoff)
				backoff = min(2*backoff, t.cfg.ReconnectBackoffMax)
				t.peerDropped.Add(uint64(count))
				continue
			}
			conn = c
			q.connected.Store(true)
			backoff = t.cfg.ReconnectBackoff
			if everConnected {
				t.reconnects.Add(1)
				t.emit(flight.KReconnect, 0, uint64(q.id))
			} else {
				t.emit(flight.KConnect, 0, uint64(q.id))
			}
			everConnected = true
			if t.cfg.IsClient {
				// Clients read their replies off the dialed connection.
				t.wgReaders.Add(1)
				go t.readLoop(c, true)
			}
		}

		if err := t.writeFrame(conn, frame, count); err != nil {
			// Write failure OR timeout: the peer is not draining. Demote
			// the link — close, count, redial with backoff — so a peer
			// that wedges mid-connection is handled exactly like a dead
			// one and can only ever stall senders for one WriteTimeout.
			t.dropConn(conn)
			conn.Close()
			conn = nil
			q.connected.Store(false)
			nextDial = time.Now().Add(backoff)
			backoff = min(2*backoff, t.cfg.ReconnectBackoffMax)
			t.peerDropped.Add(uint64(count))
			t.emit(flight.KDemote, uint64(count), uint64(q.id))
			continue
		}
	}
}

// batch encodes first plus everything else queued right now (up to the
// batch caps) into one frame, returning the frame and the message count.
func (q *peerQueue) batch(frame []byte, first types.Message, scratch *[]byte) ([]byte, int) {
	return batchInto(q.t, frame, q.ch, first, q.party, scratch)
}

// writeDeadline is the deadline for a write starting now: WriteTimeout
// ahead, capped at the Close drain deadline once shutdown has started.
func (t *TCP) writeDeadline() time.Time {
	dl := time.Now().Add(t.cfg.WriteTimeout)
	if cd := t.closeDeadline.Load(); cd != 0 {
		if c := time.Unix(0, cd); c.Before(dl) {
			dl = c
		}
	}
	return dl
}

// writeFrame writes one batched frame under the steady-state write timeout
// and bumps the counters. An error (including a timeout: the destination
// did not drain) means the connection must be considered failed.
func (t *TCP) writeFrame(conn net.Conn, frame []byte, count int) error {
	conn.SetWriteDeadline(t.writeDeadline())
	if _, err := conn.Write(frame); err != nil {
		return err
	}
	t.batchesSent.Add(1)
	t.msgsSent.Add(uint64(count))
	return nil
}

// drainOnClose flushes whatever a queue still holds when the transport
// closes, all of it under the one Close-wide drain deadline (per-write
// timeouts would let a stalled destination stretch Close far past its
// bound).
func (t *TCP) drainOnClose(conn net.Conn, ch chan types.Message, party uint32, frame, scratch *[]byte) {
	conn.SetWriteDeadline(time.Unix(0, t.closeDeadline.Load()))
	for {
		select {
		case m := <-ch:
			f, n := batchInto(t, (*frame)[:0], ch, m, party, scratch)
			*frame = f
			if n == 0 {
				continue
			}
			if _, err := conn.Write(f); err != nil {
				return
			}
			t.batchesSent.Add(1)
			t.msgsSent.Add(uint64(n))
		default:
			return
		}
	}
}

// batchInto is the shared frame assembly of both queue kinds.
func batchInto(t *TCP, frame []byte, ch chan types.Message, first types.Message, party uint32, scratch *[]byte) ([]byte, int) {
	frame = append(frame, 0, 0, 0, 0)
	count := 0
	add := func(m types.Message) {
		out, err := appendRecord(frame, t.cfg.Auth, party, m, scratch)
		if err != nil {
			t.encodeErrs.Add(1) // unregistered type: local bug, message dropped
			return
		}
		frame = out
		count++
	}
	add(first)
collect:
	for count < t.cfg.MaxBatchMsgs && len(frame) < t.cfg.MaxBatchBytes {
		select {
		case m := <-ch:
			add(m)
		default:
			break collect
		}
	}
	if count == 0 {
		return frame[:0], 0
	}
	binary.BigEndian.PutUint32(frame, uint32(len(frame)-4))
	return frame, count
}

// connQueue is the write half of an inbound client connection: the bounded
// reply queue of exactly one client, drained by a dedicated writer.
type connQueue struct {
	t      *TCP
	conn   net.Conn
	client types.ClientID
	party  uint32
	ch     chan types.Message
	// quit wakes an idle writer when the read loop sees the connection
	// die, so disconnected clients do not accumulate sleeping writers.
	quit chan struct{}
	dead atomic.Bool
}

func newConnQueue(t *TCP, c net.Conn, client types.ClientID) *connQueue {
	return &connQueue{
		t: t, conn: c, client: client,
		party: crypto.ClientPartyID(client),
		ch:    make(chan types.Message, t.cfg.ClientQueueDepth),
		quit:  make(chan struct{}),
	}
}

// unregisterClient removes a dead client link from the routing map (only
// if it still points at q — a reconnected client's fresh queue must not be
// evicted by its predecessor's teardown), so churning client populations
// do not grow the map and the queues without bound.
func (t *TCP) unregisterClient(c types.ClientID, q *connQueue) {
	t.mu.Lock()
	if t.clientsByID[c] == q {
		delete(t.clientsByID, c)
	}
	t.mu.Unlock()
}

// enqueue applies the client-link overflow policy: never block, drop and
// count when the queue is full or the connection already died.
func (q *connQueue) enqueue(m types.Message) {
	if q.dead.Load() {
		q.t.clientDropped.Add(1)
		return
	}
	select {
	case q.ch <- m:
	default:
		q.t.clientDropped.Add(1)
		q.t.emit(flight.KOverflowDrop, 1, uint64(q.client))
	}
}

func (q *connQueue) run() {
	t := q.t
	defer t.wgWriters.Done()
	defer func() {
		q.dead.Store(true)
		t.unregisterClient(q.client, q)
		t.dropConn(q.conn)
		q.conn.Close()
	}()
	// Announce ourselves first: the client's read loop verifies our wire
	// version before interpreting any frame.
	hdr := appendHeader(nil, false, t.cfg.Self, 0)
	if _, err := q.conn.Write(hdr); err != nil {
		return
	}
	scratch := make([]byte, 0, 512)
	frame := make([]byte, 0, 4096)
	for {
		var first types.Message
		select {
		case first = <-q.ch:
		case <-q.quit:
			return
		case <-t.done:
			t.drainOnClose(q.conn, q.ch, q.party, &frame, &scratch)
			return
		}
		count := 0
		frame, count = batchInto(t, frame[:0], q.ch, first, q.party, &scratch)
		if count == 0 {
			continue
		}
		if err := t.writeFrame(q.conn, frame, count); err != nil {
			t.clientDropped.Add(uint64(count))
			return
		}
	}
}
