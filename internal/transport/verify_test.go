package transport

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/crypto/digestcache"
	"repro/internal/types"
)

// TestTCPDSRejectsWrongSigner: a sender holding a different dev keyring (so
// its ED25519 keys derive from another secret) claims replica 0's identity;
// every record must be rejected while a properly keyed sender is delivered.
// This exercises the verify worker pool — DS defaults to pooled
// verification.
func TestTCPDSRejectsWrongSigner(t *testing.T) {
	good := []byte("ds-secret")
	s1 := newSink()
	t1, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0", Auth: crypto.NewDSDev(crypto.PartyID(1), good)}, s1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	peers := map[types.ReplicaID]string{1: t1.Addr()}

	evil, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0", Peers: peers,
		Auth: crypto.NewDSDev(crypto.PartyID(0), []byte("other-secret")),
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	if err := evil.Send(1, types.NewCommit(0, 0, 0, 2, types.Hash([]byte("forged")))); err != nil {
		t.Fatal(err)
	}

	honest, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0", Peers: peers,
		Auth: crypto.NewDSDev(crypto.PartyID(0), good),
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	defer honest.Close()
	if err := honest.Send(1, types.NewCommit(0, 0, 0, 3, types.Hash([]byte("ok")))); err != nil {
		t.Fatal(err)
	}

	s1.wait(t, 1)
	if got := s1.first(t).(*types.Commit); got.Round != 3 {
		t.Fatalf("forged commit delivered: %+v", got)
	}
	waitCond(t, 5*time.Second, func() bool { return t1.Stats().AuthRejects >= 1 })
	if n := s1.count(); n != 1 {
		t.Fatalf("delivered %d messages, want 1 (forgery dropped)", n)
	}
	if st := t1.Stats(); st.VerifiedFrames == 0 {
		t.Fatal("DS transport did not route frames through the verify pool")
	}
}

// TestTCPRejectsTruncatedTag injects a raw wire stream whose record carries
// only a prefix of the correct MAC: a tag that authenticates nothing must be
// rejected even though its bytes match the genuine tag's prefix.
func TestTCPRejectsTruncatedTag(t *testing.T) {
	secret := []byte("trunc-secret")
	s1 := newSink()
	t1, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0", Auth: crypto.NewMAC(crypto.PartyID(1), secret)}, s1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()

	conn, err := net.Dial("tcp", t1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	m := types.NewCommit(0, 0, 0, 7, types.Hash([]byte("trunc")))
	auth := crypto.NewMAC(crypto.PartyID(0), secret)
	payload := m.AuthPayload(nil)
	tag := auth.Tag(crypto.PartyID(1), payload)[:16] // genuine prefix, truncated

	msgBytes, err := types.AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	stream := appendHeader(nil, false, 0, 0) // claims replica 0
	frameStart := len(stream)
	stream = append(stream, 0, 0, 0, 0) // frameLen, patched below
	recStart := len(stream)
	stream = append(stream, 0, 0, 0, 0) // recLen, patched below
	stream = append(stream, byte(len(tag)))
	stream = append(stream, tag...)
	stream = append(stream, msgBytes...)
	binary.BigEndian.PutUint32(stream[recStart:], uint32(len(stream)-recStart-4))
	binary.BigEndian.PutUint32(stream[frameStart:], uint32(len(stream)-frameStart-4))
	if _, err := conn.Write(stream); err != nil {
		t.Fatal(err)
	}

	waitCond(t, 5*time.Second, func() bool { return t1.Stats().AuthRejects >= 1 })
	if n := s1.count(); n != 0 {
		t.Fatalf("delivered %d messages, want 0 (truncated tag accepted)", n)
	}
}

// TestTCPVerifyPoolPreservesOrder floods one link through an 8-worker verify
// pool and asserts messages reach the endpoint exactly in send order:
// workers may finish out of order, the releaser may not.
func TestTCPVerifyPoolPreservesOrder(t *testing.T) {
	secret := []byte("order-secret")
	s1 := newSink()
	t1, err := NewTCP(TCPConfig{
		Self: 1, Listen: "127.0.0.1:0",
		Auth: crypto.NewDSDev(crypto.PartyID(1), secret), VerifyWorkers: 8,
	}, s1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t0, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0",
		Peers: map[types.ReplicaID]string{1: t1.Addr()},
		Auth:  crypto.NewDSDev(crypto.PartyID(0), secret),
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	const total = 300
	for i := 0; i < total; i++ {
		if err := t0.Send(1, types.NewPrepare(0, 0, 0, types.Round(i), types.ZeroDigest)); err != nil {
			t.Fatal(err)
		}
	}
	s1.wait(t, total)
	s1.mu.Lock()
	defer s1.mu.Unlock()
	for i, m := range s1.msgs {
		if got := m.(*types.Prepare).Round; got != types.Round(i) {
			t.Fatalf("message %d has round %d: pool reordered the link", i, got)
		}
	}
}

// TestTCPAuthDemotion: after AuthFailLimit consecutive forged records the
// inbound link must be demoted (closed), observable via Stats. Runs on both
// the pooled (DS) and inline (MAC) verification paths.
func TestTCPAuthDemotion(t *testing.T) {
	for _, tc := range []struct {
		name string
		auth func(party uint32, secret []byte) crypto.Authenticator
	}{
		{"pooled_ds", func(p uint32, s []byte) crypto.Authenticator { return crypto.NewDSDev(p, s) }},
		{"inline_mac", func(p uint32, s []byte) crypto.Authenticator { return crypto.NewMAC(p, s) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s1 := newSink()
			t1, err := NewTCP(TCPConfig{
				Self: 1, Listen: "127.0.0.1:0",
				Auth: tc.auth(crypto.PartyID(1), []byte("good")), AuthFailLimit: 4,
			}, s1)
			if err != nil {
				t.Fatal(err)
			}
			defer t1.Close()
			evil, err := NewTCP(TCPConfig{
				Self: 0, Listen: "127.0.0.1:0",
				Peers: map[types.ReplicaID]string{1: t1.Addr()},
				Auth:  tc.auth(crypto.PartyID(0), []byte("bad")),
			}, newSink())
			if err != nil {
				t.Fatal(err)
			}
			defer evil.Close()

			// Keep sending until the receiver demotes; the evil side's
			// writer survives the close via its reconnect path.
			deadline := time.Now().Add(5 * time.Second)
			m := types.NewCommit(0, 0, 0, 1, types.ZeroDigest)
			for t1.Stats().AuthDemotions == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("no demotion after %d rejects", t1.Stats().AuthRejects)
				}
				if err := evil.Send(1, m); err != nil {
					t.Fatal(err)
				}
				time.Sleep(time.Millisecond)
			}
			if st := t1.Stats(); st.AuthRejects < 4 {
				t.Fatalf("demoted after only %d rejects, limit 4", st.AuthRejects)
			}
			if n := s1.count(); n != 0 {
				t.Fatalf("delivered %d forged messages", n)
			}
		})
	}
}

// TestTCPDigestCacheHitsOnRetransmit: the same client request delivered
// twice (a retransmission) must verify once and hit the digest cache the
// second time — and still be delivered both times (the cache dedupes crypto
// work, not messages).
func TestTCPDigestCacheHitsOnRetransmit(t *testing.T) {
	secret := []byte("cache-secret")
	cache := digestcache.New(1024)
	srvSink := newSink()
	srv, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0",
		Auth: crypto.NewDSDev(crypto.PartyID(0), secret), DigestCache: cache,
	}, srvSink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := NewTCP(TCPConfig{
		IsClient: true, SelfClient: 42,
		Peers: map[types.ReplicaID]string{0: srv.Addr()},
		Auth:  crypto.NewDSDev(crypto.ClientPartyID(42), secret),
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	req := types.NewClientRequest(0, types.Transaction{Client: 42, Seq: 1, Op: []byte("put")})
	if err := cli.Send(0, req); err != nil {
		t.Fatal(err)
	}
	srvSink.wait(t, 1)
	if err := cli.Send(0, req); err != nil { // retransmission
		t.Fatal(err)
	}
	srvSink.wait(t, 1)

	st := srv.Stats()
	if st.DigestMisses == 0 {
		t.Fatal("first delivery did not consult the digest cache")
	}
	waitCond(t, 5*time.Second, func() bool { return srv.Stats().DigestHits >= 1 })
	if n := srvSink.count(); n != 2 {
		t.Fatalf("delivered %d messages, want 2", n)
	}
}
