package transport

// Asynchronous frame verification.
//
// With authentication enabled, every inbound record costs a MAC or signature
// check. Running those checks on the connection's read goroutine serializes
// crypto behind the socket: one link's verification stalls its own reads, and
// a digital-signature scheme (~2 orders of magnitude more expensive than a
// MAC) caps throughput at one core per link. The verify pool moves the
// checks onto a bounded set of workers shared by all links while keeping the
// guarantee the consensus layer depends on: per-link delivery order.
//
// The pipeline per connection:
//
//	read loop ──task──▶ link.pending (FIFO)──▶ releaser ──▶ Deliver*
//	     │                                        ▲
//	     └────task────▶ pool queue ──▶ worker ────┘ (task.done)
//
// The read loop decodes a frame's messages and copies their tags (the frame
// buffer is pooled; record slices alias it), then enqueues the task on the
// link's pending FIFO *before* the shared pool queue. Workers verify tasks
// in whatever order the pool schedules; the link's releaser goroutine waits
// on each pending task's done channel in FIFO order, so messages reach the
// endpoint exactly in arrival order no matter how verification interleaves.
// Both queues are bounded, so a link that floods faster than the pool
// verifies backpressures its own reader — the kernel's receive window does
// the rest.
//
// Batching falls out of the wire format: a sender under vote load coalesces
// everything queued into one frame, so one task carries up to MaxBatchMsgs
// records and the worker hands them to the authenticator's VerifyBatch in a
// single call — the queue drains in frame-sized batches exactly when load is
// highest.
//
// Unauthenticated transports (nil or SchemeNone auth) never build a pool and
// keep the zero-copy inline path in readLoop.

import (
	"crypto/sha256"
	"encoding/binary"
	"net"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/crypto/digestcache"
	"repro/internal/obs/flight"
	"repro/internal/types"
)

// verifyTask is one inbound frame staged for verification: the decoded
// messages, their copied tags, and the verdicts. Payload bytes are built by
// the worker into a single arena to keep per-record allocations off the
// steady state.
type verifyTask struct {
	link *inLink
	// msgs are the frame's decoded messages, in wire order.
	msgs []types.Message
	// tags/tagOffs are the records' authenticator tags, concatenated;
	// tag i is tags[tagOffs[i]:tagOffs[i+1]].
	tags    []byte
	tagOffs []int
	// payloads/payloadOffs are the AuthPayload arena, built by the worker.
	payloads    []byte
	payloadOffs []int
	// ok[i] is the verdict for msgs[i].
	ok []bool
	// scratch slices reused by the worker for VerifyBatch calls.
	batchPayloads [][]byte
	batchTags     [][]byte
	batchIdx      []int

	start time.Time
	done  chan struct{}
}

var taskPool = sync.Pool{New: func() any { return new(verifyTask) }}

func newVerifyTask(l *inLink) *verifyTask {
	task := taskPool.Get().(*verifyTask)
	task.link = l
	return task
}

func releaseTask(task *verifyTask) {
	task.link = nil
	task.msgs = task.msgs[:0]
	task.tags = task.tags[:0]
	task.tagOffs = task.tagOffs[:0]
	task.payloads = task.payloads[:0]
	task.payloadOffs = task.payloadOffs[:0]
	task.ok = task.ok[:0]
	task.batchPayloads = task.batchPayloads[:0]
	task.batchTags = task.batchTags[:0]
	task.batchIdx = task.batchIdx[:0]
	task.done = nil
	taskPool.Put(task)
}

// verifyPool is the shared bounded worker pool of one TCP node.
type verifyPool struct {
	t  *TCP
	ch chan *verifyTask
	wg sync.WaitGroup
}

// newVerifyPool starts workers verify workers. Callers gate on the scheme:
// no pool is built for unauthenticated transports.
func newVerifyPool(t *TCP, workers int) *verifyPool {
	p := &verifyPool{t: t, ch: make(chan *verifyTask, t.cfg.VerifyQueueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *verifyPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case task := <-p.ch:
			p.run(task)
		case <-p.t.done:
			return
		}
	}
}

// submit stages task for the link's releaser (FIFO first, so order is fixed
// before any worker can finish it), then hands it to the pool. Returns false
// when the transport is shutting down.
func (p *verifyPool) submit(l *inLink, task *verifyTask) bool {
	select {
	case l.pending <- task:
	case <-p.t.done:
		return false
	}
	select {
	case p.ch <- task:
		return true
	case <-p.t.done:
		return false
	}
}

// run verifies every record of one task and signals the link's releaser.
func (p *verifyPool) run(task *verifyTask) {
	t := p.t
	auth := t.cfg.Auth
	party := task.link.party

	// Build the payload arena first, slice after: append may reallocate,
	// which would invalidate slices taken earlier.
	for _, m := range task.msgs {
		task.payloadOffs = append(task.payloadOffs, len(task.payloads))
		task.payloads = m.AuthPayload(task.payloads)
	}
	task.payloadOffs = append(task.payloadOffs, len(task.payloads))

	for i, m := range task.msgs {
		payload := task.payloads[task.payloadOffs[i]:task.payloadOffs[i+1]]
		tag := task.tags[task.tagOffs[i]:task.tagOffs[i+1]]
		if cache := t.cfg.DigestCache; cache != nil {
			if req, isReq := m.(*types.ClientRequest); isReq {
				key := requestCacheKey(party, payload, tag, req)
				if cache.Contains(key) {
					task.ok[i] = true // this exact triple verified before
					continue
				}
				if task.ok[i] = auth.Verify(party, payload, tag); task.ok[i] {
					cache.Add(key)
				}
				continue
			}
		}
		task.batchIdx = append(task.batchIdx, i)
	}

	if ba, isBatch := auth.(crypto.BatchAuthenticator); isBatch && len(task.batchIdx) > 1 {
		for _, i := range task.batchIdx {
			task.batchPayloads = append(task.batchPayloads, task.payloads[task.payloadOffs[i]:task.payloadOffs[i+1]])
			task.batchTags = append(task.batchTags, task.tags[task.tagOffs[i]:task.tagOffs[i+1]])
		}
		verdicts := make([]bool, len(task.batchIdx))
		ba.VerifyBatch(party, task.batchPayloads, task.batchTags, verdicts)
		for j, i := range task.batchIdx {
			task.ok[i] = verdicts[j]
		}
	} else {
		for _, i := range task.batchIdx {
			payload := task.payloads[task.payloadOffs[i]:task.payloadOffs[i+1]]
			tag := task.tags[task.tagOffs[i]:task.tagOffs[i+1]]
			task.ok[i] = auth.Verify(party, payload, tag)
		}
	}

	t.verifiedFrames.Add(1)
	if obs := t.cfg.VerifyObserve; obs != nil {
		obs(time.Since(task.start))
	}
	close(task.done)
}

// requestCacheKey derives the digest-cache key for one verified-or-not
// client request record. The digest binds the sender party, the exact
// authenticated payload, and the tag (length-prefixed so boundaries cannot
// shift), so a hit proves this precise triple passed verification before.
func requestCacheKey(party uint32, payload, tag []byte, req *types.ClientRequest) digestcache.Key {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], party)
	binary.BigEndian.PutUint32(b[4:], uint32(len(payload)))
	h.Write(b[:])
	h.Write(payload)
	h.Write(tag)
	k := digestcache.Key{Client: uint64(req.Tx.Client), Seq: req.Tx.Seq}
	h.Sum(k.Digest[:0])
	return k
}

// inLink is the verify-pool state of one inbound connection: the FIFO of
// in-flight tasks and the releaser goroutine that delivers them in order.
type inLink struct {
	t        *TCP
	conn     net.Conn
	party    uint32
	isClient bool
	replica  types.ReplicaID
	client   types.ClientID
	pending  chan *verifyTask
}

// sourceID is the link's remote identity for flight event details.
func (l *inLink) sourceID() uint64 {
	if l.isClient {
		return uint64(l.client)
	}
	return uint64(l.replica)
}

// newInLink registers a link with the pool and starts its releaser.
func (t *TCP) newInLink(c net.Conn, hdr wireHeader) *inLink {
	l := &inLink{
		t:        t,
		conn:     c,
		party:    hdr.party(),
		isClient: hdr.isClient,
		replica:  hdr.replica,
		client:   hdr.client,
		pending:  make(chan *verifyTask, t.cfg.VerifyQueueDepth),
	}
	t.wgReaders.Add(1)
	go l.release()
	return l
}

// buildTask decodes one frame into a task. Returns (nil, nil) when nothing
// decoded (every record skipped), and an error on a framing desync.
func (l *inLink) buildTask(frame []byte) (*verifyTask, error) {
	task := newVerifyTask(l)
	err := forEachRecord(frame, func(tag, msg []byte) {
		m, derr := types.DecodeMessage(msg)
		if derr != nil {
			l.t.decodeErrs.Add(1)
			return
		}
		task.msgs = append(task.msgs, m)
		task.tagOffs = append(task.tagOffs, len(task.tags))
		task.tags = append(task.tags, tag...) // frame buffer is pooled; keep our own copy
		task.ok = append(task.ok, false)
	})
	task.tagOffs = append(task.tagOffs, len(task.tags))
	if err != nil || len(task.msgs) == 0 {
		releaseTask(task)
		return nil, err
	}
	task.start = time.Now()
	task.done = make(chan struct{})
	return task, nil
}

// release is the link's releaser goroutine: it waits on each staged task in
// FIFO order and delivers its verified messages, preserving per-link arrival
// order regardless of how the pool interleaved the verification. It also
// owns the auth-failure demotion policy: after AuthFailLimit consecutive
// rejected records the connection is closed — an inbound garbage stream
// stops costing verify cycles, and a dialing peer re-establishes through its
// normal reconnect backoff.
func (l *inLink) release() {
	t := l.t
	defer t.wgReaders.Done()
	consecFails := 0
	demoted := false
	for {
		var task *verifyTask
		var ok bool
		select {
		case task, ok = <-l.pending:
			if !ok {
				return // reader closed the link; everything staged was drained
			}
		case <-t.done:
			return
		}
		select {
		case <-task.done:
		case <-t.done:
			return // shutdown: workers may never finish this task
		}
		for i, m := range task.msgs {
			if !task.ok[i] {
				t.authRejects.Add(1)
				t.emit(flight.KAuthFail, 0, l.sourceID())
				consecFails++
				if !demoted && t.cfg.AuthFailLimit > 0 && consecFails >= t.cfg.AuthFailLimit {
					demoted = true
					t.authDemotions.Add(1)
					t.emit(flight.KDemote, 0, l.sourceID())
					l.conn.Close() // reader tears the link down; dialer side redials with backoff
				}
				continue
			}
			consecFails = 0
			if demoted {
				continue // past the demotion point nothing more is delivered
			}
			if l.isClient {
				t.ep.DeliverClient(l.client, m)
			} else {
				t.deliverReplica(l.replica, m)
			}
		}
		releaseTask(task)
	}
}
