package transport

// Network fault injection for the chaos harness and tests. One Faults value
// is shared by every node of an in-process cluster: it is a directional
// link-state matrix (cut or delayed), and each TCP node consults it with its
// own identity at the two points a message crosses the boundary — outbound
// at Send-enqueue time and inbound just before endpoint delivery. Checking
// BOTH ends means a partition takes effect immediately even for frames
// already buffered in a socket or a writer queue when the cut lands, and
// the cut holds regardless of which side's rules the harness installed
// first.
//
// Drops are indistinguishable from packet loss to the protocol: connections
// stay up, no errors surface, retransmission and view-change timers own
// recovery — exactly the failure surface a real partition presents. Delays
// model WAN geo-latency: a constant per-link delay holds back inbound
// delivery without reordering (same link, same delay → FIFO preserved).

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/types"
)

type linkKey struct {
	from, to types.ReplicaID
}

// Faults is a dynamic, concurrency-safe link-fault matrix. The zero value
// (and a nil *Faults) injects nothing. All methods may be called while the
// cluster runs; changes take effect on the next message crossing the link.
type Faults struct {
	mu    sync.RWMutex
	cut   map[linkKey]struct{}
	delay map[linkKey]time.Duration
}

// NewFaults returns an empty fault matrix.
func NewFaults() *Faults {
	return &Faults{
		cut:   make(map[linkKey]struct{}),
		delay: make(map[linkKey]time.Duration),
	}
}

// Partition cuts both directions between a and b.
func (f *Faults) Partition(a, b types.ReplicaID) {
	f.mu.Lock()
	f.cut[linkKey{a, b}] = struct{}{}
	f.cut[linkKey{b, a}] = struct{}{}
	f.mu.Unlock()
}

// PartitionSets cuts every link between the two groups, both directions. A
// replica appearing in both groups keeps its intra-group links.
func (f *Faults) PartitionSets(groupA, groupB []types.ReplicaID) {
	f.mu.Lock()
	for _, a := range groupA {
		for _, b := range groupB {
			if a != b {
				f.cut[linkKey{a, b}] = struct{}{}
				f.cut[linkKey{b, a}] = struct{}{}
			}
		}
	}
	f.mu.Unlock()
}

// Isolate cuts every link to and from a.
func (f *Faults) Isolate(a types.ReplicaID, n int) {
	f.mu.Lock()
	for i := 0; i < n; i++ {
		b := types.ReplicaID(i)
		if b != a {
			f.cut[linkKey{a, b}] = struct{}{}
			f.cut[linkKey{b, a}] = struct{}{}
		}
	}
	f.mu.Unlock()
}

// Heal restores both directions between a and b.
func (f *Faults) Heal(a, b types.ReplicaID) {
	f.mu.Lock()
	delete(f.cut, linkKey{a, b})
	delete(f.cut, linkKey{b, a})
	f.mu.Unlock()
}

// HealAll removes every cut (delays stay — they model geography, not
// failure).
func (f *Faults) HealAll() {
	f.mu.Lock()
	f.cut = make(map[linkKey]struct{})
	f.mu.Unlock()
}

// SetLinkDelay imposes a constant one-way delivery delay from a to b (0
// removes it). Symmetric latency needs two calls.
func (f *Faults) SetLinkDelay(a, b types.ReplicaID, d time.Duration) {
	f.mu.Lock()
	if d <= 0 {
		delete(f.delay, linkKey{a, b})
	} else {
		f.delay[linkKey{a, b}] = d
	}
	f.mu.Unlock()
}

// Cuts reports how many directed links are currently cut.
func (f *Faults) Cuts() int {
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.cut)
}

// dropped reports whether the directed link from→to is cut. Nil-safe.
func (f *Faults) dropped(from, to types.ReplicaID) bool {
	if f == nil {
		return false
	}
	f.mu.RLock()
	_, cut := f.cut[linkKey{from, to}]
	f.mu.RUnlock()
	return cut
}

// delayOf returns the directed link's delivery delay (0 = none). Nil-safe.
func (f *Faults) delayOf(from, to types.ReplicaID) time.Duration {
	if f == nil {
		return 0
	}
	f.mu.RLock()
	d := f.delay[linkKey{from, to}]
	f.mu.RUnlock()
	return d
}

// ---------------------------------------------------------------------------
// Delayed inbound delivery
// ---------------------------------------------------------------------------

// delayedMsg is one inbound message held back by a link delay.
type delayedMsg struct {
	at   time.Time
	from types.ReplicaID
	m    types.Message
}

type delayHeap []delayedMsg

func (h delayHeap) Len() int           { return len(h) }
func (h delayHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h delayHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)        { *h = append(*h, x.(delayedMsg)) }
func (h *delayHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// delayLoop delivers delay-held inbound messages when their time comes. One
// goroutine per TCP node, started only when a Faults matrix is configured;
// per-link FIFO holds because a link's delay is constant at enqueue time
// (monotone deadlines) and the heap breaks ties stably enough for distinct
// arrival instants.
func (t *TCP) delayLoop() {
	defer t.wgReaders.Done()
	var h delayHeap
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var timerC <-chan time.Time
		if len(h) > 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(time.Until(h[0].at))
			timerC = timer.C
		}
		select {
		case <-t.done:
			return
		case dm := <-t.delayCh:
			heap.Push(&h, dm)
		case <-timerC:
			now := time.Now()
			for len(h) > 0 && !h[0].at.After(now) {
				dm := heap.Pop(&h).(delayedMsg)
				// Re-check the cut at release: a partition that landed
				// while the message sat in the heap still drops it.
				if t.cfg.Faults.dropped(dm.from, t.cfg.Self) {
					t.faultDropped.Add(1)
					continue
				}
				t.ep.DeliverReplica(dm.from, dm.m)
			}
		}
	}
}

// deliverReplica is the inbound delivery point for replica links, where
// injected faults apply: a cut link drops the message silently (counted), a
// delayed link holds it back via the delay heap.
func (t *TCP) deliverReplica(from types.ReplicaID, m types.Message) {
	if f := t.cfg.Faults; f != nil {
		if f.dropped(from, t.cfg.Self) {
			t.faultDropped.Add(1)
			return
		}
		if d := f.delayOf(from, t.cfg.Self); d > 0 {
			select {
			case t.delayCh <- delayedMsg{at: time.Now().Add(d), from: from, m: m}:
			case <-t.done:
			}
			return
		}
	}
	t.ep.DeliverReplica(from, m)
}
