package transport

// Failure-isolation tests for the non-blocking TCP transport: a stalled
// peer or client must never delay traffic to anyone else, overflow drops
// must be observable, reconnects must resume delivery, and mismatched wire
// versions must be refused at the handshake.

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/types"
)

// stalledListener accepts connections and never reads from them, so the
// peer's kernel buffers fill and its writer goroutine wedges in Write.
type stalledListener struct {
	ln    net.Listener
	conns chan net.Conn
}

func newStalledListener(t *testing.T) *stalledListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stalledListener{ln: ln, conns: make(chan net.Conn, 16)}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.conns <- c // accepted, never read
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		for {
			select {
			case c := <-s.conns:
				c.Close()
			default:
				return
			}
		}
	})
	return s
}

func bigPrePrepare() *types.PrePrepare {
	txns := make([]types.Transaction, 64)
	for i := range txns {
		txns[i] = types.Transaction{Client: 1, Seq: uint64(i + 1), Op: make([]byte, 1024)}
	}
	b := &types.Batch{Txns: txns}
	return &types.PrePrepare{View: 1, Round: 1, Digest: b.Digest(), Batch: b}
}

// TestTCPSlowPeerDoesNotDelayOthers: replica 1 accepts but never reads;
// replica 2 is healthy. Every send to 2 must arrive promptly even while 1's
// link is wedged, and no Send may ever block (the queue absorbs the stall).
func TestTCPSlowPeerDoesNotDelayOthers(t *testing.T) {
	stall := newStalledListener(t)
	s2 := newSink()
	t2, err := NewTCP(TCPConfig{Self: 2, Listen: "127.0.0.1:0"}, s2)
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()

	t0, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0",
		Peers:        map[types.ReplicaID]string{1: stall.ln.Addr().String(), 2: t2.Addr()},
		QueueDepth:   256,
		DrainTimeout: 100 * time.Millisecond,
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	big := bigPrePrepare() // ~64 KiB per message: wedges the stalled link fast
	const sends = 64       // well under QueueDepth: backpressure never triggers
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < sends; i++ {
			if err := t0.Send(1, big); err != nil {
				t.Error(err)
				return
			}
			if err := t0.Send(2, big); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Send blocked behind the stalled peer")
	}
	s2.wait(t, sends) // the healthy link saw all traffic despite the stall
}

// TestTCPStalledClientDropsNotBlocks: a client that stops reading fills its
// bounded reply queue; further replies drop (observable counter) while a
// healthy client's replies keep flowing.
func TestTCPStalledClientDropsNotBlocks(t *testing.T) {
	srvSink := newSink()
	srv, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0",
		ClientQueueDepth: 4,
		DrainTimeout:     100 * time.Millisecond,
	}, srvSink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The stalled client: speaks a valid header, then never reads.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if tc, ok := raw.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10) // shrink the sink so the link wedges fast
	}
	if _, err := raw.Write(appendHeader(nil, true, 0, 77)); err != nil {
		t.Fatal(err)
	}
	// The server learns client 77 from the stream header alone.
	waitCond(t, 5*time.Second, func() bool { return srv.SendClient(77, bigPrePrepare()) == nil })

	healthySink := newSink()
	healthy, err := NewTCP(TCPConfig{
		IsClient: true, SelfClient: 88,
		Peers: map[types.ReplicaID]string{0: srv.Addr()},
	}, healthySink)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if err := healthy.Send(0, types.NewClientRequest(0, types.Transaction{Client: 88, Seq: 1, Op: []byte("q")})); err != nil {
		t.Fatal(err)
	}
	srvSink.wait(t, 1)

	// Flood the stalled client with large replies while pacing small ones
	// to the healthy client. The stalled link wedges, overflows its 4-deep
	// queue, and drops; every healthy reply still lands promptly.
	big := bigPrePrepare()
	const rounds = 64
	for i := 0; i < rounds; i++ {
		for j := 0; j < 4; j++ {
			if err := srv.SendClient(77, big); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.SendClient(88, &types.ClientReply{Replica: 0, Client: 88, Seq: uint64(i + 1), Count: 1}); err != nil {
			t.Fatal(err)
		}
		healthySink.wait(t, 1)
	}
	if d := srv.Stats().ClientDropped; d == 0 {
		t.Fatal("stalled client overflowed no queue — drop counter stayed 0")
	} else {
		t.Logf("stalled client dropped %d replies; healthy client got all %d", d, rounds)
	}
}

// TestTCPStalledPeerDemotesAfterWriteTimeout: a peer that stays connected
// but stops draining must not wedge senders forever. Once its kernel
// buffers and the outbound queue fill, the writer's next write times out
// (WriteTimeout), the link demotes to drop-while-down, and every blocked
// and future Send completes promptly.
func TestTCPStalledPeerDemotesAfterWriteTimeout(t *testing.T) {
	stall := newStalledListener(t)
	t0, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0",
		Peers:        map[types.ReplicaID]string{1: stall.ln.Addr().String()},
		QueueDepth:   4,
		WriteTimeout: 300 * time.Millisecond,
		DrainTimeout: 100 * time.Millisecond,
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	// Establish the link first (a small message flushes fine), so the
	// flood below exercises the connected-then-wedged path, not the
	// never-connected drop path.
	if err := t0.Send(1, types.NewPrepare(0, 0, 0, 1, types.ZeroDigest)); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool { return t0.Stats().MsgsSent >= 1 })

	// Far more than kernel buffers + queue can hold: without demotion the
	// sender would block indefinitely once both fill.
	big := bigPrePrepare()
	const sends = 256
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < sends; i++ {
			if err := t0.Send(1, big); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Send wedged behind a connected-but-stalled peer")
	}
	if d := t0.Stats().PeerDropped; d == 0 {
		t.Fatal("demoted link recorded no drops")
	}
}

// TestTCPReconnectResumesDelivery: the destination dies and is reborn on
// the same address; the sender's writer redials with backoff and delivery
// resumes without constructing a new transport.
func TestTCPReconnectResumesDelivery(t *testing.T) {
	s1 := newSink()
	t1, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0"}, s1)
	if err != nil {
		t.Fatal(err)
	}
	addr := t1.Addr()

	t0, err := NewTCP(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0",
		Peers:               map[types.ReplicaID]string{1: addr},
		ReconnectBackoff:    10 * time.Millisecond,
		ReconnectBackoffMax: 50 * time.Millisecond,
		DrainTimeout:        100 * time.Millisecond,
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	m := types.NewPrepare(0, 0, 1, 2, types.Hash([]byte("r")))
	if err := t0.Send(1, m); err != nil {
		t.Fatal(err)
	}
	s1.wait(t, 1)

	// Kill the destination. Messages sent while it is down are dropped
	// (counted), never block.
	t1.Close()

	// Rebirth on the same address, fresh transport and sink.
	s1b := newSink()
	t1b, err := NewTCP(TCPConfig{Self: 1, Listen: addr}, s1b)
	if err != nil {
		t.Fatal(err)
	}
	defer t1b.Close()

	// Keep sending until the writer notices the dead link, redials, and a
	// message lands. Each Send returns immediately regardless.
	waitCond(t, 10*time.Second, func() bool {
		if err := t0.Send(1, m); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		return s1b.count() > 0
	})
	st := t0.Stats()
	if st.Reconnects == 0 {
		t.Fatal("delivery resumed without a recorded reconnect")
	}
	if st.PeerDropped == 0 {
		t.Fatal("messages sent into the dead link were not counted as dropped")
	}
}

// TestTCPClientDisconnectUnregisters: when a client's connection dies, the
// replica must drop it from the reply-routing map (no unbounded growth
// under client churn) and SendClient must report it unreachable again.
func TestTCPClientDisconnectUnregisters(t *testing.T) {
	srvSink := newSink()
	srv, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0"}, srvSink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := NewTCP(TCPConfig{
		IsClient: true, SelfClient: 9,
		Peers: map[types.ReplicaID]string{0: srv.Addr()},
	}, newSink())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(0, types.NewClientRequest(0, types.Transaction{Client: 9, Seq: 1, Op: []byte("q")})); err != nil {
		t.Fatal(err)
	}
	srvSink.wait(t, 1)
	if err := srv.SendClient(9, &types.ClientReply{Client: 9, Seq: 1}); err != nil {
		t.Fatalf("reply to a connected client failed: %v", err)
	}

	cli.Close()
	waitCond(t, 5*time.Second, func() bool {
		return srv.SendClient(9, &types.ClientReply{Client: 9, Seq: 1}) != nil
	})
	srv.mu.Lock()
	n := len(srv.clientsByID)
	srv.mu.Unlock()
	if n != 0 {
		t.Fatalf("dead client still registered: %d entries", n)
	}
}

// TestTCPRefusesWireVersionMismatch: a peer announcing a different framing
// version must be cut off at the handshake — inbound (we read its header)
// and outbound (we read the header it sends back).
func TestTCPRefusesWireVersionMismatch(t *testing.T) {
	srvSink := newSink()
	srv, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0"}, srvSink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Inbound: dial raw, claim wire version 99, then try to push a frame.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	hdr := appendHeader(nil, false, 3, 0)
	binary.BigEndian.PutUint16(hdr[4:6], 99)
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool { return srv.Stats().BadHeader == 1 })
	// The server hung up: the raw conn sees EOF and nothing was delivered.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the mismatched connection open")
	}
	if srvSink.count() != 0 {
		t.Fatal("message from a version-mismatched peer was delivered")
	}

	// Outbound: a "newer" replica answers this client with a v99 header;
	// the client must refuse the stream rather than misparse frames.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.ReadFull(c, make([]byte, wireHeaderLen)) // swallow the client's header
		bad := appendHeader(nil, false, 0, 0)
		binary.BigEndian.PutUint16(bad[4:6], 99)
		c.Write(bad)
	}()
	cliSink := newSink()
	cli, err := NewTCP(TCPConfig{
		IsClient: true, SelfClient: 5,
		Peers: map[types.ReplicaID]string{0: ln.Addr().String()},
	}, cliSink)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Send(0, types.NewClientRequest(0, types.Transaction{Client: 5, Seq: 1, Op: []byte("x")})); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool { return cli.Stats().BadHeader == 1 })
	if cliSink.count() != 0 {
		t.Fatal("frames from a version-mismatched server were delivered")
	}
}

func TestWireHeaderRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		isClient bool
		r        types.ReplicaID
		c        types.ClientID
	}{
		{false, 7, 0},
		{true, 0, 123456},
	} {
		buf := appendHeader(nil, tc.isClient, tc.r, tc.c)
		if len(buf) != wireHeaderLen {
			t.Fatalf("header length %d, want %d", len(buf), wireHeaderLen)
		}
		h, err := readHeader(bytesReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if h.version != WireVersion || h.isClient != tc.isClient || h.replica != tc.r || (tc.isClient && h.client != tc.c) {
			t.Fatalf("header mangled: %+v", h)
		}
	}
	// Bad magic and bad version both surface ErrWireVersion.
	bad := appendHeader(nil, false, 1, 0)
	bad[0] = 'X'
	if _, err := readHeader(bytesReader(bad)); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("bad magic: got %v, want ErrWireVersion", err)
	}
	bad = appendHeader(nil, false, 1, 0)
	binary.BigEndian.PutUint16(bad[4:6], WireVersion+1)
	if _, err := readHeader(bytesReader(bad)); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("bad version: got %v, want ErrWireVersion", err)
	}
}

type byteSliceReader struct{ b []byte }

func bytesReader(b []byte) io.Reader { return &byteSliceReader{b: b} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
