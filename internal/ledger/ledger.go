// Package ledger implements the ResilientDB-style blockchain journal: an
// append-only, hash-chained sequence of blocks, each holding the executed
// transactions of one consensus decision together with the commit proof
// (§V-B: "each replica maintains a blockchain ledger that holds an ordered
// copy of all executed transactions ... also proofs of their acceptance").
package ledger

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/types"
)

// Proof records why a block is final: the instance/round/view it was decided
// in and the replicas whose votes (or shares) formed the commit certificate.
type Proof struct {
	Instance types.InstanceID
	Round    types.Round
	View     types.View
	Digest   types.Digest
	Signers  []types.ReplicaID
}

// Block is one entry of the journal.
type Block struct {
	Height    uint64
	PrevHash  types.Digest
	Batch     *types.Batch
	Proof     Proof
	StateHash types.Digest // execution-state digest after applying Batch
	hash      types.Digest
}

// Hash returns the block's hash, computed over height, previous hash, batch
// digest, and state hash.
func (b *Block) Hash() types.Digest {
	if !b.hash.IsZero() {
		return b.hash
	}
	buf := make([]byte, 0, 8+32*3)
	buf = binary.BigEndian.AppendUint64(buf, b.Height)
	buf = append(buf, b.PrevHash[:]...)
	d := b.Batch.Digest()
	buf = append(buf, d[:]...)
	buf = append(buf, b.StateHash[:]...)
	b.hash = types.Hash(buf)
	return b.hash
}

// Ledger is an in-memory hash-chained journal. It is safe for concurrent
// use.
//
// A ledger normally starts at height 0 (genesis). A ledger built from a
// state transfer instead starts at a base height: blocks below the base were
// summarized by an installed snapshot and are not materialized — Get returns
// nil for them — but heights, hash links, and the cumulative transaction
// count continue as if they were present (NewAt).
type Ledger struct {
	mu       sync.RWMutex
	base     uint64       // height of the first materialized block
	baseHash types.Digest // hash of block base-1 (zero when base == 0)
	baseTxns uint64       // transactions carried by blocks below base
	blocks   []*Block
	txns     uint64
}

// New creates an empty ledger rooted at genesis.
func New() *Ledger { return &Ledger{} }

// NewAt creates a ledger whose first block will sit at height base, chained
// onto baseHash (the hash of block base-1), with baseTxns transactions
// carried by the summarized prefix. NewAt(0, zero, 0) equals New().
func NewAt(base uint64, baseHash types.Digest, baseTxns uint64) *Ledger {
	return &Ledger{base: base, baseHash: baseHash, baseTxns: baseTxns}
}

// Base returns the height of the first materialized block (0 for a full
// chain).
func (l *Ledger) Base() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base
}

// BaseHash returns the hash the first materialized block chains onto (the
// zero digest for a full chain).
func (l *Ledger) BaseHash() types.Digest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.baseHash
}

// Append adds a block holding batch with the given proof and state hash.
// It returns the appended block.
func (l *Ledger) Append(batch *types.Batch, proof Proof, state types.Digest) *Block {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := l.baseHash
	if n := len(l.blocks); n > 0 {
		prev = l.blocks[n-1].Hash()
	}
	b := &Block{
		Height:    l.base + uint64(len(l.blocks)),
		PrevHash:  prev,
		Batch:     batch,
		Proof:     proof,
		StateHash: state,
	}
	b.Hash()
	l.blocks = append(l.blocks, b)
	l.txns += uint64(batch.Len())
	return b
}

// Height returns the number of blocks in the chain, including the
// summarized prefix below the base.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base + uint64(len(l.blocks))
}

// TxnCount returns the total number of transactions across the chain,
// including the summarized prefix below the base.
func (l *Ledger) TxnCount() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.baseTxns + l.txns
}

// Get returns the block at the given height, or nil when out of range or
// below the base (summarized by a snapshot, no longer materialized).
func (l *Ledger) Get(height uint64) *Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height < l.base || height >= l.base+uint64(len(l.blocks)) {
		return nil
	}
	return l.blocks[height-l.base]
}

// HeadHash returns the hash of the chain head: the last materialized
// block's hash, or the base hash when every block is summarized by an
// installed snapshot (the zero digest on a truly empty chain).
func (l *Ledger) HeadHash() types.Digest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n := len(l.blocks); n > 0 {
		return l.blocks[n-1].Hash()
	}
	return l.baseHash
}

// Tip returns the chain height and head hash as one consistent pair (two
// separate Height/HeadHash calls could straddle an append).
func (l *Ledger) Tip() (uint64, types.Digest) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n := len(l.blocks); n > 0 {
		return l.base + uint64(n), l.blocks[n-1].Hash()
	}
	return l.base, l.baseHash
}

// Head returns the latest block, or nil when the ledger is empty.
func (l *Ledger) Head() *Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) == 0 {
		return nil
	}
	return l.blocks[len(l.blocks)-1]
}

// Verify walks the chain and checks every hash link, and that every block's
// commit proof actually covers its batch: a non-zero Proof.Digest must equal
// the recomputed batch digest, otherwise the proof certifies some other
// proposal and the journal's provenance claim is void. (A zero Proof.Digest
// marks an unproven block — tests and replayed genesis state — and is
// exempt.) It returns an error describing the first broken link, or nil when
// the chain is intact. The ledger is immutable-by-convention; Verify is how
// tests, auditors, and restart recovery (store.DurableLedger) check the
// provenance property.
func (l *Ledger) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := l.baseHash
	for i, b := range l.blocks {
		if b.Height != l.base+uint64(i) {
			return fmt.Errorf("ledger: block %d has height %d", i, b.Height)
		}
		if b.PrevHash != prev {
			return fmt.Errorf("ledger: block %d prev-hash mismatch", i)
		}
		if !b.Proof.Digest.IsZero() && b.Proof.Digest != b.Batch.Digest() {
			return fmt.Errorf("ledger: block %d proof digest does not cover its batch", i)
		}
		// Recompute the hash from scratch to catch mutation.
		fresh := &Block{
			Height: b.Height, PrevHash: b.PrevHash,
			Batch: b.Batch, StateHash: b.StateHash,
		}
		if fresh.Hash() != b.Hash() {
			return fmt.Errorf("ledger: block %d content mutated", i)
		}
		prev = b.Hash()
	}
	return nil
}
