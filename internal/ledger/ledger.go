// Package ledger implements the ResilientDB-style blockchain journal: an
// append-only, hash-chained sequence of blocks, each holding the executed
// transactions of one consensus decision together with the commit proof
// (§V-B: "each replica maintains a blockchain ledger that holds an ordered
// copy of all executed transactions ... also proofs of their acceptance").
package ledger

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/types"
)

// Proof records why a block is final: the instance/round/view it was decided
// in and the replicas whose votes (or shares) formed the commit certificate.
type Proof struct {
	Instance types.InstanceID
	Round    types.Round
	View     types.View
	Digest   types.Digest
	Signers  []types.ReplicaID
}

// Block is one entry of the journal.
type Block struct {
	Height    uint64
	PrevHash  types.Digest
	Batch     *types.Batch
	Proof     Proof
	StateHash types.Digest // execution-state digest after applying Batch
	hash      types.Digest
}

// Hash returns the block's hash, computed over height, previous hash, batch
// digest, and state hash.
func (b *Block) Hash() types.Digest {
	if !b.hash.IsZero() {
		return b.hash
	}
	buf := make([]byte, 0, 8+32*3)
	buf = binary.BigEndian.AppendUint64(buf, b.Height)
	buf = append(buf, b.PrevHash[:]...)
	d := b.Batch.Digest()
	buf = append(buf, d[:]...)
	buf = append(buf, b.StateHash[:]...)
	b.hash = types.Hash(buf)
	return b.hash
}

// Ledger is an in-memory hash-chained journal. It is safe for concurrent
// use.
type Ledger struct {
	mu     sync.RWMutex
	blocks []*Block
	txns   uint64
}

// New creates an empty ledger.
func New() *Ledger { return &Ledger{} }

// Append adds a block holding batch with the given proof and state hash.
// It returns the appended block.
func (l *Ledger) Append(batch *types.Batch, proof Proof, state types.Digest) *Block {
	l.mu.Lock()
	defer l.mu.Unlock()
	var prev types.Digest
	if n := len(l.blocks); n > 0 {
		prev = l.blocks[n-1].Hash()
	}
	b := &Block{
		Height:    uint64(len(l.blocks)),
		PrevHash:  prev,
		Batch:     batch,
		Proof:     proof,
		StateHash: state,
	}
	b.Hash()
	l.blocks = append(l.blocks, b)
	l.txns += uint64(batch.Len())
	return b
}

// Height returns the number of blocks in the ledger.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.blocks))
}

// TxnCount returns the total number of transactions across all blocks.
func (l *Ledger) TxnCount() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.txns
}

// Get returns the block at the given height, or nil when out of range.
func (l *Ledger) Get(height uint64) *Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height >= uint64(len(l.blocks)) {
		return nil
	}
	return l.blocks[height]
}

// Head returns the latest block, or nil when the ledger is empty.
func (l *Ledger) Head() *Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) == 0 {
		return nil
	}
	return l.blocks[len(l.blocks)-1]
}

// Verify walks the chain and checks every hash link, and that every block's
// commit proof actually covers its batch: a non-zero Proof.Digest must equal
// the recomputed batch digest, otherwise the proof certifies some other
// proposal and the journal's provenance claim is void. (A zero Proof.Digest
// marks an unproven block — tests and replayed genesis state — and is
// exempt.) It returns an error describing the first broken link, or nil when
// the chain is intact. The ledger is immutable-by-convention; Verify is how
// tests, auditors, and restart recovery (store.DurableLedger) check the
// provenance property.
func (l *Ledger) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var prev types.Digest
	for i, b := range l.blocks {
		if b.Height != uint64(i) {
			return fmt.Errorf("ledger: block %d has height %d", i, b.Height)
		}
		if b.PrevHash != prev {
			return fmt.Errorf("ledger: block %d prev-hash mismatch", i)
		}
		if !b.Proof.Digest.IsZero() && b.Proof.Digest != b.Batch.Digest() {
			return fmt.Errorf("ledger: block %d proof digest does not cover its batch", i)
		}
		// Recompute the hash from scratch to catch mutation.
		fresh := &Block{
			Height: b.Height, PrevHash: b.PrevHash,
			Batch: b.Batch, StateHash: b.StateHash,
		}
		if fresh.Hash() != b.Hash() {
			return fmt.Errorf("ledger: block %d content mutated", i)
		}
		prev = b.Hash()
	}
	return nil
}
