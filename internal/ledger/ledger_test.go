package ledger

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func batch(c types.ClientID, seq uint64, op string) *types.Batch {
	return &types.Batch{Txns: []types.Transaction{{Client: c, Seq: seq, Op: []byte(op)}}}
}

func TestAppendAndVerify(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append(batch(1, uint64(i+1), "op"), Proof{Round: types.Round(i + 1)}, types.Hash([]byte{byte(i)}))
	}
	if l.Height() != 10 || l.TxnCount() != 10 {
		t.Fatalf("height=%d txns=%d", l.Height(), l.TxnCount())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestHashChainLinks(t *testing.T) {
	l := New()
	b1 := l.Append(batch(1, 1, "a"), Proof{}, types.ZeroDigest)
	b2 := l.Append(batch(1, 2, "b"), Proof{}, types.ZeroDigest)
	if b2.PrevHash != b1.Hash() {
		t.Fatal("chain link broken on append")
	}
	if b1.PrevHash != types.ZeroDigest {
		t.Fatal("genesis prev-hash not zero")
	}
}

func TestVerifyDetectsMutation(t *testing.T) {
	l := New()
	l.Append(batch(1, 1, "a"), Proof{}, types.ZeroDigest)
	l.Append(batch(1, 2, "b"), Proof{}, types.ZeroDigest)
	// Tamper with an early block's contents.
	l.Get(0).Batch.Txns[0].Op = []byte("EVIL")
	if err := l.Verify(); err == nil {
		t.Fatal("mutation not detected")
	}
}

func TestGetOutOfRange(t *testing.T) {
	l := New()
	if l.Get(0) != nil || l.Head() != nil {
		t.Fatal("empty ledger returned a block")
	}
	l.Append(batch(1, 1, "a"), Proof{}, types.ZeroDigest)
	if l.Get(1) != nil {
		t.Fatal("out-of-range height returned a block")
	}
	if l.Head() == nil || l.Head().Height != 0 {
		t.Fatal("head wrong")
	}
}

func TestProofIsStored(t *testing.T) {
	l := New()
	p := Proof{Instance: 3, Round: 7, View: 1, Signers: []types.ReplicaID{0, 2, 3}}
	b := l.Append(batch(1, 1, "a"), p, types.ZeroDigest)
	if b.Proof.Instance != 3 || b.Proof.Round != 7 || len(b.Proof.Signers) != 3 {
		t.Fatalf("proof mangled: %+v", b.Proof)
	}
}

func TestConcurrentAppendsAndReads(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Append(batch(types.ClientID(w+1), uint64(i+1), "x"), Proof{}, types.ZeroDigest)
				_ = l.Height()
				_ = l.Head()
			}
		}(w)
	}
	wg.Wait()
	if l.Height() != 200 {
		t.Fatalf("height %d, want 200", l.Height())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}
