package ledger

import (
	"testing"

	"repro/internal/types"
)

func TestBlockCodecRoundTrip(t *testing.T) {
	l := New()
	b := l.Append(
		&types.Batch{Txns: []types.Transaction{
			{Client: 7, Seq: 1, Op: []byte("write k1")},
			{Client: 9, Seq: 4, Op: []byte("write k2")},
		}},
		Proof{Instance: 2, Round: 11, View: 1, Digest: types.Hash([]byte("d")), Signers: []types.ReplicaID{0, 1, 3}},
		types.Hash([]byte("state")),
	)
	got, err := DecodeBlock(EncodeBlock(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Height != b.Height || got.PrevHash != b.PrevHash || got.StateHash != b.StateHash {
		t.Fatalf("chain fields mangled: %+v", got)
	}
	if got.Proof.Instance != 2 || got.Proof.Round != 11 || got.Proof.View != 1 ||
		got.Proof.Digest != b.Proof.Digest || len(got.Proof.Signers) != 3 {
		t.Fatalf("proof mangled: %+v", got.Proof)
	}
	if got.Batch.Digest() != b.Batch.Digest() {
		t.Fatal("batch mangled")
	}
	// The decoded block must hash identically — that is what lets restart
	// recovery verify the rebuilt chain head against pre-crash state.
	if got.Hash() != b.Hash() {
		t.Fatal("decoded block hashes differently")
	}
}

func TestDecodeBlockRejectsDamage(t *testing.T) {
	l := New()
	b := l.Append(batch(1, 1, "op"), Proof{Round: 1}, types.ZeroDigest)
	enc := EncodeBlock(b)
	if _, err := DecodeBlock(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	if _, err := DecodeBlock(append(enc, 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := DecodeBlock(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := DecodeBlock(nil); err == nil {
		t.Fatal("empty encoding accepted")
	}
}

func TestVerifyChecksProofDigest(t *testing.T) {
	l := New()
	good := batch(1, 1, "legit")
	l.Append(good, Proof{Round: 1, Digest: good.Digest()}, types.ZeroDigest)
	if err := l.Verify(); err != nil {
		t.Fatalf("matching proof digest rejected: %v", err)
	}
	// A proof whose digest certifies some OTHER proposal must fail audit.
	other := batch(1, 2, "swapped in")
	l.Append(other, Proof{Round: 2, Digest: types.Hash([]byte("not the batch"))}, types.ZeroDigest)
	if err := l.Verify(); err == nil {
		t.Fatal("proof digest not covering the batch went undetected")
	}
}
