package ledger

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// Wire encoding of one block, used by the durable storage subsystem
// (internal/store) to journal blocks through the write-ahead log. The
// encoding is deterministic and self-contained: height, hash links, proof,
// and batch — everything needed to rebuild the in-memory chain and re-audit
// it with Verify after a restart.

const codecVersion = 1

// EncodeBlock returns the wire encoding of b.
func EncodeBlock(b *Block) []byte {
	buf := make([]byte, 0, 128+b.Batch.Len()*64)
	buf = append(buf, codecVersion)
	buf = binary.BigEndian.AppendUint64(buf, b.Height)
	buf = append(buf, b.PrevHash[:]...)
	buf = append(buf, b.StateHash[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(b.Proof.Instance))
	buf = binary.BigEndian.AppendUint64(buf, uint64(b.Proof.Round))
	buf = binary.BigEndian.AppendUint64(buf, uint64(b.Proof.View))
	buf = append(buf, b.Proof.Digest[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(b.Proof.Signers)))
	for _, s := range b.Proof.Signers {
		buf = binary.BigEndian.AppendUint16(buf, uint16(s))
	}
	return b.Batch.Marshal(buf)
}

// DecodeBlock parses the wire encoding produced by EncodeBlock.
func DecodeBlock(buf []byte) (*Block, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("ledger: empty block encoding")
	}
	if buf[0] != codecVersion {
		return nil, fmt.Errorf("ledger: unknown block encoding version %d", buf[0])
	}
	buf = buf[1:]
	if len(buf) < 8+32+32+2+8+8+32+2 {
		return nil, fmt.Errorf("ledger: short block encoding: %d bytes", len(buf))
	}
	b := &Block{}
	b.Height = binary.BigEndian.Uint64(buf)
	buf = buf[8:]
	copy(b.PrevHash[:], buf)
	buf = buf[32:]
	copy(b.StateHash[:], buf)
	buf = buf[32:]
	b.Proof.Instance = types.InstanceID(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	b.Proof.Round = types.Round(binary.BigEndian.Uint64(buf))
	buf = buf[8:]
	b.Proof.View = types.View(binary.BigEndian.Uint64(buf))
	buf = buf[8:]
	copy(b.Proof.Digest[:], buf)
	buf = buf[32:]
	nsign := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < nsign*2 {
		return nil, fmt.Errorf("ledger: block encoding truncated in signers")
	}
	if nsign > 0 {
		b.Proof.Signers = make([]types.ReplicaID, nsign)
		for i := range b.Proof.Signers {
			b.Proof.Signers[i] = types.ReplicaID(binary.BigEndian.Uint16(buf))
			buf = buf[2:]
		}
	}
	batch, rest, err := types.UnmarshalBatch(buf)
	if err != nil {
		return nil, fmt.Errorf("ledger: block encoding: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("ledger: %d trailing bytes after block encoding", len(rest))
	}
	b.Batch = batch
	return b, nil
}
