// Package core is the high-level public API of the RCC reproduction: it
// assembles complete replicated deployments — consensus machines, execution
// engine, blockchain ledger, transports, and clients — behind a handful of
// calls.
//
// Quickstart (see examples/quickstart):
//
//	cluster, _ := core.NewCluster(core.Options{N: 4, Protocol: core.RCC})
//	defer cluster.Stop()
//	cluster.Start()
//	cl := cluster.NewClient(1)
//	res, _ := cl.Execute(op, time.Second)
//
// Every deployment runs the real protocol state machines (internal/rcc,
// internal/pbft, ...) on the goroutine runtime (internal/runtime) over an
// in-process transport; cmd/rccnode runs the same machinery over TCP.
package core

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/client"
	"repro/internal/exec"
	"repro/internal/hotstuff"
	"repro/internal/ledger"
	"repro/internal/mirbft"
	"repro/internal/obs"
	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/rcc"
	"repro/internal/runtime"
	"repro/internal/sbft"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/ycsb"
	"repro/internal/zyzzyva"
)

// Protocol selects the consensus protocol of a deployment.
type Protocol string

// Supported protocols. RCC, RCCZyzzyva, and RCCSBFT are the paper's RCC-P,
// RCC-Z, and RCC-S paradigm variants; the rest are the standalone
// baselines of the evaluation.
const (
	RCC        Protocol = "rcc"
	RCCZyzzyva Protocol = "rcc-z"
	RCCSBFT    Protocol = "rcc-s"
	PBFT       Protocol = "pbft"
	Zyzzyva    Protocol = "zyzzyva"
	SBFT       Protocol = "sbft"
	HotStuff   Protocol = "hotstuff"
	MirBFT     Protocol = "mirbft"
)

// Options configures a cluster.
type Options struct {
	// N is the number of replicas (n > 3f, so at least 4).
	N int
	// Protocol selects the consensus protocol (default RCC).
	Protocol Protocol
	// M is the number of concurrent instances for RCC/MirBFT (0 = n).
	M int
	// BatchSize groups client transactions per proposal (default 1 for
	// interactive use; benchmarks use the paper's 100).
	BatchSize int
	// Window is the out-of-order proposal window (default 4; 1 disables
	// out-of-order processing).
	Window int
	// ProgressTimeout is the failure-detection timeout (default 500 ms).
	ProgressTimeout time.Duration
	// App builds the per-replica application; nil selects a fresh YCSB
	// store with the paper's 500k records.
	App func() exec.Application
	// Journal enables the per-replica blockchain ledger.
	Journal bool
	// DataDir enables durable storage (implies Journal): replica i
	// journals its ledger through a write-ahead log under
	// DataDir/replica-i and restores height and application state from
	// there on construction, so a cluster rebuilt on the same DataDir
	// resumes where the previous one stopped.
	DataDir string
	// Durability selects the WAL sync policy when DataDir is set
	// (default group commit).
	Durability wal.SyncPolicy
	// AsyncJournal pipelines durability when DataDir is set: fsyncs leave
	// the event loop and client acks wait for the durable LSN (see
	// runtime.Config.AsyncJournal).
	AsyncJournal bool
	// SnapshotEvery persists application checkpoints every N blocks when
	// DataDir is set (see runtime.Config.SnapshotEvery).
	SnapshotEvery uint64
	// StateSync arms checkpoint-based state transfer when DataDir is set
	// and the protocol supports it: a replica whose data dir is wiped or
	// behind fetches the f+1-attested snapshot plus ledger suffix from its
	// peers and rejoins at the cluster head (see runtime.Config.StateSync).
	StateSync bool
	// ExecWorkers bounds the conflict-aware parallel execution engine's
	// per-batch concurrency on every replica (0 = GOMAXPROCS, 1 = the
	// serial executor; see runtime.Config.Exec).
	ExecWorkers int
	// UnpredictableOrdering enables RCC's §IV permutation ordering.
	UnpredictableOrdering bool
	// Metrics is the instrument catalog wired through the consensus
	// machine and runtime of every replica built from these options. An
	// in-process cluster shares the one catalog: stage histograms and
	// consensus counters aggregate across replicas, while per-replica
	// series carry a replica="ID" label. Nil disables instrumentation.
	Metrics *obs.NodeMetrics
}

// ReplicaDir returns the data directory of replica i under base.
func ReplicaDir(base string, i int) string {
	return filepath.Join(base, fmt.Sprintf("replica-%d", i))
}

func (o *Options) defaults() error {
	if o.N < 4 {
		return fmt.Errorf("core: need at least 4 replicas, got %d", o.N)
	}
	if o.Protocol == "" {
		o.Protocol = RCC
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.ProgressTimeout <= 0 {
		o.ProgressTimeout = 500 * time.Millisecond
	}
	if o.App == nil {
		o.App = func() exec.Application { return ycsb.NewStore(ycsb.DefaultRecords) }
	}
	return nil
}

// machine builds the consensus machine for one replica.
func (o *Options) machine() (sm.Machine, error) {
	switch o.Protocol {
	case RCC, RCCZyzzyva, RCCSBFT:
		cfg := rcc.Config{
			M:                     o.M,
			BatchSize:             o.BatchSize,
			Window:                o.Window,
			ProgressTimeout:       o.ProgressTimeout,
			UnpredictableOrdering: o.UnpredictableOrdering,
			Metrics:               o.Metrics,
		}
		switch o.Protocol {
		case RCCZyzzyva:
			cfg.NewInstance = func(ic rcc.InstanceConfig) sm.Instance {
				return zyzzyva.New(zyzzyva.Config{
					Instance: ic.Instance, Primary: ic.Primary, FixedPrimary: true,
					Window: ic.Window, BatchSize: ic.BatchSize, ProgressTimeout: ic.ProgressTimeout,
				})
			}
		case RCCSBFT:
			cfg.NewInstance = func(ic rcc.InstanceConfig) sm.Instance {
				return sbft.New(sbft.Config{
					Instance: ic.Instance, Primary: ic.Primary, FixedPrimary: true,
					Window: ic.Window, BatchSize: ic.BatchSize, ProgressTimeout: ic.ProgressTimeout,
				})
			}
		}
		return rcc.New(cfg), nil
	case PBFT:
		return pbft.New(pbft.Config{
			BatchSize: o.BatchSize, Window: o.Window, ProgressTimeout: o.ProgressTimeout,
			Metrics: o.Metrics,
		}), nil
	case Zyzzyva:
		return zyzzyva.New(zyzzyva.Config{
			BatchSize: o.BatchSize, Window: o.Window, ProgressTimeout: o.ProgressTimeout,
		}), nil
	case SBFT:
		return sbft.New(sbft.Config{
			BatchSize: o.BatchSize, Window: o.Window, ProgressTimeout: o.ProgressTimeout,
		}), nil
	case HotStuff:
		return hotstuff.New(hotstuff.Config{
			BatchSize: o.BatchSize, ViewTimeout: o.ProgressTimeout,
		}), nil
	case MirBFT:
		return mirbft.New(mirbft.Config{
			M: o.M, BatchSize: o.BatchSize, Window: o.Window, ProgressTimeout: o.ProgressTimeout,
		}), nil
	}
	return nil, fmt.Errorf("core: unknown protocol %q", o.Protocol)
}

// BuildMachine validates opts and builds one replica's consensus machine —
// the hook cmd/rccnode uses to run the same assembly over TCP.
func BuildMachine(opts *Options) (sm.Machine, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	return opts.machine()
}

// Cluster is a running in-process deployment.
type Cluster struct {
	opts     Options
	params   quorum.Params
	hub      *transport.Memory
	replicas []*runtime.Replica
	machines []sm.Machine
	clients  []*Client
	nextCli  types.ClientID
	started  bool
}

// NewCluster assembles a cluster; call Start to run it.
func NewCluster(opts Options) (*Cluster, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	params, err := quorum.NewParams(opts.N)
	if err != nil {
		return nil, err
	}
	c := &Cluster{opts: opts, params: params, hub: transport.NewMemory(), nextCli: 1}
	for i := 0; i < opts.N; i++ {
		m, err := opts.machine()
		if err != nil {
			return nil, err
		}
		rcfg := runtime.Config{
			ID:      types.ReplicaID(i),
			Params:  params,
			Machine: m,
			App:     opts.App(),
			Journal: opts.Journal,
			Journaling: runtime.JournalOptions{
				Sync:          opts.Durability,
				Async:         opts.AsyncJournal,
				SnapshotEvery: opts.SnapshotEvery,
			},
			Exec:           runtime.ExecOptions{Workers: opts.ExecWorkers},
			ReplyToClients: true,
			Metrics:        opts.Metrics,
		}
		if opts.DataDir != "" {
			rcfg.DataDir = ReplicaDir(opts.DataDir, i)
			rcfg.StateSync = runtime.StateSyncOptions{
				Enabled: opts.StateSync,
				Source:  types.NoReplica,
			}
		}
		rep, err := runtime.New(rcfg)
		if err != nil {
			for j, prev := range c.replicas {
				c.hub.Detach(types.ReplicaID(j))
				prev.Stop()
			}
			return nil, fmt.Errorf("core: replica %d: %w", i, err)
		}
		rep.Attach(c.hub.AttachReplica(types.ReplicaID(i), rep))
		c.replicas = append(c.replicas, rep)
		c.machines = append(c.machines, m)
	}
	return c, nil
}

// Params returns the deployment's quorum parameters.
func (c *Cluster) Params() quorum.Params { return c.params }

// Start launches every replica's event loop.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	for _, r := range c.replicas {
		r.Run()
	}
}

// Stop shuts the whole deployment down.
func (c *Cluster) Stop() {
	for _, cl := range c.clients {
		cl.proc.Stop()
	}
	for i, r := range c.replicas {
		c.hub.Detach(types.ReplicaID(i))
		r.Stop()
	}
}

// Crash detaches replica i from the transport (a crash fault: the process
// keeps running but nothing reaches it and nothing leaves it).
func (c *Cluster) Crash(i int) { c.hub.Detach(types.ReplicaID(i)) }

// Replica returns the i-th replica process.
func (c *Cluster) Replica(i int) *runtime.Replica { return c.replicas[i] }

// Machine returns the i-th replica's consensus machine (for introspection;
// e.g. cast to *rcc.Replica for Status).
func (c *Cluster) Machine(i int) sm.Machine { return c.machines[i] }

// Ledger returns replica i's journal (nil unless Options.Journal).
func (c *Cluster) Ledger(i int) *ledger.Ledger { return c.replicas[i].Ledger() }

// Client is a connected cluster client.
type Client struct {
	id      types.ClientID
	mach    *client.Client
	proc    *runtime.ClientProc
	done    chan client.Completion
	nextSeq uint64
}

// NewClient connects a new client to the cluster; pass 0 to auto-assign an
// identity. Zyzzyva deployments get Zyzzyva-mode clients (all-n response
// collection), everything else f+1 reply matching.
func (c *Cluster) NewClient(id types.ClientID) *Client {
	if id == 0 {
		id = c.nextCli
	}
	if id >= c.nextCli {
		c.nextCli = id + 1
	}
	mode := client.ModePBFT
	if c.opts.Protocol == Zyzzyva {
		mode = client.ModeZyzzyva
	}
	mach := client.New(client.Config{
		Client:       id,
		Mode:         mode,
		Broadcast:    true,
		RetryTimeout: 2 * c.opts.ProgressTimeout,
	})
	cl := &Client{id: id, mach: mach, done: make(chan client.Completion, 256)}
	mach.SetCompletionHook(func(comp client.Completion) {
		select {
		case cl.done <- comp:
		default:
		}
	})
	proc := runtime.NewClient(id, c.params, mach)
	proc.Attach(c.hub.AttachClient(id, proc))
	cl.proc = proc
	c.clients = append(c.clients, cl)
	proc.Run()
	return cl
}

// ID returns the client identity.
func (cl *Client) ID() types.ClientID { return cl.id }

// Submit queues op as the client's next transaction without waiting.
func (cl *Client) Submit(op []byte) uint64 {
	cl.nextSeq++
	tx := types.Transaction{Client: cl.id, Seq: cl.nextSeq, Op: op}
	cl.proc.DeliverReplica(types.NoReplica, &client.Submission{Tx: tx})
	return cl.nextSeq
}

// Await blocks until the next completion arrives or the timeout expires.
func (cl *Client) Await(timeout time.Duration) (client.Completion, error) {
	select {
	case comp := <-cl.done:
		return comp, nil
	case <-time.After(timeout):
		return client.Completion{}, fmt.Errorf("core: client %d timed out after %v", cl.id, timeout)
	}
}

// Execute submits op and waits for its f+1-certified outcome.
func (cl *Client) Execute(op []byte, timeout time.Duration) (client.Completion, error) {
	seq := cl.Submit(op)
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return client.Completion{}, fmt.Errorf("core: transaction %d/%d timed out after %v", cl.id, seq, timeout)
		}
		comp, err := cl.Await(remain)
		if err != nil {
			return client.Completion{}, fmt.Errorf("core: transaction %d/%d timed out after %v", cl.id, seq, timeout)
		}
		if comp.Seq == seq {
			return comp, nil
		}
		// An earlier pipelined completion; keep draining.
	}
}
