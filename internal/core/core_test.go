package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/exec"
	"repro/internal/rcc"
	"repro/internal/types"
	"repro/internal/ycsb"
)

func TestQuickstartRCC(t *testing.T) {
	cluster, err := NewCluster(Options{N: 4, Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	cl := cluster.NewClient(0)
	for i := 0; i < 3; i++ {
		comp, err := cl.Execute(ycsb.EncodeWrite(uint32(i), []byte("v")), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if comp.Seq != uint64(i+1) {
			t.Fatalf("completion seq %d, want %d", comp.Seq, i+1)
		}
	}
	// The journal of every replica must hold the executed batches and
	// verify as an intact hash chain.
	waitFor(t, 5*time.Second, func() bool {
		return cluster.Ledger(0).TxnCount() >= 3
	})
	for i := 0; i < 4; i++ {
		if err := cluster.Ledger(i).Verify(); err != nil {
			t.Fatalf("replica %d ledger: %v", i, err)
		}
	}
}

func TestAllProtocolsExecuteTransactions(t *testing.T) {
	for _, proto := range []Protocol{RCC, RCCZyzzyva, RCCSBFT, PBFT, SBFT, MirBFT} {
		t.Run(string(proto), func(t *testing.T) {
			cluster, err := NewCluster(Options{N: 4, Protocol: proto})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Stop()
			cluster.Start()
			cl := cluster.NewClient(0)
			if _, err := cl.Execute(ycsb.EncodeWrite(7, []byte("x")), 10*time.Second); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestZyzzyvaClientFastPath(t *testing.T) {
	cluster, err := NewCluster(Options{N: 4, Protocol: Zyzzyva})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()
	cl := cluster.NewClient(0)
	comp, err := cl.Execute(ycsb.EncodeWrite(1, []byte("x")), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.FastPath {
		t.Fatal("healthy Zyzzyva cluster did not use the fast path")
	}
}

func TestHotStuffExecutes(t *testing.T) {
	cluster, err := NewCluster(Options{N: 4, Protocol: HotStuff, ProgressTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()
	cl := cluster.NewClient(0)
	if _, err := cl.Execute(ycsb.EncodeWrite(1, []byte("x")), 15*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRCCSurvivesCrash(t *testing.T) {
	cluster, err := NewCluster(Options{N: 4, ProgressTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	// Client 4 maps to instance 0 (4 mod 4), whose primary stays healthy;
	// clients of the crashed instance would need §III-E SwitchInstance.
	cl := cluster.NewClient(4)
	if _, err := cl.Execute(ycsb.EncodeWrite(1, []byte("a")), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	cluster.Crash(1)
	// Transactions routed to healthy instances keep completing; the
	// crashed primary's instance recovers wait-free in the background.
	for i := 0; i < 3; i++ {
		if _, err := cl.Execute(ycsb.EncodeWrite(uint32(10+i), []byte("b")), 15*time.Second); err != nil {
			t.Fatalf("txn %d after crash: %v", i, err)
		}
	}
	// Eventually a stop must be accepted for the crashed instance. State
	// reads go through Inspect: machines are single-threaded by contract.
	waitFor(t, 15*time.Second, func() bool {
		rep, ok := cluster.Machine(0).(*rcc.Replica)
		if !ok {
			return false
		}
		stops := 0
		cluster.Replica(0).Inspect(func() { stops = rep.Status(1).Stops })
		return stops > 0
	})
}

func TestBankApplication(t *testing.T) {
	opening := map[string]int64{"Alice": 800, "Bob": 300, "Eve": 100}
	cluster, err := NewCluster(Options{
		N:   4,
		App: func() exec.Application { return bank.New(opening) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	cl := cluster.NewClient(0)
	t1 := bank.Transfer{From: "Alice", To: "Bob", Threshold: 500, Amount: 200}
	if _, err := cl.Execute(t1.Encode(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := NewCluster(Options{N: 3}); err == nil {
		t.Fatal("accepted n=3 (< 4)")
	}
	if _, err := NewCluster(Options{N: 4, Protocol: "bogus"}); err == nil {
		t.Fatal("accepted unknown protocol")
	}
}

func TestConcurrentClients(t *testing.T) {
	cluster, err := NewCluster(Options{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	const clients = 4
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		cl := cluster.NewClient(0)
		go func(cl *Client) {
			for j := 0; j < 3; j++ {
				if _, err := cl.Execute(ycsb.EncodeWrite(uint32(j), []byte(fmt.Sprint(cl.ID()))), 15*time.Second); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(cl)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached before timeout")
}

var _ = types.Transaction{} // keep types imported for future assertions
