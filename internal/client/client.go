// Package client implements the client-side protocol machines of the
// evaluated systems: submitting transactions, collecting replies, and
// retransmitting or escalating on timeout.
//
// PBFT-style protocols (PBFT, SBFT, HotStuff, RCC): a client accepts a
// result once f+1 replicas report the identical outcome (one of them must
// be non-faulty). If the assigned primary neglects the request, the client
// broadcasts it to all replicas, which forward it and start failure
// detection (§III-E "forced execution").
//
// Zyzzyva: a client first waits for all n matching speculative responses
// (fast path). If only nf = 2f+1 arrive within the timeout, it assembles a
// commit certificate, broadcasts it, and completes after nf LOCAL-COMMIT
// acknowledgements. The paper observes (§V-F) that waiting on all n replies
// makes RCC-Z require far more concurrent clients than RCC-S to reach peak
// throughput.
package client

import (
	"sort"
	"sync"
	"time"

	"repro/internal/sm"
	"repro/internal/types"
)

// Mode selects the reply-collection protocol.
type Mode uint8

// Client modes.
const (
	ModePBFT    Mode = iota // f+1 matching replies
	ModeZyzzyva             // n matching spec responses, else commit cert
)

// Config parameterizes a client.
type Config struct {
	// Client is the client identity.
	Client types.ClientID
	// Mode selects the reply protocol.
	Mode Mode
	// RetryTimeout is the retransmission / escalation timeout.
	RetryTimeout time.Duration
	// Broadcast sends every request to all replicas instead of only the
	// assigned instance's primary. RCC clients broadcast: every replica
	// forwards to the serving instance, enabling neglect detection.
	Broadcast bool
	// Primary is the replica to send to when Broadcast is false.
	Primary types.ReplicaID
	// Instance routes the request to a specific instance (RCC assigns
	// clients to instances; standalone protocols use instance 0).
	Instance types.InstanceID
}

func (c *Config) defaults() {
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = time.Second
	}
}

// Completion describes one finished transaction.
type Completion struct {
	Seq      uint64
	Latency  time.Duration
	Result   types.Digest
	FastPath bool // Zyzzyva: completed with all n responses
}

// Client is a deterministic client machine. It submits the transactions
// queued with Submit one after another (pipelined up to Window) and records
// completions.
type Client struct {
	cfg Config
	env sm.ClientEnv

	queue    []types.Transaction
	inFlight map[uint64]*pending
	window   int

	// statsMu guards completions and retries: the only fields external
	// goroutines may read while the machine runs on its event loop.
	statsMu     sync.Mutex
	completions []Completion
	retries     uint64
	// onComplete, when set, observes every completion from within the
	// client's event loop (used by runtimes to bridge to channels).
	onComplete func(Completion)
}

type pending struct {
	tx      types.Transaction
	sentAt  time.Duration
	replies map[types.ReplicaID]types.Digest // PBFT replies / result digests

	spec        map[types.ReplicaID]*types.SpecResponse // Zyzzyva
	certSent    bool
	localCommit map[types.ReplicaID]struct{}
	escalated   bool // broadcast after neglect
}

var _ sm.ClientMachine = (*Client)(nil)

// New creates a client machine.
func New(cfg Config) *Client {
	cfg.defaults()
	return &Client{cfg: cfg, inFlight: make(map[uint64]*pending), window: 1}
}

// SetWindow allows w transactions in flight concurrently (default 1).
func (c *Client) SetWindow(w int) {
	if w >= 1 {
		c.window = w
	}
}

// Submit queues a transaction for submission. Safe to call before Start.
func (c *Client) Submit(tx types.Transaction) { c.queue = append(c.queue, tx) }

// SetCompletionHook registers a callback invoked (from the client's event
// loop) on every completion. Set before Start.
func (c *Client) SetCompletionHook(f func(Completion)) { c.onComplete = f }

// Completions returns a snapshot of the finished transactions in
// completion order. Safe to call from any goroutine.
func (c *Client) Completions() []Completion {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return append([]Completion(nil), c.completions...)
}

// Retries returns how many retransmissions/escalations the client issued.
// Safe to call from any goroutine.
func (c *Client) Retries() uint64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.retries
}

// Done reports whether every queued transaction completed.
func (c *Client) Done() bool { return len(c.queue) == 0 && len(c.inFlight) == 0 }

// Start implements sm.ClientMachine.
func (c *Client) Start(env sm.ClientEnv) {
	c.env = env
	c.pump()
}

// pump moves queued transactions into flight up to the window.
func (c *Client) pump() {
	for len(c.inFlight) < c.window && len(c.queue) > 0 {
		tx := c.queue[0]
		c.queue = c.queue[1:]
		p := &pending{
			tx:          tx,
			sentAt:      c.env.Now(),
			replies:     make(map[types.ReplicaID]types.Digest),
			spec:        make(map[types.ReplicaID]*types.SpecResponse),
			localCommit: make(map[types.ReplicaID]struct{}),
		}
		c.inFlight[tx.Seq] = p
		c.send(p)
	}
}

func (c *Client) send(p *pending) {
	req := types.NewClientRequest(c.cfg.Instance, p.tx)
	if c.cfg.Broadcast || p.escalated {
		c.env.Broadcast(req)
	} else {
		c.env.Send(c.cfg.Primary, req)
	}
	c.env.SetTimer(sm.TimerID{Kind: sm.TimerClient, Round: types.Round(p.tx.Seq)}, c.cfg.RetryTimeout)
}

// Submission is a local event carrying a new transaction into a running
// client's event loop (it never goes on the wire). Runtimes deliver it via
// OnMessage, keeping all machine access on the event loop.
type Submission struct {
	Tx types.Transaction
}

// Type implements types.Message.
func (Submission) Type() types.MsgType { return types.MsgInvalid }

// Instance implements types.Message.
func (Submission) Instance() types.InstanceID { return 0 }

// WireSize implements types.Message.
func (Submission) WireSize() int { return 0 }

// AuthPayload implements types.Message.
func (Submission) AuthPayload(b []byte) []byte { return b }

// OnMessage implements sm.ClientMachine.
func (c *Client) OnMessage(from types.ReplicaID, m types.Message) {
	switch msg := m.(type) {
	case *Submission:
		c.queue = append(c.queue, msg.Tx)
		c.pump()
	case *types.ClientReply:
		c.onReply(from, msg)
	case *types.SpecResponse:
		c.onSpecResponse(from, msg)
	case *types.LocalCommit:
		c.onLocalCommit(from, msg)
	}
}

func (c *Client) onReply(from types.ReplicaID, m *types.ClientReply) {
	if c.cfg.Mode == ModeZyzzyva {
		// Zyzzyva clients complete through speculative responses (all n)
		// or commit certificates; post-execution replies would bypass the
		// speculation protocol.
		return
	}
	p, ok := c.inFlight[m.Seq]
	if !ok || m.Client != c.cfg.Client {
		return
	}
	p.replies[from] = m.Result
	// f+1 matching results guarantee one comes from a non-faulty replica.
	count := 0
	for _, d := range p.replies {
		if d == m.Result {
			count++
		}
	}
	if count >= c.env.Params().FaultDetection() {
		c.complete(p, m.Result, false)
	}
}

func (c *Client) onSpecResponse(from types.ReplicaID, m *types.SpecResponse) {
	// Spec responses do not carry the client sequence number; match by the
	// oldest in-flight transaction (Zyzzyva clients pipeline per round,
	// and our batches carry one request per client).
	target := c.matchPending()
	if target == nil || m.Client != c.cfg.Client {
		return
	}
	target.spec[from] = m
	matching := c.matchingSpec(target, m)
	n := c.env.Params().N
	if len(matching) >= n {
		// Fast path: all n replicas agree.
		c.complete(target, m.Result, true)
		return
	}
	// The slow path is driven by the retry timer (grace period for the
	// fast path); see OnTimer.
}

// matchPending returns the oldest in-flight transaction (Zyzzyva matching).
func (c *Client) matchPending() *pending {
	var seqs []uint64
	for s := range c.inFlight {
		seqs = append(seqs, s)
	}
	if len(seqs) == 0 {
		return nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return c.inFlight[seqs[0]]
}

// matchingSpec returns the replicas whose responses match m's (view, round,
// history, result).
func (c *Client) matchingSpec(p *pending, m *types.SpecResponse) []types.ReplicaID {
	var out []types.ReplicaID
	for r, sr := range p.spec {
		if sr.View == m.View && sr.Round == m.Round && sr.History == m.History && sr.Result == m.Result {
			out = append(out, r)
		}
	}
	return out
}

func (c *Client) onLocalCommit(from types.ReplicaID, m *types.LocalCommit) {
	p := c.matchPending()
	if p == nil || !p.certSent || m.Client != c.cfg.Client {
		return
	}
	p.localCommit[from] = struct{}{}
	if len(p.localCommit) >= c.env.Params().NF() {
		c.complete(p, m.History, false)
	}
}

func (c *Client) complete(p *pending, result types.Digest, fast bool) {
	delete(c.inFlight, p.tx.Seq)
	c.env.CancelTimer(sm.TimerID{Kind: sm.TimerClient, Round: types.Round(p.tx.Seq)})
	comp := Completion{
		Seq:      p.tx.Seq,
		Latency:  c.env.Now() - p.sentAt,
		Result:   result,
		FastPath: fast,
	}
	c.statsMu.Lock()
	c.completions = append(c.completions, comp)
	c.statsMu.Unlock()
	if c.onComplete != nil {
		c.onComplete(comp)
	}
	c.pump()
}

// OnTimer implements sm.ClientMachine.
func (c *Client) OnTimer(id sm.TimerID) {
	if id.Kind != sm.TimerClient {
		return
	}
	p, ok := c.inFlight[uint64(id.Round)]
	if !ok {
		return
	}
	if c.cfg.Mode == ModeZyzzyva {
		// Slow path: with nf matching responses, assemble a commit
		// certificate instead of retransmitting.
		if best := c.bestSpecGroup(p); best != nil && !p.certSent {
			p.certSent = true
			signers := c.matchingSpec(p, best)
			sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
			cert := &types.CommitCert{
				Client: c.cfg.Client, View: best.View, Round: best.Round,
				History: best.History, Responses: signers,
			}
			cert.Inst = c.cfg.Instance
			c.env.Broadcast(cert)
			c.statsMu.Lock()
			c.retries++
			c.statsMu.Unlock()
			c.env.SetTimer(sm.TimerID{Kind: sm.TimerClient, Round: types.Round(p.tx.Seq)}, c.cfg.RetryTimeout)
			return
		}
	}
	// Retransmit, escalating to a broadcast so every replica forwards the
	// request and starts neglect detection (§III-E).
	p.escalated = true
	c.statsMu.Lock()
	c.retries++
	c.statsMu.Unlock()
	c.send(p)
}

// bestSpecGroup returns a representative response of the largest matching
// group if it reaches nf, else nil.
func (c *Client) bestSpecGroup(p *pending) *types.SpecResponse {
	var best *types.SpecResponse
	bestN := 0
	for _, sr := range p.spec {
		n := len(c.matchingSpec(p, sr))
		if n > bestN {
			best, bestN = sr, n
		}
	}
	if bestN >= c.env.Params().NF() {
		return best
	}
	return nil
}
